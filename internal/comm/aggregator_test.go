package comm

import "testing"

// A capacity-policy aggregator auto-flushes full buffers: 1000 ops to
// one destination at capacity 256 ship in exactly 4 flushes, each also
// counted as one bulk transfer.
func TestAggregatorCapacityFlush(t *testing.T) {
	var c Counters
	var delivered [][]Op
	a := NewAggregator(0, 4, AggConfig{Capacity: 256}, &c, nil, Zero(),
		func(dst int, batch []Op) {
			if dst != 1 {
				t.Fatalf("delivered to %d, want 1", dst)
			}
			delivered = append(delivered, batch)
		})
	for i := 0; i < 1000; i++ {
		a.Enqueue(1, Op{Bytes: 8})
	}
	if len(delivered) != 3 {
		t.Fatalf("auto-flushed %d batches before Flush, want 3", len(delivered))
	}
	a.Flush()
	s := c.Snapshot()
	if len(delivered) != 4 {
		t.Fatalf("flushed %d batches, want 4", len(delivered))
	}
	total := 0
	for _, b := range delivered {
		total += len(b)
	}
	if total != 1000 {
		t.Fatalf("delivered %d ops, want 1000", total)
	}
	want := Snapshot{AggFlushes: 4, AggOps: 1000, AggBytes: 8000, BulkXfers: 4, BulkBytes: 8000}
	if s != want {
		t.Fatalf("counters = %+v, want %+v", s, want)
	}
}

// A manual-policy aggregator never ships on its own.
func TestAggregatorManualPolicy(t *testing.T) {
	var c Counters
	n := 0
	a := NewAggregator(0, 2, AggConfig{Capacity: 4, Policy: FlushManual}, &c, nil, Zero(),
		func(int, []Op) { n++ })
	for i := 0; i < 100; i++ {
		a.Enqueue(1, Op{Bytes: 1})
	}
	if n != 0 || a.Pending() != 100 || a.PendingTo(1) != 100 {
		t.Fatalf("manual policy auto-flushed: n=%d pending=%d", n, a.Pending())
	}
	a.FlushDst(0) // empty buffer: no-op
	if n != 0 || c.Snapshot().AggFlushes != 0 {
		t.Fatal("empty flush counted")
	}
	a.Flush()
	if n != 1 || a.Pending() != 0 {
		t.Fatalf("Flush shipped %d batches, pending %d", n, a.Pending())
	}
}

// Flushes are attributed to the (src, dst) matrix cell.
func TestAggregatorMatrixAttribution(t *testing.T) {
	var c Counters
	m := NewMatrix(3)
	a := NewAggregator(1, 3, AggConfig{}, &c, m, Zero(), func(int, []Op) {})
	a.Enqueue(0, Op{Bytes: 8})
	a.Enqueue(2, Op{Bytes: 8})
	a.Enqueue(2, Op{Bytes: 8})
	a.Flush()
	if m.Get(1, 0) != 1 || m.Get(1, 2) != 1 {
		t.Fatalf("matrix rows: %v", m.Snapshot())
	}
	if got := c.Snapshot().AggFlushes; got != 2 {
		t.Fatalf("AggFlushes = %d, want 2", got)
	}
}

// Capacity defaulting and the effective-capacity accessor.
func TestAggregatorDefaultCapacity(t *testing.T) {
	var c Counters
	a := NewAggregator(0, 1, AggConfig{}, &c, nil, Zero(), func(int, []Op) {})
	if a.Capacity() != DefaultAggCapacity {
		t.Fatalf("capacity = %d, want %d", a.Capacity(), DefaultAggCapacity)
	}
}
