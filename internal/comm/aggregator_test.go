package comm

import "testing"

// A capacity-policy aggregator auto-flushes full buffers: 1000 ops to
// one destination at capacity 256 ship in exactly 4 flushes, each also
// counted as one bulk transfer.
func TestAggregatorCapacityFlush(t *testing.T) {
	var c Counters
	var delivered [][]Op
	a := NewAggregator(0, 4, AggConfig{Capacity: 256}, &c, nil, Zero(),
		func(dst int, batch []Op) {
			if dst != 1 {
				t.Fatalf("delivered to %d, want 1", dst)
			}
			delivered = append(delivered, batch)
		})
	for i := 0; i < 1000; i++ {
		a.Enqueue(1, Op{Bytes: 8})
	}
	if len(delivered) != 3 {
		t.Fatalf("auto-flushed %d batches before Flush, want 3", len(delivered))
	}
	a.Flush()
	s := c.Snapshot()
	if len(delivered) != 4 {
		t.Fatalf("flushed %d batches, want 4", len(delivered))
	}
	total := 0
	for _, b := range delivered {
		total += len(b)
	}
	if total != 1000 {
		t.Fatalf("delivered %d ops, want 1000", total)
	}
	want := Snapshot{AggFlushes: 4, AggOps: 1000, AggOpsEnq: 1000, AggBytes: 8000, BulkXfers: 4, BulkBytes: 8000}
	if s != want {
		t.Fatalf("counters = %+v, want %+v", s, want)
	}
}

// sumOp is a test CombinableOp: a commutative delta against cell K of
// a shared ref. Absorb folds the later delta in without growing the
// payload.
type sumOp struct {
	ref   *int
	k     uint64
	delta int64
}

func (o *sumOp) CombineKey() CombineKey { return CombineKey{Kind: 1, Ref: o.ref, K: o.k} }
func (o *sumOp) Absorb(later CombinableOp) (int64, bool) {
	o.delta += later.(*sumOp).delta
	return 0, true
}

// lastOp is a test CombinableOp with last-writer-wins semantics.
type lastOp struct {
	ref *int
	k   uint64
	v   int64
}

func (o *lastOp) CombineKey() CombineKey { return CombineKey{Kind: 2, Ref: o.ref, K: o.k} }
func (o *lastOp) Absorb(later CombinableOp) (int64, bool) {
	o.v = later.(*lastOp).v
	return 0, true
}

// catOp is a test CombinableOp whose merge concatenates payloads, so
// the merged op's byte tally must grow.
type catOp struct {
	ref  *int
	vals []int64
}

func (o *catOp) CombineKey() CombineKey { return CombineKey{Kind: 3, Ref: o.ref} }
func (o *catOp) Absorb(later CombinableOp) (int64, bool) {
	l := later.(*catOp)
	o.vals = append(o.vals, l.vals...)
	return int64(len(l.vals)) * 8, true
}

// With Combine on, N deltas to one key collapse to one summed op, N
// stores to one key keep only the last value, and distinct keys stay
// distinct. The enqueue/combined/shipped counters account exactly.
func TestAggregatorCombine(t *testing.T) {
	var c Counters
	var delivered []Op
	ref := new(int)
	a := NewAggregator(0, 4, AggConfig{Capacity: 256, Combine: true}, &c, nil, Zero(),
		func(dst int, batch []Op) { delivered = append(delivered, batch...) })
	for i := 0; i < 10; i++ {
		a.Enqueue(1, Op{Bytes: 16, Exec: &sumOp{ref: ref, k: 7, delta: 1}})
		a.Enqueue(1, Op{Bytes: 16, Exec: &lastOp{ref: ref, k: 7, v: int64(i)}})
	}
	a.Enqueue(1, Op{Bytes: 16, Exec: &sumOp{ref: ref, k: 8, delta: 100}})
	a.Flush()

	if len(delivered) != 3 {
		t.Fatalf("shipped %d ops, want 3", len(delivered))
	}
	if got := delivered[0].Exec.(*sumOp); got.delta != 10 {
		t.Fatalf("summed delta = %d, want 10", got.delta)
	}
	if got := delivered[1].Exec.(*lastOp); got.v != 9 {
		t.Fatalf("last-writer value = %d, want 9", got.v)
	}
	if got := delivered[2].Exec.(*sumOp); got.delta != 100 {
		t.Fatalf("distinct key merged: delta = %d, want 100", got.delta)
	}
	s := c.Snapshot()
	want := Snapshot{
		AggFlushes: 1, AggOps: 3, AggOpsEnq: 21, AggCombined: 18,
		AggBytes: 48, BulkXfers: 1, BulkBytes: 48,
	}
	if s != want {
		t.Fatalf("counters = %+v, want %+v", s, want)
	}
	if s.AggOps+s.AggCombined != s.AggOpsEnq {
		t.Fatalf("shipped+combined != enqueued: %+v", s)
	}
}

// Concatenating merges grow the buffered op's byte tally, so the bulk
// transfer still charges for every payload byte that ships.
func TestAggregatorCombineGrowsBytes(t *testing.T) {
	var c Counters
	ref := new(int)
	a := NewAggregator(0, 2, AggConfig{Combine: true}, &c, nil, Zero(), func(int, []Op) {})
	a.Enqueue(1, Op{Bytes: 16, Exec: &catOp{ref: ref, vals: []int64{1, 2}}})
	a.Enqueue(1, Op{Bytes: 24, Exec: &catOp{ref: ref, vals: []int64{3, 4, 5}}})
	a.Flush()
	s := c.Snapshot()
	if s.AggOps != 1 || s.AggCombined != 1 {
		t.Fatalf("counters = %+v, want 1 shipped / 1 combined", s)
	}
	// 16 initial + 3 appended values * 8 bytes.
	if s.AggBytes != 40 || s.BulkBytes != 40 {
		t.Fatalf("bytes = %d/%d, want 40/40", s.AggBytes, s.BulkBytes)
	}
}

// With Combine off, combinable ops ship one-for-one; opaque ops never
// merge even with Combine on.
func TestAggregatorCombineOptIn(t *testing.T) {
	var c Counters
	ref := new(int)
	off := NewAggregator(0, 2, AggConfig{}, &c, nil, Zero(), func(int, []Op) {})
	for i := 0; i < 5; i++ {
		off.Enqueue(1, Op{Bytes: 16, Exec: &sumOp{ref: ref, k: 1, delta: 1}})
	}
	off.Flush()
	if s := c.Snapshot(); s.AggOps != 5 || s.AggCombined != 0 {
		t.Fatalf("Combine=false merged: %+v", s)
	}
	c.Reset()
	on := NewAggregator(0, 2, AggConfig{Combine: true}, &c, nil, Zero(), func(int, []Op) {})
	for i := 0; i < 5; i++ {
		on.Enqueue(1, Op{Bytes: 8, Exec: func() {}}) // opaque payload
	}
	on.Flush()
	if s := c.Snapshot(); s.AggOps != 5 || s.AggCombined != 0 {
		t.Fatalf("opaque ops merged: %+v", s)
	}
}

// The merge index is dropped at flush: ops enqueued after a flush must
// not absorb into positions of the already-shipped buffer.
func TestAggregatorCombineIndexResetOnFlush(t *testing.T) {
	var c Counters
	ref := new(int)
	var batches [][]Op
	a := NewAggregator(0, 2, AggConfig{Combine: true}, &c, nil, Zero(),
		func(dst int, batch []Op) { batches = append(batches, batch) })
	a.Enqueue(1, Op{Bytes: 16, Exec: &sumOp{ref: ref, k: 1, delta: 1}})
	a.FlushDst(1)
	a.Enqueue(1, Op{Bytes: 16, Exec: &sumOp{ref: ref, k: 1, delta: 2}})
	a.FlushDst(1)
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 1 {
		t.Fatalf("batches = %v", batches)
	}
	if d := batches[0][0].Exec.(*sumOp).delta; d != 1 {
		t.Fatalf("pre-flush op mutated after shipping: delta = %d", d)
	}
	if d := batches[1][0].Exec.(*sumOp).delta; d != 2 {
		t.Fatalf("post-flush delta = %d, want 2", d)
	}
}

// A manual-policy aggregator never ships on its own.
func TestAggregatorManualPolicy(t *testing.T) {
	var c Counters
	n := 0
	a := NewAggregator(0, 2, AggConfig{Capacity: 4, Policy: FlushManual}, &c, nil, Zero(),
		func(int, []Op) { n++ })
	for i := 0; i < 100; i++ {
		a.Enqueue(1, Op{Bytes: 1})
	}
	if n != 0 || a.Pending() != 100 || a.PendingTo(1) != 100 {
		t.Fatalf("manual policy auto-flushed: n=%d pending=%d", n, a.Pending())
	}
	a.FlushDst(0) // empty buffer: no-op
	if n != 0 || c.Snapshot().AggFlushes != 0 {
		t.Fatal("empty flush counted")
	}
	a.Flush()
	if n != 1 || a.Pending() != 0 {
		t.Fatalf("Flush shipped %d batches, pending %d", n, a.Pending())
	}
}

// Flushes are attributed to the (src, dst) matrix cell.
func TestAggregatorMatrixAttribution(t *testing.T) {
	var c Counters
	m := NewMatrix(3)
	a := NewAggregator(1, 3, AggConfig{}, &c, m, Zero(), func(int, []Op) {})
	a.Enqueue(0, Op{Bytes: 8})
	a.Enqueue(2, Op{Bytes: 8})
	a.Enqueue(2, Op{Bytes: 8})
	a.Flush()
	if m.Get(1, 0) != 1 || m.Get(1, 2) != 1 {
		t.Fatalf("matrix rows: %v", m.Snapshot())
	}
	if got := c.Snapshot().AggFlushes; got != 2 {
		t.Fatalf("AggFlushes = %d, want 2", got)
	}
}

// Capacity defaulting and the effective-capacity accessor.
func TestAggregatorDefaultCapacity(t *testing.T) {
	var c Counters
	a := NewAggregator(0, 1, AggConfig{}, &c, nil, Zero(), func(int, []Op) {})
	if a.Capacity() != DefaultAggCapacity {
		t.Fatalf("capacity = %d, want %d", a.Capacity(), DefaultAggCapacity)
	}
}
