package comm

import "sync/atomic"

// Matrix records communication volume by (source, destination) locale
// pair, the per-locale breakdown Chapel's commDiagnostics offers. It
// answers questions the scalar Counters cannot: is traffic balanced, is
// one locale a hotspot (e.g. the global epoch's home), did a scatter
// phase touch every destination?
//
// All methods are safe for concurrent use.
type Matrix struct {
	n     int
	cells []atomic.Int64
}

// NewMatrix creates an n×n communication matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, cells: make([]atomic.Int64, n*n)}
}

// Inc records one communication event from src to dst.
func (m *Matrix) Inc(src, dst int) {
	m.cells[src*m.n+dst].Add(1)
}

// Get returns the event count from src to dst.
func (m *Matrix) Get(src, dst int) int64 {
	return m.cells[src*m.n+dst].Load()
}

// Snapshot returns a copy of the matrix.
func (m *Matrix) Snapshot() [][]int64 {
	out := make([][]int64, m.n)
	for i := range out {
		out[i] = make([]int64, m.n)
		for j := range out[i] {
			out[i][j] = m.cells[i*m.n+j].Load()
		}
	}
	return out
}

// Total returns the sum over all pairs.
func (m *Matrix) Total() int64 {
	var t int64
	for i := range m.cells {
		t += m.cells[i].Load()
	}
	return t
}

// RowTotals returns outbound totals per source locale.
func (m *Matrix) RowTotals() []int64 {
	out := make([]int64, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out[i] += m.Get(i, j)
		}
	}
	return out
}

// ColTotals returns inbound totals per destination locale.
func (m *Matrix) ColTotals() []int64 {
	out := make([]int64, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out[j] += m.Get(i, j)
		}
	}
	return out
}

// Reset zeroes the matrix.
func (m *Matrix) Reset() {
	for i := range m.cells {
		m.cells[i].Store(0)
	}
}
