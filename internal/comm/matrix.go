package comm

import "sync/atomic"

// Matrix records communication volume by (source, destination) locale
// pair, the per-locale breakdown Chapel's commDiagnostics offers. It
// answers questions the scalar Counters cannot: is traffic balanced, is
// one locale a hotspot (e.g. the global epoch's home), did a scatter
// phase touch every destination?
//
// Storage is row-major with each source's row padded out to a whole
// number of cache lines: every increment is keyed by its source
// locale, so padding rows gives each source its own cache-line-aligned
// stripe and increments from different locales never falsely share a
// line (in the flat n×n layout, four locales' rows fit in a single
// line). The padding cells are never incremented, so Snapshot/Total
// observe exactly what the flat layout would.
//
// All methods are safe for concurrent use.
type Matrix struct {
	n      int
	stride int // row length in cells, rounded up to a cache-line multiple
	cells  []atomic.Int64
}

// matrixRowCells is the row-stride quantum: 8 int64 cells = one
// 64-byte cache line.
const matrixRowCells = 8

// NewMatrix creates an n×n communication matrix.
func NewMatrix(n int) *Matrix {
	stride := (n + matrixRowCells - 1) &^ (matrixRowCells - 1)
	return &Matrix{n: n, stride: stride, cells: make([]atomic.Int64, n*stride)}
}

// Inc records one communication event from src to dst.
func (m *Matrix) Inc(src, dst int) {
	m.cells[src*m.stride+dst].Add(1)
}

// Get returns the event count from src to dst.
func (m *Matrix) Get(src, dst int) int64 {
	return m.cells[src*m.stride+dst].Load()
}

// Snapshot returns a copy of the matrix.
func (m *Matrix) Snapshot() [][]int64 {
	out := make([][]int64, m.n)
	for i := range out {
		out[i] = make([]int64, m.n)
		for j := range out[i] {
			out[i][j] = m.cells[i*m.stride+j].Load()
		}
	}
	return out
}

// Total returns the sum over all pairs.
func (m *Matrix) Total() int64 {
	var t int64
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			t += m.cells[i*m.stride+j].Load()
		}
	}
	return t
}

// Totals returns the outbound (row) and inbound (column) totals per
// locale from one pass over the cells — each cell is loaded exactly
// once and contributes to both vectors, instead of the two full
// re-scans separate RowTotals/ColTotals calls used to make.
func (m *Matrix) Totals() (rows, cols []int64) {
	rows = make([]int64, m.n)
	cols = make([]int64, m.n)
	for i := 0; i < m.n; i++ {
		base := i * m.stride
		for j := 0; j < m.n; j++ {
			v := m.cells[base+j].Load()
			rows[i] += v
			cols[j] += v
		}
	}
	return rows, cols
}

// RowTotals returns outbound totals per source locale.
func (m *Matrix) RowTotals() []int64 {
	rows, _ := m.Totals()
	return rows
}

// ColTotals returns inbound totals per destination locale.
func (m *Matrix) ColTotals() []int64 {
	_, cols := m.Totals()
	return cols
}

// Reset zeroes the matrix.
func (m *Matrix) Reset() {
	for i := range m.cells {
		m.cells[i].Store(0)
	}
}
