// Package comm models the communication layer of a PGAS system:
// backends, latency profiles, diagnostic counters, the locale-pair
// matrix, aggregation buffers, and fault-injection perturbations.
// Everything here is mechanism-free policy — no goroutines, no
// execution; the actual routing of operations lives in package pgas,
// which consults what this package configures and reports into what
// this package counts.
//
// # Backends
//
// The paper's evaluation toggles CHPL_NETWORK_ATOMICS between "ugni"
// (Cray Gemini/Aries NIC-offloaded RDMA atomics) and "none"
// (active-message atomics executed by the recipient's progress
// thread). Backend captures the two regimes; ParseBackend/String
// round-trip their CLI spellings.
//
// # Latency profiles
//
// LatencyProfile carries the calibrated injected delays that let one
// process reproduce the *shape* of a 64-locale Cray run: per-class
// costs for NIC atomics, AM round trips, on-statement spawns, GET/PUT,
// and bulk-transfer startup/per-byte. The zero profile disables delays
// entirely — unit tests stay fast while the counters stay exact.
// Delay(ns) spin-yields below ~50µs and sleeps above, so short
// simulated latencies do not collapse into scheduler noise.
//
// # Counters and the matrix
//
// Counters records every simulated communication event in the spirit
// of Chapel's commDiagnostics module: puts, gets, NIC/AM/local
// atomics, on-statements, bulk transfers and their bytes, local and
// remote DCAS, aggregated flush/op/byte totals, and the read
// replication cache's hit/miss/invalidation totals. Every event
// increments exactly one counter, so tests make deterministic
// assertions about communication volume (for example: privatized
// lookup is zero-communication; N aggregated frees ship as one bulk
// transfer per destination; a warmed cache serves a hot-key get storm
// with zero remote events). Matrix attributes the same events to
// (source, destination) locale pairs, answering what the scalars
// cannot: whether traffic is balanced, and which locale is the
// hotspot. Snapshot/Sub turn both into exact deltas around a measured
// region.
//
// # Aggregation
//
// Aggregator generalises the EpochManager's scatter lists into a
// first-class facility (the move Chapel's ecosystem made with
// Arkouda's CopyAggregation): per-destination buffers of opaque Ops
// with a capacity/flush policy, each flush charged as one bulk
// transfer instead of one round trip per op. The pgas layer supplies
// the delivery callback that actually executes a batch.
//
// # Perturbation
//
// Perturbation is the fault-injection plan: per-locale latency
// multipliers consulted at every delay site (PairScale covers both
// directions of a pair), which is how the workload engine's
// slow-locale mode slows traffic without ever changing a counter —
// fault runs stay counter-assertable.
package comm
