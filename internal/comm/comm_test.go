package comm

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestBackendString(t *testing.T) {
	if BackendNone.String() != "none" || BackendUGNI.String() != "ugni" {
		t.Fatal("backend names wrong")
	}
	if got := Backend(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown backend renders %q", got)
	}
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]Backend{"none": BackendNone, "ugni": BackendUGNI} {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBackend("infiniband"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, b := range []Backend{BackendNone, BackendUGNI} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("round trip of %v failed", b)
		}
	}
}

func TestDefaultProfileOrdering(t *testing.T) {
	p := DefaultProfile()
	// The regime ordering everything depends on: CPU (0) < NIC < AM.
	if p.LocalAtomicNS != 0 {
		t.Fatal("local atomics must be free by default")
	}
	if !(p.NICAtomicNS > 0 && p.AMRoundTripNS > p.NICAtomicNS) {
		t.Fatalf("regime ordering broken: NIC=%d AM=%d", p.NICAtomicNS, p.AMRoundTripNS)
	}
	if p.AMHandlerNS <= 0 || p.PutGetNS <= 0 || p.OnStmtNS <= 0 || p.BulkStartupNS <= 0 {
		t.Fatalf("profile has zero-cost classes: %+v", p)
	}
}

func TestZeroProfile(t *testing.T) {
	if Zero() != (LatencyProfile{}) {
		t.Fatal("Zero() not zero")
	}
}

func TestProfileScale(t *testing.T) {
	p := DefaultProfile()
	doubled := p.Scale(2)
	if doubled.NICAtomicNS != 2*p.NICAtomicNS || doubled.AMRoundTripNS != 2*p.AMRoundTripNS {
		t.Fatalf("Scale(2) = %+v", doubled)
	}
	if p.Scale(0) != Zero() {
		t.Fatal("Scale(0) must zero the profile")
	}
}

// Property: scaling preserves regime ordering for any positive factor.
func TestScalePreservesOrderingProperty(t *testing.T) {
	p := DefaultProfile()
	f := func(raw uint8) bool {
		factor := 0.1 + float64(raw)/32.0
		s := p.Scale(factor)
		return s.AMRoundTripNS >= s.NICAtomicNS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayZeroIsFree(t *testing.T) {
	start := time.Now()
	for i := 0; i < 1_000_000; i++ {
		Delay(0)
		Delay(-5)
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("2M no-op delays took %v", e)
	}
}

func TestDelayApproximatelyAccurate(t *testing.T) {
	const ns = 20_000 // 20µs, spin path
	start := time.Now()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		Delay(ns)
	}
	avg := time.Since(start).Nanoseconds() / rounds
	if avg < ns {
		t.Fatalf("delay too short: %dns < %dns", avg, ns)
	}
	if avg > 40*ns {
		t.Fatalf("delay wildly long: %dns", avg)
	}
}

func TestCountersRoundTrip(t *testing.T) {
	var c Counters
	// Spread the shard hints: the snapshot must merge every shard,
	// including hints beyond the shard count (which wrap).
	c.IncPut(0)
	c.IncGet(1)
	c.IncGet(counterShards + 1)
	c.IncNICAMO(2)
	c.IncAMAMO(3)
	c.IncLocalAMO(4)
	c.IncOnStmt(5)
	c.IncBulk(6, 128)
	c.IncDCASLocal(7)
	c.IncDCASRemote(8)
	s := c.Snapshot()
	want := Snapshot{Puts: 1, Gets: 2, NICAMOs: 1, AMAMOs: 1, LocalAMOs: 1,
		OnStmts: 1, BulkXfers: 1, BulkBytes: 128, DCASLocal: 1, DCASRemote: 1}
	if s != want {
		t.Fatalf("snapshot = %+v", s)
	}
	// Remote = puts+gets+nic+am+on+bulk+dcasRemote = 1+2+1+1+1+1+1.
	if got := s.Remote(); got != 8 {
		t.Fatalf("Remote() = %d", got)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Fatal("Reset left residue")
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.IncPut(0)
	before := c.Snapshot()
	c.IncPut(1) // a different shard than the first put: Sub merges both
	c.IncBulk(0, 64)
	d := c.Snapshot().Sub(before)
	if d.Puts != 1 || d.BulkXfers != 1 || d.BulkBytes != 64 || d.Gets != 0 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Puts: 1, Gets: 2, BulkXfers: 3, BulkBytes: 400}
	str := s.String()
	for _, frag := range []string{"puts=1", "gets=2", "bulk=3/400B"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("String() = %q missing %q", str, frag)
		}
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				c.IncPut(g)
				c.IncBulk(g, 2)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	s := c.Snapshot()
	if s.Puts != 4000 || s.BulkXfers != 4000 || s.BulkBytes != 8000 {
		t.Fatalf("lost updates: %+v", s)
	}
}
