package comm

import "sync"

// ParkConfig configures the partition retry plane. The zero value is
// the enabled default policy; Disable reverts partition refusals to
// fail-stop accounting (they drain to OpsLost exactly like crash
// refusals — the ablation baseline).
type ParkConfig struct {
	// Disable turns the retry plane off.
	Disable bool

	// Capacity bounds each per-destination parked-op buffer. An op
	// parked into a full buffer still books OpsParked but is expired on
	// the spot (OpsExpired), so the settlement invariant survives
	// overflow. <= 0 selects DefaultParkCapacity.
	Capacity int

	// InitialBackoffNS is the first retry delay for a destination after
	// an op parks; each failed retry doubles it up to MaxBackoffNS.
	// <= 0 selects the defaults (200µs initial, 10ms max).
	InitialBackoffNS int64
	MaxBackoffNS     int64

	// DeadlineNS bounds how long an op may stay parked: a retry pass
	// that finds the destination still unreachable expires every op
	// older than this. <= 0 selects DefaultParkDeadlineNS.
	DeadlineNS int64
}

// Default retry-plane policy values.
const (
	DefaultParkCapacity   = 4096
	DefaultParkBackoffNS  = 200_000       // 200µs
	DefaultParkMaxBackNS  = 10_000_000    // 10ms
	DefaultParkDeadlineNS = 2_000_000_000 // 2s
)

// WithDefaults returns the config with every unset field replaced by
// its default.
func (c ParkConfig) WithDefaults() ParkConfig {
	if c.Capacity <= 0 {
		c.Capacity = DefaultParkCapacity
	}
	if c.InitialBackoffNS <= 0 {
		c.InitialBackoffNS = DefaultParkBackoffNS
	}
	if c.MaxBackoffNS <= 0 {
		c.MaxBackoffNS = DefaultParkMaxBackNS
	}
	if c.MaxBackoffNS < c.InitialBackoffNS {
		c.MaxBackoffNS = c.InitialBackoffNS
	}
	if c.DeadlineNS <= 0 {
		c.DeadlineNS = DefaultParkDeadlineNS
	}
	return c
}

// parkedOp is one refused operation waiting out a partition.
type parkedOp struct {
	op         Op
	deadlineNS int64
}

// parkDest is the retry state for one destination: the parked buffer
// plus the destination's exponential-backoff clock. Backoff is per
// destination, not per op — one probe per retry window answers for the
// whole buffer, the way a real transport probes a severed peer once,
// not once per queued message.
type parkDest struct {
	ops         []parkedOp
	bytes       int64
	backoffNS   int64
	nextRetryNS int64
}

// Parking is one locale's partition retry ledger: per-destination
// bounded buffers of ops refused because the source/destination pair
// was partitioned, reusing the aggregation layer's Op framing so a
// redelivered batch flows through the same bulk-transfer path a flush
// does. Ops enter via Park, wait out an exponential per-destination
// backoff, and leave exactly once — redelivered through the callback
// when the pair heals (or a retry probe finds it reachable), or
// expired at the deadline / on overflow / at final drain. The books
// are exact: after DrainExpire, every op that ever booked OpsParked
// has booked exactly one of OpsRedelivered or OpsExpired.
//
// All methods are safe for concurrent use; the redeliver callback runs
// outside the ledger lock.
type Parking struct {
	src       int
	cfg       ParkConfig
	counters  *Counters
	redeliver func(dst int, batch []Op, bytes int64)

	mu    sync.Mutex
	dests []parkDest
}

// NewParking builds the retry ledger for source locale src of n, with
// counters booked against src and redeliver invoked (outside the lock,
// after OpsRedelivered is booked) for every batch that goes back out.
func NewParking(src, n int, cfg ParkConfig, ctrs *Counters, redeliver func(dst int, batch []Op, bytes int64)) *Parking {
	return &Parking{
		src:       src,
		cfg:       cfg.WithDefaults(),
		counters:  ctrs,
		redeliver: redeliver,
		dests:     make([]parkDest, n),
	}
}

// Park files one partition-refused op bound for dst, stamped against
// the caller-supplied monotonic clock. Every call books OpsParked; an
// op that overflows the destination's buffer is expired immediately
// (still parked-then-expired, never silently dropped). Returns false
// only when the retry plane is disabled — the caller falls back to the
// lost-ops ledger.
func (p *Parking) Park(dst int, op Op, nowNS int64) bool {
	if p.cfg.Disable {
		return false
	}
	p.mu.Lock()
	p.counters.IncOpsParked(p.src, 1)
	d := &p.dests[dst]
	if len(d.ops) >= p.cfg.Capacity {
		p.counters.IncOpsExpired(p.src, 1)
		p.mu.Unlock()
		return true
	}
	if len(d.ops) == 0 {
		d.backoffNS = p.cfg.InitialBackoffNS
		d.nextRetryNS = nowNS + d.backoffNS
	}
	d.ops = append(d.ops, parkedOp{op: op, deadlineNS: nowNS + p.cfg.DeadlineNS})
	d.bytes += op.Bytes
	p.mu.Unlock()
	return true
}

// Pump runs one retry pass: every destination whose backoff window has
// elapsed (or every non-empty destination, when force is set — the
// heal path) is probed through reachable. A reachable destination gets
// its whole buffer redelivered as one batch; an unreachable one
// expires its past-deadline ops and doubles its backoff.
func (p *Parking) Pump(nowNS int64, force bool, reachable func(dst int) bool) {
	p.pump(nowNS, force, false, reachable)
}

// DrainExpire is the final settlement pass, run at system drain or
// shutdown: reachable destinations redeliver as usual, and everything
// still unreachable expires wholesale, deadline or not. After it
// returns the ledger is empty and the books balance:
// OpsParked == OpsRedelivered + OpsExpired.
func (p *Parking) DrainExpire(nowNS int64, reachable func(dst int) bool) {
	p.pump(nowNS, true, true, reachable)
}

func (p *Parking) pump(nowNS int64, force, final bool, reachable func(dst int) bool) {
	type batch struct {
		dst   int
		ops   []Op
		bytes int64
	}
	var out []batch
	p.mu.Lock()
	for dst := range p.dests {
		d := &p.dests[dst]
		if len(d.ops) == 0 {
			continue
		}
		if !force && nowNS < d.nextRetryNS {
			continue
		}
		if reachable(dst) {
			ops := make([]Op, len(d.ops))
			for i := range d.ops {
				ops[i] = d.ops[i].op
			}
			out = append(out, batch{dst: dst, ops: ops, bytes: d.bytes})
			d.ops, d.bytes, d.backoffNS, d.nextRetryNS = nil, 0, 0, 0
			continue
		}
		// Still severed: shed what has aged out (everything, on the
		// final pass) and widen the retry window.
		kept := d.ops[:0]
		var expired int64
		for _, po := range d.ops {
			if final || nowNS >= po.deadlineNS {
				expired++
				d.bytes -= po.op.Bytes
			} else {
				kept = append(kept, po)
			}
		}
		d.ops = kept
		if len(d.ops) == 0 {
			d.ops = nil
		}
		if expired > 0 {
			p.counters.IncOpsExpired(p.src, expired)
		}
		d.backoffNS *= 2
		if d.backoffNS > p.cfg.MaxBackoffNS {
			d.backoffNS = p.cfg.MaxBackoffNS
		}
		d.nextRetryNS = nowNS + d.backoffNS
	}
	p.mu.Unlock()
	for _, b := range out {
		p.counters.IncOpsRedelivered(p.src, int64(len(b.ops)))
		p.redeliver(b.dst, b.ops, b.bytes)
	}
}

// Parked returns the number of ops currently waiting in the ledger
// (diagnostic; racy by nature against concurrent parks and pumps).
func (p *Parking) Parked() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.dests {
		n += len(p.dests[i].ops)
	}
	return n
}
