package comm

import "testing"

// collectRedeliver records redelivered batches so tests can check what
// went back out and in what shape.
type collectRedeliver struct {
	batches map[int][][]Op
	bytes   int64
}

func (cr *collectRedeliver) fn(dst int, batch []Op, bytes int64) {
	if cr.batches == nil {
		cr.batches = make(map[int][][]Op)
	}
	cr.batches[dst] = append(cr.batches[dst], batch)
	cr.bytes += bytes
}

func parkBooks(t *testing.T, c *Counters) (parked, redelivered, expired int64) {
	t.Helper()
	snap := c.Snapshot()
	return snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired
}

func TestParkingRedeliverOnReachable(t *testing.T) {
	var ctrs Counters
	var cr collectRedeliver
	p := NewParking(0, 4, ParkConfig{}, &ctrs, cr.fn)

	severed := true
	reach := func(dst int) bool { return !severed }
	for i := 0; i < 5; i++ {
		if !p.Park(2, Op{Bytes: 16, Exec: i}, 100) {
			t.Fatal("enabled ledger refused a park")
		}
	}
	if p.Parked() != 5 {
		t.Fatalf("parked %d ops, want 5", p.Parked())
	}

	// Severed pump past the backoff window: nothing redelivers, nothing
	// has reached its deadline yet.
	p.Pump(100+DefaultParkBackoffNS+1, false, reach)
	if len(cr.batches) != 0 {
		t.Fatalf("redelivered through a severed link: %v", cr.batches)
	}
	if pk, re, ex := parkBooks(t, &ctrs); pk != 5 || re != 0 || ex != 0 {
		t.Fatalf("books after severed pump: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}

	// Heal: a forced pump ships the whole buffer as one batch.
	severed = false
	p.Pump(200+DefaultParkBackoffNS, true, reach)
	if got := len(cr.batches[2]); got != 1 {
		t.Fatalf("healed pump shipped %d batches to dst 2, want 1", got)
	}
	if got := len(cr.batches[2][0]); got != 5 {
		t.Fatalf("redelivered batch holds %d ops, want 5", got)
	}
	if cr.bytes != 5*16 {
		t.Fatalf("redelivered %d bytes, want %d", cr.bytes, 5*16)
	}
	if pk, re, ex := parkBooks(t, &ctrs); pk != 5 || re != 5 || ex != 0 {
		t.Fatalf("books after heal: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
	if p.Parked() != 0 {
		t.Fatalf("%d ops still parked after redelivery", p.Parked())
	}
}

func TestParkingBackoffGatesRetries(t *testing.T) {
	var ctrs Counters
	probes := 0
	var cr collectRedeliver
	p := NewParking(0, 2, ParkConfig{}, &ctrs, cr.fn)
	reach := func(dst int) bool { probes++; return false }

	p.Park(1, Op{Bytes: 16}, 0)
	// Before the backoff window opens the destination is not probed at
	// all; after it opens, one probe per pump, and each failed probe
	// doubles the window.
	p.Pump(DefaultParkBackoffNS-1, false, reach)
	if probes != 0 {
		t.Fatalf("probed %d times inside the backoff window", probes)
	}
	p.Pump(DefaultParkBackoffNS, false, reach)
	if probes != 1 {
		t.Fatalf("probes after first window = %d, want 1", probes)
	}
	// The window doubled: a pump at +1 backoff is early, +3 is due.
	p.Pump(2*DefaultParkBackoffNS, false, reach)
	if probes != 1 {
		t.Fatalf("probed again inside the doubled window (probes=%d)", probes)
	}
	p.Pump(3*DefaultParkBackoffNS, false, reach)
	if probes != 2 {
		t.Fatalf("probes after doubled window = %d, want 2", probes)
	}
}

func TestParkingDeadlineExpires(t *testing.T) {
	var ctrs Counters
	var cr collectRedeliver
	cfg := ParkConfig{DeadlineNS: 1000}
	p := NewParking(0, 2, cfg, &ctrs, cr.fn)
	reach := func(dst int) bool { return false }

	p.Park(1, Op{Bytes: 16}, 0)
	p.Park(1, Op{Bytes: 16}, 500)
	// At t=1100 only the first op is past its deadline.
	p.Pump(1100, true, reach)
	if pk, re, ex := parkBooks(t, &ctrs); pk != 2 || re != 0 || ex != 1 {
		t.Fatalf("books after partial expiry: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
	if p.Parked() != 1 {
		t.Fatalf("%d ops parked after partial expiry, want 1", p.Parked())
	}
	// Final drain expires the survivor wholesale, deadline or not.
	p.DrainExpire(1200, reach)
	if pk, re, ex := parkBooks(t, &ctrs); pk != re+ex || ex != 2 {
		t.Fatalf("settlement broken: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
	if p.Parked() != 0 {
		t.Fatalf("ledger not empty after DrainExpire: %d", p.Parked())
	}
}

func TestParkingOverflowParksThenExpires(t *testing.T) {
	var ctrs Counters
	var cr collectRedeliver
	p := NewParking(0, 2, ParkConfig{Capacity: 2}, &ctrs, cr.fn)
	for i := 0; i < 5; i++ {
		if !p.Park(1, Op{Bytes: 16}, 0) {
			t.Fatal("enabled ledger refused a park")
		}
	}
	// 2 buffered + 3 overflowed: every op booked parked, the overflow
	// settled immediately as expired.
	if pk, re, ex := parkBooks(t, &ctrs); pk != 5 || re != 0 || ex != 3 {
		t.Fatalf("overflow books: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
	if p.Parked() != 2 {
		t.Fatalf("buffer holds %d ops, want capacity 2", p.Parked())
	}
	// The buffered two still redeliver on heal: settlement is exact.
	p.Pump(1, true, func(int) bool { return true })
	if pk, re, ex := parkBooks(t, &ctrs); pk != 5 || re != 2 || ex != 3 || pk != re+ex {
		t.Fatalf("settlement after heal: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
}

func TestParkingDisabled(t *testing.T) {
	var ctrs Counters
	p := NewParking(0, 2, ParkConfig{Disable: true}, &ctrs, func(int, []Op, int64) {
		t.Fatal("disabled ledger redelivered")
	})
	if p.Park(1, Op{Bytes: 16}, 0) {
		t.Fatal("disabled ledger accepted a park")
	}
	if pk, re, ex := parkBooks(t, &ctrs); pk != 0 || re != 0 || ex != 0 {
		t.Fatalf("disabled ledger touched the books: parked=%d redelivered=%d expired=%d", pk, re, ex)
	}
}

func TestPerturbationPartitionSet(t *testing.T) {
	var p Perturbation
	p = p.WithPartition(1, 2)
	p = p.WithPartition(2, 1) // idempotent across orientation
	if len(p.Partitions) != 1 {
		t.Fatalf("partitions = %v, want one pair", p.Partitions)
	}
	if !p.Partitioned(1, 2) || !p.Partitioned(2, 1) {
		t.Fatal("severed pair not reported partitioned in both orders")
	}
	if p.Partitioned(0, 1) {
		t.Fatal("unsevered pair reported partitioned")
	}
	q, was := p.WithoutPartition(2, 1)
	if !was || q.Partitioned(1, 2) {
		t.Fatalf("heal failed: was=%v partitions=%v", was, q.Partitions)
	}
	if _, was := q.WithoutPartition(1, 2); was {
		t.Fatal("healing an unsevered pair reported success")
	}
}
