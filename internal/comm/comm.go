package comm

import "fmt"

// Backend selects how atomic memory operations (AMOs) reach remote
// memory, mirroring the CHPL_NETWORK_ATOMICS settings in the paper.
type Backend int

const (
	// BackendNone corresponds to CHPL_NETWORK_ATOMICS=none: there is no
	// NIC offload, so locale-local atomics are native CPU atomics and
	// every remote atomic is shipped as an active message that the
	// target locale's progress workers execute serially.
	BackendNone Backend = iota

	// BackendUGNI corresponds to CHPL_NETWORK_ATOMICS=ugni on
	// Gemini/Aries: 64-bit atomics are offloaded to the NIC. NIC
	// atomics are not coherent with CPU atomics, so *all* operations on
	// network-atomic variables — including locale-local ones — pay the
	// NIC round trip. The paper measures this local overhead at up to
	// an order of magnitude. In exchange, NIC atomics never involve the
	// target CPU and therefore pipeline without serialization.
	BackendUGNI
)

// String returns the CHPL_NETWORK_ATOMICS-style name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendNone:
		return "none"
	case BackendUGNI:
		return "ugni"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend converts a CHPL_NETWORK_ATOMICS-style name into a
// Backend. It accepts "none" and "ugni".
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "none":
		return BackendNone, nil
	case "ugni":
		return BackendUGNI, nil
	default:
		return 0, fmt.Errorf("comm: unknown backend %q (want \"none\" or \"ugni\")", s)
	}
}

// LatencyProfile holds the injected delays, in nanoseconds, for each
// class of simulated communication. The defaults are calibrated to the
// relative magnitudes reported for Cray Aries systems: RDMA atomics
// complete in about a microsecond, active messages cost a few
// microseconds of wire time plus occupancy on a progress worker, and
// bulk transfers pay a fixed startup cost plus a per-byte cost.
//
// A zero profile (Zero) disables all injected delays; counters still
// count, which keeps unit tests fast and deterministic.
type LatencyProfile struct {
	// NICAtomicNS is the round-trip latency of a NIC-offloaded 64-bit
	// atomic (ugni backend), paid by the initiating task.
	NICAtomicNS int64

	// AMRoundTripNS is the wire latency of an active message round
	// trip, paid by the initiating task on top of waiting for the
	// handler to run.
	AMRoundTripNS int64

	// AMHandlerNS is the occupancy cost the target locale's progress
	// worker pays per active-message atomic; it is what serializes AM
	// atomics that target the same locale.
	AMHandlerNS int64

	// PutGetNS is the latency of a small RDMA PUT or GET.
	PutGetNS int64

	// OnStmtNS is the task-spawn overhead of an on-statement (remote
	// procedure call) beyond the AM round trip.
	OnStmtNS int64

	// BulkStartupNS and BulkPerByteNS model large transfers, e.g. the
	// scatter lists the EpochManager ships for bulk remote deletion.
	BulkStartupNS int64
	BulkPerByteNS int64

	// LocalAtomicNS is the extra injected cost of a locale-local atomic
	// when it does NOT go through the NIC (none backend). Normally zero:
	// native CPU atomics are the baseline.
	LocalAtomicNS int64
}

// DefaultProfile returns the calibrated profile used by the benchmark
// harness. Values are scaled-down microsecond-class latencies: large
// enough to dominate CPU costs and preserve the paper's regime
// ordering (CPU atomic ≪ NIC atomic ≪ AM), small enough that the full
// figure sweep completes on a laptop.
func DefaultProfile() LatencyProfile {
	return LatencyProfile{
		NICAtomicNS:   800,
		AMRoundTripNS: 2500,
		AMHandlerNS:   400,
		PutGetNS:      1200,
		OnStmtNS:      1500,
		BulkStartupNS: 3000,
		BulkPerByteNS: 1,
	}
}

// Zero returns a profile with all injected delays disabled. Counters
// are unaffected. Unit and property tests use this profile.
func Zero() LatencyProfile {
	return LatencyProfile{}
}

// Scale returns a copy of p with every delay multiplied by f. The
// benchmark harness uses it to stretch or shrink the simulated network
// without changing regime ordering.
func (p LatencyProfile) Scale(f float64) LatencyProfile {
	s := func(ns int64) int64 { return int64(float64(ns) * f) }
	return LatencyProfile{
		NICAtomicNS:   s(p.NICAtomicNS),
		AMRoundTripNS: s(p.AMRoundTripNS),
		AMHandlerNS:   s(p.AMHandlerNS),
		PutGetNS:      s(p.PutGetNS),
		OnStmtNS:      s(p.OnStmtNS),
		BulkStartupNS: s(p.BulkStartupNS),
		BulkPerByteNS: s(p.BulkPerByteNS),
		LocalAtomicNS: s(p.LocalAtomicNS),
	}
}
