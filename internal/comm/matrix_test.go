package comm

import (
	"sync"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	m.Inc(0, 1)
	m.Inc(0, 1)
	m.Inc(2, 0)
	if m.Get(0, 1) != 2 || m.Get(2, 0) != 1 || m.Get(1, 2) != 0 {
		t.Fatalf("matrix = %v", m.Snapshot())
	}
	if m.Total() != 3 {
		t.Fatalf("total = %d", m.Total())
	}
	rows := m.RowTotals()
	cols := m.ColTotals()
	if rows[0] != 2 || rows[2] != 1 || rows[1] != 0 {
		t.Fatalf("rows = %v", rows)
	}
	if cols[1] != 2 || cols[0] != 1 || cols[2] != 0 {
		t.Fatalf("cols = %v", cols)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestMatrixTotalsOnePass(t *testing.T) {
	// Sizes straddling the cache-line row stride: rows shorter than,
	// equal to, and longer than one 8-cell line.
	for _, n := range []int{1, 3, 8, 9, 17} {
		m := NewMatrix(n)
		want := int64(0)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				for k := 0; k < (src+2*dst)%5; k++ {
					m.Inc(src, dst)
					want++
				}
			}
		}
		rows, cols := m.Totals()
		if got := m.RowTotals(); !equalInt64s(got, rows) {
			t.Fatalf("n=%d RowTotals %v != Totals rows %v", n, got, rows)
		}
		if got := m.ColTotals(); !equalInt64s(got, cols) {
			t.Fatalf("n=%d ColTotals %v != Totals cols %v", n, got, cols)
		}
		var rowSum, colSum int64
		for i := 0; i < n; i++ {
			rowSum += rows[i]
			colSum += cols[i]
		}
		if rowSum != want || colSum != want || m.Total() != want {
			t.Fatalf("n=%d totals disagree: rows=%d cols=%d Total=%d want=%d",
				n, rowSum, colSum, m.Total(), want)
		}
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatrixSnapshotIsCopy(t *testing.T) {
	m := NewMatrix(2)
	m.Inc(1, 0)
	snap := m.Snapshot()
	m.Inc(1, 0)
	if snap[1][0] != 1 {
		t.Fatal("snapshot aliased live data")
	}
}

func TestMatrixConcurrent(t *testing.T) {
	m := NewMatrix(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Inc(g%4, (g+i)%4)
			}
		}(g)
	}
	wg.Wait()
	if m.Total() != 8000 {
		t.Fatalf("total = %d", m.Total())
	}
}
