package comm

import (
	"sync"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	m.Inc(0, 1)
	m.Inc(0, 1)
	m.Inc(2, 0)
	if m.Get(0, 1) != 2 || m.Get(2, 0) != 1 || m.Get(1, 2) != 0 {
		t.Fatalf("matrix = %v", m.Snapshot())
	}
	if m.Total() != 3 {
		t.Fatalf("total = %d", m.Total())
	}
	rows := m.RowTotals()
	cols := m.ColTotals()
	if rows[0] != 2 || rows[2] != 1 || rows[1] != 0 {
		t.Fatalf("rows = %v", rows)
	}
	if cols[1] != 2 || cols[0] != 1 || cols[2] != 0 {
		t.Fatalf("cols = %v", cols)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset left residue")
	}
}

func TestMatrixSnapshotIsCopy(t *testing.T) {
	m := NewMatrix(2)
	m.Inc(1, 0)
	snap := m.Snapshot()
	m.Inc(1, 0)
	if snap[1][0] != 1 {
		t.Fatal("snapshot aliased live data")
	}
}

func TestMatrixConcurrent(t *testing.T) {
	m := NewMatrix(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Inc(g%4, (g+i)%4)
			}
		}(g)
	}
	wg.Wait()
	if m.Total() != 8000 {
		t.Fatalf("total = %d", m.Total())
	}
}
