package comm

// Perturbation is per-locale latency fault injection: a multiplier per
// locale applied to every injected delay whose source or destination
// is that locale. It is the policy half of the workload engine's fault
// modes — a "slow locale" (one node with a degraded NIC or a noisy
// neighbour) is a Perturbation with one scale above 1.0, and a
// uniformly stretched network is one with every scale above 1.0. The
// pgas dispatch layer consults PairScale at every delay site, and the
// Aggregator applies it to flush costs, so a perturbed locale slows
// both the traffic it initiates and the traffic aimed at it — exactly
// how a slow node hurts a real PGAS job.
//
// Perturbation scales only injected *latency*; communication counters
// are unaffected, so counter-asserted evidence stays exact under any
// fault plan.
//
// The zero value (no scales) is "no perturbation" and costs one branch
// per delay.
type Perturbation struct {
	// Scales[i] multiplies every delay touching locale i. Entries <= 0
	// and locales beyond the slice are treated as the nominal 1.0.
	Scales []float64 `json:"scales,omitempty"`
}

// Enabled reports whether any perturbation is configured.
func (p Perturbation) Enabled() bool { return len(p.Scales) > 0 }

// ScaleFor returns the multiplier for one locale (1.0 when the locale
// has no entry or a non-positive one).
func (p Perturbation) ScaleFor(locale int) float64 {
	if locale < 0 || locale >= len(p.Scales) || p.Scales[locale] <= 0 {
		return 1.0
	}
	return p.Scales[locale]
}

// PairScale returns the multiplier for a communication event between
// src and dst: the slower endpoint dominates, as a message is only as
// fast as the slowest NIC it crosses.
func (p Perturbation) PairScale(src, dst int) float64 {
	s, d := p.ScaleFor(src), p.ScaleFor(dst)
	if d > s {
		return d
	}
	return s
}

// ProfileFor returns base scaled for events local to one locale — the
// per-locale view of a perturbed latency profile.
func (p Perturbation) ProfileFor(base LatencyProfile, locale int) LatencyProfile {
	return base.Scale(p.ScaleFor(locale))
}

// SlowLocale builds the classic fault plan: locale `slow` of n runs
// `factor` times slower than the rest. factor <= 1 still builds the
// plan (a "fast locale" is occasionally useful in tests).
func SlowLocale(n, slow int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = 1.0
	}
	if slow >= 0 && slow < n {
		scales[slow] = factor
	}
	return Perturbation{Scales: scales}
}

// UniformPerturbation slows (or speeds) every locale of n by factor.
func UniformPerturbation(n int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = factor
	}
	return Perturbation{Scales: scales}
}
