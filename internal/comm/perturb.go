package comm

// Perturbation is per-locale latency fault injection: a multiplier per
// locale applied to every injected delay whose source or destination
// is that locale. It is the policy half of the workload engine's fault
// modes — a "slow locale" (one node with a degraded NIC or a noisy
// neighbour) is a Perturbation with one scale above 1.0, and a
// uniformly stretched network is one with every scale above 1.0. The
// pgas dispatch layer consults PairScale at every delay site, and the
// Aggregator applies it to flush costs, so a perturbed locale slows
// both the traffic it initiates and the traffic aimed at it — exactly
// how a slow node hurts a real PGAS job.
//
// Perturbation scales only injected *latency*; communication counters
// are unaffected, so counter-asserted evidence stays exact under any
// fault plan.
//
// Beyond latency, a Perturbation is also the fault plan's liveness
// half: Down marks crashed (fail-stop) locales and Partitions lists
// locale pairs that cannot reach each other. The dispatch layer
// consults Reachable before every remote operation and refuses when
// the destination is dead or the pair is partitioned. The two refusal
// causes settle differently: a crash is permanent, so its ops drain to
// the OpsLost ledger, while a partition is transient — both endpoints
// are alive and the pair may heal — so its ops park in the retry plane
// (Parking) and book OpsParked/OpsRedelivered/OpsExpired instead.
// Liveness, unlike latency scaling, *does* change counter totals, but
// only through those ledgers: a refused op increments exactly one of
// them and nothing else.
//
// The zero value (no scales, no faults) is "no perturbation" and costs
// one branch per delay.
type Perturbation struct {
	// Scales[i] multiplies every delay touching locale i. Entries <= 0
	// and locales beyond the slice are treated as the nominal 1.0.
	Scales []float64 `json:"scales,omitempty"`

	// Down[i] marks locale i crashed. A crash is fail-stop: the locale
	// issues nothing new and every operation aimed at it is refused
	// with a counted OpsLost. Locales beyond the slice are alive.
	Down []bool `json:"down,omitempty"`

	// Partitions are unordered locale pairs that cannot exchange
	// traffic in either direction (both endpoints stay alive and keep
	// talking to everyone else). Unlike Down, a partition is
	// repairable: WithoutPartition (pgas.System.Heal) removes a pair
	// and the severed traffic flows again.
	Partitions [][2]int `json:"partitions,omitempty"`
}

// Enabled reports whether any perturbation — latency scaling or
// liveness faults — is configured.
func (p Perturbation) Enabled() bool {
	return len(p.Scales) > 0 || p.Faulted()
}

// Faulted reports whether the plan carries liveness faults (crashes or
// partitions) that the dispatch layer must gate operations on.
func (p Perturbation) Faulted() bool {
	return len(p.Down) > 0 || len(p.Partitions) > 0
}

// Alive reports whether locale l is up under this plan. Locales with
// no Down entry are alive, so the zero plan declares everyone alive.
func (p Perturbation) Alive(l int) bool {
	return l < 0 || l >= len(p.Down) || !p.Down[l]
}

// Reachable reports whether src can currently exchange traffic with
// dst: both endpoints alive and the pair not partitioned. Reachability
// is symmetric, matching the unordered Partitions pairs.
func (p Perturbation) Reachable(src, dst int) bool {
	return p.Alive(src) && p.Deliverable(src, dst)
}

// Deliverable reports whether traffic from src can be delivered to
// dst: dst alive and the pair not partitioned. The source's own
// liveness is deliberately not consulted — work already executing on a
// crashed locale drains at the dispatch boundary rather than being cut
// mid-operation, matching fail-stop semantics where the crash point is
// the last operation the locale completed.
func (p Perturbation) Deliverable(src, dst int) bool {
	if !p.Alive(dst) {
		return false
	}
	for _, pr := range p.Partitions {
		if (pr[0] == src && pr[1] == dst) || (pr[0] == dst && pr[1] == src) {
			return false
		}
	}
	return true
}

// Partitioned reports whether the unordered pair (src, dst) is
// currently severed — the partition-specific half of Deliverable,
// letting the dispatch layer distinguish a transient partition refusal
// (park and retry) from a permanent crash refusal (lost).
func (p Perturbation) Partitioned(src, dst int) bool {
	for _, pr := range p.Partitions {
		if (pr[0] == src && pr[1] == dst) || (pr[0] == dst && pr[1] == src) {
			return true
		}
	}
	return false
}

// WithDown returns a copy of the plan with locale l of n marked dead.
// The existing scales and partitions carry over, so a runtime crash
// composes with whatever latency plan was already installed.
func (p Perturbation) WithDown(n, l int) Perturbation {
	down := make([]bool, n)
	copy(down, p.Down)
	if l >= 0 && l < n {
		down[l] = true
	}
	q := p
	q.Down = down
	return q
}

// WithPartition returns a copy of the plan with the unordered pair
// (a, b) severed; severing an already-severed pair returns the plan
// unchanged, so sever is idempotent.
func (p Perturbation) WithPartition(a, b int) Perturbation {
	if p.Partitioned(a, b) {
		return p
	}
	q := p
	q.Partitions = append(append([][2]int(nil), p.Partitions...), [2]int{a, b})
	return q
}

// WithoutPartition returns a copy of the plan with the unordered pair
// (a, b) healed, and reports whether the pair was severed — false
// means the plan is returned unchanged and the caller asked to heal a
// link that was never cut.
func (p Perturbation) WithoutPartition(a, b int) (Perturbation, bool) {
	if !p.Partitioned(a, b) {
		return p, false
	}
	parts := make([][2]int, 0, len(p.Partitions)-1)
	for _, pr := range p.Partitions {
		if (pr[0] == a && pr[1] == b) || (pr[0] == b && pr[1] == a) {
			continue
		}
		parts = append(parts, pr)
	}
	if len(parts) == 0 {
		parts = nil
	}
	q := p
	q.Partitions = parts
	return q, true
}

// ScaleFor returns the multiplier for one locale (1.0 when the locale
// has no entry or a non-positive one).
func (p Perturbation) ScaleFor(locale int) float64 {
	if locale < 0 || locale >= len(p.Scales) || p.Scales[locale] <= 0 {
		return 1.0
	}
	return p.Scales[locale]
}

// PairScale returns the multiplier for a communication event between
// src and dst: the slower endpoint dominates, as a message is only as
// fast as the slowest NIC it crosses.
func (p Perturbation) PairScale(src, dst int) float64 {
	s, d := p.ScaleFor(src), p.ScaleFor(dst)
	if d > s {
		return d
	}
	return s
}

// ProfileFor returns base scaled for events local to one locale — the
// per-locale view of a perturbed latency profile.
func (p Perturbation) ProfileFor(base LatencyProfile, locale int) LatencyProfile {
	return base.Scale(p.ScaleFor(locale))
}

// SlowLocale builds the classic fault plan: locale `slow` of n runs
// `factor` times slower than the rest. factor <= 1 still builds the
// plan (a "fast locale" is occasionally useful in tests).
func SlowLocale(n, slow int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = 1.0
	}
	if slow >= 0 && slow < n {
		scales[slow] = factor
	}
	return Perturbation{Scales: scales}
}

// UniformPerturbation slows (or speeds) every locale of n by factor.
func UniformPerturbation(n int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = factor
	}
	return Perturbation{Scales: scales}
}
