package comm

// Perturbation is per-locale latency fault injection: a multiplier per
// locale applied to every injected delay whose source or destination
// is that locale. It is the policy half of the workload engine's fault
// modes — a "slow locale" (one node with a degraded NIC or a noisy
// neighbour) is a Perturbation with one scale above 1.0, and a
// uniformly stretched network is one with every scale above 1.0. The
// pgas dispatch layer consults PairScale at every delay site, and the
// Aggregator applies it to flush costs, so a perturbed locale slows
// both the traffic it initiates and the traffic aimed at it — exactly
// how a slow node hurts a real PGAS job.
//
// Perturbation scales only injected *latency*; communication counters
// are unaffected, so counter-asserted evidence stays exact under any
// fault plan.
//
// Beyond latency, a Perturbation is also the fault plan's liveness
// half: Down marks crashed (fail-stop) locales and Partitions lists
// locale pairs that cannot reach each other. The dispatch layer
// consults Reachable before every remote operation and refuses —
// counting an OpsLost instead of stalling — when the destination is
// dead or the pair is partitioned. Liveness, unlike latency scaling,
// *does* change counter totals, but only through the single OpsLost
// ledger: a refused op increments OpsLost and nothing else.
//
// The zero value (no scales, no faults) is "no perturbation" and costs
// one branch per delay.
type Perturbation struct {
	// Scales[i] multiplies every delay touching locale i. Entries <= 0
	// and locales beyond the slice are treated as the nominal 1.0.
	Scales []float64 `json:"scales,omitempty"`

	// Down[i] marks locale i crashed. A crash is fail-stop: the locale
	// issues nothing new and every operation aimed at it is refused
	// with a counted OpsLost. Locales beyond the slice are alive.
	Down []bool `json:"down,omitempty"`

	// Partitions are unordered locale pairs that cannot exchange
	// traffic in either direction (both endpoints stay alive and keep
	// talking to everyone else).
	Partitions [][2]int `json:"partitions,omitempty"`
}

// Enabled reports whether any perturbation — latency scaling or
// liveness faults — is configured.
func (p Perturbation) Enabled() bool {
	return len(p.Scales) > 0 || p.Faulted()
}

// Faulted reports whether the plan carries liveness faults (crashes or
// partitions) that the dispatch layer must gate operations on.
func (p Perturbation) Faulted() bool {
	return len(p.Down) > 0 || len(p.Partitions) > 0
}

// Alive reports whether locale l is up under this plan. Locales with
// no Down entry are alive, so the zero plan declares everyone alive.
func (p Perturbation) Alive(l int) bool {
	return l < 0 || l >= len(p.Down) || !p.Down[l]
}

// Reachable reports whether src can currently exchange traffic with
// dst: both endpoints alive and the pair not partitioned. Reachability
// is symmetric, matching the unordered Partitions pairs.
func (p Perturbation) Reachable(src, dst int) bool {
	return p.Alive(src) && p.Deliverable(src, dst)
}

// Deliverable reports whether traffic from src can be delivered to
// dst: dst alive and the pair not partitioned. The source's own
// liveness is deliberately not consulted — work already executing on a
// crashed locale drains at the dispatch boundary rather than being cut
// mid-operation, matching fail-stop semantics where the crash point is
// the last operation the locale completed.
func (p Perturbation) Deliverable(src, dst int) bool {
	if !p.Alive(dst) {
		return false
	}
	for _, pr := range p.Partitions {
		if (pr[0] == src && pr[1] == dst) || (pr[0] == dst && pr[1] == src) {
			return false
		}
	}
	return true
}

// WithDown returns a copy of the plan with locale l of n marked dead.
// The existing scales and partitions carry over, so a runtime crash
// composes with whatever latency plan was already installed.
func (p Perturbation) WithDown(n, l int) Perturbation {
	down := make([]bool, n)
	copy(down, p.Down)
	if l >= 0 && l < n {
		down[l] = true
	}
	q := p
	q.Down = down
	return q
}

// ScaleFor returns the multiplier for one locale (1.0 when the locale
// has no entry or a non-positive one).
func (p Perturbation) ScaleFor(locale int) float64 {
	if locale < 0 || locale >= len(p.Scales) || p.Scales[locale] <= 0 {
		return 1.0
	}
	return p.Scales[locale]
}

// PairScale returns the multiplier for a communication event between
// src and dst: the slower endpoint dominates, as a message is only as
// fast as the slowest NIC it crosses.
func (p Perturbation) PairScale(src, dst int) float64 {
	s, d := p.ScaleFor(src), p.ScaleFor(dst)
	if d > s {
		return d
	}
	return s
}

// ProfileFor returns base scaled for events local to one locale — the
// per-locale view of a perturbed latency profile.
func (p Perturbation) ProfileFor(base LatencyProfile, locale int) LatencyProfile {
	return base.Scale(p.ScaleFor(locale))
}

// SlowLocale builds the classic fault plan: locale `slow` of n runs
// `factor` times slower than the rest. factor <= 1 still builds the
// plan (a "fast locale" is occasionally useful in tests).
func SlowLocale(n, slow int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = 1.0
	}
	if slow >= 0 && slow < n {
		scales[slow] = factor
	}
	return Perturbation{Scales: scales}
}

// UniformPerturbation slows (or speeds) every locale of n by factor.
func UniformPerturbation(n int, factor float64) Perturbation {
	scales := make([]float64, n)
	for i := range scales {
		scales[i] = factor
	}
	return Perturbation{Scales: scales}
}
