package comm

import (
	"fmt"
	"sync/atomic"
)

// Counters records communication-diagnostic totals, in the spirit of
// Chapel's commDiagnostics module. Every simulated communication event
// increments exactly one counter, so tests can make deterministic
// assertions about communication volume — for example that privatized
// instance lookup performs zero communication, or that scatter lists
// reduce N remote frees to one bulk transfer per locale.
//
// All methods are safe for concurrent use.
type Counters struct {
	puts       atomic.Int64 // small remote writes
	gets       atomic.Int64 // small remote reads (Deref of remote object)
	nicAMOs    atomic.Int64 // NIC-offloaded 64-bit atomics (ugni)
	amAMOs     atomic.Int64 // active-message atomics (none backend remote, and all remote DCAS)
	localAMOs  atomic.Int64 // locale-local CPU atomics on network-atomic words
	onStmts    atomic.Int64 // remote procedure calls (on-statements)
	bulkXfers  atomic.Int64 // bulk transfers (scatter-list shipments)
	bulkBytes  atomic.Int64 // payload bytes moved by bulk transfers
	dcasLocal  atomic.Int64 // locale-local 128-bit DCAS operations
	dcasRemote atomic.Int64 // remote 128-bit DCAS operations (always AM)
	aggFlushes atomic.Int64 // aggregator buffer shipments (each also counts one bulk transfer)
	aggOps     atomic.Int64 // remote operations carried inside aggregated flushes
	aggBytes   atomic.Int64 // payload bytes carried inside aggregated flushes
	cacheHits  atomic.Int64 // read-replication cache hits (served locale-locally)
	cacheMiss  atomic.Int64 // read-replication cache misses (fell through to the owner)
	cacheInval atomic.Int64 // read-replication invalidation ops executed (one per locale reached)
}

// Snapshot is an immutable copy of the counter values at one instant.
type Snapshot struct {
	Puts       int64
	Gets       int64
	NICAMOs    int64
	AMAMOs     int64
	LocalAMOs  int64
	OnStmts    int64
	BulkXfers  int64
	BulkBytes  int64
	DCASLocal  int64
	DCASRemote int64
	AggFlushes int64
	AggOps     int64
	AggBytes   int64
	CacheHits  int64
	CacheMiss  int64
	CacheInval int64
}

// IncPut records a small remote write.
func (c *Counters) IncPut() { c.puts.Add(1) }

// IncGet records a small remote read.
func (c *Counters) IncGet() { c.gets.Add(1) }

// IncNICAMO records a NIC-offloaded atomic.
func (c *Counters) IncNICAMO() { c.nicAMOs.Add(1) }

// IncAMAMO records an active-message atomic.
func (c *Counters) IncAMAMO() { c.amAMOs.Add(1) }

// IncLocalAMO records a locale-local CPU atomic on a network word.
func (c *Counters) IncLocalAMO() { c.localAMOs.Add(1) }

// IncOnStmt records a remote procedure call.
func (c *Counters) IncOnStmt() { c.onStmts.Add(1) }

// IncBulk records one bulk transfer carrying n payload bytes.
func (c *Counters) IncBulk(n int64) {
	c.bulkXfers.Add(1)
	c.bulkBytes.Add(n)
}

// IncDCASLocal records a locale-local emulated DCAS.
func (c *Counters) IncDCASLocal() { c.dcasLocal.Add(1) }

// IncDCASRemote records a remote DCAS shipped as an active message.
func (c *Counters) IncDCASRemote() { c.dcasRemote.Add(1) }

// IncAggFlush records one aggregated flush carrying ops operations and
// bytes payload bytes. The bulk transfer the flush rides on is counted
// separately (via IncBulk) by the flusher.
func (c *Counters) IncAggFlush(ops, bytes int64) {
	c.aggFlushes.Add(1)
	c.aggOps.Add(ops)
	c.aggBytes.Add(bytes)
}

// IncCacheHit records one read-replication cache hit: a Get served
// from the calling locale's replica without touching the owner. Hits
// are locale-local by definition, so they never enter Remote() or the
// matrix — the counter exists to make the avoided communication
// visible next to the communication that did happen.
func (c *Counters) IncCacheHit() { c.cacheHits.Add(1) }

// IncCacheMiss records one read-replication cache miss (the lookup
// fell through to the owner-computed path, whose remote events are
// counted separately by the dispatch layer as usual).
func (c *Counters) IncCacheMiss() { c.cacheMiss.Add(1) }

// IncCacheInval records one executed invalidation operation. A
// write-through mutation broadcasts one such op per locale, so this
// counter exposes the write-amplification cost of replication; the
// transport the ops ride (aggregated flushes) is counted separately.
func (c *Counters) IncCacheInval() { c.cacheInval.Add(1) }

// Snapshot returns a point-in-time copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Puts:       c.puts.Load(),
		Gets:       c.gets.Load(),
		NICAMOs:    c.nicAMOs.Load(),
		AMAMOs:     c.amAMOs.Load(),
		LocalAMOs:  c.localAMOs.Load(),
		OnStmts:    c.onStmts.Load(),
		BulkXfers:  c.bulkXfers.Load(),
		BulkBytes:  c.bulkBytes.Load(),
		DCASLocal:  c.dcasLocal.Load(),
		DCASRemote: c.dcasRemote.Load(),
		AggFlushes: c.aggFlushes.Load(),
		AggOps:     c.aggOps.Load(),
		AggBytes:   c.aggBytes.Load(),
		CacheHits:  c.cacheHits.Load(),
		CacheMiss:  c.cacheMiss.Load(),
		CacheInval: c.cacheInval.Load(),
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.puts.Store(0)
	c.gets.Store(0)
	c.nicAMOs.Store(0)
	c.amAMOs.Store(0)
	c.localAMOs.Store(0)
	c.onStmts.Store(0)
	c.bulkXfers.Store(0)
	c.bulkBytes.Store(0)
	c.dcasLocal.Store(0)
	c.dcasRemote.Store(0)
	c.aggFlushes.Store(0)
	c.aggOps.Store(0)
	c.aggBytes.Store(0)
	c.cacheHits.Store(0)
	c.cacheMiss.Store(0)
	c.cacheInval.Store(0)
}

// Sub returns the element-wise difference s - old, for measuring the
// communication performed by one region of code.
func (s Snapshot) Sub(old Snapshot) Snapshot {
	return Snapshot{
		Puts:       s.Puts - old.Puts,
		Gets:       s.Gets - old.Gets,
		NICAMOs:    s.NICAMOs - old.NICAMOs,
		AMAMOs:     s.AMAMOs - old.AMAMOs,
		LocalAMOs:  s.LocalAMOs - old.LocalAMOs,
		OnStmts:    s.OnStmts - old.OnStmts,
		BulkXfers:  s.BulkXfers - old.BulkXfers,
		BulkBytes:  s.BulkBytes - old.BulkBytes,
		DCASLocal:  s.DCASLocal - old.DCASLocal,
		DCASRemote: s.DCASRemote - old.DCASRemote,
		AggFlushes: s.AggFlushes - old.AggFlushes,
		AggOps:     s.AggOps - old.AggOps,
		AggBytes:   s.AggBytes - old.AggBytes,
		CacheHits:  s.CacheHits - old.CacheHits,
		CacheMiss:  s.CacheMiss - old.CacheMiss,
		CacheInval: s.CacheInval - old.CacheInval,
	}
}

// Remote reports the total number of operations that crossed a locale
// boundary (everything except local AMOs and local DCAS).
func (s Snapshot) Remote() int64 {
	return s.Puts + s.Gets + s.NICAMOs + s.AMAMOs + s.OnStmts + s.BulkXfers + s.DCASRemote
}

// String formats the snapshot as a compact single-line summary. The
// cache counters are appended only when the run used the read
// replication layer, keeping the common case short.
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"puts=%d gets=%d nicAMO=%d amAMO=%d localAMO=%d on=%d bulk=%d/%dB dcas=%d/%d agg=%d/%d/%dB",
		s.Puts, s.Gets, s.NICAMOs, s.AMAMOs, s.LocalAMOs, s.OnStmts,
		s.BulkXfers, s.BulkBytes, s.DCASLocal, s.DCASRemote,
		s.AggFlushes, s.AggOps, s.AggBytes)
	if s.CacheHits != 0 || s.CacheMiss != 0 || s.CacheInval != 0 {
		out += fmt.Sprintf(" cache=%d/%d/%d", s.CacheHits, s.CacheMiss, s.CacheInval)
	}
	return out
}
