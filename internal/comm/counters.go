package comm

import (
	"fmt"
	"sync/atomic"
)

// Counters records communication-diagnostic totals, in the spirit of
// Chapel's commDiagnostics module. Every simulated communication event
// increments exactly one counter, so tests can make deterministic
// assertions about communication volume — for example that privatized
// instance lookup performs zero communication, or that scatter lists
// reduce N remote frees to one bulk transfer per locale.
//
// The totals live in cache-line-padded shards merged at Snapshot time:
// every Inc* takes a shard hint (the source locale, which each call
// site already has in hand), so tasks on different locales increment
// disjoint cache lines instead of hammering one falsely-shared cluster
// of sixteen adjacent words. Sharding is pure measurement-plane
// plumbing — addition is commutative, so Snapshot/Sub/Reset observe
// exactly the values an unsharded counter struct would, which is what
// lets the counter-asserted ablation tests stay byte-for-byte
// unchanged across the sharding.
//
// All methods are safe for concurrent use.
type Counters struct {
	shards [counterShards]counterShard
}

// counterShards is the number of padded cells each counter is split
// across. A power of two so the shard pick is a mask, and comfortably
// larger than the locale counts the workload sweeps use, so per-locale
// hints map to distinct shards.
const counterShards = 64

// Indices into a shard's value array, one per counter.
const (
	cPuts = iota
	cGets
	cNICAMOs
	cAMAMOs
	cLocalAMOs
	cOnStmts
	cBulkXfers
	cBulkBytes
	cDCASLocal
	cDCASRemote
	cAggFlushes
	cAggOps
	cAggBytes
	cCacheHits
	cCacheMiss
	cCacheInval
	cAggOpsEnq
	cAggCombined
	cCASAttempts
	cCASRetries
	cMigAdopted
	cMigRetired
	cMigBytes
	cMigReroutes
	cOpsLost
	cOpsParked
	cOpsRedelivered
	cOpsExpired
	numCounters
)

// counterShard is one padded cell: 28 counters span three and a half
// 64-byte cache lines, and the trailing pad keeps
// neighbouring shards' lines from abutting whatever alignment the
// enclosing array lands on.
type counterShard struct {
	v [numCounters]atomic.Int64
	_ [64]byte
}

// shard maps a source-locale hint to its padded cell. Hints are locale
// ids (always >= 0); the uint conversion keeps an out-of-convention
// negative hint from panicking the hot path.
func (c *Counters) shard(src int) *counterShard {
	return &c.shards[uint(src)%counterShards]
}

// total sums one counter across every shard.
func (c *Counters) total(ctr int) int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v[ctr].Load()
	}
	return t
}

// Snapshot is an immutable copy of the counter values at one instant.
type Snapshot struct {
	Puts       int64
	Gets       int64
	NICAMOs    int64
	AMAMOs     int64
	LocalAMOs  int64
	OnStmts    int64
	BulkXfers  int64
	BulkBytes  int64
	DCASLocal  int64
	DCASRemote int64
	AggFlushes int64
	AggOps     int64
	AggBytes   int64
	CacheHits  int64
	CacheMiss  int64
	CacheInval int64

	// Write-absorption counters. AggOpsEnq counts operations handed to
	// an aggregator's Enqueue; AggOps (above) counts operations that
	// actually shipped at flush time. Their gap is AggCombined: ops
	// absorbed into an already-buffered mergeable op before the wire.
	AggOpsEnq   int64
	AggCombined int64

	// CAS accounting, threaded through the pgas word primitives the
	// same way shard hints were: CASAttempts counts every
	// compare-and-swap tried on a simulated word (local or remote,
	// including DCAS), CASRetries the failed subset. Neither enters
	// Remote() — a CAS's communication is already counted by its
	// transport (NIC AMO, AM, or on-stmt).
	CASAttempts int64
	CASRetries  int64

	// Ownership-migration accounting. MigAdopted counts shards (bucket
	// contents) adopted by a destination locale, MigRetired shards
	// retired by the source after the handoff — a balanced run has
	// MigAdopted == MigRetired, each equal to the controller's migration
	// count. MigBytes is the payload volume shipped through the bulk
	// framing by migrations (key + value words per entry, the same
	// convention as aggregated map writes). MigReroutes counts
	// delivered ops that found a stale owner generation and re-routed to
	// the current owner. None of these enters Remote() — the on-stmts
	// and bulk transfers a migration rides are counted by their
	// transports as usual.
	MigAdopted  int64
	MigRetired  int64
	MigBytes    int64
	MigReroutes int64

	// OpsLost is the lost-ops ledger: operations refused by the
	// dispatch layer because their destination was crashed (fail-stop —
	// a dead locale never comes back, so neither can its traffic), plus
	// op budget a crashed locale's tasks never issued. A lost op
	// increments OpsLost and nothing else (no on-stmt, no matrix entry,
	// no delay), so the ledger is the exact availability cost of a
	// crash. Never enters Remote() — a lost op crossed no locale
	// boundary. Partition refusals do NOT land here: partitions are
	// transient, so their ops park in the retry plane below.
	OpsLost int64

	// Retry-plane books. Operations refused because the
	// source/destination pair is partitioned (both locales alive) park
	// in the per-locale retry ledger instead of draining to OpsLost:
	// OpsParked counts every op that entered the ledger, OpsRedelivered
	// the subset that made it to its destination after a heal or a
	// backoff retry, OpsExpired the subset dropped at the retry
	// deadline or on ledger overflow. Once the ledger drains
	// (System.DrainParking or Shutdown),
	// OpsParked == OpsRedelivered + OpsExpired exactly — the retry
	// plane's settlement invariant. None enters Remote(): a parked op's
	// redelivery flight is charged to the bulk counters by the
	// transport when it actually flies.
	OpsParked      int64
	OpsRedelivered int64
	OpsExpired     int64
}

// IncPut records a small remote write issued by locale src.
func (c *Counters) IncPut(src int) { c.shard(src).v[cPuts].Add(1) }

// IncGet records a small remote read issued by locale src.
func (c *Counters) IncGet(src int) { c.shard(src).v[cGets].Add(1) }

// IncNICAMO records a NIC-offloaded atomic issued by locale src.
func (c *Counters) IncNICAMO(src int) { c.shard(src).v[cNICAMOs].Add(1) }

// IncAMAMO records an active-message atomic issued by locale src.
func (c *Counters) IncAMAMO(src int) { c.shard(src).v[cAMAMOs].Add(1) }

// IncLocalAMO records a locale-local CPU atomic on a network word.
func (c *Counters) IncLocalAMO(src int) { c.shard(src).v[cLocalAMOs].Add(1) }

// IncOnStmt records a remote procedure call issued by locale src.
func (c *Counters) IncOnStmt(src int) { c.shard(src).v[cOnStmts].Add(1) }

// IncBulk records one bulk transfer carrying n payload bytes, issued
// by locale src.
func (c *Counters) IncBulk(src int, n int64) {
	s := c.shard(src)
	s.v[cBulkXfers].Add(1)
	s.v[cBulkBytes].Add(n)
}

// IncDCASLocal records a locale-local emulated DCAS.
func (c *Counters) IncDCASLocal(src int) { c.shard(src).v[cDCASLocal].Add(1) }

// IncDCASRemote records a remote DCAS shipped as an active message by
// locale src.
func (c *Counters) IncDCASRemote(src int) { c.shard(src).v[cDCASRemote].Add(1) }

// IncAggFlush records one aggregated flush from locale src carrying
// ops operations and bytes payload bytes. The bulk transfer the flush
// rides on is counted separately (via IncBulk) by the flusher.
func (c *Counters) IncAggFlush(src int, ops, bytes int64) {
	s := c.shard(src)
	s.v[cAggFlushes].Add(1)
	s.v[cAggOps].Add(ops)
	s.v[cAggBytes].Add(bytes)
}

// IncCacheHit records one read-replication cache hit on locale src: a
// Get served from the calling locale's replica without touching the
// owner. Hits are locale-local by definition, so they never enter
// Remote() or the matrix — the counter exists to make the avoided
// communication visible next to the communication that did happen.
func (c *Counters) IncCacheHit(src int) { c.shard(src).v[cCacheHits].Add(1) }

// IncCacheMiss records one read-replication cache miss on locale src
// (the lookup fell through to the owner-computed path, whose remote
// events are counted separately by the dispatch layer as usual).
func (c *Counters) IncCacheMiss(src int) { c.shard(src).v[cCacheMiss].Add(1) }

// IncAggEnqueue records one operation handed to an aggregator by
// locale src, before any combining. Together with AggOps (ops shipped
// at flush) it bounds the absorption rate: shipped + combined == enq.
func (c *Counters) IncAggEnqueue(src int) { c.shard(src).v[cAggOpsEnq].Add(1) }

// IncAggCombined records one enqueued operation absorbed into an
// already-buffered mergeable op on locale src instead of occupying its
// own buffer slot.
func (c *Counters) IncAggCombined(src int) { c.shard(src).v[cAggCombined].Add(1) }

// IncCAS records one compare-and-swap attempt on a simulated word by
// locale src; ok reports whether it succeeded. Failed attempts also
// count as retries, so a CAS loop that spins k times records k
// attempts and k-1 retries.
func (c *Counters) IncCAS(src int, ok bool) {
	s := c.shard(src)
	s.v[cCASAttempts].Add(1)
	if !ok {
		s.v[cCASRetries].Add(1)
	}
}

// IncMigAdopt records one migrated shard's contents adopted by locale
// src (the destination executing the migration's fill op).
func (c *Counters) IncMigAdopt(src int) { c.shard(src).v[cMigAdopted].Add(1) }

// IncMigRetire records one shard retired by locale src after its
// contents were handed off to a new owner.
func (c *Counters) IncMigRetire(src int) { c.shard(src).v[cMigRetired].Add(1) }

// IncMigBytes records n payload bytes shipped by a migration's bulk
// fill from locale src. The bulk framing the bytes ride is charged to
// the aggregated-volume counters by the transport, as usual.
func (c *Counters) IncMigBytes(src int, n int64) { c.shard(src).v[cMigBytes].Add(n) }

// IncMigReroute records one delivered operation that observed a stale
// owner generation on locale src and re-dispatched itself to the
// current owner.
func (c *Counters) IncMigReroute(src int) { c.shard(src).v[cMigReroutes].Add(1) }

// IncOpsLost records n operations lost to a liveness fault, attributed
// to the locale that tried (or would have tried) to issue them.
func (c *Counters) IncOpsLost(src int, n int64) { c.shard(src).v[cOpsLost].Add(n) }

// IncOpsParked records n partition-refused operations entering locale
// src's retry ledger.
func (c *Counters) IncOpsParked(src int, n int64) { c.shard(src).v[cOpsParked].Add(n) }

// IncOpsRedelivered records n parked operations redelivered to their
// destination by locale src after a heal or backoff retry.
func (c *Counters) IncOpsRedelivered(src int, n int64) { c.shard(src).v[cOpsRedelivered].Add(n) }

// IncOpsExpired records n parked operations dropped by locale src at
// the retry deadline or on ledger overflow.
func (c *Counters) IncOpsExpired(src int, n int64) { c.shard(src).v[cOpsExpired].Add(n) }

// IncCacheInval records one invalidation operation executed on locale
// src. A write-through mutation broadcasts one such op per locale, so
// this counter exposes the write-amplification cost of replication;
// the transport the ops ride (aggregated flushes) is counted
// separately.
func (c *Counters) IncCacheInval(src int) { c.shard(src).v[cCacheInval].Add(1) }

// Snapshot returns a point-in-time copy of all counters, merging the
// shards. Concurrent increments land in either the before or after
// side of a Sub window exactly as they would with unsharded counters.
func (c *Counters) Snapshot() Snapshot {
	var sums [numCounters]int64
	for ctr := range sums {
		sums[ctr] = c.total(ctr)
	}
	return Snapshot{
		Puts:       sums[cPuts],
		Gets:       sums[cGets],
		NICAMOs:    sums[cNICAMOs],
		AMAMOs:     sums[cAMAMOs],
		LocalAMOs:  sums[cLocalAMOs],
		OnStmts:    sums[cOnStmts],
		BulkXfers:  sums[cBulkXfers],
		BulkBytes:  sums[cBulkBytes],
		DCASLocal:  sums[cDCASLocal],
		DCASRemote: sums[cDCASRemote],
		AggFlushes: sums[cAggFlushes],
		AggOps:     sums[cAggOps],
		AggBytes:   sums[cAggBytes],
		CacheHits:  sums[cCacheHits],
		CacheMiss:  sums[cCacheMiss],
		CacheInval: sums[cCacheInval],

		AggOpsEnq:   sums[cAggOpsEnq],
		AggCombined: sums[cAggCombined],
		CASAttempts: sums[cCASAttempts],
		CASRetries:  sums[cCASRetries],

		MigAdopted:  sums[cMigAdopted],
		MigRetired:  sums[cMigRetired],
		MigBytes:    sums[cMigBytes],
		MigReroutes: sums[cMigReroutes],

		OpsLost: sums[cOpsLost],

		OpsParked:      sums[cOpsParked],
		OpsRedelivered: sums[cOpsRedelivered],
		OpsExpired:     sums[cOpsExpired],
	}
}

// Reset zeroes every counter in every shard.
func (c *Counters) Reset() {
	for i := range c.shards {
		for ctr := 0; ctr < numCounters; ctr++ {
			c.shards[i].v[ctr].Store(0)
		}
	}
}

// Sub returns the element-wise difference s - old, for measuring the
// communication performed by one region of code.
func (s Snapshot) Sub(old Snapshot) Snapshot {
	return Snapshot{
		Puts:       s.Puts - old.Puts,
		Gets:       s.Gets - old.Gets,
		NICAMOs:    s.NICAMOs - old.NICAMOs,
		AMAMOs:     s.AMAMOs - old.AMAMOs,
		LocalAMOs:  s.LocalAMOs - old.LocalAMOs,
		OnStmts:    s.OnStmts - old.OnStmts,
		BulkXfers:  s.BulkXfers - old.BulkXfers,
		BulkBytes:  s.BulkBytes - old.BulkBytes,
		DCASLocal:  s.DCASLocal - old.DCASLocal,
		DCASRemote: s.DCASRemote - old.DCASRemote,
		AggFlushes: s.AggFlushes - old.AggFlushes,
		AggOps:     s.AggOps - old.AggOps,
		AggBytes:   s.AggBytes - old.AggBytes,
		CacheHits:  s.CacheHits - old.CacheHits,
		CacheMiss:  s.CacheMiss - old.CacheMiss,
		CacheInval: s.CacheInval - old.CacheInval,

		AggOpsEnq:   s.AggOpsEnq - old.AggOpsEnq,
		AggCombined: s.AggCombined - old.AggCombined,
		CASAttempts: s.CASAttempts - old.CASAttempts,
		CASRetries:  s.CASRetries - old.CASRetries,

		MigAdopted:  s.MigAdopted - old.MigAdopted,
		MigRetired:  s.MigRetired - old.MigRetired,
		MigBytes:    s.MigBytes - old.MigBytes,
		MigReroutes: s.MigReroutes - old.MigReroutes,

		OpsLost: s.OpsLost - old.OpsLost,

		OpsParked:      s.OpsParked - old.OpsParked,
		OpsRedelivered: s.OpsRedelivered - old.OpsRedelivered,
		OpsExpired:     s.OpsExpired - old.OpsExpired,
	}
}

// Remote reports the total number of operations that crossed a locale
// boundary (everything except local AMOs and local DCAS).
func (s Snapshot) Remote() int64 {
	return s.Puts + s.Gets + s.NICAMOs + s.AMAMOs + s.OnStmts + s.BulkXfers + s.DCASRemote
}

// String formats the snapshot as a compact single-line summary. The
// cache counters are appended only when the run used the read
// replication layer, keeping the common case short.
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"puts=%d gets=%d nicAMO=%d amAMO=%d localAMO=%d on=%d bulk=%d/%dB dcas=%d/%d agg=%d/%d/%dB",
		s.Puts, s.Gets, s.NICAMOs, s.AMAMOs, s.LocalAMOs, s.OnStmts,
		s.BulkXfers, s.BulkBytes, s.DCASLocal, s.DCASRemote,
		s.AggFlushes, s.AggOps, s.AggBytes)
	if s.CacheHits != 0 || s.CacheMiss != 0 || s.CacheInval != 0 {
		out += fmt.Sprintf(" cache=%d/%d/%d", s.CacheHits, s.CacheMiss, s.CacheInval)
	}
	if s.AggCombined != 0 {
		out += fmt.Sprintf(" absorbed=%d/%denq", s.AggCombined, s.AggOpsEnq)
	}
	if s.CASAttempts != 0 {
		out += fmt.Sprintf(" cas=%d/%dretry", s.CASAttempts, s.CASRetries)
	}
	if s.MigAdopted != 0 || s.MigRetired != 0 || s.MigReroutes != 0 {
		out += fmt.Sprintf(" mig=%d/%d/%dB/%dre", s.MigAdopted, s.MigRetired, s.MigBytes, s.MigReroutes)
	}
	if s.OpsLost != 0 {
		out += fmt.Sprintf(" lost=%d", s.OpsLost)
	}
	if s.OpsParked != 0 || s.OpsRedelivered != 0 || s.OpsExpired != 0 {
		out += fmt.Sprintf(" parked=%d/%dre/%dexp", s.OpsParked, s.OpsRedelivered, s.OpsExpired)
	}
	return out
}
