package comm

import "testing"

// Scaling the zero profile stays zero.
func TestScaleZeroProfile(t *testing.T) {
	if got := Zero().Scale(100); got != (LatencyProfile{}) {
		t.Fatalf("Zero().Scale(100) = %+v", got)
	}
}

// Scaling preserves the regime ordering the figures depend on:
// local ≪ NIC atomic ≪ AM round trip, at any positive factor.
func TestScalePreservesOrdering(t *testing.T) {
	p := DefaultProfile()
	for _, f := range []float64{0.5, 1, 2, 10} {
		s := p.Scale(f)
		if !(s.LocalAtomicNS <= s.NICAtomicNS && s.NICAtomicNS < s.AMRoundTripNS) {
			t.Fatalf("Scale(%v) broke regime ordering: %+v", f, s)
		}
		if s.NICAtomicNS != int64(float64(p.NICAtomicNS)*f) {
			t.Fatalf("Scale(%v).NICAtomicNS = %d", f, s.NICAtomicNS)
		}
		if s.BulkStartupNS != int64(float64(p.BulkStartupNS)*f) ||
			s.BulkPerByteNS != int64(float64(p.BulkPerByteNS)*f) {
			t.Fatalf("Scale(%v) bulk terms: %+v", f, s)
		}
	}
}

// Scale by zero disables every delay.
func TestScaleToZero(t *testing.T) {
	if got := DefaultProfile().Scale(0); got != (LatencyProfile{}) {
		t.Fatalf("Scale(0) = %+v", got)
	}
}

// ParseBackend and Backend.String round-trip for every valid backend;
// unknown names are rejected.
func TestParseBackendRoundTrip(t *testing.T) {
	for _, b := range []Backend{BackendNone, BackendUGNI} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	for _, bad := range []string{"", "NONE", "gasnet", "ugni "} {
		if _, err := ParseBackend(bad); err == nil {
			t.Fatalf("ParseBackend(%q) did not fail", bad)
		}
	}
	if got := Backend(99).String(); got != "Backend(99)" {
		t.Fatalf("Backend(99).String() = %q", got)
	}
}
