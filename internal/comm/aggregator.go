package comm

import (
	"fmt"

	"gopgas/internal/trace"
)

// Aggregation: the generalisation of the EpochManager's scatter lists
// into a first-class communication layer. Instead of paying one round
// trip per small remote operation, an Aggregator buffers operations by
// destination locale and ships each destination's buffer as a single
// bulk transfer, charging one BulkStartupNS + bytes·BulkPerByteNS per
// flush rather than n round trips. This is the same move Chapel's
// ecosystem made after the paper (CopyAggregation in Arkouda / the
// Aggregators module): per-op latency becomes per-batch latency.
//
// The Aggregator here is mechanism-free policy, like the rest of this
// package: it owns the buffers, the flush policy and the accounting,
// while the delivery callback supplied by the pgas layer owns the
// actual execution of a batch on its destination.

// FlushPolicy selects when a destination's buffer is shipped.
type FlushPolicy int

const (
	// FlushOnCapacity ships a destination's buffer as soon as it holds
	// Capacity operations; Flush ships whatever remains. This is the
	// default policy.
	FlushOnCapacity FlushPolicy = iota

	// FlushManual never ships automatically: buffers grow without bound
	// until an explicit Flush or FlushDst. Useful when the caller knows
	// the batch boundary (e.g. the epoch scatter phase).
	FlushManual
)

// DefaultAggCapacity is the per-destination buffer capacity used when
// AggConfig.Capacity is unset.
const DefaultAggCapacity = 256

// AggConfig configures an Aggregator.
type AggConfig struct {
	// Capacity is the per-destination operation count that triggers an
	// automatic flush under FlushOnCapacity. <= 0 selects
	// DefaultAggCapacity.
	Capacity int

	// Policy selects the flush policy.
	Policy FlushPolicy

	// Combine enables in-flight write absorption: an enqueued op whose
	// payload implements CombinableOp is merged into an already-buffered
	// op with the same CombineKey instead of occupying its own slot.
	// Off by default — combining is an opt-in policy because it changes
	// the shipped-op stream (though never the observable final state;
	// see CombinableOp).
	Combine bool
}

// CombineKey identifies the merge target of a combinable operation:
// two buffered ops with equal keys address the same logical cell and
// may be merged. Kind namespaces the key space per operation type
// (an Add and a Put to the same word must not merge), Ref anchors the
// key to a structure or word identity (any comparable value — a
// pointer, a Privatized handle), and K carries the cell index or
// hashmap key within that structure.
type CombineKey struct {
	Kind uint8
	Ref  any
	K    uint64
}

// CombinableOp is the opt-in merge surface of an aggregated
// operation. When AggConfig.Combine is set and an enqueued op's Exec
// payload implements CombinableOp, the aggregator asks the buffered
// op with the same CombineKey to Absorb the later one.
//
// Absorb folds later into the receiver in enqueue order — summing a
// delta (commutative Add), replacing a value (last-writer Put), or
// concatenating a batch — and reports how many payload bytes the
// merged op grew by (zero for value merges, positive for
// concatenation) plus whether the merge happened at all. Returning
// ok=false keeps both ops; the aggregator never retries the pair.
// Absorption must preserve the observable outcome of executing both
// ops in order: per-key last-writer order is maintained because ops
// merge only within one task's buffer, where enqueue order IS program
// order.
type CombinableOp interface {
	CombineKey() CombineKey
	Absorb(later CombinableOp) (grow int64, ok bool)
}

// Op is one buffered remote operation: an opaque payload interpreted
// by the delivery callback, plus the number of payload bytes the
// operation contributes to its flush's bulk transfer.
type Op struct {
	Bytes int64
	Exec  any
}

// Aggregator buffers remote operations by destination locale and ships
// each buffer as one bulk transfer. It is NOT safe for concurrent use:
// each task owns its own aggregator (the pgas layer hangs one off every
// Ctx), mirroring how real aggregators keep per-task buffers to stay
// off the hot path's locks.
type Aggregator struct {
	src      int
	cfg      AggConfig
	counters *Counters
	matrix   *Matrix
	lat      LatencyProfile
	perturb  Perturbation
	deliver  func(dst int, batch []Op)
	bufs     [][]Op
	bytes    []int64

	tracer    *trace.Recorder // nil unless SetTracer installed one
	traceTask uint64

	// idx maps CombineKey → buffer slot per destination, built lazily
	// when Combine is on and dropped whole at flush (the slots it holds
	// are positions in the flushed buffer).
	idx []map[CombineKey]int
}

// NewAggregator creates an aggregator for operations issued from
// locale src toward nDest destinations. Every flush increments the
// aggregation counters and the (src, dst) matrix cell, charges the
// bulk-transfer latency from lat, and hands the batch to deliver.
func NewAggregator(src, nDest int, cfg AggConfig, counters *Counters, matrix *Matrix, lat LatencyProfile, deliver func(dst int, batch []Op)) *Aggregator {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultAggCapacity
	}
	return &Aggregator{
		src:      src,
		cfg:      cfg,
		counters: counters,
		matrix:   matrix,
		lat:      lat,
		deliver:  deliver,
		bufs:     make([][]Op, nDest),
		bytes:    make([]int64, nDest),
		idx:      make([]map[CombineKey]int, nDest),
	}
}

// Capacity returns the effective per-destination capacity.
func (a *Aggregator) Capacity() int { return a.cfg.Capacity }

// SetPerturbation installs a per-locale latency fault plan: every
// flush's bulk cost is scaled by the slower of (src, dst), mirroring
// how the dispatch layer perturbs unaggregated operations. Counters
// are unaffected. Call before the first Enqueue.
func (a *Aggregator) SetPerturbation(p Perturbation) { a.perturb = p }

// SetTracer installs a span recorder: every flush records a KindFlush
// span on the source locale carrying the batch's byte and op counts.
// task identifies the owning task in exported traces. A nil tracer
// (the default) keeps the flush path trace-free.
func (a *Aggregator) SetTracer(tr *trace.Recorder, task uint64) {
	a.tracer = tr
	a.traceTask = task
}

// Enqueue buffers op for dst, flushing the destination's buffer first
// if the policy is FlushOnCapacity and the buffer is full. Under
// AggConfig.Combine a combinable op may instead be absorbed into an
// already-buffered op with the same merge key, in which case nothing
// is appended and no flush can trigger.
func (a *Aggregator) Enqueue(dst int, op Op) {
	if dst < 0 || dst >= len(a.bufs) {
		panic(fmt.Sprintf("comm: aggregator destination %d out of range [0, %d)", dst, len(a.bufs)))
	}
	a.counters.IncAggEnqueue(a.src)
	if a.cfg.Combine {
		if co, isCombinable := op.Exec.(CombinableOp); isCombinable {
			key := co.CombineKey()
			if i, hit := a.idx[dst][key]; hit {
				if grow, ok := a.bufs[dst][i].Exec.(CombinableOp).Absorb(co); ok {
					a.bufs[dst][i].Bytes += grow
					a.bytes[dst] += grow
					a.counters.IncAggCombined(a.src)
					return
				}
			}
			if a.idx[dst] == nil {
				a.idx[dst] = make(map[CombineKey]int)
			}
			a.idx[dst][key] = len(a.bufs[dst])
		}
	}
	a.bufs[dst] = append(a.bufs[dst], op)
	a.bytes[dst] += op.Bytes
	if a.cfg.Policy == FlushOnCapacity && len(a.bufs[dst]) >= a.cfg.Capacity {
		a.FlushDst(dst)
	}
}

// PendingTo returns the number of operations buffered for dst.
func (a *Aggregator) PendingTo(dst int) int { return len(a.bufs[dst]) }

// Pending returns the total number of buffered operations.
func (a *Aggregator) Pending() int {
	n := 0
	for _, b := range a.bufs {
		n += len(b)
	}
	return n
}

// FlushDst ships dst's buffer as one bulk transfer: the aggregation
// counters record the flush, the bulk counters record the transfer it
// rides on (an aggregated flush IS a bulk shipment, so scatter-list
// style assertions keep holding), the matrix attributes it to
// (src, dst), and the initiating task pays one startup plus per-byte
// cost for the whole batch. An empty buffer is a no-op.
func (a *Aggregator) FlushDst(dst int) {
	batch := a.bufs[dst]
	if len(batch) == 0 {
		return
	}
	bytes := a.bytes[dst]
	a.bufs[dst] = nil
	a.bytes[dst] = 0
	a.idx[dst] = nil
	var sp trace.Span
	if a.tracer != nil {
		sp = a.tracer.Begin(a.src, trace.KindFlush, a.traceTask, a.src, dst, bytes, int64(len(batch)))
	}
	a.counters.IncAggFlush(a.src, int64(len(batch)), bytes)
	a.counters.IncBulk(a.src, bytes)
	if a.matrix != nil && dst != a.src {
		a.matrix.Inc(a.src, dst)
	}
	ns := a.lat.BulkStartupNS + bytes*a.lat.BulkPerByteNS
	if a.perturb.Enabled() {
		ns = int64(float64(ns) * a.perturb.PairScale(a.src, dst))
	}
	Delay(ns)
	a.deliver(dst, batch)
	sp.End()
}

// Flush ships every non-empty buffer.
func (a *Aggregator) Flush() {
	for dst := range a.bufs {
		a.FlushDst(dst)
	}
}
