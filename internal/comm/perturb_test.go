package comm

import "testing"

func TestPerturbationZeroValue(t *testing.T) {
	var p Perturbation
	if p.Enabled() {
		t.Fatal("zero Perturbation must be disabled")
	}
	if got := p.ScaleFor(0); got != 1.0 {
		t.Fatalf("ScaleFor on zero value = %v, want 1.0", got)
	}
	if got := p.PairScale(3, 7); got != 1.0 {
		t.Fatalf("PairScale on zero value = %v, want 1.0", got)
	}
}

func TestPerturbationScaleFor(t *testing.T) {
	p := Perturbation{Scales: []float64{1, 4, 0, -2}}
	cases := []struct {
		locale int
		want   float64
	}{
		{0, 1}, {1, 4},
		{2, 1},  // non-positive entry -> nominal
		{3, 1},  // negative entry -> nominal
		{9, 1},  // beyond the slice -> nominal
		{-1, 1}, // out of range -> nominal
	}
	for _, c := range cases {
		if got := p.ScaleFor(c.locale); got != c.want {
			t.Errorf("ScaleFor(%d) = %v, want %v", c.locale, got, c.want)
		}
	}
}

func TestPerturbationPairScaleTakesSlowerEndpoint(t *testing.T) {
	p := SlowLocale(4, 2, 8.0)
	if !p.Enabled() {
		t.Fatal("SlowLocale plan must be enabled")
	}
	if got := p.PairScale(0, 1); got != 1.0 {
		t.Fatalf("unperturbed pair = %v, want 1.0", got)
	}
	if got := p.PairScale(0, 2); got != 8.0 {
		t.Fatalf("toward slow locale = %v, want 8.0", got)
	}
	if got := p.PairScale(2, 3); got != 8.0 {
		t.Fatalf("from slow locale = %v, want 8.0", got)
	}
	if got := p.PairScale(2, 2); got != 8.0 {
		t.Fatalf("slow-local pair = %v, want 8.0", got)
	}
}

func TestPerturbationProfileFor(t *testing.T) {
	base := DefaultProfile()
	p := SlowLocale(2, 1, 3.0)
	nominal := p.ProfileFor(base, 0)
	if nominal != base {
		t.Fatalf("nominal locale profile changed: %+v vs %+v", nominal, base)
	}
	slow := p.ProfileFor(base, 1)
	if slow.NICAtomicNS != 3*base.NICAtomicNS || slow.AMRoundTripNS != 3*base.AMRoundTripNS {
		t.Fatalf("slow locale profile not scaled 3x: %+v", slow)
	}
}

func TestUniformPerturbation(t *testing.T) {
	p := UniformPerturbation(3, 2.5)
	for i := 0; i < 3; i++ {
		if got := p.ScaleFor(i); got != 2.5 {
			t.Fatalf("ScaleFor(%d) = %v, want 2.5", i, got)
		}
	}
}
