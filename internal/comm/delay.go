package comm

import (
	"runtime"
	"time"
)

// Delay busy-waits for approximately ns nanoseconds, yielding to the Go
// scheduler so that concurrent simulated operations overlap the way
// in-flight network operations do on real hardware. A sleeping
// goroutine models a task blocked on the network: the CPU is free to
// run other tasks, which is exactly the latency-hiding behaviour the
// figures depend on.
//
// For waits shorter than the OS timer resolution (~50µs) a
// yield-interleaved spin is used; longer waits sleep. ns <= 0 is a
// no-op, so the zero latency profile costs nothing but the branch.
func Delay(ns int64) {
	if ns <= 0 {
		return
	}
	if ns >= 50_000 {
		time.Sleep(time.Duration(ns))
		return
	}
	deadline := time.Now().Add(time.Duration(ns))
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
