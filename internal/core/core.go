// Package core groups the paper's two contributions:
//
//   - core/atomics: AtomicObject and LocalAtomicObject — atomic
//     operations on arbitrary (heap-allocated) objects, with pointer
//     compression to keep RDMA atomics, a wide-pointer/DCAS fallback
//     beyond 2^16 locales, optional ABA protection, and the
//     future-work descriptor-table mode.
//   - core/epoch: EpochManager and LocalEpochManager — distributed
//     epoch-based memory reclamation with privatized per-locale
//     instances, wait-free limbo lists, token registration, elected
//     epoch advancement, and locale-sorted scatter lists for bulk
//     remote deallocation.
//
// The package itself holds no code; see the subpackages.
package core
