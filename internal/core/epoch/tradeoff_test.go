package epoch

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/hazard"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// The classic EBR-vs-HP trade-off, demonstrated as a test: a single
// stalled reader (a token pinned and never unpinned) blocks *all*
// epoch advancement, so EBR garbage grows without bound; hazard
// pointers keep reclaiming everything except the one object the
// stalled reader actually protects. The paper chooses EBR for its
// cheap read path (Figure 7) and accepts this failure mode; the test
// pins down both sides of that trade.
func TestStalledReaderTradeoff(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)

	const churn = 300

	// --- EBR: one stalled token freezes reclamation. ---
	{
		em := NewEpochManager(c)
		stalled := em.Register(c)
		stalled.Pin(c) // never unpins

		writer := em.Register(c)
		for i := 0; i < churn; i++ {
			writer.Pin(c)
			writer.DeferDelete(c, c.Alloc(&payload{v: i}))
			writer.Unpin(c)
			writer.TryReclaim(c)
		}
		st := em.Stats(c)
		// One advance may succeed (the stalled token is in the current
		// epoch at first); after that, nothing.
		if st.Advances > 1 {
			t.Fatalf("EBR advanced %d times under a stalled reader", st.Advances)
		}
		if st.Reclaimed != 0 {
			t.Fatalf("EBR reclaimed %d objects under a stalled reader", st.Reclaimed)
		}
		// Release the stall: reclamation drains completely.
		stalled.Unpin(c)
		stalled.Unregister(c)
		writer.Unregister(c)
		em.Clear(c)
		if st = em.Stats(c); st.Reclaimed != churn {
			t.Fatalf("EBR reclaimed %d of %d after the stall cleared", st.Reclaimed, churn)
		}
	}

	// --- HP: the stalled reader only holds back one object. ---
	{
		dom := hazard.NewDomain(c, 32)
		hp := dom.Acquire(c)

		var protected gas.Addr
		for i := 0; i < churn; i++ {
			obj := c.Alloc(&payload{v: i})
			if i == 0 {
				protected = obj
				hp.Set(obj) // the stalled reader's single hazard
			}
			dom.Retire(c, obj)
		}
		dom.Scan(c)
		st := dom.Stats(c)
		if st.Freed != churn-1 {
			t.Fatalf("HP freed %d of %d (one may be protected)", st.Freed, churn)
		}
		if _, ok := pgas.Deref[*payload](c, protected); !ok {
			t.Fatal("HP freed the protected object")
		}
		hp.Clear()
		dom.Drain(c)
		if st = dom.Stats(c); st.Freed != churn {
			t.Fatalf("HP freed %d of %d after hazard cleared", st.Freed, churn)
		}
	}
}

// TestDeferEpochSafety is the regression test for a subtle reading of
// the paper: DeferDelete must target the locale's *current* epoch, not
// the token's pinned epoch. A retirer may legally be pinned one epoch
// behind; if its deferral landed in that older generation, the very
// next advance could free an object that a reader pinned in the
// current epoch still holds. The interleaving below is deterministic:
//
//	retirer pins at epoch 1 → epoch advances to 2 (legal) →
//	reader pins at 2 and grabs the object → retirer defers + unpins →
//	one advance (2→3, reclaims generation 1).
//
// Were the object in generation 1, the reader's dereference would be a
// use-after-free; in generation 2 it survives until the reader
// provably quiesces.
func TestDeferEpochSafety(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := NewEpochManager(c)

	retirer := em.Register(c)
	retirer.Pin(c) // epoch 1
	obj := c.Alloc(&payload{v: 42})

	em.TryReclaim(c) // 1 → 2 (retirer in thisEpoch, allowed)
	if em.GlobalEpoch(c) != 2 {
		t.Fatal("setup: advance to 2 failed")
	}

	reader := em.Register(c)
	reader.Pin(c) // epoch 2
	held := obj   // the reader's reference, taken while obj is live

	retirer.DeferDelete(c, obj) // retirer still pinned at epoch 1
	retirer.Unpin(c)
	retirer.Unregister(c)

	em.TryReclaim(c) // 2 → 3, reclaims generation 1
	if em.GlobalEpoch(c) != 3 {
		t.Fatal("advance to 3 blocked unexpectedly")
	}
	if _, ok := pgas.Deref[*payload](c, held); !ok {
		t.Fatal("use-after-free: object freed while a current-epoch reader holds it")
	}

	reader.Unpin(c)
	reader.Unregister(c)
	em.Clear(c)
	if _, ok := pgas.Deref[*payload](c, held); ok {
		t.Fatal("object leaked after quiescence")
	}
}

// Garbage bound comparison under a healthy (non-stalled) workload:
// both schemes keep live memory bounded.
func TestBoundedGarbageHealthyWorkload(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := NewEpochManager(c)
	tok := em.Register(c)
	const churn = 2000
	for i := 0; i < churn; i++ {
		tok.Pin(c)
		tok.DeferDelete(c, c.Alloc(&payload{v: i}))
		tok.Unpin(c)
		if i%64 == 0 {
			tok.TryReclaim(c)
		}
	}
	// High-water must stay near the reclaim cadence, nowhere near the
	// total churn.
	if hw := s.HeapStats().HighWater; hw > churn/2 {
		t.Fatalf("high water %d for %d churn — reclamation not keeping up", hw, churn)
	}
	tok.Unregister(c)
	em.Clear(c)
	if st := em.Stats(c); st.Reclaimed != churn {
		t.Fatalf("reclaimed %d of %d", st.Reclaimed, churn)
	}
}
