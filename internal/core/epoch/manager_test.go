package epoch

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func TestEpochCycle(t *testing.T) {
	// 1 → 2 → 3 → 1, and the reclaim generation is the "third" epoch.
	if nextEpoch(1) != 2 || nextEpoch(2) != 3 || nextEpoch(3) != 1 {
		t.Fatal("epoch cycle broken")
	}
	if reclaimEpochOf(2) != 3 || reclaimEpochOf(3) != 1 || reclaimEpochOf(1) != 2 {
		t.Fatal("reclaim generation wrong")
	}
	for e := uint64(1); e <= 3; e++ {
		if reclaimEpochOf(e) == e || reclaimEpochOf(e) == (e+1)%3+1 {
			// reclaim epoch must differ from both current and previous
		}
		prev := e - 1
		if prev == 0 {
			prev = 3
		}
		if r := reclaimEpochOf(e); r == e || r == prev {
			t.Fatalf("reclaimEpochOf(%d) = %d overlaps a live generation", e, r)
		}
	}
}

func TestRegisterPinUnpin(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		if tok.Pinned() {
			t.Fatal("fresh token pinned")
		}
		tok.Pin(c)
		if !tok.Pinned() || tok.Epoch() != firstEpoch {
			t.Fatalf("pinned epoch = %d", tok.Epoch())
		}
		// Re-pin is a no-op.
		tok.Pin(c)
		if tok.Epoch() != firstEpoch {
			t.Fatal("re-pin changed epoch")
		}
		tok.Unpin(c)
		if tok.Pinned() {
			t.Fatal("unpin did not clear")
		}
		tok.Unregister(c)
	})
}

func TestTokenRecycling(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		t1 := em.Register(c)
		t1.Unregister(c)
		t2 := em.Register(c)
		if t1 != t2 {
			t.Fatal("unregistered token not recycled")
		}
		if got := em.Stats(c).Tokens; got != 1 {
			t.Fatalf("minted %d tokens, want 1", got)
		}
		// Register while t2 still held mints a second token.
		t3 := em.Register(c)
		if t3 == t2 {
			t.Fatal("live token handed out twice")
		}
		if got := em.Stats(c).Tokens; got != 2 {
			t.Fatalf("minted %d tokens, want 2", got)
		}
	})
}

func TestTokenWrongLocalePanics(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		c.On(1, func(rc *pgas.Ctx) {
			defer func() {
				if recover() == nil {
					t.Error("pin from the wrong locale must panic")
				}
			}()
			tok.Pin(rc)
		})
	})
}

func TestDeferDeleteRequiresPin(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		obj := c.Alloc(&payload{})
		defer func() {
			if recover() == nil {
				t.Fatal("DeferDelete while unpinned must panic")
			}
		}()
		tok.DeferDelete(c, obj)
	})
}

// The two-advance rule: an object deferred in epoch e is reclaimed
// only after the global epoch has advanced twice past e.
func TestTwoAdvanceReclamation(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)

		tok.Pin(c)
		obj := c.Alloc(&payload{v: 1})
		tok.DeferDelete(c, obj)
		tok.Unpin(c)

		// First advance: object deferred in epoch 1; new epoch 2
		// reclaims generation 3 (empty). Object must still be live.
		em.TryReclaim(c)
		if _, ok := pgas.Deref[*payload](c, obj); !ok {
			t.Fatal("object reclaimed after one advance")
		}
		// Second advance: new epoch 3 reclaims generation 1 → freed.
		em.TryReclaim(c)
		if _, ok := pgas.Deref[*payload](c, obj); ok {
			t.Fatal("object still live after two advances")
		}
		if got := em.Stats(c).Reclaimed; got != 1 {
			t.Fatalf("reclaimed = %d", got)
		}
	})
}

// A token pinned in the previous epoch blocks advancement entirely.
func TestPinnedTokenBlocksAdvance(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		var blocker *Token
		c.On(1, func(rc *pgas.Ctx) {
			blocker = em.Register(rc)
			blocker.Pin(rc) // pinned in epoch 1 on locale 1
		})

		// First advance succeeds: blocker is in the current epoch.
		em.TryReclaim(c)
		if got := em.GlobalEpoch(c); got != 2 {
			t.Fatalf("epoch = %d, want 2", got)
		}
		// Now blocker (still in epoch 1) must block 2 → 3.
		em.TryReclaim(c)
		if got := em.GlobalEpoch(c); got != 2 {
			t.Fatalf("advance proceeded past a pinned token: epoch = %d", got)
		}
		if em.Stats(c).AdvanceFail == 0 {
			t.Fatal("blocked advance not recorded")
		}
		// Unpin: advancement resumes.
		c.On(1, func(rc *pgas.Ctx) { blocker.Unpin(rc) })
		em.TryReclaim(c)
		if got := em.GlobalEpoch(c); got != 3 {
			t.Fatalf("epoch = %d after unblock, want 3", got)
		}
	})
}

// An unregistered-but-allocated token (epoch 0) never blocks.
func TestUnregisteredTokenDoesNotBlock(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		tok.Pin(c)
		tok.Unpin(c)
		tok.Unregister(c)
		for i := 0; i < 5; i++ {
			em.TryReclaim(c)
		}
		if got := em.GlobalEpoch(c); got != nextEpoch(nextEpoch(nextEpoch(nextEpoch(nextEpoch(1))))) {
			t.Fatalf("epoch = %d", got)
		}
	})
}

// Scatter lists: remote objects are freed on their owner with bulk
// transfers, not per-object RPCs.
func TestScatterListBulkFree(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		tok.Pin(c)
		const perLocale = 50
		var objs []gas.Addr
		for l := 0; l < 4; l++ {
			for i := 0; i < perLocale; i++ {
				objs = append(objs, c.AllocOn(l, &payload{v: i}))
			}
		}
		for _, o := range objs {
			tok.DeferDelete(c, o)
		}
		tok.Unpin(c)

		before := s.Counters().Snapshot()
		em.TryReclaim(c)
		em.TryReclaim(c)
		d := s.Counters().Snapshot().Sub(before)

		for _, o := range objs {
			if _, ok := pgas.Deref[*payload](c, o); ok {
				t.Fatalf("object %v survived reclamation", o)
			}
		}
		// All 200 objects were deferred on locale 0; three destinations
		// are remote → exactly 3 bulk transfers, zero per-object RPCs
		// attributable to frees (allocation RPCs happened before).
		if d.BulkXfers != 3 {
			t.Fatalf("reclamation used %d bulk transfers, want 3 (%v)", d.BulkXfers, d)
		}
		if got := em.Stats(c).Reclaimed; got != 4*perLocale {
			t.Fatalf("reclaimed = %d, want %d", got, 4*perLocale)
		}
	})
}

// Election: while one task holds the reclamation flags, others return
// immediately (non-blocking) and record backoffs.
func TestElectionBackoff(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		// Simulate a task on locale 1 holding the global flag.
		em.global.isSettingEpoch.TestAndSet(c)
		em.TryReclaim(c) // local election won, global lost
		st := em.Stats(c)
		if st.GlobalBackoff != 1 {
			t.Fatalf("global backoff = %d", st.GlobalBackoff)
		}
		if got := em.GlobalEpoch(c); got != 1 {
			t.Fatalf("epoch advanced to %d during a held election", got)
		}
		em.global.isSettingEpoch.Clear(c)

		// Local flag held on this locale: immediate return.
		inst := em.priv.Get(c)
		inst.isSettingEpoch.Store(1)
		em.TryReclaim(c)
		if st := em.Stats(c); st.LocalBackoff != 1 {
			t.Fatalf("local backoff = %d", st.LocalBackoff)
		}
		inst.isSettingEpoch.Store(0)

		// With both free, reclamation works again.
		em.TryReclaim(c)
		if got := em.GlobalEpoch(c); got != 2 {
			t.Fatalf("epoch = %d", got)
		}
	})
}

func TestClearReclaimsEverything(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		var objs []gas.Addr
		var mu sync.Mutex
		// Defer objects from several locales into several epochs.
		c.CoforallLocales(func(lc *pgas.Ctx) {
			tok := em.Register(lc)
			tok.Pin(lc)
			for i := 0; i < 20; i++ {
				o := lc.AllocOn(lc.RandIntn(3), &payload{v: i})
				tok.DeferDelete(lc, o)
				mu.Lock()
				objs = append(objs, o)
				mu.Unlock()
			}
			tok.Unpin(lc)
			tok.Unregister(lc)
		})
		em.TryReclaim(c) // moves epoch so lists spread across generations
		c.CoforallLocales(func(lc *pgas.Ctx) {
			tok := em.Register(lc)
			tok.Pin(lc)
			for i := 0; i < 20; i++ {
				o := lc.Alloc(&payload{v: i})
				tok.DeferDelete(lc, o)
				mu.Lock()
				objs = append(objs, o)
				mu.Unlock()
			}
			tok.Unpin(lc)
			tok.Unregister(lc)
		})

		em.Clear(c)
		for _, o := range objs {
			if _, ok := pgas.Deref[*payload](c, o); ok {
				t.Fatalf("object %v survived Clear", o)
			}
		}
		st := em.Stats(c)
		if st.Reclaimed != st.Deferred {
			t.Fatalf("reclaimed %d of %d deferred", st.Reclaimed, st.Deferred)
		}
	})
}

func TestLocaleEpochCacheTracksGlobal(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		em.TryReclaim(c)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			if got := em.CurrentEpoch(lc); got != 2 {
				t.Errorf("locale %d cache = %d, want 2", lc.Here(), got)
			}
		})
	})
}

// Pin/unpin performs zero communication — the privatization payoff
// that makes Figure 7 flat.
func TestPinUnpinZeroCommunication(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			tok := em.Register(lc)
			before := s.Counters().Snapshot()
			for i := 0; i < 100; i++ {
				tok.Pin(lc)
				tok.Unpin(lc)
			}
			if d := s.Counters().Snapshot().Sub(before); d.Remote() != 0 {
				t.Errorf("locale %d pin/unpin cost communication: %v", lc.Here(), d)
			}
			tok.Unregister(lc)
		})
	})
}

// Integration: concurrent readers and deleters over a shared slot,
// protected by the manager — no use-after-free may ever be detected.
func TestNoUseAfterFreeUnderEBR(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	em := NewEpochManager(s.Ctx(0))

	// A shared cell holding the current object; writers swap in new
	// objects and defer-delete the old; readers deref what they see.
	type cell struct{ cur gas.Addr }
	c0 := s.Ctx(0)
	shared := &cell{cur: c0.Alloc(&payload{v: 0})}
	var mu sync.Mutex // guards shared.cur pointer swap only

	const readers = 4
	const writers = 2
	const iters = 300
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := s.Ctx(r % 2)
			tok := em.Register(c)
			for i := 0; i < iters; i++ {
				tok.Pin(c)
				mu.Lock()
				a := shared.cur
				mu.Unlock()
				// Under the pin, the object must be dereferenceable.
				p := pgas.MustDeref[*payload](c, a)
				_ = p.v
				tok.Unpin(c)
			}
			tok.Unregister(c)
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Ctx(w % 2)
			tok := em.Register(c)
			for i := 0; i < iters; i++ {
				tok.Pin(c)
				fresh := c.Alloc(&payload{v: i})
				mu.Lock()
				old := shared.cur
				shared.cur = fresh
				mu.Unlock()
				tok.DeferDelete(c, old) // logical removal
				tok.Unpin(c)
				if i%16 == 0 {
					tok.TryReclaim(c)
				}
			}
			tok.Unregister(c)
		}(w)
	}
	wg.Wait()

	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("detected %d use-after-free loads under EBR protection", uaf)
	}
	em.Clear(s.Ctx(0))
	st := em.Stats(s.Ctx(0))
	if st.Reclaimed != st.Deferred {
		t.Fatalf("reclaimed %d of %d", st.Reclaimed, st.Deferred)
	}
	s.Shutdown()
}

// Control experiment: the same workload with eager frees instead of
// DeferDelete does produce detectable use-after-free — demonstrating
// the hazard the manager exists to prevent.
func TestUseAfterFreeWithoutEBR(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	c0 := s.Ctx(0)
	type cell struct{ cur gas.Addr }
	shared := &cell{cur: c0.Alloc(&payload{v: 0})}
	var mu sync.Mutex

	const iters = 2000
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Ctx(0)
			for i := 0; i < iters; i++ {
				mu.Lock()
				a := shared.cur
				mu.Unlock()
				pgas.Deref[*payload](c, a) // may hit a freed slot
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Ctx(0)
		for i := 0; i < iters; i++ {
			fresh := c.Alloc(&payload{v: i})
			mu.Lock()
			old := shared.cur
			shared.cur = fresh
			mu.Unlock()
			c.Free(old) // eager free: unsafe
		}
	}()
	wg.Wait()
	if uaf := s.HeapStats().UAFLoads; uaf == 0 {
		t.Skip("racy control did not trigger UAF this run (timing-dependent)")
	}
}

// Concurrent tryReclaim from every locale: exactly one advance per
// "round" can win, nothing corrupts, and all deferred objects are
// eventually reclaimed.
func TestConcurrentTryReclaim(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	em := NewEpochManager(s.Ctx(0))
	const tasks = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 4)
			tok := em.Register(c)
			for i := 0; i < iters; i++ {
				tok.Pin(c)
				obj := c.AllocOn(c.RandIntn(4), &payload{v: i})
				tok.DeferDelete(c, obj)
				tok.Unpin(c)
				tok.TryReclaim(c)
			}
			tok.Unregister(c)
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	em.Clear(c)
	st := em.Stats(c)
	if st.Deferred != tasks*iters {
		t.Fatalf("deferred = %d", st.Deferred)
	}
	if st.Reclaimed != st.Deferred {
		t.Fatalf("reclaimed %d of %d", st.Reclaimed, st.Deferred)
	}
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAFs under concurrent reclamation", uaf)
	}
	if uaf := s.HeapStats().UAFFrees; uaf != 0 {
		t.Fatalf("%d double frees under concurrent reclamation", uaf)
	}
}

// Tokens registered inside a distributed forall via task intents, the
// paper's Listing 3 usage pattern.
func TestForallTaskIntentUsage(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		const n = 300
		objs := make([]gas.Addr, n)
		for i := range objs {
			objs[i] = c.AllocOn(i%3, &payload{v: i})
		}
		pgas.ForallCyclic(c, n, 2,
			func(tc *pgas.Ctx) *Token { return em.Register(tc) },
			func(tc *pgas.Ctx, tok *Token, i int) {
				tok.Pin(tc)
				tok.DeferDelete(tc, objs[i])
				tok.Unpin(tc)
			},
			func(tc *pgas.Ctx, tok *Token) { tok.Unregister(tc) }, // automatic unregister
		)
		em.Clear(c)
		st := em.Stats(c)
		if st.Reclaimed != n {
			t.Fatalf("reclaimed %d of %d", st.Reclaimed, n)
		}
	})
}
