package epoch

import (
	"sync"
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

type payload struct{ v int }

func TestLimboPushDrain(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		l := NewLimboList(c)
		var want []gas.Addr
		for i := 0; i < 10; i++ {
			a := c.Alloc(&payload{v: i})
			want = append(want, a)
			l.Push(c, a)
		}
		got := l.Drain(c)
		if len(got) != len(want) {
			t.Fatalf("drained %d, want %d", len(got), len(want))
		}
		set := make(map[gas.Addr]bool, len(got))
		for _, a := range got {
			set[a] = true
		}
		for _, a := range want {
			if !set[a] {
				t.Fatalf("lost %v", a)
			}
		}
	})
}

func TestLimboEmptyDrain(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		l := NewLimboList(c)
		if got := l.Drain(c); len(got) != 0 {
			t.Fatalf("fresh list drained %d objects", len(got))
		}
		if !l.PopAll().IsNil() {
			t.Fatal("PopAll of empty list not nil")
		}
	})
}

func TestLimboNodeRecycling(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		l := NewLimboList(c)
		obj := c.Alloc(&payload{})
		// First round allocates nodes; drain recycles them.
		for i := 0; i < 5; i++ {
			l.Push(c, obj)
		}
		l.Drain(c)
		allocsAfterRound1 := s.HeapStats().Allocs
		// Second round must reuse the pooled nodes: no new allocations.
		for i := 0; i < 5; i++ {
			l.Push(c, obj)
		}
		l.Drain(c)
		if got := s.HeapStats().Allocs; got != allocsAfterRound1 {
			t.Fatalf("second round allocated %d fresh nodes", got-allocsAfterRound1)
		}
	})
}

func TestLimboConcurrentInsertPhase(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	l := NewLimboList(s.Ctx(0))
	const tasks = 8
	const per = 200
	var wg sync.WaitGroup
	addrs := make([][]gas.Addr, tasks)
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(0)
			for i := 0; i < per; i++ {
				a := c.Alloc(&payload{v: g*per + i})
				addrs[g] = append(addrs[g], a)
				l.Push(c, a)
			}
		}(g)
	}
	wg.Wait()
	got := l.Drain(s.Ctx(0))
	if len(got) != tasks*per {
		t.Fatalf("drained %d, want %d", len(got), tasks*per)
	}
	set := make(map[gas.Addr]bool, len(got))
	for _, a := range got {
		if set[a] {
			t.Fatalf("duplicate %v", a)
		}
		set[a] = true
	}
	for _, g := range addrs {
		for _, a := range g {
			if !set[a] {
				t.Fatalf("lost %v", a)
			}
		}
	}
}

// Property: for any push sequence, drain returns exactly the pushed
// multiset (as a set — addresses are unique).
func TestLimboMultisetProperty(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	c := s.Ctx(0)
	l := NewLimboList(c)
	f := func(sizes uint8) bool {
		n := int(sizes % 64)
		pushed := make(map[gas.Addr]bool, n)
		for i := 0; i < n; i++ {
			a := c.Alloc(&payload{v: i})
			pushed[a] = true
			l.Push(c, a)
		}
		got := l.Drain(c)
		if len(got) != n {
			return false
		}
		for _, a := range got {
			if !pushed[a] {
				return false
			}
			c.Free(a) // release so addresses can recycle
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The recycle pool is ABA-protected: concurrent pushers pop nodes from
// the pool at once, racing the exact read-deref-CAS window the stamp
// protects. Phases stay disjoint (drain only at barriers), as the
// protocol requires.
func TestLimboPoolContention(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	c0 := s.Ctx(0)
	l := NewLimboList(c0)
	const rounds = 30
	const tasks = 8
	const per = 16
	// Pre-seed the pool so round one already contends on recycling.
	for i := 0; i < tasks*per; i++ {
		l.Push(c0, c0.Alloc(&payload{}))
	}
	for _, a := range l.Drain(c0) {
		c0.Free(a)
	}
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for g := 0; g < tasks; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := s.Ctx(0)
				for i := 0; i < per; i++ {
					l.Push(c, c.Alloc(&payload{}))
				}
			}()
		}
		wg.Wait() // barrier: insertion phase over
		got := l.Drain(c0)
		if len(got) != tasks*per {
			t.Fatalf("round %d drained %d, want %d", r, len(got), tasks*per)
		}
		for _, a := range got {
			c0.Free(a)
		}
	}
}
