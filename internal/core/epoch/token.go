package epoch

import (
	"fmt"
	"sync/atomic"

	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/trace"
)

// Token tracks the epoch one task is engaged in. A task must Register
// to obtain a token before touching an EBR-protected structure, Pin to
// enter the current epoch, Unpin when the operation completes, and
// Unregister when done with the token (in Chapel the managed wrapper
// unregisters automatically when the task-private variable leaves
// scope; the forall helpers in this package do the same through their
// perTaskDone hook).
//
// epoch == 0 means "registered but quiescent"; 1..3 is the pinned
// epoch. The field is a processor atomic, not a network atomic: tokens
// are only ever read remotely from inside an on-statement running on
// their locale (the tryReclaim scan), so the paper "opts out" of NIC
// atomics here — one of its explicitly-stated optimizations.
type Token struct {
	epoch  atomic.Uint64
	inst   *instance // the per-locale instance the token belongs to
	locale int

	nextAlloc *Token        // append-only allocated list linkage
	nextFree  atomic.Uint64 // free-list linkage (index+1 into inst.tokens)
	slot      int           // index of this token in inst.tokens
	localTok  *LocalToken   // backlink when owned by a LocalEpochManager
}

// Locale returns the locale the token is registered on.
func (t *Token) Locale() int { return t.locale }

// Pinned reports whether the token is currently inside an epoch.
func (t *Token) Pinned() bool { return t.epoch.Load() != 0 }

// Epoch returns the pinned epoch (1..3), or 0 when quiescent.
func (t *Token) Epoch() uint64 { return t.epoch.Load() }

// Pin enters the current epoch, read from the locale's privatized
// epoch cache — no communication. Pinning while already pinned is a
// no-op, which lets one token cover several nested operations.
func (t *Token) Pin(c *pgas.Ctx) {
	t.checkLocale(c)
	if t.epoch.Load() == 0 {
		t.epoch.Store(t.inst.localeEpoch.Load())
	}
}

// Unpin leaves the current epoch, marking the task quiescent.
func (t *Token) Unpin(c *pgas.Ctx) {
	t.checkLocale(c)
	t.epoch.Store(0)
}

// DeferDelete logically deletes obj: it is pushed onto the limbo list
// of the locale's *current* epoch (Figure 2: "limbo list 2 becomes the
// current that all new reclaimed objects will be added to"), to be
// physically reclaimed once two epoch advances prove no task can still
// reach it. The token must be pinned — the pin is what stops the epoch
// from advancing twice while callers still hold references.
//
// Deferring into the current epoch rather than the token's pinned
// epoch matters for safety: a token may legally be pinned one epoch
// behind (it blocks further advancement), and an object unlinked *now*
// may have been picked up by readers pinned in the current epoch. The
// current generation is reclaimed only once those readers provably
// quiesce; the pinned generation could be reclaimed one advance
// earlier — a use-after-free window this library's poisoned heaps
// detect (and whose regression test is TestDeferEpochSafety).
func (t *Token) DeferDelete(c *pgas.Ctx, obj gas.Addr) {
	t.checkLocale(c)
	if t.epoch.Load() == 0 {
		panic("epoch: DeferDelete on an unpinned token")
	}
	if tr := c.Sys().Tracer(); tr != nil {
		tr.Instant(c.Here(), trace.KindDefer, c.TaskID(), c.Here(), obj.Locale(), 0, 0)
	}
	t.inst.limbo[t.inst.localeEpoch.Load()].Push(c, obj)
	t.inst.deferred.Add(1)
}

// TryReclaim attempts to advance the global epoch and reclaim one
// generation of limbo lists, exactly as calling it on the manager.
func (t *Token) TryReclaim(c *pgas.Ctx) {
	t.checkLocale(c)
	t.inst.em.TryReclaim(c)
}

// Unregister relinquishes the token back to the locale's free list.
// The token must not be used afterwards.
func (t *Token) Unregister(c *pgas.Ctx) {
	t.checkLocale(c)
	t.epoch.Store(0)
	t.inst.pushFree(t)
}

func (t *Token) checkLocale(c *pgas.Ctx) {
	if c.Here() != t.locale {
		panic(fmt.Sprintf("epoch: token registered on locale %d used from locale %d", t.locale, c.Here()))
	}
}

// tokenRegistry is the per-instance token storage: an append-only
// allocated list that the tryReclaim scan walks, plus a lock-free LIFO
// free list for Register/Unregister. These are the "two separate
// lists" the paper describes.
//
// The free list is a Treiber stack of slot indices. Because tokens are
// recycled, the pop is exposed to the ABA problem; the head therefore
// carries a 32-bit stamp next to the 32-bit index (the same
// stamped-pointer cure AtomicObject provides, inlined here since the
// index fits comfortably beside its stamp in one word).
type tokenRegistry struct {
	allocHead atomic.Pointer[Token]    // append-only; scan entry point
	freeHead  atomic.Uint64            // stamp<<32 | index+1; low half 0 = empty
	tokens    atomic.Pointer[[]*Token] // slot-indexed storage snapshot
	growMu    chan struct{}            // 1-token semaphore serialising growth
	count     atomic.Int64             // tokens ever minted on this locale
}

// init prepares the registry in place (the struct contains atomics and
// therefore must not be copied).
func (r *tokenRegistry) init() {
	r.growMu = make(chan struct{}, 1)
	r.growMu <- struct{}{}
	empty := []*Token{}
	r.tokens.Store(&empty)
}

const freeIdxMask = (uint64(1) << 32) - 1

// register pops a free token or mints a new one.
func (inst *instance) register() *Token {
	r := &inst.reg
	// Fast path: ABA-protected pop of the free list.
	for {
		head := r.freeHead.Load()
		idx := head & freeIdxMask
		if idx == 0 {
			break
		}
		t := (*r.tokens.Load())[idx-1]
		next := t.nextFree.Load() & freeIdxMask
		stamped := (head>>32+1)<<32 | next
		if r.freeHead.CompareAndSwap(head, stamped) {
			return t
		}
	}
	// Mint a new token and prepend it to the allocated list.
	t := &Token{inst: inst, locale: inst.locale}
	<-r.growMu
	old := *r.tokens.Load()
	t.slot = len(old)
	grown := make([]*Token, len(old)+1)
	copy(grown, old)
	grown[t.slot] = t
	r.tokens.Store(&grown)
	r.growMu <- struct{}{}
	for {
		head := r.allocHead.Load()
		t.nextAlloc = head
		if r.allocHead.CompareAndSwap(head, t) {
			break
		}
	}
	r.count.Add(1)
	return t
}

// pushFree returns a token to the free list (stamped Treiber push).
func (inst *instance) pushFree(t *Token) {
	r := &inst.reg
	for {
		head := r.freeHead.Load()
		t.nextFree.Store(head & freeIdxMask)
		stamped := (head>>32+1)<<32 | uint64(t.slot+1)
		if r.freeHead.CompareAndSwap(head, stamped) {
			return
		}
	}
}

// forEachToken walks the allocated list (including currently
// unregistered tokens, whose epoch is 0 and therefore quiescent),
// stopping early if fn returns false. This is the scan tryReclaim
// performs on every locale.
func (inst *instance) forEachToken(fn func(t *Token) bool) {
	for t := inst.reg.allocHead.Load(); t != nil; t = t.nextAlloc {
		if !fn(t) {
			return
		}
	}
}
