package epoch

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

func TestProtectRunsPinned(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		ran := false
		em.Protect(c, func(tok *Token) {
			ran = true
			if !tok.Pinned() {
				t.Error("token not pinned inside Protect")
			}
			obj := c.Alloc(&payload{v: 1})
			tok.DeferDelete(c, obj)
		})
		if !ran {
			t.Fatal("Protect did not run fn")
		}
		em.Clear(c)
		if st := em.Stats(c); st.Reclaimed != 1 {
			t.Fatalf("reclaimed = %d", st.Reclaimed)
		}
	})
}

func TestProtectUnregistersOnPanic(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		func() {
			defer func() { recover() }()
			em.Protect(c, func(tok *Token) {
				panic("boom")
			})
		}()
		// The token must have been unpinned and returned to the free
		// list: a subsequent advance must not be blocked, and Register
		// must recycle rather than mint.
		em.TryReclaim(c)
		em.TryReclaim(c)
		if got := em.GlobalEpoch(c); got != 3 {
			t.Fatalf("epoch = %d — panicked token still pinned", got)
		}
		em.Register(c)
		if got := em.Stats(c).Tokens; got != 1 {
			t.Fatalf("minted %d tokens; panicked token not recycled", got)
		}
	})
}

func TestProtectNested(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		em.Protect(c, func(outer *Token) {
			em.Protect(c, func(inner *Token) {
				if outer == inner {
					t.Error("nested Protect shared a token")
				}
			})
			if !outer.Pinned() {
				t.Error("inner Protect unpinned the outer token")
			}
		})
	})
}

// The scatter matrix view: reclaiming remote objects must produce one
// bulk shipment per destination in the comm matrix.
func TestScatterVisibleInMatrix(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		tok.Pin(c)
		for l := 1; l < 4; l++ {
			for i := 0; i < 5; i++ {
				tok.DeferDelete(c, c.AllocOn(l, &payload{}))
			}
		}
		tok.Unpin(c)
		s.Matrix().Reset()
		before := s.Counters().Snapshot()
		em.Clear(c)
		d := s.Counters().Snapshot().Sub(before)
		if d.BulkXfers != 3 {
			t.Fatalf("Clear shipped %d bulk transfers, want 3", d.BulkXfers)
		}
		// Matrix view: per destination, one on-statement (the Clear
		// fan-out) plus one bulk shipment = 2 events, all from locale 0.
		m := s.Matrix()
		for l := 1; l < 4; l++ {
			if got := m.Get(0, l); got != 2 {
				t.Errorf("traffic 0→%d = %d events, want 2 (fan-out + bulk)", l, got)
			}
		}
		if rows := m.RowTotals(); rows[1]+rows[2]+rows[3] != 0 {
			t.Errorf("unexpected traffic from non-coordinating locales: %v", rows)
		}
	})
}
