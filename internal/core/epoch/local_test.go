package epoch

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

func TestLocalManagerBasics(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		if m.Epoch() != firstEpoch {
			t.Fatalf("fresh epoch = %d", m.Epoch())
		}
		tok := m.Register(c)
		tok.Pin()
		if !tok.Pinned() || tok.Epoch() != firstEpoch {
			t.Fatalf("token epoch = %d", tok.Epoch())
		}
		tok.Unpin()
		tok.Unregister()
	})
}

func TestLocalManagerTwoAdvanceRule(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		tok := m.Register(c)
		tok.Pin()
		obj := c.Alloc(&payload{v: 9})
		tok.DeferDelete(c, obj)
		tok.Unpin()

		m.TryReclaim(c)
		if _, ok := pgas.Deref[*payload](c, obj); !ok {
			t.Fatal("freed after one advance")
		}
		m.TryReclaim(c)
		if _, ok := pgas.Deref[*payload](c, obj); ok {
			t.Fatal("live after two advances")
		}
		if st := m.Stats(); st.Reclaimed != 1 || st.Deferred != 1 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestLocalManagerPinnedBlocksAdvance(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		blocker := m.Register(c)
		blocker.Pin() // epoch 1

		m.TryReclaim(c) // 1 → 2 (blocker in current epoch 1? no: in thisEpoch → allowed)
		if m.Epoch() != 2 {
			t.Fatalf("epoch = %d", m.Epoch())
		}
		m.TryReclaim(c) // blocked by blocker still in epoch 1
		if m.Epoch() != 2 {
			t.Fatalf("advance past pinned token: epoch = %d", m.Epoch())
		}
		if m.Stats().AdvanceFail != 1 {
			t.Fatalf("advanceFail = %d", m.Stats().AdvanceFail)
		}
		blocker.Unpin()
		m.TryReclaim(c)
		if m.Epoch() != 3 {
			t.Fatalf("epoch = %d", m.Epoch())
		}
	})
}

func TestLocalManagerRejectsRemoteObjects(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		tok := m.Register(c)
		tok.Pin()
		remote := c.AllocOn(1, &payload{})
		defer func() {
			if recover() == nil {
				t.Fatal("remote object in LocalEpochManager must panic")
			}
		}()
		tok.DeferDelete(c, remote)
	})
}

func TestLocalManagerWrongLocalePanics(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		c.On(1, func(rc *pgas.Ctx) {
			defer func() {
				if recover() == nil {
					t.Error("cross-locale use must panic")
				}
			}()
			m.Register(rc)
		})
	})
}

func TestLocalManagerZeroCommunication(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		before := s.Counters().Snapshot()
		tok := m.Register(c)
		for i := 0; i < 50; i++ {
			tok.Pin()
			obj := c.Alloc(&payload{v: i})
			tok.DeferDelete(c, obj)
			tok.Unpin()
			m.TryReclaim(c)
		}
		tok.Unregister()
		m.Clear(c)
		if d := s.Counters().Snapshot().Sub(before); d.Remote() != 0 {
			t.Fatalf("LocalEpochManager communicated: %v", d)
		}
		if st := m.Stats(); st.Reclaimed != 50 {
			t.Fatalf("reclaimed %d of 50", st.Reclaimed)
		}
	})
}

func TestLocalManagerTokenRecycling(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		t1 := m.Register(c)
		t1.Unregister()
		t2 := m.Register(c)
		if t1 != t2 {
			t.Fatal("local token not recycled")
		}
		if m.Stats().Tokens != 1 {
			t.Fatalf("minted %d", m.Stats().Tokens)
		}
	})
}

func TestLocalManagerConcurrentChurn(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	m := NewLocalEpochManager(s.Ctx(0))
	const tasks = 6
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Ctx(0)
			tok := m.Register(c)
			for i := 0; i < iters; i++ {
				tok.Pin()
				tok.DeferDelete(c, c.Alloc(&payload{v: i}))
				tok.Unpin()
				if i%8 == 0 {
					m.TryReclaim(c)
				}
			}
			tok.Unregister()
		}()
	}
	wg.Wait()
	c := s.Ctx(0)
	m.Clear(c)
	st := m.Stats()
	if st.Deferred != tasks*iters || st.Reclaimed != st.Deferred {
		t.Fatalf("stats = %+v", st)
	}
	if uaf := s.HeapStats().UAFLoads + s.HeapStats().UAFFrees; uaf != 0 {
		t.Fatalf("%d UAF events", uaf)
	}
}

func TestLocalManagerBackoff(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		m := NewLocalEpochManager(c)
		m.isSettingEpoch.Store(1)
		m.TryReclaim(c)
		if m.Stats().Backoff != 1 {
			t.Fatalf("backoff = %d", m.Stats().Backoff)
		}
		if m.Epoch() != firstEpoch {
			t.Fatal("epoch moved during held election")
		}
		m.isSettingEpoch.Store(0)
	})
}
