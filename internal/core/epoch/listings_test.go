package epoch

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Conformance tests that transliterate each of the paper's code
// listings onto this library's API, so a reader can line the two up.

// Listing 1 — LockFreeStack.push using AtomicObject:
//
//	proc LockFreeStack.push(newObj : T) {
//	  var node = new unmanaged Node(newObj);
//	  do {
//	    var oldHead = head.readABA();
//	    node.next = oldHead.getObject();
//	  } while(!head.compareAndSwapABA(oldHead, node));
//	}
func TestListing1Push(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		type Node struct {
			val  int
			next gas.Addr
		}
		head := atomics.New(c, 0, atomics.Options{ABA: true})

		push := func(newObj int) {
			n := &Node{val: newObj}
			node := c.Alloc(n)
			for {
				oldHead := head.ReadABA(c)
				n.next = oldHead.Object()
				if head.CompareAndSwapABA(c, oldHead, node) {
					return
				}
			}
		}
		for i := 0; i < 5; i++ {
			push(i)
		}
		// LIFO check.
		cur := head.ReadABA(c).Object()
		for want := 4; want >= 0; want-- {
			n := pgas.MustDeref[*Node](c, cur)
			if n.val != want {
				t.Fatalf("stack order: got %d want %d", n.val, want)
			}
			cur = n.next
		}
	})
}

// Listing 2 — the wait-free limbo list:
//
//	proc push(obj) { var node = recycleNode(obj);
//	                 var oldHead = _head.exchange(node);
//	                 node.next = oldHead; }
//	proc pop() { return _head.exchange(nil); }
func TestListing2LimboList(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		l := NewLimboList(c)
		objs := []gas.Addr{c.Alloc(&payload{v: 1}), c.Alloc(&payload{v: 2})}
		for _, o := range objs {
			l.Push(c, o) // recycleNode + exchange + next, verbatim
		}
		head := l.PopAll() // one exchange detaches everything
		seen := 0
		for !head.IsNil() {
			_, head = l.Next(c, head)
			seen++
		}
		if seen != 2 {
			t.Fatalf("popped %d nodes", seen)
		}
	})
}

// Listing 3 — EpochManager usage, serial and forall forms:
//
//	var em = new EpochManager();
//	var tok = em.register(); tok.pin(); tok.unpin(); tok.unregister();
//	forall x in X with (var tok = em.register()) {
//	  tok.pin(); tok.deferDelete(x); tok.unpin();
//	} // automatic unregister
//	em.clear();
func TestListing3Usage(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)

		// Serial and shared memory.
		tok := em.Register(c)
		tok.Pin(c)
		tok.Unpin(c)
		tok.Unregister(c)

		// Parallel and distributed (forall with task intents).
		const n = 200
		X := make([]gas.Addr, n)
		for i := range X {
			X[i] = c.AllocOn(i%4, &payload{v: i})
		}
		pgas.ForallCyclic(c, n, 2,
			func(tc *pgas.Ctx) *Token { return em.Register(tc) },
			func(tc *pgas.Ctx, tok *Token, i int) {
				tok.Pin(tc)
				tok.DeferDelete(tc, X[i])
				tok.Unpin(tc)
			},
			func(tc *pgas.Ctx, tok *Token) { tok.Unregister(tc) },
		)
		em.Clear(c) // reclaim everything at once

		if st := em.Stats(c); st.Reclaimed != n {
			t.Fatalf("reclaimed %d of %d", st.Reclaimed, n)
		}
	})
}

// Listing 4 — tryReclaim's observable contract, step by step: the
// local flag gate, the global flag gate, the all-locale scan, the
// epoch advance (e % 3) + 1, and scatter-based bulk deletion are each
// asserted through the public API (the implementation in manager.go
// is the faithful port; this test pins its behaviour).
func TestListing4Contract(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)

		// (e % 3) + 1 cycling from the initial epoch 1.
		want := []uint64{2, 3, 1, 2}
		for _, w := range want {
			em.TryReclaim(c)
			if got := em.GlobalEpoch(c); got != w {
				t.Fatalf("epoch = %d, want %d", got, w)
			}
		}

		// Scatter + bulk delete: defer objects on every locale, then a
		// single tryReclaim pair frees them on their owners.
		tok := em.Register(c)
		tok.Pin(c)
		var objs []gas.Addr
		for l := 0; l < 3; l++ {
			for i := 0; i < 10; i++ {
				o := c.AllocOn(l, &payload{v: i})
				tok.DeferDelete(c, o)
				objs = append(objs, o)
			}
		}
		tok.Unpin(c)
		em.TryReclaim(c)
		em.TryReclaim(c)
		for _, o := range objs {
			if _, ok := pgas.Deref[*payload](c, o); ok {
				t.Fatalf("object %v not reclaimed after two advances", o)
			}
		}
	})
}

// Listing 5 — the microbenchmark loop (the Figure 4–6 workload):
//
//	var objsDom = {0..#numObjects} dmapped Cyclic(startIdx=0);
//	forall obj in objs with (var tok = manager.register(), var M : int) {
//	  tok.pin(); tok.deferDelete(obj); tok.unpin(); M += 1;
//	  if M % perIteration == 0 { tok.tryReclaim(); }
//	}
//	manager.clear();
func TestListing5Microbenchmark(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		manager := NewEpochManager(c)
		const numObjects = 512
		const perIteration = 64
		objs := make([]gas.Addr, numObjects)
		for i := range objs {
			objs[i] = c.AllocOn(c.RandIntn(4), &payload{v: i}) // randomizeObjs
		}
		type intents struct {
			tok *Token
			M   int
		}
		pgas.ForallCyclic(c, numObjects, 2,
			func(tc *pgas.Ctx) *intents { return &intents{tok: manager.Register(tc)} },
			func(tc *pgas.Ctx, p *intents, i int) {
				p.tok.Pin(tc)
				p.tok.DeferDelete(tc, objs[i])
				p.tok.Unpin(tc)
				p.M++
				if p.M%perIteration == 0 {
					p.tok.TryReclaim(tc)
				}
			},
			func(tc *pgas.Ctx, p *intents) { p.tok.Unregister(tc) },
		)
		manager.Clear(c)

		st := manager.Stats(c)
		if st.Deferred != numObjects || st.Reclaimed != numObjects {
			t.Fatalf("stats = %+v", st)
		}
		if uaf := s.HeapStats().UAFLoads; uaf != 0 {
			t.Fatalf("%d UAF loads", uaf)
		}
	})
}
