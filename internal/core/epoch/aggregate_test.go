package epoch

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Reclamation's scatter lists now ride the aggregation layer: the
// flushes show up in the aggregation counters and each one doubles as
// the bulk transfer the scatter tests have always asserted on.
func TestReclaimUsesAggregation(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		tok.Pin(c)
		const perLocale = 40
		for l := 0; l < 4; l++ {
			for i := 0; i < perLocale; i++ {
				tok.DeferDelete(c, c.AllocOn(l, &payload{v: i}))
			}
		}
		tok.Unpin(c)

		before := s.Counters().Snapshot()
		em.Clear(c)
		d := s.Counters().Snapshot().Sub(before)

		// Three remote destinations, each one flush; the locale-local
		// batch frees inline without a flush.
		if d.AggFlushes != 3 || d.BulkXfers != 3 {
			t.Fatalf("Clear used %d agg flushes / %d bulk transfers, want 3/3 (%v)",
				d.AggFlushes, d.BulkXfers, d)
		}
		if d.AggOps != 3*perLocale {
			t.Fatalf("AggOps = %d, want %d", d.AggOps, 3*perLocale)
		}
		if got := em.Stats(c).Reclaimed; got != 4*perLocale {
			t.Fatalf("reclaimed = %d, want %d", got, 4*perLocale)
		}
	})
}

// DeferDeleteOn: a task deferring an object onto another locale's
// instance through the aggregation buffers. The deferral lands in the
// destination's limbo at flush and is reclaimed by the normal epoch
// machinery; nothing is lost and nothing is freed early.
func TestDeferDeleteOn(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		const n = 30
		objs := make([]gas.Addr, n)
		for i := range objs {
			objs[i] = c.AllocOn(2, &payload{v: i})
		}

		tok := em.Pin(c)
		for _, o := range objs {
			em.DeferDeleteOn(c, tok, 1, o)
		}
		// Still buffered: nothing deferred yet, nothing freed.
		if got := em.Stats(c).Deferred; got != 0 {
			t.Fatalf("deferred = %d before flush, want 0", got)
		}
		c.Flush()
		tok.Unpin(c)
		if got := em.Stats(c).Deferred; got != n {
			t.Fatalf("deferred = %d after flush, want %d", got, n)
		}
		for _, o := range objs {
			if _, ok := pgas.Deref[*payload](c, o); !ok {
				t.Fatalf("object %v freed before any epoch advance", o)
			}
		}

		em.Clear(c)
		for _, o := range objs {
			if _, ok := pgas.Deref[*payload](c, o); ok {
				t.Fatalf("object %v survived reclamation", o)
			}
		}
		if got := em.Stats(c).Reclaimed; got != n {
			t.Fatalf("reclaimed = %d, want %d", got, n)
		}
	})
}

// DeferDeleteOn requires a pinned token: the pin bounds epoch
// advancement while the deferral is buffered.
func TestDeferDeleteOnUnpinnedPanics(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := NewEpochManager(c)
		tok := em.Register(c)
		defer func() {
			if recover() == nil {
				t.Fatal("DeferDeleteOn with an unpinned token must panic")
			}
		}()
		em.DeferDeleteOn(c, tok, 1, c.Alloc(&payload{}))
	})
}
