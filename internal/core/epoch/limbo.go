// Package epoch implements the paper's EpochManager and
// LocalEpochManager: epoch-based memory reclamation (EBR, Fraser 2004)
// adapted to distributed memory with global-view programming.
//
// Deleting memory that concurrent tasks may still be reading is the
// foundational problem of non-blocking data structures. EBR defers
// each deletion into a "limbo list" tagged with the epoch in which the
// object was logically removed; once every participating task has
// provably moved two epochs past it, the list is reclaimed in bulk.
//
// The distributed adaptation privatizes the manager: each locale holds
// its own instance (token lists, three limbo lists, an epoch cache)
// reached with zero communication, while a single globally coherent
// epoch object arbitrates advancement. Reclamation sorts dead objects
// by owning locale into scatter lists so each remote locale receives
// one bulk deallocation instead of one RPC per object.
package epoch

import (
	"sync/atomic"

	"gopgas/internal/core/atomics"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// limboNode is one deferred object in a limbo list. Nodes are
// allocated from the owning locale's heap and recycled through an
// ABA-protected Treiber stack, never freed — the recycling pattern the
// paper builds from its own AtomicObject (Listing 1 / Listing 2).
//
// The fields are atomics because a Treiber pop reads the next pointer
// of a node another task may concurrently win and repurpose; the ABA
// stamp makes the subsequent CAS fail safely, but the read itself must
// still be a proper atomic load (the Go analogue of the relaxed loads
// a C/Chapel implementation would use).
type limboNode struct {
	val  atomic.Uint64 // gas.Addr of the deferred object
	next atomic.Uint64 // gas.Addr of the next limboNode (locale-local)
}

func (n *limboNode) loadVal() gas.Addr   { return gas.Addr(n.val.Load()) }
func (n *limboNode) storeVal(a gas.Addr) { n.val.Store(uint64(a)) }
func (n *limboNode) loadNext() gas.Addr  { return gas.Addr(n.next.Load()) }
func (n *limboNode) storeNext(a gas.Addr) {
	n.next.Store(uint64(a))
}

// LimboList is the paper's wait-free deferral list (Listing 2). It has
// two strictly disjoint phases: an insertion phase in which any number
// of tasks Push concurrently, and a deletion phase in which the
// elected reclaimer removes everything at once. Both a push and the
// bulk removal complete in a single atomic exchange — wait-free.
//
// The next pointer of a pushed node is written *after* the exchange
// (exactly as in Listing 2). That is safe, and race-free, because the
// epoch protocol guarantees the deletion phase for a given list begins
// only after every task that could push to it has become quiescent;
// the unpin/scan atomics order those writes before the traversal.
type LimboList struct {
	locale int
	head   *atomics.LocalAtomicObject // exchange-only; no CAS, no ABA hazard
	pool   *atomics.LocalAtomicObject // ABA-protected Treiber stack of free nodes
}

// NewLimboList creates an empty limbo list owned by the ctx's locale.
func NewLimboList(c *pgas.Ctx) *LimboList {
	return &LimboList{
		locale: c.Here(),
		head:   atomics.NewLocal(c.Here(), false),
		pool:   atomics.NewLocal(c.Here(), true),
	}
}

// Push defers obj onto the list: recycle (or allocate) a node, then a
// single wait-free exchange of the head. Listing 2, verbatim.
func (l *LimboList) Push(c *pgas.Ctx, obj gas.Addr) {
	node, n := l.recycleNode(c, obj)
	oldHead := l.head.Exchange(node)
	n.storeNext(oldHead)
}

// PopAll detaches the entire list in one exchange and returns its
// head; the caller traverses it with Next. Must only be called in the
// deletion phase (no concurrent pushers), per the epoch protocol.
func (l *LimboList) PopAll() gas.Addr {
	return l.head.Exchange(gas.AddrNil)
}

// Next returns the deferred object stored at node and the following
// node, recycling node onto the free pool. It is the traversal step of
// the deletion phase.
func (l *LimboList) Next(c *pgas.Ctx, node gas.Addr) (obj, next gas.Addr) {
	n := pgas.MustDeref[*limboNode](c, node)
	obj, next = n.loadVal(), n.loadNext()
	l.recycle(c, node, n)
	return obj, next
}

// recycleNode pops a node from the free pool — ABA-protected: between
// reading the top and the CAS another task may pop, recycle, and
// re-push the same node address, which the stamp detects — or
// allocates a fresh node if the pool is empty.
func (l *LimboList) recycleNode(c *pgas.Ctx, obj gas.Addr) (gas.Addr, *limboNode) {
	for {
		top := l.pool.ReadABA()
		if top.IsNil() {
			n := &limboNode{}
			n.storeVal(obj)
			return c.Alloc(n), n
		}
		n := pgas.MustDeref[*limboNode](c, top.Object())
		if l.pool.CompareAndSwapABA(top, n.loadNext()) {
			n.storeVal(obj)
			n.storeNext(gas.AddrNil)
			return top.Object(), n
		}
	}
}

// recycle pushes a spent node back onto the free pool (Treiber push
// with ABA protection).
func (l *LimboList) recycle(c *pgas.Ctx, node gas.Addr, n *limboNode) {
	n.storeVal(gas.AddrNil)
	for {
		top := l.pool.ReadABA()
		n.storeNext(top.Object())
		if l.pool.CompareAndSwapABA(top, node) {
			return
		}
	}
}

// Drain pops every deferred object into a slice — a convenience used
// by Clear and by tests; the production path iterates PopAll/Next
// without materialising a slice.
func (l *LimboList) Drain(c *pgas.Ctx) []gas.Addr {
	var objs []gas.Addr
	node := l.PopAll()
	for !node.IsNil() {
		var obj gas.Addr
		obj, node = l.Next(c, node)
		if !obj.IsNil() {
			objs = append(objs, obj)
		}
	}
	return objs
}
