package epoch

import (
	"sync/atomic"

	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/trace"
)

// Epochs take the values 1, 2, 3 (advancing as e → (e mod 3) + 1);
// 0 is reserved to mean "not in an epoch". Three limbo generations
// per locale correspond to the epochs a live task can observe:
// e−1, e, and e+1.
const (
	numEpochs  = 3
	firstEpoch = 1
)

// reclaimEpochOf returns which generation is safe to reclaim once the
// global epoch has advanced to e: the one that is neither e nor the
// previous epoch — every object in it was deferred at least two
// advances ago.
func reclaimEpochOf(e uint64) uint64 { return e%numEpochs + 1 }

// nextEpoch returns the successor of e in the 1→2→3→1 cycle.
func nextEpoch(e uint64) uint64 { return e%numEpochs + 1 }

// globalEpoch is the single coherent epoch all locales come to
// consensus on. It is a class instance homed on locale 0 and accessed
// through network atomics — the one piece of the manager that is
// deliberately not privatized.
type globalEpoch struct {
	epoch          *pgas.Word64
	isSettingEpoch *pgas.Word64
}

// instance is one locale's privatized EpochManager state. All accesses
// from tasks on that locale touch only this struct (processor
// atomics), which is what keeps the pin/unpin path communication-free.
type instance struct {
	em     EpochManager
	locale int

	// localeEpoch caches the global epoch ("Local Epoch" in Figure 2);
	// pin reads it instead of the remote global epoch.
	localeEpoch atomic.Uint64

	// isSettingEpoch is the local election flag: first-come-first-
	// served arbitration so at most one task per locale pursues the
	// global flag.
	isSettingEpoch atomic.Uint32

	// limbo[1..3] are the three generations of deferred objects.
	limbo [numEpochs + 1]*LimboList

	// reg holds the allocated and free token lists.
	reg tokenRegistry

	// objsToDelete are the scatter lists: dead objects sorted by owning
	// locale during reclamation so each destination receives one bulk
	// transfer. Only the elected reclaimer touches them.
	objsToDelete [][]gas.Addr

	// Statistics (diagnostic, processor atomics).
	deferred      atomic.Int64
	reclaimed     atomic.Int64
	localBackoff  atomic.Int64 // tryReclaim returns: lost local election
	globalBackoff atomic.Int64 // tryReclaim returns: lost global election
	advanceFail   atomic.Int64 // election won but a pinned token blocked advance
	advances      atomic.Int64 // successful epoch advances driven by this locale
}

// EpochManager is the copyable, record-wrapped handle to a distributed
// epoch-based reclamation manager. Copying the handle (for example
// into every task of a forall) costs nothing and carries no remote
// references: each use resolves the privatized per-locale instance
// with zero communication.
type EpochManager struct {
	priv   pgas.Privatized[instance]
	global *globalEpoch
}

// NewEpochManager creates a manager distributed over every locale of
// the system: one privatized instance per locale plus the global epoch
// object on locale 0.
func NewEpochManager(c *pgas.Ctx) EpochManager {
	g := &globalEpoch{
		epoch:          pgas.NewWord64(c, 0, firstEpoch),
		isSettingEpoch: pgas.NewWord64(c, 0, 0),
	}
	var em EpochManager
	em.global = g
	em.priv = pgas.NewPrivatized(c, func(lc *pgas.Ctx) *instance {
		inst := &instance{
			locale:       lc.Here(),
			objsToDelete: make([][]gas.Addr, lc.NumLocales()),
		}
		inst.reg.init()
		inst.localeEpoch.Store(firstEpoch)
		for e := firstEpoch; e <= numEpochs; e++ {
			inst.limbo[e] = NewLimboList(lc)
		}
		return inst
	})
	// Patch the back-handle now that priv exists (tokens reach the
	// manager through their instance).
	c.CoforallLocales(func(lc *pgas.Ctx) {
		em.priv.Get(lc).em = em
	})
	return em
}

// Register obtains a token on the calling task's locale, recycling a
// previously relinquished one when available. The token starts
// quiescent (not pinned).
func (em EpochManager) Register(c *pgas.Ctx) *Token {
	return em.priv.Get(c).register()
}

// Pin is a convenience for Register-then-Pin in one call.
func (em EpochManager) Pin(c *pgas.Ctx) *Token {
	t := em.Register(c)
	t.Pin(c)
	return t
}

// Protect runs fn with a registered, pinned token and guarantees the
// unpin/unregister pair afterwards (even on panic) — the Go analogue
// of the paper's managed token wrapper, which unregisters automatically
// when the task-private variable leaves scope.
func (em EpochManager) Protect(c *pgas.Ctx, fn func(tok *Token)) {
	tok := em.Register(c)
	defer tok.Unregister(c)
	tok.Pin(c)
	defer tok.Unpin(c)
	fn(tok)
}

// CurrentEpoch returns this locale's cached view of the epoch.
func (em EpochManager) CurrentEpoch(c *pgas.Ctx) uint64 {
	return em.priv.Get(c).localeEpoch.Load()
}

// GlobalEpoch reads the authoritative global epoch (communication).
func (em EpochManager) GlobalEpoch(c *pgas.Ctx) uint64 {
	return em.global.epoch.Read(c)
}

// TryReclaim attempts to advance the global epoch and reclaim one
// limbo generation on every locale. It is a faithful port of the
// paper's Listing 4:
//
//  1. Win the locale-local election flag, else return immediately
//     (another task on this locale is already trying).
//  2. Win the global election flag, else clear the local flag and
//     return (a task on another locale is already trying).
//  3. Scan every token on every locale; if any is pinned in an epoch
//     other than the current one, advancement is unsafe — back out.
//  4. Advance the global epoch to (e mod 3)+1; on every locale update
//     the epoch cache, detach the reclaimable limbo generation, sort
//     its objects into per-destination scatter lists, and free each
//     destination's batch with one bulk transfer.
//  5. Release both flags.
//
// The early returns make the operation non-blocking: losing an
// election wastes almost no effort, and the whole procedure is driven
// by exactly one task system-wide at any moment.
func (em EpochManager) TryReclaim(c *pgas.Ctx) {
	inst := em.priv.Get(c)
	if inst.isSettingEpoch.Swap(1) == 1 {
		inst.localBackoff.Add(1)
		return
	}
	if em.global.isSettingEpoch.TestAndSet(c) {
		inst.isSettingEpoch.Store(0)
		inst.globalBackoff.Add(1)
		return
	}

	// Is it safe to reclaim across all locales? The advance span covers
	// the token scan through generation reclaim — a won election end to
	// end. Its arg reports the epoch advanced to, or 0 when a pinned
	// token blocked the advance; the per-locale pinned gauge is what the
	// scan observed before it decided (it stops early at the first
	// blocking token, so a blocked scan's gauge is a lower bound).
	tr := c.Sys().Tracer()
	var sp trace.Span
	if tr != nil {
		sp = tr.Begin(c.Here(), trace.KindEpochAdvance, c.TaskID(), c.Here(), c.Here(), 0, 0)
	}
	thisEpoch := em.global.epoch.Read(c)
	safe := pgas.NewAndReduce()
	c.CoforallLocales(func(lc *pgas.Ctx) {
		li := em.priv.Get(lc)
		ok := true
		pinned := int64(0)
		li.forEachToken(func(t *Token) bool {
			e := t.epoch.Load()
			if e != 0 {
				pinned++
			}
			if e != 0 && e != thisEpoch {
				ok = false
				return false
			}
			return true
		})
		if tr != nil {
			tr.Instant(lc.Here(), trace.KindPinned, lc.TaskID(), lc.Here(), lc.Here(), 0, pinned)
		}
		safe.And(ok)
	})

	if safe.Value() {
		newEpoch := nextEpoch(thisEpoch)
		em.global.epoch.Write(c, newEpoch)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			li := em.priv.Get(lc)
			li.localeEpoch.Store(newEpoch)
			li.reclaimGeneration(lc, reclaimEpochOf(newEpoch))
		})
		inst.advances.Add(1)
		sp.EndWith(0, int64(newEpoch))
	} else {
		inst.advanceFail.Add(1)
		sp.End()
	}

	em.global.isSettingEpoch.Clear(c)
	inst.isSettingEpoch.Store(0)
}

// reclaimGeneration detaches limbo generation e on this locale,
// scatters its objects by owning locale, and routes each destination's
// batch through the task's aggregation buffers: the frees ride one
// bulk flush per destination (locale-local objects release inline for
// free). Runs on the instance's locale, driven by the single elected
// reclaimer.
func (li *instance) reclaimGeneration(lc *pgas.Ctx, e uint64) {
	list := li.limbo[e]
	node := list.PopAll()
	if node.IsNil() {
		return
	}
	var sp trace.Span
	if tr := lc.Sys().Tracer(); tr != nil {
		// Arg carries the generation being reclaimed; EndWith fills in
		// the object count once the scatter is done.
		sp = tr.Begin(lc.Here(), trace.KindEpochReclaim, lc.TaskID(), lc.Here(), lc.Here(), 0, int64(e))
	}
	// Scatter objects to their locale.
	for !node.IsNil() {
		var obj gas.Addr
		obj, node = list.Next(lc, node)
		if obj.IsNil() {
			continue
		}
		li.objsToDelete[obj.Locale()] = append(li.objsToDelete[obj.Locale()], obj)
	}
	// Aggregate and delete, one flush per destination locale.
	before := lc.Aggregator(li.locale).Freed()
	for dest, batch := range li.objsToDelete {
		if len(batch) == 0 {
			continue
		}
		buf := lc.Aggregator(dest)
		for _, a := range batch {
			buf.Free(a)
		}
		buf.Flush()
	}
	freed := lc.Aggregator(li.locale).Freed() - before
	li.reclaimed.Add(freed)
	// Clear the scatter lists.
	for i := range li.objsToDelete {
		li.objsToDelete[i] = li.objsToDelete[i][:0]
	}
	sp.EndWith(0, freed)
}

// DeferDeleteOn queues obj for deferred deletion on another locale's
// instance — a remote deferral, shipped through the calling task's
// aggregation buffers instead of a synchronous round trip. The
// deferral lands in the destination's current-epoch limbo list when
// the buffer flushes (at capacity, or at Ctx.Flush).
//
// The caller must hold a *pinned* token on its own locale and keep it
// pinned until after the buffer has flushed: the pin is what bounds
// epoch advancement (to at most one step) while the deferral is still
// buffered, giving the flushed deferral the same two-advance grace
// period a local DeferDelete gets. A locale-local deferral executes
// immediately, exactly like Token.DeferDelete.
func (em EpochManager) DeferDeleteOn(c *pgas.Ctx, tok *Token, locale int, obj gas.Addr) {
	if !tok.Pinned() {
		panic("epoch: DeferDeleteOn with an unpinned token")
	}
	if tr := c.Sys().Tracer(); tr != nil {
		tr.Instant(c.Here(), trace.KindDefer, c.TaskID(), c.Here(), locale, 0, 0)
	}
	c.Aggregator(locale).Call(func(tc *pgas.Ctx) {
		li := em.priv.Get(tc)
		li.limbo[li.localeEpoch.Load()].Push(tc, obj)
		li.deferred.Add(1)
	})
}

// ForceRetire is the crash-recovery half of the protocol: it clears
// every pinned token on the given locale, so reclamation can never
// wedge on a pin that will never be released. A fail-stop crash
// strands whatever pins the dead locale's tasks held — the advance
// scan would observe them forever and every election would fail — and
// only an out-of-band retirement can break that deadlock, which is
// exactly what makes it safe: the dead locale runs no tasks, so no
// stranded pin still protects a read in progress.
//
// Deliberately, ForceRetire does NOT drain the dead locale's limbo
// lists: survivors may still hold pins taken before the crash and be
// traversing lists the failover just retired onto that limbo, so an
// immediate drain would break the two-advance grace period. Clearing
// the stranded pins is enough — the very next advances (now unblocked)
// cycle the dead locale's generations with full grace, and the final
// Clear drains whatever remains, which is how deferred==reclaimed
// stays provable after a crash.
//
// It runs on the target locale via one on-statement, so when the
// locale is already marked dead the caller must hold a salvage context
// (pgas.Ctx.Salvage) or the hop itself is refused and nothing is
// retired. Call it after shard failover has retired the dead locale's
// lists, as the engine does.
//
// Each retired token records one always-on KindForceRetire span whose
// arg is the epoch the token was stranded in, so a trace's force-retire
// begin-count equals the returned token count exactly.
func (em EpochManager) ForceRetire(c *pgas.Ctx, locale int) int64 {
	var tokens int64
	c.On(locale, func(lc *pgas.Ctx) {
		li := em.priv.Get(lc)
		tr := lc.Sys().Tracer()
		li.forEachToken(func(t *Token) bool {
			if e := t.epoch.Swap(0); e != 0 {
				tokens++
				if tr != nil {
					sp := tr.Begin(lc.Here(), trace.KindForceRetire, lc.TaskID(), locale, locale, 0, int64(e))
					sp.End()
				}
			}
			return true
		})
	})
	return tokens
}

// Clear reclaims every deferred object across all epochs and locales,
// without requiring epoch advances. It must only be called when no
// other task is interacting with the manager (typically at the end of
// a phase or before teardown), per the paper.
func (em EpochManager) Clear(c *pgas.Ctx) {
	c.CoforallLocales(func(lc *pgas.Ctx) {
		li := em.priv.Get(lc)
		for e := uint64(firstEpoch); e <= numEpochs; e++ {
			li.reclaimGeneration(lc, e)
		}
	})
}

// Stats aggregates diagnostic counters across every locale.
type Stats struct {
	Deferred      int64 // DeferDelete calls
	Reclaimed     int64 // objects physically freed
	Advances      int64 // successful epoch advances
	AdvanceFail   int64 // elections won but blocked by a pinned token
	LocalBackoff  int64 // tryReclaims that lost the locale election
	GlobalBackoff int64 // tryReclaims that lost the global election
	Tokens        int64 // tokens ever minted
}

// Stats gathers manager statistics from all locales (communication:
// one on-statement per locale).
func (em EpochManager) Stats(c *pgas.Ctx) Stats {
	var s Stats
	results := make([]Stats, c.NumLocales())
	c.CoforallLocales(func(lc *pgas.Ctx) {
		li := em.priv.Get(lc)
		results[lc.Here()] = Stats{
			Deferred:      li.deferred.Load(),
			Reclaimed:     li.reclaimed.Load(),
			Advances:      li.advances.Load(),
			AdvanceFail:   li.advanceFail.Load(),
			LocalBackoff:  li.localBackoff.Load(),
			GlobalBackoff: li.globalBackoff.Load(),
			Tokens:        li.reg.count.Load(),
		}
	})
	for _, r := range results {
		s.Deferred += r.Deferred
		s.Reclaimed += r.Reclaimed
		s.Advances += r.Advances
		s.AdvanceFail += r.AdvanceFail
		s.LocalBackoff += r.LocalBackoff
		s.GlobalBackoff += r.GlobalBackoff
		s.Tokens += r.Tokens
	}
	return s
}
