package epoch

import (
	"sync/atomic"

	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// LocalEpochManager is the shared-memory-optimized variant: it lacks a
// global epoch and never considers remote objects, so every operation
// — including TryReclaim — is locale-local with zero communication.
// Use it for computations confined to one locale; the distributed
// EpochManager subsumes it functionally at somewhat higher cost.
type LocalEpochManager struct {
	locale int

	epoch          atomic.Uint64
	isSettingEpoch atomic.Uint32
	limbo          [numEpochs + 1]*LimboList
	reg            tokenRegistry

	deferred    atomic.Int64
	reclaimed   atomic.Int64
	backoff     atomic.Int64
	advanceFail atomic.Int64
	advances    atomic.Int64
}

// NewLocalEpochManager creates a manager pinned to the calling task's
// locale.
func NewLocalEpochManager(c *pgas.Ctx) *LocalEpochManager {
	m := &LocalEpochManager{locale: c.Here()}
	m.reg.init()
	m.epoch.Store(firstEpoch)
	for e := firstEpoch; e <= numEpochs; e++ {
		m.limbo[e] = NewLimboList(c)
	}
	return m
}

// Locale returns the locale the manager serves.
func (m *LocalEpochManager) Locale() int { return m.locale }

// LocalToken tracks a task's epoch for a LocalEpochManager. It wraps
// the shared Token record (so the registry and scan machinery are
// reused) but exposes a communication-free, Ctx-light API.
type LocalToken struct {
	mgr *LocalEpochManager
	tok *Token
}

// Register obtains a token. The manager must be used from its own
// locale.
func (m *LocalEpochManager) Register(c *pgas.Ctx) *LocalToken {
	m.checkLocale(c)
	t := m.registerToken()
	return t
}

func (m *LocalEpochManager) checkLocale(c *pgas.Ctx) {
	if c.Here() != m.locale {
		panic("epoch: LocalEpochManager used from a different locale")
	}
}

// registerToken pops the free list or mints a LocalToken.
func (m *LocalEpochManager) registerToken() *LocalToken {
	r := &m.reg
	for {
		head := r.freeHead.Load()
		idx := head & freeIdxMask
		if idx == 0 {
			break
		}
		t := (*r.tokens.Load())[idx-1]
		next := t.nextFree.Load() & freeIdxMask
		if r.freeHead.CompareAndSwap(head, (head>>32+1)<<32|next) {
			return t.localTok
		}
	}
	t := &Token{locale: m.locale}
	lt := &LocalToken{mgr: m, tok: t}
	t.localTok = lt
	<-r.growMu
	old := *r.tokens.Load()
	t.slot = len(old)
	grown := make([]*Token, len(old)+1)
	copy(grown, old)
	grown[t.slot] = t
	r.tokens.Store(&grown)
	r.growMu <- struct{}{}
	for {
		head := r.allocHead.Load()
		t.nextAlloc = head
		if r.allocHead.CompareAndSwap(head, t) {
			break
		}
	}
	r.count.Add(1)
	return lt
}

// Pin enters the current epoch.
func (t *LocalToken) Pin() {
	if t.tok.epoch.Load() == 0 {
		t.tok.epoch.Store(t.mgr.epoch.Load())
	}
}

// Unpin leaves the current epoch.
func (t *LocalToken) Unpin() { t.tok.epoch.Store(0) }

// Pinned reports whether the token is inside an epoch.
func (t *LocalToken) Pinned() bool { return t.tok.epoch.Load() != 0 }

// Epoch returns the pinned epoch, or 0.
func (t *LocalToken) Epoch() uint64 { return t.tok.epoch.Load() }

// DeferDelete pushes obj (which must be local) onto the manager's
// *current* epoch limbo list — not the token's pinned epoch, for the
// same safety reason as Token.DeferDelete.
func (t *LocalToken) DeferDelete(c *pgas.Ctx, obj gas.Addr) {
	if t.tok.epoch.Load() == 0 {
		panic("epoch: DeferDelete on an unpinned token")
	}
	if obj.Locale() != t.mgr.locale {
		panic("epoch: LocalEpochManager given a remote object; use EpochManager")
	}
	t.mgr.limbo[t.mgr.epoch.Load()].Push(c, obj)
	t.mgr.deferred.Add(1)
}

// TryReclaim attempts one epoch advance and reclamation, locally.
func (t *LocalToken) TryReclaim(c *pgas.Ctx) { t.mgr.TryReclaim(c) }

// Unregister relinquishes the token.
func (t *LocalToken) Unregister() {
	t.tok.epoch.Store(0)
	m := t.mgr
	for {
		head := m.reg.freeHead.Load()
		t.tok.nextFree.Store(head & freeIdxMask)
		if m.reg.freeHead.CompareAndSwap(head, (head>>32+1)<<32|uint64(t.tok.slot+1)) {
			return
		}
	}
}

// TryReclaim is the local analogue of Listing 4 without the
// distributed parts: one election flag, one token scan, an epoch
// advance, and a direct (scatter-free) bulk free of the reclaimable
// generation.
func (m *LocalEpochManager) TryReclaim(c *pgas.Ctx) {
	m.checkLocale(c)
	if m.isSettingEpoch.Swap(1) == 1 {
		m.backoff.Add(1)
		return
	}
	thisEpoch := m.epoch.Load()
	safe := true
	for t := m.reg.allocHead.Load(); t != nil; t = t.nextAlloc {
		e := t.epoch.Load()
		if e != 0 && e != thisEpoch {
			safe = false
			break
		}
	}
	if safe {
		newEpoch := nextEpoch(thisEpoch)
		m.epoch.Store(newEpoch)
		m.reclaimGeneration(c, reclaimEpochOf(newEpoch))
		m.advances.Add(1)
	} else {
		m.advanceFail.Add(1)
	}
	m.isSettingEpoch.Store(0)
}

func (m *LocalEpochManager) reclaimGeneration(c *pgas.Ctx, e uint64) {
	list := m.limbo[e]
	node := list.PopAll()
	freed := 0
	for !node.IsNil() {
		var obj gas.Addr
		obj, node = list.Next(c, node)
		if obj.IsNil() {
			continue
		}
		if c.Sys().LocaleHeap(m.locale).Free(obj) {
			freed++
		}
	}
	m.reclaimed.Add(int64(freed))
}

// Clear reclaims everything across all generations; callers must
// guarantee quiescence.
func (m *LocalEpochManager) Clear(c *pgas.Ctx) {
	m.checkLocale(c)
	for e := uint64(firstEpoch); e <= numEpochs; e++ {
		m.reclaimGeneration(c, e)
	}
}

// LocalStats reports the manager's diagnostic counters.
type LocalStats struct {
	Deferred    int64
	Reclaimed   int64
	Advances    int64
	AdvanceFail int64
	Backoff     int64
	Tokens      int64
}

// Stats returns a snapshot of the counters.
func (m *LocalEpochManager) Stats() LocalStats {
	return LocalStats{
		Deferred:    m.deferred.Load(),
		Reclaimed:   m.reclaimed.Load(),
		Advances:    m.advances.Load(),
		AdvanceFail: m.advanceFail.Load(),
		Backoff:     m.backoff.Load(),
		Tokens:      m.reg.count.Load(),
	}
}

// Epoch returns the manager's current epoch.
func (m *LocalEpochManager) Epoch() uint64 { return m.epoch.Load() }
