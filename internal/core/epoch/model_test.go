package epoch

import (
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Model-based test: a single-threaded random sequence of
// pin/defer/unpin/tryReclaim calls is checked against a reference
// model that predicts, in absolute advance counts, *exactly* when each
// deferred object must be freed — the advance that reclaims the
// generation it was deferred under. The implementation must free each
// object at precisely that advance: never earlier (safety), never
// later (no leak).
func TestEpochModelConformance(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)

	f := func(ops []uint8) bool {
		em := NewEpochManager(c)
		tok := em.Register(c)
		type deferred struct {
			addr     gas.Addr
			deadline int // absolute advance count at which it dies
		}
		var objs []deferred
		modelEpoch := uint64(firstEpoch)
		advances := 0

		checkAll := func() bool {
			kept := objs[:0]
			for _, d := range objs {
				_, live := pgas.Deref[*payload](c, d.addr)
				dead := advances >= d.deadline
				if live == dead {
					return false
				}
				// Once verified dead, drop the record: the heap's LIFO
				// free list may hand the same address to a later
				// allocation (the ABA-enabling reuse the paper builds
				// on), which would alias this stale entry.
				if live {
					kept = append(kept, d)
				}
			}
			objs = kept
			return true
		}

		for _, op := range ops {
			switch op % 4 {
			case 0:
				tok.Pin(c)
			case 1:
				tok.Unpin(c)
			case 2:
				if tok.Pinned() {
					a := c.Alloc(&payload{})
					tok.DeferDelete(c, a)
					// Deferral goes to the locale's *current* epoch
					// (== modelEpoch here), and the object dies exactly
					// two advances later.
					objs = append(objs, deferred{
						addr:     a,
						deadline: advances + 2,
					})
				}
			case 3:
				wasPinned := tok.Pinned()
				pinnedEpoch := tok.Epoch()
				em.TryReclaim(c)
				// Model: the advance succeeds iff the token was
				// quiescent or already in the current epoch.
				if !wasPinned || pinnedEpoch == modelEpoch {
					modelEpoch = nextEpoch(modelEpoch)
					advances++
				}
				if em.GlobalEpoch(c) != modelEpoch {
					return false
				}
			}
			if !checkAll() {
				return false
			}
		}
		// Cleanup so heaps don't accumulate across quick iterations.
		tok.Unpin(c)
		tok.Unregister(c)
		em.Clear(c)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
