package hazard

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

type payload struct{ v int }

func TestProtectValidates(t *testing.T) {
	s := newTestSystem(t, 2)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 8)
		cell := atomics.New(c, 1, atomics.Options{})
		a := c.Alloc(&payload{v: 1})
		cell.Write(c, a)
		hp := d.Acquire(c)
		got := hp.Protect(c, cell)
		if got != a {
			t.Fatalf("protected %v, want %v", got, a)
		}
		if gas.Addr(hp.val.Load()) != a {
			t.Fatal("hazard not published")
		}
		d.Release(c, hp)
		if hp.val.Load() != 0 {
			t.Fatal("release left the hazard set")
		}
	})
}

func TestScanSparesProtected(t *testing.T) {
	s := newTestSystem(t, 2)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 1000) // manual scans only
		protected := c.Alloc(&payload{v: 1})
		doomed := c.Alloc(&payload{v: 2})

		hp := d.Acquire(c)
		hp.Set(protected)

		d.Retire(c, protected)
		d.Retire(c, doomed)
		d.Scan(c)

		if _, ok := pgas.Deref[*payload](c, protected); !ok {
			t.Fatal("protected object was freed")
		}
		if _, ok := pgas.Deref[*payload](c, doomed); ok {
			t.Fatal("unprotected object survived the scan")
		}

		// Clearing the hazard lets the next scan free it.
		hp.Clear()
		d.Scan(c)
		if _, ok := pgas.Deref[*payload](c, protected); ok {
			t.Fatal("object survived after its hazard cleared")
		}
		st := d.Stats(c)
		if st.Freed != 2 || st.Retired != 2 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestScanHonoursRemoteHazards(t *testing.T) {
	s := newTestSystem(t, 3)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 1000)
		obj := c.Alloc(&payload{v: 7})
		// A task on locale 2 protects the object...
		var remote *Slot
		c.On(2, func(rc *pgas.Ctx) {
			remote = d.Acquire(rc)
			remote.Set(obj)
		})
		// ...and a retire+scan on locale 0 must spare it.
		d.Retire(c, obj)
		d.Scan(c)
		if _, ok := pgas.Deref[*payload](c, obj); !ok {
			t.Fatal("scan ignored a remote locale's hazard")
		}
		c.On(2, func(rc *pgas.Ctx) {
			remote.Clear()
			d.Release(rc, remote)
		})
		d.Scan(c)
		if _, ok := pgas.Deref[*payload](c, obj); ok {
			t.Fatal("object survived after remote hazard cleared")
		}
	})
}

func TestThresholdTriggersScan(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 4)
		for i := 0; i < 4; i++ {
			d.Retire(c, c.Alloc(&payload{v: i}))
		}
		st := d.Stats(c)
		if st.Scans != 1 || st.Freed != 4 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestSlotRecycling(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 8)
		s1 := d.Acquire(c)
		d.Release(c, s1)
		s2 := d.Acquire(c)
		if s1 != s2 {
			t.Fatal("slot not recycled")
		}
	})
}

// The classic HP guarantee: a reader that protected an object can
// dereference it even while writers retire and scans run concurrently.
func TestConcurrentProtectRetire(t *testing.T) {
	s := newTestSystem(t, 2)
	c0 := s.Ctx(0)
	d := NewDomain(c0, 16)
	cell := atomics.New(c0, 0, atomics.Options{})
	cell.Write(c0, c0.Alloc(&payload{v: 0}))

	const readers = 3
	const iters = 400
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := s.Ctx(r % 2)
			hp := d.Acquire(c)
			defer d.Release(c, hp)
			for i := 0; i < iters; i++ {
				addr := hp.Protect(c, cell)
				if addr.IsNil() {
					continue
				}
				p := pgas.MustDeref[*payload](c, addr) // must be safe under the hazard
				_ = p.v
				hp.Clear()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Ctx(0)
		for i := 1; i <= iters; i++ {
			fresh := c.Alloc(&payload{v: i})
			old := cell.Exchange(c, fresh)
			if !old.IsNil() {
				d.Retire(c, old)
			}
		}
	}()
	wg.Wait()

	d.Drain(s.Ctx(0))
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d use-after-free loads under hazard protection", uaf)
	}
	st := d.Stats(s.Ctx(0))
	// Everything retired is eventually freed once hazards are clear
	// (the final object is still live in the cell, never retired).
	if st.Freed != st.Retired {
		t.Fatalf("freed %d of %d retired", st.Freed, st.Retired)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		d := NewDomain(c, 1000)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			d.Retire(lc, lc.Alloc(&payload{}))
		})
		st := d.Stats(c)
		if st.Retired != 4 {
			t.Fatalf("retired = %d", st.Retired)
		}
		d.Drain(c)
		if st = d.Stats(c); st.Freed != 4 {
			t.Fatalf("freed = %d", st.Freed)
		}
	})
}
