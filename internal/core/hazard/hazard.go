// Package hazard implements Hazard Pointers (Michael, IEEE TPDS 2004)
// adapted to the PGAS model, as a comparison baseline for the paper's
// EpochManager. The paper cites hazard pointers as one of the known
// shared-memory reclamation schemes ([7]) that distributed EBR
// competes with; implementing both under the same simulated cost model
// makes the trade-off measurable:
//
//   - HP readers pay per-*access*: publishing the hazard requires a
//     store plus a validating re-read of the source — and when the
//     source is remote, that re-read is a second network operation on
//     every single dereference.
//   - EBR readers pay per-*operation*: one locale-local pin/unpin pair
//     regardless of how many objects the operation touches.
//   - HP reclamation is precise (bounded garbage, immune to a stalled
//     reader); EBR reclamation is batched but a single pinned token
//     stalls every locale's garbage.
//
// The scan that filters retired objects against published hazards must
// collect hazard values from *every* locale (one on-statement each),
// which is the distributed analogue of Michael's all-threads scan.
package hazard

import (
	"sort"
	"sync"
	"sync/atomic"

	"gopgas/internal/core/atomics"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Domain is a privatized hazard-pointer domain: each locale keeps its
// own hazard slots and retired list, mirroring the EpochManager's
// per-locale instances.
type Domain struct {
	priv      pgas.Privatized[inst]
	threshold int
}

type inst struct {
	locale int

	slotsHead atomic.Pointer[Slot] // append-only published-slot list

	mu      sync.Mutex
	free    []*Slot
	retired []gas.Addr

	retires  atomic.Int64
	freed    atomic.Int64
	scans    atomic.Int64
	deferred atomic.Int64 // retired objects still held by hazards after a scan
}

// Slot is one hazard pointer: a published "I am reading this address"
// cell that scanners on any locale will honour.
type Slot struct {
	val  atomic.Uint64 // gas.Addr being protected; 0 = none
	next *Slot
	inst *inst
}

// NewDomain creates a hazard-pointer domain across all locales.
// threshold is the retired-list length that triggers a scan on the
// retiring locale (Michael's R); it defaults to 64.
func NewDomain(c *pgas.Ctx, threshold int) *Domain {
	if threshold <= 0 {
		threshold = 64
	}
	d := &Domain{threshold: threshold}
	d.priv = pgas.NewPrivatized(c, func(lc *pgas.Ctx) *inst {
		return &inst{locale: lc.Here()}
	})
	return d
}

// Acquire obtains a hazard slot on the calling locale (recycled when
// possible; slots, like tokens, are never truly freed).
func (d *Domain) Acquire(c *pgas.Ctx) *Slot {
	in := d.priv.Get(c)
	in.mu.Lock()
	if n := len(in.free); n > 0 {
		s := in.free[n-1]
		in.free = in.free[:n-1]
		in.mu.Unlock()
		return s
	}
	in.mu.Unlock()
	s := &Slot{inst: in}
	for {
		head := in.slotsHead.Load()
		s.next = head
		if in.slotsHead.CompareAndSwap(head, s) {
			return s
		}
	}
}

// Release clears the slot and returns it to the locale's free pool.
func (d *Domain) Release(c *pgas.Ctx, s *Slot) {
	s.val.Store(0)
	in := d.priv.Get(c)
	in.mu.Lock()
	in.free = append(in.free, s)
	in.mu.Unlock()
}

// Protect publishes a hazard for the object currently referenced by a
// and returns the validated address: the classic read–publish–re-read
// loop. When a is homed remotely every iteration costs two network
// reads — the per-access price hazard pointers pay that epoch pinning
// does not.
func (s *Slot) Protect(c *pgas.Ctx, a *atomics.AtomicObject) gas.Addr {
	for {
		x := a.Read(c)
		s.val.Store(uint64(x))
		if a.Read(c) == x {
			return x
		}
	}
}

// Set publishes a hazard for an address the caller has already
// validated by other means.
func (s *Slot) Set(addr gas.Addr) { s.val.Store(uint64(addr)) }

// Clear withdraws the hazard.
func (s *Slot) Clear() { s.val.Store(0) }

// Retire marks addr unreachable and queues it for reclamation on the
// calling locale; once the retired list reaches the domain threshold a
// scan runs.
func (d *Domain) Retire(c *pgas.Ctx, addr gas.Addr) {
	in := d.priv.Get(c)
	in.retires.Add(1)
	in.mu.Lock()
	in.retired = append(in.retired, addr)
	trigger := len(in.retired) >= d.threshold
	in.mu.Unlock()
	if trigger {
		d.Scan(c)
	}
}

// Scan collects the hazard sets of every locale (one on-statement per
// remote locale — the distributed analogue of Michael's all-thread
// scan) and frees every locally retired object no hazard protects.
// Objects still protected stay retired for a later scan.
func (d *Domain) Scan(c *pgas.Ctx) {
	in := d.priv.Get(c)
	in.scans.Add(1)

	// Collect published hazards from all locales.
	L := c.NumLocales()
	perLocale := make([][]uint64, L)
	c.CoforallLocales(func(lc *pgas.Ctx) {
		li := d.priv.Get(lc)
		var vals []uint64
		for s := li.slotsHead.Load(); s != nil; s = s.next {
			if v := s.val.Load(); v != 0 {
				vals = append(vals, v)
			}
		}
		perLocale[lc.Here()] = vals
	})
	var hazards []uint64
	for _, vals := range perLocale {
		hazards = append(hazards, vals...)
	}
	sort.Slice(hazards, func(i, j int) bool { return hazards[i] < hazards[j] })
	protected := func(a gas.Addr) bool {
		i := sort.Search(len(hazards), func(i int) bool { return hazards[i] >= uint64(a) })
		return i < len(hazards) && hazards[i] == uint64(a)
	}

	// Partition the retired list; free the unprotected by owner locale
	// (bulk, like the EpochManager's scatter lists).
	in.mu.Lock()
	retired := in.retired
	in.retired = nil
	in.mu.Unlock()

	var keep []gas.Addr
	byOwner := make(map[int][]gas.Addr)
	for _, a := range retired {
		if protected(a) {
			keep = append(keep, a)
			continue
		}
		byOwner[a.Locale()] = append(byOwner[a.Locale()], a)
	}
	freed := 0
	for owner, batch := range byOwner {
		freed += c.FreeBulk(owner, batch)
	}
	in.freed.Add(int64(freed))
	in.deferred.Add(int64(len(keep)))

	if len(keep) > 0 {
		in.mu.Lock()
		in.retired = append(in.retired, keep...)
		in.mu.Unlock()
	}
}

// Drain scans every locale until nothing retired remains; callers must
// have cleared all hazards first (quiescence), like EpochManager.Clear.
func (d *Domain) Drain(c *pgas.Ctx) {
	c.CoforallLocales(func(lc *pgas.Ctx) {
		d.Scan(lc)
	})
}

// Stats aggregates domain counters across locales.
type Stats struct {
	Retired  int64 // Retire calls
	Freed    int64 // objects reclaimed
	Scans    int64 // scans executed
	Deferred int64 // scan passes in which an object stayed protected
}

// Stats gathers counters from every locale.
func (d *Domain) Stats(c *pgas.Ctx) Stats {
	var s Stats
	results := make([]Stats, c.NumLocales())
	c.CoforallLocales(func(lc *pgas.Ctx) {
		li := d.priv.Get(lc)
		results[lc.Here()] = Stats{
			Retired:  li.retires.Load(),
			Freed:    li.freed.Load(),
			Scans:    li.scans.Load(),
			Deferred: li.deferred.Load(),
		}
	})
	for _, r := range results {
		s.Retired += r.Retired
		s.Freed += r.Freed
		s.Scans += r.Scans
		s.Deferred += r.Deferred
	}
	return s
}
