package atomics

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

type node struct {
	v    int
	next gas.Addr
}

func TestAtomicObjectModes(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		auto := New(c, 0, Options{})
		if auto.Mode() != ModeCompressed {
			t.Errorf("auto resolved to %v on a small system", auto.Mode())
		}
	})
	sw := pgas.NewSystem(pgas.Config{Locales: 2, ForceWidePointers: true})
	defer sw.Shutdown()
	sw.Run(func(c *pgas.Ctx) {
		auto := New(c, 0, Options{})
		if auto.Mode() != ModeWide {
			t.Errorf("auto resolved to %v with forced wide pointers", auto.Mode())
		}
	})
}

func TestAtomicObjectBasicOps(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
		wide bool
	}{
		{"compressed", Options{Mode: ModeCompressed}, false},
		{"compressed+aba", Options{Mode: ModeCompressed, ABA: true}, false},
		{"wide", Options{Mode: ModeWide}, true},
	}
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		for _, cfg := range configs {
			t.Run(backend.String()+"/"+cfg.name, func(t *testing.T) {
				s := newTestSystem(t, 3, backend)
				s.Run(func(c *pgas.Ctx) {
					a := New(c, 1, cfg.opt)
					if got := a.Read(c); !got.IsNil() {
						t.Fatalf("fresh object reads %v", got)
					}
					n1 := c.AllocOn(2, &node{v: 1})
					n2 := c.Alloc(&node{v: 2})
					a.Write(c, n1)
					if got := a.Read(c); got != n1 {
						t.Fatalf("Read = %v want %v", got, n1)
					}
					if old := a.Exchange(c, n2); old != n1 {
						t.Fatalf("Exchange = %v", old)
					}
					if !a.CompareAndSwap(c, n2, n1) {
						t.Fatal("matching CAS failed")
					}
					if a.CompareAndSwap(c, n2, n2) {
						t.Fatal("stale CAS succeeded")
					}
					if got := a.Read(c); got != n1 {
						t.Fatalf("final = %v", got)
					}
					// Locality survives the representation round trip.
					if got := a.Read(c).Locale(); got != 2 {
						t.Fatalf("locale lost: %d", got)
					}
					// Back to nil.
					a.Write(c, gas.AddrNil)
					if got := a.Read(c); !got.IsNil() {
						t.Fatalf("nil write read back %v", got)
					}
				})
			})
		}
	}
}

func TestAtomicObjectABAOps(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		a := New(c, 1, Options{ABA: true})
		n1 := c.Alloc(&node{v: 1})
		n2 := c.Alloc(&node{v: 2})

		r0 := a.ReadABA(c)
		if !r0.IsNil() || r0.Count() != 0 {
			t.Fatalf("fresh = %v", r0)
		}
		if !a.CompareAndSwapABA(c, r0, n1) {
			t.Fatal("CASABA from nil failed")
		}
		r1 := a.ReadABA(c)
		if r1.Object() != n1 || r1.Count() != 1 {
			t.Fatalf("after CASABA: %v", r1)
		}
		// Stale stamp must fail even with a matching pointer.
		if a.CompareAndSwapABA(c, r0, n2) {
			t.Fatal("CASABA with stale stamp succeeded")
		}
		a.WriteABA(c, n2)
		r2 := a.ReadABA(c)
		if r2.Object() != n2 || r2.Count() != 2 {
			t.Fatalf("after WriteABA: %v", r2)
		}
		old := a.ExchangeABA(c, n1)
		if old.Object() != n2 || old.Count() != 2 {
			t.Fatalf("ExchangeABA returned %v", old)
		}
		if r3 := a.ReadABA(c); r3.Object() != n1 || r3.Count() != 3 {
			t.Fatalf("after ExchangeABA: %v", r3)
		}
	})
}

// TestABAProblemDemonstration reproduces the paper's Section II.A
// scenario: τ1 reads head = α; τ2 pops and frees α; τ3 allocates a new
// node that reuses address α and pushes it. τ1's plain CAS then
// incorrectly succeeds, while the ABA-protected CAS correctly fails.
func TestABAProblemDemonstration(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		// Plain CAS: vulnerable.
		{
			head := New(c, 0, Options{})
			alpha := c.Alloc(&node{v: 1})
			head.Write(c, alpha)

			tau1Saw := head.Read(c) // τ1 preempted here

			// τ2: pop and free α.
			head.Write(c, gas.AddrNil)
			c.Free(alpha)
			// τ3: allocate (LIFO reuse gives the same address) and push.
			alphaReborn := c.Alloc(&node{v: 99})
			if alphaReborn != alpha {
				t.Fatalf("allocator did not reuse the slot (%v vs %v)", alpha, alphaReborn)
			}
			head.Write(c, alphaReborn)

			// τ1 resumes: the CAS succeeds despite the world having
			// changed underneath it — the ABA problem.
			if !head.CompareAndSwap(c, tau1Saw, gas.AddrNil) {
				t.Fatal("expected the unprotected CAS to (wrongly) succeed")
			}
		}
		// ABA-protected CAS: safe.
		{
			head := New(c, 0, Options{ABA: true})
			alpha := c.Alloc(&node{v: 1})
			head.WriteABA(c, alpha)

			tau1Saw := head.ReadABA(c) // τ1 preempted here

			head.WriteABA(c, gas.AddrNil)
			c.Free(alpha)
			alphaReborn := c.Alloc(&node{v: 99})
			if alphaReborn != alpha {
				t.Fatalf("allocator did not reuse the slot")
			}
			head.WriteABA(c, alphaReborn)

			if head.CompareAndSwapABA(c, tau1Saw, gas.AddrNil) {
				t.Fatal("ABA-protected CAS succeeded on a recycled address")
			}
		}
	})
}

func TestAtomicObjectRouting(t *testing.T) {
	// Compressed, no ABA, ugni → NIC atomics; none+remote → AM.
	s := newTestSystem(t, 2, comm.BackendUGNI)
	s.Run(func(c *pgas.Ctx) {
		a := New(c, 1, Options{})
		before := s.Counters().Snapshot()
		a.Read(c)
		a.Write(c, gas.AddrNil)
		a.CompareAndSwap(c, gas.AddrNil, gas.AddrNil)
		d := s.Counters().Snapshot().Sub(before)
		if d.NICAMOs != 3 || d.AMAMOs != 0 || d.DCASRemote != 0 {
			t.Fatalf("ugni compressed routing: %v", d)
		}
	})

	s2 := newTestSystem(t, 2, comm.BackendNone)
	s2.Run(func(c *pgas.Ctx) {
		a := New(c, 1, Options{})
		before := s2.Counters().Snapshot()
		a.Read(c)
		d := s2.Counters().Snapshot().Sub(before)
		if d.AMAMOs != 1 || d.NICAMOs != 0 {
			t.Fatalf("none remote routing: %v", d)
		}
	})

	// ABA full-width ops are DCAS-class (remote execution) even on ugni.
	s3 := newTestSystem(t, 2, comm.BackendUGNI)
	s3.Run(func(c *pgas.Ctx) {
		a := New(c, 1, Options{ABA: true})
		before := s3.Counters().Snapshot()
		r := a.ReadABA(c)
		a.CompareAndSwapABA(c, r, gas.AddrNil)
		d := s3.Counters().Snapshot().Sub(before)
		if d.DCASRemote != 2 || d.NICAMOs != 0 {
			t.Fatalf("ABA routing must be remote execution: %v", d)
		}
		// ...but the normal (pointer-half) ops on the same object keep
		// their NIC fast path — the paper's mixed-mode design.
		before = s3.Counters().Snapshot()
		a.Read(c)
		a.Write(c, gas.AddrNil)
		d = s3.Counters().Snapshot().Sub(before)
		if d.NICAMOs != 2 || d.DCASRemote != 0 {
			t.Fatalf("mixed-mode normal ops lost the NIC path: %v", d)
		}
	})

	// Wide mode: every op is DCAS-class on both backends.
	s4 := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendUGNI, ForceWidePointers: true})
	defer s4.Shutdown()
	s4.Run(func(c *pgas.Ctx) {
		a := New(c, 1, Options{})
		before := s4.Counters().Snapshot()
		a.Read(c)
		a.CompareAndSwap(c, gas.AddrNil, gas.AddrNil)
		d := s4.Counters().Snapshot().Sub(before)
		if d.DCASRemote != 2 || d.NICAMOs != 0 {
			t.Fatalf("wide-mode routing: %v", d)
		}
	})
}

func TestWideModePanicsOnABA(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 1, ForceWidePointers: true})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		defer func() {
			if recover() == nil {
				t.Fatal("wide + ABA must panic (no room for the stamp)")
			}
		}()
		New(c, 0, Options{Mode: ModeWide, ABA: true})
	})
}

func TestABAOpsWithoutSupportPanic(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		a := New(c, 0, Options{})
		defer func() {
			if recover() == nil {
				t.Fatal("ReadABA without ABA support must panic")
			}
		}()
		a.ReadABA(c)
	})
}

// Concurrent Treiber-style push/pop through AtomicObject across
// locales: no element may be lost or duplicated.
func TestAtomicObjectConcurrentStack(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 4, backend)
			head := New(s.Ctx(0), 0, Options{ABA: true})
			const perLocale = 100
			var wg sync.WaitGroup
			for l := 0; l < 4; l++ {
				wg.Add(1)
				go func(l int) {
					defer wg.Done()
					c := s.Ctx(l)
					for i := 0; i < perLocale; i++ {
						n := c.Alloc(&node{v: l*perLocale + i})
						for {
							old := head.ReadABA(c)
							pgas.MustDeref[*node](c, n).next = old.Object()
							if head.CompareAndSwapABA(c, old, n) {
								break
							}
						}
					}
				}(l)
			}
			wg.Wait()

			// Drain and verify the multiset.
			c := s.Ctx(0)
			seen := make(map[int]bool)
			for {
				old := head.ReadABA(c)
				if old.IsNil() {
					break
				}
				n := pgas.MustDeref[*node](c, old.Object())
				if !head.CompareAndSwapABA(c, old, n.next) {
					continue
				}
				if seen[n.v] {
					t.Fatalf("duplicate element %d", n.v)
				}
				seen[n.v] = true
			}
			if len(seen) != 4*perLocale {
				t.Fatalf("drained %d elements, want %d", len(seen), 4*perLocale)
			}
		})
	}
}
