package atomics

import (
	"sync"
	"testing"
	"testing/quick"

	"gopgas/internal/gas"
)

func TestLocalAtomicObjectBasics(t *testing.T) {
	a := NewLocal(0, false)
	if !a.Read().IsNil() {
		t.Fatal("fresh object not nil")
	}
	x := gas.MakeAddr(0, 10)
	y := gas.MakeAddr(0, 20)
	a.Write(x)
	if a.Read() != x {
		t.Fatal("read after write")
	}
	if old := a.Exchange(y); old != x {
		t.Fatalf("exchange = %v", old)
	}
	if !a.CompareAndSwap(y, x) || a.CompareAndSwap(y, y) {
		t.Fatal("CAS semantics")
	}
}

func TestLocalAtomicObjectRejectsRemote(t *testing.T) {
	a := NewLocal(0, false)
	remote := gas.MakeAddr(1, 0)
	for name, fn := range map[string]func(){
		"Write":    func() { a.Write(remote) },
		"Exchange": func() { a.Exchange(remote) },
		"CAS":      func() { a.CompareAndSwap(gas.AddrNil, remote) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with a remote address must panic", name)
				}
			}()
			fn()
		}()
	}
	// Nil is always fine.
	a.Write(gas.AddrNil)
}

func TestLocalABASemantics(t *testing.T) {
	a := NewLocal(0, true)
	x := gas.MakeAddr(0, 1)
	y := gas.MakeAddr(0, 2)

	r0 := a.ReadABA()
	if !a.CompareAndSwapABA(r0, x) {
		t.Fatal("CASABA from fresh failed")
	}
	if a.CompareAndSwapABA(r0, y) {
		t.Fatal("CASABA with stale stamp succeeded")
	}
	r1 := a.ReadABA()
	if r1.Object() != x || r1.Count() != 1 {
		t.Fatalf("r1 = %v", r1)
	}
	a.WriteABA(y)
	if r := a.ReadABA(); r.Object() != y || r.Count() != 2 {
		t.Fatalf("after WriteABA: %v", r)
	}
	old := a.ExchangeABA(x)
	if old.Object() != y || old.Count() != 2 {
		t.Fatalf("ExchangeABA = %v", old)
	}
	// Mixed mode: plain ops don't bump the stamp.
	a.Write(y)
	if r := a.ReadABA(); r.Count() != 3 {
		t.Fatalf("plain Write bumped the stamp: %v", r)
	}
}

func TestLocalABAWithoutSupportPanics(t *testing.T) {
	a := NewLocal(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ReadABA()
}

// Property: the stamp is strictly monotone under any sequence of
// ABA-aware operations.
func TestLocalABAMonotoneStampProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewLocal(0, true)
		x := gas.MakeAddr(0, 3)
		last := a.ReadABA().Count()
		for _, op := range ops {
			switch op % 3 {
			case 0:
				a.WriteABA(x)
			case 1:
				a.ExchangeABA(x)
			case 2:
				r := a.ReadABA()
				a.CompareAndSwapABA(r, x)
			}
			now := a.ReadABA().Count()
			if now < last {
				return false
			}
			last = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent CAS hammer: exactly one winner per round.
func TestLocalAtomicObjectCASRace(t *testing.T) {
	a := NewLocal(0, true)
	const rounds = 200
	const tasks = 8
	var wins [tasks]int
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				want := gas.MakeAddr(0, uint64(r))
				next := gas.MakeAddr(0, uint64(r+1))
				for {
					cur := a.ReadABA()
					if cur.Object() == next || cur.Count() > uint64(r) {
						break // someone won this round
					}
					if a.CompareAndSwapABA(cur, next) {
						wins[g]++
						break
					}
				}
				_ = want
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != rounds {
		t.Fatalf("%d wins across %d rounds — CAS not linearizable", total, rounds)
	}
}
