// Package atomics implements the paper's AtomicObject and
// LocalAtomicObject: atomic read/write/compare-and-swap/exchange on
// arbitrary heap objects, which Chapel (and most PGAS systems) cannot
// express natively because object references are 128-bit wide pointers
// while network atomics stop at 64 bits.
//
// Three representations are provided, selected per AtomicObject:
//
//   - Compressed (default, systems with ≤ 2^16 locales): the wide
//     pointer is packed into one 64-bit word (16-bit locale | 48-bit
//     address), so every operation can be a NIC-offloaded RDMA atomic.
//   - Wide (systems beyond 2^16 locales, or ForceWidePointers): the
//     full 128-bit wide pointer is kept and every operation becomes a
//     double-word compare-and-swap executed on the owning locale —
//     demoted from RDMA to remote execution, exactly the fallback the
//     paper describes.
//   - Descriptor (the paper's future work): the word holds an index
//     into a distributed descriptor table instead of a pointer,
//     re-enabling RDMA atomics at any locale count at the price of one
//     extra lookup to resolve the index.
//
// Optional ABA protection pairs the pointer word with a 64-bit stamp
// in a 128-bit cell; the *ABA operation variants update both halves
// with DCAS, while the normal variants keep operating on the pointer
// word alone (still RDMA-able) — both may be mixed, as the paper
// allows for advanced users.
package atomics

import (
	"fmt"

	"gopgas/internal/gas"
)

// ABA is a stamped pointer: the value returned by the *ABA read
// operations and consumed by the *ABA compare-and-swap. The stamp
// (count) increments on every ABA-aware mutation, so a compare-and-
// swap against a stale ABA value fails even if the same address has
// been recycled in the interim — the classic DCAS cure for the ABA
// problem.
//
// Chapel's version forwards method calls to the wrapped object; in Go,
// call Object to obtain the address and dereference it explicitly.
type ABA struct {
	addr  gas.Addr
	count uint64
}

// MakeABA builds a stamped pointer; primarily for tests.
func MakeABA(addr gas.Addr, count uint64) ABA { return ABA{addr: addr, count: count} }

// Object returns the pointer half of the stamped value.
func (a ABA) Object() gas.Addr { return a.addr }

// Count returns the stamp half.
func (a ABA) Count() uint64 { return a.count }

// IsNil reports whether the pointer half is nil.
func (a ABA) IsNil() bool { return a.addr.IsNil() }

// String renders the stamped pointer.
func (a ABA) String() string {
	return fmt.Sprintf("ABA{%v,#%d}", a.addr, a.count)
}
