package atomics

import (
	"sync"
	"sync/atomic"

	"gopgas/internal/gas"
)

// LocalAtomicObject is the shared-memory-optimized variant — the
// paper's initial prototype, kept as its own module. It ignores the
// locality half of the wide pointer entirely and keeps only the 64-bit
// "virtual address" in a processor atomic, so it must only ever hold
// objects that live on the locale using it; handing it a remote
// reference is a program error (checked).
//
// Operations take no Ctx and perform no simulated communication: this
// is exactly the class of object the paper "opts out" of network
// atomics for.
type LocalAtomicObject struct {
	locale int
	hasAB  bool
	v      atomic.Uint64

	// ABA cell, used only when hasAB. The mutex emulates CMPXCHG16B as
	// in pgas.Word128; here there is never a remote path.
	mu sync.Mutex
	lo uint64
	hi uint64
}

// NewLocal creates a LocalAtomicObject pinned to the given locale,
// initially nil. Set aba to enable the *ABA variants.
func NewLocal(locale int, aba bool) *LocalAtomicObject {
	return &LocalAtomicObject{locale: locale, hasAB: aba}
}

// Locale returns the locale the object is pinned to.
func (a *LocalAtomicObject) Locale() int { return a.locale }

// HasABA reports whether the *ABA variants are available.
func (a *LocalAtomicObject) HasABA() bool { return a.hasAB }

// check enforces the locality contract: only local objects (or nil)
// may be stored, since the locality bits are discarded.
func (a *LocalAtomicObject) check(addr gas.Addr) {
	if !addr.IsNil() && addr.Locale() != a.locale {
		panic("atomics: LocalAtomicObject given a remote object; use AtomicObject")
	}
}

// Read atomically loads the reference.
func (a *LocalAtomicObject) Read() gas.Addr {
	if a.hasAB {
		a.mu.Lock()
		v := a.lo
		a.mu.Unlock()
		return gas.Addr(v)
	}
	return gas.Addr(a.v.Load())
}

// Write atomically stores a reference.
func (a *LocalAtomicObject) Write(addr gas.Addr) {
	a.check(addr)
	if a.hasAB {
		a.mu.Lock()
		a.lo = uint64(addr)
		a.mu.Unlock()
		return
	}
	a.v.Store(uint64(addr))
}

// Exchange atomically swaps in a reference, returning the previous.
func (a *LocalAtomicObject) Exchange(addr gas.Addr) gas.Addr {
	a.check(addr)
	if a.hasAB {
		a.mu.Lock()
		old := a.lo
		a.lo = uint64(addr)
		a.mu.Unlock()
		return gas.Addr(old)
	}
	return gas.Addr(a.v.Swap(uint64(addr)))
}

// CompareAndSwap atomically replaces old with new, reporting success.
func (a *LocalAtomicObject) CompareAndSwap(old, new gas.Addr) bool {
	a.check(new)
	if a.hasAB {
		a.mu.Lock()
		defer a.mu.Unlock()
		if a.lo != uint64(old) {
			return false
		}
		a.lo = uint64(new)
		return true
	}
	return a.v.CompareAndSwap(uint64(old), uint64(new))
}

// ReadABA atomically loads the stamped reference.
func (a *LocalAtomicObject) ReadABA() ABA {
	a.requireABA()
	a.mu.Lock()
	r := ABA{addr: gas.Addr(a.lo), count: a.hi}
	a.mu.Unlock()
	return r
}

// WriteABA atomically stores a reference and bumps the stamp.
func (a *LocalAtomicObject) WriteABA(addr gas.Addr) {
	a.requireABA()
	a.check(addr)
	a.mu.Lock()
	a.lo = uint64(addr)
	a.hi++
	a.mu.Unlock()
}

// ExchangeABA atomically swaps in a reference, bumps the stamp, and
// returns the previous stamped value.
func (a *LocalAtomicObject) ExchangeABA(addr gas.Addr) ABA {
	a.requireABA()
	a.check(addr)
	a.mu.Lock()
	old := ABA{addr: gas.Addr(a.lo), count: a.hi}
	a.lo = uint64(addr)
	a.hi++
	a.mu.Unlock()
	return old
}

// CompareAndSwapABA succeeds only if both reference and stamp match.
func (a *LocalAtomicObject) CompareAndSwapABA(old ABA, new gas.Addr) bool {
	a.requireABA()
	a.check(new)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lo != uint64(old.addr) || a.hi != old.count {
		return false
	}
	a.lo = uint64(new)
	a.hi = old.count + 1
	return true
}

func (a *LocalAtomicObject) requireABA() {
	if !a.hasAB {
		panic("atomics: *ABA operation on a LocalAtomicObject created without ABA")
	}
}
