package atomics

import (
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Typed pairs an AtomicObject with the Go type of the objects it
// references, providing allocation and dereference sugar so callers
// work with *T instead of raw addresses. It is the closest Go analogue
// to Chapel's `AtomicObject(unmanaged T)` generic instantiation (the
// `forwarding` sugar of the ABA wrapper has no Go equivalent; Deref
// explicitly).
//
// All underlying operations — including the *ABA variants via the
// embedded AtomicObject — remain available.
type Typed[T any] struct {
	*AtomicObject
}

// NewTyped creates a typed atomic object reference homed on the given
// locale.
func NewTyped[T any](c *pgas.Ctx, home int, opt Options) *Typed[T] {
	return &Typed[T]{AtomicObject: New(c, home, opt)}
}

// Load atomically reads the reference and dereferences it. ok is false
// when the reference is nil or the object has been reclaimed (a
// detected use-after-free — callers running under an epoch pin never
// observe the latter).
func (t *Typed[T]) Load(c *pgas.Ctx) (obj *T, addr gas.Addr, ok bool) {
	addr = t.Read(c)
	if addr.IsNil() {
		return nil, addr, false
	}
	obj, ok = pgas.Deref[*T](c, addr)
	return obj, addr, ok
}

// StoreNew allocates obj on the calling task's locale and atomically
// publishes it, returning the old reference for the caller to retire
// (typically via Token.DeferDelete).
func (t *Typed[T]) StoreNew(c *pgas.Ctx, obj *T) (fresh, old gas.Addr) {
	fresh = c.Alloc(obj)
	old = t.Exchange(c, fresh)
	return fresh, old
}

// SwapNew allocates obj and attempts to CAS it over the expected
// reference; on failure the unpublished allocation is freed eagerly
// (it was never reachable). It returns the new address on success.
func (t *Typed[T]) SwapNew(c *pgas.Ctx, expect gas.Addr, obj *T) (gas.Addr, bool) {
	fresh := c.Alloc(obj)
	if t.CompareAndSwap(c, expect, fresh) {
		return fresh, true
	}
	c.Free(fresh)
	return gas.AddrNil, false
}
