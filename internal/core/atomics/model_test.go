package atomics

import (
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Model-based property test: a random single-task sequence of mixed
// normal and ABA operations against one AtomicObject must agree with a
// trivial reference model (a value plus a stamp that counts ABA-aware
// mutations) — across every representation and both backends.
func TestAtomicObjectModelConformance(t *testing.T) {
	backends := []comm.Backend{comm.BackendNone, comm.BackendUGNI}
	for _, backend := range backends {
		t.Run(backend.String(), func(t *testing.T) {
			s := pgas.NewSystem(pgas.Config{Locales: 3, Backend: backend})
			defer s.Shutdown()
			c := s.Ctx(0)

			// A pool of candidate addresses on various locales.
			pool := make([]gas.Addr, 8)
			for i := range pool {
				pool[i] = c.AllocOn(i%3, &node{v: i})
			}
			pick := func(x uint8) gas.Addr {
				if x%9 == 8 {
					return gas.AddrNil
				}
				return pool[x%8]
			}

			f := func(home uint8, ops []uint8) bool {
				a := New(c, int(home%3), Options{ABA: true})
				var modelVal gas.Addr
				var modelStamp uint64

				for i := 0; i < len(ops)-1; i += 2 {
					op, arg := ops[i], ops[i+1]
					target := pick(arg)
					switch op % 8 {
					case 0:
						if a.Read(c) != modelVal {
							return false
						}
					case 1:
						a.Write(c, target)
						modelVal = target
					case 2:
						old := a.Exchange(c, target)
						if old != modelVal {
							return false
						}
						modelVal = target
					case 3:
						expectOK := modelVal == pool[arg%8]
						ok := a.CompareAndSwap(c, pool[arg%8], target)
						if ok != expectOK {
							return false
						}
						if ok {
							modelVal = target
						}
					case 4:
						r := a.ReadABA(c)
						if r.Object() != modelVal || r.Count() != modelStamp {
							return false
						}
					case 5:
						a.WriteABA(c, target)
						modelVal = target
						modelStamp++
					case 6:
						old := a.ExchangeABA(c, target)
						if old.Object() != modelVal || old.Count() != modelStamp {
							return false
						}
						modelVal = target
						modelStamp++
					case 7:
						snap := MakeABA(pool[arg%8], modelStamp)
						expectOK := modelVal == pool[arg%8]
						ok := a.CompareAndSwapABA(c, snap, target)
						if ok != expectOK {
							return false
						}
						if ok {
							modelVal = target
							modelStamp++
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The same model over the plain (non-ABA) representations, including
// wide mode and descriptors.
func TestAtomicObjectModelAllModes(t *testing.T) {
	configs := []struct {
		name string
		wide bool
		mode Mode
	}{
		{"compressed", false, ModeCompressed},
		{"wide", true, ModeWide},
		{"descriptor", false, ModeDescriptor},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			s := pgas.NewSystem(pgas.Config{Locales: 2, ForceWidePointers: cfg.wide})
			defer s.Shutdown()
			c := s.Ctx(0)
			opt := Options{Mode: cfg.mode}
			if cfg.mode == ModeDescriptor {
				opt.Table = NewDescriptorTable(c)
			}
			pool := make([]gas.Addr, 6)
			for i := range pool {
				pool[i] = c.AllocOn(i%2, &node{v: i})
			}

			f := func(ops []uint8) bool {
				a := New(c, 1, opt)
				var model gas.Addr
				for i := 0; i < len(ops)-1; i += 2 {
					op, arg := ops[i], ops[i+1]
					target := pool[arg%6]
					switch op % 4 {
					case 0:
						if a.Read(c) != model {
							return false
						}
					case 1:
						a.Write(c, target)
						model = target
					case 2:
						if old := a.Exchange(c, target); old != model {
							return false
						}
						model = target
					case 3:
						expectOK := model == pool[arg%6]
						if ok := a.CompareAndSwap(c, pool[arg%6], target); ok != expectOK {
							return false
						}
						if expectOK {
							model = target
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
