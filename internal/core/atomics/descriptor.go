package atomics

import (
	"sync"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// DescriptorTable implements the paper's stated future work: "allow
// more than 2^16 locales while still allowing RDMA atomic operations,
// by introducing another level of indirection and utilizing a
// descriptor index into a separate table of objects in place of the
// pointer itself."
//
// A descriptor is a plain 64-bit index; the table entry holding the
// full 128-bit wide pointer lives on shard locale (index mod L).
// Because the index is not partitioned into locale/address bits, it is
// not bounded by 16 bits of locality — an AtomicObject in
// ModeDescriptor therefore keeps the NIC-atomic fast path at any
// locale count. The price is one resolution step per decode, a GET
// when the shard is remote; registrations are interned so a given
// address is assigned exactly one descriptor.
type DescriptorTable struct {
	sys *pgas.System

	mu      sync.Mutex
	entries []gas.Addr // descriptor -> address; index 0 reserved for nil
	intern  map[gas.Addr]Descriptor
}

// Descriptor is an index into a DescriptorTable; 0 is nil.
type Descriptor uint64

// DescriptorNil is the nil descriptor.
const DescriptorNil Descriptor = 0

// NewDescriptorTable creates an empty table for the system.
func NewDescriptorTable(c *pgas.Ctx) *DescriptorTable {
	return &DescriptorTable{
		sys:     c.Sys(),
		entries: []gas.Addr{gas.AddrNil},
		intern:  map[gas.Addr]Descriptor{gas.AddrNil: DescriptorNil},
	}
}

// Register interns addr and returns its descriptor. A remote shard
// insertion costs an active message; repeated registrations of the
// same address are free after the first (interned).
//
// The table is stored process-side with a lock standing in for the
// shard locale's insertion path; the simulated communication cost is
// charged to the shard that would own the new entry.
func (t *DescriptorTable) Register(c *pgas.Ctx, addr gas.Addr) Descriptor {
	t.mu.Lock()
	if d, ok := t.intern[addr]; ok {
		t.mu.Unlock()
		return d
	}
	d := Descriptor(len(t.entries))
	t.entries = append(t.entries, addr)
	t.intern[addr] = d
	t.mu.Unlock()

	if shard := t.shardOf(d); shard != c.Here() {
		t.sys.Counters().IncAMAMO(c.Here())
		comm.Delay(t.sys.Latency().AMRoundTripNS)
	}
	return d
}

// Resolve returns the address a descriptor stands for, paying a GET
// when the owning shard is remote. Resolving DescriptorNil is free.
func (t *DescriptorTable) Resolve(c *pgas.Ctx, d Descriptor) gas.Addr {
	if d == DescriptorNil {
		return gas.AddrNil
	}
	if shard := t.shardOf(d); shard != c.Here() {
		t.sys.Counters().IncGet(c.Here())
		comm.Delay(t.sys.Latency().PutGetNS)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if uint64(d) >= uint64(len(t.entries)) {
		panic("atomics: resolve of unregistered descriptor")
	}
	return t.entries[d]
}

// Len returns the number of live descriptors (excluding nil).
func (t *DescriptorTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries) - 1
}

func (t *DescriptorTable) shardOf(d Descriptor) int {
	return int(uint64(d) % uint64(t.sys.NumLocales()))
}
