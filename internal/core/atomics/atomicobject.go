package atomics

import (
	"fmt"

	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Mode selects the pointer representation of an AtomicObject.
type Mode int

const (
	// ModeAuto picks Compressed when the system fits in 2^16 locales
	// and Wide otherwise (honouring Config.ForceWidePointers).
	ModeAuto Mode = iota
	// ModeCompressed packs locale+address into one RDMA-able word.
	ModeCompressed
	// ModeWide keeps the 128-bit wide pointer; all ops become DCAS.
	ModeWide
	// ModeDescriptor stores a table index in the word (future work).
	ModeDescriptor
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeCompressed:
		return "compressed"
	case ModeWide:
		return "wide"
	case ModeDescriptor:
		return "descriptor"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure an AtomicObject.
type Options struct {
	// Mode selects the representation; ModeAuto is the paper's
	// behaviour (compression when possible, DCAS fallback otherwise).
	Mode Mode
	// ABA enables the 128-bit stamped cell and the *ABA operation
	// variants. Requires a compressed pointer word (ModeCompressed,
	// ModeDescriptor, or ModeAuto resolving to compressed): the stamp
	// occupies the second half of the double word, so a wide pointer
	// leaves no room for it — the same constraint the Chapel
	// implementation has.
	ABA bool
	// Table supplies the descriptor table for ModeDescriptor.
	Table *DescriptorTable
}

// AtomicObject provides atomic operations on object references, homed
// on a specific locale like any other datum in the global address
// space. It is the distributed variant; see LocalAtomicObject for the
// shared-memory-optimized one.
type AtomicObject struct {
	home  int
	mode  Mode
	hasAB bool

	w64   *pgas.Word64  // compressed / descriptor, no ABA
	w128  *pgas.Word128 // ABA cell (lo=word, hi=stamp) or wide pointer (lo=vaddr, hi=locality)
	table *DescriptorTable
}

// New creates an AtomicObject homed on the given locale, initially
// nil. With Options zero value it matches the paper's default:
// compression when the system allows, wide-pointer DCAS fallback
// otherwise, no ABA stamp.
func New(c *pgas.Ctx, home int, opt Options) *AtomicObject {
	mode := opt.Mode
	if mode == ModeAuto {
		if c.Sys().WidePointers() {
			mode = ModeWide
		} else {
			mode = ModeCompressed
		}
	}
	a := &AtomicObject{home: home, mode: mode, hasAB: opt.ABA}
	switch mode {
	case ModeCompressed:
		if c.Sys().NumLocales() > gas.MaxLocales {
			panic("atomics: ModeCompressed on a system with more than 2^16 locales")
		}
		if opt.ABA {
			a.w128 = pgas.NewWord128(c, home, 0, 0)
		} else {
			a.w64 = pgas.NewWord64(c, home, 0)
		}
	case ModeWide:
		if opt.ABA {
			panic("atomics: ABA protection requires a compressed pointer word; wide pointers leave no room for the stamp")
		}
		a.w128 = pgas.NewWord128(c, home, 0, 0)
	case ModeDescriptor:
		if opt.Table == nil {
			panic("atomics: ModeDescriptor requires Options.Table")
		}
		a.table = opt.Table
		if opt.ABA {
			a.w128 = pgas.NewWord128(c, home, 0, 0)
		} else {
			a.w64 = pgas.NewWord64(c, home, 0)
		}
	default:
		panic("atomics: invalid mode " + mode.String())
	}
	return a
}

// Home returns the locale the atomic cell resides on.
func (a *AtomicObject) Home() int { return a.home }

// Mode returns the resolved representation.
func (a *AtomicObject) Mode() Mode { return a.mode }

// HasABA reports whether the *ABA variants are available.
func (a *AtomicObject) HasABA() bool { return a.hasAB }

// encode converts an object reference into the representation's word.
func (a *AtomicObject) encode(c *pgas.Ctx, addr gas.Addr) uint64 {
	if a.mode == ModeDescriptor {
		return uint64(a.table.Register(c, addr))
	}
	return uint64(addr)
}

// decode converts a representation word back into an object reference.
func (a *AtomicObject) decode(c *pgas.Ctx, word uint64) gas.Addr {
	if a.mode == ModeDescriptor {
		return a.table.Resolve(c, Descriptor(word))
	}
	return gas.Addr(word)
}

// Read atomically loads the referenced object's address.
func (a *AtomicObject) Read(c *pgas.Ctx) gas.Addr {
	switch {
	case a.mode == ModeWide:
		lo, hi := a.w128.Read(c)
		return wideToAddr(lo, hi)
	case a.hasAB:
		return a.decode(c, a.w128.ReadLo64(c))
	default:
		return a.decode(c, a.w64.Read(c))
	}
}

// Write atomically stores a new object reference. On an ABA-enabled
// object the stamp is left unchanged (use WriteABA to bump it).
func (a *AtomicObject) Write(c *pgas.Ctx, addr gas.Addr) {
	switch {
	case a.mode == ModeWide:
		lo, hi := addrToWide(addr)
		a.w128.Write(c, lo, hi)
	case a.hasAB:
		a.w128.WriteLo64(c, a.encode(c, addr))
	default:
		a.w64.Write(c, a.encode(c, addr))
	}
}

// Exchange atomically swaps in a new reference and returns the old.
func (a *AtomicObject) Exchange(c *pgas.Ctx, addr gas.Addr) gas.Addr {
	switch {
	case a.mode == ModeWide:
		lo, hi := addrToWide(addr)
		oldLo, oldHi := a.w128.Exchange(c, lo, hi)
		return wideToAddr(oldLo, oldHi)
	case a.hasAB:
		return a.decode(c, a.w128.ExchangeLo64(c, a.encode(c, addr)))
	default:
		return a.decode(c, a.w64.Exchange(c, a.encode(c, addr)))
	}
}

// CompareAndSwap atomically replaces old with new, reporting success.
// Without ABA protection this is exposed to the ABA problem if old's
// address has been recycled — which is the point of the stamped
// variants.
func (a *AtomicObject) CompareAndSwap(c *pgas.Ctx, old, new gas.Addr) bool {
	switch {
	case a.mode == ModeWide:
		oLo, oHi := addrToWide(old)
		nLo, nHi := addrToWide(new)
		return a.w128.DCAS(c, oLo, oHi, nLo, nHi)
	case a.hasAB:
		return a.w128.CASLo64(c, a.encode(c, old), a.encode(c, new))
	default:
		return a.w64.CompareAndSwap(c, a.encode(c, old), a.encode(c, new))
	}
}

// ReadABA atomically loads the stamped reference. Full-width reads
// route as DCAS-class operations (remote execution when remote).
func (a *AtomicObject) ReadABA(c *pgas.Ctx) ABA {
	a.requireABA()
	lo, hi := a.w128.Read(c)
	return ABA{addr: a.decode(c, lo), count: hi}
}

// WriteABA atomically stores a new reference and bumps the stamp.
func (a *AtomicObject) WriteABA(c *pgas.Ctx, addr gas.Addr) {
	a.requireABA()
	a.w128.WriteLoBumpHi(c, a.encode(c, addr))
}

// ExchangeABA atomically swaps in a new reference, bumps the stamp,
// and returns the previous stamped value.
func (a *AtomicObject) ExchangeABA(c *pgas.Ctx, addr gas.Addr) ABA {
	a.requireABA()
	oldLo, oldHi := a.w128.ExchangeLoBumpHi(c, a.encode(c, addr))
	return ABA{addr: a.decode(c, oldLo), count: oldHi}
}

// CompareAndSwapABA succeeds only if both the reference and the stamp
// still match old, installing new with an incremented stamp. A stale
// read therefore fails even when old's address has been recycled.
func (a *AtomicObject) CompareAndSwapABA(c *pgas.Ctx, old ABA, new gas.Addr) bool {
	a.requireABA()
	return a.w128.DCAS(c,
		a.encode(c, old.addr), old.count,
		a.encode(c, new), old.count+1)
}

func (a *AtomicObject) requireABA() {
	if !a.hasAB {
		panic("atomics: *ABA operation on an AtomicObject created without Options.ABA")
	}
}

// addrToWide splits an Addr into the (vaddr, locality) words of a wide
// pointer; wideToAddr reverses it. Nil maps to (0, 0).
func addrToWide(a gas.Addr) (lo, hi uint64) {
	if a.IsNil() {
		return 0, 0
	}
	w := a.Wide()
	return w.VAddr, w.Locality
}

func wideToAddr(lo, hi uint64) gas.Addr {
	if lo == 0 {
		return gas.AddrNil
	}
	return gas.MakeAddr(int(hi), lo-1)
}
