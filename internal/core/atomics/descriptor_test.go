package atomics

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func TestDescriptorRegisterResolve(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		tbl := NewDescriptorTable(c)
		a := c.AllocOn(3, &node{v: 1})
		d := tbl.Register(c, a)
		if d == DescriptorNil {
			t.Fatal("register returned nil descriptor")
		}
		if got := tbl.Resolve(c, d); got != a {
			t.Fatalf("resolve = %v, want %v", got, a)
		}
		// Interning: same address, same descriptor.
		if d2 := tbl.Register(c, a); d2 != d {
			t.Fatalf("re-register gave %v, want %v", d2, d)
		}
		if tbl.Len() != 1 {
			t.Fatalf("table has %d entries", tbl.Len())
		}
		if got := tbl.Resolve(c, DescriptorNil); !got.IsNil() {
			t.Fatalf("nil descriptor resolved to %v", got)
		}
	})
}

func TestDescriptorModeKeepsNICAtomics(t *testing.T) {
	// The future-work claim: with descriptors, the word an AtomicObject
	// CASes stays 64-bit even when pointers cannot be compressed, so
	// NIC atomics survive — at the cost of resolution GETs.
	s := pgas.NewSystem(pgas.Config{
		Locales: 2, Backend: comm.BackendUGNI, ForceWidePointers: true,
	})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		tbl := NewDescriptorTable(c)
		a := New(c, 1, Options{Mode: ModeDescriptor, Table: tbl})
		n1 := c.AllocOn(1, &node{v: 1})
		n2 := c.Alloc(&node{v: 2})
		a.Write(c, n1)

		before := s.Counters().Snapshot()
		ok := a.CompareAndSwap(c, n1, n2)
		d := s.Counters().Snapshot().Sub(before)
		if !ok {
			t.Fatal("CAS failed")
		}
		if d.NICAMOs != 1 || d.DCASRemote != 0 {
			t.Fatalf("descriptor CAS routing: %v", d)
		}
		if got := a.Read(c); got != n2 {
			t.Fatalf("read back %v", got)
		}
	})
}

func TestDescriptorModeWithABA(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		tbl := NewDescriptorTable(c)
		a := New(c, 0, Options{Mode: ModeDescriptor, Table: tbl, ABA: true})
		n1 := c.Alloc(&node{v: 1})
		r := a.ReadABA(c)
		if !a.CompareAndSwapABA(c, r, n1) {
			t.Fatal("CASABA failed")
		}
		got := a.ReadABA(c)
		if got.Object() != n1 || got.Count() != 1 {
			t.Fatalf("got %v", got)
		}
	})
}

func TestDescriptorModeRequiresTable(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		defer func() {
			if recover() == nil {
				t.Fatal("ModeDescriptor without a table must panic")
			}
		}()
		New(c, 0, Options{Mode: ModeDescriptor})
	})
}

func TestDescriptorResolutionCost(t *testing.T) {
	// Resolving a descriptor whose shard is remote costs one GET; the
	// ablation bench quantifies this indirection.
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		tbl := NewDescriptorTable(c)
		a := c.Alloc(&node{})
		var d Descriptor
		for {
			d = tbl.Register(c, a)
			if tbl.shardOf(d) == 1 {
				break
			}
			// Shard depends on the descriptor value; register fresh
			// addresses until one lands on the remote shard.
			a = c.Alloc(&node{})
		}
		before := s.Counters().Snapshot()
		tbl.Resolve(c, d)
		diff := s.Counters().Snapshot().Sub(before)
		if diff.Gets != 1 {
			t.Fatalf("remote-shard resolve cost %d GETs, want 1", diff.Gets)
		}
	})
}

func TestGasLimitInSystemConstructor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("systems beyond 2^16 locales must be rejected")
		}
	}()
	pgas.NewSystem(pgas.Config{Locales: gas.MaxLocales + 1})
}
