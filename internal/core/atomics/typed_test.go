package atomics

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

type widget struct{ id int }

func TestTypedLoadStore(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		cell := NewTyped[widget](c, 1, Options{})
		if _, _, ok := cell.Load(c); ok {
			t.Fatal("fresh typed cell loaded something")
		}
		fresh, old := cell.StoreNew(c, &widget{id: 7})
		if !old.IsNil() {
			t.Fatalf("old = %v", old)
		}
		w, addr, ok := cell.Load(c)
		if !ok || w.id != 7 || addr != fresh {
			t.Fatalf("load = (%+v, %v, %v)", w, addr, ok)
		}
	})
}

func TestTypedStoreNewReturnsRetiree(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		cell := NewTyped[widget](c, 0, Options{})
		a1, _ := cell.StoreNew(c, &widget{id: 1})
		a2, old := cell.StoreNew(c, &widget{id: 2})
		if old != a1 {
			t.Fatalf("retiree = %v, want %v", old, a1)
		}
		if got := cell.Read(c); got != a2 {
			t.Fatalf("cell = %v", got)
		}
	})
}

func TestTypedSwapNew(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		cell := NewTyped[widget](c, 0, Options{})
		a1, _ := cell.StoreNew(c, &widget{id: 1})

		live := s.HeapStats().Live
		// Failed swap must free the unpublished allocation.
		if _, ok := cell.SwapNew(c, gas.AddrNil, &widget{id: 9}); ok {
			t.Fatal("swap with stale expectation succeeded")
		}
		if got := s.HeapStats().Live; got != live {
			t.Fatalf("failed swap leaked: live %d -> %d", live, got)
		}
		// Successful swap publishes.
		a2, ok := cell.SwapNew(c, a1, &widget{id: 2})
		if !ok || cell.Read(c) != a2 {
			t.Fatal("successful swap did not publish")
		}
		w, _, _ := cell.Load(c)
		if w.id != 2 {
			t.Fatalf("loaded %+v", w)
		}
	})
}

func TestTypedLoadAfterReclaim(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		cell := NewTyped[widget](c, 0, Options{})
		a, _ := cell.StoreNew(c, &widget{id: 1})
		c.Free(a)
		if _, _, ok := cell.Load(c); ok {
			t.Fatal("load of reclaimed object succeeded")
		}
	})
}

func TestTypedABAOpsAvailable(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		cell := NewTyped[widget](c, 0, Options{ABA: true})
		snap := cell.ReadABA(c)
		a := c.Alloc(&widget{id: 3})
		if !cell.CompareAndSwapABA(c, snap, a) {
			t.Fatal("CASABA through typed wrapper failed")
		}
		w, _, ok := cell.Load(c)
		if !ok || w.id != 3 {
			t.Fatalf("load = %+v %v", w, ok)
		}
	})
}
