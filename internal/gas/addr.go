// Package gas implements a software global address space: per-locale
// slab heaps addressed by compressed 64-bit global pointers.
//
// The paper's pointer compression exploits the fact that x86-64
// processors use only the lowest 48 bits of a virtual address, leaving
// 16 bits to encode the locale, so that a 128-bit Chapel wide pointer
// fits in the single 64-bit word NIC atomics can operate on. This
// package reproduces that layout exactly: an Addr is
//
//	bits 63..48  locale id   (16 bits → at most 2^16 locales)
//	bits 47..0   slot index  (48 bits, the "virtual address")
//
// with the all-zero value reserved as nil. WidePtr is the uncompressed
// 128-bit form used when the system exceeds MaxLocales and the
// implementation must fall back to double-word compare-and-swap.
//
// Because Go's own heap is garbage collected and addresses are not
// stable or encodable, the heaps here are explicit slab allocators with
// LIFO slot reuse. Reuse means a freed Addr can be handed out again —
// the ABA hazard in the paper is therefore real in this system, and the
// poison-on-free machinery makes use-after-free *detectable* rather
// than undefined.
package gas

import "fmt"

// Addr is a compressed global pointer: 16 bits of locale, 48 bits of
// slot index (offset by one so that Addr(0) is nil).
type Addr uint64

// AddrNil is the nil global pointer.
const AddrNil Addr = 0

const (
	// LocaleBits and IndexBits describe the compressed layout.
	LocaleBits = 16
	IndexBits  = 48

	// MaxLocales is the largest locale count representable in a
	// compressed pointer; beyond it, AtomicObject must fall back to
	// wide pointers and DCAS, as in the paper.
	MaxLocales = 1 << LocaleBits

	// MaxIndex is the largest encodable slot index.
	MaxIndex = (uint64(1) << IndexBits) - 1

	indexMask = (uint64(1) << IndexBits) - 1
)

// MakeAddr builds a compressed pointer from a locale id and slot index.
// It panics if either component is out of range; the +1 offset on the
// index keeps slot 0 of locale 0 distinct from nil.
func MakeAddr(locale int, index uint64) Addr {
	if locale < 0 || locale >= MaxLocales {
		panic(fmt.Sprintf("gas: locale %d out of compressed range [0, %d)", locale, MaxLocales))
	}
	if index+1 > MaxIndex {
		panic(fmt.Sprintf("gas: slot index %d exceeds 48-bit range", index))
	}
	return Addr(uint64(locale)<<IndexBits | (index + 1))
}

// Locale returns the locale id encoded in the pointer. Calling it on
// AddrNil panics: nil has no owner.
func (a Addr) Locale() int {
	if a == AddrNil {
		panic("gas: Locale() on nil Addr")
	}
	return int(uint64(a) >> IndexBits)
}

// Index returns the slot index encoded in the pointer.
func (a Addr) Index() uint64 {
	if a == AddrNil {
		panic("gas: Index() on nil Addr")
	}
	return uint64(a)&indexMask - 1
}

// IsNil reports whether the pointer is nil.
func (a Addr) IsNil() bool { return a == AddrNil }

// String renders the pointer as L<locale>:<index>, or "nil".
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("L%d:%d", a.Locale(), a.Index())
}

// WidePtr is the uncompressed 128-bit wide pointer: a full 64-bit
// "virtual address" word plus a full 64-bit locality word. It is the
// representation Chapel uses natively for class instances, and the one
// AtomicObject falls back to (with DCAS) when the system has more than
// MaxLocales locales.
type WidePtr struct {
	// Locality holds the owning locale id in its low bits. A real
	// Chapel wide pointer also carries sublocale information here.
	Locality uint64
	// VAddr holds the slot index + 1 (0 = nil), the analogue of the
	// virtual address word.
	VAddr uint64
}

// WideNil is the nil wide pointer.
var WideNil = WidePtr{}

// Wide expands a compressed pointer into its 128-bit form.
func (a Addr) Wide() WidePtr {
	if a.IsNil() {
		return WideNil
	}
	return WidePtr{Locality: uint64(a.Locale()), VAddr: uint64(a) & indexMask}
}

// MakeWide builds a wide pointer directly from locale and index; unlike
// MakeAddr it accepts locale ids beyond MaxLocales.
func MakeWide(locale int, index uint64) WidePtr {
	if locale < 0 {
		panic("gas: negative locale")
	}
	return WidePtr{Locality: uint64(locale), VAddr: index + 1}
}

// IsNil reports whether the wide pointer is nil.
func (w WidePtr) IsNil() bool { return w.VAddr == 0 }

// Locale returns the owning locale id.
func (w WidePtr) Locale() int {
	if w.IsNil() {
		panic("gas: Locale() on nil WidePtr")
	}
	return int(w.Locality)
}

// Index returns the slot index.
func (w WidePtr) Index() uint64 {
	if w.IsNil() {
		panic("gas: Index() on nil WidePtr")
	}
	return w.VAddr - 1
}

// Compress packs the wide pointer into an Addr. It panics if the
// locale does not fit in 16 bits — the caller must have checked the
// system size, which is exactly the ≤2^16-locales precondition the
// paper places on pointer compression.
func (w WidePtr) Compress() Addr {
	if w.IsNil() {
		return AddrNil
	}
	return MakeAddr(w.Locale(), w.Index())
}

// String renders the wide pointer.
func (w WidePtr) String() string {
	if w.IsNil() {
		return "wide-nil"
	}
	return fmt.Sprintf("W[L%d:%d]", w.Locale(), w.Index())
}
