package gas

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Heap is one locale's slab allocator. Objects (arbitrary Go values)
// live in slots addressed by their index; Alloc hands out slots from a
// LIFO free list so that a freed address is reused promptly — the same
// allocator behaviour that makes the ABA problem real on a free-list
// based system allocator.
//
// Freed slots are poisoned: the slot remembers that it is free, and
// Load of a freed slot reports a use-after-free instead of silently
// returning stale or recycled data. This turns the undefined behaviour
// the paper's reclamation machinery exists to prevent into a checkable
// predicate that the test suite asserts on.
//
// The Heap itself is an allocator substrate, not one of the paper's
// non-blocking constructs; it uses an internal mutex, which stands in
// for the (also locking) system allocator underneath Chapel's `new`.
type Heap struct {
	locale int

	mu    sync.Mutex
	slots []slot
	free  []uint64 // LIFO stack of free slot indices

	live      atomic.Int64 // currently allocated slots
	allocs    atomic.Int64 // total allocations
	frees     atomic.Int64 // total frees
	uafLoads  atomic.Int64 // detected use-after-free loads
	uafFrees  atomic.Int64 // detected double frees
	highWater atomic.Int64 // maximum simultaneous live slots
}

type slot struct {
	obj   any
	freed bool
}

// NewHeap creates the heap for the given locale id.
func NewHeap(locale int) *Heap {
	return &Heap{locale: locale}
}

// Locale returns the id of the locale this heap belongs to.
func (h *Heap) Locale() int { return h.locale }

// Alloc stores obj in a slot and returns its global address. Freed
// slots are reused LIFO, so the returned Addr may equal one freed a
// moment ago — deliberately so; see the package comment.
func (h *Heap) Alloc(obj any) Addr {
	h.mu.Lock()
	var idx uint64
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
		h.slots[idx] = slot{obj: obj}
	} else {
		idx = uint64(len(h.slots))
		h.slots = append(h.slots, slot{obj: obj})
	}
	h.mu.Unlock()

	h.allocs.Add(1)
	live := h.live.Add(1)
	for {
		hw := h.highWater.Load()
		if live <= hw || h.highWater.CompareAndSwap(hw, live) {
			break
		}
	}
	return MakeAddr(h.locale, idx)
}

// Load returns the object at addr. ok is false — and the use-after-free
// counter is incremented — if the slot has been freed and not yet
// reallocated. Load panics if addr belongs to another locale: locality
// routing is the caller's job (package pgas performs GETs for remote
// addresses).
func (h *Heap) Load(addr Addr) (obj any, ok bool) {
	h.checkOwner(addr)
	idx := addr.Index()
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx >= uint64(len(h.slots)) {
		h.uafLoads.Add(1)
		return nil, false
	}
	s := h.slots[idx]
	if s.freed {
		h.uafLoads.Add(1)
		return nil, false
	}
	return s.obj, true
}

// Store overwrites the object at addr in place, reporting false if the
// slot has been freed (a detected use-after-free write).
func (h *Heap) Store(addr Addr, obj any) bool {
	h.checkOwner(addr)
	idx := addr.Index()
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx >= uint64(len(h.slots)) || h.slots[idx].freed {
		h.uafLoads.Add(1)
		return false
	}
	h.slots[idx].obj = obj
	return true
}

// Free poisons the slot at addr and pushes it onto the free list. A
// double free is detected, counted, and reported by the return value
// rather than corrupting the free list.
func (h *Heap) Free(addr Addr) bool {
	h.checkOwner(addr)
	idx := addr.Index()
	h.mu.Lock()
	if idx >= uint64(len(h.slots)) || h.slots[idx].freed {
		h.mu.Unlock()
		h.uafFrees.Add(1)
		return false
	}
	h.slots[idx] = slot{freed: true}
	h.free = append(h.free, idx)
	h.mu.Unlock()

	h.frees.Add(1)
	h.live.Add(-1)
	return true
}

// FreeBulk frees every address in addrs, returning how many were live.
// It is the locale-side half of the EpochManager's scatter-list bulk
// deletion: one call per locale instead of one RPC per object.
func (h *Heap) FreeBulk(addrs []Addr) int {
	n := 0
	for _, a := range addrs {
		if a.IsNil() {
			continue
		}
		if h.Free(a) {
			n++
		}
	}
	return n
}

func (h *Heap) checkOwner(addr Addr) {
	if addr.IsNil() {
		panic("gas: nil Addr dereference")
	}
	if addr.Locale() != h.locale {
		panic(fmt.Sprintf("gas: addr %v accessed via heap of locale %d", addr, h.locale))
	}
}

// Stats is a snapshot of a heap's allocation counters.
type Stats struct {
	Live      int64 // currently allocated slots
	Allocs    int64 // total allocations
	Frees     int64 // total frees
	UAFLoads  int64 // detected use-after-free loads
	UAFFrees  int64 // detected double frees
	HighWater int64 // maximum simultaneous live slots
}

// Stats returns a point-in-time snapshot of the heap counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Live:      h.live.Load(),
		Allocs:    h.allocs.Load(),
		Frees:     h.frees.Load(),
		UAFLoads:  h.uafLoads.Load(),
		UAFFrees:  h.uafFrees.Load(),
		HighWater: h.highWater.Load(),
	}
}

// Add accumulates two stats snapshots, for whole-system totals.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Live:      s.Live + o.Live,
		Allocs:    s.Allocs + o.Allocs,
		Frees:     s.Frees + o.Frees,
		UAFLoads:  s.UAFLoads + o.UAFLoads,
		UAFFrees:  s.UAFFrees + o.UAFFrees,
		HighWater: s.HighWater + o.HighWater,
	}
}

// String formats the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("live=%d allocs=%d frees=%d uafLoads=%d uafFrees=%d highWater=%d",
		s.Live, s.Allocs, s.Frees, s.UAFLoads, s.UAFFrees, s.HighWater)
}
