package gas

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Heap is one locale's slab allocator. Objects (arbitrary Go values)
// live in slots addressed by their index; Alloc hands out slots from a
// LIFO free list so that a freed address is reused promptly — the same
// allocator behaviour that makes the ABA problem real on a free-list
// based system allocator.
//
// Freed slots are poisoned: the slot remembers that it is free, and
// Load of a freed slot reports a use-after-free instead of silently
// returning stale or recycled data. This turns the undefined behaviour
// the paper's reclamation machinery exists to prevent into a checkable
// predicate that the test suite asserts on.
//
// Storage is chunked: slots live in fixed-size chunks reachable
// through an immutable directory slice that Alloc republishes
// atomically when it grows. A slot holds a single atomic pointer to a
// boxed object — nil is the poison state — so Load and Store are
// lock-free (Store is a CAS loop so it can never resurrect a slot a
// concurrent Free just poisoned). The allocator's mutex is confined to
// Alloc/Free free-list bookkeeping, standing in for the (also locking)
// system allocator underneath Chapel's `new`; the read path every
// structure Deref rides never touches it.
type Heap struct {
	locale int

	dir atomic.Pointer[[]*chunk] // immutable directory, grown copy-on-write

	mu   sync.Mutex
	next uint64   // bump index for never-used slots
	free []uint64 // LIFO stack of free slot indices

	live      atomic.Int64 // currently allocated slots
	allocs    atomic.Int64 // total allocations
	frees     atomic.Int64 // total frees
	uafLoads  atomic.Int64 // detected use-after-free loads
	uafStores atomic.Int64 // detected use-after-free stores
	uafFrees  atomic.Int64 // detected double frees
	highWater atomic.Int64 // maximum simultaneous live slots
}

const (
	chunkBits = 12 // 4096 slots per chunk
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// chunk is one fixed block of slots. A slot's pointer is nil while the
// slot is free (or never yet allocated) and points at the boxed object
// while it is live; boxes are immutable once published (Store installs
// a fresh box rather than mutating the old one), so a reader that won
// the race to load a box may safely dereference it.
type chunk [chunkSize]atomic.Pointer[any]

// NewHeap creates the heap for the given locale id.
func NewHeap(locale int) *Heap {
	return &Heap{locale: locale}
}

// Locale returns the id of the locale this heap belongs to.
func (h *Heap) Locale() int { return h.locale }

// slot returns the cell for idx, or nil when idx lies beyond the
// published directory (an address this heap never handed out).
func (h *Heap) slot(idx uint64) *atomic.Pointer[any] {
	dirp := h.dir.Load()
	if dirp == nil {
		return nil
	}
	dir := *dirp
	ci := idx >> chunkBits
	if ci >= uint64(len(dir)) {
		return nil
	}
	return &dir[ci][idx&chunkMask]
}

// grow ensures the directory covers idx. Caller holds h.mu; the new
// directory is a fresh slice so concurrent readers keep a consistent
// view of whichever version they loaded.
func (h *Heap) grow(idx uint64) {
	var dir []*chunk
	if dirp := h.dir.Load(); dirp != nil {
		dir = *dirp
	}
	need := int(idx>>chunkBits) + 1
	if need <= len(dir) {
		return
	}
	next := make([]*chunk, need)
	copy(next, dir)
	for i := len(dir); i < need; i++ {
		next[i] = new(chunk)
	}
	h.dir.Store(&next)
}

// Alloc stores obj in a slot and returns its global address. Freed
// slots are reused LIFO, so the returned Addr may equal one freed a
// moment ago — deliberately so; see the package comment.
func (h *Heap) Alloc(obj any) Addr {
	box := new(any)
	*box = obj

	h.mu.Lock()
	var idx uint64
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		idx = h.next
		h.next++
		h.grow(idx)
	}
	h.mu.Unlock()

	// idx is privately owned between the free-list pop (or bump) and
	// this publish: a Load racing the reallocation sees either poison
	// or the new object, exactly as under the old all-mutex scheme.
	h.slot(idx).Store(box)

	h.allocs.Add(1)
	live := h.live.Add(1)
	for {
		hw := h.highWater.Load()
		if live <= hw || h.highWater.CompareAndSwap(hw, live) {
			break
		}
	}
	return MakeAddr(h.locale, idx)
}

// Load returns the object at addr. ok is false — and the use-after-free
// counter is incremented — if the slot has been freed and not yet
// reallocated. Load panics if addr belongs to another locale: locality
// routing is the caller's job (package pgas performs GETs for remote
// addresses). Load is lock-free: one directory load plus one slot load.
func (h *Heap) Load(addr Addr) (obj any, ok bool) {
	h.checkOwner(addr)
	s := h.slot(addr.Index())
	if s == nil {
		h.uafLoads.Add(1)
		return nil, false
	}
	box := s.Load()
	if box == nil {
		h.uafLoads.Add(1)
		return nil, false
	}
	return *box, true
}

// Store overwrites the object at addr, reporting false if the slot has
// been freed (a detected use-after-free write, counted in UAFStores).
// Store is lock-free: it installs a freshly boxed object with a CAS so
// that racing a concurrent Free can only lose — a poisoned slot is
// never resurrected.
func (h *Heap) Store(addr Addr, obj any) bool {
	h.checkOwner(addr)
	s := h.slot(addr.Index())
	if s == nil {
		h.uafStores.Add(1)
		return false
	}
	box := new(any)
	*box = obj
	for {
		old := s.Load()
		if old == nil {
			h.uafStores.Add(1)
			return false
		}
		if s.CompareAndSwap(old, box) {
			return true
		}
	}
}

// Free poisons the slot at addr and pushes it onto the free list. A
// double free is detected, counted, and reported by the return value
// rather than corrupting the free list. The poison swap is atomic, so
// of two racing frees exactly one wins; only the winner touches the
// free list.
func (h *Heap) Free(addr Addr) bool {
	h.checkOwner(addr)
	idx := addr.Index()
	s := h.slot(idx)
	if s == nil || s.Swap(nil) == nil {
		h.uafFrees.Add(1)
		return false
	}
	// Count the death before the free-list push makes the slot
	// reusable: once a racing Alloc can pop idx, live must already
	// reflect the free, or its high-water update reads a peak that
	// never existed.
	h.frees.Add(1)
	h.live.Add(-1)
	h.mu.Lock()
	h.free = append(h.free, idx)
	h.mu.Unlock()
	return true
}

// FreeBulk frees every address in addrs, returning how many were live.
// It is the locale-side half of the EpochManager's scatter-list bulk
// deletion: one call per locale instead of one RPC per object — and,
// mirroring that batching, one free-list append under one lock
// acquisition for the whole batch.
func (h *Heap) FreeBulk(addrs []Addr) int {
	freed := make([]uint64, 0, len(addrs))
	for _, a := range addrs {
		if a.IsNil() {
			continue
		}
		h.checkOwner(a)
		idx := a.Index()
		if s := h.slot(idx); s == nil || s.Swap(nil) == nil {
			h.uafFrees.Add(1)
			continue
		}
		freed = append(freed, idx)
	}
	if len(freed) == 0 {
		return 0
	}
	// As in Free: the batch is counted dead before any of its slots
	// become allocatable, so live never transiently overshoots by the
	// batch size under a racing Alloc.
	h.frees.Add(int64(len(freed)))
	h.live.Add(-int64(len(freed)))
	h.mu.Lock()
	h.free = append(h.free, freed...)
	h.mu.Unlock()
	return len(freed)
}

func (h *Heap) checkOwner(addr Addr) {
	if addr.IsNil() {
		panic("gas: nil Addr dereference")
	}
	if addr.Locale() != h.locale {
		panic(fmt.Sprintf("gas: addr %v accessed via heap of locale %d", addr, h.locale))
	}
}

// Stats is a snapshot of a heap's allocation counters.
type Stats struct {
	Live      int64 // currently allocated slots
	Allocs    int64 // total allocations
	Frees     int64 // total frees
	UAFLoads  int64 // detected use-after-free loads
	UAFStores int64 // detected use-after-free stores
	UAFFrees  int64 // detected double frees
	HighWater int64 // maximum simultaneous live slots
}

// Stats returns a point-in-time snapshot of the heap counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Live:      h.live.Load(),
		Allocs:    h.allocs.Load(),
		Frees:     h.frees.Load(),
		UAFLoads:  h.uafLoads.Load(),
		UAFStores: h.uafStores.Load(),
		UAFFrees:  h.uafFrees.Load(),
		HighWater: h.highWater.Load(),
	}
}

// Add accumulates two stats snapshots, for whole-system totals.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Live:      s.Live + o.Live,
		Allocs:    s.Allocs + o.Allocs,
		Frees:     s.Frees + o.Frees,
		UAFLoads:  s.UAFLoads + o.UAFLoads,
		UAFStores: s.UAFStores + o.UAFStores,
		UAFFrees:  s.UAFFrees + o.UAFFrees,
		HighWater: s.HighWater + o.HighWater,
	}
}

// String formats the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("live=%d allocs=%d frees=%d uafLoads=%d uafStores=%d uafFrees=%d highWater=%d",
		s.Live, s.Allocs, s.Frees, s.UAFLoads, s.UAFStores, s.UAFFrees, s.HighWater)
}
