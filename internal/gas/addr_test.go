package gas

import (
	"testing"
	"testing/quick"
)

func TestAddrNil(t *testing.T) {
	if !AddrNil.IsNil() {
		t.Fatal("AddrNil must be nil")
	}
	if AddrNil.String() != "nil" {
		t.Fatalf("AddrNil.String() = %q", AddrNil.String())
	}
}

func TestMakeAddrRoundTrip(t *testing.T) {
	cases := []struct {
		locale int
		index  uint64
	}{
		{0, 0},
		{0, 1},
		{1, 0},
		{65535, 0},
		{65535, MaxIndex - 2},
		{42, 1 << 40},
	}
	for _, tc := range cases {
		a := MakeAddr(tc.locale, tc.index)
		if a.IsNil() {
			t.Fatalf("MakeAddr(%d,%d) is nil", tc.locale, tc.index)
		}
		if got := a.Locale(); got != tc.locale {
			t.Errorf("MakeAddr(%d,%d).Locale() = %d", tc.locale, tc.index, got)
		}
		if got := a.Index(); got != tc.index {
			t.Errorf("MakeAddr(%d,%d).Index() = %d", tc.locale, tc.index, got)
		}
	}
}

func TestMakeAddrPanics(t *testing.T) {
	mustPanic(t, "negative locale", func() { MakeAddr(-1, 0) })
	mustPanic(t, "locale too large", func() { MakeAddr(MaxLocales, 0) })
	mustPanic(t, "index too large", func() { MakeAddr(0, MaxIndex) })
	mustPanic(t, "Locale on nil", func() { AddrNil.Locale() })
	mustPanic(t, "Index on nil", func() { AddrNil.Index() })
}

func TestAddrZeroSlotZeroLocaleDistinctFromNil(t *testing.T) {
	a := MakeAddr(0, 0)
	if a.IsNil() {
		t.Fatal("locale 0 slot 0 must not collide with nil")
	}
}

// Property: compression round-trips for every representable pair.
func TestAddrRoundTripProperty(t *testing.T) {
	f := func(locRaw uint16, idxRaw uint64) bool {
		loc := int(locRaw)
		idx := idxRaw % (MaxIndex - 1)
		a := MakeAddr(loc, idx)
		return a.Locale() == loc && a.Index() == idx && !a.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct (locale, index) pairs produce distinct addresses.
func TestAddrInjectivityProperty(t *testing.T) {
	f := func(l1, l2 uint16, i1, i2 uint32) bool {
		a1 := MakeAddr(int(l1), uint64(i1))
		a2 := MakeAddr(int(l2), uint64(i2))
		same := l1 == l2 && i1 == i2
		return (a1 == a2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWidePtrRoundTrip(t *testing.T) {
	a := MakeAddr(7, 1234)
	w := a.Wide()
	if w.IsNil() {
		t.Fatal("wide of non-nil is nil")
	}
	if w.Locale() != 7 || w.Index() != 1234 {
		t.Fatalf("wide = %v", w)
	}
	if got := w.Compress(); got != a {
		t.Fatalf("compress(wide(%v)) = %v", a, got)
	}
}

func TestWideNil(t *testing.T) {
	if !WideNil.IsNil() {
		t.Fatal("WideNil must be nil")
	}
	if got := AddrNil.Wide(); got != WideNil {
		t.Fatalf("nil.Wide() = %v", got)
	}
	if got := WideNil.Compress(); got != AddrNil {
		t.Fatalf("WideNil.Compress() = %v", got)
	}
	mustPanic(t, "Locale on wide nil", func() { WideNil.Locale() })
}

func TestMakeWideBeyondCompressedRange(t *testing.T) {
	// Locales beyond 2^16 are representable wide, not compressed.
	w := MakeWide(1<<20, 5)
	if w.Locale() != 1<<20 || w.Index() != 5 {
		t.Fatalf("w = %v", w)
	}
	mustPanic(t, "compressing an oversized locale", func() { w.Compress() })
}

// Property: Wide/Compress round-trips through the 128-bit form.
func TestWideRoundTripProperty(t *testing.T) {
	f := func(locRaw uint16, idxRaw uint32) bool {
		a := MakeAddr(int(locRaw), uint64(idxRaw))
		return a.Wide().Compress() == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	a := MakeAddr(3, 99)
	if got := a.String(); got != "L3:99" {
		t.Fatalf("String() = %q", got)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
