package gas

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestHeapAllocLoad(t *testing.T) {
	h := NewHeap(2)
	type obj struct{ v int }
	a := h.Alloc(&obj{v: 41})
	if a.Locale() != 2 {
		t.Fatalf("alloc locale = %d", a.Locale())
	}
	got, ok := h.Load(a)
	if !ok {
		t.Fatal("load of live object failed")
	}
	if got.(*obj).v != 41 {
		t.Fatalf("loaded %v", got)
	}
}

func TestHeapFreePoisons(t *testing.T) {
	h := NewHeap(0)
	a := h.Alloc("x")
	if !h.Free(a) {
		t.Fatal("first free failed")
	}
	if _, ok := h.Load(a); ok {
		t.Fatal("load after free must fail (poison)")
	}
	if h.Free(a) {
		t.Fatal("double free must be detected")
	}
	st := h.Stats()
	if st.UAFLoads != 1 || st.UAFFrees != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHeapLIFOReuse(t *testing.T) {
	h := NewHeap(0)
	a := h.Alloc("a")
	h.Free(a)
	b := h.Alloc("b")
	if a != b {
		t.Fatalf("expected LIFO slot reuse: %v vs %v — the ABA hazard depends on it", a, b)
	}
	got, ok := h.Load(b)
	if !ok || got.(string) != "b" {
		t.Fatalf("reused slot holds %v ok=%v", got, ok)
	}
}

func TestHeapStoreInPlace(t *testing.T) {
	h := NewHeap(0)
	a := h.Alloc(1)
	if !h.Store(a, 2) {
		t.Fatal("store to live slot failed")
	}
	got, _ := h.Load(a)
	if got.(int) != 2 {
		t.Fatalf("got %v", got)
	}
	h.Free(a)
	if h.Store(a, 3) {
		t.Fatal("store to freed slot must be detected")
	}
	st := h.Stats()
	if st.UAFStores != 1 {
		t.Fatalf("UAFStores = %d, want 1", st.UAFStores)
	}
	if st.UAFLoads != 0 {
		t.Fatalf("a poisoned store must not count as a poisoned load: %+v", st)
	}
	if got := st.String(); !strings.Contains(got, "uafStores=1") {
		t.Fatalf("Stats.String() = %q missing uafStores", got)
	}
	// A store to an address beyond anything ever allocated is the same
	// class of bug.
	if h.Store(MakeAddr(0, 1<<20), 4) {
		t.Fatal("store to never-allocated slot must be detected")
	}
	if st = h.Stats(); st.UAFStores != 2 {
		t.Fatalf("UAFStores = %d, want 2", st.UAFStores)
	}
}

func TestHeapWrongLocalePanics(t *testing.T) {
	h := NewHeap(1)
	other := MakeAddr(0, 0)
	mustPanic(t, "foreign load", func() { h.Load(other) })
	mustPanic(t, "foreign free", func() { h.Free(other) })
	mustPanic(t, "nil load", func() { h.Load(AddrNil) })
}

func TestHeapFreeBulk(t *testing.T) {
	h := NewHeap(0)
	addrs := make([]Addr, 10)
	for i := range addrs {
		addrs[i] = h.Alloc(i)
	}
	// Include a nil and a duplicate: both must be tolerated.
	batch := append([]Addr{AddrNil}, addrs...)
	batch = append(batch, addrs[0])
	if n := h.FreeBulk(batch); n != 10 {
		t.Fatalf("FreeBulk freed %d, want 10", n)
	}
	if live := h.Stats().Live; live != 0 {
		t.Fatalf("live = %d after bulk free", live)
	}
}

func TestHeapStats(t *testing.T) {
	h := NewHeap(0)
	var addrs []Addr
	for i := 0; i < 5; i++ {
		addrs = append(addrs, h.Alloc(i))
	}
	st := h.Stats()
	if st.Live != 5 || st.Allocs != 5 || st.HighWater != 5 {
		t.Fatalf("stats = %+v", st)
	}
	for _, a := range addrs[:3] {
		h.Free(a)
	}
	st = h.Stats()
	if st.Live != 2 || st.Frees != 3 || st.HighWater != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHeapConcurrentAllocFree(t *testing.T) {
	h := NewHeap(0)
	const goroutines = 8
	const per = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mine []Addr
			for i := 0; i < per; i++ {
				mine = append(mine, h.Alloc(g*per+i))
			}
			for _, a := range mine {
				v, ok := h.Load(a)
				if !ok {
					t.Errorf("lost object at %v", a)
					return
				}
				_ = v
				if !h.Free(a) {
					t.Errorf("free failed at %v", a)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := h.Stats()
	if st.Live != 0 {
		t.Fatalf("leaked %d slots", st.Live)
	}
	if st.Allocs != goroutines*per || st.Frees != goroutines*per {
		t.Fatalf("stats = %+v", st)
	}
	if st.UAFLoads != 0 || st.UAFFrees != 0 {
		t.Fatalf("unexpected UAF: %+v", st)
	}
}

// TestHeapLockFreeReadersUnderChurn races lock-free Loads and Stores
// against an alloc/free churn on the same heap: readers must only ever
// observe a value some Store published or a poison verdict, never a
// torn or stale object, and the bookkeeping must balance afterwards.
// Run under -race this is the regression guard for the chunked
// atomic-slot storage.
func TestHeapLockFreeReadersUnderChurn(t *testing.T) {
	h := NewHeap(0)
	const stable = 64
	addrs := make([]Addr, stable)
	for i := range addrs {
		addrs[i] = h.Alloc(int64(0))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: Store monotonically tagged values into the stable set.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if !h.Store(addrs[i%stable], int64(i)) {
					t.Error("store to live slot failed")
					return
				}
			}
		}(w)
	}
	// Churner: allocate and free around the stable set, forcing
	// directory growth and free-list reuse while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var mine []Addr
		for i := 0; ; i++ {
			select {
			case <-stop:
				for _, a := range mine {
					h.Free(a)
				}
				return
			default:
			}
			mine = append(mine, h.Alloc(i))
			if len(mine) > 2*chunkSize {
				for _, a := range mine {
					h.Free(a)
				}
				mine = mine[:0]
			}
		}
	}()
	// Readers: every load of a stable address must succeed and carry a
	// value of the type the writers publish. They run to a fixed count;
	// writers and the churner wind down once the readers are done.
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200_000; i++ {
				v, ok := h.Load(addrs[i%stable])
				if !ok {
					t.Error("live slot reported poisoned")
					return
				}
				if _, isInt := v.(int64); !isInt {
					t.Errorf("torn read: %T", v)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	wg.Wait()
	st := h.Stats()
	if st.UAFLoads != 0 || st.UAFStores != 0 || st.UAFFrees != 0 {
		t.Fatalf("unexpected UAF during churn: %+v", st)
	}
	if st.Live != st.Allocs-st.Frees {
		t.Fatalf("bookkeeping imbalance: %+v", st)
	}
}

// Property: any interleaved alloc/free sequence keeps Live ==
// Allocs - Frees and never corrupts slot contents.
func TestHeapInvariantProperty(t *testing.T) {
	f := func(ops []bool) bool {
		h := NewHeap(0)
		var live []Addr
		next := 0
		for _, isAlloc := range ops {
			if isAlloc || len(live) == 0 {
				live = append(live, h.Alloc(next))
				next++
			} else {
				a := live[len(live)-1]
				live = live[:len(live)-1]
				if !h.Free(a) {
					return false
				}
			}
		}
		st := h.Stats()
		if st.Live != int64(len(live)) || st.Live != st.Allocs-st.Frees {
			return false
		}
		for _, a := range live {
			if _, ok := h.Load(a); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Live: 1, Allocs: 2, Frees: 3, UAFLoads: 4, UAFStores: 7, UAFFrees: 5, HighWater: 6}
	b := Stats{Live: 10, Allocs: 20, Frees: 30, UAFLoads: 40, UAFStores: 70, UAFFrees: 50, HighWater: 60}
	got := a.Add(b)
	want := Stats{Live: 11, Allocs: 22, Frees: 33, UAFLoads: 44, UAFStores: 77, UAFFrees: 55, HighWater: 66}
	if got != want {
		t.Fatalf("Add = %+v", got)
	}
}
