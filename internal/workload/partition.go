package workload

import (
	"sync"
	"time"

	"gopgas/internal/pgas"
)

// partitionPlan applies a spec's scheduled partitions to the running
// system. Boundary severs and phase heals land between phases (exact,
// replayable); mid-phase severs land from the phase monitor at a racing
// op count; wall-clock heals (HealAfterMS) fire from timers. The plan
// also tolerates out-of-band heals — the live /api/fault endpoint can
// repair a pair before the schedule does — by treating "not severed" as
// already healed rather than an error.
type partitionPlan struct {
	sys   *pgas.System
	avail *AvailabilityReport

	mu   sync.Mutex
	runs []*partitionRun
}

// partitionRun is one PartitionSpec's lifecycle state.
type partitionRun struct {
	spec      PartitionSpec
	severed   bool
	healed    bool
	severedAt time.Time
	timer     *time.Timer
}

func newPartitionPlan(sys *pgas.System, specs []PartitionSpec, avail *AvailabilityReport) *partitionPlan {
	if len(specs) == 0 {
		return nil
	}
	pp := &partitionPlan{sys: sys, avail: avail}
	for _, ps := range specs {
		pp.runs = append(pp.runs, &partitionRun{spec: ps})
	}
	return pp
}

// phaseStart lands every boundary event scheduled for phase pi: heals
// first (a pair healing and re-severing at the same boundary would
// otherwise sever-then-heal and lose the second sever), then severs.
func (pp *partitionPlan) phaseStart(pi int) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for _, r := range pp.runs {
		if r.severed && !r.healed && r.spec.HealPhase == pi {
			pp.heal(r)
		}
	}
	for _, r := range pp.runs {
		if !r.severed && r.spec.Phase == pi && r.spec.AtOps == 0 {
			pp.sever(r)
		}
	}
}

// hasMidSevers reports whether phase pi schedules any mid-phase sever —
// the monitor-task trigger.
func (pp *partitionPlan) hasMidSevers(pi int) bool {
	if pp == nil {
		return false
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for _, r := range pp.runs {
		if r.spec.Phase == pi && r.spec.AtOps > 0 {
			return true
		}
	}
	return false
}

// applyMidSevers lands every mid-phase sever of phase pi whose op mark
// the phase has reached; it returns true when none remain pending.
func (pp *partitionPlan) applyMidSevers(pi int, issued int64) bool {
	if pp == nil {
		return true
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	done := true
	for _, r := range pp.runs {
		if r.spec.Phase != pi || r.spec.AtOps == 0 || r.severed {
			continue
		}
		if issued >= r.spec.AtOps {
			pp.sever(r)
		} else {
			done = false
		}
	}
	return done
}

// sever applies one run's partition (caller holds pp.mu). Validate
// bounds the pairs, so a sever can only fail if the pair is already
// severed by an overlapping run — counted applied either way, since the
// pair is down.
func (pp *partitionPlan) sever(r *partitionRun) {
	if err := pp.sys.Sever(r.spec.A, r.spec.B); err != nil {
		panic(err) // validated pairs cannot fail to sever
	}
	r.severed = true
	r.severedAt = time.Now()
	pp.avail.Partitions++
	if r.spec.HealAfterMS > 0 {
		r.timer = time.AfterFunc(time.Duration(r.spec.HealAfterMS*float64(time.Millisecond)), func() {
			pp.mu.Lock()
			defer pp.mu.Unlock()
			if !r.healed {
				pp.heal(r)
			}
		})
	}
}

// heal repairs one run's pair (caller holds pp.mu). Time-to-heal and
// the heal count only book when this plan's heal actually repaired the
// link; a pair someone already healed out-of-band just settles.
func (pp *partitionPlan) heal(r *partitionRun) {
	r.healed = true
	if err := pp.sys.Heal(r.spec.A, r.spec.B); err != nil {
		return
	}
	pp.avail.Heals++
	pp.avail.TimeToHealNS += time.Since(r.severedAt).Nanoseconds()
}

// stop cancels pending wall-clock heal timers and waits out any heal
// mid-fire, leaving still-severed pairs severed: the run's final
// DrainParking settles whatever parked behind them as expirations.
func (pp *partitionPlan) stop() {
	if pp == nil {
		return
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for _, r := range pp.runs {
		if r.timer != nil {
			r.timer.Stop()
		}
	}
}
