package workload

import (
	"fmt"
	"time"

	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
	"gopgas/internal/structures/queue"
	"gopgas/internal/structures/rebalance"
	"gopgas/internal/structures/skiplist"
	"gopgas/internal/structures/stack"
)

// Driver binds the abstract scenario vocabulary to one structure. A
// driver is created once per run; Setup/Destroy bracket each churn
// round. Apply and ApplyBulk are called concurrently from many tasks
// and must only touch the structure through its own concurrent API.
type Driver interface {
	Structure() Structure
	// Supports reports whether the structure implements the kind;
	// Spec.Validate rejects mixes that weight unsupported kinds.
	Supports(k OpKind) bool
	// Setup creates the structure on the system (called on locale 0).
	Setup(c *pgas.Ctx, em epoch.EpochManager, spec Spec)
	// Apply executes one keyed op under the task's token.
	Apply(c *pgas.Ctx, tok *epoch.Token, kind OpKind, key uint64)
	// ApplyBulk routes a batch of keys toward `owner` (structures with
	// their own routing, like the hashmap, may ignore it).
	ApplyBulk(c *pgas.Ctx, owner int, keys []uint64)
	// Destroy tears the structure down (quiescent; locale 0).
	Destroy(c *pgas.Ctx)
}

// Ticker is an optional Driver extension: a periodic control loop the
// engine runs beside each round's workers, on its own task context.
// TickInterval returning 0 disables the loop for this run. Tick is
// called from exactly one goroutine; it may communicate (the context
// is the loop's own).
type Ticker interface {
	TickInterval() time.Duration
	Tick(c *pgas.Ctx)
}

// FailoverHandler is an optional Driver extension: adopt every shard
// the dead locale owns onto the survivors. The engine calls it from a
// salvage context right after marking the locale down (and before
// force-retiring its epoch tokens); it returns the shards adopted and
// the payload bytes moved. A driver that cannot fail over returns
// (0, 0), which the availability verdict records as not recovered.
type FailoverHandler interface {
	Failover(c *pgas.Ctx, dead int) (shards, bytes int64)
}

// NewDriver returns the driver for a structure.
func NewDriver(s Structure) (Driver, error) {
	switch s {
	case StructureHashmap:
		return &hashmapDriver{}, nil
	case StructureQueue:
		return &queueDriver{}, nil
	case StructureStack:
		return &stackDriver{}, nil
	case StructureSkiplist:
		return &skiplistDriver{}, nil
	default:
		return nil, fmt.Errorf("workload: unknown structure %q (want one of %v)", s, Structures())
	}
}

// hashmapDriver drives hashmap.Map: keyed inserts/gets/removes plus
// InsertBulk, which routes pairs to their bucket owners through the
// aggregation buffers. When the spec enables the cache, every op goes
// through a hashmap.CachedView instead: gets are served from
// per-locale replicas, mutations write through with broadcast
// invalidation. When the spec enables combining, mutations route
// through the fire-and-forget UpsertAgg/RemoveAgg path instead —
// absorbed in flight per the spec's combine policy and drained through
// the owner's flat combiner — while gets stay on the direct path.
// When the spec enables rebalancing — or schedules a crash with
// failover, which needs the same gen-checked reroute to survive
// ownership changing under live traffic — every op goes through the
// owner-table-routed hashmap.Rebalanced view instead; with rebalancing
// the driver additionally exposes a Ticker control loop stepping a
// rebalance.Controller that migrates hot buckets off overloaded
// locales mid-phase.
type hashmapDriver struct {
	m          hashmap.Map[int64]
	cv         hashmap.CachedView[int64]
	rv         hashmap.Rebalanced[int64]
	ctrl       *rebalance.Controller
	cached     bool
	combined   bool
	rebalanced bool
	routed     bool // route through rv: rebalanced or failover scheduled
	interval   time.Duration
}

func (d *hashmapDriver) Structure() Structure { return StructureHashmap }

func (d *hashmapDriver) Supports(k OpKind) bool {
	switch k {
	case OpInsert, OpGet, OpRemove, OpBulk:
		return true
	}
	return false
}

func (d *hashmapDriver) Setup(c *pgas.Ctx, em epoch.EpochManager, spec Spec) {
	d.m = hashmap.New[int64](c, spec.Buckets, em)
	d.cached = spec.Cache != nil && spec.Cache.Enabled
	d.combined = spec.Combine != nil && spec.Combine.Enabled
	d.rebalanced = spec.Rebalance != nil && spec.Rebalance.Enabled
	d.routed = d.rebalanced || spec.hasFailover()
	if d.cached {
		d.cv = d.m.Cached(c, spec.Cache.Slots)
	}
	if d.routed {
		d.rv = d.m.Rebalanced(c)
	}
	if d.rebalanced {
		rb := spec.Rebalance
		d.ctrl = rebalance.NewController(c, d.rv, rebalance.Config{
			Ratio:    rb.Ratio,
			MaxMoves: rb.MaxMoves,
			Cooldown: rb.Cooldown,
		})
		d.interval = time.Duration(rb.IntervalMS) * time.Millisecond
	}
}

// TickInterval exposes the rebalance controller's window length; 0
// (no control loop) unless the spec enabled rebalancing.
func (d *hashmapDriver) TickInterval() time.Duration {
	if !d.rebalanced {
		return 0
	}
	return d.interval
}

// Tick judges one rebalancing window.
func (d *hashmapDriver) Tick(c *pgas.Ctx) { d.ctrl.Step(c) }

// Failover adopts every bucket the dead locale owns onto the alive
// locales through the epoch-coherent migration path. Requires the
// owner-table view, which Setup builds whenever the spec schedules a
// failover crash (or enables rebalancing).
func (d *hashmapDriver) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	if !d.routed {
		return 0, 0
	}
	return d.rv.Failover(c, dead)
}

func (d *hashmapDriver) Apply(c *pgas.Ctx, tok *epoch.Token, kind OpKind, key uint64) {
	if d.cached {
		switch kind {
		case OpInsert:
			d.cv.Upsert(c, tok, key, int64(key))
		case OpGet:
			d.cv.Get(c, tok, key)
		case OpRemove:
			d.cv.Remove(c, tok, key)
		}
		return
	}
	if d.routed {
		switch kind {
		case OpInsert:
			d.rv.UpsertAgg(c, key, int64(key))
		case OpGet:
			d.rv.Get(c, tok, key)
		case OpRemove:
			d.rv.RemoveAgg(c, key)
		}
		return
	}
	if d.combined {
		switch kind {
		case OpInsert:
			d.m.UpsertAgg(c, key, int64(key))
		case OpGet:
			d.m.Get(c, tok, key)
		case OpRemove:
			d.m.RemoveAgg(c, key)
		}
		return
	}
	switch kind {
	case OpInsert:
		d.m.Upsert(c, tok, key, int64(key))
	case OpGet:
		d.m.Get(c, tok, key)
	case OpRemove:
		d.m.Remove(c, tok, key)
	}
}

func (d *hashmapDriver) ApplyBulk(c *pgas.Ctx, _ int, keys []uint64) {
	pairs := make([]hashmap.KV[int64], len(keys))
	for i, k := range keys {
		pairs[i] = hashmap.KV[int64]{K: k, V: int64(k)}
	}
	if d.cached {
		d.cv.InsertBulk(c, pairs)
		return
	}
	if d.routed {
		d.rv.InsertBulk(c, pairs)
		return
	}
	d.m.InsertBulk(c, pairs)
}

func (d *hashmapDriver) Destroy(c *pgas.Ctx) {
	if d.cached {
		d.cv.Destroy(c)
		return
	}
	d.m.Destroy(c)
}

// queueDriver drives queue.Sharded: enqueue/dequeue on the calling
// locale's segment, work-stealing dequeues, and bulk enqueues routed
// toward a drawn owner.
type queueDriver struct {
	q queue.Sharded[int64]
}

func (d *queueDriver) Structure() Structure { return StructureQueue }

func (d *queueDriver) Supports(k OpKind) bool {
	switch k {
	case OpEnqueue, OpRemove, OpSteal, OpBulk:
		return true
	}
	return false
}

func (d *queueDriver) Setup(c *pgas.Ctx, em epoch.EpochManager, spec Spec) {
	d.q = queue.NewSharded[int64](c, em)
}

func (d *queueDriver) Apply(c *pgas.Ctx, tok *epoch.Token, kind OpKind, key uint64) {
	switch kind {
	case OpEnqueue:
		d.q.Enqueue(c, tok, int64(key))
	case OpRemove:
		d.q.Dequeue(c, tok)
	case OpSteal:
		d.q.TryDequeueAny(c, tok)
	}
}

func (d *queueDriver) ApplyBulk(c *pgas.Ctx, owner int, keys []uint64) {
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = int64(k)
	}
	d.q.EnqueueBulkOn(c, owner, vals)
}

// Failover adopts the dead locale's segment onto the survivors through
// the shared bulk-drain path (salvage context; the engine follows with
// token force-retirement).
func (d *queueDriver) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	return d.q.Failover(c, dead)
}

func (d *queueDriver) Destroy(c *pgas.Ctx) { d.q.Destroy(c) }

// stackDriver drives stack.Sharded, mirroring queueDriver (Enqueue is
// push, Remove is pop).
type stackDriver struct {
	s stack.Sharded[int64]
}

func (d *stackDriver) Structure() Structure { return StructureStack }

func (d *stackDriver) Supports(k OpKind) bool {
	switch k {
	case OpEnqueue, OpRemove, OpSteal, OpBulk:
		return true
	}
	return false
}

func (d *stackDriver) Setup(c *pgas.Ctx, em epoch.EpochManager, spec Spec) {
	d.s = stack.NewSharded[int64](c, em)
}

func (d *stackDriver) Apply(c *pgas.Ctx, tok *epoch.Token, kind OpKind, key uint64) {
	switch kind {
	case OpEnqueue:
		d.s.Push(c, tok, int64(key))
	case OpRemove:
		d.s.Pop(c, tok)
	case OpSteal:
		d.s.TryPopAny(c, tok)
	}
}

func (d *stackDriver) ApplyBulk(c *pgas.Ctx, owner int, keys []uint64) {
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = int64(k)
	}
	d.s.PushBulkOn(c, owner, vals)
}

// Failover adopts the dead locale's segment onto the survivors,
// mirroring the queue driver.
func (d *stackDriver) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	return d.s.Failover(c, dead)
}

func (d *stackDriver) Destroy(c *pgas.Ctx) { d.s.Destroy(c) }

// skiplistDriver drives skiplist.List, a single-home structure: every
// op communicates with the home locale, the deliberate hotspot
// counterpart to the sharded targets.
type skiplistDriver struct {
	l *skiplist.List[int64]
}

func (d *skiplistDriver) Structure() Structure { return StructureSkiplist }

func (d *skiplistDriver) Supports(k OpKind) bool {
	switch k {
	case OpInsert, OpGet, OpRemove:
		return true
	}
	return false
}

func (d *skiplistDriver) Setup(c *pgas.Ctx, em epoch.EpochManager, spec Spec) {
	d.l = skiplist.New[int64](c, spec.Home, em)
}

func (d *skiplistDriver) Apply(c *pgas.Ctx, tok *epoch.Token, kind OpKind, key uint64) {
	switch kind {
	case OpInsert:
		d.l.Insert(c, tok, key, int64(key))
	case OpGet:
		d.l.Get(c, tok, key)
	case OpRemove:
		d.l.Remove(c, tok, key)
	}
}

func (d *skiplistDriver) ApplyBulk(c *pgas.Ctx, owner int, keys []uint64) {}

func (d *skiplistDriver) Destroy(c *pgas.Ctx) { d.l.Destroy(c) }
