package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gopgas/internal/comm"
)

// Structure names a scenario target.
type Structure string

const (
	StructureHashmap  Structure = "hashmap"  // hashmap.Map
	StructureQueue    Structure = "queue"    // queue.Sharded
	StructureStack    Structure = "stack"    // stack.Sharded
	StructureSkiplist Structure = "skiplist" // skiplist.List (single home)
)

// Structures lists every scenario target, for CLIs and sweeps.
func Structures() []Structure {
	return []Structure{StructureHashmap, StructureQueue, StructureStack, StructureSkiplist}
}

// DistKind selects a key distribution.
type DistKind string

const (
	// DistUniform draws keys uniformly from the keyspace.
	DistUniform DistKind = "uniform"
	// DistZipfian draws ranks from a Zipfian distribution with skew
	// Theta (YCSB's default regime; rank r is drawn with probability
	// ∝ 1/(r+1)^Theta) and uses the rank as the key, so key 0 is the
	// hottest.
	DistZipfian DistKind = "zipfian"
	// DistHotSet sends HotProb of the traffic to the first
	// HotFraction of the keyspace and spreads the rest uniformly.
	DistHotSet DistKind = "hotset"
)

// KeyDist is a declarative key distribution.
type KeyDist struct {
	Kind DistKind `json:"kind"`
	// Theta is the Zipfian skew, in (0, 1); 0 selects the YCSB
	// default 0.99. Only meaningful for DistZipfian.
	Theta float64 `json:"theta,omitempty"`
	// HotFraction is the fraction of the keyspace that is hot, in
	// (0, 1); 0 selects 0.1. Only meaningful for DistHotSet.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// HotProb is the probability an op targets the hot set, in
	// (0, 1]; 0 selects 0.9. Only meaningful for DistHotSet.
	HotProb float64 `json:"hot_prob,omitempty"`
}

// Mix is the op-kind weighting of a phase. Weights are relative (they
// need not sum to 1); a zero weight disables the kind. Which kinds a
// structure supports is the Driver's contract — Validate rejects a
// mix that weights an unsupported kind.
type Mix struct {
	Insert  float64 `json:"insert,omitempty"`  // map/skiplist keyed insert
	Get     float64 `json:"get,omitempty"`     // map/skiplist keyed lookup
	Remove  float64 `json:"remove,omitempty"`  // keyed remove, or dequeue/pop
	Enqueue float64 `json:"enqueue,omitempty"` // queue enqueue / stack push
	Steal   float64 `json:"steal,omitempty"`   // TryDequeueAny / TryPopAny
	Bulk    float64 `json:"bulk,omitempty"`    // bulk insert/enqueue/push toward a drawn owner
}

func (m Mix) weights() [numOps]float64 {
	return [numOps]float64{
		OpInsert: m.Insert, OpGet: m.Get, OpRemove: m.Remove,
		OpEnqueue: m.Enqueue, OpSteal: m.Steal, OpBulk: m.Bulk,
	}
}

// total returns the sum of all weights.
func (m Mix) total() float64 {
	var t float64
	for _, w := range m.weights() {
		t += w
	}
	return t
}

// Phase is one stage of a scenario (the classic shape is load → run →
// churn). Exactly one of OpsPerTask (closed-loop, deterministic) or
// Seconds (time-based, for soaks) must be set.
type Phase struct {
	Name string `json:"name"`
	Mix  Mix    `json:"mix"`

	// OpsPerTask is the closed-loop op budget of each task. A
	// closed-loop phase replays identically under one seed.
	OpsPerTask int `json:"ops_per_task,omitempty"`

	// Seconds runs each task until the deadline instead — the soak
	// arrival model. Op counts then depend on wall time.
	Seconds float64 `json:"seconds,omitempty"`

	// TargetRate, when positive, paces each task at this many ops/sec
	// (open-loop arrival): tasks sleep between ops to hold the rate
	// instead of issuing back-to-back. 0 is closed-loop (as fast as
	// the simulated system allows).
	TargetRate float64 `json:"target_rate,omitempty"`

	// Rounds repeats the phase body; 0 means 1.
	Rounds int `json:"rounds,omitempty"`

	// Churn destroys and recreates the structure between rounds,
	// exercising Destroy/registry recycling under the scenario's mix.
	Churn bool `json:"churn,omitempty"`

	// BulkSize is the batch length of Bulk ops; 0 means 64.
	BulkSize int `json:"bulk_size,omitempty"`

	// ReclaimEvery makes each task attempt an epoch reclaim every N
	// ops; 0 never reclaims inside the phase (deferred nodes are
	// cleared between phases). Reclaim elections race across locales,
	// so a phase that wants counter-exact replays leaves this 0.
	ReclaimEvery int `json:"reclaim_every,omitempty"`
}

// rounds returns the effective round count.
func (p Phase) rounds() int {
	if p.Rounds < 1 {
		return 1
	}
	return p.Rounds
}

// bulkSize returns the effective bulk batch length.
func (p Phase) bulkSize() int {
	if p.BulkSize < 1 {
		return 64
	}
	return p.BulkSize
}

// Faults is the scenario's fault-injection plan. The latency half
// (scales, slow locale) lowers to a comm.Perturbation installed at
// boot: latency scales, counters exact. The liveness half — partitions
// installed at boot, crashes applied by the engine at their scheduled
// point — changes exactly one counter, the OpsLost ledger.
type Faults struct {
	// SlowFactor, when positive, makes locale SlowLocale run that many
	// times slower (the "slow locale" mode: every delay touching it is
	// scaled).
	SlowFactor float64 `json:"slow_factor,omitempty"`
	SlowLocale int     `json:"slow_locale,omitempty"`

	// Scales is an explicit per-locale multiplier plan; entries <= 0
	// mean nominal. Overrides SlowFactor/SlowLocale when non-empty.
	Scales []float64 `json:"scales,omitempty"`

	// Crashes schedules fail-stop locale crashes (per-locale, at a
	// phase boundary or mid-phase op count), optionally with shard
	// failover and token force-retirement. The run's report gains an
	// availability verdict when any crash is scheduled.
	Crashes []CrashSpec `json:"crashes,omitempty"`

	// Partitions schedules transient network partitions: unordered
	// locale pairs severed at a scheduled point and optionally healed
	// later. Both endpoints stay alive; execution-plane ops between
	// them park in the retry plane (see Retry) and redeliver on heal,
	// or expire. The run's report gains an availability verdict when
	// any partition is scheduled.
	Partitions []PartitionSpec `json:"partitions,omitempty"`

	// Retry tunes the partition retry plane; nil runs the documented
	// defaults. Disabled reverts partitions to fail-stop accounting
	// (refused ops drain to the lost ledger — the ablation baseline).
	Retry *RetrySpec `json:"retry,omitempty"`
}

// CrashSpec schedules one fail-stop locale crash. After the crash,
// every operation whose destination is the dead locale is refused into
// the OpsLost ledger, the dead locale's tasks issue nothing further
// (their unissued closed-loop budget is also counted lost), and
// quiescence excludes it.
type CrashSpec struct {
	// Locale is the locale to kill. Locale 0 hosts the global epoch
	// word and the orchestrating main task, so valid crash locales are
	// [1, locales).
	Locale int `json:"locale"`
	// Phase is the phase index at whose start the crash applies.
	Phase int `json:"phase"`
	// AfterOps, when positive, applies the crash mid-phase instead:
	// once the phase's tasks have issued this many ops system-wide, a
	// monitor task kills the locale. Mid-phase crashes land at a racing
	// op count, so — like ReclaimEvery — they trade bit-identical
	// replay for mid-storm realism; phase-boundary crashes (AfterOps 0)
	// replay bit-identically.
	AfterOps int64 `json:"after_ops,omitempty"`
	// Failover recovers from the crash: the survivors adopt the dead
	// locale's shards through the epoch-coherent migration path and its
	// stranded epoch tokens are force-retired (hashmap only). Without
	// it the crash is left unrecovered — the wedged-reclamation regime
	// where every epoch advance fails on a pin that will never release.
	Failover bool `json:"failover,omitempty"`
}

// PartitionSpec schedules one transient partition of the unordered
// pair (a, b). The sever lands at the start of phase Phase — or, with
// AtOps > 0, mid-phase once the phase's tasks have issued that many
// ops system-wide (a racing op count, like mid-phase crashes). The
// heal, when scheduled, comes from exactly one of two clocks: at the
// start of phase HealPhase, or HealAfterMS of wall time after the
// sever. With neither set the pair stays severed to the end of the
// run, and everything still parked behind it expires at the final
// drain.
type PartitionSpec struct {
	A int `json:"a"`
	B int `json:"b"`
	// Phase is the phase index at whose start (or within which, with
	// AtOps) the sever applies.
	Phase int `json:"phase"`
	// AtOps, when positive, severs mid-phase at a system-wide issued-op
	// mark instead of the phase boundary.
	AtOps int64 `json:"at_ops,omitempty"`
	// HealPhase, when positive, heals the pair at the start of that
	// phase; it must come after Phase. (Phase 0 can never be a heal
	// point — nothing is severed before it starts.)
	HealPhase int `json:"heal_phase,omitempty"`
	// HealAfterMS, when positive, heals the pair this many wall-clock
	// milliseconds after the sever lands. Mutually exclusive with
	// HealPhase.
	HealAfterMS float64 `json:"heal_after_ms,omitempty"`
}

// RetrySpec tunes the partition retry plane (comm.ParkConfig).
type RetrySpec struct {
	// Disabled turns the retry plane off: partition refusals drain to
	// the lost-ops ledger exactly like crash refusals.
	Disabled bool `json:"disabled,omitempty"`
	// DeadlineMS bounds how long an op may stay parked; 0 means the
	// comm default (2s).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Capacity bounds each per-destination parked-op buffer; 0 means
	// the comm default (4096). Overflow parks-then-expires.
	Capacity int `json:"capacity,omitempty"`
}

// parkConfig lowers the retry knob to the comm layer.
func (f Faults) parkConfig() comm.ParkConfig {
	var p comm.ParkConfig
	if r := f.Retry; r != nil {
		p.Disable = r.Disabled
		p.DeadlineNS = int64(r.DeadlineMS * 1e6)
		p.Capacity = r.Capacity
	}
	return p
}

// hasFailover reports whether any scheduled crash requests failover
// (which makes the hashmap driver route through the owner-table view).
func (s Spec) hasFailover() bool {
	for _, cr := range s.Faults.Crashes {
		if cr.Failover {
			return true
		}
	}
	return false
}

// perturbation lowers the fault plan's boot-time half to the comm
// layer: the latency scales. The liveness half — crashes, and now
// partitions too — is applied by the engine at its scheduled point,
// not here.
func (f Faults) perturbation(locales int) comm.Perturbation {
	var p comm.Perturbation
	if len(f.Scales) > 0 {
		p.Scales = f.Scales
	} else if f.SlowFactor > 0 {
		p = comm.SlowLocale(locales, f.SlowLocale, f.SlowFactor)
	}
	return p
}

// CacheSpec configures the hot-key read replication cache
// (hashmap.CachedView). When enabled, the driver routes every Get
// through a per-locale replica and every mutation writes through with
// broadcast invalidation; the run's comm evidence gains the
// CacheHits/CacheMiss/CacheInval counters.
type CacheSpec struct {
	// Enabled turns the cache on. Only the hashmap structure supports
	// it; Validate rejects other structures.
	Enabled bool `json:"enabled"`
	// Slots is the per-locale replica size (rounded up to a power of
	// two); 0 means 256.
	Slots int `json:"slots,omitempty"`
}

// CombineSpec configures write absorption: the aggregator's in-flight
// merge policy (comm.AggConfig.Combine) plus the hashmap driver's
// routing of Insert/Remove through the combinable UpsertAgg/RemoveAgg
// path, which also drains writes through the owner's flat combiner.
// The run's comm evidence gains AggOpsEnq/AggCombined and the CAS
// attempt/retry counters quantify the owner-side relief.
type CombineSpec struct {
	// Enabled turns write absorption on. Only the hashmap structure
	// supports it, and it is mutually exclusive with the read cache
	// (combined writes bypass the CachedView's invalidation broadcast);
	// Validate rejects both misuses.
	Enabled bool `json:"enabled"`
}

// RebalanceSpec configures dynamic hot-shard rebalancing: the driver
// routes hashmap traffic through the owner-table view
// (hashmap.Rebalanced) and runs a rebalance.Controller beside the
// workers, migrating the hottest buckets off any locale whose windowed
// inbound traffic exceeds the imbalance ratio. The run's comm evidence
// gains the MigAdopted/MigRetired/MigBytes/MigReroutes counters.
type RebalanceSpec struct {
	// Enabled turns rebalancing on. Only the hashmap structure supports
	// it, and it is mutually exclusive with the read cache (owner-routed
	// writes bypass the CachedView's invalidation broadcast); Validate
	// rejects both misuses. Composable with combine: routed writes stay
	// absorbable in flight.
	Enabled bool `json:"enabled"`
	// Ratio is the imbalance trigger (busiest inbound column vs the
	// per-locale mean, per window); must be > 1 when set, 0 means 2.
	Ratio float64 `json:"ratio,omitempty"`
	// IntervalMS is the controller's window length in milliseconds;
	// 0 means 2.
	IntervalMS int `json:"interval_ms,omitempty"`
	// MaxMoves caps migrations per window; 0 means 4.
	MaxMoves int `json:"max_moves,omitempty"`
	// Cooldown is how many windows a source rests after migrating;
	// 0 means 1.
	Cooldown int `json:"cooldown,omitempty"`
}

// TraceSpec configures the event-tracing plane (internal/trace): when
// enabled, the run records begin/end spans for dispatch, flush,
// combine, epoch and migration lifecycles into per-locale lock-free
// rings, and the report gains a trace section (span books, drops).
// Counters and digests are never affected — tracing is observation
// only.
type TraceSpec struct {
	// Enabled turns the recorder on.
	Enabled bool `json:"enabled"`
	// SampleRate records 1 in N high-frequency events (dispatch, flush,
	// combine, deferral); control-plane events (epoch advances,
	// migrations, reroutes) always record. 0 means 64; 1 records
	// everything.
	SampleRate int `json:"sample_rate,omitempty"`
	// BufferSize is the per-locale ring capacity in events, rounded up
	// to a power of two; 0 means 16384.
	BufferSize int `json:"buffer_size,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name           string    `json:"name"`
	Structure      Structure `json:"structure"`
	Locales        int       `json:"locales"`
	TasksPerLocale int       `json:"tasks_per_locale"`
	// Backend is the network-atomic regime, "ugni" or "none".
	Backend string `json:"backend"`
	// Seed drives every task's op/key stream. 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Keyspace is the number of distinct keys; 0 means 1<<16.
	Keyspace uint64 `json:"keyspace,omitempty"`
	// Buckets sizes the hashmap; 0 means 4 per locale.
	Buckets int `json:"buckets,omitempty"`
	// Home is the owning locale of single-home structures (skiplist).
	Home int     `json:"home,omitempty"`
	Dist KeyDist `json:"dist"`
	// LatencyScale scales the calibrated comm.DefaultProfile: 1 is the
	// calibrated network, 0 disables injected latency entirely (fast
	// and exact — the unit-test regime).
	LatencyScale float64 `json:"latency_scale,omitempty"`
	Faults       Faults  `json:"faults,omitempty"`
	// Cache enables the hashmap's read replication layer; nil (or
	// Enabled false) runs the plain owner-computed path.
	Cache *CacheSpec `json:"cache,omitempty"`
	// Combine enables write absorption on the hashmap's write path;
	// nil (or Enabled false) runs writes one-for-one.
	Combine *CombineSpec `json:"combine,omitempty"`
	// Rebalance enables dynamic hot-shard rebalancing on the hashmap;
	// nil (or Enabled false) keeps ownership static.
	Rebalance *RebalanceSpec `json:"rebalance,omitempty"`
	// Trace enables the event-tracing plane; nil (or Enabled false)
	// keeps every instrumented hot path at its nil-check cost.
	Trace  *TraceSpec `json:"trace,omitempty"`
	Phases []Phase    `json:"phases"`
}

// WithDefaults returns a copy of s with zero-valued knobs replaced by
// their documented defaults. Run applies it; callers only need it to
// inspect the effective scenario.
func (s Spec) WithDefaults() Spec {
	if s.Name == "" {
		s.Name = string(s.Structure)
	}
	if s.Locales == 0 {
		s.Locales = 4
	}
	if s.TasksPerLocale == 0 {
		s.TasksPerLocale = 1
	}
	if s.Backend == "" {
		s.Backend = "none"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Keyspace == 0 {
		s.Keyspace = 1 << 16
	}
	if s.Buckets == 0 {
		s.Buckets = 4 * s.Locales
	}
	if s.Dist.Kind == "" {
		s.Dist.Kind = DistUniform
	}
	if s.Dist.Kind == DistZipfian && s.Dist.Theta == 0 {
		s.Dist.Theta = 0.99
	}
	if s.Dist.Kind == DistHotSet {
		if s.Dist.HotFraction == 0 {
			s.Dist.HotFraction = 0.1
		}
		if s.Dist.HotProb == 0 {
			s.Dist.HotProb = 0.9
		}
	}
	if s.Cache != nil {
		cp := *s.Cache // don't mutate the caller's spec through the pointer
		if cp.Enabled && cp.Slots == 0 {
			cp.Slots = 256
		}
		s.Cache = &cp
	}
	if s.Combine != nil {
		cp := *s.Combine
		s.Combine = &cp
	}
	if s.Rebalance != nil {
		cp := *s.Rebalance
		if cp.Enabled {
			if cp.Ratio == 0 {
				cp.Ratio = 2
			}
			if cp.IntervalMS == 0 {
				cp.IntervalMS = 2
			}
			if cp.MaxMoves == 0 {
				cp.MaxMoves = 4
			}
			if cp.Cooldown == 0 {
				cp.Cooldown = 1
			}
		}
		s.Rebalance = &cp
	}
	if s.Faults.Retry != nil {
		cp := *s.Faults.Retry
		s.Faults.Retry = &cp
	}
	if s.Trace != nil {
		cp := *s.Trace
		if cp.Enabled {
			if cp.SampleRate == 0 {
				cp.SampleRate = 64
			}
			if cp.BufferSize == 0 {
				cp.BufferSize = 16384
			}
		}
		s.Trace = &cp
	}
	return s
}

// Validate rejects malformed scenarios with a descriptive error. It
// expects defaults to have been applied (Run does both).
func (s Spec) Validate() error {
	drv, err := NewDriver(s.Structure)
	if err != nil {
		return err
	}
	if s.Locales < 1 {
		return fmt.Errorf("workload: locales must be >= 1, got %d", s.Locales)
	}
	if s.TasksPerLocale < 1 {
		return fmt.Errorf("workload: tasks_per_locale must be >= 1, got %d", s.TasksPerLocale)
	}
	if _, err := comm.ParseBackend(s.Backend); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if s.Keyspace < 1 {
		return fmt.Errorf("workload: keyspace must be >= 1, got %d", s.Keyspace)
	}
	if s.Buckets < 1 {
		return fmt.Errorf("workload: buckets must be >= 1, got %d", s.Buckets)
	}
	if s.Home < 0 || s.Home >= s.Locales {
		return fmt.Errorf("workload: home %d out of range [0, %d)", s.Home, s.Locales)
	}
	if s.LatencyScale < 0 {
		return fmt.Errorf("workload: latency_scale must be >= 0, got %v", s.LatencyScale)
	}
	switch s.Dist.Kind {
	case DistUniform:
	case DistZipfian:
		if s.Dist.Theta <= 0 || s.Dist.Theta >= 1 {
			return fmt.Errorf("workload: zipfian theta must be in (0, 1), got %v", s.Dist.Theta)
		}
	case DistHotSet:
		if s.Dist.HotFraction <= 0 || s.Dist.HotFraction >= 1 {
			return fmt.Errorf("workload: hot_fraction must be in (0, 1), got %v", s.Dist.HotFraction)
		}
		if s.Dist.HotProb <= 0 || s.Dist.HotProb > 1 {
			return fmt.Errorf("workload: hot_prob must be in (0, 1], got %v", s.Dist.HotProb)
		}
	default:
		return fmt.Errorf("workload: unknown key distribution %q", s.Dist.Kind)
	}
	if ca := s.Cache; ca != nil {
		if ca.Enabled && s.Structure != StructureHashmap {
			return fmt.Errorf("workload: cache is only supported by the hashmap structure, not %q", s.Structure)
		}
		if ca.Slots < 0 {
			return fmt.Errorf("workload: cache slots must be >= 0, got %d", ca.Slots)
		}
	}
	if co := s.Combine; co != nil && co.Enabled {
		if s.Structure != StructureHashmap {
			return fmt.Errorf("workload: combine is only supported by the hashmap structure, not %q", s.Structure)
		}
		if s.Cache != nil && s.Cache.Enabled {
			return fmt.Errorf("workload: combine and cache are mutually exclusive (combined writes bypass cache invalidation)")
		}
	}
	if rb := s.Rebalance; rb != nil && rb.Enabled {
		if s.Structure != StructureHashmap {
			return fmt.Errorf("workload: rebalance is only supported by the hashmap structure, not %q", s.Structure)
		}
		if s.Cache != nil && s.Cache.Enabled {
			return fmt.Errorf("workload: rebalance and cache are mutually exclusive (owner-routed writes bypass cache invalidation)")
		}
		if rb.Ratio <= 1 {
			return fmt.Errorf("workload: rebalance ratio must be > 1, got %v", rb.Ratio)
		}
		if rb.IntervalMS < 0 || rb.MaxMoves < 0 || rb.Cooldown < 0 {
			return fmt.Errorf("workload: rebalance knobs must be >= 0")
		}
	}
	if tr := s.Trace; tr != nil {
		if tr.SampleRate < 0 {
			return fmt.Errorf("workload: trace sample_rate must be >= 0, got %d", tr.SampleRate)
		}
		if tr.BufferSize < 0 {
			return fmt.Errorf("workload: trace buffer_size must be >= 0, got %d", tr.BufferSize)
		}
		if tr.BufferSize > 1<<24 {
			return fmt.Errorf("workload: trace buffer_size must be <= %d, got %d", 1<<24, tr.BufferSize)
		}
	}
	if f := s.Faults; f.SlowFactor < 0 {
		return fmt.Errorf("workload: slow_factor must be >= 0, got %v", f.SlowFactor)
	} else if f.SlowFactor > 0 && (f.SlowLocale < 0 || f.SlowLocale >= s.Locales) {
		return fmt.Errorf("workload: slow_locale %d out of range [0, %d)", f.SlowLocale, s.Locales)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: scenario has no phases")
	}
	for i, p := range s.Phases {
		where := fmt.Sprintf("phase %d (%q)", i, p.Name)
		if (p.OpsPerTask > 0) == (p.Seconds > 0) {
			return fmt.Errorf("workload: %s must set exactly one of ops_per_task and seconds", where)
		}
		if p.OpsPerTask < 0 || p.Seconds < 0 || p.TargetRate < 0 || p.Rounds < 0 || p.BulkSize < 0 || p.ReclaimEvery < 0 {
			return fmt.Errorf("workload: %s has a negative knob", where)
		}
		for k, w := range p.Mix.weights() {
			if w < 0 {
				return fmt.Errorf("workload: %s weights %s negatively", where, OpKind(k))
			}
			if w > 0 && !drv.Supports(OpKind(k)) {
				return fmt.Errorf("workload: %s weights %s, which %s does not support", where, OpKind(k), s.Structure)
			}
		}
		if p.Mix.total() <= 0 {
			return fmt.Errorf("workload: %s has an empty op mix", where)
		}
	}
	for i, cr := range s.Faults.Crashes {
		if cr.Locale < 1 || cr.Locale >= s.Locales {
			return fmt.Errorf("workload: crash %d locale %d out of range [1, %d) (locale 0 hosts the global epoch word and cannot crash)", i, cr.Locale, s.Locales)
		}
		if cr.Phase < 0 || cr.Phase >= len(s.Phases) {
			return fmt.Errorf("workload: crash %d phase %d out of range [0, %d)", i, cr.Phase, len(s.Phases))
		}
		if cr.AfterOps < 0 {
			return fmt.Errorf("workload: crash %d after_ops must be >= 0, got %d", i, cr.AfterOps)
		}
		if cr.AfterOps > 0 && s.Phases[cr.Phase].Churn {
			return fmt.Errorf("workload: crash %d is mid-phase (after_ops > 0) in churn phase %d; a crash cannot race Destroy/Setup", i, cr.Phase)
		}
		if cr.Failover {
			switch s.Structure {
			case StructureHashmap, StructureQueue, StructureStack:
			default:
				return fmt.Errorf("workload: crash failover is only supported by the hashmap, queue and stack structures, not %q", s.Structure)
			}
			if s.Cache != nil && s.Cache.Enabled {
				return fmt.Errorf("workload: crash failover and cache are mutually exclusive (owner-routed writes bypass cache invalidation)")
			}
		}
	}
	for i, pr := range s.Faults.Partitions {
		if pr.A < 0 || pr.A >= s.Locales || pr.B < 0 || pr.B >= s.Locales {
			return fmt.Errorf("workload: partition %d pair [%d %d] out of range [0, %d)", i, pr.A, pr.B, s.Locales)
		}
		if pr.A == pr.B {
			return fmt.Errorf("workload: partition %d pairs locale %d with itself", i, pr.A)
		}
		if pr.Phase < 0 || pr.Phase >= len(s.Phases) {
			return fmt.Errorf("workload: partition %d phase %d out of range [0, %d)", i, pr.Phase, len(s.Phases))
		}
		if pr.AtOps < 0 {
			return fmt.Errorf("workload: partition %d at_ops must be >= 0, got %d", i, pr.AtOps)
		}
		if pr.AtOps > 0 && s.Phases[pr.Phase].Churn {
			return fmt.Errorf("workload: partition %d is mid-phase (at_ops > 0) in churn phase %d; a sever cannot race Destroy/Setup", i, pr.Phase)
		}
		if pr.HealAfterMS < 0 {
			return fmt.Errorf("workload: partition %d heal_after_ms must be >= 0, got %v", i, pr.HealAfterMS)
		}
		if pr.HealPhase != 0 {
			if pr.HealAfterMS > 0 {
				return fmt.Errorf("workload: partition %d sets both heal_phase and heal_after_ms; pick one heal clock", i)
			}
			if pr.HealPhase <= pr.Phase {
				return fmt.Errorf("workload: partition %d heals at phase %d, not after its sever at phase %d", i, pr.HealPhase, pr.Phase)
			}
			if pr.HealPhase >= len(s.Phases) {
				return fmt.Errorf("workload: partition %d heal_phase %d out of range [0, %d)", i, pr.HealPhase, len(s.Phases))
			}
		}
	}
	if r := s.Faults.Retry; r != nil {
		if r.DeadlineMS < 0 {
			return fmt.Errorf("workload: retry deadline_ms must be >= 0, got %v", r.DeadlineMS)
		}
		if r.Capacity < 0 {
			return fmt.Errorf("workload: retry capacity must be >= 0, got %d", r.Capacity)
		}
		if r.Disabled && (r.DeadlineMS > 0 || r.Capacity > 0) {
			return fmt.Errorf("workload: retry is disabled but tunes the plane it turned off")
		}
	}
	return nil
}

// LoadSpec reads a Spec from a JSON file, rejecting unknown fields so
// a typo'd knob fails loudly instead of silently running the default.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	return s, nil
}

// WriteJSON writes the spec as indented JSON (the format LoadSpec
// reads back).
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
