package workload

import (
	"fmt"
	"math"
)

// Deterministic op/key streams. Each task owns one Stream seeded from
// (spec seed, phase, round, locale, task): identical seeds reproduce
// identical op streams byte-for-byte, on any host, which is what makes
// a scenario regression replayable. The generator is splitmix64 — the
// same primitive the pgas per-task RNG uses — with YCSB-style Zipfian
// and hot-set shaping layered on top.

// OpKind is one abstract operation of the scenario vocabulary. Drivers
// map kinds onto their structure's calls (Remove doubles as
// dequeue/pop for the LIFO/FIFO structures).
type OpKind int

const (
	OpInsert OpKind = iota
	OpGet
	OpRemove
	OpEnqueue
	OpSteal
	OpBulk
	numOps
)

// String returns the spec-facing name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpGet:
		return "get"
	case OpRemove:
		return "remove"
	case OpEnqueue:
		return "enqueue"
	case OpSteal:
		return "steal"
	case OpBulk:
		return "bulk"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// zipfGen draws Zipfian ranks with the incremental method of Gray et
// al. (the generator YCSB popularized): rank r in [0, n) appears with
// probability proportional to 1/(r+1)^theta. Construction is O(n) (one
// zeta sum), so the engine builds one per phase and shares it across
// tasks — it is immutable after construction.
type zipfGen struct {
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	zeta2             float64
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	z := &zipfGen{n: n, theta: theta}
	for i := uint64(1); i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.zeta2 = 1 + math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// rank maps a uniform u in [0, 1) to a Zipfian rank in [0, n).
func (z *zipfGen) rank(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.zeta2 {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// Stream is one task's deterministic op/key source. Not safe for
// concurrent use; each task owns its own.
type Stream struct {
	state    uint64
	keyspace uint64
	dist     KeyDist
	zipf     *zipfGen // shared, read-only; nil unless DistZipfian
	cdf      [numOps]float64
}

// streamSeed mixes the scenario coordinates into an initial splitmix64
// state, scrambling once so adjacent coordinates diverge immediately.
func streamSeed(seed uint64, phase, round, locale, task int) uint64 {
	x := seed
	x ^= uint64(phase+1) * 0x9e3779b97f4a7c15
	x ^= uint64(round+1) * 0xbf58476d1ce4e5b9
	x ^= uint64(locale+1) * 0x94d049bb133111eb
	x ^= uint64(task+1) * 0xd6e8feb86659fd93
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewStream builds the stream for one task of one phase round. zipf
// may be nil unless dist.Kind is DistZipfian (the engine precomputes
// it once per phase; tests may pass their own).
func NewStream(seed uint64, phase, round, locale, task int, keyspace uint64, dist KeyDist, mix Mix, zipf *zipfGen) *Stream {
	st := &Stream{
		state:    streamSeed(seed, phase, round, locale, task),
		keyspace: keyspace,
		dist:     dist,
		zipf:     zipf,
	}
	var cum float64
	w := mix.weights()
	for k := range w {
		cum += w[k]
		st.cdf[k] = cum
	}
	total := cum
	if total > 0 {
		for k := range st.cdf {
			st.cdf[k] /= total
		}
	}
	return st
}

// next advances the splitmix64 state.
func (st *Stream) next() uint64 {
	st.state += 0x9e3779b97f4a7c15
	z := st.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float returns the next uniform float64 in [0, 1).
func (st *Stream) Float() float64 {
	return float64(st.next()>>11) / (1 << 53)
}

// NextOp draws the next op kind per the mix's cumulative weights.
func (st *Stream) NextOp() OpKind {
	u := st.Float()
	for k := OpKind(0); k < numOps; k++ {
		if u < st.cdf[k] {
			return k
		}
	}
	return numOps - 1
}

// NextKey draws the next key per the configured distribution.
func (st *Stream) NextKey() uint64 {
	switch st.dist.Kind {
	case DistZipfian:
		return st.zipf.rank(st.Float())
	case DistHotSet:
		hot := uint64(st.dist.HotFraction * float64(st.keyspace))
		if hot < 1 {
			hot = 1
		}
		if hot >= st.keyspace {
			return st.next() % st.keyspace
		}
		if st.Float() < st.dist.HotProb {
			return st.next() % hot
		}
		return hot + st.next()%(st.keyspace-hot)
	default: // DistUniform
		return st.next() % st.keyspace
	}
}

// NextKeys draws n keys (the Bulk batch path).
func (st *Stream) NextKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = st.NextKey()
	}
	return keys
}

// opDigest folds one (kind, key) into a mixed word. Per-task digest
// sums are combined with wrapping addition across tasks, so the
// phase-level digest is order-insensitive: identical op multisets give
// identical digests regardless of goroutine interleaving — the
// fingerprint the determinism test counter-asserts.
func opDigest(kind OpKind, key uint64) uint64 {
	x := (uint64(kind) + 1) * 0x9e3779b97f4a7c15
	x ^= key * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
