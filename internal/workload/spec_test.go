package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Structure: StructureHashmap,
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 10},
			{Name: "run", Mix: Mix{Insert: 1, Get: 8, Remove: 1}, OpsPerTask: 10},
		},
	}.WithDefaults()
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"unknown structure", func(s *Spec) { s.Structure = "btree" }, "unknown structure"},
		{"zero locales", func(s *Spec) { s.Locales = -1 }, "locales"},
		{"zero tasks", func(s *Spec) { s.TasksPerLocale = -1 }, "tasks_per_locale"},
		{"bad backend", func(s *Spec) { s.Backend = "tcp" }, "backend"},
		{"bad home", func(s *Spec) { s.Home = 99 }, "home"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"empty mix", func(s *Spec) { s.Phases[0].Mix = Mix{} }, "empty op mix"},
		{"unsupported kind", func(s *Spec) { s.Phases[0].Mix = Mix{Steal: 1} }, "does not support"},
		{"ops and seconds", func(s *Spec) { s.Phases[0].Seconds = 2 }, "exactly one"},
		{"neither ops nor seconds", func(s *Spec) { s.Phases[0].OpsPerTask = 0 }, "exactly one"},
		{"negative weight", func(s *Spec) { s.Phases[0].Mix.Get = -1 }, "negatively"},
		{"theta too big", func(s *Spec) { s.Dist = KeyDist{Kind: DistZipfian, Theta: 1.5} }, "theta"},
		{"bad hot fraction", func(s *Spec) { s.Dist = KeyDist{Kind: DistHotSet, HotFraction: 2, HotProb: 0.5} }, "hot_fraction"},
		{"unknown dist", func(s *Spec) { s.Dist.Kind = "pareto" }, "distribution"},
		{"negative latency scale", func(s *Spec) { s.LatencyScale = -1 }, "latency_scale"},
		{"slow locale out of range", func(s *Spec) { s.Faults = Faults{SlowFactor: 4, SlowLocale: 64} }, "slow_locale"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Dist = KeyDist{Kind: DistZipfian, Theta: 0.9}
	s.Faults = Faults{SlowFactor: 4, SlowLocale: 1}
	s.Phases[1].Churn = true
	s.Phases[1].Rounds = 3

	path := filepath.Join(t.TempDir(), "spec.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Structure != s.Structure || back.Dist != s.Dist ||
		back.Faults.SlowFactor != s.Faults.SlowFactor ||
		len(back.Phases) != len(s.Phases) || back.Phases[1] != s.Phases[1] {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", back, s)
	}
}

// goldenSpec populates every Spec knob, including the cache field —
// the serialization surface the golden round-trip protects.
func goldenSpec() Spec {
	return Spec{
		Name:           "golden",
		Structure:      StructureHashmap,
		Locales:        8,
		TasksPerLocale: 2,
		Backend:        "ugni",
		Seed:           42,
		Keyspace:       512,
		Buckets:        64,
		Home:           1,
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.05, HotProb: 0.95},
		LatencyScale:   0.5,
		Faults: Faults{
			SlowFactor: 4,
			SlowLocale: 3,
			Crashes:    []CrashSpec{{Locale: 3, Phase: 1, AfterOps: 250}},
			Partitions: []PartitionSpec{{A: 1, B: 2, Phase: 1, AtOps: 50, HealPhase: 2}},
			Retry:      &RetrySpec{DeadlineMS: 500, Capacity: 1024},
		},
		Cache:     &CacheSpec{Enabled: true, Slots: 128},
		Combine:   &CombineSpec{Enabled: false},
		Rebalance: &RebalanceSpec{Enabled: false, Ratio: 1.75, IntervalMS: 3, MaxMoves: 2, Cooldown: 2},
		Trace:     &TraceSpec{Enabled: true, SampleRate: 32, BufferSize: 4096},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 100},
			{Name: "run", Mix: Mix{Insert: 1, Get: 18, Remove: 1, Bulk: 0.5},
				OpsPerTask: 400, BulkSize: 32, TargetRate: 5000, ReclaimEvery: 64},
			{Name: "churn", Mix: Mix{Get: 1}, OpsPerTask: 50, Rounds: 3, Churn: true},
		},
	}
}

// Serialize → parse → deep-equal: the full spec surface (every knob
// populated, cache included) survives the JSON round trip bit-exactly,
// and the strict parser rejects unknown keys at any nesting depth.
func TestSpecGoldenRoundTrip(t *testing.T) {
	s := goldenSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("golden spec invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	back, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("golden round trip drifted:\n got %+v\nwant %+v", back, s)
	}

	// A second trip through the parsed copy must be byte-identical:
	// serialization is deterministic, so specs diff cleanly in VCS.
	raw1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "golden2.json")
	f2, err := os.Create(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	raw2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) {
		t.Fatalf("re-serialization not byte-identical:\n%s\nvs\n%s", raw1, raw2)
	}

	// A disabled-cache spec omits the field entirely (pointer +
	// omitempty), keeping cacheless specs clean; same for combine.
	s2 := s
	s2.Cache = nil
	s2.Combine = nil
	s2.Rebalance = nil
	s2.Trace = nil
	var buf strings.Builder
	if err := s2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"cache\"") {
		t.Fatalf("nil cache serialized:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "\"combine\"") {
		t.Fatalf("nil combine serialized:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "\"rebalance\"") {
		t.Fatalf("nil rebalance serialized:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "\"trace\"") {
		t.Fatalf("nil trace serialized:\n%s", buf.String())
	}
}

// Strict parsing applies inside nested objects too: a typo'd cache or
// combine knob fails loudly instead of silently running the default.
func TestLoadSpecRejectsUnknownNestedFields(t *testing.T) {
	cases := map[string]string{
		"cache":     `{"structure": "hashmap", "cache": {"enabld": true}, "phases": [{"name": "run", "mix": {"get": 1}, "ops_per_task": 1}]}`,
		"combine":   `{"structure": "hashmap", "combine": {"enbaled": true}, "phases": [{"name": "run", "mix": {"get": 1}, "ops_per_task": 1}]}`,
		"rebalance": `{"structure": "hashmap", "rebalance": {"ratioo": 2}, "phases": [{"name": "run", "mix": {"get": 1}, "ops_per_task": 1}]}`,
		"trace":     `{"structure": "hashmap", "trace": {"sample_rte": 8}, "phases": [{"name": "run", "mix": {"get": 1}, "ops_per_task": 1}]}`,
	}
	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "nested.json")
			if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadSpec(path); err == nil {
				t.Fatal("unknown nested field accepted")
			}
		})
	}
}

func TestValidateCache(t *testing.T) {
	s := validSpec()
	s.Cache = &CacheSpec{Enabled: true}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("cached hashmap spec rejected: %v", err)
	}
	if s.Cache.Slots != 256 {
		t.Fatalf("default cache slots = %d, want 256", s.Cache.Slots)
	}
	q := validSpec()
	q.Structure = StructureQueue
	q.Phases = []Phase{{Name: "run", Mix: Mix{Enqueue: 1}, OpsPerTask: 10}}
	q.Cache = &CacheSpec{Enabled: true}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "cache") {
		t.Fatalf("cache on queue accepted (err=%v)", err)
	}
	bad := validSpec()
	bad.Cache = &CacheSpec{Enabled: true, Slots: -1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Fatalf("negative cache slots accepted (err=%v)", err)
	}
}

func TestValidateCombine(t *testing.T) {
	s := validSpec()
	s.Combine = &CombineSpec{Enabled: true}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("combined hashmap spec rejected: %v", err)
	}
	q := validSpec()
	q.Structure = StructureQueue
	q.Phases = []Phase{{Name: "run", Mix: Mix{Enqueue: 1}, OpsPerTask: 10}}
	q.Combine = &CombineSpec{Enabled: true}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "combine") {
		t.Fatalf("combine on queue accepted (err=%v)", err)
	}
	both := validSpec()
	both.Cache = &CacheSpec{Enabled: true, Slots: 16}
	both.Combine = &CombineSpec{Enabled: true}
	if err := both.Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("cache+combine accepted (err=%v)", err)
	}
	// A disabled combine spec is inert: legal anywhere, cache included.
	both.Combine = &CombineSpec{Enabled: false}
	if err := both.WithDefaults().Validate(); err != nil {
		t.Fatalf("disabled combine rejected: %v", err)
	}
}

func TestValidateRebalance(t *testing.T) {
	s := validSpec()
	s.Rebalance = &RebalanceSpec{Enabled: true}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("rebalanced hashmap spec rejected: %v", err)
	}
	if s.Rebalance.Ratio != 2 || s.Rebalance.IntervalMS != 2 || s.Rebalance.MaxMoves != 4 || s.Rebalance.Cooldown != 1 {
		t.Fatalf("rebalance defaults = %+v", s.Rebalance)
	}
	q := validSpec()
	q.Structure = StructureQueue
	q.Phases = []Phase{{Name: "run", Mix: Mix{Enqueue: 1}, OpsPerTask: 10}}
	q.Rebalance = &RebalanceSpec{Enabled: true}
	if err := q.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "rebalance") {
		t.Fatalf("rebalance on queue accepted (err=%v)", err)
	}
	both := validSpec()
	both.Cache = &CacheSpec{Enabled: true, Slots: 16}
	both.Rebalance = &RebalanceSpec{Enabled: true}
	if err := both.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("cache+rebalance accepted (err=%v)", err)
	}
	// The imbalance trigger must exceed 1: a ratio at or below the mean
	// would fire on perfectly balanced traffic.
	bad := validSpec()
	bad.Rebalance = &RebalanceSpec{Enabled: true, Ratio: 1}
	if err := bad.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "ratio") {
		t.Fatalf("ratio 1 accepted (err=%v)", err)
	}
	neg := validSpec()
	neg.Rebalance = &RebalanceSpec{Enabled: true, IntervalMS: -1}
	if err := neg.WithDefaults().Validate(); err == nil || !strings.Contains(err.Error(), "rebalance") {
		t.Fatalf("negative interval accepted (err=%v)", err)
	}
	// Composable with combine; disabled rebalance is inert anywhere.
	combo := validSpec()
	combo.Combine = &CombineSpec{Enabled: true}
	combo.Rebalance = &RebalanceSpec{Enabled: true}
	if err := combo.WithDefaults().Validate(); err != nil {
		t.Fatalf("combine+rebalance rejected: %v", err)
	}
	off := validSpec()
	off.Cache = &CacheSpec{Enabled: true, Slots: 16}
	off.Rebalance = &RebalanceSpec{Enabled: false}
	if err := off.WithDefaults().Validate(); err != nil {
		t.Fatalf("disabled rebalance rejected: %v", err)
	}
}

func TestValidateTrace(t *testing.T) {
	s := validSpec()
	s.Trace = &TraceSpec{Enabled: true}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("traced spec rejected: %v", err)
	}
	if s.Trace.SampleRate != 64 || s.Trace.BufferSize != 16384 {
		t.Fatalf("trace defaults = %+v, want sample 64 buffer 16384", s.Trace)
	}
	// A disabled trace spec stays untouched by WithDefaults: it must
	// serialize back exactly as written.
	off := validSpec()
	off.Trace = &TraceSpec{Enabled: false}
	if d := off.WithDefaults(); d.Trace.SampleRate != 0 || d.Trace.BufferSize != 0 {
		t.Fatalf("disabled trace gained defaults: %+v", d.Trace)
	}
	bad := validSpec()
	bad.Trace = &TraceSpec{Enabled: true, SampleRate: -1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "sample_rate") {
		t.Fatalf("negative sample rate accepted (err=%v)", err)
	}
	bad = validSpec()
	bad.Trace = &TraceSpec{Enabled: true, BufferSize: -1}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "buffer_size") {
		t.Fatalf("negative buffer accepted (err=%v)", err)
	}
	bad = validSpec()
	bad.Trace = &TraceSpec{Enabled: true, BufferSize: 1 << 25}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "buffer_size") {
		t.Fatalf("oversized buffer accepted (err=%v)", err)
	}
}

func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(`{"structure": "queue", "lcoales": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// The fault plan's validation surface: every malformed crash or
// partition is rejected with a message naming the offending knob, and
// the legal shapes (boundary failover, mid-phase crash outside churn,
// partitions between live locales) pass.
func TestValidateFaultPlan(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"crash locale zero", func(s *Spec) {
			s.Faults.Crashes = []CrashSpec{{Locale: 0, Phase: 0}}
		}, "cannot crash"},
		{"crash locale out of range", func(s *Spec) {
			s.Faults.Crashes = []CrashSpec{{Locale: 99, Phase: 0}}
		}, "out of range"},
		{"crash phase out of range", func(s *Spec) {
			s.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 7}}
		}, "phase 7 out of range"},
		{"negative after_ops", func(s *Spec) {
			s.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 0, AfterOps: -5}}
		}, "after_ops"},
		{"mid-phase crash in churn", func(s *Spec) {
			s.Phases[1].Churn = true
			s.Phases[1].Rounds = 2
			s.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 1, AfterOps: 10}}
		}, "churn"},
		{"failover on skiplist", func(s *Spec) {
			s.Structure = StructureSkiplist
			s.Phases = []Phase{{Name: "run", Mix: Mix{Insert: 1}, OpsPerTask: 10}}
			s.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 0, Failover: true}}
		}, "hashmap, queue and stack"},
		{"failover with cache", func(s *Spec) {
			s.Cache = &CacheSpec{Enabled: true, Slots: 16}
			s.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 0, Failover: true}}
		}, "mutually exclusive"},
		{"partition out of range", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 0, B: 64}}
		}, "out of range"},
		{"partition self-pair", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 2, B: 2}}
		}, "itself"},
		{"partition phase out of range", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, Phase: 9}}
		}, "phase 9 out of range"},
		{"partition negative at_ops", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, AtOps: -1}}
		}, "at_ops"},
		{"mid-phase sever in churn", func(s *Spec) {
			s.Phases[1].Churn = true
			s.Phases[1].Rounds = 2
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, Phase: 1, AtOps: 10}}
		}, "churn"},
		{"heal before sever", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, Phase: 1, HealPhase: 1}}
		}, "not after its sever"},
		{"heal phase out of range", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, Phase: 0, HealPhase: 9}}
		}, "heal_phase 9 out of range"},
		{"both heal clocks", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, Phase: 0, HealPhase: 1, HealAfterMS: 5}}
		}, "one heal clock"},
		{"negative heal_after_ms", func(s *Spec) {
			s.Faults.Partitions = []PartitionSpec{{A: 1, B: 2, HealAfterMS: -1}}
		}, "heal_after_ms"},
		{"negative retry deadline", func(s *Spec) {
			s.Faults.Retry = &RetrySpec{DeadlineMS: -1}
		}, "deadline_ms"},
		{"negative retry capacity", func(s *Spec) {
			s.Faults.Retry = &RetrySpec{Capacity: -1}
		}, "capacity"},
		{"disabled retry with knobs", func(s *Spec) {
			s.Faults.Retry = &RetrySpec{Disabled: true, DeadlineMS: 10}
		}, "disabled"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}

	// The legal shapes pass: a boundary failover crash, a mid-phase
	// crash in a non-churn phase, and a partition lifecycle — boundary
	// sever healed at a later phase boundary, mid-phase sever healed on
	// the wall clock, a pair that never heals — with a tuned retry
	// plane.
	ok := validSpec()
	ok.Faults = Faults{
		Crashes: []CrashSpec{{Locale: 1, Phase: 1, Failover: true}, {Locale: 2, Phase: 0, AfterOps: 5}},
		Partitions: []PartitionSpec{
			{A: 1, B: 3, Phase: 0, HealPhase: 1},
			{A: 0, B: 2, Phase: 0, AtOps: 5, HealAfterMS: 2},
			{A: 2, B: 3, Phase: 1},
		},
		Retry: &RetrySpec{DeadlineMS: 100, Capacity: 64},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("legal fault plan rejected: %v", err)
	}
	if !ok.hasFailover() {
		t.Fatal("hasFailover missed the failover crash")
	}
	if validSpec().hasFailover() {
		t.Fatal("hasFailover on a crash-free spec")
	}

	// Queue and stack crash failover are legal shapes now too.
	for _, st := range []Structure{StructureQueue, StructureStack} {
		q := validSpec()
		q.Structure = st
		q.Phases = []Phase{{Name: "run", Mix: Mix{Enqueue: 1}, OpsPerTask: 10}}
		q.Faults.Crashes = []CrashSpec{{Locale: 1, Phase: 0, Failover: true}}
		if err := q.Validate(); err != nil {
			t.Fatalf("failover on %s rejected: %v", st, err)
		}
	}
}

// The fault plan survives the JSON round trip exactly, and a spec with
// no faults serializes without the keys at all.
func TestFaultPlanJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Faults = Faults{
		Crashes:    []CrashSpec{{Locale: 2, Phase: 1, AfterOps: 100, Failover: true}},
		Partitions: []PartitionSpec{{A: 1, B: 3, Phase: 1, AtOps: 25, HealAfterMS: 2.5}},
		Retry:      &RetrySpec{DeadlineMS: 500, Capacity: 1024},
	}
	path := filepath.Join(t.TempDir(), "faults.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Faults, s.Faults) {
		t.Fatalf("fault plan drifted:\n got %+v\nwant %+v", back.Faults, s.Faults)
	}

	var buf strings.Builder
	if err := validSpec().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"\"crashes\"", "\"partitions\"", "\"retry\""} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("fault-free spec serialized %s:\n%s", key, buf.String())
		}
	}

	// A typo'd crash knob fails loudly (strict nested parsing).
	bad := filepath.Join(t.TempDir(), "typo.json")
	raw := `{"structure": "hashmap", "faults": {"crashes": [{"lcoale": 1}]}, "phases": [{"name": "run", "mix": {"get": 1}, "ops_per_task": 1}]}`
	if err := os.WriteFile(bad, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(bad); err == nil {
		t.Fatal("unknown crash field accepted")
	}
}

func TestFaultsPerturbation(t *testing.T) {
	p := Faults{SlowFactor: 6, SlowLocale: 2}.perturbation(4)
	if got := p.ScaleFor(2); got != 6 {
		t.Fatalf("slow locale scale = %v, want 6", got)
	}
	if got := p.ScaleFor(0); got != 1 {
		t.Fatalf("nominal locale scale = %v, want 1", got)
	}
	// Explicit scales override the slow-locale shorthand.
	p = Faults{SlowFactor: 6, SlowLocale: 2, Scales: []float64{1, 9}}.perturbation(4)
	if p.ScaleFor(1) != 9 || p.ScaleFor(2) != 1 {
		t.Fatalf("explicit scales not honoured: %+v", p)
	}
	if (Faults{}).perturbation(4).Enabled() {
		t.Fatal("empty fault plan must be disabled")
	}
	// Partitions are schedule-driven now: the boot perturbation must NOT
	// pre-sever the pair — the engine severs it at its scheduled phase.
	p = Faults{Partitions: []PartitionSpec{{A: 1, B: 3, Phase: 1}}}.perturbation(4)
	if p.Enabled() {
		t.Fatal("scheduled partitions must not lower into the boot perturbation")
	}
	if !p.Reachable(1, 3) || !p.Deliverable(3, 1) {
		t.Fatal("pair refused before its scheduled sever")
	}
}

// parkConfig lowers the retry knobs into the comm plane's units.
func TestRetrySpecParkConfig(t *testing.T) {
	// No Retry block: the defaults apply, plane enabled.
	pc := (Faults{}).parkConfig()
	if pc.Disable {
		t.Fatal("retry plane disabled by default")
	}
	pc = Faults{Retry: &RetrySpec{Disabled: true}}.parkConfig()
	if !pc.Disable {
		t.Fatal("retry.disabled did not lower to ParkConfig.Disable")
	}
	pc = Faults{Retry: &RetrySpec{DeadlineMS: 500, Capacity: 1024}}.parkConfig()
	if pc.DeadlineNS != 500_000_000 {
		t.Fatalf("deadline_ms 500 lowered to %d ns, want 500000000", pc.DeadlineNS)
	}
	if pc.Capacity != 1024 {
		t.Fatalf("capacity lowered to %d, want 1024", pc.Capacity)
	}
	// Fractional milliseconds survive the unit change.
	pc = Faults{Retry: &RetrySpec{DeadlineMS: 0.5}}.parkConfig()
	if pc.DeadlineNS != 500_000 {
		t.Fatalf("deadline_ms 0.5 lowered to %d ns, want 500000", pc.DeadlineNS)
	}
}
