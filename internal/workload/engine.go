package workload

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/bench"
	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/trace"
)

// Run executes a scenario on a fresh simulated System and returns its
// Report. progress, when non-nil, receives one line per completed
// phase. The System is built from the spec — locales, backend,
// latency profile (LatencyScale × the calibrated default) and the
// fault-injection perturbation — and torn down before Run returns.
func Run(spec Spec, progress io.Writer) (*Report, error) {
	return RunLive(spec, progress, nil)
}

// RunLive is Run with a live telemetry bridge: when tel is non-nil the
// run attaches its System and trace recorder to it for the duration,
// so a telemetry.Server built from tel.Options() serves the run's
// counters, latency percentiles, trace windows and fault control while
// the scenario executes.
func RunLive(spec Spec, progress io.Writer, tel *Telemetry) (*Report, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	backend, err := comm.ParseBackend(spec.Backend)
	if err != nil {
		return nil, err
	}
	var latency comm.LatencyProfile
	if spec.LatencyScale > 0 {
		latency = comm.DefaultProfile().Scale(spec.LatencyScale)
	}
	var tracer *trace.Recorder
	if spec.Trace != nil && spec.Trace.Enabled {
		tracer = trace.NewRecorder(spec.Locales, trace.Config{
			BufferSize: spec.Trace.BufferSize,
			SampleRate: spec.Trace.SampleRate,
		})
	}
	sys := pgas.NewSystem(pgas.Config{
		Locales: spec.Locales,
		Backend: backend,
		Latency: latency,
		Perturb: spec.Faults.perturbation(spec.Locales),
		Seed:    spec.Seed,
		Agg:     comm.AggConfig{Combine: spec.Combine != nil && spec.Combine.Enabled},
		Park:    spec.Faults.parkConfig(),
		Tracer:  tracer,
	})
	defer sys.Shutdown()
	if tel != nil {
		tel.attach(spec.Name, sys, tracer)
		defer tel.detach()
	}
	c0 := sys.Ctx(0)

	em := epoch.NewEpochManager(c0)
	drv, err := NewDriver(spec.Structure)
	if err != nil {
		return nil, err
	}
	drv.Setup(c0, em, spec)

	// The Zipfian generator's construction is an O(keyspace) zeta sum;
	// (keyspace, theta) are spec-level, so build it once and share it
	// across phases and tasks (immutable after construction).
	var zipf *zipfGen
	if spec.Dist.Kind == DistZipfian {
		zipf = newZipfGen(spec.Keyspace, spec.Dist.Theta)
	}

	var avail *AvailabilityReport
	if len(spec.Faults.Crashes) > 0 || len(spec.Faults.Partitions) > 0 {
		avail = &AvailabilityReport{Recovered: true}
	}
	pp := newPartitionPlan(sys, spec.Faults.Partitions, avail)

	rep := &Report{Spec: spec}
	for pi, ph := range spec.Phases {
		// Boundary faults land before the phase spawns its workers, so a
		// seeded run with the same fault schedule replays exactly: first
		// the partition plan's phase events (heals, then severs), then the
		// boundary crashes. Mid-phase faults (AfterOps/AtOps > 0) are
		// handed to runPhase, which applies them from a monitor while the
		// workers run.
		if pp != nil {
			pp.phaseStart(pi)
		}
		var mid []CrashSpec
		for _, cr := range spec.Faults.Crashes {
			if cr.Phase != pi {
				continue
			}
			if cr.AfterOps > 0 {
				mid = append(mid, cr)
			} else {
				applyCrash(sys, c0, em, drv, spec, cr, avail, nil)
			}
		}
		pr := runPhase(sys, c0, em, drv, spec, pi, ph, zipf, tel, mid, pp, avail)
		rep.Phases = append(rep.Phases, pr)
		rep.TotalOps += pr.Ops
		rep.TotalSeconds += pr.Seconds
		if progress != nil {
			fmt.Fprintf(progress, "workload %s/%s: %d ops in %.2fs (%.0f ops/s)\n",
				spec.Name, pr.Name, pr.Ops, pr.Seconds, pr.Throughput)
		}
	}

	// Settle the retry plane before the final books: cancel pending
	// wall-clock heals, then run the final redeliver-or-expire pass so
	// OpsParked == OpsRedelivered + OpsExpired holds on every report.
	pp.stop()
	sys.DrainParking()

	// Final teardown: reclaim everything still deferred so the heap
	// and epoch verdicts reflect leaks, not pending reclamation.
	em.Clear(c0)
	h := sys.HeapStats()
	rep.Heap = HeapReport{
		Live: h.Live, Allocs: h.Allocs, Frees: h.Frees,
		UAFLoads: h.UAFLoads, UAFStores: h.UAFStores, UAFFrees: h.UAFFrees,
	}
	est := em.Stats(c0)
	rep.Epoch = EpochReport{Deferred: est.Deferred, Reclaimed: est.Reclaimed, Advances: est.Advances, AdvanceFail: est.AdvanceFail}
	if avail != nil {
		snap := sys.Counters().Snapshot()
		avail.OpsLost = snap.OpsLost
		avail.OpsParked = snap.OpsParked
		avail.OpsRedelivered = snap.OpsRedelivered
		avail.OpsExpired = snap.OpsExpired
		rep.Availability = avail
	}
	if tracer != nil {
		rep.Trace, rep.TraceEvents = drainTrace(sys, tracer)
	}
	return rep, nil
}

// applyCrash kills one locale and, when asked, recovers from it. The
// sequence models a fail-stop node loss:
//
//  1. Strand the pins the dead locale's tasks would have held: the
//     simulator cannot kill goroutines mid-operation, so one pinned
//     token per task is registered on the locale just before it goes
//     down. These are the pins that wedge every later epoch advance
//     unless force-retired.
//  2. Mark the locale dead (System.Crash): from here every op whose
//     destination is the dead locale is refused into the OpsLost
//     ledger, and the engine stops spawning its workers.
//  3. When the crash asks for failover: adopt its shards onto the
//     survivors through the driver's FailoverHandler, then force-
//     retire the stranded tokens and drain the dead locale's limbo —
//     both from a salvage context, the recovery plane's exemption from
//     refusal (the shared-storage conceit). The wall time of this step
//     is the crash's time-to-recover.
//
// Idempotent per locale: a second crash of an already-dead locale is a
// no-op that records nothing.
//
// live, when non-nil, holds the phase's per-locale running-task counts:
// a mid-phase crash waits for the dead locale's tasks to observe the
// crash and abandon (they poll Alive every 16 ops) before force-
// retiring, because clearing a pin a still-draining task holds live
// would break the grace period that pin guarantees. Boundary crashes
// pass nil — no tasks are running between phases.
func applyCrash(sys *pgas.System, c0 *pgas.Ctx, em epoch.EpochManager, drv Driver, spec Spec, cr CrashSpec, avail *AvailabilityReport, live []atomic.Int64) {
	if !sys.Alive(cr.Locale) {
		return
	}
	c0.On(cr.Locale, func(lc *pgas.Ctx) {
		for t := 0; t < spec.TasksPerLocale; t++ {
			em.Pin(lc)
		}
	})
	if err := sys.Crash(cr.Locale); err != nil {
		// Validate bounds crash locales; reaching here means the spec
		// bypassed validation, which the run should surface, not hide.
		panic(err)
	}
	avail.Crashes++
	if !cr.Failover {
		avail.Recovered = false
		return
	}
	fh, ok := drv.(FailoverHandler)
	if !ok {
		avail.Recovered = false
		return
	}
	if live != nil {
		for live[cr.Locale].Load() > 0 {
			time.Sleep(10 * time.Microsecond)
		}
	}
	t0 := time.Now()
	sc := c0.Salvage()
	shards, bytes := fh.Failover(sc, cr.Locale)
	tokens := em.ForceRetire(sc, cr.Locale)
	sc.Flush()
	avail.ShardsAdopted += shards
	avail.BytesAdopted += bytes
	avail.TokensForceRetired += tokens
	avail.RecoverNS += time.Since(t0).Nanoseconds()
	if shards == 0 && bytes == 0 && tokens == 0 {
		// Nothing was adopted or retired: the driver had no owner-table
		// view (or the locale owned nothing and ran no tasks, which the
		// engine's own pins make impossible). Either way the crash was
		// not recovered from.
		avail.Recovered = false
	}
}

// drainTrace quiesces the system, drains whatever the live window left
// buffered, and reduces the recorder's books into the report verdict.
// Span counts come from the books — recording decisions, exact even
// under ring drops or concurrent HTTP window drains — so Balanced is a
// hard invariant of a quiesced run, and the migrate span count must
// equal the comm plane's MigAdopted total.
func drainTrace(sys *pgas.System, tracer *trace.Recorder) (*TraceReport, []trace.Event) {
	sys.Quiesce()
	events := tracer.Drain(0)
	books := tracer.Books()
	tr := &TraceReport{
		SampleRate: int(tracer.SampleRate()),
		Events:     len(events),
		Dropped:    tracer.Dropped(),
		Spans:      make(map[string]int64),
		Instants:   make(map[string]int64),
		Balanced:   trace.BooksBalanced(books),
	}
	for _, b := range books {
		if b.Begins > 0 {
			tr.Spans[b.Kind] = b.Begins
		}
		if b.Instants > 0 {
			tr.Instants[b.Kind] = b.Instants
		}
	}
	return tr, events
}

// runPhase executes one phase (all rounds) and assembles its report.
// mid holds the phase's mid-phase crashes (AfterOps > 0) and pp the
// partition plan (mid-phase severs, AtOps > 0): a monitor applies each
// once the phase's tasks have issued that many ops.
func runPhase(sys *pgas.System, c0 *pgas.Ctx, em epoch.EpochManager, drv Driver, spec Spec, phaseIdx int, ph Phase, zipf *zipfGen, tel *Telemetry, mid []CrashSpec, pp *partitionPlan, avail *AvailabilityReport) PhaseReport {
	workers := spec.Locales * spec.TasksPerLocale
	hists := make([]*bench.Histogram, workers)
	for i := range hists {
		hists[i] = &bench.Histogram{}
	}
	counts := make([]atomic.Int64, numOps)
	liveTasks := make([]atomic.Int64, spec.Locales)
	var digest atomic.Uint64

	before := sys.Counters().Snapshot()
	beforeM := sys.Matrix().Snapshot()
	start := time.Now()

	// Mid-phase fault monitor: polls the phase's issued-op total and
	// applies each pending crash (AfterOps) and sever (AtOps) the first
	// time the total reaches its mark. It owns its Ctx (contexts are
	// single-goroutine) and runs across rounds — Validate already rejects
	// mid-phase faults in churn phases, so it can never race
	// Destroy/Setup.
	var crashStop chan struct{}
	var crashWG sync.WaitGroup
	if len(mid) > 0 || pp.hasMidSevers(phaseIdx) {
		crashStop = make(chan struct{})
		pending := append([]CrashSpec(nil), mid...)
		crashWG.Add(1)
		go func() {
			defer crashWG.Done()
			mc := sys.Ctx(0)
			ticker := time.NewTicker(200 * time.Microsecond)
			defer ticker.Stop()
			seversDone := false
			for len(pending) > 0 || !seversDone {
				select {
				case <-crashStop:
					return
				case <-ticker.C:
					var issued int64
					for k := range counts {
						issued += counts[k].Load()
					}
					rest := pending[:0]
					for _, cr := range pending {
						if issued >= cr.AfterOps {
							applyCrash(sys, mc, em, drv, spec, cr, avail, liveTasks)
						} else {
							rest = append(rest, cr)
						}
					}
					pending = rest
					seversDone = pp.applyMidSevers(phaseIdx, issued)
				}
			}
		}()
	}

	for round := 0; round < ph.rounds(); round++ {
		// Drivers with a periodic control loop (rebalancing) get one
		// ticker task per round, on its own context, stopped before any
		// churn teardown so the loop never races Destroy/Setup.
		var tickStop chan struct{}
		var tickWG sync.WaitGroup
		if tk, ok := drv.(Ticker); ok && tk.TickInterval() > 0 {
			tickStop = make(chan struct{})
			tickWG.Add(1)
			go func() {
				defer tickWG.Done()
				tc := sys.Ctx(0)
				ticker := time.NewTicker(tk.TickInterval())
				defer ticker.Stop()
				for {
					select {
					case <-tickStop:
						return
					case <-ticker.C:
						tk.Tick(tc)
					}
				}
			}()
		}
		var wg sync.WaitGroup
		for loc := 0; loc < spec.Locales; loc++ {
			for t := 0; t < spec.TasksPerLocale; t++ {
				if !sys.Alive(loc) {
					// A dead locale spawns nothing; its closed-loop budget
					// for this round is lost by definition and goes into
					// the ledger so availability accounting stays exact.
					if ph.OpsPerTask > 0 {
						sys.Counters().IncOpsLost(loc, int64(ph.OpsPerTask))
					}
					continue
				}
				liveTasks[loc].Add(1)
				wg.Add(1)
				go func(loc, t int) {
					defer wg.Done()
					defer liveTasks[loc].Add(-1)
					runTask(sys, em, drv, spec, phaseIdx, round, loc, t, ph, zipf,
						hists[loc*spec.TasksPerLocale+t], counts, &digest, tel)
				}(loc, t)
			}
		}
		wg.Wait()
		if tickStop != nil {
			close(tickStop)
			tickWG.Wait()
			// A stale routed write the last windows re-routed may still
			// be an async task in flight; quiesce before judging the
			// round or tearing anything down.
			c0.Flush()
		}
		if ph.Churn && round != ph.rounds()-1 {
			// Between rounds: settle the retry ledgers first — a parked op
			// redelivered after Destroy would execute against a torn-down
			// structure — then reclaim the deferred set, tear the
			// structure down (registry slots recycle), rebuild. Ops still
			// severed at the teardown expire (settled, never replayed into
			// the wrong incarnation).
			sys.DrainParking()
			em.Clear(c0)
			drv.Destroy(c0)
			drv.Setup(c0, em, spec)
		}
	}
	if crashStop != nil {
		close(crashStop)
		crashWG.Wait()
	}
	seconds := time.Since(start).Seconds()

	merged := &bench.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	byKind := make(map[string]int64)
	var ops int64
	for k := range counts {
		if n := counts[k].Load(); n > 0 {
			byKind[OpKind(k).String()] = n
			ops += n
		}
	}
	snap := sys.Counters().Snapshot().Sub(before)
	matrix := bench.SubMatrix(sys.Matrix().Snapshot(), beforeM)
	throughput := 0.0
	if seconds > 0 {
		throughput = float64(ops) / seconds
	}
	return PhaseReport{
		Name:       ph.Name,
		Rounds:     ph.rounds(),
		Ops:        ops,
		OpsByKind:  byKind,
		Seconds:    seconds,
		Throughput: throughput,
		Latency:    merged.Summary(),
		Comm:       snap,
		RemoteOps:  snap.Remote(),
		Matrix:     matrix,
		MaxInbound: bench.MaxInboundOf(matrix),
		Digest:     digest.Load(),
	}
}

// runTask is one worker task of one phase round: it draws ops from its
// private stream and applies them through the driver, recording wall
// latency per op.
func runTask(sys *pgas.System, em epoch.EpochManager, drv Driver, spec Spec,
	phaseIdx, round, loc, task int, ph Phase, zipf *zipfGen,
	hist *bench.Histogram, counts []atomic.Int64, digest *atomic.Uint64, tel *Telemetry) {

	// Live telemetry rides in batches: samples accumulate in a private
	// chunk and merge into the bridge every liveChunkSize ops, so the
	// worker never takes the bridge mutex on the per-op path.
	var live *liveChunk
	if tel != nil {
		live = tel.newChunk()
		defer live.flush()
	}

	c := sys.Ctx(loc)
	tok := em.Register(c)
	st := NewStream(spec.Seed, phaseIdx, round, loc, task, spec.Keyspace, spec.Dist, ph.Mix, zipf)

	var deadline time.Time
	if ph.Seconds > 0 {
		deadline = time.Now().Add(time.Duration(ph.Seconds * float64(time.Second)))
	}
	var interval time.Duration
	var next time.Time
	if ph.TargetRate > 0 {
		interval = time.Duration(float64(time.Second) / ph.TargetRate)
		next = time.Now()
	}
	var sum uint64
	for i := 0; ; i++ {
		if ph.OpsPerTask > 0 {
			if i >= ph.OpsPerTask {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		// Fail-stop: a task dies with its locale — it abandons its
		// remaining budget to the ledger and exits without flushing its
		// buffers (lost with the node) or unregistering its token (no
		// one survives to do it; the engine's stranded pins, not this
		// quiescent token, are what force-retire clears). Checked every
		// 16 ops: a mid-phase crash already lands at a racing op count.
		if i&15 == 0 && !sys.Alive(loc) {
			if ph.OpsPerTask > 0 {
				sys.Counters().IncOpsLost(loc, int64(ph.OpsPerTask-i))
			}
			return
		}
		if ph.TargetRate > 0 {
			// Open-loop pacing: hold the issue schedule. Missed slots
			// are forgiven (the schedule re-anchors at now), so a stall
			// is followed by the steady rate, not a catch-up burst.
			now := time.Now()
			if now.Before(next) {
				time.Sleep(next.Sub(now))
				next = next.Add(interval)
			} else {
				next = now.Add(interval)
			}
		}
		kind := st.NextOp()
		if kind == OpBulk {
			keys := st.NextKeys(ph.bulkSize())
			owner := int(st.next() % uint64(spec.Locales))
			t0 := time.Now()
			drv.ApplyBulk(c, owner, keys)
			ns := time.Since(t0).Nanoseconds()
			hist.Record(ns)
			if live != nil {
				live.record(ns)
			}
			for _, k := range keys {
				sum += opDigest(kind, k)
			}
		} else {
			key := st.NextKey()
			t0 := time.Now()
			drv.Apply(c, tok, kind, key)
			ns := time.Since(t0).Nanoseconds()
			hist.Record(ns)
			if live != nil {
				live.record(ns)
			}
			sum += opDigest(kind, key)
		}
		counts[kind].Add(1)
		if ph.ReclaimEvery > 0 && (i+1)%ph.ReclaimEvery == 0 {
			tok.TryReclaim(c)
		}
	}
	// Ship anything still sitting in this task's aggregation buffers
	// (bulk routing) before the round joins.
	c.Flush()
	digest.Add(sum)
	tok.Unregister(c)
}
