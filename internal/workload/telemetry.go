package workload

import (
	"fmt"
	"sync"
	"time"

	"gopgas/internal/bench"
	"gopgas/internal/comm"
	"gopgas/internal/pgas"
	"gopgas/internal/telemetry"
	"gopgas/internal/trace"
)

// Telemetry bridges a running scenario to the telemetry HTTP server:
// the engine attaches the live System and trace recorder for each run
// (RunLive), worker tasks stream latency samples into a merged live
// histogram, and Options lowers everything into the provider functions
// telemetry.Start serves. One Telemetry outlives many runs — cmd/soak
// attaches it to each scenario in turn while the server stays up.
type Telemetry struct {
	start time.Time

	mu       sync.Mutex
	scenario string
	sys      *pgas.System
	tracer   *trace.Recorder
	hist     bench.Histogram
	ops      int64
}

// NewTelemetry creates an empty bridge; pass it to RunLive and serve
// Options() via telemetry.Start.
func NewTelemetry() *Telemetry { return &Telemetry{start: time.Now()} }

// attach points the bridge at a freshly built System (engine-internal).
// The live histogram restarts with the run.
func (t *Telemetry) attach(scenario string, sys *pgas.System, tracer *trace.Recorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scenario = scenario
	t.sys = sys
	t.tracer = tracer
	t.hist = bench.Histogram{}
	t.ops = 0
}

// detach clears the live System before it shuts down; the endpoints
// report unattached (empty) payloads until the next run attaches.
func (t *Telemetry) detach() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sys = nil
	t.tracer = nil
}

// liveChunkSize is how many latency samples a worker batches before
// taking the bridge mutex — big enough that live telemetry costs the
// workers one uncontended merge per few hundred ops, small enough that
// /api/hist lags the run by well under a second.
const liveChunkSize = 256

// liveChunk is one worker's latency batch toward the bridge.
type liveChunk struct {
	tel  *Telemetry
	hist bench.Histogram
	n    int
}

func (t *Telemetry) newChunk() *liveChunk { return &liveChunk{tel: t} }

func (lc *liveChunk) record(ns int64) {
	lc.hist.Record(ns)
	if lc.n++; lc.n >= liveChunkSize {
		lc.flush()
	}
}

func (lc *liveChunk) flush() {
	if lc.n == 0 {
		return
	}
	lc.tel.mu.Lock()
	lc.tel.hist.Merge(&lc.hist)
	lc.tel.ops += int64(lc.n)
	lc.tel.mu.Unlock()
	lc.hist = bench.Histogram{}
	lc.n = 0
}

// LiveStatus is the /api/status payload.
type LiveStatus struct {
	Scenario      string         `json:"scenario"`
	Running       bool           `json:"running"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Ops           int64          `json:"ops"`
	AsyncPending  int64          `json:"async_pending"`
	Comm          *comm.Snapshot `json:"comm,omitempty"`
	TraceDropped  int64          `json:"trace_dropped"`
}

// Options lowers the bridge into telemetry provider functions. Every
// provider tolerates the unattached state (between runs): it reports
// empty data rather than erroring, so the server survives scenario
// boundaries.
func (t *Telemetry) Options() telemetry.Options {
	return telemetry.Options{
		Status: func() any {
			t.mu.Lock()
			defer t.mu.Unlock()
			st := LiveStatus{
				Scenario:      t.scenario,
				Running:       t.sys != nil,
				UptimeSeconds: time.Since(t.start).Seconds(),
				Ops:           t.ops,
			}
			if t.sys != nil {
				snap := t.sys.Counters().Snapshot()
				st.Comm = &snap
				st.AsyncPending = t.sys.AsyncPending()
			}
			if t.tracer != nil {
				st.TraceDropped = t.tracer.Dropped()
			}
			return st
		},
		Matrix: func() [][]int64 {
			t.mu.Lock()
			sys := t.sys
			t.mu.Unlock()
			if sys == nil {
				return nil
			}
			return sys.Matrix().Snapshot()
		},
		Hist: func() bench.LatencySummary {
			t.mu.Lock()
			defer t.mu.Unlock()
			return t.hist.Summary()
		},
		Trace: func(max int) []trace.Event {
			t.mu.Lock()
			tr := t.tracer
			t.mu.Unlock()
			if tr == nil {
				return nil
			}
			return tr.Drain(max)
		},
		Fault: func(req telemetry.FaultRequest) error {
			t.mu.Lock()
			sys := t.sys
			t.mu.Unlock()
			if sys == nil {
				return fmt.Errorf("workload: no scenario is running")
			}
			// Latency forms replace only the Scales half: a crashed
			// locale stays crashed (clearing latency faults must not
			// resurrect a node whose shards were already adopted).
			p := sys.Perturbation()
			switch {
			case req.Crash:
				// Comm-plane only: the locale stops answering and its
				// budget drains to the lost-ops ledger, but no failover
				// runs — recovery is the spec-scheduled crash's job.
				return sys.Crash(req.CrashLocale)
			case req.Sever:
				return sys.Sever(req.SeverA, req.SeverB)
			case req.Heal:
				// Heal pumps the retry ledgers synchronously; a pair that
				// is not currently severed errors into the 422 path.
				return sys.Heal(req.HealA, req.HealB)
			case req.Clear:
				p.Scales = nil
				sys.SetPerturbation(p)
			case len(req.Scales) > 0:
				p.Scales = req.Scales
				sys.SetPerturbation(p)
			case req.SlowFactor > 0:
				if req.SlowLocale < 0 || req.SlowLocale >= sys.NumLocales() {
					return fmt.Errorf("workload: slow_locale %d out of range [0, %d)",
						req.SlowLocale, sys.NumLocales())
				}
				p.Scales = comm.SlowLocale(sys.NumLocales(), req.SlowLocale, req.SlowFactor).Scales
				sys.SetPerturbation(p)
			default:
				return fmt.Errorf("workload: fault request needs crash, sever, heal, clear, scales, or slow_factor")
			}
			return nil
		},
	}
}
