package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"gopgas/internal/bench"
	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

// Report is the machine-readable record of one scenario run: the spec
// that produced it (with defaults applied), one entry per phase, and
// the end-of-run heap safety verdict. It serializes as JSON — the
// artifact CI uploads and the BENCH_* trajectory tracks.
type Report struct {
	Spec   Spec          `json:"spec"`
	Phases []PhaseReport `json:"phases"`

	TotalOps     int64   `json:"total_ops"`
	TotalSeconds float64 `json:"total_seconds"`

	Heap  HeapReport  `json:"heap"`
	Epoch EpochReport `json:"epoch"`

	// Availability is present when the spec scheduled crashes: the
	// lost-ops ledger, the failover work performed, and the recovery
	// cost.
	Availability *AvailabilityReport `json:"availability,omitempty"`

	// Trace is present when the spec enabled tracing: the recorder's
	// end-of-run accounting plus per-kind span counts.
	Trace *TraceReport `json:"trace,omitempty"`

	// TraceEvents holds the drained events for exporters (loadgen
	// -trace-out); they are bulky and reproducible from the trace plane,
	// so they stay out of the JSON report.
	TraceEvents []trace.Event `json:"-"`
}

// TraceReport is the tracing plane's run verdict. Spans counts
// recording decisions per kind from the recorder's books — begin/end
// bookkeeping that is exact even when the ring dropped events — so
// Balanced must hold on every quiesced run regardless of buffer
// pressure. Dropped is the TraceDropped counter: events the ring
// rejected under wrap-around rather than block a hot path.
type TraceReport struct {
	SampleRate int              `json:"sample_rate"`
	Events     int              `json:"events"`
	Dropped    int64            `json:"dropped"`
	Spans      map[string]int64 `json:"spans,omitempty"`
	Instants   map[string]int64 `json:"instants,omitempty"`
	Balanced   bool             `json:"balanced"`
}

// AvailabilityReport is the fault plan's verdict. Recovery succeeded
// when Recovered holds and the run's Heap.Safe() and Epoch.Balanced()
// verdicts still pass — a crash may lose workload ops (the ledger
// counts them) but never a deferred deletion or heap safety. The
// partition half settles through the retry-plane books instead:
// RetryBalanced must hold on every drained run.
type AvailabilityReport struct {
	// Crashes is how many scheduled crashes were applied.
	Crashes int `json:"crashes"`
	// OpsLost is the end-of-run lost-ops ledger: operations refused
	// toward dead destinations, plus the closed-loop budget the dead
	// locales' tasks never issued. (Partition refusals park instead —
	// they only land here when the retry plane is disabled.)
	OpsLost int64 `json:"ops_lost"`
	// ShardsAdopted / BytesAdopted / TokensForceRetired total the
	// failover work across all crashes.
	ShardsAdopted      int64 `json:"shards_adopted"`
	BytesAdopted       int64 `json:"bytes_adopted"`
	TokensForceRetired int64 `json:"tokens_force_retired"`
	// RecoverNS is the wall time spent adopting shards and
	// force-retiring tokens, summed across crashes (the time-to-recover
	// metric; 0 when no crash asked for failover).
	RecoverNS int64 `json:"recover_ns"`
	// Partitions / Heals count the severs and heals the schedule
	// applied; TimeToHealNS sums severed-to-healed wall time across the
	// healed pairs (the time-to-heal metric).
	Partitions   int   `json:"partitions,omitempty"`
	Heals        int   `json:"heals,omitempty"`
	TimeToHealNS int64 `json:"time_to_heal_ns,omitempty"`
	// The retry-plane settlement books: every op parked behind a
	// severed pair settles exactly once, redelivered on heal or
	// expired.
	OpsParked      int64 `json:"ops_parked,omitempty"`
	OpsRedelivered int64 `json:"ops_redelivered,omitempty"`
	OpsExpired     int64 `json:"ops_expired,omitempty"`
	// Recovered reports that every applied crash asked for and
	// completed failover. A no-failover crash leaves it false — the
	// deliberately wedged arm.
	Recovered bool `json:"recovered"`
}

// RetryBalanced reports the retry plane's settlement invariant: after
// the run's final drain, every parked op was redelivered or expired.
func (a AvailabilityReport) RetryBalanced() bool {
	return a.OpsParked == a.OpsRedelivered+a.OpsExpired
}

// EpochReport is the end-of-run reclamation verdict, captured after
// the final clear: every deferred deletion must have been physically
// reclaimed, or the epoch machinery leaked. AdvanceFail counts won
// elections blocked by a pinned token — the wedge signature: a crash
// without force-retirement strands pins, and every election after the
// first advance fails on them.
type EpochReport struct {
	Deferred    int64 `json:"deferred"`
	Reclaimed   int64 `json:"reclaimed"`
	Advances    int64 `json:"advances"`
	AdvanceFail int64 `json:"advance_fail"`
}

// Balanced reports whether every deferred object was reclaimed.
func (e EpochReport) Balanced() bool { return e.Reclaimed == e.Deferred }

// PhaseReport is the evidence one phase produced. Throughput and the
// latency percentiles are wall-clock (they include the injected
// simulated latencies, so they reflect simulated op cost); Ops,
// OpsByKind, Comm, Matrix and Digest are exact and — for closed-loop
// contention-free phases — identical across runs of one seed.
type PhaseReport struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`

	// Ops counts driver calls (a Bulk batch counts once; its keys are
	// all folded into Digest).
	Ops       int64            `json:"ops"`
	OpsByKind map[string]int64 `json:"ops_by_kind"`

	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"throughput_ops_per_sec"`

	// Latency digests the per-op wall latency histogram (HDR-style
	// log buckets, <=~3% quantization).
	Latency bench.LatencySummary `json:"latency"`

	// Comm is the communication counter delta of the phase; RemoteOps
	// is its locale-boundary-crossing total.
	Comm      comm.Snapshot `json:"comm"`
	RemoteOps int64         `json:"remote_ops"`

	// Matrix is the (source, destination) locale-pair event delta;
	// MaxInbound is its busiest destination column (the hotspot
	// metric).
	Matrix     [][]int64 `json:"matrix"`
	MaxInbound int64     `json:"max_inbound"`

	// Digest is the order-insensitive fingerprint of every (kind, key)
	// the phase's tasks drew — the replay witness.
	Digest uint64 `json:"digest"`
}

// HeapReport is the end-of-run gas-heap verdict: the UAF counters
// must be zero on any healthy run (the heaps poison freed slots), and
// Live is what remains allocated after the final epoch clear.
type HeapReport struct {
	Live      int64 `json:"live"`
	Allocs    int64 `json:"allocs"`
	Frees     int64 `json:"frees"`
	UAFLoads  int64 `json:"uaf_loads"`
	UAFStores int64 `json:"uaf_stores"`
	UAFFrees  int64 `json:"uaf_frees"`
}

// Safe reports whether the run completed without a detected
// use-after-free (load or store) or double free.
func (h HeapReport) Safe() bool {
	return h.UAFLoads == 0 && h.UAFStores == 0 && h.UAFFrees == 0
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteSummary renders the human-readable run digest: one line per
// phase plus the safety verdict.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "scenario %q: %s on %d locales × %d tasks, backend=%s, dist=%s\n",
		r.Spec.Name, r.Spec.Structure, r.Spec.Locales, r.Spec.TasksPerLocale,
		r.Spec.Backend, r.Spec.Dist.Kind)
	for _, p := range r.Phases {
		fmt.Fprintf(w, "  %-10s %9d ops in %6.2fs  %10.0f ops/s  p50=%s p99=%s p999=%s  remote=%d maxInbound=%d",
			p.Name, p.Ops, p.Seconds, p.Throughput,
			fmtNS(p.Latency.P50NS), fmtNS(p.Latency.P99NS), fmtNS(p.Latency.P999NS),
			p.RemoteOps, p.MaxInbound)
		if hits, miss := p.Comm.CacheHits, p.Comm.CacheMiss; hits+miss+p.Comm.CacheInval > 0 {
			rate := 0.0
			if hits+miss > 0 {
				rate = float64(hits) / float64(hits+miss)
			}
			fmt.Fprintf(w, "  cache=%d/%d (%.0f%% hit) invals=%d", hits, miss, 100*rate, p.Comm.CacheInval)
		}
		if p.Comm.AggCombined > 0 {
			rate := 0.0
			if p.Comm.AggOpsEnq > 0 {
				rate = float64(p.Comm.AggCombined) / float64(p.Comm.AggOpsEnq)
			}
			fmt.Fprintf(w, "  absorbed=%d/%d enq (%.0f%%)", p.Comm.AggCombined, p.Comm.AggOpsEnq, 100*rate)
		}
		if p.Comm.CASAttempts > 0 {
			fmt.Fprintf(w, "  cas=%d (%d retry)", p.Comm.CASAttempts, p.Comm.CASRetries)
		}
		if p.Comm.MigRetired > 0 || p.Comm.MigReroutes > 0 {
			fmt.Fprintf(w, "  migrations=%d moved=%dB reroutes=%d",
				p.Comm.MigRetired, p.Comm.MigBytes, p.Comm.MigReroutes)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  total: %d ops in %.2fs; heap live=%d uafLoads=%d uafStores=%d uafFrees=%d; epoch reclaimed=%d/%d\n",
		r.TotalOps, r.TotalSeconds, r.Heap.Live, r.Heap.UAFLoads, r.Heap.UAFStores, r.Heap.UAFFrees,
		r.Epoch.Reclaimed, r.Epoch.Deferred)
	if a := r.Availability; a != nil {
		if a.Crashes > 0 || a.Partitions == 0 {
			verdict := "recovered"
			if !a.Recovered {
				verdict = "NOT RECOVERED"
			}
			fmt.Fprintf(w, "  availability: %d crash(es), opsLost=%d, shardsAdopted=%d (%dB), tokensForceRetired=%d, timeToRecover=%s, %s (advances=%d blocked=%d)\n",
				a.Crashes, a.OpsLost, a.ShardsAdopted, a.BytesAdopted, a.TokensForceRetired,
				fmtNS(a.RecoverNS), verdict, r.Epoch.Advances, r.Epoch.AdvanceFail)
		}
		if a.Partitions > 0 {
			verdict := "settled"
			if !a.RetryBalanced() {
				verdict = "UNSETTLED"
			}
			fmt.Fprintf(w, "  partitions: %d sever(s), %d heal(s), timeToHeal=%s, parked=%d redelivered=%d expired=%d, books %s (opsLost=%d)\n",
				a.Partitions, a.Heals, fmtNS(a.TimeToHealNS),
				a.OpsParked, a.OpsRedelivered, a.OpsExpired, verdict, a.OpsLost)
		}
	}
	if t := r.Trace; t != nil {
		verdict := "balanced"
		if !t.Balanced {
			verdict = "UNBALANCED"
		}
		fmt.Fprintf(w, "  trace: %d events (1/%d sampled, %d dropped), books %s;",
			t.Events, t.SampleRate, t.Dropped, verdict)
		for _, k := range []string{"dispatch", "async", "flush", "combine", "migrate", "adopt", "force_retire", "epoch_advance", "epoch_reclaim"} {
			if n := t.Spans[k]; n > 0 {
				fmt.Fprintf(w, " %s=%d", k, n)
			}
		}
		for _, k := range []string{"reroute", "defer", "crash", "partition", "heal"} {
			if n := t.Instants[k]; n > 0 {
				fmt.Fprintf(w, " %s=%d", k, n)
			}
		}
		fmt.Fprintln(w)
	}
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
