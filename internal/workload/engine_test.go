package workload

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

// scenarioFor builds a small three-phase Zipfian scenario exercising
// every op kind the structure supports.
func scenarioFor(s Structure) Spec {
	var load, run Mix
	switch s {
	case StructureHashmap:
		load = Mix{Insert: 1}
		run = Mix{Insert: 2, Get: 6, Remove: 1, Bulk: 0.05}
	case StructureSkiplist:
		load = Mix{Insert: 1}
		run = Mix{Insert: 2, Get: 6, Remove: 1}
	default: // queue, stack
		load = Mix{Enqueue: 1}
		run = Mix{Enqueue: 4, Remove: 3, Steal: 1, Bulk: 0.05}
	}
	return Spec{
		Name:           "test-" + string(s),
		Structure:      s,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           0xABCD,
		Keyspace:       1 << 10,
		Dist:           KeyDist{Kind: DistZipfian, Theta: 0.99},
		Phases: []Phase{
			{Name: "load", Mix: load, OpsPerTask: 300},
			{Name: "run", Mix: run, OpsPerTask: 500, BulkSize: 16},
			{Name: "churn", Mix: run, OpsPerTask: 150, Rounds: 3, Churn: true, BulkSize: 16},
		},
	}
}

// TestScenarioPerStructure runs the acceptance scenario — a Zipfian
// mixed-op workload with a churn phase — against every structure and
// checks the report carries the full evidence set: per-phase
// throughput, latency percentiles, comm counter and matrix deltas.
func TestScenarioPerStructure(t *testing.T) {
	for _, s := range Structures() {
		t.Run(string(s), func(t *testing.T) {
			rep, err := Run(scenarioFor(s), nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Phases) != 3 {
				t.Fatalf("got %d phases", len(rep.Phases))
			}
			for _, p := range rep.Phases {
				if p.Ops <= 0 || p.Seconds <= 0 || p.Throughput <= 0 {
					t.Fatalf("phase %s lacks throughput evidence: %+v", p.Name, p)
				}
				if p.Latency.Count != p.Ops {
					t.Fatalf("phase %s: latency count %d != ops %d", p.Name, p.Latency.Count, p.Ops)
				}
				if p.Latency.P50NS > p.Latency.P99NS || p.Latency.P99NS > p.Latency.P999NS ||
					p.Latency.P999NS > p.Latency.MaxNS {
					t.Fatalf("phase %s: percentiles not monotone: %+v", p.Name, p.Latency)
				}
				if len(p.Matrix) != 4 || len(p.Matrix[0]) != 4 {
					t.Fatalf("phase %s: matrix shape %dx?", p.Name, len(p.Matrix))
				}
				if p.Digest == 0 {
					t.Fatalf("phase %s: zero digest", p.Name)
				}
			}
			// Every structure but the sharded-local-only mixes performs
			// remote communication under this mix; the skiplist (single
			// home) and hashmap (remote buckets) certainly do.
			if s == StructureSkiplist || s == StructureHashmap {
				if rep.Phases[1].RemoteOps == 0 {
					t.Fatalf("%s run phase reports zero remote ops", s)
				}
			}
			if !rep.Heap.Safe() {
				t.Fatalf("safety violations: %+v", rep.Heap)
			}
			if !rep.Epoch.Balanced() {
				t.Fatalf("epoch leak: reclaimed %d of %d deferred", rep.Epoch.Reclaimed, rep.Epoch.Deferred)
			}
		})
	}
}

// deterministicParts strips the wall-clock fields from a report,
// leaving what one seed must reproduce exactly.
type deterministicParts struct {
	Ops       []int64
	ByKind    []map[string]int64
	Digests   []uint64
	Comm      []interface{}
	Matrices  [][][]int64
	HeapLive  int64
	HeapAlloc int64
}

func partsOf(r *Report) deterministicParts {
	var p deterministicParts
	for _, ph := range r.Phases {
		p.Ops = append(p.Ops, ph.Ops)
		p.ByKind = append(p.ByKind, ph.OpsByKind)
		p.Digests = append(p.Digests, ph.Digest)
		p.Comm = append(p.Comm, ph.Comm)
		p.Matrices = append(p.Matrices, ph.Matrix)
	}
	p.HeapLive = r.Heap.Live
	p.HeapAlloc = r.Heap.Allocs
	return p
}

// TestSeededRunBitIdentical counter-asserts the acceptance criterion:
// two invocations of one seeded scenario produce identical op streams,
// identical communication counters, identical comm matrices and
// identical heap accounting. The scenario is contention-free by
// construction (one task per locale, locale-local sharded-queue ops,
// no in-phase reclaim), so even the CAS-level counters cannot drift
// with goroutine scheduling.
func TestSeededRunBitIdentical(t *testing.T) {
	spec := Spec{
		Name:           "determinism",
		Structure:      StructureQueue,
		Locales:        4,
		TasksPerLocale: 1,
		Backend:        "none",
		Seed:           0x5EED,
		Keyspace:       1 << 12,
		Dist:           KeyDist{Kind: DistZipfian, Theta: 0.8},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Enqueue: 1}, OpsPerTask: 400},
			{Name: "run", Mix: Mix{Enqueue: 1, Remove: 1}, OpsPerTask: 600},
		},
	}
	a, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := partsOf(a), partsOf(b)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("seeded runs diverged:\n run A: %+v\n run B: %+v", pa, pb)
	}
	// The local-only mix must also be communication-free: the sharded
	// queue's Enqueue/Dequeue never cross a locale boundary.
	for _, ph := range a.Phases {
		if ph.RemoteOps != 0 {
			t.Fatalf("local-only phase %s performed %d remote ops", ph.Name, ph.RemoteOps)
		}
	}
}

// TestSeededCrashFailoverReplay extends the determinism criterion to
// the failure plane: two runs of one seeded scenario with the same
// phase-boundary crash schedule replay bit-identically — op counts,
// digests, comm counters and matrices (the OpsLost ledger rides in the
// comm snapshot), live-heap accounting, and the availability verdict.
// The workload is aggregated-write-only so every op ships exactly one
// routed write to its owner: reads (whose traversal lengths, and
// first-insert CAS races, whose allocation counts, vary with
// scheduling) are kept out of the asserted parts.
func TestSeededCrashFailoverReplay(t *testing.T) {
	spec := Spec{
		Name:           "crash-replay",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 1,
		Backend:        "none",
		Seed:           0xFA11,
		Keyspace:       1 << 12,
		Dist:           KeyDist{Kind: DistZipfian, Theta: 0.8},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 400},
			{Name: "degraded", Mix: Mix{Insert: 1}, OpsPerTask: 600},
		},
		Faults: Faults{Crashes: []CrashSpec{{Locale: 2, Phase: 1, Failover: true}}},
	}
	type crashParts struct {
		deterministicParts
		OpsLost            int64
		Crashes            int
		ShardsAdopted      int64
		BytesAdopted       int64
		TokensForceRetired int64
		Recovered          bool
	}
	run := func() crashParts {
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Availability == nil {
			t.Fatal("crashed run reports no availability verdict")
		}
		p := crashParts{deterministicParts: partsOf(rep)}
		// Allocation and CAS-attempt counts are schedule-dependent under
		// first-insert races; Live (the surviving key set) and everything
		// that crosses the wire are not.
		p.HeapAlloc = 0
		for i, c := range p.Comm {
			snap := c.(comm.Snapshot)
			snap.LocalAMOs, snap.CASAttempts, snap.CASRetries = 0, 0, 0
			p.Comm[i] = snap
		}
		av := rep.Availability
		p.OpsLost = av.OpsLost
		p.Crashes = av.Crashes
		p.ShardsAdopted = av.ShardsAdopted
		p.BytesAdopted = av.BytesAdopted
		p.TokensForceRetired = av.TokensForceRetired
		p.Recovered = av.Recovered
		return p
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded crash runs diverged:\n run A: %+v\n run B: %+v", a, b)
	}
	if !a.Recovered {
		t.Fatal("failover crash did not recover")
	}
	if a.Crashes != 1 || a.ShardsAdopted == 0 || a.TokensForceRetired != int64(spec.TasksPerLocale) {
		t.Fatalf("availability evidence off: %+v", a)
	}
	// With failover complete before the degraded phase spawns, the only
	// lost ops are the dead locale's own unissued budget: its one task's
	// closed-loop 600 ops. Nothing the survivors issue may be refused.
	if want := int64(spec.Phases[1].OpsPerTask); a.OpsLost != want {
		t.Fatalf("opsLost = %d, want exactly the dead locale's budget %d", a.OpsLost, want)
	}
}

// TestCachedScenarioHotspotRelief runs a hot-set get-heavy scenario
// with and without the read replication cache. The uncached run
// funnels the hot keys' gets into their owners' inbound columns; the
// cached run serves repeats from per-locale replicas, so its run-phase
// busiest column must be a small fraction of the uncached one. The
// churn phase exercises the cached driver's destroy/recreate path, and
// the usual verdicts (zero UAF, deferred == reclaimed) hold with the
// cache's entry retirement in the mix.
func TestCachedScenarioHotspotRelief(t *testing.T) {
	base := Spec{
		Name:           "hotspot",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           7,
		Keyspace:       256,
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.05, HotProb: 0.95},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 200},
			{Name: "run", Mix: Mix{Get: 1}, OpsPerTask: 2000},
			{Name: "churn", Mix: Mix{Get: 8, Insert: 1}, OpsPerTask: 100, Rounds: 2, Churn: true},
		},
	}
	uncached, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	withCache := base
	withCache.Cache = &CacheSpec{Enabled: true}
	cached, err := Run(withCache, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"uncached": uncached, "cached": cached} {
		if !rep.Heap.Safe() {
			t.Fatalf("%s run unsafe: %+v", name, rep.Heap)
		}
		if !rep.Epoch.Balanced() {
			t.Fatalf("%s epoch leak: %+v", name, rep.Epoch)
		}
	}
	ur, cr := uncached.Phases[1], cached.Phases[1]
	if ur.Comm.CacheHits != 0 {
		t.Fatalf("uncached run counted cache hits: %v", ur.Comm)
	}
	if cr.Comm.CacheHits == 0 || cr.Comm.CacheHits < 4*cr.Comm.CacheMiss {
		t.Fatalf("cached run not read-mostly-hit: %v", cr.Comm)
	}
	// Relief is asserted on the counter ledger, not the matrix: the
	// busiest-column comparison this test used to make (2x on
	// MaxInbound) was schedule-dependent — duplicate misses and set
	// evictions from two tasks racing per replica occasionally pushed
	// the cached column past half the uncached one. The ledger form is
	// stable: every cache hit is a remote fetch that did not happen, so
	// with the >=80% hit rate asserted above, the cached run's total
	// remote traffic must fall well below the uncached run's (2x keeps
	// margin for miss-fill and invalidation traffic, which the hit-rate
	// bound already caps at a fifth of the gets).
	if 2*cr.RemoteOps >= ur.RemoteOps {
		t.Fatalf("cache did not relieve the hotspot: %d remote ops cached vs %d uncached (hits=%d miss=%d)",
			cr.RemoteOps, ur.RemoteOps, cr.Comm.CacheHits, cr.Comm.CacheMiss)
	}
	if cached.Phases[2].Comm.CacheInval == 0 {
		t.Fatal("churn-phase inserts produced no invalidations")
	}
}

// TestCombinedScenarioDigestInvariant runs one seeded write-heavy
// hot-set scenario with write absorption on and off. The op-stream
// digests — drawn from the seeded streams, independent of execution —
// must match exactly (absorption must not change what the workload
// asked for), the combined run's counters must show real absorption,
// and both runs must pass the usual safety verdicts.
func TestCombinedScenarioDigestInvariant(t *testing.T) {
	base := Spec{
		Name:           "write-storm",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           11,
		Keyspace:       64, // tiny keyspace: heavy per-buffer key reuse
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.1, HotProb: 0.95},
		Phases: []Phase{
			{Name: "storm", Mix: Mix{Insert: 8, Remove: 1}, OpsPerTask: 1500},
		},
	}
	plain, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	combined := base
	combined.Combine = &CombineSpec{Enabled: true}
	absorbed, err := Run(combined, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"plain": plain, "combined": absorbed} {
		if !rep.Heap.Safe() {
			t.Fatalf("%s run unsafe: %+v", name, rep.Heap)
		}
		if !rep.Epoch.Balanced() {
			t.Fatalf("%s epoch leak: %+v", name, rep.Epoch)
		}
	}
	pp, ap := plain.Phases[0], absorbed.Phases[0]
	if pp.Digest != ap.Digest {
		t.Fatalf("absorption changed the op stream: %x vs %x", pp.Digest, ap.Digest)
	}
	if pp.Comm.AggCombined != 0 {
		t.Fatalf("plain run absorbed ops: %v", pp.Comm)
	}
	if ap.Comm.AggCombined == 0 {
		t.Fatalf("combined run absorbed nothing: %v", ap.Comm)
	}
	if ap.Comm.AggOps+ap.Comm.AggCombined != ap.Comm.AggOpsEnq {
		t.Fatalf("shipped+combined != enqueued: %v", ap.Comm)
	}
}

// TestChurnReachesSteadyHeap checks that churn rounds recycle
// everything: heap live after N destroy/recreate rounds stays bounded
// by one round's working set instead of accumulating per round.
func TestChurnReachesSteadyHeap(t *testing.T) {
	base := Spec{
		Structure:      StructureSkiplist,
		Locales:        2,
		TasksPerLocale: 1,
		Backend:        "none",
		Seed:           5,
		Keyspace:       1 << 14, // sparse: inserts mostly hit distinct keys
		Dist:           KeyDist{Kind: DistUniform},
	}
	perRound := 200
	run := func(rounds int) int64 {
		s := base
		s.Phases = []Phase{{Name: "churn", Mix: Mix{Insert: 1}, OpsPerTask: perRound, Rounds: rounds, Churn: true}}
		rep, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Heap.Safe() {
			t.Fatalf("safety violations: %+v", rep.Heap)
		}
		return rep.Heap.Live
	}
	one := run(1)
	many := run(5)
	// The final round's survivors remain live in both cases; churn
	// must not stack earlier rounds on top.
	if many > one+int64(perRound) {
		t.Fatalf("heap grows with churn rounds: 1 round -> %d live, 5 rounds -> %d live", one, many)
	}
}

// TestSlowLocaleFaultInjection runs the same scenario with and without
// a slow-locale fault against the single-home skiplist (every op
// touches the home) and checks the fault slows the run down without
// changing the op stream or safety.
func TestSlowLocaleFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// LatencyScale 2 makes the injected delays dominate any host or
	// instrumentation (-race) overhead, so the slowdown ratio reflects
	// the fault plan, not CPU noise.
	base := Spec{
		Structure:      StructureSkiplist,
		Locales:        2,
		TasksPerLocale: 1,
		Backend:        "ugni",
		Seed:           77,
		Keyspace:       256,
		Home:           1,
		Dist:           KeyDist{Kind: DistUniform},
		LatencyScale:   2,
		Phases:         []Phase{{Name: "run", Mix: Mix{Insert: 1, Get: 2}, OpsPerTask: 200}},
	}
	fast, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.Faults = Faults{SlowFactor: 16, SlowLocale: 1}
	perturbed, err := Run(slow, nil)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Phases[0].Digest != fast.Phases[0].Digest {
		t.Fatal("fault injection changed the op stream")
	}
	if !perturbed.Heap.Safe() {
		t.Fatalf("safety violations under fault: %+v", perturbed.Heap)
	}
	// The home is 16x slower and every op touches it; the run must be
	// several times slower (generous margin — CI hosts are noisy).
	if perturbed.Phases[0].Seconds < fast.Phases[0].Seconds*2.5 {
		t.Fatalf("slow-locale fault had no effect: %.3fs vs %.3fs",
			perturbed.Phases[0].Seconds, fast.Phases[0].Seconds)
	}
}

// TestTracedScenarioBooksBalance is the tracing plane's acceptance
// run: a seeded migration-storm scenario (rebalancing hashmap, hot
// bucket) traced at 1/64 sampling. After the run the recorder's books
// must balance per kind, the migration span count must equal the comm
// plane's adopted-bucket total (control-plane kinds are exempt from
// sampling precisely so this holds), the exported JSON must parse as
// Chrome trace-event format, and the op-stream digest must match an
// untraced run of the same seed — tracing is observation only.
func TestTracedScenarioBooksBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive (paced phase)")
	}
	base := Spec{
		Name:           "migration-storm",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           17,
		Keyspace:       16,
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.07, HotProb: 0.95},
		Rebalance:      &RebalanceSpec{Enabled: true, Ratio: 1.5, IntervalMS: 1},
		Phases: []Phase{
			{Name: "storm", Mix: Mix{Insert: 6, Get: 3, Remove: 1},
				OpsPerTask: 300, TargetRate: 3000},
		},
	}
	plain, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Trace = &TraceSpec{Enabled: true, SampleRate: 64}
	rep, err := Run(traced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases[0].Digest != plain.Phases[0].Digest {
		t.Fatalf("tracing changed the op stream: %x vs %x", rep.Phases[0].Digest, plain.Phases[0].Digest)
	}
	if !rep.Heap.Safe() || !rep.Epoch.Balanced() {
		t.Fatalf("traced run failed safety verdicts: heap %+v epoch %+v", rep.Heap, rep.Epoch)
	}
	tr := rep.Trace
	if tr == nil {
		t.Fatal("traced run produced no trace report")
	}
	if tr.SampleRate != 64 {
		t.Fatalf("sample rate %d, want 64", tr.SampleRate)
	}
	if !tr.Balanced {
		t.Fatalf("span books unbalanced: spans=%v", tr.Spans)
	}
	if len(rep.TraceEvents) == 0 || tr.Events != len(rep.TraceEvents) {
		t.Fatalf("event accounting: report says %d, drained %d", tr.Events, len(rep.TraceEvents))
	}
	var migrated int64
	for _, p := range rep.Phases {
		migrated += p.Comm.MigAdopted
	}
	if migrated == 0 {
		t.Fatalf("storm never migrated: %v", rep.Phases[0].Comm)
	}
	if tr.Spans["migrate"] != migrated {
		t.Fatalf("migrate spans %d != MigAdopted %d", tr.Spans["migrate"], migrated)
	}
	// (No per-kind floor for sampled kinds like dispatch/flush: at 1/64
	// sampling a short storm can legitimately record zero of either, and
	// the balance + total-event checks above already cover the plane.)
	// The export must load as Chrome trace-event JSON: an object with a
	// traceEvents array whose entries carry ph/pid/ts.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, rep.TraceEvents); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			PID int     `json:"pid"`
			TS  float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(rep.TraceEvents) {
		t.Fatalf("export lost events: %d JSON entries for %d events", len(doc.TraceEvents), len(rep.TraceEvents))
	}
}

// TestOpenLoopPacing checks TargetRate holds the issue rate near the
// target instead of running closed-loop.
func TestOpenLoopPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	spec := Spec{
		Structure:      StructureQueue,
		Locales:        2,
		TasksPerLocale: 1,
		Backend:        "none",
		Seed:           3,
		Dist:           KeyDist{Kind: DistUniform},
		Phases: []Phase{{
			Name: "paced", Mix: Mix{Enqueue: 1},
			OpsPerTask: 100, TargetRate: 200, // 2 tasks ≈ 0.5s
		}},
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Phases[0]
	// 2 tasks × 200 ops/s each = 400 ops/s aggregate target; a
	// closed-loop run would finish orders of magnitude faster.
	if p.Throughput > 800 {
		t.Fatalf("open-loop phase ran at %.0f ops/s, target 400", p.Throughput)
	}
}

// TestRebalancedScenarioDigestInvariant runs one seeded hot-bucket
// scenario with dynamic rebalancing on and off. The op-stream digests
// must match exactly (migrating ownership must not change what the
// workload asked for), the rebalanced run must actually migrate —
// with exactly balanced adopt/retire books — and both runs must pass
// the heap-safety and epoch verdicts. The phase is open-loop paced so
// it spans many controller windows regardless of host speed.
func TestRebalancedScenarioDigestInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive (paced phase)")
	}
	base := Spec{
		Name:           "hot-bucket",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           17,
		Keyspace:       16, // ~1-key hot set: one bucket takes most traffic
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.07, HotProb: 0.95},
		Phases: []Phase{
			{Name: "storm", Mix: Mix{Insert: 6, Get: 3, Remove: 1},
				OpsPerTask: 300, TargetRate: 3000}, // ≈100ms of windows
		},
	}
	static, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	moved := base
	moved.Rebalance = &RebalanceSpec{Enabled: true, Ratio: 1.5, IntervalMS: 1}
	rebalanced, err := Run(moved, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"static": static, "rebalanced": rebalanced} {
		if !rep.Heap.Safe() {
			t.Fatalf("%s run unsafe: %+v", name, rep.Heap)
		}
		if !rep.Epoch.Balanced() {
			t.Fatalf("%s epoch leak: %+v", name, rep.Epoch)
		}
	}
	sp, rp := static.Phases[0], rebalanced.Phases[0]
	if sp.Digest != rp.Digest {
		t.Fatalf("rebalancing changed the op stream: %x vs %x", sp.Digest, rp.Digest)
	}
	if sp.Comm.MigRetired != 0 || sp.Comm.MigAdopted != 0 {
		t.Fatalf("static run booked migrations: %v", sp.Comm)
	}
	if rp.Comm.MigRetired == 0 {
		t.Fatalf("rebalanced run never migrated: %v", rp.Comm)
	}
	if rp.Comm.MigAdopted != rp.Comm.MigRetired {
		t.Fatalf("books unbalanced: adopted %d retired %d", rp.Comm.MigAdopted, rp.Comm.MigRetired)
	}
}

// TestPartitionScenarioBooksSettle runs a three-phase combined-write
// hashmap scenario with a scheduled partition: pair (1,2) severs at the
// degraded phase boundary and heals at the next. Writes refused by the
// severed link park in the retry plane and redeliver at the heal, so
// the settlement identity OpsParked == OpsRedelivered + OpsExpired
// holds, nothing lands in the fail-stop ledger, and the trace plane
// records exactly one partition and one heal instant (control-plane
// kinds are exempt from sampling).
func TestPartitionScenarioBooksSettle(t *testing.T) {
	spec := Spec{
		Name:           "partition-settle",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           0x5E7E,
		Keyspace:       1 << 10,
		Dist:           KeyDist{Kind: DistZipfian, Theta: 0.8},
		Combine:        &CombineSpec{Enabled: true},
		Trace:          &TraceSpec{Enabled: true, SampleRate: 64},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 300},
			{Name: "degraded", Mix: Mix{Insert: 1}, OpsPerTask: 400},
			{Name: "healed", Mix: Mix{Insert: 1}, OpsPerTask: 300},
		},
		Faults: Faults{
			Partitions: []PartitionSpec{{A: 1, B: 2, Phase: 1, HealPhase: 2}},
			// A deadline far past the run keeps the deterministic
			// settlement shape: every parked op waits for the heal.
			Retry: &RetrySpec{DeadlineMS: 600_000},
		},
	}
	rep, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Heap.Safe() || !rep.Epoch.Balanced() {
		t.Fatalf("partitioned run failed safety verdicts: heap %+v epoch %+v", rep.Heap, rep.Epoch)
	}
	av := rep.Availability
	if av == nil {
		t.Fatal("partitioned run reports no availability verdict")
	}
	if av.Partitions != 1 || av.Heals != 1 {
		t.Fatalf("lifecycle accounting: %d sever(s), %d heal(s), want 1 and 1", av.Partitions, av.Heals)
	}
	if av.TimeToHealNS <= 0 {
		t.Fatalf("time-to-heal not measured: %d", av.TimeToHealNS)
	}
	if av.OpsParked == 0 {
		t.Fatal("degraded phase never parked a refused op")
	}
	if av.OpsExpired != 0 {
		t.Fatalf("ops expired under a deadline far past the run: %d", av.OpsExpired)
	}
	if !av.RetryBalanced() {
		t.Fatalf("retry books unsettled: parked=%d redelivered=%d expired=%d",
			av.OpsParked, av.OpsRedelivered, av.OpsExpired)
	}
	if av.OpsLost != 0 {
		t.Fatalf("partition leaked into the fail-stop ledger: opsLost=%d", av.OpsLost)
	}
	if !av.Recovered {
		t.Fatal("partition-only run must count as recovered")
	}
	tr := rep.Trace
	if tr == nil {
		t.Fatal("traced run produced no trace report")
	}
	if tr.Instants["partition"] != 1 || tr.Instants["heal"] != 1 {
		t.Fatalf("lifecycle instants not traced: %v", tr.Instants)
	}
}

// TestSeededPartitionHealReplay extends the determinism criterion to
// the partition plane: two runs of one seeded scenario with the same
// phase-boundary sever/heal schedule replay bit-identically, retry
// ledgers included. The workload is aggregated-write-only (one task per
// locale) so the set of ops refused by the severed pair — and therefore
// the parked and redelivered books — is a pure function of the seed.
func TestSeededPartitionHealReplay(t *testing.T) {
	spec := Spec{
		Name:           "partition-replay",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 1,
		Backend:        "none",
		Seed:           0x9EA1,
		Keyspace:       1 << 12,
		Dist:           KeyDist{Kind: DistZipfian, Theta: 0.8},
		Combine:        &CombineSpec{Enabled: true},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 400},
			{Name: "degraded", Mix: Mix{Insert: 1}, OpsPerTask: 600},
			{Name: "healed", Mix: Mix{Insert: 1}, OpsPerTask: 400},
		},
		Faults: Faults{
			Partitions: []PartitionSpec{{A: 1, B: 2, Phase: 1, HealPhase: 2}},
			Retry:      &RetrySpec{DeadlineMS: 600_000},
		},
	}
	type partitionParts struct {
		deterministicParts
		Parked      int64
		Redelivered int64
		Expired     int64
		OpsLost     int64
		Heals       int
	}
	run := func() partitionParts {
		rep, err := Run(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Availability == nil {
			t.Fatal("partitioned run reports no availability verdict")
		}
		p := partitionParts{deterministicParts: partsOf(rep)}
		p.HeapAlloc = 0
		for i, c := range p.Comm {
			snap := c.(comm.Snapshot)
			snap.LocalAMOs, snap.CASAttempts, snap.CASRetries = 0, 0, 0
			p.Comm[i] = snap
		}
		av := rep.Availability
		p.Parked = av.OpsParked
		p.Redelivered = av.OpsRedelivered
		p.Expired = av.OpsExpired
		p.OpsLost = av.OpsLost
		p.Heals = av.Heals
		return p
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded partition runs diverged:\n run A: %+v\n run B: %+v", a, b)
	}
	if a.Parked == 0 || a.Parked != a.Redelivered || a.Expired != 0 || a.OpsLost != 0 {
		t.Fatalf("retry ledger shape off: parked=%d redelivered=%d expired=%d lost=%d",
			a.Parked, a.Redelivered, a.Expired, a.OpsLost)
	}
	if a.Heals != 1 {
		t.Fatalf("heals = %d, want 1", a.Heals)
	}
}

// TestQueueStackCrashFailover runs the crash-failover drill against the
// sharded queue and stack: locale 2 dies at the degraded-phase boundary
// and its segment drains onto the survivors through the shared salvage
// path. The availability verdict must show the adoption evidence (one
// chunk per survivor, the dead locale's enqueued payload in bytes), the
// migration books must balance, and the only lost ops are the dead
// locale's own unissued closed-loop budget — the survivors' steals skip
// the unreachable victim instead of burning refusals.
func TestQueueStackCrashFailover(t *testing.T) {
	for _, st := range []Structure{StructureQueue, StructureStack} {
		t.Run(string(st), func(t *testing.T) {
			spec := Spec{
				Name:           "crash-" + string(st),
				Structure:      st,
				Locales:        4,
				TasksPerLocale: 2,
				Backend:        "none",
				Seed:           0xDEAD,
				Keyspace:       1 << 10,
				Dist:           KeyDist{Kind: DistUniform},
				Phases: []Phase{
					{Name: "load", Mix: Mix{Enqueue: 1}, OpsPerTask: 400},
					{Name: "degraded", Mix: Mix{Enqueue: 2, Remove: 1, Steal: 1}, OpsPerTask: 300},
				},
				Faults: Faults{Crashes: []CrashSpec{{Locale: 2, Phase: 1, Failover: true}}},
			}
			rep, err := Run(spec, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Heap.Safe() || !rep.Epoch.Balanced() {
				t.Fatalf("failover run failed safety verdicts: heap %+v epoch %+v", rep.Heap, rep.Epoch)
			}
			av := rep.Availability
			if av == nil {
				t.Fatal("crashed run reports no availability verdict")
			}
			if !av.Recovered {
				t.Fatalf("failover did not recover: %+v", av)
			}
			// The load phase enqueues locale-locally, so the dead segment
			// holds exactly its own tasks' budget; the drain ships it in one
			// chunk per survivor.
			if want := int64(spec.Locales - 1); av.ShardsAdopted != want {
				t.Fatalf("shards adopted = %d, want %d", av.ShardsAdopted, want)
			}
			if want := int64(spec.TasksPerLocale*spec.Phases[0].OpsPerTask) * 16; av.BytesAdopted != want {
				t.Fatalf("bytes adopted = %d, want %d", av.BytesAdopted, want)
			}
			if want := int64(spec.TasksPerLocale); av.TokensForceRetired != want {
				t.Fatalf("tokens force-retired = %d, want %d", av.TokensForceRetired, want)
			}
			if want := int64(spec.TasksPerLocale * spec.Phases[1].OpsPerTask); av.OpsLost != want {
				t.Fatalf("opsLost = %d, want exactly the dead locale's budget %d", av.OpsLost, want)
			}
			final := rep.Phases[len(rep.Phases)-1].Comm
			if final.MigAdopted != final.MigRetired {
				t.Fatalf("migration books unbalanced: adopted %d retired %d", final.MigAdopted, final.MigRetired)
			}
		})
	}
}
