package workload

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// encodeStream renders n (kind, key) draws as bytes — the
// byte-for-byte reproducibility witness.
func encodeStream(st *Stream, n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		k := st.NextOp()
		binary.Write(&buf, binary.LittleEndian, uint32(k))
		binary.Write(&buf, binary.LittleEndian, st.NextKey())
	}
	return buf.Bytes()
}

func TestStreamIdenticalSeedsIdenticalBytes(t *testing.T) {
	mix := Mix{Insert: 2, Get: 5, Remove: 1}
	dist := KeyDist{Kind: DistZipfian, Theta: 0.99}
	z := newZipfGen(4096, 0.99)
	a := encodeStream(NewStream(42, 1, 0, 3, 2, 4096, dist, mix, z), 10_000)
	b := encodeStream(NewStream(42, 1, 0, 3, 2, 4096, dist, mix, z), 10_000)
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds must reproduce identical op streams byte-for-byte")
	}
	// Any coordinate change must produce a different stream.
	for name, st := range map[string]*Stream{
		"seed":   NewStream(43, 1, 0, 3, 2, 4096, dist, mix, z),
		"phase":  NewStream(42, 2, 0, 3, 2, 4096, dist, mix, z),
		"round":  NewStream(42, 1, 1, 3, 2, 4096, dist, mix, z),
		"locale": NewStream(42, 1, 0, 4, 2, 4096, dist, mix, z),
		"task":   NewStream(42, 1, 0, 3, 3, 4096, dist, mix, z),
	} {
		if bytes.Equal(a, encodeStream(st, 10_000)) {
			t.Fatalf("changing %s did not change the stream", name)
		}
	}
}

// TestZipfianShape verifies the rank-frequency curve: under Zipf with
// skew θ, rank r appears with frequency ∝ 1/(r+1)^θ, so
// freq(0)/freq(2^k - 1 → ...) follows a power law. We check the
// empirical ratios between well-separated ranks against the analytic
// ones within tolerance.
func TestZipfianShape(t *testing.T) {
	const (
		n     = 1024
		theta = 0.99
		draws = 400_000
	)
	z := newZipfGen(n, theta)
	st := NewStream(7, 0, 0, 0, 0, n, KeyDist{Kind: DistZipfian, Theta: theta}, Mix{Get: 1}, z)
	freq := make([]int, n)
	for i := 0; i < draws; i++ {
		k := st.NextKey()
		if k >= n {
			t.Fatalf("key %d outside keyspace %d", k, n)
		}
		freq[k]++
	}
	// The head must dominate: rank 0 is the hottest.
	if freq[0] < freq[1] || freq[1] < freq[4] || freq[4] < freq[64] {
		t.Fatalf("rank frequencies not descending: f0=%d f1=%d f4=%d f64=%d",
			freq[0], freq[1], freq[4], freq[64])
	}
	// Analytic ratio check at well-populated ranks.
	for _, r := range []int{1, 3, 7, 15} {
		want := math.Pow(float64(r+1), theta) // freq(0)/freq(r)
		got := float64(freq[0]) / float64(freq[r])
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("freq(0)/freq(%d) = %.2f, want %.2f ±30%%", r, got, want)
		}
	}
	// Mass concentration: under θ=0.99, the top 1% of ranks carries
	// well over a third of the traffic.
	top := 0
	for r := 0; r < n/100; r++ {
		top += freq[r]
	}
	if frac := float64(top) / draws; frac < 0.35 {
		t.Errorf("top 1%% of ranks carries %.2f of traffic, want >= 0.35", frac)
	}
}

func TestHotSetShape(t *testing.T) {
	const n = 10_000
	dist := KeyDist{Kind: DistHotSet, HotFraction: 0.1, HotProb: 0.9}
	st := NewStream(9, 0, 0, 0, 0, n, dist, Mix{Get: 1}, nil)
	hot := 0
	const draws = 200_000
	for i := 0; i < draws; i++ {
		k := st.NextKey()
		if k >= n {
			t.Fatalf("key %d outside keyspace %d", k, n)
		}
		if k < n/10 {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.88 || frac > 0.92 {
		t.Fatalf("hot-set fraction = %.3f, want ≈0.90", frac)
	}
}

func TestUniformCoversKeyspace(t *testing.T) {
	const n = 64
	st := NewStream(3, 0, 0, 0, 0, n, KeyDist{Kind: DistUniform}, Mix{Get: 1}, nil)
	seen := make(map[uint64]bool)
	for i := 0; i < 20_000; i++ {
		k := st.NextKey()
		if k >= n {
			t.Fatalf("key %d outside keyspace %d", k, n)
		}
		seen[k] = true
	}
	if len(seen) != n {
		t.Fatalf("uniform draw covered %d of %d keys", len(seen), n)
	}
}

func TestNextOpRespectsMix(t *testing.T) {
	mix := Mix{Insert: 1, Get: 8, Remove: 1}
	st := NewStream(11, 0, 0, 0, 0, 100, KeyDist{Kind: DistUniform}, mix, nil)
	var counts [numOps]int
	const draws = 100_000
	for i := 0; i < draws; i++ {
		counts[st.NextOp()]++
	}
	if counts[OpEnqueue] != 0 || counts[OpSteal] != 0 || counts[OpBulk] != 0 {
		t.Fatalf("zero-weighted kinds drawn: %v", counts)
	}
	if frac := float64(counts[OpGet]) / draws; frac < 0.78 || frac > 0.82 {
		t.Fatalf("get fraction = %.3f, want ≈0.80", frac)
	}
	if counts[OpInsert] == 0 || counts[OpRemove] == 0 {
		t.Fatalf("nonzero-weighted kinds never drawn: %v", counts)
	}
}

func TestOpDigestOrderInsensitiveCombine(t *testing.T) {
	// The phase digest is a wrapping sum of per-op digests, so any
	// permutation of the same multiset must agree.
	ops := [][2]uint64{{0, 5}, {1, 9}, {2, 5}, {0, 5}, {4, 77}}
	var fwd, rev uint64
	for _, o := range ops {
		fwd += opDigest(OpKind(o[0]), o[1])
	}
	for i := len(ops) - 1; i >= 0; i-- {
		rev += opDigest(OpKind(ops[i][0]), ops[i][1])
	}
	if fwd != rev {
		t.Fatal("digest combine is order-sensitive")
	}
	if opDigest(OpInsert, 5) == opDigest(OpGet, 5) {
		t.Fatal("digest ignores the op kind")
	}
	if opDigest(OpInsert, 5) == opDigest(OpInsert, 6) {
		t.Fatal("digest ignores the key")
	}
}
