// Package workload is the declarative scenario engine: the role
// YCSB-style drivers play for key-value stores and Arkouda's server
// benchmarks play for Chapel, aimed at the structures this repository
// builds. A Spec describes *what* to run entirely as data; a Driver
// binds it to one structure; Run executes it on a fresh simulated
// System and serializes the evidence as a Report — the
// machine-readable perf record CI tracks.
//
// # Specs
//
// A Spec is JSON-round-trippable (strict-parsed: unknown keys at any
// nesting depth are rejected, so a typo'd knob fails loudly) and
// validated before running. It covers:
//
//   - the target structure (hashmap, queue, stack, skiplist) and
//     system shape (locales, tasks per locale, backend, latency scale)
//   - the op mix per phase, over an abstract vocabulary
//     (insert/get/remove/enqueue/steal/bulk); Validate rejects mixes a
//     structure cannot serve
//   - the key distribution: uniform, Zipfian (Gray et al., YCSB's
//     θ=0.99 default) or hot-set (HotProb of traffic on the first
//     HotFraction of the keyspace)
//   - the arrival model: closed-loop (OpsPerTask), time-based
//     (Seconds), optionally paced open-loop (TargetRate)
//   - phases (the classic load → run → churn shape; churn rounds
//     destroy and recreate the structure)
//   - fault injection (a comm.Perturbation latency plan — slow-locale
//     or explicit per-locale scales; counters stay exact)
//   - the hashmap's read replication cache (CacheSpec): gets served
//     from per-locale replicas, mutations writing through with
//     broadcast invalidation
//
// # Determinism
//
// Every task draws its ops and keys from a private splitmix64 stream
// derived from (spec seed, phase, round, locale, task), so a given
// spec replays the identical op stream on every invocation —
// regressions found by a scenario are debuggable by construction, and
// contention-free closed-loop scenarios are counter-exact across runs
// (TestSeededRunBitIdentical). Each phase's report carries an
// order-insensitive digest of the op stream as the replay witness.
//
// # Evidence
//
// A PhaseReport records throughput, HDR-style log-bucketed latency
// percentiles (bench.Histogram, ≤3% quantization), the exact comm
// counter and matrix deltas (including cache hits/misses/
// invalidations), the busiest-inbound-column hotspot metric, and the
// digest. The run-level Report adds the end-of-run heap verdict
// (use-after-free and double-free totals from the poisoned heaps) and
// the epoch-reclamation balance (deferred vs reclaimed).
//
// cmd/loadgen is the CLI (flags or -spec JSON); cmd/soak runs
// long-lived churn scenarios on the same engine.
package workload
