package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
	"gopgas/internal/telemetry"
)

// The fault provider's crash action is comm-plane only and
// irreversible: the locale stops answering immediately, and clearing
// or replacing latency faults afterward must not resurrect it — its
// shards may already have been adopted elsewhere.
func TestTelemetryFaultCrash(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer sys.Shutdown()
	tel := NewTelemetry()
	tel.attach("crash-test", sys, nil)
	defer tel.detach()
	fault := tel.Options().Fault

	if err := fault(telemetry.FaultRequest{Crash: true, CrashLocale: 0}); err == nil {
		t.Fatal("crash of locale 0 accepted")
	}
	if err := fault(telemetry.FaultRequest{Crash: true, CrashLocale: 2}); err != nil {
		t.Fatalf("crash of locale 2 rejected: %v", err)
	}
	if sys.Alive(2) {
		t.Fatal("locale 2 still alive after crash")
	}

	// Latency faults layer on and clear off without touching liveness.
	if err := fault(telemetry.FaultRequest{SlowFactor: 8, SlowLocale: 1}); err != nil {
		t.Fatalf("slow-locale fault rejected: %v", err)
	}
	if err := fault(telemetry.FaultRequest{Clear: true}); err != nil {
		t.Fatalf("clear rejected: %v", err)
	}
	if sys.Alive(2) {
		t.Fatal("clearing latency faults resurrected the crashed locale")
	}
	if !sys.Alive(1) || !sys.Alive(3) {
		t.Fatal("crash leaked onto other locales")
	}

	// An empty request is rejected with a message naming the actions.
	if err := fault(telemetry.FaultRequest{}); err == nil || !strings.Contains(err.Error(), "crash") {
		t.Fatalf("empty fault request: %v", err)
	}
}

// TestRunLiveServesTelemetry drives the full live plane: a scenario
// runs under RunLive with the HTTP server attached, and the test acts
// as the operator — polling status until the run is live, reading the
// matrix and histogram mid-run, injecting a fault over POST, and
// draining a trace window. The run must still finish with balanced
// span books (the books count decisions, so windowed HTTP drains can't
// unbalance them) and the server must report unattached after it.
func TestRunLiveServesTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive (wall-clock phase)")
	}
	tel := NewTelemetry()
	srv, err := telemetry.Start("127.0.0.1:0", tel.Options())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, []byte) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	spec := Spec{
		Name:           "live",
		Structure:      StructureHashmap,
		Locales:        4,
		TasksPerLocale: 2,
		Backend:        "none",
		Seed:           23,
		Keyspace:       256,
		Dist:           KeyDist{Kind: DistHotSet, HotFraction: 0.1, HotProb: 0.9},
		Trace:          &TraceSpec{Enabled: true, SampleRate: 16},
		Phases: []Phase{
			{Name: "load", Mix: Mix{Insert: 1}, OpsPerTask: 200},
			{Name: "run", Mix: Mix{Insert: 2, Get: 7, Remove: 1}, Seconds: 2},
		},
	}
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := RunLive(spec, nil, tel)
		done <- result{rep, err}
	}()

	// Poll until the run is attached. Attach precedes every phase, so
	// breaking on Running (not on visible op progress, which lags a
	// worker's first chunk flush) leaves the whole multi-second run as
	// budget for the mid-run probes below — waiting for ops here is
	// what once let a loaded host expire the run mid-probe.
	var status struct {
		Scenario string `json:"scenario"`
		Running  bool   `json:"running"`
		Ops      int64  `json:"ops"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("run never reported live over /api/status")
		}
		code, body := get("/api/status")
		if code != http.StatusOK {
			t.Fatalf("/api/status: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &status); err != nil {
			t.Fatalf("/api/status not JSON: %v", err)
		}
		if status.Running {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.Scenario != "live" {
		t.Fatalf("status names scenario %q", status.Scenario)
	}

	code, body := get("/api/matrix")
	if code != http.StatusOK {
		t.Fatalf("/api/matrix: %d %s", code, body)
	}
	var matrix struct {
		Matrix [][]int64 `json:"matrix"`
	}
	if err := json.Unmarshal(body, &matrix); err != nil || len(matrix.Matrix) != spec.Locales {
		t.Fatalf("/api/matrix payload (err=%v): %s", err, body)
	}

	code, body = get("/api/hist")
	if code != http.StatusOK {
		t.Fatalf("/api/hist: %d %s", code, body)
	}
	var hist struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatalf("/api/hist not JSON: %v", err)
	}

	// Inject a fault mid-run; the run must absorb it and keep going.
	resp, err := http.Post(fmt.Sprintf("http://%s/api/fault", srv.Addr()),
		"application/json", bytes.NewBufferString(`{"slow_locale":1,"slow_factor":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/fault mid-run: %d", resp.StatusCode)
	}

	// Crash a locale over HTTP mid-run: its tasks abandon fail-stop and
	// the run must still finish cleanly — refusals drain to the ledger
	// instead of stalling quiescence. Locale 0 is rejected (it hosts the
	// global epoch word).
	resp, err = http.Post(fmt.Sprintf("http://%s/api/fault", srv.Addr()),
		"application/json", bytes.NewBufferString(`{"crash":true,"crash_locale":1}`))
	if err != nil {
		t.Fatal(err)
	}
	crashBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/fault crash: %d %s", resp.StatusCode, crashBody)
	}
	resp, err = http.Post(fmt.Sprintf("http://%s/api/fault", srv.Addr()),
		"application/json", bytes.NewBufferString(`{"crash":true,"crash_locale":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("crash of locale 0 returned %d, want 422", resp.StatusCode)
	}

	// Drain a live trace window: events stream out as trace-event JSON.
	code, body = get("/api/trace?window=64")
	if code != http.StatusOK {
		t.Fatalf("/api/trace: %d %s", code, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/api/trace not trace-event JSON: %v", err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.rep.Trace == nil || !res.rep.Trace.Balanced {
		t.Fatalf("live-drained run lost book balance: %+v", res.rep.Trace)
	}
	if !res.rep.Heap.Safe() || !res.rep.Epoch.Balanced() {
		t.Fatalf("live run failed safety verdicts: heap %+v epoch %+v", res.rep.Heap, res.rep.Epoch)
	}

	// Detached: status must flip to not-running with the server still
	// up, and the live histogram must show the workers streamed samples
	// (ops survives detach — only the System pointer is cleared).
	code, body = get("/api/status")
	if code != http.StatusOK {
		t.Fatalf("/api/status after run: %d", code)
	}
	if err := json.Unmarshal(body, &status); err != nil || status.Running {
		t.Fatalf("server still reports a running scenario after detach: %s", body)
	}
	if status.Ops == 0 {
		t.Fatal("no live latency samples ever reached the telemetry bridge")
	}
}
