// Package trace is the event-tracing plane: a per-locale,
// cache-line-padded, lock-free ring-buffer span recorder for the
// simulator's load-bearing lifecycles — on-statement dispatch,
// aggregated flushes, combiner drain passes, epoch transitions and
// bucket migrations. Where the comm counters answer "how much", a
// trace answers "when and for how long": each instrumented lifecycle
// records a begin/end event pair carrying (src, dst, kind, bytes,
// seq), timestamped against one recorder-wide monotonic epoch.
//
// The recorder preserves the measurement plane's contention-free
// guarantee (PR 5): every locale writes its own padded ring through an
// atomic write cursor (a bounded MPMC queue in the per-slot-sequence
// style), recording never blocks — a full ring drops the event and
// counts the drop — and the hot path performs zero allocations. A
// disabled recorder costs the caller exactly one nil check; an enabled
// one charges sampled kinds one shared-counter increment per event
// considered. Control-plane kinds (epoch advance/reclaim, migrations,
// reroutes) always record regardless of the sampling rate, so span
// books like "migration spans == MigAdopted" stay exact under any
// rate; only the high-frequency kinds (dispatch, flush, combine,
// deferral) are sampled.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies the lifecycle a trace event belongs to.
type Kind uint8

const (
	// KindDispatch is a synchronous remote on-statement: begin at
	// injection on the source, end when the callee returns.
	KindDispatch Kind = iota
	// KindAsync is a fire-and-forget on-statement: begin at launch on
	// the source, end when the detached task completes.
	KindAsync
	// KindFlush is one aggregated-buffer flush toward one destination:
	// bytes is the batch payload, arg the operation count.
	KindFlush
	// KindCombine is one flat-combiner drain pass on the owner: arg is
	// the number of published operations the pass applied.
	KindCombine
	// KindEpochAdvance spans one won reclamation election: token scan
	// through generation reclaim; arg is the epoch advanced to (0 when
	// a pinned token blocked the advance).
	KindEpochAdvance
	// KindEpochReclaim spans one limbo generation's reclamation on one
	// locale; arg is the number of objects scattered to their owners.
	KindEpochReclaim
	// KindMigrate spans one epoch-coherent bucket handoff on the source
	// owner: snapshot, ship, republish, retire; bytes is the shipped
	// payload, arg the bucket index. Recorded only for migrations that
	// complete, so begin-counts equal the MigAdopted/MigRetired books.
	KindMigrate
	// KindReroute is an instant: a routed write found a stale owner
	// generation and re-dispatched; dst is the current owner, arg the
	// bucket index.
	KindReroute
	// KindDefer is an instant: one deferred deletion (sampled); dst is
	// the owning locale of the dead object.
	KindDefer
	// KindPinned is an instant gauge emitted per locale by the advance
	// scan: arg is the number of pinned tokens the scan observed.
	KindPinned
	// KindCrash is an instant: dst was declared dead (fail-stop). Always
	// recorded — a run records exactly as many crash instants as crashes
	// applied.
	KindCrash
	// KindAdopt spans one shard adoption during failover: src is the
	// dead locale, dst the surviving adopter, bytes the shipped payload,
	// arg the bucket index. Recorded only for completed adoptions, so
	// begin-counts equal the shards-adopted ledger.
	KindAdopt
	// KindForceRetire spans one epoch token force-retired on a dead
	// locale: one span per token, so begin-counts equal the
	// tokens-force-retired ledger; arg is the epoch the token was
	// stranded pinned in.
	KindForceRetire
	// KindPartition marks one partition sever instant: src and dst are
	// the severed pair. Always recorded — a trace must never miss a
	// fault-plan edge.
	KindPartition
	// KindHeal marks one partition heal instant: src and dst are the
	// repaired pair. Always recorded, so sever/heal instants pair up
	// exactly with the availability report's partition counts.
	KindHeal

	numKinds
)

var kindNames = [numKinds]string{
	KindDispatch:     "dispatch",
	KindAsync:        "async",
	KindFlush:        "flush",
	KindCombine:      "combine",
	KindEpochAdvance: "epoch_advance",
	KindEpochReclaim: "epoch_reclaim",
	KindMigrate:      "migrate",
	KindReroute:      "reroute",
	KindDefer:        "defer",
	KindPinned:       "pinned",
	KindCrash:        "crash",
	KindAdopt:        "adopt",
	KindForceRetire:  "force_retire",
	KindPartition:    "partition",
	KindHeal:         "heal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NumKinds returns the number of event kinds (for summary consumers).
func NumKinds() int { return int(numKinds) }

// sampled reports whether k is a high-frequency kind subject to the
// recorder's sampling rate. Control-plane kinds always record: they
// are rare, and their span books are asserted exactly against the
// comm counters.
func sampled(k Kind) bool {
	switch k {
	case KindDispatch, KindAsync, KindFlush, KindCombine, KindDefer:
		return true
	}
	return false
}

// Phase distinguishes the two halves of a span from a standalone mark.
type Phase uint8

const (
	PhaseBegin Phase = iota
	PhaseEnd
	PhaseInstant
)

// Event is one fixed-size trace record. Begin/end halves of a span
// share a Seq; instants get their own. TS is nanoseconds since the
// recorder's creation (one monotonic epoch for every locale, so
// cross-locale ordering in an exported trace is meaningful).
type Event struct {
	TS    int64
	Seq   uint64
	Task  uint64
	Bytes int64
	Arg   int64
	Src   int32
	Dst   int32
	Kind  Kind
	Phase Phase
}

// Config configures a Recorder.
type Config struct {
	// BufferSize is the per-locale ring capacity in events, rounded up
	// to a power of two; <= 0 selects DefaultBufferSize.
	BufferSize int
	// SampleRate records 1 in N sampled-kind events (dispatch, flush,
	// combine, deferral); <= 1 records every event. Control-plane kinds
	// ignore the rate.
	SampleRate int
}

// DefaultBufferSize is the per-locale ring capacity used when
// Config.BufferSize is unset: 16Ki events ≈ 1 MiB per locale.
const DefaultBufferSize = 1 << 14

// slot is one ring cell: the per-slot sequence number that carries the
// producer/consumer handshake (and the happens-before edge making the
// event payload race-free), plus the event itself.
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// kindBook is one kind's begin/end/instant call accounting. Books
// count recording *decisions* (post-sampling), not ring occupancy: a
// Begin that passes sampling increments begins and hands back a live
// Span whose End increments ends even if either event was dropped by a
// full ring — so after quiescence the books balance exactly, and any
// event-stream shortfall is explained by the dropped counter alone.
type kindBook struct {
	begins   atomic.Int64
	ends     atomic.Int64
	instants atomic.Int64
}

// ring is one locale's recorder shard. Cursors, the sampling clock and
// the drop counter each get their own cache line so concurrent tasks
// on one locale never falsely share, and neighbouring locales' rings
// are separated by the trailing pad.
type ring struct {
	slots []slot
	_     [64 - 24]byte
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
	_     [56]byte
	tick  atomic.Uint64 // sampling clock for sampled kinds
	_     [56]byte
	seq   atomic.Uint64 // span/instant id source
	_     [56]byte
	drop  atomic.Int64 // events lost to a full ring (TraceDropped)
	_     [56]byte
	books [numKinds]kindBook
	_     [64]byte
}

// Recorder is the per-locale span recorder. All methods are safe for
// concurrent use; recording methods never block and never allocate.
type Recorder struct {
	start   time.Time
	mask    uint64
	rate    uint64
	rings   []ring
	enabled atomic.Bool
	drainMu sync.Mutex // serializes consumers (producers are lock-free)
}

// NewRecorder creates a recorder with one ring per locale. It starts
// enabled.
func NewRecorder(locales int, cfg Config) *Recorder {
	if locales < 1 {
		panic(fmt.Sprintf("trace: locales must be >= 1, got %d", locales))
	}
	size := cfg.BufferSize
	if size <= 0 {
		size = DefaultBufferSize
	}
	// Round up to a power of two so the cursor wrap is a mask.
	cap := 1
	for cap < size {
		cap <<= 1
	}
	rate := cfg.SampleRate
	if rate < 1 {
		rate = 1
	}
	r := &Recorder{
		start: time.Now(),
		mask:  uint64(cap - 1),
		rate:  uint64(rate),
		rings: make([]ring, locales),
	}
	for l := range r.rings {
		rg := &r.rings[l]
		rg.slots = make([]slot, cap)
		for i := range rg.slots {
			rg.slots[i].seq.Store(uint64(i))
		}
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording on or off. Spans begun while enabled
// still record their end after a disable, keeping the books balanced.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the recorder is currently recording.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SampleRate returns the effective 1-in-N rate for sampled kinds.
func (r *Recorder) SampleRate() int { return int(r.rate) }

// Cap returns the per-locale ring capacity in events.
func (r *Recorder) Cap() int { return int(r.mask + 1) }

// Locales returns the number of per-locale rings.
func (r *Recorder) Locales() int { return len(r.rings) }

// now returns nanoseconds since the recorder's epoch (monotonic).
func (r *Recorder) now() int64 { return int64(time.Since(r.start)) }

// Span is the in-flight half of a begin/end pair, returned by Begin
// and closed by End. The zero Span (sampling or a disabled recorder
// declined the event) is inert: End on it is a nil check. Spans are
// values — they live on the caller's stack and cost no allocation.
type Span struct {
	r     *Recorder
	ring  *ring
	t0    int64
	seq   uint64
	task  uint64
	bytes int64
	arg   int64
	src   int32
	dst   int32
	kind  Kind
}

// Active reports whether the span was actually recorded.
func (s Span) Active() bool { return s.r != nil }

// Begin opens a span of kind k recorded on locale's ring (conventionally
// where the lifecycle executes). Sampled kinds record 1 in SampleRate
// calls; control-plane kinds always record. The returned Span must be
// closed with End (or EndWith) exactly once; the zero Span returned
// when the event is declined makes that unconditional at call sites.
func (r *Recorder) Begin(locale int, k Kind, task uint64, src, dst int, bytes, arg int64) Span {
	if !r.enabled.Load() {
		return Span{}
	}
	rg := &r.rings[locale]
	if r.rate > 1 && sampled(k) && rg.tick.Add(1)%r.rate != 0 {
		return Span{}
	}
	sp := Span{
		r: r, ring: rg, t0: r.now(),
		seq:  rg.seq.Add(1)<<16 | uint64(locale&0xFFFF),
		task: task, bytes: bytes, arg: arg,
		src: int32(src), dst: int32(dst), kind: k,
	}
	rg.books[k].begins.Add(1)
	r.push(rg, Event{
		TS: sp.t0, Seq: sp.seq, Task: task, Bytes: bytes, Arg: arg,
		Src: sp.src, Dst: sp.dst, Kind: k, Phase: PhaseBegin,
	})
	return sp
}

// End closes the span, recording the end event with the fields carried
// from Begin. A zero Span is a no-op.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.ring.books[s.kind].ends.Add(1)
	s.r.push(s.ring, Event{
		TS: s.r.now(), Seq: s.seq, Task: s.task, Bytes: s.bytes, Arg: s.arg,
		Src: s.src, Dst: s.dst, Kind: s.kind, Phase: PhaseEnd,
	})
}

// EndWith closes the span with updated payload fields — for lifecycles
// whose volume is only known at completion (a migration's shipped
// bytes, a combiner pass's applied count). The begin event keeps its
// original fields; consumers read the pair's end half for totals.
func (s Span) EndWith(bytes, arg int64) {
	if s.r == nil {
		return
	}
	s.bytes = bytes
	s.arg = arg
	s.End()
}

// Instant records a standalone mark (reroutes, deferrals, gauges).
// Sampled kinds honour the sampling rate, exactly like Begin.
func (r *Recorder) Instant(locale int, k Kind, task uint64, src, dst int, bytes, arg int64) {
	if !r.enabled.Load() {
		return
	}
	rg := &r.rings[locale]
	if r.rate > 1 && sampled(k) && rg.tick.Add(1)%r.rate != 0 {
		return
	}
	rg.books[k].instants.Add(1)
	r.push(rg, Event{
		TS: r.now(), Seq: rg.seq.Add(1)<<16 | uint64(locale&0xFFFF),
		Task: task, Bytes: bytes, Arg: arg,
		Src: int32(src), Dst: int32(dst), Kind: k, Phase: PhaseInstant,
	})
}

// push enqueues ev on rg's bounded MPMC ring: claim the write cursor
// when the target slot's sequence says it is free, publish the payload
// by storing the slot sequence (the release edge a concurrent drain
// acquires). A full ring drops the event — recording never blocks the
// simulated system — and counts the loss.
func (r *Recorder) push(rg *ring, ev Event) bool {
	for {
		pos := rg.enq.Load()
		s := &rg.slots[pos&r.mask]
		diff := int64(s.seq.Load()) - int64(pos)
		switch {
		case diff == 0:
			if rg.enq.CompareAndSwap(pos, pos+1) {
				s.ev = ev
				s.seq.Store(pos + 1)
				return true
			}
		case diff < 0:
			// The slot one lap back is still unconsumed: full.
			rg.drop.Add(1)
			return false
		default:
			// Another producer claimed pos; reload the cursor.
		}
	}
}

// pop dequeues one event from rg. Callers hold drainMu (one consumer
// at a time); producers stay lock-free throughout.
func (r *Recorder) pop(rg *ring) (Event, bool) {
	pos := rg.deq.Load()
	s := &rg.slots[pos&r.mask]
	if int64(s.seq.Load())-int64(pos+1) < 0 {
		return Event{}, false
	}
	ev := s.ev
	s.seq.Store(pos + r.mask + 1) // recycle the slot for the next lap
	rg.deq.Store(pos + 1)
	return ev, true
}

// Drain removes up to max buffered events across every locale's ring
// (max <= 0 drains everything currently buffered) and returns them
// sorted by timestamp. Concurrent recording continues undisturbed;
// concurrent Drains serialize.
func (r *Recorder) Drain(max int) []Event {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	var out []Event
	for l := range r.rings {
		rg := &r.rings[l]
		for max <= 0 || len(out) < max {
			ev, ok := r.pop(rg)
			if !ok {
				break
			}
			out = append(out, ev)
		}
		if max > 0 && len(out) >= max {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Dropped returns the total number of events lost to full rings — the
// TraceDropped counter. A drained trace plus Dropped accounts for
// every recording decision the books counted.
func (r *Recorder) Dropped() int64 {
	var n int64
	for l := range r.rings {
		n += r.rings[l].drop.Load()
	}
	return n
}

// Book is one kind's recording-decision accounting, summed across
// locales.
type Book struct {
	Kind     string `json:"kind"`
	Begins   int64  `json:"begins"`
	Ends     int64  `json:"ends"`
	Instants int64  `json:"instants"`
}

// Books returns the per-kind begin/end/instant books, indexed by Kind.
// After the system quiesces, Begins == Ends for every kind — each
// sampled-in Begin hands back exactly one live Span — regardless of
// how many events a full ring dropped.
func (r *Recorder) Books() []Book {
	books := make([]Book, numKinds)
	for k := 0; k < int(numKinds); k++ {
		books[k].Kind = Kind(k).String()
	}
	for l := range r.rings {
		rg := &r.rings[l]
		for k := 0; k < int(numKinds); k++ {
			books[k].Begins += rg.books[k].begins.Load()
			books[k].Ends += rg.books[k].ends.Load()
			books[k].Instants += rg.books[k].instants.Load()
		}
	}
	return books
}

// BooksBalanced reports whether every kind's begins equal its ends.
func BooksBalanced(books []Book) bool {
	for _, b := range books {
		if b.Begins != b.Ends {
			return false
		}
	}
	return true
}
