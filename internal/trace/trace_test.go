package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSpanRoundTrip drains a handful of spans and instants back out
// and checks every recorded field survives.
func TestSpanRoundTrip(t *testing.T) {
	r := NewRecorder(2, Config{BufferSize: 128})
	sp := r.Begin(0, KindDispatch, 7, 0, 1, 64, 3)
	if !sp.Active() {
		t.Fatal("unsampled recorder declined a span")
	}
	sp.End()
	r.Instant(1, KindReroute, 9, 1, 0, 0, 42)
	mig := r.Begin(1, KindMigrate, 9, 1, 0, 0, 5)
	mig.EndWith(4096, 5)

	evs := r.Drain(0)
	if len(evs) != 5 {
		t.Fatalf("drained %d events, want 5", len(evs))
	}
	var begin, end, inst, migEnd *Event
	for i := range evs {
		ev := &evs[i]
		switch {
		case ev.Kind == KindDispatch && ev.Phase == PhaseBegin:
			begin = ev
		case ev.Kind == KindDispatch && ev.Phase == PhaseEnd:
			end = ev
		case ev.Kind == KindReroute:
			inst = ev
		case ev.Kind == KindMigrate && ev.Phase == PhaseEnd:
			migEnd = ev
		}
	}
	if begin == nil || end == nil || inst == nil || migEnd == nil {
		t.Fatalf("missing events in %+v", evs)
	}
	if begin.Seq != end.Seq {
		t.Fatalf("span halves disagree on seq: %d vs %d", begin.Seq, end.Seq)
	}
	if begin.Src != 0 || begin.Dst != 1 || begin.Bytes != 64 || begin.Arg != 3 || begin.Task != 7 {
		t.Fatalf("begin fields corrupted: %+v", begin)
	}
	if end.TS < begin.TS {
		t.Fatalf("end before begin: %d < %d", end.TS, begin.TS)
	}
	if inst.Phase != PhaseInstant || inst.Arg != 42 {
		t.Fatalf("instant fields corrupted: %+v", inst)
	}
	if migEnd.Bytes != 4096 || migEnd.Arg != 5 {
		t.Fatalf("EndWith did not update payload: %+v", migEnd)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events from an uncontended run", r.Dropped())
	}
}

// TestDisabledAndZeroSpan checks the inert paths: a disabled recorder
// declines everything, and the zero Span's End is a no-op.
func TestDisabledAndZeroSpan(t *testing.T) {
	r := NewRecorder(1, Config{BufferSize: 64})
	r.SetEnabled(false)
	sp := r.Begin(0, KindDispatch, 1, 0, 0, 0, 0)
	if sp.Active() {
		t.Fatal("disabled recorder handed out a live span")
	}
	sp.End() // must not panic or record
	r.Instant(0, KindReroute, 1, 0, 0, 0, 0)
	if evs := r.Drain(0); len(evs) != 0 {
		t.Fatalf("disabled recorder buffered %d events", len(evs))
	}
	var zero Span
	zero.End()
	zero.EndWith(1, 1)
}

// TestSampling checks the 1-in-N clock for sampled kinds and that
// control-plane kinds bypass it entirely.
func TestSampling(t *testing.T) {
	r := NewRecorder(1, Config{BufferSize: 1 << 12, SampleRate: 4})
	const n = 1000
	for i := 0; i < n; i++ {
		r.Begin(0, KindDispatch, 1, 0, 0, 0, 0).End()
	}
	for i := 0; i < 10; i++ {
		r.Begin(0, KindMigrate, 1, 0, 0, 0, 0).End()
	}
	books := r.Books()
	if got := books[KindDispatch].Begins; got != n/4 {
		t.Fatalf("sampled 1/4 of %d dispatches: recorded %d, want %d", n, got, n/4)
	}
	if got := books[KindMigrate].Begins; got != 10 {
		t.Fatalf("control-plane kind was sampled: recorded %d of 10 migrations", got)
	}
	if !BooksBalanced(books) {
		t.Fatalf("books unbalanced: %+v", books)
	}
}

// TestWrapAroundDropsNeverBlock storms a deliberately tiny ring with
// no consumer: pushes must return (never block), losses must land in
// the TraceDropped counter, and the decision books must still balance.
func TestWrapAroundDropsNeverBlock(t *testing.T) {
	r := NewRecorder(2, Config{BufferSize: 64})
	const writers, spansEach = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			loc := w % 2
			for i := 0; i < spansEach; i++ {
				r.Begin(loc, KindDispatch, uint64(w), loc, 1-loc, 8, 0).End()
			}
		}(w)
	}
	wg.Wait()
	if r.Dropped() == 0 {
		t.Fatal("a 64-slot ring absorbed 16000 events without dropping")
	}
	books := r.Books()
	if !BooksBalanced(books) {
		t.Fatalf("books unbalanced after drops: %+v", books)
	}
	want := int64(writers * spansEach)
	if books[KindDispatch].Begins != want {
		t.Fatalf("books counted %d begins, want %d", books[KindDispatch].Begins, want)
	}
	// Everything still buffered + everything dropped == everything recorded.
	drained := int64(len(r.Drain(0)))
	if drained+r.Dropped() != 2*want {
		t.Fatalf("events unaccounted for: drained %d + dropped %d != %d",
			drained, r.Dropped(), 2*want)
	}
}

// TestConcurrentWritersVsDrainer is the -race satellite: concurrent
// writers across locales race a draining exporter. Asserts no torn
// records (a checksum ties every field together), begins == ends
// books, and complete accounting between drained and dropped events.
func TestConcurrentWritersVsDrainer(t *testing.T) {
	const locales, writersPerLocale, spansEach = 4, 4, 3000
	r := NewRecorder(locales, Config{BufferSize: 1 << 10})

	var wg sync.WaitGroup
	for loc := 0; loc < locales; loc++ {
		for w := 0; w < writersPerLocale; w++ {
			wg.Add(1)
			go func(loc, w int) {
				defer wg.Done()
				task := uint64(loc*writersPerLocale + w)
				for i := 0; i < spansEach; i++ {
					dst := (loc + i) % locales
					bytes := int64(i % 512)
					// Arg carries a checksum over the other payload
					// fields so a torn read is detectable.
					arg := int64(loc) + int64(dst)*3 + bytes*7 + int64(task)*11
					sp := r.Begin(loc, KindDispatch, task, loc, dst, bytes, arg)
					r.Instant(loc, KindReroute, task, loc, dst, bytes, arg)
					sp.End()
				}
			}(loc, w)
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var drained []Event
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		drained = append(drained, r.Drain(0)...)
	}
	drained = append(drained, r.Drain(0)...)

	open := map[uint64]Event{}
	for _, ev := range drained {
		if arg := int64(ev.Src) + int64(ev.Dst)*3 + ev.Bytes*7 + int64(ev.Task)*11; ev.Arg != arg {
			t.Fatalf("torn record: %+v (checksum %d)", ev, arg)
		}
		switch ev.Phase {
		case PhaseBegin:
			if _, dup := open[ev.Seq]; dup {
				t.Fatalf("duplicate begin for seq %d", ev.Seq)
			}
			open[ev.Seq] = ev
		case PhaseEnd:
			if b, ok := open[ev.Seq]; ok {
				if b.Src != ev.Src || b.Dst != ev.Dst || b.Task != ev.Task {
					t.Fatalf("span halves disagree: begin %+v end %+v", b, ev)
				}
				delete(open, ev.Seq)
			}
		}
	}
	books := r.Books()
	if !BooksBalanced(books) {
		t.Fatalf("books unbalanced: %+v", books)
	}
	total := int64(locales * writersPerLocale * spansEach)
	if books[KindDispatch].Begins != total {
		t.Fatalf("dispatch begins %d, want %d", books[KindDispatch].Begins, total)
	}
	if books[KindReroute].Instants != total {
		t.Fatalf("reroute instants %d, want %d", books[KindReroute].Instants, total)
	}
	if got := int64(len(drained)) + r.Dropped(); got != 3*total {
		t.Fatalf("events unaccounted for: drained+dropped %d, want %d", got, 3*total)
	}
}

// TestChromeExport checks the exported JSON parses as the Chrome
// trace-event array format with paired async begin/end ids.
func TestChromeExport(t *testing.T) {
	r := NewRecorder(2, Config{BufferSize: 256})
	r.Begin(0, KindDispatch, 3, 0, 1, 128, 0).End()
	r.Begin(1, KindMigrate, 4, 1, 0, 0, 9).EndWith(2048, 9)
	r.Instant(0, KindPinned, 3, 0, 0, 0, 2)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Drain(0)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	byPhase := map[string]int{}
	ids := map[string][]string{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		byPhase[ph]++
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		if ph == "b" || ph == "e" {
			id, _ := ev["id"].(string)
			if id == "" {
				t.Fatalf("async event without id: %v", ev)
			}
			ids[ph] = append(ids[ph], id)
		}
	}
	if byPhase["b"] != 2 || byPhase["e"] != 2 || byPhase["i"] != 1 || byPhase["M"] != 2 {
		t.Fatalf("phase counts off: %v", byPhase)
	}
	if len(ids["b"]) != len(ids["e"]) {
		t.Fatalf("unpaired async ids: %v", ids)
	}
}

// TestSummarize checks per-kind span matching, durations and the text
// rendering.
func TestSummarize(t *testing.T) {
	r := NewRecorder(1, Config{BufferSize: 256})
	for i := 0; i < 5; i++ {
		r.Begin(0, KindFlush, 1, 0, 1, 100, 4).End()
	}
	r.Instant(0, KindPinned, 1, 0, 0, 0, 1)
	sum := Summarize(r.Drain(0))
	if sum.Events != 11 {
		t.Fatalf("summarized %d events, want 11", sum.Events)
	}
	if got := sum.SpanCount(KindFlush); got != 5 {
		t.Fatalf("matched %d flush spans, want 5", got)
	}
	if !sum.Balanced() {
		t.Fatal("summary unbalanced on a clean drain")
	}
	if sum.Kinds[KindFlush].Bytes != 500 {
		t.Fatalf("flush bytes %d, want 500", sum.Kinds[KindFlush].Bytes)
	}
	var buf bytes.Buffer
	sum.WriteText(&buf)
	for _, want := range []string{"flush", "pinned", "books: balanced"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("text summary missing %q:\n%s", want, buf.String())
		}
	}
}

// TestDrainWindow checks windowed draining: partial drains consume in
// order and successive windows eventually empty the rings.
func TestDrainWindow(t *testing.T) {
	r := NewRecorder(1, Config{BufferSize: 256})
	for i := 0; i < 10; i++ {
		r.Begin(0, KindDispatch, 1, 0, 0, 0, int64(i)).End()
	}
	first := r.Drain(6)
	if len(first) != 6 {
		t.Fatalf("window drained %d events, want 6", len(first))
	}
	rest := r.Drain(0)
	if len(rest) != 14 {
		t.Fatalf("remainder drained %d events, want 14", len(rest))
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d", r.Dropped())
	}
}

// BenchmarkBeginEnd measures the enabled, unsampled record cost and —
// via -benchmem — asserts the zero-alloc claim.
func BenchmarkBeginEnd(b *testing.B) {
	r := NewRecorder(1, Config{BufferSize: 1 << 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Begin(0, KindDispatch, 1, 0, 1, 64, 0).End()
		if i&0x3FFF == 0x3FFF {
			b.StopTimer()
			r.Drain(0)
			b.StartTimer()
		}
	}
}

// TestRecordZeroAlloc pins the zero-allocation guarantee for the
// enabled record path (both ring-hit and sampled-out flavours).
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(1, Config{BufferSize: 1 << 16})
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Begin(0, KindDispatch, 1, 0, 1, 64, 0).End()
	}); allocs > 0 {
		t.Fatalf("recording allocates %.1f/op", allocs)
	}
	rs := NewRecorder(1, Config{BufferSize: 1 << 10, SampleRate: 1 << 30})
	if allocs := testing.AllocsPerRun(1000, func() {
		rs.Begin(0, KindDispatch, 1, 0, 1, 64, 0).End()
	}); allocs > 0 {
		t.Fatalf("sampled-out path allocates %.1f/op", allocs)
	}
}
