package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (the "JSON Array Format" Perfetto and chrome://tracing load).
// Spans export as async begin/end pairs ("b"/"e") keyed by id — async
// rather than duration events because dispatch spans from one task
// overlap freely and combiner passes run under tasks the recorder
// never saw, so strict B/E nesting cannot be guaranteed.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int64          `json:"pid"`
	TID   uint64         `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports events as Chrome trace-event JSON with
// locale mapped to "process" and task to "thread", loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// microseconds (fractional) since the recorder epoch.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ns"}
	locales := map[int64]bool{}
	for _, ev := range events {
		pid := int64(ev.Src)
		if !locales[pid] {
			locales[pid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": fmt.Sprintf("locale %d", pid)},
			})
		}
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  "gopgas",
			TS:   float64(ev.TS) / 1e3,
			PID:  pid,
			TID:  ev.Task,
			Args: map[string]any{
				"src": ev.Src, "dst": ev.Dst, "seq": ev.Seq,
			},
		}
		if ev.Bytes != 0 {
			ce.Args["bytes"] = ev.Bytes
		}
		if ev.Arg != 0 {
			ce.Args["arg"] = ev.Arg
		}
		switch ev.Phase {
		case PhaseBegin:
			ce.Ph = "b"
			ce.ID = fmt.Sprintf("%#x", ev.Seq)
		case PhaseEnd:
			ce.Ph = "e"
			ce.ID = fmt.Sprintf("%#x", ev.Seq)
		default:
			ce.Ph = "i"
			ce.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// KindStats is one kind's share of a drained event stream.
type KindStats struct {
	Kind     string `json:"kind"`
	Begins   int64  `json:"begins"`
	Ends     int64  `json:"ends"`
	Instants int64  `json:"instants,omitempty"`
	// Spans counts begin/end pairs matched by seq; TotalNS/MaxNS sum
	// and bound their durations.
	Spans   int64 `json:"spans"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
	// Bytes sums the end-half payload of matched spans.
	Bytes int64 `json:"bytes,omitempty"`
}

// Summary aggregates a drained event stream per kind.
type Summary struct {
	Events int64       `json:"events"`
	Kinds  []KindStats `json:"kinds"`
}

// Summarize aggregates events (as returned by Drain) into per-kind
// span counts and durations. Event-level begins equal ends whenever
// the recorder dropped nothing; the recorder's Books are the
// drop-proof accounting.
func Summarize(events []Event) Summary {
	s := Summary{Events: int64(len(events)), Kinds: make([]KindStats, numKinds)}
	for k := 0; k < int(numKinds); k++ {
		s.Kinds[k].Kind = Kind(k).String()
	}
	begins := make(map[uint64]int64, len(events)/2)
	for _, ev := range events {
		ks := &s.Kinds[ev.Kind]
		switch ev.Phase {
		case PhaseBegin:
			ks.Begins++
			begins[ev.Seq] = ev.TS
		case PhaseEnd:
			ks.Ends++
			if t0, ok := begins[ev.Seq]; ok {
				delete(begins, ev.Seq)
				dur := ev.TS - t0
				ks.Spans++
				ks.TotalNS += dur
				if dur > ks.MaxNS {
					ks.MaxNS = dur
				}
				ks.Bytes += ev.Bytes
			}
		default:
			ks.Instants++
		}
	}
	return s
}

// Balanced reports whether every kind's event-level begins equal its
// ends — true for any full drain with zero drops.
func (s Summary) Balanced() bool {
	for _, ks := range s.Kinds {
		if ks.Begins != ks.Ends {
			return false
		}
	}
	return true
}

// SpanCount returns the matched-span count for kind k.
func (s Summary) SpanCount(k Kind) int64 { return s.Kinds[k].Spans }

// WriteText writes the human-readable summary table: per-kind span
// counts, mean/max durations, and the begin/end books.
func (s Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events\n", s.Events)
	fmt.Fprintf(w, "  %-14s %10s %10s %10s %12s %12s %12s\n",
		"kind", "begins", "ends", "instants", "spans", "mean", "max")
	kinds := append([]KindStats(nil), s.Kinds...)
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].Spans > kinds[j].Spans })
	for _, ks := range kinds {
		if ks.Begins == 0 && ks.Ends == 0 && ks.Instants == 0 {
			continue
		}
		mean := int64(0)
		if ks.Spans > 0 {
			mean = ks.TotalNS / ks.Spans
		}
		fmt.Fprintf(w, "  %-14s %10d %10d %10d %12d %12s %12s\n",
			ks.Kind, ks.Begins, ks.Ends, ks.Instants, ks.Spans,
			fmtDur(mean), fmtDur(ks.MaxNS))
	}
	if s.Balanced() {
		fmt.Fprintf(w, "  books: balanced (begins == ends per kind)\n")
	} else {
		fmt.Fprintf(w, "  books: UNBALANCED at event level (drops or open spans)\n")
	}
}

func fmtDur(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
