package pgas

import (
	"fmt"
	"sync/atomic"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
)

// Per-task aggregation buffers: the pgas face of comm.Aggregator.
// A task obtains a destination view with Ctx.Aggregator(dst), buffers
// small remote operations into it (Call, Free, Put, Add), and drains
// everything with Ctx.Flush. Buffered operations execute on their
// destination in enqueue order when the buffer flushes — either
// explicitly, or automatically when it reaches the configured
// capacity. One flush costs one bulk transfer instead of one round
// trip per operation.
//
// Operations destined for the task's own locale execute inline
// immediately (as `on here` is elided), so callers can aggregate
// uniformly without special-casing locality.

// Modelled payload sizes, in bytes, of the buffered operation kinds.
// They keep BulkBytes meaningful: a Free ships one address, the others
// ship an address/handle plus one word of argument.
const (
	aggFreeBytes = 8
	aggCallBytes = 16
	aggPutBytes  = 16
	aggAddBytes  = 16
)

// Aggregator is one task's set of per-destination remote-op buffers.
// It is created lazily by Ctx.Aggregator and, like the Ctx itself,
// must not be shared between goroutines.
type Aggregator struct {
	c     *Ctx
	agg   *comm.Aggregator
	freed atomic.Int64 // objects released by Free ops (local + flushed)
}

func newAggregator(c *Ctx) *Aggregator {
	s := c.sys
	a := &Aggregator{c: c}
	a.agg = comm.NewAggregator(c.here.id, len(s.locales), s.cfg.Agg,
		&s.counters, s.matrix, s.cfg.Latency,
		func(dst int, batch []comm.Op) {
			// The batch executes on the destination, as if the flush
			// were one on-statement carrying the whole scatter list.
			// The destination context is scoped to the batch, so it
			// comes from the same pool the sync dispatch path uses.
			//
			// A flush aimed at a dead destination drains to the
			// lost-ops ledger: each workload op in the batch counts one
			// OpsLost and is discarded. A flush aimed at a partitioned
			// destination parks instead — the pair may heal, so each
			// workload op files into the source locale's retry ledger
			// and redelivers through this same framing later. Frees are
			// the one exemption from both: they are the reclamation
			// protocol's scatter lists, and under the shared-storage
			// failover conceit a dead locale's heap partition remains
			// reclaimable, so deferred==reclaimed stays provable after
			// a crash. Salvage contexts (c.salvage) never drop.
			r := s.refusalOf(c, dst)
			tc := s.borrowCtx(s.locales[dst])
			tc.salvage = c.salvage
			for _, op := range batch {
				if _, isFree := op.Exec.(freeOp); !isFree && r != refuseNone {
					if r == refusePartition && s.parkOp(c.here.id, dst, op) {
						continue
					}
					s.counters.IncOpsLost(c.here.id, 1)
					continue
				}
				switch exec := op.Exec.(type) {
				case freeOp:
					exec(tc)
				case func(*Ctx):
					exec(tc)
				case CombinableCall:
					exec.Exec(tc)
				default:
					panic(fmt.Sprintf("pgas: unknown aggregated op payload %T", op.Exec))
				}
			}
			s.releaseCtx(tc)
		})
	a.agg.SetPerturbation(s.Perturbation())
	a.agg.SetTracer(s.tracer, c.taskID)
	return a
}

// AggBuffer is a destination-locale view of a task's aggregator — the
// handle Ctx.Aggregator returns. It is a small value; copy freely
// within the owning task.
type AggBuffer struct {
	a   *Aggregator
	dst int
}

// Aggregator returns this task's aggregation buffer for the given
// destination locale, creating the task's aggregator on first use.
// Buffered operations are shipped by Flush (on the buffer or the Ctx)
// or automatically at capacity per the system's comm.AggConfig.
func (c *Ctx) Aggregator(dst int) AggBuffer {
	if dst < 0 || dst >= len(c.sys.locales) {
		panic(fmt.Sprintf("pgas: Aggregator locale %d out of range [0, %d)", dst, len(c.sys.locales)))
	}
	if c.agg == nil {
		c.agg = newAggregator(c)
	}
	return AggBuffer{a: c.agg, dst: dst}
}

// Dst returns the destination locale this buffer ships to.
func (b AggBuffer) Dst() int { return b.dst }

// Pending returns the number of operations currently buffered for this
// destination.
func (b AggBuffer) Pending() int { return b.a.agg.PendingTo(b.dst) }

// Freed returns the total number of objects released through Free on
// the owning task's aggregator (across all destinations). Callers
// measure a batch by taking the difference around a Flush.
func (b AggBuffer) Freed() int64 { return b.a.freed.Load() }

// Flush ships this destination's buffer now (one bulk transfer) and
// returns once the batch has executed. Other destinations' buffers are
// untouched; use Ctx.Flush to drain everything.
func (b AggBuffer) Flush() { b.a.agg.FlushDst(b.dst) }

// enqueue buffers fn, or runs it inline for a local destination.
func (b AggBuffer) enqueue(bytes int64, fn func(*Ctx)) {
	if b.dst == b.a.c.here.id {
		fn(b.a.c)
		return
	}
	b.a.agg.Enqueue(b.dst, comm.Op{Bytes: bytes, Exec: fn})
}

// CombinableCall is the mergeable form of an aggregated operation: a
// comm.CombinableOp that also knows how to execute on its destination.
// When the system's AggConfig.Combine policy is on, buffered calls
// with equal merge keys are folded together before the wire (see
// comm.CombinableOp for the ordering contract); with the policy off
// they ship one-for-one, exactly like Call.
type CombinableCall interface {
	comm.CombinableOp
	Exec(c *Ctx)
}

// CallCombinable buffers op for deferred execution on the destination
// locale, exposing its merge surface to the aggregator. bytes is the
// modelled wire size (clamped up to the plain Call size). A local
// destination executes inline immediately, mirroring Call — absorption
// never applies locally because there is no wire to absorb from.
func (b AggBuffer) CallCombinable(bytes int64, op CombinableCall) {
	if bytes < aggCallBytes {
		bytes = aggCallBytes
	}
	if b.dst == b.a.c.here.id {
		op.Exec(b.a.c)
		return
	}
	b.a.agg.Enqueue(b.dst, comm.Op{Bytes: bytes, Exec: op})
}

// addOp is the mergeable payload behind AggBuffer.Add: deltas against
// one word sum in-buffer (addition commutes, so folding N adds into
// one preserves the final value and every concurrent interleaving).
type addOp struct {
	w     *Word64
	delta uint64
}

func (o *addOp) CombineKey() comm.CombineKey {
	return comm.CombineKey{Kind: combineKindAdd, Ref: o.w}
}

func (o *addOp) Absorb(later comm.CombinableOp) (int64, bool) {
	o.delta += later.(*addOp).delta
	return 0, true
}

func (o *addOp) Exec(tc *Ctx) {
	o.w.amo(tc, func() uint64 { return o.w.v.Add(o.delta) })
}

// putOp is the mergeable payload behind AggBuffer.Put: stores to one
// address keep only the last buffered value (within one task's buffer,
// enqueue order is program order, so last-writer-wins is exact).
type putOp struct {
	addr gas.Addr
	obj  any
}

func (o *putOp) CombineKey() comm.CombineKey {
	return comm.CombineKey{Kind: combineKindPut, K: uint64(o.addr)}
}

func (o *putOp) Absorb(later comm.CombinableOp) (int64, bool) {
	o.obj = later.(*putOp).obj
	return 0, true
}

func (o *putOp) Exec(tc *Ctx) {
	tc.here.heap.Store(o.addr, o.obj)
}

// Merge-key kind namespace for the pgas layer's own combinable ops.
// Structure layers define their own kinds; keys never collide across
// kinds regardless of the Ref/K values.
const (
	combineKindAdd uint8 = 1
	combineKindPut uint8 = 2
)

// Call buffers fn for deferred execution on the destination locale —
// a batched on-statement. fn receives a Ctx pinned to the destination
// and runs there in enqueue order when the buffer flushes; it must be
// self-contained (results are communicated through memory the caller
// inspects after Flush).
func (b AggBuffer) Call(fn func(ctx *Ctx)) {
	b.enqueue(aggCallBytes, fn)
}

// CallSized is Call for operations that carry a payload: bytes is the
// modelled wire size of everything fn ships (clamped up to the plain
// Call size), so a buffered batch of n values charges its real volume
// in AggBytes/BulkBytes instead of one op's worth. Callers moving
// value slices (e.g. the sharded structures' bulk routing) must use
// this, or the counter evidence undercounts by the batch length.
func (b AggBuffer) CallSized(bytes int64, fn func(ctx *Ctx)) {
	if bytes < aggCallBytes {
		bytes = aggCallBytes
	}
	b.enqueue(bytes, fn)
}

// freeOp is the distinguished payload type of aggregated frees. The
// named type is load-bearing: the deliver path type-switches on it to
// exempt the reclamation plane's scatter lists from the dead-
// destination drop, so a crash can lose workload writes but never a
// deferred deletion.
type freeOp func(*Ctx)

// Free buffers the release of addr, which must be owned by the
// destination locale. The free executes on the owner when the buffer
// flushes; successful releases are visible through Freed. This is the
// aggregated form of Ctx.Free — the per-object RPC becomes a
// scatter-list entry.
func (b AggBuffer) Free(addr gas.Addr) {
	if addr.Locale() != b.dst {
		panic(fmt.Sprintf("pgas: aggregated Free(%v) into buffer for locale %d", addr, b.dst))
	}
	a := b.a
	var fn freeOp = func(tc *Ctx) {
		if tc.here.heap.Free(addr) {
			a.freed.Add(1)
		}
	}
	if b.dst == b.a.c.here.id {
		fn(b.a.c)
		return
	}
	b.a.agg.Enqueue(b.dst, comm.Op{Bytes: aggFreeBytes, Exec: fn})
}

// Put buffers an overwrite of the object stored at addr (owned by the
// destination). The store executes on the owner at flush; a store to a
// slot freed in the meantime is dropped, as with Ctx.Put.
func (b AggBuffer) Put(addr gas.Addr, obj any) {
	if addr.Locale() != b.dst {
		panic(fmt.Sprintf("pgas: aggregated Put(%v) into buffer for locale %d", addr, b.dst))
	}
	b.CallCombinable(aggPutBytes, &putOp{addr: addr, obj: obj})
}

// Add buffers a fire-and-forget atomic add on w, which must be homed
// on the destination. At flush the add executes as a *locale-local*
// operation on the owner — the batch already paid the network cost —
// so N remote increments cost one bulk transfer instead of N AMO
// round trips. The local execution still routes through the backend
// (a processor atomic under none; a NIC atomic under ugni, where NIC
// and CPU atomics are incoherent and mixing them would be unsound),
// so aggregated and direct operations on one word stay coherent.
// Use the synchronous Word64.Add when the returned value matters.
func (b AggBuffer) Add(w *Word64, delta uint64) {
	if w.Home() != b.dst {
		panic(fmt.Sprintf("pgas: aggregated Add on word homed on %d into buffer for locale %d", w.Home(), b.dst))
	}
	b.CallCombinable(aggAddBytes, &addOp{w: w, delta: delta})
}

// Flush drains every aggregation buffer this task has filled (one bulk
// transfer per non-empty destination) and then waits for system-wide
// quiescence of asynchronous operations. After Flush returns, every
// operation this task buffered or launched asynchronously has taken
// effect — the guarantee coforall epilogues rely on to drain before
// joining.
//
// Buffer draining is synchronous and complete regardless of caller.
// The quiescence wait, however, is skipped when the calling task was
// itself launched by AsyncOn: such a task is counted in the in-flight
// set Quiesce waits on, so a self-inclusive wait could never return
// (and two async tasks flushing would deadlock on each other).
// Quiescence over async work is the launcher's join, not the async
// task's.
func (c *Ctx) Flush() {
	if c.agg != nil {
		c.agg.agg.Flush()
	}
	if !c.isAsync {
		c.sys.Quiesce()
	}
}

// PendingOps returns the total number of operations buffered by this
// task across all destinations (diagnostic).
func (c *Ctx) PendingOps() int {
	if c.agg == nil {
		return 0
	}
	return c.agg.agg.Pending()
}
