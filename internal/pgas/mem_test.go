package pgas

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
)

type thing struct{ v int }

func TestAllocLoadLocal(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.Alloc(&thing{v: 1})
		if a.Locale() != 0 {
			t.Fatalf("local alloc landed on locale %d", a.Locale())
		}
		before := s.Counters().Snapshot()
		got := MustDeref[*thing](c, a)
		if got.v != 1 {
			t.Fatalf("deref = %+v", got)
		}
		if d := s.Counters().Snapshot().Sub(before); d.Gets != 0 {
			t.Fatalf("local deref cost %d GETs", d.Gets)
		}
	})
}

func TestAllocOnRemoteAndDeref(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *Ctx) {
		before := s.Counters().Snapshot()
		a := c.AllocOn(2, &thing{v: 7})
		if a.Locale() != 2 {
			t.Fatalf("remote alloc landed on %d", a.Locale())
		}
		d := s.Counters().Snapshot().Sub(before)
		if d.OnStmts != 1 {
			t.Fatalf("remote alloc cost %d on-statements, want 1", d.OnStmts)
		}
		before = s.Counters().Snapshot()
		got := MustDeref[*thing](c, a)
		if got.v != 7 {
			t.Fatalf("deref = %+v", got)
		}
		if d := s.Counters().Snapshot().Sub(before); d.Gets != 1 {
			t.Fatalf("remote deref cost %d GETs, want 1", d.Gets)
		}
	})
}

func TestDerefAfterFreeDetected(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.Alloc(&thing{})
		if !c.Free(a) {
			t.Fatal("free failed")
		}
		if _, ok := Deref[*thing](c, a); ok {
			t.Fatal("deref after free must report use-after-free")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("MustDeref after free must panic")
			}
		}()
		MustDeref[*thing](c, a)
	})
}

func TestDerefTypeMismatchPanics(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.Alloc("a string")
		defer func() {
			if recover() == nil {
				t.Fatal("type-mismatched deref must panic")
			}
		}()
		Deref[*thing](c, a)
	})
}

func TestPutRemote(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.AllocOn(1, 10)
		before := s.Counters().Snapshot()
		if !c.Put(a, 20) {
			t.Fatal("put failed")
		}
		if d := s.Counters().Snapshot().Sub(before); d.Puts != 1 {
			t.Fatalf("remote put cost %d PUTs, want 1", d.Puts)
		}
		if got := MustDeref[int](c, a); got != 20 {
			t.Fatalf("after put: %d", got)
		}
	})
}

func TestRemoteFreeCountsRPC(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.AllocOn(1, 1)
		before := s.Counters().Snapshot()
		c.Free(a)
		if d := s.Counters().Snapshot().Sub(before); d.OnStmts != 1 {
			t.Fatalf("remote free cost %d on-statements, want 1", d.OnStmts)
		}
	})
}

func TestFreeBulkOneTransferManyObjects(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var addrs []gas.Addr
		for i := 0; i < 100; i++ {
			addrs = append(addrs, c.AllocOn(1, i))
		}
		before := s.Counters().Snapshot()
		if n := c.FreeBulk(1, addrs); n != 100 {
			t.Fatalf("bulk freed %d, want 100", n)
		}
		d := s.Counters().Snapshot().Sub(before)
		// The whole point of scatter lists: one transfer, not 100 RPCs.
		if d.BulkXfers != 1 || d.OnStmts != 0 {
			t.Fatalf("bulk free comm: %v", d)
		}
		if d.BulkBytes != 800 {
			t.Fatalf("bulk bytes = %d", d.BulkBytes)
		}
	})
}

func TestFreeBulkLocalIsFree(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		addrs := []gas.Addr{c.Alloc(1), c.Alloc(2)}
		before := s.Counters().Snapshot()
		c.FreeBulk(0, addrs)
		if d := s.Counters().Snapshot().Sub(before); d.Remote() != 0 {
			t.Fatalf("local bulk free cost communication: %v", d)
		}
	})
}

func TestFreeBulkForeignAddrPanics(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		a := c.Alloc(1)
		defer func() {
			if recover() == nil {
				t.Fatal("FreeBulk with a foreign addr must panic")
			}
		}()
		c.FreeBulk(1, []gas.Addr{a})
	})
}

func TestPrivatizedZeroCommunication(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *Ctx) {
		type inst struct{ locale int }
		p := NewPrivatized(c, func(lc *Ctx) *inst {
			return &inst{locale: lc.Here()}
		})
		// Lookup from every locale: each must resolve its own replica
		// with zero communication — the paper's central privatization
		// claim, verified by counters.
		c.CoforallLocales(func(lc *Ctx) {
			before := s.Counters().Snapshot()
			in := p.Get(lc)
			d := s.Counters().Snapshot().Sub(before)
			if in.locale != lc.Here() {
				t.Errorf("locale %d resolved replica of %d", lc.Here(), in.locale)
			}
			if d.Remote() != 0 {
				t.Errorf("privatized lookup cost communication: %v", d)
			}
		})
	})
}

func TestPrivatizedDistinctInstances(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *Ctx) {
		type inst struct{ n int }
		p := NewPrivatized(c, func(lc *Ctx) *inst { return &inst{} })
		c.CoforallLocales(func(lc *Ctx) {
			p.Get(lc).n = lc.Here() + 1
		})
		for l := 0; l < 3; l++ {
			if got := p.GetOn(c, l).n; got != l+1 {
				t.Errorf("locale %d instance n = %d", l, got)
			}
		}
	})
}

func TestMultiplePrivatizedObjects(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		type a struct{ x int }
		type b struct{ y string }
		pa := NewPrivatized(c, func(lc *Ctx) *a { return &a{x: 1} })
		pb := NewPrivatized(c, func(lc *Ctx) *b { return &b{y: "z"} })
		if pa.Get(c).x != 1 || pb.Get(c).y != "z" {
			t.Fatal("privatization ids collided")
		}
	})
}
