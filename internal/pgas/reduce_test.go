package pgas

import (
	"testing"

	"gopgas/internal/comm"
)

func TestSumReduceAcrossLocales(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var sum SumReduce
		ForallCyclic(c, 100, 2, nil, func(tc *Ctx, _ struct{}, i int) {
			sum.Add(int64(i))
		}, nil)
		if got := sum.Value(); got != 99*100/2 {
			t.Fatalf("sum = %d", got)
		}
	})
}

func TestMinMaxReduce(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var mn MinReduce
		var mx MaxReduce
		if _, ok := mn.Value(); ok {
			t.Fatal("empty min has a value")
		}
		if _, ok := mx.Value(); ok {
			t.Fatal("empty max has a value")
		}
		c.Coforall(8, func(tc *Ctx, tid int) {
			mn.Add(int64(10 - tid))
			mx.Add(int64(10 - tid))
		})
		if v, ok := mn.Value(); !ok || v != 3 {
			t.Fatalf("min = (%d,%v)", v, ok)
		}
		if v, ok := mx.Value(); !ok || v != 10 {
			t.Fatalf("max = (%d,%v)", v, ok)
		}
	})
}
