package pgas

import (
	"fmt"

	"gopgas/internal/gas"
)

// Global-address-space memory operations. Allocation and free are
// routed to the owning locale's heap; loads of remote objects pay a
// GET. Bulk free is the transport for the EpochManager's scatter
// lists: one shipment per locale instead of one RPC per object.

// Alloc stores obj on the current locale's heap and returns its global
// address — `new unmanaged C()` on `here`.
func (c *Ctx) Alloc(obj any) gas.Addr {
	return c.here.heap.Alloc(obj)
}

// AllocOn stores obj on the given locale's heap. A remote allocation
// is an on-statement (the paper's benchmarks randomize object
// placement this way before the timed region).
func (c *Ctx) AllocOn(locale int, obj any) gas.Addr {
	if locale == c.here.id {
		return c.Alloc(obj)
	}
	s := c.sys
	s.chargeOnStmt(c.here.id, locale)
	s.delay(c.here.id, locale, s.cfg.Latency.AMRoundTripNS+s.cfg.Latency.OnStmtNS)
	return s.locales[locale].heap.Alloc(obj)
}

// AllocBulkOn stores every object in objs on the given locale's heap,
// shipping the batch as one bulk transfer instead of one on-statement
// per object — the allocation-side counterpart of FreeBulk, and what
// the structures' bulk-insert paths build on. The returned addresses
// are in objs order. A local batch is free, like Alloc.
func (c *Ctx) AllocBulkOn(locale int, objs []any) []gas.Addr {
	addrs := make([]gas.Addr, len(objs))
	if len(objs) == 0 {
		return addrs
	}
	s := c.sys
	if locale != c.here.id {
		s.chargeBulk(c.here.id, locale, int64(len(objs)*16))
	}
	h := s.locales[locale].heap
	for i, obj := range objs {
		addrs[i] = h.Alloc(obj)
	}
	return addrs
}

// Load fetches the object at addr. Remote addresses pay a GET. ok is
// false when the slot has been freed — a detected use-after-free.
func (c *Ctx) Load(addr gas.Addr) (any, bool) {
	owner := addr.Locale()
	if owner != c.here.id {
		c.ChargeGet(owner)
	}
	return c.sys.locales[owner].heap.Load(addr)
}

// Deref fetches the object at addr and asserts its type. The second
// result is false on a detected use-after-free. Deref panics if the
// object exists but has a different type: that is a program bug, not a
// reclamation hazard.
func Deref[T any](c *Ctx, addr gas.Addr) (T, bool) {
	obj, ok := c.Load(addr)
	if !ok {
		var zero T
		return zero, false
	}
	t, isT := obj.(T)
	if !isT {
		panic(fmt.Sprintf("pgas: Deref[%T] of %v which holds %T", t, addr, obj))
	}
	return t, true
}

// MustDeref is Deref for callers whose protocol guarantees the object
// is live (e.g. under an epoch pin); it panics on use-after-free,
// which the test suite uses to prove reclamation safety.
func MustDeref[T any](c *Ctx, addr gas.Addr) T {
	v, ok := Deref[T](c, addr)
	if !ok {
		panic(fmt.Sprintf("pgas: use-after-free dereferencing %v", addr))
	}
	return v
}

// Put overwrites the object stored at addr. Remote addresses pay a
// PUT. It reports false if the slot was already freed.
func (c *Ctx) Put(addr gas.Addr, obj any) bool {
	owner := addr.Locale()
	if owner != c.here.id {
		c.ChargePut(owner)
	}
	return c.sys.locales[owner].heap.Store(addr, obj)
}

// Free releases the object at addr on its owning locale. A remote free
// is an RPC (this is exactly the cost scatter lists avoid). It reports
// false on double free.
func (c *Ctx) Free(addr gas.Addr) bool {
	owner := addr.Locale()
	if owner != c.here.id {
		c.sys.counters.IncOnStmt(c.here.id)
		c.sys.matrix.Inc(c.here.id, owner)
		c.sys.delay(c.here.id, owner, c.sys.cfg.Latency.AMRoundTripNS)
	}
	return c.sys.locales[owner].heap.Free(addr)
}

// FreeBulk ships addrs to the target locale in one bulk transfer and
// frees them there, returning the number actually freed. All addrs
// must be owned by locale; the EpochManager builds exactly such
// per-locale batches in its scatter phase.
func (c *Ctx) FreeBulk(locale int, addrs []gas.Addr) int {
	if len(addrs) == 0 {
		return 0
	}
	s := c.sys
	if locale != c.here.id {
		s.chargeBulk(c.here.id, locale, int64(len(addrs)*8))
	}
	h := s.locales[locale].heap
	n := 0
	for _, a := range addrs {
		if a.IsNil() {
			continue
		}
		if a.Locale() != locale {
			panic(fmt.Sprintf("pgas: FreeBulk(%d) given foreign addr %v", locale, a))
		}
		if h.Free(a) {
			n++
		}
	}
	return n
}
