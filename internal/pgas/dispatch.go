package pgas

import (
	"fmt"
	"runtime"

	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

// The dispatch layer: every simulated remote operation — on-statement,
// 64-bit AMO, 128-bit DCAS, GET/PUT charge — is routed, counted and
// latency-charged here, in one place, instead of inline at each call
// site. Ctx.On, Word64 and Word128 are thin veneers over these
// methods, and the asynchronous surface (AsyncOn, the aggregation
// buffers in aggregate.go) reuses exactly the same accounting, so the
// sync and async paths can never drift apart.

// dispatchOn charges and executes a synchronous on-statement: fn runs
// on the target locale and the caller waits. `on here` is elided.
//
// The caller's task is blocked for the whole call either way, so fn
// runs inline on the calling goroutine with a target-pinned Ctx —
// spawning a goroutine plus a completion channel per call (as this
// path once did) buys no concurrency, only scheduler traffic and two
// allocations on the hottest loop of every sweep. The pinned Ctx comes
// from the system's pool; it is seeded with a fresh task id and RNG
// stream exactly as a spawned task's would be, so per-task random
// streams are undisturbed by the pooling.
func (s *System) dispatchOn(src *Ctx, target int, fn func(*Ctx)) {
	if target == src.here.id {
		fn(src)
		return
	}
	// A dead destination fails fast: the op is refused before any
	// charge — one OpsLost, no on-stmt, no matrix entry, no delay, fn
	// never runs. Failing here (not stalling) is what keeps Quiesce and
	// coforall joins crash-tolerant. A partitioned destination is
	// transient instead: the call parks in place — the calling task
	// retries with exponential backoff until the pair heals (then
	// proceeds with normal delivery below) or the retry deadline
	// expires (booked expired, fn never runs).
	if r := s.refusalOf(src, target); r != refuseNone {
		if r == refuseCrash || !s.parkSyncOn(src, target) {
			s.counters.IncOpsLost(src.here.id, 1)
			return
		}
	}
	// The Enabled check is hoisted to the call site: Begin is too big to
	// inline, and this is the hottest loop in every sweep — an idle
	// recorder must cost one inlined atomic load, not a call.
	var sp trace.Span
	if tr := s.tracer; tr != nil && tr.Enabled() {
		sp = tr.Begin(src.here.id, trace.KindDispatch, src.taskID, src.here.id, target, 0, 0)
	}
	s.chargeOnStmt(src.here.id, target)
	s.delay(src.here.id, target, s.cfg.Latency.AMRoundTripNS+s.cfg.Latency.OnStmtNS)
	tc := s.borrowCtx(s.locales[target])
	tc.salvage = src.salvage
	fn(tc)
	s.releaseCtx(tc)
	sp.End()
}

// dispatchOnAsync launches fn on the target locale without waiting:
// the initiator pays only the injection (the network delivers the
// active message while the initiating task keeps running), which is
// what turns per-op round-trip latency into overlap. The operation is
// tracked for quiescence: Quiesce (and therefore Ctx.Flush) blocks
// until it has completed. A local target still detaches a task.
func (s *System) dispatchOnAsync(src *Ctx, target int, fn func(*Ctx)) {
	// Register before checking shutdown: Shutdown sets the flag first
	// and only then quiesces, so either this task is visible to that
	// quiesce (and the queues outlive it) or the flag is already set
	// here and we refuse — no window where the task outlives the
	// progress workers.
	s.asyncPending.Add(1)
	if s.shutdown.Load() {
		s.asyncPending.Add(-1)
		panic("pgas: AsyncOn after Shutdown")
	}
	srcID := src.here.id
	remote := target != srcID
	// A crash refuses the same way as the sync path: one OpsLost,
	// nothing launched, nothing left for Quiesce to wait on — which is
	// how quiescence comes to exclude dead locales. A partition parks
	// the launch in the retry ledger instead — nothing is in flight (so
	// quiescence is not wedged while severed) and the task launches
	// from the ledger when the pair heals.
	if remote {
		if r := s.refusalOf(src, target); r != refuseNone {
			s.asyncPending.Add(-1)
			if r == refusePartition &&
				s.parkOp(srcID, target, comm.Op{Bytes: aggCallBytes, Exec: fn}) {
				return
			}
			s.counters.IncOpsLost(srcID, 1)
			return
		}
	}
	if remote {
		s.chargeOnStmt(srcID, target)
	}
	var sp trace.Span
	if tr := s.tracer; tr != nil && tr.Enabled() {
		sp = tr.Begin(srcID, trace.KindAsync, src.taskID, srcID, target, 0, 0)
	}
	salvage := src.salvage
	go func() {
		defer s.asyncPending.Add(-1)
		if remote {
			s.delay(srcID, target, s.cfg.Latency.AMRoundTripNS+s.cfg.Latency.OnStmtNS)
		}
		tc := s.newCtx(s.locales[target])
		tc.isAsync = true
		tc.salvage = salvage
		fn(tc)
		sp.End()
	}()
}

// chargeOnStmt records one remote on-statement without paying its
// latency (the payer differs between the sync and coforall paths).
func (s *System) chargeOnStmt(src, dst int) {
	s.counters.IncOnStmt(src)
	s.matrix.Inc(src, dst)
}

// dispatchAMO64 routes a 64-bit atomic on a word homed on `home` per
// the backend: NIC atomic under ugni (even locale-locally — Aries NIC
// atomics are not coherent with CPU atomics), processor atomic when
// local under none, active message to the home locale otherwise.
func (s *System) dispatchAMO64(c *Ctx, home int, op func() uint64) uint64 {
	// Atomics are never refused, even toward a dead home: the fault plan
	// kills a locale's execution plane (on-statements, async launches,
	// aggregated deliveries), not the partitioned address space — the
	// same shared-storage conceit that lets salvage contexts adopt a
	// dead locale's shards. Refusing here would also be worse than
	// useless: a CAS that "fails" because its home died sends every
	// lock-free retry loop into a livelock instead of failing fast.
	switch s.cfg.Backend {
	case comm.BackendUGNI:
		s.counters.IncNICAMO(c.here.id)
		s.matrix.Inc(c.here.id, home)
		s.delay(c.here.id, home, s.cfg.Latency.NICAtomicNS)
		return op()
	default:
		if home == c.here.id {
			s.counters.IncLocalAMO(home)
			s.delay(home, home, s.cfg.Latency.LocalAtomicNS)
			return op()
		}
		s.counters.IncAMAMO(c.here.id)
		s.matrix.Inc(c.here.id, home)
		var res uint64
		s.amCall(c.here.id, home, func() { res = op() })
		return res
	}
}

// dispatchDCAS routes a full-width 128-bit operation: no NIC offloads
// these, so a remote cell always demotes to remote execution (an
// active message), while a local cell runs the emulated CMPXCHG16B
// directly.
func (s *System) dispatchDCAS(c *Ctx, home int, op func()) {
	// Never refused — memory plane, like dispatchAMO64.
	if home == c.here.id {
		s.counters.IncDCASLocal(home)
		s.delay(home, home, s.cfg.Latency.LocalAtomicNS)
		op()
		return
	}
	s.counters.IncDCASRemote(c.here.id)
	s.matrix.Inc(c.here.id, home)
	s.amCall(c.here.id, home, op)
}

// ChargeGet records and charges one small remote read toward owner.
// It is exposed for global-view containers (package dist) whose
// storage lives outside the gas heaps; owner must differ from the
// calling locale.
func (c *Ctx) ChargeGet(owner int) {
	c.sys.counters.IncGet(c.here.id)
	c.sys.matrix.Inc(c.here.id, owner)
	c.sys.delay(c.here.id, owner, c.sys.cfg.Latency.PutGetNS)
}

// ChargePut records and charges one small remote write toward owner.
func (c *Ctx) ChargePut(owner int) {
	c.sys.counters.IncPut(c.here.id)
	c.sys.matrix.Inc(c.here.id, owner)
	c.sys.delay(c.here.id, owner, c.sys.cfg.Latency.PutGetNS)
}

// ChargeBulk records and charges one bulk transfer of `bytes` between
// the calling locale and owner. Like ChargeGet/ChargePut it exists for
// global-view containers whose payloads move outside the gas heaps
// (e.g. a sharded structure shipping a drained segment home); owner
// must differ from the calling locale.
func (c *Ctx) ChargeBulk(owner int, bytes int64) {
	c.sys.chargeBulk(c.here.id, owner, bytes)
}

// chargeBulk records and charges one bulk transfer of `bytes` toward
// dst (the FreeBulk/AllocBulkOn path; aggregated flushes account for
// themselves inside comm.Aggregator).
func (s *System) chargeBulk(src, dst int, bytes int64) {
	s.counters.IncBulk(src, bytes)
	s.matrix.Inc(src, dst)
	s.delay(src, dst, s.cfg.Latency.BulkStartupNS+bytes*s.cfg.Latency.BulkPerByteNS)
}

// AsyncOn launches fn on the target locale and returns immediately —
// a fire-and-forget on-statement (Chapel's `begin on`). The spawned
// task is tracked by the system: Ctx.Flush (or System.Quiesce) blocks
// until every async operation launched so far has finished, which is
// how a coforall epilogue guarantees nothing is still in flight.
//
// fn receives a fresh Ctx pinned to the target; it must not use the
// initiator's Ctx.
func (c *Ctx) AsyncOn(target int, fn func(ctx *Ctx)) {
	if target < 0 || target >= len(c.sys.locales) {
		panic(fmt.Sprintf("pgas: AsyncOn locale %d out of range [0, %d)", target, len(c.sys.locales)))
	}
	c.sys.dispatchOnAsync(c, target, fn)
}

// Quiesce blocks until every asynchronous operation launched so far
// (AsyncOn tasks, including ones they transitively spawned) has
// completed. New async work launched by other tasks while Quiesce
// spins naturally extends the wait — quiescence is a system-wide
// property, exactly as in SHMEM's quiet semantics.
//
// Dead locales are excluded by construction, not by filtering: an
// async op toward a crashed locale is refused at launch (never enters
// the in-flight set), and ops already running on a dying locale drain
// normally — so Quiesce can never wedge on a locale that will never
// answer.
func (s *System) Quiesce() {
	for s.asyncPending.Load() != 0 {
		runtime.Gosched()
	}
}

// AsyncPending returns the number of asynchronous operations currently
// in flight (diagnostic).
func (s *System) AsyncPending() int64 { return s.asyncPending.Load() }
