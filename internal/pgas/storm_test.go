package pgas

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
)

// Regression guards for the goroutine-free sync dispatch and the
// pooled active-message completion channels: storms of concurrent
// AsyncOn launches, nested async spawns, and AM atomics all riding the
// recycled plumbing must quiesce cleanly and count exactly. These
// tests earn their keep under -race (CI runs the suite with it).

// TestAsyncOnStormQuiesce hammers AsyncOn from many initiator tasks at
// once — each async body performing a remote AM atomic and a fraction
// of them spawning a nested AsyncOn — then quiesces and checks that
// every launch ran (the shared word's value is exact) and nothing is
// still in flight.
func TestAsyncOnStormQuiesce(t *testing.T) {
	const locales = 4
	const initiators = 8
	const perInitiator = 200
	s := NewSystem(Config{Locales: locales, Backend: comm.BackendNone})
	defer s.Shutdown()

	root := s.Ctx(0)
	total := NewWord64(root, 0, 0)

	var wg sync.WaitGroup
	for g := 0; g < initiators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % locales)
			for i := 0; i < perInitiator; i++ {
				dst := (g + i) % locales
				c.AsyncOn(dst, func(tc *Ctx) {
					total.Add(tc, 1)
					if tc.Here() != dst {
						t.Errorf("async body pinned to %d, want %d", tc.Here(), dst)
					}
					// Every fourth op spawns a nested async hop; Quiesce
					// must wait for these transitive tasks too.
					if i%4 == 0 {
						tc.AsyncOn((dst+1)%locales, func(nc *Ctx) {
							total.Add(nc, 1)
						})
					}
				})
			}
		}(g)
	}
	wg.Wait()
	s.Quiesce()
	if pending := s.AsyncPending(); pending != 0 {
		t.Fatalf("AsyncPending = %d after Quiesce", pending)
	}
	want := uint64(initiators * perInitiator)
	want += uint64(initiators * ((perInitiator + 3) / 4)) // nested hops
	if got := total.Read(root); got != want {
		t.Fatalf("storm lost updates: total = %d, want %d", got, want)
	}
}

// TestAMDonePoolReuseUnderStorm drives a storm of remote AM atomics —
// the amCall path whose completion channels are recycled through
// amDonePool — from concurrent tasks on every locale. A stale or
// double signal on a reused channel would either lose an operation
// (wrong sum), unblock a caller before its handler ran (torn count),
// or deadlock; the exact final value proves each call completed
// exactly once.
func TestAMDonePoolReuseUnderStorm(t *testing.T) {
	const locales = 4
	const tasks = 16
	const perTask = 300
	// BackendNone makes every remote 64-bit atomic an active message,
	// maximising pressure on the pooled channels; a tiny AM queue keeps
	// senders blocking and channels cycling through the pool fast.
	s := NewSystem(Config{Locales: locales, Backend: comm.BackendNone, AMQueueDepth: 2})
	defer s.Shutdown()

	root := s.Ctx(0)
	words := make([]*Word64, locales)
	for l := 0; l < locales; l++ {
		words[l] = NewWord64(root, l, 0)
	}

	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % locales)
			for i := 0; i < perTask; i++ {
				// Always target a word homed away from the caller so the
				// op must ride an AM and a pooled done channel.
				dst := (c.Here() + 1 + i%(locales-1)) % locales
				words[dst].Add(c, 1)
			}
		}(g)
	}
	wg.Wait()

	var sum uint64
	for l := 0; l < locales; l++ {
		sum += words[l].Read(root)
	}
	if want := uint64(tasks * perTask); sum != want {
		t.Fatalf("AM storm lost updates: sum = %d, want %d", sum, want)
	}
	snap := s.Counters().Snapshot()
	if snap.AMAMOs < tasks*perTask {
		t.Fatalf("amAMO count = %d, want >= %d", snap.AMAMOs, tasks*perTask)
	}
}

// TestSyncOnPooledCtxStreams checks the determinism contract the Ctx
// pool must preserve: a pooled on-statement context draws a fresh task
// id and RNG seed exactly as a spawned one would, so (a) the callee's
// random stream differs from the caller's in-flight stream, and (b)
// two systems built with the same seed replay identical streams even
// though one has a warm pool and the other starts cold.
func TestSyncOnPooledCtxStreams(t *testing.T) {
	run := func() [][]int {
		s := NewSystem(Config{Locales: 2, Seed: 99})
		defer s.Shutdown()
		var draws [][]int
		c := s.Ctx(0)
		for i := 0; i < 5; i++ {
			var inner []int
			c.On(1, func(tc *Ctx) {
				if tc.Here() != 1 {
					t.Fatalf("callee Here() = %d", tc.Here())
				}
				for k := 0; k < 3; k++ {
					inner = append(inner, tc.RandIntn(1000))
				}
				// Nested sync hop back to the caller's locale: borrows a
				// second pooled Ctx while the first is still in use.
				tc.On(0, func(nc *Ctx) {
					inner = append(inner, nc.RandIntn(1000))
				})
			})
			inner = append(inner, c.RandIntn(1000))
			draws = append(draws, inner)
		}
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("draw shape mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("row %d shape mismatch", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("pooled Ctx perturbed the RNG streams: run1[%d][%d]=%d run2=%d",
					i, j, a[i][j], b[i][j])
			}
		}
	}
}
