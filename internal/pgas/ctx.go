package pgas

import (
	"sync"
)

// Ctx is a task's view of the system: which locale it is executing on
// (Chapel's `here`), plus a private deterministic random stream. Every
// spawned task — whether via On, CoforallLocales, or the forall
// helpers — receives its own Ctx. A Ctx must not be shared between
// goroutines; spawn instead.
type Ctx struct {
	sys     *System
	here    *Locale
	taskID  uint64
	rng     uint64
	agg     *Aggregator // lazily created per-task aggregation buffers
	isAsync bool        // task was launched by AsyncOn (counted in asyncPending)
	salvage bool        // recovery-plane task, exempt from crash/partition refusal
}

// Sys returns the owning System.
func (c *Ctx) Sys() *System { return c.sys }

// Salvage returns a recovery-plane view of the task: a fresh Ctx on
// the same locale whose communication is exempt from crash/partition
// refusal. It models the shared-storage failover conceit — a surviving
// locale adopting a dead peer's shards must read the dead partition
// and drive the dead locale's retirement, exactly the accesses the
// fault plan refuses to ordinary traffic. The exemption propagates to
// tasks the salvage context spawns (On, AsyncOn, CoforallLocales).
// Use it only for failover and force-retirement; workload traffic on a
// salvage context would silently bypass the fault plan.
func (c *Ctx) Salvage() *Ctx {
	sc := c.sys.newCtx(c.here)
	sc.salvage = true
	return sc
}

// Here returns the id of the locale this task runs on.
func (c *Ctx) Here() int { return c.here.id }

// NumLocales returns the system's locale count.
func (c *Ctx) NumLocales() int { return len(c.sys.locales) }

// TaskID returns the task's unique id (diagnostic).
func (c *Ctx) TaskID() uint64 { return c.taskID }

// On executes fn on the target locale and waits for it to finish — a
// synchronous on-statement. Remote targets pay the on-statement spawn
// latency and count one on-statement; `on here` runs inline for free,
// as Chapel's compiler also elides it. The callee receives a fresh Ctx
// whose Here() is the target.
func (c *Ctx) On(target int, fn func(ctx *Ctx)) {
	c.sys.dispatchOn(c, target, fn)
}

// CoforallLocales spawns one task per locale (each running on its
// locale), waits for all of them, and charges one on-statement per
// remote locale — `coforall loc in Locales do on loc`. It is the
// reclamation protocol's control plane (token scans, Clear, Stats) and
// deliberately bypasses crash refusal: the protocol must still observe
// a dead locale's tokens and limbo lists, or reclamation could never
// be proven safe after a crash. Workload traffic goes through On /
// AsyncOn / the aggregation buffers, which do refuse.
func (c *Ctx) CoforallLocales(fn func(ctx *Ctx)) {
	s := c.sys
	var wg sync.WaitGroup
	for _, loc := range s.locales {
		if loc.id != c.here.id {
			s.chargeOnStmt(c.here.id, loc.id)
		}
		wg.Add(1)
		go func(l *Locale) {
			defer wg.Done()
			if l.id != c.here.id {
				s.delay(c.here.id, l.id, s.cfg.Latency.AMRoundTripNS+s.cfg.Latency.OnStmtNS)
			}
			tc := s.newCtx(l)
			tc.salvage = c.salvage
			fn(tc)
		}(loc)
	}
	wg.Wait()
}

// Coforall spawns n tasks on the current locale and waits for them —
// `coforall tid in 0..#n`.
func (c *Ctx) Coforall(n int, fn func(ctx *Ctx, tid int)) {
	s := c.sys
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			fn(s.newCtx(c.here), t)
		}(t)
	}
	wg.Wait()
}

// ForallCyclic iterates i over [0, n) with the iterations distributed
// cyclically across locales (i runs on locale i % numLocales), using
// tasksPerLocale tasks on each locale. perTask is invoked once per
// task to create task-private state (Chapel's `with (var tok = ...)`
// intent), body once per iteration, and perTaskDone once per task as
// the task ends (the automatic cleanup of task-private values). perTask
// and perTaskDone may be nil when no task state is needed.
//
// ForallCyclic is a generic function rather than a method because Go
// methods cannot introduce type parameters.
func ForallCyclic[P any](c *Ctx, n, tasksPerLocale int,
	perTask func(ctx *Ctx) P,
	body func(ctx *Ctx, priv P, i int),
	perTaskDone func(ctx *Ctx, priv P),
) {
	if tasksPerLocale <= 0 {
		tasksPerLocale = 1
	}
	s := c.sys
	L := len(s.locales)
	var wg sync.WaitGroup
	for _, loc := range s.locales {
		if loc.id >= n && n < L {
			continue // no iterations land on this locale
		}
		if loc.id != c.here.id {
			s.chargeOnStmt(c.here.id, loc.id)
		}
		wg.Add(1)
		go func(l *Locale) {
			defer wg.Done()
			if l.id != c.here.id {
				s.delay(c.here.id, l.id, s.cfg.Latency.AMRoundTripNS+s.cfg.Latency.OnStmtNS)
			}
			// Iterations owned by locale l: l.id, l.id+L, l.id+2L, ...
			// Split them contiguously among the locale's tasks.
			count := 0
			if n > l.id {
				count = (n - l.id + L - 1) / L
			}
			if count == 0 {
				return
			}
			tasks := tasksPerLocale
			if tasks > count {
				tasks = count
			}
			var twg sync.WaitGroup
			for t := 0; t < tasks; t++ {
				lo := count * t / tasks
				hi := count * (t + 1) / tasks
				twg.Add(1)
				go func(lo, hi int) {
					defer twg.Done()
					tctx := s.newCtx(l)
					var priv P
					if perTask != nil {
						priv = perTask(tctx)
					}
					for k := lo; k < hi; k++ {
						body(tctx, priv, l.id+k*L)
					}
					if perTaskDone != nil {
						perTaskDone(tctx, priv)
					}
				}(lo, hi)
			}
			twg.Wait()
		}(loc)
	}
	wg.Wait()
}

// ForallLocal iterates i over [0, n) using `tasks` tasks on the
// current locale only — a shared-memory forall with task-private
// state, for the LocalEpochManager and shared-memory benchmarks.
func ForallLocal[P any](c *Ctx, n, tasks int,
	perTask func(ctx *Ctx) P,
	body func(ctx *Ctx, priv P, i int),
	perTaskDone func(ctx *Ctx, priv P),
) {
	if tasks <= 0 {
		tasks = 1
	}
	if tasks > n && n > 0 {
		tasks = n
	}
	s := c.sys
	var wg sync.WaitGroup
	for t := 0; t < tasks; t++ {
		lo := n * t / tasks
		hi := n * (t + 1) / tasks
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			tctx := s.newCtx(c.here)
			var priv P
			if perTask != nil {
				priv = perTask(tctx)
			}
			for i := lo; i < hi; i++ {
				body(tctx, priv, i)
			}
			if perTaskDone != nil {
				perTaskDone(tctx, priv)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// AndReduce accumulates a logical-AND reduction across tasks, the
// analogue of Chapel's `with (&& reduce ok)` intent in Listing 4.
// The zero value is NOT ready; use NewAndReduce, which starts true.
type AndReduce struct {
	mu sync.Mutex
	v  bool
}

// NewAndReduce returns a reduction initialised to true.
func NewAndReduce() *AndReduce { return &AndReduce{v: true} }

// And folds b into the reduction.
func (r *AndReduce) And(b bool) {
	if b {
		return
	}
	r.mu.Lock()
	r.v = false
	r.mu.Unlock()
}

// Value returns the reduced result; call after all contributors join.
func (r *AndReduce) Value() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}
