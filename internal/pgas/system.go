package pgas

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/trace"
)

// Config describes a System.
type Config struct {
	// Locales is the number of locales (compute nodes). Must be >= 1.
	Locales int

	// Backend selects the network-atomic regime (ugni or none).
	Backend comm.Backend

	// Latency is the injected-delay profile. The zero value disables
	// all delays (fast, for unit tests); comm.DefaultProfile() gives
	// the calibrated benchmark profile.
	Latency comm.LatencyProfile

	// ProgressWorkers is the number of active-message handler
	// goroutines per locale; it bounds how many AM atomics a locale can
	// service concurrently, which is the serialization the paper's
	// "none" curves exhibit. Defaults to 2.
	ProgressWorkers int

	// AMQueueDepth is the capacity of each locale's active-message
	// queue: how many injected-but-unserviced messages a locale absorbs
	// before senders block, modelling the NIC's bounded rx queue.
	// 0 selects the default of 64; negative values are rejected.
	AMQueueDepth int

	// Agg configures the per-task aggregation buffers (capacity and
	// flush policy). The zero value selects FlushOnCapacity with
	// comm.DefaultAggCapacity operations per destination.
	Agg comm.AggConfig

	// Perturb is the per-locale latency fault plan (workload fault
	// injection): every injected delay touching a perturbed locale is
	// scaled by its factor. The zero value disables perturbation.
	// Counters are never affected.
	Perturb comm.Perturbation

	// Park configures the partition retry plane: operations refused
	// because the source/destination pair is partitioned (both locales
	// alive) park in a per-locale comm.Parking ledger with exponential
	// backoff and redeliver when the pair heals, instead of draining to
	// OpsLost. The zero value enables the plane with the comm defaults;
	// Park.Disable reverts partitions to fail-stop accounting.
	Park comm.ParkConfig

	// Tracer, when non-nil, records begin/end spans for the dispatch,
	// flush, combine, epoch and migration lifecycles. A nil Tracer (the
	// default) costs every instrumented hot path exactly one nil check;
	// counters and injected delays are never affected either way.
	Tracer *trace.Recorder

	// Seed makes per-task random streams reproducible. Defaults to 1.
	Seed uint64

	// ForceWidePointers makes AtomicObject behave as if the system had
	// more than 2^16 locales, exercising the wide-pointer/DCAS fallback
	// without actually instantiating 65537 locales.
	ForceWidePointers bool
}

// System is a running PGAS instance.
type System struct {
	cfg      Config
	locales  []*Locale
	counters comm.Counters
	matrix   *comm.Matrix

	taskSeq atomic.Uint64 // unique task ids, also salts per-task RNG
	ctxPool sync.Pool     // recycled Ctx structs for the sync dispatch path

	asyncPending atomic.Int64 // in-flight AsyncOn tasks (quiescence)

	tracer *trace.Recorder // nil when tracing is off (Config.Tracer)

	// perturb is the live latency fault plan. Config.Perturb installs
	// the initial plan; SetPerturbation swaps it at runtime (the
	// telemetry /api/fault path). delay() reads it on every injected
	// delay, so a swap takes effect on the next simulated communication.
	// faultMu serializes the read-modify-write mutators (Crash, Sever,
	// Heal) so concurrent fault events never lose each other's updates.
	perturb atomic.Pointer[comm.Perturbation]
	faultMu sync.Mutex

	// Partition retry plane: one ledger per source locale, a lazily
	// started background pump that retries parked ops on their backoff
	// clocks, and the monotonic clock the ledgers are stamped against.
	parking   []*comm.Parking
	parkPump  sync.Once
	parkStop  chan struct{}
	parkWG    sync.WaitGroup
	startTime time.Time

	privMu   sync.Mutex
	privNext int
	privFree []int // destroyed privatization ids, recycled by NewPrivatized

	closing  atomic.Bool // Shutdown entered (guards the drain sequence)
	shutdown atomic.Bool
	workerWG sync.WaitGroup
}

// Locale is one logical compute node: an id, a heap partition, a
// progress-worker pool, and a table of privatized instances.
type Locale struct {
	id   int
	sys  *System
	heap *gas.Heap
	amq  chan amReq

	privMu    sync.RWMutex
	privTable []any
}

type amReq struct {
	fn   func()
	done chan struct{}
}

// NewSystem boots a System with cfg. It panics on invalid
// configuration; call Shutdown when done to stop the progress workers.
func NewSystem(cfg Config) *System {
	if cfg.Locales < 1 {
		panic(fmt.Sprintf("pgas: Locales must be >= 1, got %d", cfg.Locales))
	}
	if cfg.Locales > gas.MaxLocales {
		panic(fmt.Sprintf("pgas: %d locales exceeds the %d addressable by 16-bit locality", cfg.Locales, gas.MaxLocales))
	}
	if cfg.ProgressWorkers <= 0 {
		cfg.ProgressWorkers = 2
	}
	if cfg.AMQueueDepth < 0 {
		panic(fmt.Sprintf("pgas: AMQueueDepth must be >= 0, got %d", cfg.AMQueueDepth))
	}
	if cfg.AMQueueDepth == 0 {
		cfg.AMQueueDepth = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Park = cfg.Park.WithDefaults()
	s := &System{cfg: cfg, matrix: comm.NewMatrix(cfg.Locales), tracer: cfg.Tracer, startTime: time.Now()}
	if cfg.Perturb.Enabled() {
		p := cfg.Perturb
		s.perturb.Store(&p)
	}
	s.parkStop = make(chan struct{})
	s.parking = make([]*comm.Parking, cfg.Locales)
	for i := range s.parking {
		src := i
		s.parking[i] = comm.NewParking(src, cfg.Locales, cfg.Park, &s.counters,
			func(dst int, batch []comm.Op, bytes int64) {
				s.redeliverParked(src, dst, batch, bytes)
			})
	}
	s.locales = make([]*Locale, cfg.Locales)
	for i := range s.locales {
		loc := &Locale{
			id:   i,
			sys:  s,
			heap: gas.NewHeap(i),
			amq:  make(chan amReq, cfg.AMQueueDepth),
		}
		s.locales[i] = loc
		for w := 0; w < cfg.ProgressWorkers; w++ {
			s.workerWG.Add(1)
			go loc.progressWorker()
		}
	}
	return s
}

// progressWorker drains the locale's active-message queue. Handlers
// are small and terminal (an atomic op plus the modelled occupancy
// cost); they never issue further communication, so a bounded pool
// cannot deadlock. The occupancy cost is scaled by the locale's own
// perturbation factor: a slow locale services its inbound AMs slowly.
func (l *Locale) progressWorker() {
	defer l.sys.workerWG.Done()
	handlerNS := int64(float64(l.sys.cfg.Latency.AMHandlerNS) * l.sys.cfg.Perturb.ScaleFor(l.id))
	for req := range l.amq {
		comm.Delay(handlerNS)
		req.fn()
		req.done <- struct{}{}
	}
}

// Shutdown settles the partition retry plane, waits for asynchronous
// operations to quiesce, then stops all progress workers. Any
// communication attempted after Shutdown panics; a System is not
// restartable. The retry ledger drains *before* the shutdown flag goes
// up: redelivered ops may legitimately launch async reroutes and AM
// atomics, which must land inside the quiesce window, not panic
// against a half-dead system. The flag is then set before the quiesce
// so a racing AsyncOn either lands inside the window or is refused —
// it can never outlive the progress workers.
func (s *System) Shutdown() {
	if s.closing.Swap(true) {
		return
	}
	close(s.parkStop)
	s.parkWG.Wait()
	s.DrainParking()
	s.shutdown.Store(true)
	s.Quiesce()
	for _, l := range s.locales {
		close(l.amq)
	}
	s.workerWG.Wait()
}

// NumLocales returns the configured locale count.
func (s *System) NumLocales() int { return len(s.locales) }

// Backend returns the configured network-atomic backend.
func (s *System) Backend() comm.Backend { return s.cfg.Backend }

// WidePointers reports whether AtomicObject must use the 128-bit
// wide-pointer representation (more locales than pointer compression
// can encode, or ForceWidePointers set for testing).
func (s *System) WidePointers() bool {
	return s.cfg.ForceWidePointers || len(s.locales) > gas.MaxLocales
}

// Counters returns the system's communication-diagnostic counters.
func (s *System) Counters() *comm.Counters { return &s.counters }

// Matrix returns the per-locale-pair communication matrix: every
// remote event counted by Counters is also attributed to its
// (source, destination) pair here.
func (s *System) Matrix() *comm.Matrix { return s.matrix }

// Latency returns the configured latency profile.
func (s *System) Latency() comm.LatencyProfile { return s.cfg.Latency }

// LocaleHeap exposes the heap of one locale, primarily for tests and
// statistics; normal code goes through Ctx allocation helpers.
func (s *System) LocaleHeap(id int) *gas.Heap { return s.locales[id].heap }

// HeapStats sums allocation statistics across every locale.
func (s *System) HeapStats() gas.Stats {
	var total gas.Stats
	for _, l := range s.locales {
		total = total.Add(l.heap.Stats())
	}
	return total
}

// Ctx returns a fresh task context pinned to the given locale, as if a
// task had been spawned there. Run is the conventional entry point;
// Ctx exists for tests and benchmarks that drive locales directly.
func (s *System) Ctx(locale int) *Ctx {
	if locale < 0 || locale >= len(s.locales) {
		panic(fmt.Sprintf("pgas: locale %d out of range [0, %d)", locale, len(s.locales)))
	}
	return s.newCtx(s.locales[locale])
}

// Run executes fn as the program's main task on locale 0 and returns
// when it completes, mirroring a Chapel main procedure.
func (s *System) Run(fn func(ctx *Ctx)) {
	fn(s.Ctx(0))
}

// amDonePool recycles the completion channels of amCall: one channel
// per in-flight active message instead of one allocation per call. The
// channels are buffered (capacity 1) so the progress worker's signal
// never blocks and the channel is quiescent again by the time the
// waiter returns it to the pool.
var amDonePool = sync.Pool{
	New: func() any { return make(chan struct{}, 1) },
}

// amCall ships fn from src to the target locale's progress workers and
// waits for it to execute. It is the transport for active-message
// atomics and remote DCAS; callers are responsible for counting the
// event.
func (s *System) amCall(src, target int, fn func()) {
	s.delay(src, target, s.cfg.Latency.AMRoundTripNS)
	done := amDonePool.Get().(chan struct{})
	s.locales[target].amq <- amReq{fn: fn, done: done}
	<-done
	amDonePool.Put(done)
}

// delay injects ns of simulated latency for an event between src and
// dst, scaled by the live perturbation plan (fault injection). All
// dispatch-layer delay sites route through here so a fault plan covers
// every class of communication uniformly — including one installed
// mid-run via SetPerturbation.
func (s *System) delay(src, dst int, ns int64) {
	if p := s.perturb.Load(); p != nil && p.Enabled() {
		ns = int64(float64(ns) * p.PairScale(src, dst))
	}
	comm.Delay(ns)
}

// SetPerturbation swaps the live latency fault plan: every subsequent
// injected delay uses p. The zero Perturbation clears faults. Two
// cfg-time captures do not follow a swap: progress-worker AM handler
// occupancy (fixed at boot) and the flush-delay scaling inside
// already-created aggregation buffers — new tasks' aggregators pick up
// the current plan.
func (s *System) SetPerturbation(p comm.Perturbation) {
	s.perturb.Store(&p)
}

// Perturbation returns the live latency fault plan.
func (s *System) Perturbation() comm.Perturbation {
	if p := s.perturb.Load(); p != nil {
		return *p
	}
	return comm.Perturbation{}
}

// Alive reports whether locale l is up under the live fault plan.
func (s *System) Alive(l int) bool {
	if p := s.perturb.Load(); p != nil {
		return p.Alive(l)
	}
	return true
}

// Reachable reports whether src and dst can currently exchange traffic
// under the live fault plan (both alive, pair not partitioned).
func (s *System) Reachable(src, dst int) bool {
	if p := s.perturb.Load(); p != nil {
		return p.Reachable(src, dst)
	}
	return true
}

// refuse reports whether a remote operation issued by src toward
// target must be refused under the live fault plan: the target is dead
// or the pair is partitioned. Salvage contexts — the recovery plane —
// are exempt, which is what lets failover reach a dead locale's shards
// and limbo lists.
func (s *System) refuse(src *Ctx, target int) bool {
	return s.refusalOf(src, target) != refuseNone
}

// refusal classifies why (or whether) an operation is refused; the two
// causes settle into different ledgers — crashes are permanent
// (OpsLost), partitions transient (the retry plane).
type refusal uint8

const (
	refuseNone refusal = iota
	refuseCrash
	refusePartition
)

// refusalOf classifies a remote operation from src toward target under
// the live fault plan: refuseCrash when the target is dead,
// refusePartition when both endpoints are alive but the pair is
// severed, refuseNone otherwise (including for salvage contexts, which
// the fault plan exempts).
func (s *System) refusalOf(src *Ctx, target int) refusal {
	p := s.perturb.Load()
	if p == nil || !p.Faulted() || src.salvage {
		return refuseNone
	}
	if !p.Alive(target) {
		return refuseCrash
	}
	if p.Partitioned(src.here.id, target) {
		return refusePartition
	}
	return refuseNone
}

// Crash marks locale l dead in the live fault plan — fail-stop: every
// subsequent operation whose destination is l is refused with a
// counted OpsLost, while work already executing on l drains cleanly.
// The crash composes with whatever latency plan is installed and
// records one always-on KindCrash trace instant. Crashing an
// already-dead locale is a no-op, so crash instants equal crashes
// applied. Locale 0 hosts the global epoch word and the orchestrating
// main task, so it is the one locale that cannot crash.
func (s *System) Crash(l int) error {
	if l <= 0 || l >= len(s.locales) {
		return fmt.Errorf("pgas: crash locale %d out of range [1, %d)", l, len(s.locales))
	}
	s.faultMu.Lock()
	if !s.Alive(l) {
		s.faultMu.Unlock()
		return nil
	}
	p := s.Perturbation().WithDown(len(s.locales), l)
	s.perturb.Store(&p)
	s.faultMu.Unlock()
	if tr := s.tracer; tr != nil {
		tr.Instant(0, trace.KindCrash, 0, 0, l, 0, int64(l))
	}
	return nil
}

// Tracer returns the system's span recorder, or nil when tracing is
// off. Instrumentation sites nil-check this themselves on hot paths.
func (s *System) Tracer() *trace.Recorder { return s.tracer }

func (s *System) newCtx(l *Locale) *Ctx {
	id := s.taskSeq.Add(1)
	c := &Ctx{sys: s, here: l, taskID: id}
	c.rng = rngSeed(s.cfg.Seed, uint64(l.id), id)
	return c
}

// borrowCtx returns a pooled Ctx initialised exactly as newCtx would
// initialise a fresh one — same task-id draw, same RNG seeding — so a
// pooled task is indistinguishable from a spawned one. Callers must
// pair it with releaseCtx and must not let the Ctx escape the call
// (dispatchOn's contract: the callee's Ctx dies with the call).
func (s *System) borrowCtx(l *Locale) *Ctx {
	c, _ := s.ctxPool.Get().(*Ctx)
	if c == nil {
		c = &Ctx{}
	}
	id := s.taskSeq.Add(1)
	*c = Ctx{sys: s, here: l, taskID: id, rng: rngSeed(s.cfg.Seed, uint64(l.id), id)}
	return c
}

// releaseCtx clears and recycles a borrowed Ctx. Any unflushed
// aggregation buffers are dropped with it, matching the pre-pooling
// behaviour where the callee's Ctx was garbage the moment fn returned.
func (s *System) releaseCtx(c *Ctx) {
	*c = Ctx{}
	s.ctxPool.Put(c)
}
