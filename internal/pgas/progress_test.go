package pgas

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
)

// A single progress worker must still service arbitrarily many
// concurrent AM atomics without deadlock or lost updates — handlers
// are terminal by construction.
func TestSingleProgressWorker(t *testing.T) {
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone, ProgressWorkers: 1})
	defer s.Shutdown()
	w := NewWord64(s.Ctx(0), 1, 0)
	const tasks = 16
	const per = 100
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Ctx(0)
			for i := 0; i < per; i++ {
				w.Add(c, 1)
			}
		}()
	}
	wg.Wait()
	if got := w.Read(s.Ctx(0)); got != tasks*per {
		t.Fatalf("lost updates with one progress worker: %d", got)
	}
}

// AM atomics from many locales to one hot word: totals must hold and
// the comm matrix must show the convergent traffic.
func TestHotWordConvergentTraffic(t *testing.T) {
	s := newTestSystem(t, 8, comm.BackendNone)
	w := NewWord64(s.Ctx(0), 7, 0)
	var wg sync.WaitGroup
	for l := 0; l < 8; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := s.Ctx(l)
			for i := 0; i < 50; i++ {
				w.Add(c, 1)
			}
		}(l)
	}
	wg.Wait()
	// Read from the word's own locale so the verification itself adds
	// no cross-locale traffic.
	if got := w.Read(s.Ctx(7)); got != 400 {
		t.Fatalf("total = %d", got)
	}
	m := s.Matrix()
	for l := 0; l < 7; l++ {
		if got := m.Get(l, 7); got != 50 {
			t.Fatalf("matrix[%d][7] = %d, want 50", l, got)
		}
	}
	// Locale 7's own ops were processor atomics: invisible.
	if got := m.Get(7, 7); got != 0 {
		t.Fatalf("self traffic = %d", got)
	}
}

// Nested on-statements (the tryReclaim pattern: coforall inside an
// on-statement inside a coforall) must not deadlock even with minimal
// workers, because on-statements spawn fresh tasks rather than occupy
// progress workers.
func TestNestedOnStatements(t *testing.T) {
	s := NewSystem(Config{Locales: 4, Backend: comm.BackendNone, ProgressWorkers: 1})
	defer s.Shutdown()
	s.Run(func(c *Ctx) {
		depth2 := 0
		c.On(1, func(c1 *Ctx) {
			c1.CoforallLocales(func(c2 *Ctx) {
				c2.On((c2.Here()+1)%4, func(c3 *Ctx) {})
			})
			depth2 = c1.Here()
		})
		if depth2 != 1 {
			t.Fatalf("nested on ran on %d", depth2)
		}
	})
}

// Word64 Add/CAS mixed storm across backends: linearizable counter.
func TestMixedAtomicStorm(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 3, backend)
			w := NewWord64(s.Ctx(0), 1, 0)
			var wg sync.WaitGroup
			const tasks = 9
			const per = 200
			for g := 0; g < tasks; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c := s.Ctx(g % 3)
					for i := 0; i < per; i++ {
						if g%3 == 0 {
							w.Add(c, 1)
						} else {
							for {
								old := w.Read(c)
								if w.CompareAndSwap(c, old, old+1) {
									break
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if got := w.Read(s.Ctx(0)); got != tasks*per {
				t.Fatalf("counter = %d, want %d", got, tasks*per)
			}
		})
	}
}

// Task ids are unique across all spawning paths.
func TestTaskIDsUnique(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	record := func(c *Ctx) {
		mu.Lock()
		defer mu.Unlock()
		if seen[c.TaskID()] {
			t.Errorf("duplicate task id %d", c.TaskID())
		}
		seen[c.TaskID()] = true
	}
	s.Run(func(c *Ctx) {
		record(c)
		c.CoforallLocales(record)
		c.Coforall(8, func(tc *Ctx, _ int) { record(tc) })
		ForallCyclic(c, 32, 2, nil, func(tc *Ctx, _ struct{}, i int) {}, nil)
	})
	if len(seen) < 13 {
		t.Fatalf("only %d distinct tasks recorded", len(seen))
	}
}
