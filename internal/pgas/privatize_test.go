package pgas

import (
	"sync"
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
)

type privThing struct {
	locale int
	tag    int
}

// Concurrent NewPrivatized calls from many tasks must hand out
// distinct ids and resolve to the right per-locale instances under
// every interleaving (run with -race).
func TestPrivatizedConcurrentCreateAndLookup(t *testing.T) {
	s := NewSystem(Config{Locales: 4, Backend: comm.BackendNone})
	defer s.Shutdown()

	const creators = 8
	const perCreator = 10
	handles := make([][]Privatized[privThing], creators)
	var wg sync.WaitGroup
	for g := 0; g < creators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 4)
			for i := 0; i < perCreator; i++ {
				tag := g*perCreator + i
				h := NewPrivatized(c, func(lc *Ctx) *privThing {
					return &privThing{locale: lc.Here(), tag: tag}
				})
				handles[g] = append(handles[g], h)
				// Interleave lookups with other creators' registry writes.
				for l := 0; l < 4; l++ {
					got := h.GetOn(c, l)
					if got.locale != l || got.tag != tag {
						t.Errorf("handle %d resolved (%d,%d) on locale %d", tag, got.locale, got.tag, l)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// All ids distinct; every handle still resolves correctly.
	seen := map[int]bool{}
	for g := range handles {
		for i, h := range handles[g] {
			if !h.Valid() {
				t.Fatalf("handle %d/%d invalid", g, i)
			}
			if seen[h.pid] {
				t.Fatalf("pid %d handed out twice", h.pid)
			}
			seen[h.pid] = true
			c := s.Ctx(0)
			if got := h.Get(c); got.locale != 0 || got.tag != g*perCreator+i {
				t.Fatalf("handle %d/%d resolves (%d,%d)", g, i, got.locale, got.tag)
			}
		}
	}
}

// Get performs zero communication from every locale.
func TestPrivatizedGetIsZeroComm(t *testing.T) {
	s := NewSystem(Config{Locales: 4, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	h := NewPrivatized(c, func(lc *Ctx) *privThing {
		return &privThing{locale: lc.Here()}
	})
	before := s.Counters().Snapshot()
	for l := 0; l < 4; l++ {
		lc := s.Ctx(l)
		for i := 0; i < 100; i++ {
			if h.Get(lc).locale != l {
				t.Fatalf("wrong instance on locale %d", l)
			}
		}
	}
	if delta := s.Counters().Snapshot().Sub(before); delta.Remote() != 0 {
		t.Fatalf("privatized Get communicated: %v", delta)
	}
}

// Destroy runs the per-locale finalizer hook everywhere, recycles the
// id, and a zero-value handle reports invalid.
func TestPrivatizedLifecycle(t *testing.T) {
	s := NewSystem(Config{Locales: 3, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)

	var zero Privatized[privThing]
	if zero.Valid() {
		t.Fatal("zero handle claims validity")
	}

	h := NewPrivatized(c, func(lc *Ctx) *privThing {
		return &privThing{locale: lc.Here(), tag: 1}
	})
	var finalized atomic.Int64
	h.Destroy(c, func(lc *Ctx, inst *privThing) {
		if inst.locale != lc.Here() {
			t.Errorf("finalizer on %d got instance from %d", lc.Here(), inst.locale)
		}
		finalized.Add(1)
	})
	if finalized.Load() != 3 {
		t.Fatalf("finalizer ran %d times, want 3", finalized.Load())
	}

	// The freed id is recycled by the next create, on every locale.
	h2 := NewPrivatized(c, func(lc *Ctx) *privThing {
		return &privThing{locale: lc.Here(), tag: 2}
	})
	if h2.pid != h.pid {
		t.Fatalf("destroyed pid %d not recycled (got %d)", h.pid, h2.pid)
	}
	for l := 0; l < 3; l++ {
		if got := h2.GetOn(c, l); got.tag != 2 || got.locale != l {
			t.Fatalf("recycled handle resolves (%d,%d) on %d", got.locale, got.tag, l)
		}
	}
}

// A second Destroy of the same object is detected instead of
// double-freeing the id.
func TestPrivatizedDoubleDestroyPanics(t *testing.T) {
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	h := NewPrivatized(c, func(lc *Ctx) *privThing {
		return &privThing{locale: lc.Here()}
	})
	h.Destroy(c, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Destroy did not panic")
		}
	}()
	h.Destroy(c, nil)
}

// Destroy under concurrent creates: ids stay unique among live
// objects, and recycled slots never alias a live handle (run with
// -race).
func TestPrivatizedChurn(t *testing.T) {
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			for i := 0; i < 20; i++ {
				tag := g*1000 + i
				h := NewPrivatized(c, func(lc *Ctx) *privThing {
					return &privThing{locale: lc.Here(), tag: tag}
				})
				for l := 0; l < 2; l++ {
					if got := h.GetOn(c, l); got.tag != tag {
						t.Errorf("live handle %d resolved tag %d", tag, got.tag)
					}
				}
				h.Destroy(c, nil)
			}
		}(g)
	}
	wg.Wait()
}
