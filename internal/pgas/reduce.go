package pgas

import "sync"

// Reductions over task contributions, the analogues of Chapel's
// `+ reduce` / `min reduce` / `max reduce` intents. AndReduce (ctx.go)
// is the one Listing 4 uses; these cover the common numeric cases for
// workloads built on the runtime. All are safe for concurrent
// contribution; read the result only after contributors join.

// SumReduce accumulates an int64 sum.
type SumReduce struct {
	mu sync.Mutex
	v  int64
}

// Add folds x into the sum.
func (r *SumReduce) Add(x int64) {
	r.mu.Lock()
	r.v += x
	r.mu.Unlock()
}

// Value returns the reduced sum.
func (r *SumReduce) Value() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// MinReduce tracks an int64 minimum; empty reductions have no value.
type MinReduce struct {
	mu  sync.Mutex
	v   int64
	set bool
}

// Add folds x into the minimum.
func (r *MinReduce) Add(x int64) {
	r.mu.Lock()
	if !r.set || x < r.v {
		r.v, r.set = x, true
	}
	r.mu.Unlock()
}

// Value returns the minimum and whether any value was contributed.
func (r *MinReduce) Value() (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v, r.set
}

// MaxReduce tracks an int64 maximum; empty reductions have no value.
type MaxReduce struct {
	mu  sync.Mutex
	v   int64
	set bool
}

// Add folds x into the maximum.
func (r *MaxReduce) Add(x int64) {
	r.mu.Lock()
	if !r.set || x > r.v {
		r.v, r.set = x, true
	}
	r.mu.Unlock()
}

// Value returns the maximum and whether any value was contributed.
func (r *MaxReduce) Value() (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v, r.set
}
