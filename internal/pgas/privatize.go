package pgas

// Privatization: the record-wrapping + remote-value-forwarding pattern
// the paper inherits from Chapel's arrays, domains and distributions
// (and from CAL/CGL/CHGL/RCUArray). A privatized object is replicated
// once per locale; a small handle (here, just a table index) is
// copied *by value* into every task, so resolving the locale-local
// instance is a plain indexed load into locale-private memory —
// zero communication, which the comm-counter tests verify. This is
// what lets the EpochManager's pin/unpin path stay flat across
// locales (Figure 7).

// Privatized is the copyable handle to a per-locale replicated
// instance of T. The zero value is invalid; create with NewPrivatized.
type Privatized[T any] struct {
	pid int // index into every locale's privTable; 0 via zero value is invalid-by-convention
	ok  bool
}

// NewPrivatized replicates an instance across every locale: create is
// invoked once on each locale (on that locale, as a coforall) and the
// resulting handle can be copied freely between tasks and locales.
// The constructor hook receives a Ctx pinned to the locale it builds
// for, so per-locale state (heaps, words, limbo lists) lands on the
// right locale.
//
// Destroyed ids are recycled, so long-lived systems that churn
// privatized objects keep every locale's table dense.
func NewPrivatized[T any](c *Ctx, create func(ctx *Ctx) *T) Privatized[T] {
	s := c.sys
	s.privMu.Lock()
	var pid int
	if n := len(s.privFree); n > 0 {
		pid = s.privFree[n-1]
		s.privFree = s.privFree[:n-1]
	} else {
		pid = s.privNext
		s.privNext++
	}
	s.privMu.Unlock()

	c.CoforallLocales(func(lc *Ctx) {
		inst := create(lc)
		l := lc.here
		l.privMu.Lock()
		for len(l.privTable) <= pid {
			l.privTable = append(l.privTable, nil)
		}
		l.privTable[pid] = inst
		l.privMu.Unlock()
	})
	return Privatized[T]{pid: pid, ok: true}
}

// Valid distinguishes a handle produced by NewPrivatized from the
// (invalid) zero value. It does not track destruction: handles are
// values, so no copy can observe that Destroy ran — not using a
// destroyed handle is the caller's contract (see Destroy).
func (p Privatized[T]) Valid() bool { return p.ok }

// Destroy tears the replicated object down: finalize (which may be
// nil) runs once on every locale against that locale's instance — the
// per-locale destructor hook, mirroring the constructor hook of
// NewPrivatized — the table slots are cleared so the instances can be
// collected, and the id returns to the registry's free list for reuse.
//
// The caller must guarantee no task will use any copy of the handle
// after Destroy begins: a Get through a stale handle panics (nil
// instance) or, worse, observes an unrelated object that recycled the
// id. This is the same obligation Chapel places on deleting a
// privatized class instance. Destroy detects the misuses it can —
// destroying an id whose slot is already empty, or whose id is
// already on the free list — and panics rather than corrupting the
// registry; a double-destroy racing a recycle of the same id is
// fundamentally indistinguishable from a valid destroy and stays on
// the caller.
func (p Privatized[T]) Destroy(c *Ctx, finalize func(ctx *Ctx, inst *T)) {
	if !p.ok {
		panic("pgas: Destroy of an invalid Privatized handle")
	}
	s := c.sys
	s.privMu.Lock()
	for _, free := range s.privFree {
		if free == p.pid {
			s.privMu.Unlock()
			panic("pgas: double Destroy of a Privatized handle")
		}
	}
	s.privMu.Unlock()
	here := c.here
	here.privMu.RLock()
	empty := here.privTable[p.pid] == nil
	here.privMu.RUnlock()
	if empty {
		panic("pgas: Destroy of an already-destroyed Privatized handle")
	}
	c.CoforallLocales(func(lc *Ctx) {
		l := lc.here
		l.privMu.Lock()
		inst := l.privTable[p.pid]
		l.privTable[p.pid] = nil
		l.privMu.Unlock()
		if finalize != nil && inst != nil {
			finalize(lc, inst.(*T))
		}
	})
	s.privMu.Lock()
	s.privFree = append(s.privFree, p.pid)
	s.privMu.Unlock()
}

// Get returns the instance that lives on the calling task's locale.
// It performs no communication. An invalid (zero-value) handle panics
// here rather than silently aliasing pid 0 — the first object ever
// registered.
func (p Privatized[T]) Get(c *Ctx) *T {
	if !p.ok {
		panic("pgas: Get through an invalid (zero-value) Privatized handle")
	}
	l := c.here
	l.privMu.RLock()
	inst := l.privTable[p.pid]
	l.privMu.RUnlock()
	return inst.(*T)
}

// GetOn returns the instance on a specific locale. Unlike Get this may
// be used to inspect peers (e.g. in tests); it still performs no
// simulated communication because in a real system the caller would be
// running on that locale inside an on-statement.
func (p Privatized[T]) GetOn(c *Ctx, locale int) *T {
	if !p.ok {
		panic("pgas: GetOn through an invalid (zero-value) Privatized handle")
	}
	l := c.sys.locales[locale]
	l.privMu.RLock()
	inst := l.privTable[p.pid]
	l.privMu.RUnlock()
	return inst.(*T)
}
