package pgas

// Privatization: the record-wrapping + remote-value-forwarding pattern
// the paper inherits from Chapel's arrays, domains and distributions
// (and from CAL/CGL/CHGL/RCUArray). A privatized object is replicated
// once per locale; a small handle (here, just a table index) is
// copied *by value* into every task, so resolving the locale-local
// instance is a plain indexed load into locale-private memory —
// zero communication, which the comm-counter tests verify. This is
// what lets the EpochManager's pin/unpin path stay flat across
// locales (Figure 7).

// Privatized is the copyable handle to a per-locale replicated
// instance of T. The zero value is invalid; create with NewPrivatized.
type Privatized[T any] struct {
	pid int // index into every locale's privTable; -1 when invalid
}

// NewPrivatized replicates an instance across every locale: create is
// invoked once on each locale (on that locale, as a coforall) and the
// resulting handle can be copied freely between tasks and locales.
func NewPrivatized[T any](c *Ctx, create func(ctx *Ctx) *T) Privatized[T] {
	s := c.sys
	s.privMu.Lock()
	pid := s.privNext
	s.privNext++
	s.privMu.Unlock()

	c.CoforallLocales(func(lc *Ctx) {
		inst := create(lc)
		l := lc.here
		l.privMu.Lock()
		for len(l.privTable) <= pid {
			l.privTable = append(l.privTable, nil)
		}
		l.privTable[pid] = inst
		l.privMu.Unlock()
	})
	return Privatized[T]{pid: pid}
}

// Get returns the instance that lives on the calling task's locale.
// It performs no communication.
func (p Privatized[T]) Get(c *Ctx) *T {
	l := c.here
	l.privMu.RLock()
	inst := l.privTable[p.pid]
	l.privMu.RUnlock()
	return inst.(*T)
}

// GetOn returns the instance on a specific locale. Unlike Get this may
// be used to inspect peers (e.g. in tests); it still performs no
// simulated communication because in a real system the caller would be
// running on that locale inside an on-statement.
func (p Privatized[T]) GetOn(c *Ctx, locale int) *T {
	l := c.sys.locales[locale]
	l.privMu.RLock()
	inst := l.privTable[p.pid]
	l.privMu.RUnlock()
	return inst.(*T)
}
