package pgas

// Per-task deterministic random streams (splitmix64). Benchmarks and
// workload generators draw from the task's Ctx so that a given
// (system seed, locale, task) triple always produces the same stream,
// which keeps workloads reproducible across runs and backends.

// rngSeed derives an initial splitmix64 state from the system seed,
// the locale id, and the task id.
func rngSeed(seed, locale, task uint64) uint64 {
	x := seed ^ locale*0x9e3779b97f4a7c15 ^ task*0xbf58476d1ce4e5b9
	// One scramble round so similar inputs diverge immediately.
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RandUint64 returns the next value of the task's private stream.
func (c *Ctx) RandUint64() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RandIntn returns a uniform int in [0, n). It panics if n <= 0.
func (c *Ctx) RandIntn(n int) int {
	if n <= 0 {
		panic("pgas: RandIntn with n <= 0")
	}
	return int(c.RandUint64() % uint64(n))
}

// RandFloat64 returns a uniform float64 in [0, 1).
func (c *Ctx) RandFloat64() float64 {
	return float64(c.RandUint64()>>11) / (1 << 53)
}
