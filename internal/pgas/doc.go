// Package pgas implements an in-process Partitioned Global Address
// Space runtime: the substrate the paper's constructs run on, and the
// only layer that owns mechanism (task spawning, active-message
// queues, batch delivery). Everything above it communicates through
// Ctx methods, so the comm counters see every event exactly once.
//
// # Topology and tasks
//
// A System hosts a fixed set of locales. Each locale owns a gas.Heap
// (its partition of the global address space), a bounded pool of
// progress workers that execute incoming active messages (the
// serialization the paper's "none" curves exhibit), and a slot in the
// privatization registry. Tasks are goroutines bound to a locale
// through a Ctx — the analogue of Chapel's implicit `here` — carrying
// a private deterministic random stream.
//
// # Language features
//
// The package supplies the handful of features the paper's listings
// rely on: synchronous on-statements (Ctx.On) and fire-and-forget
// asynchronous ones (Ctx.AsyncOn, tracked by System.Quiesce),
// coforall/forall loops over locales and cyclically distributed
// domains with task-private values, network-atomic words (Word64,
// Word128) routed per the configured comm.Backend, remote
// allocation/load/free with bulk variants, an && reduction, and the
// privatization registry.
//
// # The dispatch layer
//
// Every simulated remote operation — on-statement, 64-bit AMO, 128-bit
// DCAS, GET/PUT charge, bulk transfer — is routed, counted and
// latency-charged in dispatch.go, in one place. Ctx.On, Word64,
// Word128 and the memory operations are thin veneers over it, so the
// synchronous, asynchronous and aggregated paths share one accounting
// implementation and cannot drift. Injected delays come from the
// configured comm.LatencyProfile, scaled by the comm.Perturbation
// fault plan at every site.
//
// # Aggregation buffers
//
// Each task lazily owns per-destination aggregation buffers
// (Ctx.Aggregator): Call/CallSized, Free, Put and Add buffer small
// remote operations that ship as one bulk transfer per flush —
// explicitly via Flush, or automatically at capacity. Local
// destinations execute inline, as `on here` is elided. Ctx.Flush
// drains the task's buffers and then waits for system-wide quiescence
// of asynchronous work.
//
// # Privatization
//
// NewPrivatized replicates an instance per locale with a
// per-locale constructor hook; Privatized.Get resolves the calling
// locale's replica with zero communication — the paper's scaling
// device above the network, used by the EpochManager, the structure
// shards (via shared.Object) and the read replication cache.
// Privatized.Destroy runs per-locale finalizers and recycles the
// registry id, so churn workloads keep the tables dense.
package pgas
