package pgas

import (
	"sync/atomic"
	"testing"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

func TestSeverHealErrors(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	if err := s.Sever(0, 3); err == nil {
		t.Fatal("sever out of range succeeded")
	}
	if err := s.Sever(-1, 1); err == nil {
		t.Fatal("sever negative locale succeeded")
	}
	if err := s.Sever(1, 1); err == nil {
		t.Fatal("sever self-pair succeeded")
	}
	if err := s.Heal(0, 1); err == nil {
		t.Fatal("healing an unsevered pair succeeded")
	}
	if err := s.Sever(0, 1); err != nil {
		t.Fatalf("sever: %v", err)
	}
	if err := s.Sever(1, 0); err != nil {
		t.Fatalf("re-sever (idempotent) errored: %v", err)
	}
	if s.Reachable(0, 1) || s.Reachable(1, 0) {
		t.Fatal("severed pair still reachable")
	}
	if !s.Reachable(0, 2) || !s.Reachable(1, 2) {
		t.Fatal("sever leaked beyond its pair")
	}
	if !s.Alive(0) || !s.Alive(1) {
		t.Fatal("sever killed a locale")
	}
	if err := s.Heal(1, 0); err != nil {
		t.Fatalf("heal: %v", err)
	}
	if !s.Reachable(0, 1) {
		t.Fatal("pair still severed after heal")
	}
	if err := s.Heal(0, 1); err == nil {
		t.Fatal("double heal succeeded")
	}
}

// Aggregated ops refused by a partition park and redeliver on heal:
// nothing lands while severed, everything lands after, and the books
// settle with zero lost ops.
func TestPartitionParkAndRedeliver(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	const ops = 8
	var landed atomic.Int64
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		for i := 0; i < ops; i++ {
			c.Aggregator(1).Call(func(tc *Ctx) { landed.Add(1) })
		}
		c.Flush()
		if got := landed.Load(); got != 0 {
			t.Fatalf("%d ops landed through a severed link", got)
		}
		snap := s.Counters().Snapshot()
		if snap.OpsParked != ops || snap.OpsRedelivered != 0 {
			t.Fatalf("books while severed: parked=%d redelivered=%d", snap.OpsParked, snap.OpsRedelivered)
		}
		if s.ParkedOps() != ops {
			t.Fatalf("ledger holds %d ops, want %d", s.ParkedOps(), ops)
		}

		// Heal pumps synchronously: the parked batch has executed by the
		// time Heal returns.
		if err := s.Heal(0, 1); err != nil {
			t.Fatalf("heal: %v", err)
		}
		if got := landed.Load(); got != ops {
			t.Fatalf("%d ops landed after heal, want %d", got, ops)
		}
	})
	snap := s.Counters().Snapshot()
	if snap.OpsParked != ops || snap.OpsRedelivered != ops || snap.OpsExpired != 0 {
		t.Fatalf("settlement: parked=%d redelivered=%d expired=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired)
	}
	if snap.OpsLost != 0 {
		t.Fatalf("partition charged the crash ledger: opsLost=%d", snap.OpsLost)
	}
}

// AsyncOn against a severed pair parks without wedging quiescence; the
// task runs when the pair heals.
func TestPartitionAsyncOnParks(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	var ran atomic.Int64
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		c.AsyncOn(1, func(tc *Ctx) { ran.Add(1) })
		// Flush quiesces: the parked async must not be counted as
		// in-flight or this would deadlock.
		c.Flush()
		if ran.Load() != 0 {
			t.Fatal("async ran through a severed link")
		}
		if err := s.Heal(0, 1); err != nil {
			t.Fatalf("heal: %v", err)
		}
		c.Flush()
		if ran.Load() != 1 {
			t.Fatalf("async ran %d times after heal, want 1", ran.Load())
		}
	})
	snap := s.Counters().Snapshot()
	if snap.OpsParked != 1 || snap.OpsRedelivered != 1 || snap.OpsLost != 0 {
		t.Fatalf("async books: parked=%d redelivered=%d lost=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsLost)
	}
}

// A synchronous on-statement cannot park in the ledger — the caller is
// waiting — so it retries in place and completes once another goroutine
// heals the pair.
func TestPartitionSyncOnRetriesUntilHeal(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		go func() {
			time.Sleep(2 * time.Millisecond)
			if err := s.Heal(0, 1); err != nil {
				t.Errorf("heal: %v", err)
			}
		}()
		var visited int
		c.On(1, func(rc *Ctx) { visited = rc.Here() })
		if visited != 1 {
			t.Fatalf("on-statement ran on locale %d, want 1", visited)
		}
	})
	snap := s.Counters().Snapshot()
	if snap.OpsParked != 1 || snap.OpsRedelivered != 1 || snap.OpsExpired != 0 || snap.OpsLost != 0 {
		t.Fatalf("sync retry books: parked=%d redelivered=%d expired=%d lost=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired, snap.OpsLost)
	}
}

// A synchronous on-statement against a pair that never heals expires at
// the parking deadline and drops, booked expired — not lost.
func TestPartitionSyncOnExpires(t *testing.T) {
	s := NewSystem(Config{
		Locales: 2,
		Backend: comm.BackendNone,
		Park:    comm.ParkConfig{DeadlineNS: int64(time.Millisecond)},
	})
	defer s.Shutdown()
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		ran := false
		c.On(1, func(rc *Ctx) { ran = true })
		if ran {
			t.Fatal("expired on-statement executed")
		}
		if err := s.Heal(0, 1); err != nil {
			t.Fatalf("heal: %v", err)
		}
	})
	snap := s.Counters().Snapshot()
	if snap.OpsParked != 1 || snap.OpsExpired != 1 || snap.OpsRedelivered != 0 {
		t.Fatalf("expiry books: parked=%d redelivered=%d expired=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired)
	}
}

// Park.Disable reverts partitions to fail-stop accounting: refused ops
// drain to OpsLost like crash refusals, and the retry ledgers stay
// untouched — the ablation baseline.
func TestPartitionDisabledFailStop(t *testing.T) {
	s := NewSystem(Config{
		Locales: 2,
		Backend: comm.BackendNone,
		Park:    comm.ParkConfig{Disable: true},
	})
	defer s.Shutdown()
	const ops = 4
	var landed atomic.Int64
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		for i := 0; i < ops; i++ {
			c.Aggregator(1).Call(func(tc *Ctx) { landed.Add(1) })
		}
		c.Flush()
		if err := s.Heal(0, 1); err != nil {
			t.Fatalf("heal: %v", err)
		}
		c.Flush()
	})
	if landed.Load() != 0 {
		t.Fatalf("%d fail-stopped ops landed after heal", landed.Load())
	}
	snap := s.Counters().Snapshot()
	if snap.OpsLost != ops || snap.OpsParked != 0 || snap.OpsRedelivered != 0 {
		t.Fatalf("disabled books: lost=%d parked=%d redelivered=%d",
			snap.OpsLost, snap.OpsParked, snap.OpsRedelivered)
	}
}

// DrainParking (and hence Shutdown) settles a still-severed ledger by
// expiring it: every parked op books exactly one settlement.
func TestDrainParkingExpiresSevered(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	const ops = 3
	var landed atomic.Int64
	s.Run(func(c *Ctx) {
		if err := s.Sever(0, 1); err != nil {
			t.Fatalf("sever: %v", err)
		}
		for i := 0; i < ops; i++ {
			c.Aggregator(1).Call(func(tc *Ctx) { landed.Add(1) })
		}
		c.Flush()
	})
	s.DrainParking()
	if landed.Load() != 0 {
		t.Fatalf("%d ops landed through a never-healed link", landed.Load())
	}
	snap := s.Counters().Snapshot()
	if snap.OpsParked != ops || snap.OpsExpired != ops || snap.OpsRedelivered != 0 {
		t.Fatalf("drain books: parked=%d redelivered=%d expired=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired)
	}
	if snap.OpsLost != 0 {
		t.Fatalf("drain charged the crash ledger: opsLost=%d", snap.OpsLost)
	}
	if s.ParkedOps() != 0 {
		t.Fatalf("ledger not empty after drain: %d", s.ParkedOps())
	}
}

// Partition and heal emit always-on trace instants: control-plane
// kinds, recorded even at a sample rate that suppresses everything
// sampled.
func TestPartitionTraceInstants(t *testing.T) {
	rec := trace.NewRecorder(2, trace.Config{SampleRate: 1 << 20})
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone, Tracer: rec})
	defer s.Shutdown()
	if err := s.Sever(0, 1); err != nil {
		t.Fatalf("sever: %v", err)
	}
	if err := s.Heal(0, 1); err != nil {
		t.Fatalf("heal: %v", err)
	}
	var partitions, heals int
	for _, ev := range rec.Drain(0) {
		switch ev.Kind {
		case trace.KindPartition:
			partitions++
		case trace.KindHeal:
			heals++
		}
	}
	if partitions != 1 || heals != 1 {
		t.Fatalf("trace instants: partition=%d heal=%d, want 1 each", partitions, heals)
	}
}
