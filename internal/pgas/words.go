package pgas

import (
	"sync"
	"sync/atomic"
)

// Word64 is a network-atomic 64-bit word that lives in one locale's
// memory, the substrate for Chapel's `atomic int/uint` under
// CHPL_NETWORK_ATOMICS. Operation routing follows the backend:
//
//   - ugni: every operation — including one issued from the word's own
//     locale — is a NIC atomic: executed without involving the target
//     CPU, paying the NIC round-trip latency. (Aries network atomics
//     are not coherent with processor atomics, so there is no cheap
//     local path; the paper measures this at up to 10×.)
//   - none: operations from the word's own locale are native processor
//     atomics; remote operations ship as active messages executed —
//     and serialized — by the target's progress workers.
//
// For locale-private state that never needs network atomicity (the
// paper "opts out" of network atomics where possible), use plain
// sync/atomic values instead; Word64 models precisely the variables
// that must remain globally atomic.
type Word64 struct {
	home int
	v    atomic.Uint64
}

// NewWord64 allocates a network-atomic word homed on the given locale
// with an initial value.
func NewWord64(c *Ctx, home int, init uint64) *Word64 {
	if home < 0 || home >= c.NumLocales() {
		panic("pgas: Word64 home out of range")
	}
	w := &Word64{home: home}
	w.v.Store(init)
	return w
}

// Home returns the id of the locale the word resides on.
func (w *Word64) Home() int { return w.home }

// amo routes op through the dispatch layer, returning its result.
func (w *Word64) amo(c *Ctx, op func() uint64) uint64 {
	return c.sys.dispatchAMO64(c, w.home, op)
}

// Read atomically loads the word.
func (w *Word64) Read(c *Ctx) uint64 {
	return w.amo(c, w.v.Load)
}

// Write atomically stores val.
func (w *Word64) Write(c *Ctx, val uint64) {
	w.amo(c, func() uint64 { w.v.Store(val); return 0 })
}

// Exchange atomically swaps in val and returns the previous value.
func (w *Word64) Exchange(c *Ctx, val uint64) uint64 {
	return w.amo(c, func() uint64 { return w.v.Swap(val) })
}

// CompareAndSwap atomically replaces old with new, reporting success.
// Every attempt (and the failed subset) is recorded in the CAS
// counters, making retry storms on contended words a counter
// assertion.
func (w *Word64) CompareAndSwap(c *Ctx, old, new uint64) bool {
	ok := w.amo(c, func() uint64 {
		if w.v.CompareAndSwap(old, new) {
			return 1
		}
		return 0
	}) == 1
	c.sys.counters.IncCAS(c.here.id, ok)
	return ok
}

// Add atomically adds delta and returns the new value.
func (w *Word64) Add(c *Ctx, delta uint64) uint64 {
	return w.amo(c, func() uint64 { return w.v.Add(delta) })
}

// TestAndSet sets the word to 1 and reports whether it was already
// set — the primitive behind the paper's is_setting_epoch election
// flags.
func (w *Word64) TestAndSet(c *Ctx) bool {
	return w.amo(c, func() uint64 { return w.v.Swap(1) }) == 1
}

// Clear resets a TestAndSet flag.
func (w *Word64) Clear(c *Ctx) {
	w.amo(c, func() uint64 { w.v.Store(0); return 0 })
}

// Word128 is a network-atomic 128-bit cell: the double-word the
// ABA-protected pointer (64-bit address + 64-bit stamp) occupies.
//
// No NIC offloads 128-bit atomics, so — on both backends — a remote
// operation always ships as an active message to the home locale
// ("demoting" the operation from RDMA to remote execution, as the
// paper puts it), while a local operation executes the (emulated)
// CMPXCHG16B directly. The per-cell lock emulates the atomicity of the
// hardware instruction Go lacks; it is held for a handful of
// instructions and stands in the same relation to the algorithm as
// LL/SC emulation does on ARM.
type Word128 struct {
	home int
	mu   sync.Mutex
	lo   uint64
	hi   uint64
}

// NewWord128 allocates a 128-bit network-atomic cell homed on the
// given locale.
func NewWord128(c *Ctx, home int, lo, hi uint64) *Word128 {
	if home < 0 || home >= c.NumLocales() {
		panic("pgas: Word128 home out of range")
	}
	return &Word128{home: home, lo: lo, hi: hi}
}

// Home returns the id of the locale the cell resides on.
func (w *Word128) Home() int { return w.home }

// route executes op locally or via active message per locality.
func (w *Word128) route(c *Ctx, op func()) {
	c.sys.dispatchDCAS(c, w.home, op)
}

// Read atomically loads both halves.
func (w *Word128) Read(c *Ctx) (lo, hi uint64) {
	w.route(c, func() {
		w.mu.Lock()
		lo, hi = w.lo, w.hi
		w.mu.Unlock()
	})
	return
}

// Write atomically stores both halves.
func (w *Word128) Write(c *Ctx, lo, hi uint64) {
	w.route(c, func() {
		w.mu.Lock()
		w.lo, w.hi = lo, hi
		w.mu.Unlock()
	})
}

// Exchange atomically swaps in (lo, hi), returning the previous pair.
func (w *Word128) Exchange(c *Ctx, lo, hi uint64) (oldLo, oldHi uint64) {
	w.route(c, func() {
		w.mu.Lock()
		oldLo, oldHi = w.lo, w.hi
		w.lo, w.hi = lo, hi
		w.mu.Unlock()
	})
	return
}

// lo64 routes a 64-bit operation on the cell's low word with Word64
// semantics: NIC atomic under ugni, processor atomic locally under
// none, active message remotely under none. This is how the paper's
// AtomicObject lets "normal" (non-ABA) operations on an ABA-protected
// cell keep their RDMA fast path: they touch only the pointer word.
func (w *Word128) lo64(c *Ctx, op func() uint64) uint64 {
	return c.sys.dispatchAMO64(c, w.home, op)
}

// ReadLo64 atomically loads the low word only.
func (w *Word128) ReadLo64(c *Ctx) uint64 {
	return w.lo64(c, func() uint64 {
		w.mu.Lock()
		v := w.lo
		w.mu.Unlock()
		return v
	})
}

// WriteLo64 atomically stores the low word, leaving the high word (the
// ABA stamp) untouched — the "advanced user" mixed-mode write.
func (w *Word128) WriteLo64(c *Ctx, lo uint64) {
	w.lo64(c, func() uint64 {
		w.mu.Lock()
		w.lo = lo
		w.mu.Unlock()
		return 0
	})
}

// ExchangeLo64 atomically swaps the low word, leaving the high word
// untouched.
func (w *Word128) ExchangeLo64(c *Ctx, lo uint64) uint64 {
	return w.lo64(c, func() uint64 {
		w.mu.Lock()
		old := w.lo
		w.lo = lo
		w.mu.Unlock()
		return old
	})
}

// CASLo64 atomically compares-and-swaps the low word only.
func (w *Word128) CASLo64(c *Ctx, old, new uint64) bool {
	ok := w.lo64(c, func() uint64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.lo != old {
			return 0
		}
		w.lo = new
		return 1
	}) == 1
	c.sys.counters.IncCAS(c.here.id, ok)
	return ok
}

// WriteLoBumpHi atomically stores the low word and increments the high
// word — an ABA-aware unconditional write. Like all full-width
// operations it routes as a DCAS (remote execution when remote).
func (w *Word128) WriteLoBumpHi(c *Ctx, lo uint64) {
	w.route(c, func() {
		w.mu.Lock()
		w.lo = lo
		w.hi++
		w.mu.Unlock()
	})
}

// ExchangeLoBumpHi atomically swaps the low word, increments the high
// word, and returns the previous pair — an ABA-aware exchange.
func (w *Word128) ExchangeLoBumpHi(c *Ctx, lo uint64) (oldLo, oldHi uint64) {
	w.route(c, func() {
		w.mu.Lock()
		oldLo, oldHi = w.lo, w.hi
		w.lo = lo
		w.hi++
		w.mu.Unlock()
	})
	return
}

// DCAS performs a double-word compare-and-swap: iff the cell equals
// (expLo, expHi) it is replaced by (newLo, newHi). This is the
// CMPXCHG16B the paper's ABA protection is built on.
func (w *Word128) DCAS(c *Ctx, expLo, expHi, newLo, newHi uint64) (ok bool) {
	w.route(c, func() {
		w.mu.Lock()
		if w.lo == expLo && w.hi == expHi {
			w.lo, w.hi = newLo, newHi
			ok = true
		}
		w.mu.Unlock()
	})
	c.sys.counters.IncCAS(c.here.id, ok)
	return
}
