package pgas

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
)

// The comm matrix must attribute every remote event to the right
// (source, destination) pair.
func TestMatrixAttribution(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *Ctx) {
		m := s.Matrix()

		c.On(2, func(rc *Ctx) {}) // 0 → 2
		if m.Get(0, 2) != 1 {
			t.Fatalf("on-statement not attributed: %v", m.Snapshot())
		}

		w := NewWord64(c, 3, 0)
		w.Read(c) // 0 → 3 AM atomic
		if m.Get(0, 3) != 1 {
			t.Fatalf("AM atomic not attributed: %v", m.Snapshot())
		}

		a := c.AllocOn(1, 7) // 0 → 1
		before := m.Get(0, 1)
		MustDeref[int](c, a) // 0 → 1 GET
		if m.Get(0, 1) != before+1 {
			t.Fatal("GET not attributed")
		}

		// From locale 2, touching locale 1.
		c.On(2, func(rc *Ctx) {
			rc.Put(a, 9) // 2 → 1
		})
		if m.Get(2, 1) != 1 {
			t.Fatalf("PUT not attributed to 2→1: %v", m.Snapshot())
		}
	})
}

func TestMatrixLocalOpsInvisible(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		w := NewWord64(c, 0, 0)
		a := c.Alloc(1)
		w.Read(c)
		MustDeref[int](c, a)
		c.On(0, func(*Ctx) {})
		if got := s.Matrix().Total(); got != 0 {
			t.Fatalf("local operations appeared in the matrix: %d", got)
		}
	})
}

func TestMatrixUGNILocalNICVisible(t *testing.T) {
	// Under ugni even a local atomic goes through the NIC; the matrix
	// records it as (l, l) traffic — a real wire round trip.
	s := newTestSystem(t, 2, comm.BackendUGNI)
	s.Run(func(c *Ctx) {
		w := NewWord64(c, 0, 0)
		w.Read(c)
		if got := s.Matrix().Get(0, 0); got != 1 {
			t.Fatalf("ugni local NIC atomic not recorded: %d", got)
		}
	})
}

func TestMatrixBulkAttribution(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var addrs []gas.Addr
		for i := 0; i < 10; i++ {
			addrs = append(addrs, c.AllocOn(2, i))
		}
		before := s.Matrix().Get(0, 2)
		c.FreeBulk(2, addrs)
		if got := s.Matrix().Get(0, 2) - before; got != 1 {
			t.Fatalf("bulk transfer attributed %d times", got)
		}
	})
}

// Scatter traffic from the EpochManager is visible in the matrix as
// one shipment per destination — validated at the pgas level here and
// at the epoch level in the epoch package's tests.
func TestMatrixCoforallFanOut(t *testing.T) {
	s := newTestSystem(t, 8, comm.BackendNone)
	s.Run(func(c *Ctx) {
		c.CoforallLocales(func(*Ctx) {})
		m := s.Matrix()
		for l := 1; l < 8; l++ {
			if m.Get(0, l) != 1 {
				t.Fatalf("fan-out to %d = %d", l, m.Get(0, l))
			}
		}
		if m.Get(0, 0) != 0 {
			t.Fatal("self traffic recorded for local spawn")
		}
	})
}
