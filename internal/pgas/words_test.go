package pgas

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
)

func TestWord64Semantics(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 3, backend)
			s.Run(func(c *Ctx) {
				w := NewWord64(c, 2, 5)
				if got := w.Read(c); got != 5 {
					t.Fatalf("Read = %d", got)
				}
				w.Write(c, 9)
				if got := w.Read(c); got != 9 {
					t.Fatalf("Read after Write = %d", got)
				}
				if old := w.Exchange(c, 11); old != 9 {
					t.Fatalf("Exchange returned %d", old)
				}
				if !w.CompareAndSwap(c, 11, 12) {
					t.Fatal("CAS with matching value failed")
				}
				if w.CompareAndSwap(c, 11, 13) {
					t.Fatal("CAS with stale value succeeded")
				}
				if got := w.Add(c, 8); got != 20 {
					t.Fatalf("Add = %d", got)
				}
			})
		})
	}
}

func TestWord64TestAndSet(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		f := NewWord64(c, 1, 0)
		if f.TestAndSet(c) {
			t.Fatal("first TAS must win")
		}
		if !f.TestAndSet(c) {
			t.Fatal("second TAS must lose")
		}
		f.Clear(c)
		if f.TestAndSet(c) {
			t.Fatal("TAS after Clear must win")
		}
	})
}

func TestWord64RoutingCounters(t *testing.T) {
	// none backend: local op → localAMO, remote op → amAMO.
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		local := NewWord64(c, 0, 0)
		remote := NewWord64(c, 1, 0)
		before := s.Counters().Snapshot()
		local.Read(c)
		d := s.Counters().Snapshot().Sub(before)
		if d.LocalAMOs != 1 || d.AMAMOs != 0 || d.NICAMOs != 0 {
			t.Fatalf("local read routed wrong: %v", d)
		}
		before = s.Counters().Snapshot()
		remote.Read(c)
		d = s.Counters().Snapshot().Sub(before)
		if d.AMAMOs != 1 || d.LocalAMOs != 0 || d.NICAMOs != 0 {
			t.Fatalf("remote read routed wrong: %v", d)
		}
	})

	// ugni backend: every op — even locale-local — is a NIC atomic.
	s2 := newTestSystem(t, 2, comm.BackendUGNI)
	s2.Run(func(c *Ctx) {
		local := NewWord64(c, 0, 0)
		remote := NewWord64(c, 1, 0)
		before := s2.Counters().Snapshot()
		local.Write(c, 1)
		remote.Write(c, 1)
		d := s2.Counters().Snapshot().Sub(before)
		if d.NICAMOs != 2 || d.AMAMOs != 0 || d.LocalAMOs != 0 {
			t.Fatalf("ugni routing wrong: %v", d)
		}
	})
}

func TestWord64ConcurrentAdds(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 4, backend)
			w := NewWord64(s.Ctx(0), 3, 0)
			const tasksPerLocale = 4
			const addsPerTask = 250
			var wg sync.WaitGroup
			for l := 0; l < 4; l++ {
				for k := 0; k < tasksPerLocale; k++ {
					wg.Add(1)
					go func(l int) {
						defer wg.Done()
						c := s.Ctx(l)
						for i := 0; i < addsPerTask; i++ {
							w.Add(c, 1)
						}
					}(l)
				}
			}
			wg.Wait()
			if got := w.Read(s.Ctx(0)); got != 4*tasksPerLocale*addsPerTask {
				t.Fatalf("lost updates: %d", got)
			}
		})
	}
}

func TestWord128Semantics(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		w := NewWord128(c, 1, 10, 20)
		lo, hi := w.Read(c)
		if lo != 10 || hi != 20 {
			t.Fatalf("Read = (%d,%d)", lo, hi)
		}
		w.Write(c, 1, 2)
		if lo, hi = w.Read(c); lo != 1 || hi != 2 {
			t.Fatalf("after Write = (%d,%d)", lo, hi)
		}
		oldLo, oldHi := w.Exchange(c, 3, 4)
		if oldLo != 1 || oldHi != 2 {
			t.Fatalf("Exchange returned (%d,%d)", oldLo, oldHi)
		}
		if !w.DCAS(c, 3, 4, 5, 6) {
			t.Fatal("matching DCAS failed")
		}
		if w.DCAS(c, 3, 4, 7, 8) {
			t.Fatal("stale DCAS succeeded")
		}
		if lo, hi = w.Read(c); lo != 5 || hi != 6 {
			t.Fatalf("after DCAS = (%d,%d)", lo, hi)
		}
	})
}

func TestWord128HalfWordMatters(t *testing.T) {
	// DCAS must compare BOTH halves: same lo, different hi → fail.
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *Ctx) {
		w := NewWord128(c, 0, 42, 7)
		if w.DCAS(c, 42, 8, 1, 1) {
			t.Fatal("DCAS ignored the high word")
		}
		if w.DCAS(c, 41, 7, 1, 1) {
			t.Fatal("DCAS ignored the low word")
		}
	})
}

func TestWord128LoOps(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		w := NewWord128(c, 1, 100, 55)
		if got := w.ReadLo64(c); got != 100 {
			t.Fatalf("ReadLo64 = %d", got)
		}
		w.WriteLo64(c, 101)
		if lo, hi := w.Read(c); lo != 101 || hi != 55 {
			t.Fatalf("WriteLo64 disturbed the stamp: (%d,%d)", lo, hi)
		}
		if old := w.ExchangeLo64(c, 102); old != 101 {
			t.Fatalf("ExchangeLo64 = %d", old)
		}
		if !w.CASLo64(c, 102, 103) || w.CASLo64(c, 102, 104) {
			t.Fatal("CASLo64 semantics wrong")
		}
		if _, hi := w.Read(c); hi != 55 {
			t.Fatal("lo-ops must not bump the stamp")
		}
		w.WriteLoBumpHi(c, 200)
		if lo, hi := w.Read(c); lo != 200 || hi != 56 {
			t.Fatalf("WriteLoBumpHi = (%d,%d)", lo, hi)
		}
		oldLo, oldHi := w.ExchangeLoBumpHi(c, 300)
		if oldLo != 200 || oldHi != 56 {
			t.Fatalf("ExchangeLoBumpHi returned (%d,%d)", oldLo, oldHi)
		}
		if lo, hi := w.Read(c); lo != 300 || hi != 57 {
			t.Fatalf("after ExchangeLoBumpHi = (%d,%d)", lo, hi)
		}
	})
}

func TestWord128RemoteAlwaysAM(t *testing.T) {
	// Full-width ops are never NIC atomics, on either backend.
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 2, backend)
			s.Run(func(c *Ctx) {
				w := NewWord128(c, 1, 0, 0)
				before := s.Counters().Snapshot()
				w.DCAS(c, 0, 0, 1, 1)
				d := s.Counters().Snapshot().Sub(before)
				if d.DCASRemote != 1 || d.NICAMOs != 0 {
					t.Fatalf("remote DCAS routing: %v", d)
				}
				local := NewWord128(c, 0, 0, 0)
				before = s.Counters().Snapshot()
				local.DCAS(c, 0, 0, 1, 1)
				d = s.Counters().Snapshot().Sub(before)
				if d.DCASLocal != 1 || d.DCASRemote != 0 {
					t.Fatalf("local DCAS routing: %v", d)
				}
			})
		})
	}
}

// Hammer DCAS atomicity: concurrent increments via DCAS must not lose
// updates, and the two halves must always move together.
func TestWord128DCASAtomicityHammer(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	w := NewWord128(s.Ctx(0), 2, 0, 0)
	const tasks = 8
	const per = 300
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 4)
			for i := 0; i < per; i++ {
				for {
					lo, hi := w.Read(c)
					if lo != hi {
						t.Errorf("halves diverged: (%d,%d)", lo, hi)
						return
					}
					if w.DCAS(c, lo, hi, lo+1, hi+1) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	lo, hi := w.Read(s.Ctx(0))
	if lo != tasks*per || hi != tasks*per {
		t.Fatalf("final = (%d,%d), want (%d,%d)", lo, hi, tasks*per, tasks*per)
	}
}
