package pgas

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
)

// newTestSystem boots a zero-latency system that is shut down with the
// test. Counters still count, so tests can assert communication volume.
func newTestSystem(t testing.TB, locales int, backend comm.Backend) *System {
	t.Helper()
	s := NewSystem(Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

func TestSystemBasics(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	if s.NumLocales() != 4 {
		t.Fatalf("NumLocales = %d", s.NumLocales())
	}
	s.Run(func(c *Ctx) {
		if c.Here() != 0 {
			t.Errorf("main task runs on locale %d, want 0", c.Here())
		}
		if c.NumLocales() != 4 {
			t.Errorf("ctx locales = %d", c.NumLocales())
		}
	})
}

func TestSystemInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 locales")
		}
	}()
	NewSystem(Config{Locales: 0})
}

func TestOnSwitchesLocale(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var visited int
		c.On(2, func(rc *Ctx) {
			visited = rc.Here()
			if rc.NumLocales() != 3 {
				t.Errorf("remote ctx locales = %d", rc.NumLocales())
			}
		})
		if visited != 2 {
			t.Errorf("on-statement ran on locale %d, want 2", visited)
		}
	})
}

func TestOnHereIsFree(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		before := s.Counters().Snapshot()
		c.On(0, func(rc *Ctx) {})
		d := s.Counters().Snapshot().Sub(before)
		if d.OnStmts != 0 {
			t.Errorf("on-here counted %d on-statements", d.OnStmts)
		}
		c.On(1, func(rc *Ctx) {})
		d = s.Counters().Snapshot().Sub(before)
		if d.OnStmts != 1 {
			t.Errorf("remote on counted %d on-statements, want 1", d.OnStmts)
		}
	})
}

func TestCoforallLocalesVisitsAll(t *testing.T) {
	s := newTestSystem(t, 8, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var mask atomic.Uint64
		c.CoforallLocales(func(lc *Ctx) {
			mask.Or(1 << lc.Here())
		})
		if mask.Load() != (1<<8)-1 {
			t.Errorf("visited mask = %b", mask.Load())
		}
	})
}

func TestCoforallSpawnsNTasks(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var n atomic.Int64
		var tids atomic.Uint64
		c.Coforall(16, func(tc *Ctx, tid int) {
			n.Add(1)
			tids.Or(1 << tid)
			if tc.Here() != 0 {
				t.Errorf("task on locale %d", tc.Here())
			}
		})
		if n.Load() != 16 || tids.Load() != (1<<16)-1 {
			t.Errorf("n=%d tids=%b", n.Load(), tids.Load())
		}
	})
}

func TestForallCyclicDistribution(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *Ctx) {
		const n = 103
		seen := make([]atomic.Int32, n)
		ForallCyclic(c, n, 3,
			func(tc *Ctx) int { return tc.Here() },
			func(tc *Ctx, home int, i int) {
				seen[i].Add(1)
				// Cyclic distribution: iteration i runs on locale i % L.
				if want := i % 4; tc.Here() != want {
					t.Errorf("iter %d on locale %d, want %d", i, tc.Here(), want)
				}
				if home != tc.Here() {
					t.Errorf("task-private state crossed locales")
				}
			},
			nil)
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Errorf("iteration %d ran %d times", i, got)
			}
		}
	})
}

func TestForallCyclicTaskPrivateLifecycle(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var created, destroyed atomic.Int64
		ForallCyclic(c, 40, 2,
			func(tc *Ctx) *int { created.Add(1); v := 0; return &v },
			func(tc *Ctx, p *int, i int) { *p++ },
			func(tc *Ctx, p *int) { destroyed.Add(1) },
		)
		if created.Load() != destroyed.Load() {
			t.Errorf("created %d != destroyed %d", created.Load(), destroyed.Load())
		}
		if created.Load() == 0 {
			t.Error("no task-private values created")
		}
	})
}

func TestForallCyclicFewerItersThanLocales(t *testing.T) {
	s := newTestSystem(t, 8, comm.BackendNone)
	s.Run(func(c *Ctx) {
		var n atomic.Int64
		ForallCyclic(c, 3, 4, nil, func(tc *Ctx, _ struct{}, i int) {
			n.Add(1)
		}, nil)
		if n.Load() != 3 {
			t.Errorf("ran %d iterations, want 3", n.Load())
		}
	})
}

func TestForallLocal(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *Ctx) {
		c.On(1, func(rc *Ctx) {
			sum := atomic.Int64{}
			ForallLocal(rc, 100, 4, nil, func(tc *Ctx, _ struct{}, i int) {
				if tc.Here() != 1 {
					t.Errorf("local forall escaped to locale %d", tc.Here())
				}
				sum.Add(int64(i))
			}, nil)
			if sum.Load() != 99*100/2 {
				t.Errorf("sum = %d", sum.Load())
			}
		})
	})
}

func TestAndReduce(t *testing.T) {
	r := NewAndReduce()
	if !r.Value() {
		t.Fatal("fresh reduction must be true")
	}
	r.And(true)
	r.And(true)
	if !r.Value() {
		t.Fatal("all-true reduction became false")
	}
	r.And(false)
	r.And(true)
	if r.Value() {
		t.Fatal("reduction with a false contribution must be false")
	}
}

func TestRandDeterminism(t *testing.T) {
	s1 := NewSystem(Config{Locales: 2, Seed: 7})
	defer s1.Shutdown()
	s2 := NewSystem(Config{Locales: 2, Seed: 7})
	defer s2.Shutdown()
	c1, c2 := s1.Ctx(1), s2.Ctx(1)
	for i := 0; i < 100; i++ {
		if c1.RandUint64() != c2.RandUint64() {
			t.Fatal("same (seed, locale, task) must give identical streams")
		}
	}
	// Different seed → different stream (overwhelmingly likely).
	s3 := NewSystem(Config{Locales: 2, Seed: 8})
	defer s3.Shutdown()
	c3 := s3.Ctx(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c3.RandUint64() == s1.Ctx(1).RandUint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds collide %d/100 times", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	c := s.Ctx(0)
	for i := 0; i < 1000; i++ {
		v := c.RandIntn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("RandIntn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RandIntn(0) must panic")
		}
	}()
	c.RandIntn(0)
}

func TestShutdownIdempotent(t *testing.T) {
	s := NewSystem(Config{Locales: 2})
	s.Shutdown()
	s.Shutdown() // must not panic
}
