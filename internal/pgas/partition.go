package pgas

import (
	"fmt"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

// Partition lifecycle: the transient half of the fault plan.
//
// A crash is fail-stop and permanent — its refused ops drain to the
// OpsLost ledger and the dead locale's shards fail over. A partition
// is transient: both endpoints stay alive, the pair may heal, so its
// refused ops park in per-locale comm.Parking ledgers and redeliver
// through the normal bulk framing when the link comes back (Heal, a
// background backoff probe, or the final DrainParking pass). The books
// are exact: once the ledger drains,
// OpsParked == OpsRedelivered + OpsExpired, and OpsLost stays reserved
// for crashes.

// Sever cuts the unordered pair (a, b): from now on execution-plane
// traffic between them is refused — parked into the retry plane, or
// counted OpsLost when Config.Park.Disable reverts partitions to
// fail-stop accounting. Both locales stay alive and keep talking to
// everyone else. Severing an already-severed pair is a no-op; a sever
// composes with crashes and latency plans already installed. Records
// one always-on KindPartition trace instant per pair actually severed.
func (s *System) Sever(a, b int) error {
	if a < 0 || a >= len(s.locales) || b < 0 || b >= len(s.locales) {
		return fmt.Errorf("pgas: sever pair [%d %d] out of range [0, %d)", a, b, len(s.locales))
	}
	if a == b {
		return fmt.Errorf("pgas: cannot sever locale %d from itself", a)
	}
	s.faultMu.Lock()
	p := s.Perturbation()
	if p.Partitioned(a, b) {
		s.faultMu.Unlock()
		return nil
	}
	p = p.WithPartition(a, b)
	s.perturb.Store(&p)
	s.faultMu.Unlock()
	if tr := s.tracer; tr != nil {
		tr.Instant(0, trace.KindPartition, 0, a, b, 0, 0)
	}
	return nil
}

// Heal repairs the unordered pair (a, b) and synchronously pumps the
// retry ledgers, so every op parked behind the healed link has been
// redelivered (and its books settled) by the time Heal returns — which
// is what makes heal-driven scenarios deterministic. Healing a pair
// that is not currently severed is an error (the /api/fault 422 path).
// Records one always-on KindHeal trace instant.
func (s *System) Heal(a, b int) error {
	s.faultMu.Lock()
	p := s.Perturbation()
	q, was := p.WithoutPartition(a, b)
	if !was {
		s.faultMu.Unlock()
		return fmt.Errorf("pgas: heal pair [%d %d]: not severed", a, b)
	}
	s.perturb.Store(&q)
	s.faultMu.Unlock()
	if tr := s.tracer; tr != nil {
		tr.Instant(0, trace.KindHeal, 0, a, b, 0, 0)
	}
	s.pumpParking(true)
	return nil
}

// DrainParking settles the retry plane: one final pass redelivers
// everything whose destination is reachable and expires the rest,
// deadline or not, then waits for the redeliveries' follow-on work to
// quiesce. After it returns the ledgers are empty and
// OpsParked == OpsRedelivered + OpsExpired exactly. The workload
// engine calls it before reading final counters; Shutdown calls it
// unconditionally.
func (s *System) DrainParking() {
	now := s.nowNS()
	for src, pk := range s.parking {
		src := src
		pk.DrainExpire(now, func(dst int) bool { return s.Reachable(src, dst) })
	}
	s.Quiesce()
}

// ParkedOps returns the number of ops currently waiting in the retry
// ledgers (diagnostic).
func (s *System) ParkedOps() int {
	n := 0
	for _, pk := range s.parking {
		n += pk.Parked()
	}
	return n
}

// nowNS is the monotonic clock the retry ledgers are stamped against.
func (s *System) nowNS() int64 {
	return time.Since(s.startTime).Nanoseconds()
}

// parkOp files one partition-refused aggregated op from srcLoc toward
// dst into the retry plane, starting the background pump on first use.
// Returns false when the plane is disabled — the caller falls back to
// the lost-ops ledger.
func (s *System) parkOp(srcLoc, dst int, op comm.Op) bool {
	if !s.parking[srcLoc].Park(dst, op, s.nowNS()) {
		return false
	}
	s.ensureParkPump()
	return true
}

// ensureParkPump starts the background retry pump on the first parked
// op: a single goroutine that periodically probes every ledger's
// backoff clocks. It stops at Shutdown; systems that never see a
// partition never pay for it.
func (s *System) ensureParkPump() {
	s.parkPump.Do(func() {
		s.parkWG.Add(1)
		go func() {
			defer s.parkWG.Done()
			t := time.NewTicker(500 * time.Microsecond)
			defer t.Stop()
			for {
				select {
				case <-s.parkStop:
					return
				case <-t.C:
					s.pumpParking(false)
				}
			}
		}()
	})
}

// pumpParking runs one retry pass over every locale's ledger; force
// ignores the backoff clocks (the heal path, so a heal's redelivery is
// immediate and synchronous).
func (s *System) pumpParking(force bool) {
	now := s.nowNS()
	for src, pk := range s.parking {
		src := src
		pk.Pump(now, force, func(dst int) bool { return s.Reachable(src, dst) })
	}
}

// redeliverParked lands one batch of previously parked ops on dst: the
// redelivery flight is charged as one bulk transfer (the ops' original
// enqueue/flush accounting already happened when they first shipped),
// and the batch executes on a destination-pinned pooled context
// exactly like an aggregated delivery. The context is marked async so
// an op that flushes inside its exec never tries to quiesce the system
// from inside the pump.
func (s *System) redeliverParked(src, dst int, batch []comm.Op, bytes int64) {
	s.chargeBulk(src, dst, bytes)
	tc := s.borrowCtx(s.locales[dst])
	tc.isAsync = true
	for _, op := range batch {
		switch exec := op.Exec.(type) {
		case freeOp:
			exec(tc)
		case func(*Ctx):
			exec(tc)
		case CombinableCall:
			exec.Exec(tc)
		default:
			panic(fmt.Sprintf("pgas: unknown parked op payload %T", op.Exec))
		}
	}
	s.releaseCtx(tc)
}

// parkSyncOn parks a synchronous on-statement in place: the calling
// task blocks with exponential backoff until the pair is reachable
// again (the caller then proceeds with normal delivery, booked
// redelivered) or the parking deadline expires (booked expired; the
// call is dropped). Synchronous calls cannot park in the ledger — the
// caller is waiting and the closure may capture its stack — so the
// retry happens at the call site, with the same books and the same
// policy knobs as the ledger. Returns false without touching the books
// when the retry plane is disabled.
func (s *System) parkSyncOn(src *Ctx, target int) bool {
	cfg := s.cfg.Park
	if cfg.Disable {
		return false
	}
	srcID := src.here.id
	s.counters.IncOpsParked(srcID, 1)
	deadline := s.nowNS() + cfg.DeadlineNS
	backoff := cfg.InitialBackoffNS
	for {
		if s.Reachable(srcID, target) {
			s.counters.IncOpsRedelivered(srcID, 1)
			return true
		}
		now := s.nowNS()
		if now >= deadline {
			s.counters.IncOpsExpired(srcID, 1)
			return false
		}
		wait := backoff
		if rem := deadline - now; wait > rem {
			wait = rem
		}
		time.Sleep(time.Duration(wait))
		backoff *= 2
		if backoff > cfg.MaxBackoffNS {
			backoff = cfg.MaxBackoffNS
		}
	}
}
