package pgas

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/trace"
)

// The tracing plane's dispatch-path contract: a system without a
// recorder pays one nil check, a disabled recorder one atomic flag
// load, and an enabled recorder writes fixed-size events into a
// preallocated ring — none of the three may allocate on a remote
// on-statement. The ns/op side of the same contract is benchmark-gated
// (BenchmarkDispatchHotPath vs the BENCH_5 trajectory).
func TestDispatchZeroAllocAcrossTracerStates(t *testing.T) {
	disabled := trace.NewRecorder(2, trace.Config{BufferSize: 256})
	disabled.SetEnabled(false)
	cases := []struct {
		name string
		rec  *trace.Recorder
	}{
		{"nil-tracer", nil},
		{"disabled-tracer", disabled},
		{"enabled-tracer", trace.NewRecorder(2, trace.Config{BufferSize: 256})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone, Tracer: tc.rec})
			defer s.Shutdown()
			c := s.Ctx(0)
			fn := func(rc *Ctx) {}
			if avg := testing.AllocsPerRun(200, func() { c.On(1, fn) }); avg != 0 {
				t.Fatalf("remote dispatch allocates %.2f/op with %s", avg, tc.name)
			}
		})
	}
}
