package pgas

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
)

func newAggTestSystem(t *testing.T, locales int) *System {
	t.Helper()
	s := NewSystem(Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

// The acceptance-criteria test: 1000 remote frees to one destination
// through the aggregator cost O(flushes) bulk transfers — four at the
// default capacity of 256 — where the direct path costs 1000 AM round
// trips. No on-statements, no per-op AMs.
func TestThousandOpsFewFlushes(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		addrs := make([]gas.Addr, 1000)
		for i := range addrs {
			addrs[i] = c.AllocOn(1, &struct{ v int }{i})
		}
		before := s.Counters().Snapshot()
		buf := c.Aggregator(1)
		for _, a := range addrs {
			buf.Free(a)
		}
		c.Flush()
		d := s.Counters().Snapshot().Sub(before)

		if d.AggOps != 1000 {
			t.Fatalf("AggOps = %d, want 1000", d.AggOps)
		}
		if d.AggFlushes != 4 || d.BulkXfers != 4 {
			t.Fatalf("1000 ops shipped in %d flushes / %d bulk transfers, want 4 (%v)",
				d.AggFlushes, d.BulkXfers, d)
		}
		if d.OnStmts != 0 || d.AMAMOs != 0 || d.Puts != 0 || d.Gets != 0 {
			t.Fatalf("aggregated path leaked per-op round trips: %v", d)
		}
		if got := buf.Freed(); got != 1000 {
			t.Fatalf("Freed() = %d, want 1000", got)
		}
		for _, a := range addrs {
			if _, ok := c.Load(a); ok {
				t.Fatalf("object %v survived aggregated free", a)
			}
		}
	})
}

// The same workload routed directly pays one round trip per op —
// the contrast the ablation sweep measures.
func TestDirectPathPaysPerOp(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		addrs := make([]gas.Addr, 100)
		for i := range addrs {
			addrs[i] = c.AllocOn(1, &struct{ v int }{i})
		}
		before := s.Counters().Snapshot()
		for _, a := range addrs {
			c.Free(a)
		}
		d := s.Counters().Snapshot().Sub(before)
		if d.OnStmts != 100 {
			t.Fatalf("direct frees cost %d on-statements, want 100", d.OnStmts)
		}
	})
}

// Drain-then-assert: buffered operations are never lost. Many tasks
// buffer atomic adds to words on every locale, flush in their
// epilogues, and the main task verifies every single increment landed.
// Run under -race this also proves the flush/quiesce path is sound.
func TestFlushLosesNothing(t *testing.T) {
	const locales, tasks, opsPerTask = 4, 8, 500
	s := newAggTestSystem(t, locales)
	s.Run(func(c *Ctx) {
		words := make([]*Word64, locales)
		for l := range words {
			words[l] = NewWord64(c, l, 0)
		}
		c.CoforallLocales(func(lc *Ctx) {
			lc.Coforall(tasks, func(tc *Ctx, tid int) {
				for i := 0; i < opsPerTask; i++ {
					dst := (tc.Here() + i) % locales
					tc.Aggregator(dst).Add(words[dst], 1)
				}
				tc.Flush() // the coforall epilogue drain
			})
		})
		var total uint64
		for _, w := range words {
			total += w.Read(c)
		}
		if want := uint64(locales * tasks * opsPerTask); total != want {
			t.Fatalf("drained total = %d, want %d (ops lost)", total, want)
		}
	})
}

// Aggregated operations destined for the task's own locale execute
// inline with zero communication, like an elided `on here`.
func TestLocalOpsExecuteInline(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		a := c.Alloc(&struct{ v int }{1})
		w := NewWord64(c, 0, 0)
		before := s.Counters().Snapshot()
		buf := c.Aggregator(0)
		buf.Add(w, 5)
		buf.Free(a)
		d := s.Counters().Snapshot().Sub(before)
		if w.v.Load() != 5 {
			t.Fatal("local aggregated Add did not execute inline")
		}
		if buf.Freed() != 1 {
			t.Fatal("local aggregated Free did not execute inline")
		}
		if buf.Pending() != 0 || c.PendingOps() != 0 {
			t.Fatalf("local ops buffered: pending=%d", buf.Pending())
		}
		if d.Remote() != 0 || d.AggFlushes != 0 {
			t.Fatalf("local aggregation communicated: %v", d)
		}
	})
}

// Aggregated Put overwrites remote objects at flush.
func TestAggregatedPut(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		type obj struct{ v int }
		a := c.AllocOn(1, &obj{1})
		buf := c.Aggregator(1)
		buf.Put(a, &obj{2})
		if got := MustDeref[*obj](c, a); got.v != 1 {
			t.Fatalf("Put applied before flush: v=%d", got.v)
		}
		buf.Flush()
		if got := MustDeref[*obj](c, a); got.v != 2 {
			t.Fatalf("after flush v=%d, want 2", got.v)
		}
	})
}

// Buffered ops execute on their destination in enqueue order.
func TestAggregatedCallOrderAndLocale(t *testing.T) {
	s := newAggTestSystem(t, 3)
	s.Run(func(c *Ctx) {
		var order []int
		buf := c.Aggregator(2)
		for i := 0; i < 10; i++ {
			i := i
			buf.Call(func(tc *Ctx) {
				if tc.Here() != 2 {
					t.Errorf("op ran on locale %d, want 2", tc.Here())
				}
				order = append(order, i)
			})
		}
		c.Flush()
		for i, got := range order {
			if got != i {
				t.Fatalf("order = %v", order)
			}
		}
		if len(order) != 10 {
			t.Fatalf("executed %d ops, want 10", len(order))
		}
	})
}

// Foreign addresses are rejected at enqueue, not at flush.
func TestAggregatedFreeForeignAddrPanics(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		a := c.Alloc(&struct{}{})
		defer func() {
			if recover() == nil {
				t.Fatal("aggregated Free of a foreign addr must panic")
			}
		}()
		c.Aggregator(1).Free(a)
	})
}

// AsyncOn is fire-and-forget; Flush provides the join. The async task
// runs with a Ctx pinned to its target.
func TestAsyncOnQuiescence(t *testing.T) {
	const n = 200
	s := newAggTestSystem(t, 4)
	s.Run(func(c *Ctx) {
		var ran atomic.Int64
		var wrongLocale atomic.Int64
		before := s.Counters().Snapshot()
		for i := 0; i < n; i++ {
			target := 1 + i%3
			c.AsyncOn(target, func(tc *Ctx) {
				if tc.Here() != target {
					wrongLocale.Add(1)
				}
				ran.Add(1)
			})
		}
		c.Flush()
		if got := ran.Load(); got != n {
			t.Fatalf("after Flush %d/%d async ops ran", got, n)
		}
		if wrongLocale.Load() != 0 {
			t.Fatal("async op observed the wrong locale")
		}
		if s.AsyncPending() != 0 {
			t.Fatalf("AsyncPending = %d after Flush", s.AsyncPending())
		}
		d := s.Counters().Snapshot().Sub(before)
		if d.OnStmts != n {
			t.Fatalf("async on-statements counted %d, want %d", d.OnStmts, n)
		}
	})
}

// Quiesce covers transitively spawned async work: an async task that
// itself calls AsyncOn is fully drained before Flush returns.
func TestAsyncOnNested(t *testing.T) {
	s := newAggTestSystem(t, 2)
	s.Run(func(c *Ctx) {
		var leaf atomic.Int64
		for i := 0; i < 50; i++ {
			c.AsyncOn(1, func(tc *Ctx) {
				tc.AsyncOn(0, func(*Ctx) { leaf.Add(1) })
			})
		}
		c.Flush()
		if got := leaf.Load(); got != 50 {
			t.Fatalf("nested async ops ran %d/50", got)
		}
	})
}

// Flush called from inside an AsyncOn task must not self-deadlock:
// it drains the task's buffers synchronously (skipping the global
// quiescence wait, which includes the caller itself) so async tasks
// can use the buffered APIs — including Map.InsertBulk-style helpers
// that flush internally.
func TestFlushInsideAsyncTask(t *testing.T) {
	s := newAggTestSystem(t, 3)
	s.Run(func(c *Ctx) {
		w := NewWord64(c, 2, 0)
		const tasks, ops = 4, 100
		for i := 0; i < tasks; i++ {
			c.AsyncOn(1, func(tc *Ctx) {
				buf := tc.Aggregator(2)
				for j := 0; j < ops; j++ {
					buf.Add(w, 1)
				}
				tc.Flush() // would spin forever if it waited on itself
			})
		}
		c.Flush() // the launcher's join
		if got := w.Read(c); got != tasks*ops {
			t.Fatalf("w = %d, want %d", got, tasks*ops)
		}
	})
}

// Aggregated adds stay coherent with direct Word64 operations under
// the ugni backend: the flushed add executes as a NIC atomic on the
// owner, not an incoherent CPU atomic.
func TestAggregatedAddCoherentUnderUGNI(t *testing.T) {
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendUGNI})
	defer s.Shutdown()
	s.Run(func(c *Ctx) {
		w := NewWord64(c, 1, 0)
		buf := c.Aggregator(1)
		for i := 0; i < 10; i++ {
			buf.Add(w, 1)
		}
		before := s.Counters().Snapshot()
		c.Flush()
		d := s.Counters().Snapshot().Sub(before)
		if d.NICAMOs != 10 {
			t.Fatalf("flushed adds executed %d NIC atomics, want 10 (%v)", d.NICAMOs, d)
		}
		w.Add(c, 1) // direct op on the same word stays coherent
		if got := w.Read(c); got != 11 {
			t.Fatalf("w = %d, want 11", got)
		}
	})
}

// A capacity-1 configuration degenerates to per-op flushing — the
// knob the ablation uses to interpolate between regimes.
func TestAggCapacityConfig(t *testing.T) {
	s := NewSystem(Config{Locales: 2, Backend: comm.BackendNone,
		Agg: comm.AggConfig{Capacity: 1}})
	defer s.Shutdown()
	s.Run(func(c *Ctx) {
		w := NewWord64(c, 1, 0)
		before := s.Counters().Snapshot()
		buf := c.Aggregator(1)
		for i := 0; i < 10; i++ {
			buf.Add(w, 1)
		}
		d := s.Counters().Snapshot().Sub(before)
		if d.AggFlushes != 10 {
			t.Fatalf("capacity-1 flushed %d times, want 10", d.AggFlushes)
		}
	})
}
