package bench

import (
	"fmt"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Figure 3: "AtomicObject vs atomic int". Strong scaling of a mixed
// atomic workload — 25% read, 25% write, 25% compare-and-swap, 25%
// exchange — against an array of cells, in two panels:
//
//   - Shared memory: one locale, 1..32 tasks, comparing Chapel's
//     atomic int (Word64) with AtomicObject with and without ABA.
//   - Distributed memory: 1..64 locales, cells distributed
//     cyclically and targets drawn uniformly (so ≈(L−1)/L of the
//     operations are remote), comparing atomic int and AtomicObject
//     under both network-atomic backends plus AtomicObject (ABA),
//     whose full-width operations never use the NIC.

const fig3Cells = 256

// atomicVariant abstracts "one mixed op against cell i" for each
// compared implementation.
type atomicVariant interface {
	name() string
	setup(c *pgas.Ctx, locales int)
	op(c *pgas.Ctx, cell int, kind int)
}

// intVariant is Chapel's `atomic int`: an array of network words.
type intVariant struct {
	label string
	cells []*pgas.Word64
}

func (v *intVariant) name() string { return v.label }

func (v *intVariant) setup(c *pgas.Ctx, locales int) {
	v.cells = make([]*pgas.Word64, fig3Cells)
	for i := range v.cells {
		v.cells[i] = pgas.NewWord64(c, i%locales, 0)
	}
}

func (v *intVariant) op(c *pgas.Ctx, cell int, kind int) {
	w := v.cells[cell]
	switch kind {
	case 0:
		w.Read(c)
	case 1:
		w.Write(c, uint64(cell))
	case 2:
		w.CompareAndSwap(c, uint64(cell), uint64(cell+1))
	default:
		w.Exchange(c, uint64(cell))
	}
}

// objVariant is AtomicObject, optionally with ABA-stamped operations.
type objVariant struct {
	label string
	aba   bool
	cells []*atomics.AtomicObject
	objs  []gas.Addr // two preallocated targets per cell's home locale
}

func (v *objVariant) name() string { return v.label }

func (v *objVariant) setup(c *pgas.Ctx, locales int) {
	v.cells = make([]*atomics.AtomicObject, fig3Cells)
	v.objs = make([]gas.Addr, 2*fig3Cells)
	type blob struct{ x int }
	for i := range v.cells {
		home := i % locales
		v.cells[i] = atomics.New(c, home, atomics.Options{ABA: v.aba})
		v.objs[2*i] = c.AllocOn(home, &blob{x: i})
		v.objs[2*i+1] = c.AllocOn(home, &blob{x: -i})
		v.cells[i].Write(c, v.objs[2*i])
	}
}

func (v *objVariant) op(c *pgas.Ctx, cell int, kind int) {
	w := v.cells[cell]
	a, b := v.objs[2*cell], v.objs[2*cell+1]
	if v.aba {
		switch kind {
		case 0:
			w.ReadABA(c)
		case 1:
			w.WriteABA(c, a)
		case 2:
			cur := w.ReadABA(c)
			w.CompareAndSwapABA(c, cur, b)
		default:
			w.ExchangeABA(c, a)
		}
		return
	}
	switch kind {
	case 0:
		w.Read(c)
	case 1:
		w.Write(c, a)
	case 2:
		cur := w.Read(c)
		w.CompareAndSwap(c, cur, b)
	default:
		w.Exchange(c, a)
	}
}

// runAtomicMix executes totalOps mixed operations split across the
// system's locales and tasks, returning the timing point.
func (cfg Config) runAtomicMix(locales, tasksPerLocale, totalOps int, backend comm.Backend, v atomicVariant) Point {
	sys := cfg.newSystem(locales, backend)
	defer sys.Shutdown()
	var secs float64
	var snap comm.Snapshot
	sys.Run(func(c *pgas.Ctx) {
		v.setup(c, locales)
		secs, snap = timed(sys, func() {
			pgas.ForallCyclic(c, totalOps, tasksPerLocale, nil,
				func(tc *pgas.Ctx, _ struct{}, i int) {
					v.op(tc, tc.RandIntn(fig3Cells), tc.RandIntn(4))
				}, nil)
		})
	})
	x := locales
	if locales == 1 {
		x = tasksPerLocale
	}
	return Point{X: x, Seconds: secs, Comm: snap}
}

// Figure3 regenerates both panels of Figure 3.
func Figure3(cfg Config) Figure {
	sharedOps := cfg.ops(1 << 17)
	distOps := cfg.ops(1 << 14)

	shared := Panel{Title: "Shared Memory", XLabel: "Tasks"}
	sharedVariants := []atomicVariant{
		&intVariant{label: "atomic int"},
		&objVariant{label: "AtomicObject (ABA)", aba: true},
		&objVariant{label: "AtomicObject"},
	}
	for _, v := range sharedVariants {
		s := Series{Label: v.name()}
		for _, tasks := range cfg.taskSweep() {
			p := cfg.best(func() Point { return cfg.runAtomicMix(1, tasks, sharedOps, comm.BackendNone, v) })
			s.Points = append(s.Points, p)
			cfg.progressf("fig3 shared %-22s tasks=%-3d %8.4fs\n", v.name(), tasks, p.Seconds)
		}
		shared.Series = append(shared.Series, s)
	}

	dist := Panel{Title: "Distributed Memory", XLabel: "Locales"}
	distRuns := []struct {
		variant atomicVariant
		backend comm.Backend
	}{
		{&intVariant{label: "atomic int (none)"}, comm.BackendNone},
		{&intVariant{label: "atomic int (ugni)"}, comm.BackendUGNI},
		{&objVariant{label: "AtomicObject (ABA)", aba: true}, comm.BackendNone},
		{&objVariant{label: "AtomicObject (none)"}, comm.BackendNone},
		{&objVariant{label: "AtomicObject (ugni)"}, comm.BackendUGNI},
	}
	for _, r := range distRuns {
		s := Series{Label: r.variant.name()}
		for _, locales := range cfg.localeSweep(1) {
			p := cfg.best(func() Point { return cfg.runAtomicMix(locales, cfg.TasksPerLocale, distOps, r.backend, r.variant) })
			p.X = locales
			s.Points = append(s.Points, p)
			cfg.progressf("fig3 dist   %-22s locales=%-3d %8.4fs  [%v]\n", r.variant.name(), locales, p.Seconds, p.Comm)
		}
		dist.Series = append(dist.Series, s)
	}

	return Figure{
		ID:    "3",
		Title: "AtomicObject vs atomic int",
		Caption: fmt.Sprintf(
			"Strong scaling of a 25/25/25/25 read/write/CAS/exchange mix over %d cells; shared panel %d ops, distributed panel %d ops.",
			fig3Cells, sharedOps, distOps),
		Panels: []Panel{shared, dist},
	}
}
