package bench

import "math/bits"

// HDR-style log-bucketed latency histogram. Values (nanoseconds) below
// histSubCount are recorded exactly; above that, each power-of-two
// range is split into histSubCount/2 linear sub-buckets, bounding the
// relative quantization error at 1/(histSubCount/2) ≈ 3% while keeping
// the whole histogram a fixed, merge-friendly array — the same layout
// HdrHistogram uses, sized for the nanosecond..minutes range the
// workload engine records.

const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // values below this are exact
	histHalf     = histSubCount / 2
	histBuckets  = histSubCount + (63-histSubBits)*histHalf
)

// Histogram is a fixed-size log-bucketed histogram of non-negative
// int64 values (nanoseconds, by convention). The zero value is an
// empty, ready-to-use histogram. Not safe for concurrent use: record
// into per-task histograms and Merge.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// histIndex maps a value to its bucket.
func histIndex(u uint64) int {
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) // MSB position, >= histSubBits+1
	shift := uint(exp - histSubBits)
	mant := int(u >> shift) // in [histHalf, histSubCount)
	return histSubCount + (int(shift)-1)*histHalf + (mant - histHalf)
}

// histUpper returns the largest value that maps to bucket i — the
// value quantiles report, so percentiles never understate latency by
// more than one bucket width.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	j := i - histSubCount
	shift := uint(j/histHalf) + 1
	mant := uint64(j%histHalf + histHalf)
	return int64((mant+1)<<shift - 1)
}

// Record adds one value. Negative values clamp to zero.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(uint64(ns))]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i, n := range o.counts {
		if n != 0 {
			h.counts[i] += n
		}
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values (exact).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper edge
// of the bucket holding the ceil(q·count)-th smallest value, clamped
// to the exact maximum. Zero when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, n := range h.counts {
		cum += n
		if cum >= rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// LatencySummary is the serializable digest of a Histogram: the
// percentile family the workload reports carry.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Summary digests the histogram into its percentile family.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.count,
		MeanNS: h.Mean(),
		P50NS:  h.Quantile(0.50),
		P95NS:  h.Quantile(0.95),
		P99NS:  h.Quantile(0.99),
		P999NS: h.Quantile(0.999),
		MaxNS:  h.max,
	}
}
