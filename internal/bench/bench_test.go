package bench

import (
	"encoding/csv"
	"strings"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/queue"
	"gopgas/internal/structures/stack"
)

// tinyConfig runs every figure at trivial size with zero injected
// latency: these tests validate harness structure (panels, series,
// point counts, report formats), not performance.
func tinyConfig() Config {
	return Config{
		Scale:          0.001,
		TasksPerLocale: 1,
		MaxLocales:     4,
		MaxSharedTasks: 2,
		Latency:        comm.Zero(),
		Seed:           7,
		Repeats:        1,
	}
}

func checkFigure(t *testing.T, f Figure, wantPanels int, xs []int) {
	t.Helper()
	if len(f.Panels) != wantPanels {
		t.Fatalf("figure %s has %d panels, want %d", f.ID, len(f.Panels), wantPanels)
	}
	for _, p := range f.Panels {
		if len(p.Series) == 0 {
			t.Fatalf("figure %s panel %q has no series", f.ID, p.Title)
		}
		for _, s := range p.Series {
			if len(s.Points) != len(xs) {
				t.Fatalf("figure %s series %q has %d points, want %d", f.ID, s.Label, len(s.Points), len(xs))
			}
			for i, pt := range s.Points {
				if pt.X != xs[i] {
					t.Fatalf("figure %s series %q point %d X=%d want %d", f.ID, s.Label, i, pt.X, xs[i])
				}
				if pt.Seconds < 0 {
					t.Fatalf("negative time in %s/%s", f.ID, s.Label)
				}
			}
		}
	}
}

func TestFigure3Structure(t *testing.T) {
	f := Figure3(tinyConfig())
	if f.ID != "3" || len(f.Panels) != 2 {
		t.Fatalf("fig3 = %+v", f.ID)
	}
	checkFigure(t, Figure{ID: "3s", Panels: f.Panels[:1]}, 1, []int{1, 2})
	checkFigure(t, Figure{ID: "3d", Panels: f.Panels[1:]}, 1, []int{1, 2, 4})
	if len(f.Panels[1].Series) != 5 {
		t.Fatalf("distributed panel has %d series, want 5", len(f.Panels[1].Series))
	}
}

func TestFigures456Structure(t *testing.T) {
	cfg := tinyConfig()
	for _, f := range []Figure{Figure4(cfg), Figure5(cfg), Figure6(cfg)} {
		checkFigure(t, f, 3, []int{2, 4})
		for _, p := range f.Panels {
			if len(p.Series) != 2 {
				t.Fatalf("fig %s panel %q series = %d", f.ID, p.Title, len(p.Series))
			}
		}
	}
}

func TestFigure7Structure(t *testing.T) {
	f := Figure7(tinyConfig())
	checkFigure(t, f, 1, []int{1, 2, 4})
}

func TestAblationsStructure(t *testing.T) {
	figs := Ablations(tinyConfig())
	if len(figs) != 12 {
		t.Fatalf("got %d ablations", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
		if len(f.Panels) == 0 {
			t.Fatalf("ablation %s empty", f.ID)
		}
	}
	for _, id := range []string{"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11", "A12"} {
		if !ids[id] {
			t.Fatalf("missing ablation %s (have %v)", id, ids)
		}
	}
}

// The aggregation ablation's claim, asserted on the deterministic
// counters: the direct series pays O(ops) per-op round trips while the
// aggregated series pays O(flushes) bulk transfers and zero per-op AM
// atomics.
func TestAblationAggregationCounters(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.1 // 819 increments: enough to dwarf the flush count
	f := AblationAggregation(cfg)
	if f.ID != "A6" || len(f.Panels) != 2 {
		t.Fatalf("A6 shape: %+v", f.ID)
	}
	inc := f.Panels[0]
	for i, direct := range inc.Series[0].Points {
		agged := inc.Series[1].Points[i]
		ops := direct.Comm.AMAMOs + direct.Comm.LocalAMOs
		if ops == 0 {
			t.Fatalf("direct series point %d did no AMOs: %v", i, direct.Comm)
		}
		if agged.Comm.AMAMOs != 0 {
			t.Fatalf("aggregated series paid %d per-op AM round trips", agged.Comm.AMAMOs)
		}
		if agged.Comm.AggOps == 0 {
			t.Fatalf("aggregated series buffered nothing: %v", agged.Comm)
		}
		if agged.Comm.AggFlushes >= agged.Comm.AggOps {
			t.Fatalf("aggregation did not batch: %d flushes for %d ops",
				agged.Comm.AggFlushes, agged.Comm.AggOps)
		}
	}
	q := f.Panels[1]
	for i, perOp := range q.Series[0].Points {
		bulk := q.Series[1].Points[i]
		if perOp.Comm.OnStmts <= bulk.Comm.OnStmts {
			t.Fatalf("point %d: per-op OnStmts=%d not above bulk OnStmts=%d",
				i, perOp.Comm.OnStmts, bulk.Comm.OnStmts)
		}
	}
}

// The sharding ablation's claims, asserted on the deterministic
// matrix and counters. This is the CI smoke gate for the privatized,
// owner-sharded structure layer (run with -short):
//
//  1. the single-home queue/stack funnel traffic into their home's
//     matrix column, which grows with locale count under weak scaling;
//  2. the owner-sharded versions keep the busiest column O(1) — the
//     only remote events in the whole run are the coforall launches,
//     one per column;
//  3. HomeOf-routed hashmap gets perform zero remote events, at any
//     locale count.
func TestAblationA7(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // ~25 ops per locale: small but far above launch noise
	f := AblationSharding(cfg)
	if f.ID != "A7" || len(f.Panels) != 3 {
		t.Fatalf("A7 shape: id=%s panels=%d", f.ID, len(f.Panels))
	}
	for _, panel := range f.Panels[:2] {
		single, sharded := panel.Series[0], panel.Series[1]
		// Single-home: the busiest (home) column grows with locales.
		first := single.Points[0]
		last := single.Points[len(single.Points)-1]
		if first.MaxInbound <= 0 {
			t.Fatalf("%s: single-home hot column empty: %+v", panel.Title, first.Comm)
		}
		if last.MaxInbound < 2*first.MaxInbound {
			t.Fatalf("%s: single-home hot column did not grow with locales: %d -> %d",
				panel.Title, first.MaxInbound, last.MaxInbound)
		}
		// Sharded: busiest column is O(1) — exactly the one coforall
		// launch on-statement per remote locale, regardless of count.
		for i, p := range sharded.Points {
			if p.MaxInbound > 1 {
				t.Fatalf("%s: sharded point %d busiest column = %d events (want <= 1): %v",
					panel.Title, i, p.MaxInbound, p.Comm)
			}
			if ops := p.Comm.Remote() - p.Comm.OnStmts; ops != 0 {
				t.Fatalf("%s: sharded point %d performed %d non-launch remote events: %v",
					panel.Title, i, ops, p.Comm)
			}
		}
	}
	mapPanel := f.Panels[2]
	local, random := mapPanel.Series[0], mapPanel.Series[1]
	for i, p := range local.Points {
		if p.Comm.Remote() != 0 {
			t.Fatalf("local-bucket gets point %d performed remote events: %v", i, p.Comm)
		}
		if p.Comm.LocalAMOs == 0 {
			t.Fatalf("local-bucket gets point %d did no work: %v", i, p.Comm)
		}
	}
	for i, p := range random.Points {
		if p.Comm.Remote() == 0 {
			t.Fatalf("random-bucket gets point %d suspiciously free: %v", i, p.Comm)
		}
	}
}

func TestAblationA8(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // ~25 hot gets per locale: small but far above launch noise
	f := AblationReplication(cfg)
	if f.ID != "A8" || len(f.Panels) != 2 {
		t.Fatalf("A8 shape: id=%s panels=%d", f.ID, len(f.Panels))
	}
	uncached, cached := f.Panels[0].Series[0], f.Panels[0].Series[1]
	// Uncached: every hot key is homed on locale 0, so its inbound
	// column carries all (L-1) remote locales' gets and grows with L.
	first := uncached.Points[0]
	last := uncached.Points[len(uncached.Points)-1]
	if first.MaxInbound <= 0 {
		t.Fatalf("uncached hot column empty: %+v", first.Comm)
	}
	if last.MaxInbound < 2*first.MaxInbound {
		t.Fatalf("uncached hot column did not grow with locales: %d -> %d",
			first.MaxInbound, last.MaxInbound)
	}
	// Cached: with warmed replicas the measured phase is all hits —
	// the busiest inbound column is exactly the one coforall launch
	// on-statement, O(1) at every locale count.
	for i, p := range cached.Points {
		if p.MaxInbound > 1 {
			t.Fatalf("cached point %d busiest column = %d events (want <= 1): %v",
				i, p.MaxInbound, p.Comm)
		}
		if ops := p.Comm.Remote() - p.Comm.OnStmts; ops != 0 {
			t.Fatalf("cached point %d performed %d non-launch remote events: %v", i, ops, p.Comm)
		}
		if p.Comm.CacheHits == 0 {
			t.Fatalf("cached point %d served no hits: %v", i, p.Comm)
		}
		if p.Comm.CacheMiss != 0 {
			t.Fatalf("cached point %d missed %d times after warming: %v", i, p.Comm.CacheMiss, p.Comm)
		}
	}
	// The seeded invalidation storm: cached reads race write-through
	// retirement and epoch advancement; the poisoned heaps must detect
	// zero UAF and every retired entry must be physically reclaimed.
	pt, v := replicationStorm(cfg, 4)
	if v.Heap.UAFLoads != 0 || v.Heap.UAFFrees != 0 {
		t.Fatalf("storm heap verdict: %+v", v.Heap)
	}
	if v.Epoch.Deferred != v.Epoch.Reclaimed {
		t.Fatalf("storm epoch verdict: deferred=%d reclaimed=%d", v.Epoch.Deferred, v.Epoch.Reclaimed)
	}
	if pt.Comm.CacheInval == 0 || pt.Comm.CacheHits == 0 {
		t.Fatalf("storm exercised nothing: %v", pt.Comm)
	}
}

// The write-absorption ablation's claims, asserted on the
// deterministic counters (the CI smoke gate for PR 6, run with
// -short alongside A7/A8):
//
//  1. with combining on, shipped aggregated ops collapse by >= 5x
//     against the enqueued count under the hot-key storm, and the
//     absorption arithmetic balances (shipped + combined == enqueued);
//  2. with combining off, nothing is absorbed: every enqueued op
//     ships, and the owner's CAS work is O(ops) — at least 4x the
//     combined arm's;
//  3. the flat combiner serializes the owner-side replay, so the
//     combined arm's CAS retry count is exactly zero.
func TestAblationA9(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // ~25 writes per locale over 4 hot keys: 6.25x absorbable
	f := AblationWriteAbsorption(cfg)
	if f.ID != "A9" || len(f.Panels) != 2 {
		t.Fatalf("A9 shape: id=%s panels=%d", f.ID, len(f.Panels))
	}
	for _, panel := range f.Panels {
		plain, combined := panel.Series[0], panel.Series[1]
		for i, p := range plain.Points {
			if p.Comm.AggOpsEnq == 0 {
				t.Fatalf("%s: uncombined point %d enqueued nothing: %v", panel.Title, i, p.Comm)
			}
			if p.Comm.AggCombined != 0 {
				t.Fatalf("%s: uncombined point %d absorbed %d ops: %v",
					panel.Title, i, p.Comm.AggCombined, p.Comm)
			}
			if p.Comm.AggOps != p.Comm.AggOpsEnq {
				t.Fatalf("%s: uncombined point %d shipped %d of %d enqueued: %v",
					panel.Title, i, p.Comm.AggOps, p.Comm.AggOpsEnq, p.Comm)
			}
		}
		for i, p := range combined.Points {
			if p.Comm.AggCombined == 0 {
				t.Fatalf("%s: combined point %d absorbed nothing: %v", panel.Title, i, p.Comm)
			}
			if p.Comm.AggOps+p.Comm.AggCombined != p.Comm.AggOpsEnq {
				t.Fatalf("%s: combined point %d books don't balance: shipped %d + absorbed %d != enqueued %d",
					panel.Title, i, p.Comm.AggOps, p.Comm.AggCombined, p.Comm.AggOpsEnq)
			}
			if p.Comm.AggOps*5 > p.Comm.AggOpsEnq {
				t.Fatalf("%s: combined point %d shipped %d of %d enqueued (< 5x absorption)",
					panel.Title, i, p.Comm.AggOps, p.Comm.AggOpsEnq)
			}
			if p.Comm.CASRetries != 0 {
				t.Fatalf("%s: combined point %d retried %d CASes under the flat combiner",
					panel.Title, i, p.Comm.CASRetries)
			}
		}
	}
	// Owner-side CAS work: the upsert storm replays every shipped write
	// through the bucket lists' CAS, so the uncombined arm pays O(ops)
	// attempts while the combined arm pays O(hot keys).
	plainU, combU := f.Panels[0].Series[0], f.Panels[0].Series[1]
	for i, p := range plainU.Points {
		q := combU.Points[i]
		if p.Comm.CASAttempts == 0 {
			t.Fatalf("uncombined upsert point %d did no CAS work: %v", i, p.Comm)
		}
		if q.Comm.CASAttempts*4 > p.Comm.CASAttempts {
			t.Fatalf("combined upsert point %d CAS attempts %d not bounded vs uncombined %d",
				i, q.Comm.CASAttempts, p.Comm.CASAttempts)
		}
	}
}

func TestReportWriters(t *testing.T) {
	f := Figure7(tinyConfig())
	var text, csv, commText strings.Builder
	WriteText(&text, f)
	WriteCSV(&csv, f)
	WriteCommText(&commText, f)

	if !strings.Contains(text.String(), "Figure 7") || !strings.Contains(text.String(), "Pin-Unpin") {
		t.Fatalf("text output malformed:\n%s", text.String())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + (2 backends × 3 locale points)
	if len(lines) != 1+6 {
		t.Fatalf("csv has %d lines:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "figure,panel,series,x,seconds") {
		t.Fatalf("csv header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 20 {
			t.Fatalf("csv row has %d commas: %q", got, l)
		}
	}
	if !strings.Contains(commText.String(), "remote communication ops") {
		t.Fatal("comm view missing")
	}

	// Figure 7 captures no matrix: the heatmap record is empty.
	var matrixCSV strings.Builder
	if rows := WriteMatrixCSV(&matrixCSV, []Figure{f}); rows != 0 || matrixCSV.Len() != 0 {
		t.Fatalf("matrix CSV for fig7: %d rows, %q", rows, matrixCSV.String())
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	f := Figure{ID: "A7", Panels: []Panel{{Title: `p, with "quotes"`, Series: []Series{{
		Label: "s",
		Points: []Point{
			{X: 2, Matrix: [][]int64{{0, 3}, {1, 0}}, MaxInbound: 3},
			{X: 4}, // no matrix: skipped
		},
	}}}}}
	var out strings.Builder
	rows := WriteMatrixCSV(&out, []Figure{f})
	if rows != 4 {
		t.Fatalf("rows = %d, want 4", rows)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 || lines[0] != "figure,panel,series,x,src,dst,events" {
		t.Fatalf("matrix CSV:\n%s", out.String())
	}
	// RFC 4180 quoting: embedded quotes doubled, field quoted.
	if lines[2] != `A7,"p, with ""quotes""",s,2,0,1,3` {
		t.Fatalf("cell row = %q", lines[2])
	}
	// The record round-trips through a standard CSV reader.
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil || len(recs) != 5 || recs[2][1] != `p, with "quotes"` {
		t.Fatalf("re-parse: %v %v", err, recs)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ops(100) != 100 {
		t.Fatal("scale 1 changed op count")
	}
	cfg.Scale = 0.0001
	if cfg.ops(100) != 1 {
		t.Fatal("ops floor is 1")
	}
	cfg.MaxLocales = 16
	sweep := cfg.localeSweep(2)
	want := []int{2, 4, 8, 16}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v", sweep)
		}
	}
}

func TestBestKeepsFastest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Repeats = 3
	times := []float64{3, 1, 2}
	i := 0
	p := cfg.best(func() Point {
		p := Point{Seconds: times[i]}
		i++
		return p
	})
	if p.Seconds != 1 {
		t.Fatalf("best = %v", p.Seconds)
	}
	if i != 3 {
		t.Fatalf("ran %d times", i)
	}
}

// The rebalancing ablation's claims, asserted on the deterministic
// counters (the CI smoke gate for the dynamic-rebalancing PR):
//
//  1. static ownership: the moving hot set funnels every window's
//     writes into locale 0's inbound column, which grows with the
//     locale count (and books zero migrations);
//  2. rebalanced: the controller migrates every window's hot buckets
//     off the overloaded locale — exactly (locales-1) per window —
//     and the busiest inbound column stays within 2x the per-locale
//     mean (the imbalance the controller is built to cap);
//  3. the books balance exactly: shards adopted == shards retired ==
//     the controller's migration count, and the comm layer's moved
//     bytes equal both the controller's total and 16 bytes per
//     migration (each hot bucket carries exactly one entry);
//  4. the handoff is epoch-coherent: zero detected use-after-free,
//     every deferred node reclaimed.
func TestAblationA10(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // 25 writes per quantum: 7 flush events per writer
	for _, locales := range cfg.localeSweep(2) {
		sp, sv := movingHotStorm(cfg, locales, false)
		if sv.Ctrl.Migrations != 0 || sv.Comm.MigRetired != 0 || sv.Comm.MigReroutes != 0 {
			t.Fatalf("L=%d: static arm migrated: %+v %+v", locales, sv.Ctrl, sv.Comm)
		}
		if sp.MaxInbound == 0 {
			t.Fatalf("L=%d: static arm funneled nothing", locales)
		}

		rp, rv := movingHotStorm(cfg, locales, true)
		wantMigs := int64(a10Windows * (locales - 1))
		if rv.Ctrl.Migrations != wantMigs {
			t.Fatalf("L=%d: controller migrated %d, want %d (steps=%d)",
				locales, rv.Ctrl.Migrations, wantMigs, rv.Ctrl.Steps)
		}
		if rv.Comm.MigAdopted != wantMigs || rv.Comm.MigRetired != wantMigs {
			t.Fatalf("L=%d: books: adopted %d retired %d, want %d both",
				locales, rv.Comm.MigAdopted, rv.Comm.MigRetired, wantMigs)
		}
		if rv.Comm.MigBytes != rv.Ctrl.BytesMoved || rv.Comm.MigBytes != 16*wantMigs {
			t.Fatalf("L=%d: moved bytes %d (ctrl %d), want %d",
				locales, rv.Comm.MigBytes, rv.Ctrl.BytesMoved, 16*wantMigs)
		}
		// The bound: the rebalanced run's busiest inbound column stays
		// within 2x the per-locale mean, wherever the controller parked
		// the buckets; the static run concentrates far beyond it.
		var total int64
		for _, row := range rp.Matrix {
			for _, n := range row {
				total += n
			}
		}
		mean := float64(total) / float64(locales)
		if float64(rp.MaxInbound) > 2*mean {
			t.Fatalf("L=%d: rebalanced busiest column %d exceeds 2x mean %.1f (total %d)",
				locales, rp.MaxInbound, mean, total)
		}
		if rp.MaxInbound >= sp.MaxInbound {
			t.Fatalf("L=%d: rebalancing did not relieve the hot column: %d vs static %d",
				locales, rp.MaxInbound, sp.MaxInbound)
		}
		if rv.Heap.UAFLoads != 0 || rv.Heap.UAFStores != 0 || rv.Heap.UAFFrees != 0 {
			t.Fatalf("L=%d: heap verdict: %+v", locales, rv.Heap)
		}
		if rv.Epoch.Deferred != rv.Epoch.Reclaimed {
			t.Fatalf("L=%d: epoch verdict: deferred=%d reclaimed=%d",
				locales, rv.Epoch.Deferred, rv.Epoch.Reclaimed)
		}
	}

	// The static arm's hot column grows with the locale count — the
	// O(L) failure mode the controller exists to cap.
	sweep := cfg.localeSweep(2)
	firstPt, _ := movingHotStorm(cfg, sweep[0], false)
	lastPt, _ := movingHotStorm(cfg, sweep[len(sweep)-1], false)
	if lastPt.MaxInbound < 2*firstPt.MaxInbound {
		t.Fatalf("static hot column did not grow with locales: %d -> %d",
			firstPt.MaxInbound, lastPt.MaxInbound)
	}
}

// The crash-failover ablation's claims, asserted on the deterministic
// counters (the CI smoke gate for the crash/failover PR):
//
//  1. wedged (no failover): every post-crash write toward the dead
//     owner drains to the lost-ops ledger — exactly postQuanta ×
//     survivors × reps — and the stranded pin blocks every post-crash
//     epoch election (advanceFail == postQuanta, no further advances);
//  2. failover: the survivors adopt every bucket the victim owned
//     (nbuckets/L, hot and empty alike), the moved bytes equal one
//     16-byte entry per hot bucket, exactly one stranded token is
//     force-retired, zero ops are lost, and every post-crash election
//     succeeds;
//  3. the adoption books reconcile with the comm plane exactly:
//     shards == MigAdopted == MigRetired, bytes == MigBytes, and no
//     write ever needed a reroute (the owner table republishes before
//     traffic resumes);
//  4. both arms end safe: zero detected use-after-free and every
//     deferred node reclaimed — a crash may lose workload writes but
//     never a deferred deletion.
func TestAblationA11(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // 25 writes per writer per quantum
	reps := int64(cfg.ops(1 << 9))
	for _, locales := range cfg.localeSweep(2) {
		_, wv := crashStorm(cfg, locales, false)
		wantLost := int64(a11PostQuanta) * int64(locales-1) * reps
		if wv.Comm.OpsLost != wantLost {
			t.Fatalf("L=%d: wedged arm lost %d ops, want %d", locales, wv.Comm.OpsLost, wantLost)
		}
		if wv.Epoch.Advances != a11PreQuanta+1 || wv.Epoch.AdvanceFail != a11PostQuanta {
			t.Fatalf("L=%d: wedged arm advances=%d advanceFail=%d, want %d and %d",
				locales, wv.Epoch.Advances, wv.Epoch.AdvanceFail, a11PreQuanta+1, a11PostQuanta)
		}
		if wv.Shards != 0 || wv.Tokens != 0 || wv.Comm.MigAdopted != 0 || wv.Comm.MigRetired != 0 {
			t.Fatalf("L=%d: wedged arm recovered: %+v comm=%+v", locales, wv, wv.Comm)
		}

		_, fv := crashStorm(cfg, locales, true)
		if fv.Comm.OpsLost != 0 {
			t.Fatalf("L=%d: failover arm lost %d ops, want 0", locales, fv.Comm.OpsLost)
		}
		wantShards := int64(16) // the victim's share of 16*L buckets
		if fv.Shards != wantShards || fv.Comm.MigAdopted != wantShards || fv.Comm.MigRetired != wantShards {
			t.Fatalf("L=%d: adoption books: shards=%d adopted=%d retired=%d, want %d",
				locales, fv.Shards, fv.Comm.MigAdopted, fv.Comm.MigRetired, wantShards)
		}
		wantBytes := int64(16 * (locales - 1)) // one 16-byte entry per hot bucket
		if fv.Bytes != wantBytes || fv.Comm.MigBytes != wantBytes {
			t.Fatalf("L=%d: moved bytes %d (comm %d), want %d",
				locales, fv.Bytes, fv.Comm.MigBytes, wantBytes)
		}
		if fv.Comm.MigReroutes != 0 {
			t.Fatalf("L=%d: %d reroutes after quiescent failover", locales, fv.Comm.MigReroutes)
		}
		if fv.Tokens != 1 {
			t.Fatalf("L=%d: force-retired %d tokens, want 1", locales, fv.Tokens)
		}
		if fv.Epoch.Advances != a11PreQuanta+1+a11PostQuanta || fv.Epoch.AdvanceFail != 0 {
			t.Fatalf("L=%d: failover arm advances=%d advanceFail=%d, want %d and 0",
				locales, fv.Epoch.Advances, fv.Epoch.AdvanceFail, a11PreQuanta+1+a11PostQuanta)
		}

		for arm, vd := range map[string]crashVerdict{"wedged": wv, "failover": fv} {
			if vd.Heap.UAFLoads != 0 || vd.Heap.UAFStores != 0 || vd.Heap.UAFFrees != 0 {
				t.Fatalf("L=%d: %s arm heap verdict: %+v", locales, arm, vd.Heap)
			}
			if vd.Epoch.Deferred != vd.Epoch.Reclaimed {
				t.Fatalf("L=%d: %s arm epoch verdict: deferred=%d reclaimed=%d",
					locales, arm, vd.Epoch.Deferred, vd.Epoch.Reclaimed)
			}
		}
	}
}

// The partition-retry ablation's claims, asserted on the deterministic
// counters (the CI smoke gate for the partition/retry PR), plus the
// queue/stack crash-failover drill the same PR closes:
//
//  1. retry disabled: every op aimed across the severed pair during
//     the outage drains to the lost-ops ledger — exactly sevQuanta ×
//     2 × reps (both pair locales' whole budgets) — and the retry
//     ledgers never book anything;
//  2. retry enabled: the same refused ops park instead, the heal
//     redelivers every one of them (OpsParked == OpsRedelivered, zero
//     expiries under an hour-long deadline), and nothing reaches the
//     fail-stop ledger;
//  3. both arms end safe: zero detected use-after-free and every
//     deferred node reclaimed;
//  4. a crashed queue/stack segment fails over with balanced books:
//     one chunk per survivor, the victim's whole payload in bytes,
//     shards == MigAdopted == MigRetired, and the stranded pin
//     force-retired.
func TestAblationA12(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05 // 25 writes per writer per quantum
	reps := int64(cfg.ops(1 << 9))
	for _, locales := range cfg.localeSweep(4) {
		wantRefused := int64(a12SevQuanta) * 2 * reps

		_, dv := flashPartition(cfg, locales, false)
		if dv.Comm.OpsLost != wantRefused {
			t.Fatalf("L=%d: disabled arm lost %d ops, want %d", locales, dv.Comm.OpsLost, wantRefused)
		}
		if dv.Comm.OpsParked != 0 || dv.Comm.OpsRedelivered != 0 || dv.Comm.OpsExpired != 0 {
			t.Fatalf("L=%d: disabled arm booked retries: %+v", locales, dv.Comm)
		}

		_, rv := flashPartition(cfg, locales, true)
		if rv.Comm.OpsParked != wantRefused || rv.Comm.OpsRedelivered != wantRefused {
			t.Fatalf("L=%d: retry arm parked=%d redelivered=%d, want %d and %d",
				locales, rv.Comm.OpsParked, rv.Comm.OpsRedelivered, wantRefused, wantRefused)
		}
		if rv.Comm.OpsExpired != 0 {
			t.Fatalf("L=%d: retry arm expired %d ops under an hour-long deadline", locales, rv.Comm.OpsExpired)
		}
		if rv.Comm.OpsLost != 0 {
			t.Fatalf("L=%d: retry arm lost %d ops, want 0", locales, rv.Comm.OpsLost)
		}

		for arm, vd := range map[string]partitionVerdict{"disabled": dv, "retry": rv} {
			if vd.Heap.UAFLoads != 0 || vd.Heap.UAFStores != 0 || vd.Heap.UAFFrees != 0 {
				t.Fatalf("L=%d: %s arm heap verdict: %+v", locales, arm, vd.Heap)
			}
			if vd.Epoch.Deferred != vd.Epoch.Reclaimed {
				t.Fatalf("L=%d: %s arm epoch verdict: deferred=%d reclaimed=%d",
					locales, arm, vd.Epoch.Deferred, vd.Epoch.Reclaimed)
			}
		}
	}

	// The failover half of the gate: a crashed queue/stack segment
	// drains onto the survivors with exact, balanced books.
	const locales, victim, vq = 4, 2, 12
	drill := func(t *testing.T, fill func(c *pgas.Ctx, em epoch.EpochManager), fail func(c *pgas.Ctx) (int64, int64)) {
		sys := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
		defer sys.Shutdown()
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			fill(c, em)
			c.On(victim, func(vc *pgas.Ctx) { em.Pin(vc) })
			if err := sys.Crash(victim); err != nil {
				t.Errorf("Crash: %v", err)
				return
			}
			before := sys.Counters().Snapshot()
			sc := c.Salvage()
			shards, bytes := fail(sc)
			tokens := em.ForceRetire(sc, victim)
			sc.Flush()
			if shards != locales-1 {
				t.Errorf("failover adopted %d chunks, want %d", shards, locales-1)
			}
			if want := int64(vq) * 16; bytes != want {
				t.Errorf("failover moved %d bytes, want %d", bytes, want)
			}
			if tokens != 1 {
				t.Errorf("force-retired %d tokens, want 1", tokens)
			}
			delta := sys.Counters().Snapshot().Sub(before)
			if delta.MigAdopted != shards || delta.MigRetired != shards {
				t.Errorf("books unbalanced: adopted=%d retired=%d shards=%d",
					delta.MigAdopted, delta.MigRetired, shards)
			}
			em.Clear(c)
		})
	}
	t.Run("queue", func(t *testing.T) {
		var q queue.Sharded[int]
		drill(t,
			func(c *pgas.Ctx, em epoch.EpochManager) {
				q = queue.NewSharded[int](c, em)
				c.On(victim, func(vc *pgas.Ctx) {
					em.Protect(vc, func(tok *epoch.Token) {
						for i := 0; i < vq; i++ {
							q.Enqueue(vc, tok, i)
						}
					})
				})
			},
			func(sc *pgas.Ctx) (int64, int64) { return q.Failover(sc, victim) })
	})
	t.Run("stack", func(t *testing.T) {
		var s stack.Sharded[int]
		drill(t,
			func(c *pgas.Ctx, em epoch.EpochManager) {
				s = stack.NewSharded[int](c, em)
				c.On(victim, func(vc *pgas.Ctx) {
					em.Protect(vc, func(tok *epoch.Token) {
						for i := 0; i < vq; i++ {
							s.Push(vc, tok, i)
						}
					})
				})
			},
			func(sc *pgas.Ctx) (int64, int64) { return s.Failover(sc, victim) })
	})
}
