package bench

import (
	"math"
	"testing"
)

func TestHistIndexMonotoneAndContiguous(t *testing.T) {
	// Bucket index must be non-decreasing in the value and cover the
	// array without gaps for increasing magnitudes.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 63, 64, 65, 127, 128, 1 << 10, 1<<10 + 17, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64} {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of [0, %d)", v, i, histBuckets)
		}
		prev = i
	}
	// Small values are exact.
	for v := uint64(0); v < histSubCount; v++ {
		if histIndex(v) != int(v) {
			t.Fatalf("small value %d not exact: bucket %d", v, histIndex(v))
		}
	}
	// Adjacent power-of-two boundary is contiguous.
	if histIndex(63)+1 != histIndex(64) {
		t.Fatalf("boundary gap: idx(63)=%d idx(64)=%d", histIndex(63), histIndex(64))
	}
	if histIndex(127)+1 != histIndex(128) {
		t.Fatalf("boundary gap: idx(127)=%d idx(128)=%d", histIndex(127), histIndex(128))
	}
}

func TestHistUpperBoundsBucket(t *testing.T) {
	for _, v := range []uint64{0, 5, 63, 64, 100, 1000, 1 << 20, 1<<20 + 12345, 1 << 50} {
		i := histIndex(v)
		up := histUpper(i)
		if uint64(up) < v {
			t.Fatalf("histUpper(%d) = %d < value %d", i, up, v)
		}
		// The upper edge itself must map back to the same bucket.
		if histIndex(uint64(up)) != i {
			t.Fatalf("histUpper(%d) = %d maps to bucket %d", i, up, histIndex(uint64(up)))
		}
		// Relative error bound: upper edge within ~2/histHalf of v.
		if v > histSubCount && float64(up) > float64(v)*(1+2.0/histHalf) {
			t.Fatalf("bucket too wide: value %d upper %d", v, up)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	check := func(q float64, want int64) {
		got := h.Quantile(q)
		if math.Abs(float64(got-want)) > float64(want)*0.05+1 {
			t.Errorf("Quantile(%v) = %d, want ≈%d", q, got, want)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	check(0.999, 999)
	if h.Quantile(1) != 1000 || h.Max() != 1000 {
		t.Fatalf("max quantile %d, Max %d", h.Quantile(1), h.Max())
	}
	s := h.Summary()
	if s.P50NS > s.P95NS || s.P95NS > s.P99NS || s.P99NS > s.P999NS || s.P999NS > s.MaxNS {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to zero
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative record mishandled: count=%d q50=%d", h.Count(), h.Quantile(0.5))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := int64(0); i < 500; i++ {
		a.Record(i * 3)
		whole.Record(i * 3)
	}
	for i := int64(500); i < 1000; i++ {
		b.Record(i * 3)
		whole.Record(i * 3)
	}
	a.Merge(&b)
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge drifted: %+v vs %+v", a.Summary(), whole.Summary())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("Quantile(%v) differs after merge: %d vs %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}
