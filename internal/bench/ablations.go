package bench

import (
	"sort"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/cache"
	"gopgas/internal/structures/hashmap"
	"gopgas/internal/structures/queue"
	"gopgas/internal/structures/rebalance"
	"gopgas/internal/structures/stack"
)

// Ablation studies for the design choices DESIGN.md calls out. Each
// isolates one mechanism the paper credits for scalability and
// compares it against the naive alternative it replaced.

// AblationCompression compares CAS throughput across the three pointer
// representations — compressed (NIC atomics), wide (DCAS via remote
// execution), and descriptor-table (NIC atomics + resolution
// indirection) — on the ugni backend, where the difference is the
// whole story of Section II.A.
func AblationCompression(cfg Config) Figure {
	totalOps := cfg.ops(1 << 13)
	panel := Panel{Title: "CAS+Read mix by representation (ugni)", XLabel: "Locales"}
	modes := []struct {
		label string
		mode  atomics.Mode
	}{
		{"compressed (RDMA)", atomics.ModeCompressed},
		{"wide (DCAS fallback)", atomics.ModeWide},
		{"descriptor (RDMA+indirection)", atomics.ModeDescriptor},
	}
	for _, m := range modes {
		s := Series{Label: m.label}
		for _, locales := range cfg.localeSweep(2) {
			sys := cfg.newSystem(locales, comm.BackendUGNI)
			var secs float64
			var snap comm.Snapshot
			sys.Run(func(c *pgas.Ctx) {
				opt := atomics.Options{Mode: m.mode}
				if m.mode == atomics.ModeDescriptor {
					opt.Table = atomics.NewDescriptorTable(c)
				}
				cells := make([]*atomics.AtomicObject, fig3Cells)
				objs := make([]gas.Addr, fig3Cells)
				for i := range cells {
					cells[i] = atomics.New(c, i%locales, opt)
					objs[i] = c.AllocOn(i%locales, &workerState{v: i})
					cells[i].Write(c, objs[i])
				}
				secs, snap = timed(sys, func() {
					pgas.ForallCyclic(c, totalOps, cfg.TasksPerLocale, nil,
						func(tc *pgas.Ctx, _ struct{}, i int) {
							cell := cells[tc.RandIntn(fig3Cells)]
							if i%2 == 0 {
								cur := cell.Read(tc)
								cell.CompareAndSwap(tc, cur, cur)
							} else {
								cell.Read(tc)
							}
						}, nil)
				})
			})
			sys.Shutdown()
			s.Points = append(s.Points, Point{X: locales, Seconds: secs, Comm: snap})
			cfg.progressf("ablA %-30s locales=%-3d %8.4fs  [%v]\n", m.label, locales, secs, snap)
		}
		panel.Series = append(panel.Series, s)
	}
	return Figure{
		ID:      "A1",
		Title:   "Ablation: pointer compression vs DCAS fallback vs descriptor table",
		Caption: "Compression keeps CAS on the NIC; the wide fallback demotes every operation to remote execution; descriptors restore the NIC at the price of resolution GETs.",
		Panels:  []Panel{panel},
	}
}

// AblationPrivatization compares the privatized pin/unpin path (reads
// the locale-local epoch cache) with the naive unprivatized design in
// which every pin reads the global epoch across the network — the
// round trip record-wrapping eliminates.
func AblationPrivatization(cfg Config) Figure {
	iters := cfg.ops(1 << 13)
	panel := Panel{Title: "Pin/unpin loop (none backend)", XLabel: "Locales"}

	priv := Series{Label: "privatized (epoch cache)"}
	naive := Series{Label: "unprivatized (remote epoch read per pin)"}
	for _, locales := range cfg.localeSweep(1) {
		// Privatized: the real EpochManager path.
		p := cfg.best(func() Point { return cfg.runPinUnpin(locales, iters, comm.BackendNone) })
		priv.Points = append(priv.Points, p)
		cfg.progressf("ablB privatized   locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		// Naive: every pin performs a remote read of the global epoch.
		sys := cfg.newSystem(locales, comm.BackendNone)
		var secs float64
		var snap comm.Snapshot
		sys.Run(func(c *pgas.Ctx) {
			global := pgas.NewWord64(c, 0, 1)
			secs, snap = timed(sys, func() {
				pgas.ForallCyclic(c, iters, cfg.TasksPerLocale, nil,
					func(tc *pgas.Ctx, _ struct{}, i int) {
						global.Read(tc) // "pin": fetch the epoch remotely
						_ = i           // "unpin": store is local either way
					}, nil)
			})
		})
		sys.Shutdown()
		naive.Points = append(naive.Points, Point{X: locales, Seconds: secs, Comm: snap})
		cfg.progressf("ablB unprivatized locales=%-3d %8.4fs  [%v]\n", locales, secs, snap)
	}
	panel.Series = []Series{priv, naive}
	return Figure{
		ID:      "A2",
		Title:   "Ablation: privatization",
		Caption: "The privatized manager pins against a locale-local cache (zero communication); without privatization every pin is a remote epoch read that serializes on locale 0's progress workers.",
		Panels:  []Panel{panel},
	}
}

// AblationScatter compares the EpochManager's locale-sorted bulk frees
// against freeing each remote object with an individual RPC.
func AblationScatter(cfg Config) Figure {
	numObjects := cfg.ops(1 << 12)
	panel := Panel{Title: "Reclaiming 100% remote objects", XLabel: "Locales"}
	scatter := Series{Label: "scatter lists (bulk)"}
	rpc := Series{Label: "per-object RPC"}
	for _, locales := range cfg.localeSweep(2) {
		// Scatter: the real manager path, reclamation at the end.
		p := cfg.best(func() Point { return cfg.runDeletion(locales, numObjects, 100, 0, comm.BackendNone) })
		scatter.Points = append(scatter.Points, p)
		cfg.progressf("ablC scatter locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		// Naive: free each remote object individually.
		sys := cfg.newSystem(locales, comm.BackendNone)
		var secs float64
		var snap comm.Snapshot
		sys.Run(func(c *pgas.Ctx) {
			objs := buildObjs(c, numObjects, 100)
			secs, snap = timed(sys, func() {
				pgas.ForallCyclic(c, numObjects, cfg.TasksPerLocale, nil,
					func(tc *pgas.Ctx, _ struct{}, i int) {
						tc.Free(objs[i])
					}, nil)
			})
		})
		sys.Shutdown()
		rpc.Points = append(rpc.Points, Point{X: locales, Seconds: secs, Comm: snap})
		cfg.progressf("ablC rpc     locales=%-3d %8.4fs  [%v]\n", locales, secs, snap)
	}
	panel.Series = []Series{scatter, rpc}
	return Figure{
		ID:      "A3",
		Title:   "Ablation: scatter lists",
		Caption: "Sorting dead objects by owner turns N remote frees into one bulk transfer per (source, destination) locale pair.",
		Panels:  []Panel{panel},
	}
}

// AblationLimboPush compares the push *mechanism* of the limbo list —
// Listing 2's single wait-free exchange — against a lock-free CAS-loop
// push, with identical node handling on both sides (nodes
// preallocated; each push is exactly one deref plus the head update),
// so the measured difference is retries under contention.
func AblationLimboPush(cfg Config) Figure {
	totalOps := cfg.ops(1 << 15)
	panel := Panel{Title: "Concurrent push of preallocated nodes (1 locale)", XLabel: "Tasks"}
	exch := Series{Label: "wait-free exchange (Listing 2)"}
	casLoop := Series{Label: "lock-free CAS loop"}

	type pushNode struct {
		next gas.Addr
	}
	runVariant := func(tasks int, useExchange bool) Point {
		sys := cfg.newSystem(1, comm.BackendNone)
		defer sys.Shutdown()
		var secs float64
		var snap comm.Snapshot
		sys.Run(func(c *pgas.Ctx) {
			// Exchange push needs no ABA stamp (no read-modify window);
			// the CAS loop reads the head and must detect recycling, so
			// it carries the stamp — each mechanism with its natural
			// protection, as in the paper.
			exHead := atomics.NewLocal(0, false)
			casHead := atomics.NewLocal(0, true)
			per := totalOps / tasks
			nodes := make([][]gas.Addr, tasks)
			for t := 0; t < tasks; t++ {
				for i := 0; i < per; i++ {
					nodes[t] = append(nodes[t], c.Alloc(&pushNode{}))
				}
			}
			secs, snap = timed(sys, func() {
				c.Coforall(tasks, func(tc *pgas.Ctx, t int) {
					if useExchange {
						for _, addr := range nodes[t] {
							n := pgas.MustDeref[*pushNode](tc, addr)
							old := exHead.Exchange(addr)
							n.next = old
						}
						return
					}
					for _, addr := range nodes[t] {
						n := pgas.MustDeref[*pushNode](tc, addr)
						for {
							top := casHead.ReadABA()
							n.next = top.Object()
							if casHead.CompareAndSwapABA(top, addr) {
								break
							}
						}
					}
				})
			})
		})
		return Point{X: tasks, Seconds: secs, Comm: snap}
	}

	for _, tasks := range cfg.taskSweep() {
		p := cfg.best(func() Point { return runVariant(tasks, true) })
		exch.Points = append(exch.Points, p)
		cfg.progressf("ablD exchange tasks=%-3d %8.4fs\n", tasks, p.Seconds)

		p = cfg.best(func() Point { return runVariant(tasks, false) })
		casLoop.Points = append(casLoop.Points, p)
		cfg.progressf("ablD casloop  tasks=%-3d %8.4fs\n", tasks, p.Seconds)
	}
	panel.Series = []Series{exch, casLoop}
	return Figure{
		ID:      "A4",
		Title:   "Ablation: wait-free limbo push vs CAS loop",
		Caption: "Listing 2's single-exchange push never retries; a CAS-loop push retries under contention. Node handling is identical on both sides.",
		Panels:  []Panel{panel},
	}
}

// AblationAggregation compares direct per-operation dispatch against
// the aggregation layer on two workloads. Panel 1: remote network-
// atomic increments on the none backend — the direct path pays one AM
// round trip per increment (serialized by the target's progress
// workers), the aggregated path buffers fire-and-forget adds and
// flushes in the task epilogue, paying one bulk transfer per batch.
// Panel 2: producers on every locale feeding one queue — per-op
// Enqueue pays one remote allocation RPC per element, EnqueueBulk
// ships nodes in pre-linked batches and publishes each with O(1)
// CASes. The communication counters, not just wall time, are the
// evidence: the aggregated runs issue O(flushes) bulk transfers where
// the direct runs issue O(ops) round trips (asserted in
// TestAblationAggregationCounters).
func AblationAggregation(cfg Config) Figure {
	totalOps := cfg.ops(1 << 13)
	const batchLen = 64

	incPanel := Panel{Title: "Remote increments: direct AM vs aggregated (none)", XLabel: "Locales"}
	runInc := func(locales int, aggregated bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var secs float64
		var snap comm.Snapshot
		sys.Run(func(c *pgas.Ctx) {
			words := make([]*pgas.Word64, locales)
			for l := range words {
				words[l] = pgas.NewWord64(c, l, 0)
			}
			secs, snap = timed(sys, func() {
				pgas.ForallCyclic(c, totalOps, cfg.TasksPerLocale, nil,
					func(tc *pgas.Ctx, _ struct{}, i int) {
						dst := tc.RandIntn(locales)
						if aggregated {
							tc.Aggregator(dst).Add(words[dst], 1)
						} else {
							words[dst].Add(tc, 1)
						}
					},
					func(tc *pgas.Ctx, _ struct{}) {
						tc.Flush() // drain the task's buffers in the epilogue
					})
			})
		})
		return Point{X: locales, Seconds: secs, Comm: snap}
	}

	queuePanel := Panel{Title: "Queue producers: per-op vs bulk enqueue (none)", XLabel: "Locales"}
	runQueue := func(locales int, bulk bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var secs float64
		var snap comm.Snapshot
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			q := queue.New[int](c, 0, em)
			per := totalOps / locales
			if per < 1 {
				per = 1
			}
			secs, snap = timed(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					em.Protect(lc, func(tok *epoch.Token) {
						if !bulk {
							for i := 0; i < per; i++ {
								q.Enqueue(lc, tok, i)
							}
							return
						}
						batch := make([]int, 0, batchLen)
						for i := 0; i < per; i++ {
							batch = append(batch, i)
							if len(batch) == batchLen {
								q.EnqueueBulk(lc, tok, batch)
								batch = batch[:0]
							}
						}
						if len(batch) > 0 {
							q.EnqueueBulk(lc, tok, batch)
						}
					})
				})
			})
			em.Clear(c)
		})
		return Point{X: locales, Seconds: secs, Comm: snap}
	}

	direct := Series{Label: "direct (per-op round trips)"}
	agged := Series{Label: "aggregated (batched flushes)"}
	perOp := Series{Label: "per-op enqueue"}
	bulkEnq := Series{Label: "bulk enqueue (64/batch)"}
	for _, locales := range cfg.localeSweep(2) {
		p := cfg.best(func() Point { return runInc(locales, false) })
		direct.Points = append(direct.Points, p)
		cfg.progressf("ablF direct     locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runInc(locales, true) })
		agged.Points = append(agged.Points, p)
		cfg.progressf("ablF aggregated locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runQueue(locales, false) })
		perOp.Points = append(perOp.Points, p)
		cfg.progressf("ablF enqueue    locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runQueue(locales, true) })
		bulkEnq.Points = append(bulkEnq.Points, p)
		cfg.progressf("ablF enqBulk    locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)
	}
	incPanel.Series = []Series{direct, agged}
	queuePanel.Series = []Series{perOp, bulkEnq}
	return Figure{
		ID:      "A6",
		Title:   "Ablation: direct vs aggregated remote-op dispatch",
		Caption: "Aggregation buffers small remote operations per destination and ships each buffer as one bulk transfer: per-op round-trip latency becomes per-batch latency, and the comm counters drop from O(ops) round trips to O(flushes) bulk transfers.",
		Panels:  []Panel{incPanel, queuePanel},
	}
}

// AblationSharding compares single-home structures against their
// owner-sharded, privatized successors under weak scaling (fixed work
// per locale). The claim is about *where* communication lands, so the
// evidence is the comm matrix, not just the scalar counters: a
// single-home queue or stack funnels every remote locale's operations
// into its home's column, which therefore grows O(L) with locale
// count, while the sharded versions keep every operation segment-local
// and the busiest column stays O(1). The third panel makes the
// hashmap's privatization claim: gets against locale-local buckets
// (routed with HomeOf) perform zero remote events, while uniformly
// random gets pay remote reads for the ~ (L-1)/L of buckets owned
// elsewhere. TestAblationA7 asserts all three properties exactly.
func AblationSharding(cfg Config) Figure {
	perLocale := cfg.ops(1 << 9) // weak scaling: per-locale work is constant

	queuePanel := Panel{Title: "Queue enq+deq per locale: single-home vs sharded (none)", XLabel: "Locales"}
	runQueue := func(locales int, sharded bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			var enq func(lc *pgas.Ctx, tok *epoch.Token, v int)
			var deq func(lc *pgas.Ctx, tok *epoch.Token)
			if sharded {
				q := queue.NewSharded[int](c, em)
				enq = func(lc *pgas.Ctx, tok *epoch.Token, v int) { q.Enqueue(lc, tok, v) }
				deq = func(lc *pgas.Ctx, tok *epoch.Token) { q.Dequeue(lc, tok) }
			} else {
				q := queue.New[int](c, 0, em)
				enq = func(lc *pgas.Ctx, tok *epoch.Token, v int) { q.Enqueue(lc, tok, v) }
				deq = func(lc *pgas.Ctx, tok *epoch.Token) { q.Dequeue(lc, tok) }
			}
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					em.Protect(lc, func(tok *epoch.Token) {
						for i := 0; i < perLocale; i++ {
							enq(lc, tok, i)
						}
						for i := 0; i < perLocale; i++ {
							deq(lc, tok)
						}
					})
				})
			})
			em.Clear(c)
		})
		pt.X = locales
		return pt
	}

	stackPanel := Panel{Title: "Stack push+pop per locale: single-home vs sharded (none)", XLabel: "Locales"}
	runStack := func(locales int, sharded bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			var push func(lc *pgas.Ctx, tok *epoch.Token, v int)
			var pop func(lc *pgas.Ctx, tok *epoch.Token)
			if sharded {
				st := stack.NewSharded[int](c, em)
				push = func(lc *pgas.Ctx, tok *epoch.Token, v int) { st.Push(lc, tok, v) }
				pop = func(lc *pgas.Ctx, tok *epoch.Token) { st.Pop(lc, tok) }
			} else {
				st := stack.New[int](c, 0, em)
				push = func(lc *pgas.Ctx, tok *epoch.Token, v int) { st.Push(lc, tok, v) }
				pop = func(lc *pgas.Ctx, tok *epoch.Token) { st.Pop(lc, tok) }
			}
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					em.Protect(lc, func(tok *epoch.Token) {
						for i := 0; i < perLocale; i++ {
							push(lc, tok, i)
						}
						for i := 0; i < perLocale; i++ {
							pop(lc, tok)
						}
					})
				})
			})
			em.Clear(c)
		})
		pt.X = locales
		return pt
	}

	mapPanel := Panel{Title: "Hashmap gets: locale-local vs random buckets (none)", XLabel: "Locales"}
	runMap := func(locales int, localOnly bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			m := hashmap.New[int](c, 8*locales, em)
			keys := make([]hashmap.KV[int], 32*locales)
			for k := range keys {
				keys[k] = hashmap.KV[int]{K: uint64(k), V: k}
			}
			m.InsertBulk(c, keys)
			// Sequential per-locale windows keep the counter deltas
			// attributable; the claim is volume, not wall time.
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				for l := 0; l < locales; l++ {
					lc := sys.Ctx(l)
					em.Protect(lc, func(tok *epoch.Token) {
						for rep := 0; rep < 4; rep++ {
							for k := range keys {
								if localOnly && m.HomeOf(uint64(k)) != l {
									continue
								}
								m.Get(lc, tok, uint64(k))
							}
						}
					})
				}
			})
			em.Clear(c)
		})
		pt.X = locales
		return pt
	}

	singleQ := Series{Label: "single-home queue"}
	shardQ := Series{Label: "owner-sharded queue"}
	singleS := Series{Label: "single-home stack"}
	shardS := Series{Label: "owner-sharded stack"}
	localM := Series{Label: "local buckets (HomeOf-routed)"}
	randM := Series{Label: "random buckets"}
	for _, locales := range cfg.localeSweep(2) {
		p := cfg.best(func() Point { return runQueue(locales, false) })
		singleQ.Points = append(singleQ.Points, p)
		cfg.progressf("ablG queue single  locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p = cfg.best(func() Point { return runQueue(locales, true) })
		shardQ.Points = append(shardQ.Points, p)
		cfg.progressf("ablG queue sharded locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p = cfg.best(func() Point { return runStack(locales, false) })
		singleS.Points = append(singleS.Points, p)
		cfg.progressf("ablG stack single  locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p = cfg.best(func() Point { return runStack(locales, true) })
		shardS.Points = append(shardS.Points, p)
		cfg.progressf("ablG stack sharded locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p = cfg.best(func() Point { return runMap(locales, true) })
		localM.Points = append(localM.Points, p)
		cfg.progressf("ablG map local     locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runMap(locales, false) })
		randM.Points = append(randM.Points, p)
		cfg.progressf("ablG map random    locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)
	}
	queuePanel.Series = []Series{singleQ, shardQ}
	stackPanel.Series = []Series{singleS, shardS}
	mapPanel.Series = []Series{localM, randM}
	return Figure{
		ID:      "A7",
		Title:   "Ablation: single-home vs owner-sharded structures",
		Caption: "Sharding by owner keeps structure operations on the calling locale: the single-home queue/stack's home column in the comm matrix grows O(L) under weak scaling while the sharded versions' busiest column stays O(1), and HomeOf-routed hashmap gets perform zero remote events.",
		Panels:  []Panel{queuePanel, stackPanel, mapPanel},
	}
}

// a8HotKeys picks `count` keys that are all homed on locale 0 of the
// given map and fall into distinct sets of the replication cache.
// Homing every hot key on one locale concentrates the uncached
// traffic into a single matrix column — the clean O(L) hotspot the
// cache is supposed to erase — and one key per set makes the warmed
// cached runs a pure all-hit steady state (even a 2-way set holds at
// most two colliding hot keys, so the ablation removes the variable
// entirely).
func a8HotKeys(m hashmap.Map[int], ca cache.Cache[int], count int) []uint64 {
	keys := make([]uint64, 0, count)
	seen := make(map[int]bool, count)
	for k := uint64(0); len(keys) < count; k++ {
		if m.HomeOf(k) == 0 && !seen[ca.SetOf(k)] {
			seen[ca.SetOf(k)] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// AblationReplication measures the failure mode the owner-computed
// design leaves open — every Get on a hot key lands on its owner — and
// the read replication cache that closes it. Panel 1 is weak scaling
// of a hot-key get storm with all hot keys homed on locale 0: the
// uncached runs funnel every remote locale's gets into locale 0's
// matrix column, which grows O(L), while the cached runs (replicas
// warmed outside the measured window) serve every get locale-locally
// and the busiest column stays at the single coforall launch event.
// Panel 2 is the invalidation storm: readers hammer hot keys through
// the cache while writers mutate them (write-through broadcast
// invalidation) and reclaimers advance epochs — the crucible for the
// epoch-coherence claim, whose safety verdicts (zero UAF, deferred ==
// reclaimed) TestAblationA8 asserts via replicationStorm.
func AblationReplication(cfg Config) Figure {
	reps := cfg.ops(1 << 9)
	const hotKeys = 8
	const cacheSlots = 4 * hotKeys

	hotPanel := Panel{Title: "Hot-key gets per locale: owner-computed vs replicated (none)", XLabel: "Locales"}
	runHot := func(locales int, cached bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			m := hashmap.New[int](c, 8*locales, em)
			// Both arms build the view so both pick identical hot keys;
			// the uncached arm simply never routes through it.
			cv := m.Cached(c, cacheSlots)
			hot := a8HotKeys(m, cv.Cache(), hotKeys)
			em.Protect(c, func(tok *epoch.Token) {
				for _, k := range hot {
					m.Insert(c, tok, k, int(k))
				}
			})
			if cached {
				// Warm every replica outside the measured window: the
				// steady state under scrutiny is the all-hit regime, so
				// the one cold miss per (locale, key) is setup, exactly
				// like the inserts above.
				c.CoforallLocales(func(lc *pgas.Ctx) {
					em.Protect(lc, func(tok *epoch.Token) {
						for _, k := range hot {
							cv.Get(lc, tok, k)
						}
					})
				})
			}
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					em.Protect(lc, func(tok *epoch.Token) {
						for rep := 0; rep < reps; rep++ {
							k := hot[rep%hotKeys]
							if cached {
								cv.Get(lc, tok, k)
							} else {
								m.Get(lc, tok, k)
							}
						}
					})
				})
			})
			em.Clear(c)
		})
		pt.X = locales
		return pt
	}

	stormPanel := Panel{Title: "Invalidation storm: cached gets vs write-through mutations (none)", XLabel: "Locales"}
	uncached := Series{Label: "owner-computed gets (hot column)"}
	cachedS := Series{Label: "replicated gets (warmed cache)"}
	storm := Series{Label: "cached mix + invalidation storm"}
	for _, locales := range cfg.localeSweep(2) {
		p := cfg.best(func() Point { return runHot(locales, false) })
		uncached.Points = append(uncached.Points, p)
		cfg.progressf("ablH uncached locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p = cfg.best(func() Point { return runHot(locales, true) })
		cachedS.Points = append(cachedS.Points, p)
		cfg.progressf("ablH cached   locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p, _ = replicationStorm(cfg, locales)
		storm.Points = append(storm.Points, p)
		cfg.progressf("ablH storm    locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)
	}
	hotPanel.Series = []Series{uncached, cachedS}
	stormPanel.Series = []Series{storm}
	return Figure{
		ID:      "A8",
		Title:   "Ablation: hot-key read replication cache",
		Caption: "Owner-computed gets funnel hot-key traffic into the owner's matrix column, which grows O(L); per-locale replicas with epoch-coherent write-through invalidation serve repeat gets locally, pinning the busiest column at the single launch event while the poisoned heaps verify no cached read ever observes reclaimed memory.",
		Panels:  []Panel{hotPanel, stormPanel},
	}
}

// stormVerdict carries the safety evidence of one replicationStorm
// run: the poisoned-heap totals and the epoch manager's reclamation
// balance after the final clear.
type stormVerdict struct {
	Heap  gas.Stats
	Epoch epoch.Stats
}

// replicationStorm drives the seeded invalidation-storm scenario: on
// every locale one task issues a hot-key mix through a CachedView —
// mostly gets, with periodic write-through Upserts and Removes (each
// broadcasting invalidations) and periodic reclaim attempts, so cached
// reads race entry retirement and epoch advancement the whole run. It
// returns the timed Point and the safety verdicts: any use-after-free
// would be detected by the poisoned heaps, and every retired entry
// must be physically reclaimed by the end.
func replicationStorm(cfg Config, locales int) (Point, stormVerdict) {
	sys := cfg.newSystem(locales, comm.BackendNone)
	defer sys.Shutdown()
	ops := cfg.ops(1 << 11)
	const stormKeys = 16
	var pt Point
	var v stormVerdict
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := hashmap.New[int](c, 8*locales, em)
		cv := m.Cached(c, 64)
		em.Protect(c, func(tok *epoch.Token) {
			for k := uint64(0); k < stormKeys; k++ {
				m.Insert(c, tok, k, int(k))
			}
		})
		pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
			c.CoforallLocales(func(lc *pgas.Ctx) {
				tok := em.Register(lc)
				defer tok.Unregister(lc)
				for i := 0; i < ops; i++ {
					k := uint64(lc.RandIntn(stormKeys))
					switch {
					case i%16 == 0:
						cv.Upsert(lc, tok, k, i)
					case i%23 == 0:
						cv.Remove(lc, tok, k)
					default:
						cv.Get(lc, tok, k)
					}
					if i%128 == 0 {
						tok.TryReclaim(lc)
					}
				}
				lc.Flush() // ship this task's remaining invalidations
			})
		})
		em.Clear(c)
		v.Heap = sys.HeapStats()
		v.Epoch = em.Stats(c)
	})
	pt.X = locales
	return pt, v
}

// a9HotKeys picks `count` keys all homed on locale 0 of the map: the
// write storm funnels every locale's upserts toward one owner, the
// worst case write absorption is built to collapse. Unlike a8HotKeys
// there is no cache in play, so plain home-scanning suffices; callers
// slice the result into disjoint per-locale windows so the final map
// state is deterministic in both arms.
func a9HotKeys(m hashmap.Map[int], count int) []uint64 {
	keys := make([]uint64, 0, count)
	for k := uint64(0); len(keys) < count; k++ {
		if m.HomeOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// AblationWriteAbsorption isolates the two write-absorption layers
// stacked on top of plain aggregation. Panel 1 is a hot-key upsert
// storm against hashmap keys all homed on locale 0, each remote locale
// hammering its own small window of hot keys through UpsertAgg: with
// combining off every enqueued write ships and the owner replays
// O(ops) list CASes; with combining on, later writes to a key absorb
// into the buffered one, collapsing the shipped-op and owner-CAS
// totals to O(hot keys). Panel 2 is the same storm shape on aggregated
// Word64 Adds, where absorption merges deltas arithmetically instead
// of last-writer-wins. Both arms drain through the owner's flat
// combiner, so the delta between them is the in-flight absorption
// alone. Locale 0 does not write: its ops would execute inline (never
// enqueued) and blur the shipped/enqueued and CAS comparisons
// TestAblationA9 asserts.
func AblationWriteAbsorption(cfg Config) Figure {
	reps := cfg.ops(1 << 9)
	const hotKeys = 4

	upsertPanel := Panel{Title: "Hot-key upsert storm: shipped writes & owner CAS (none)", XLabel: "Locales"}
	runUpserts := func(locales int, combine bool) Point {
		sys := cfg.newSystemAgg(locales, comm.BackendNone, comm.AggConfig{Combine: combine})
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			em := epoch.NewEpochManager(c)
			m := hashmap.New[int](c, 8*locales, em)
			hot := a9HotKeys(m, hotKeys*locales)
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					if lc.Here() == 0 {
						return
					}
					mine := hot[lc.Here()*hotKeys : (lc.Here()+1)*hotKeys]
					for i := 0; i < reps; i++ {
						m.UpsertAgg(lc, mine[i%hotKeys], i)
					}
					lc.Flush()
				})
			})
			em.Clear(c)
		})
		pt.X = locales
		return pt
	}

	addPanel := Panel{Title: "Hot-word add storm: shipped deltas (none)", XLabel: "Locales"}
	runAdds := func(locales int, combine bool) Point {
		sys := cfg.newSystemAgg(locales, comm.BackendNone, comm.AggConfig{Combine: combine})
		defer sys.Shutdown()
		var pt Point
		sys.Run(func(c *pgas.Ctx) {
			words := make([]*pgas.Word64, hotKeys)
			for i := range words {
				words[i] = pgas.NewWord64(c, 0, 0)
			}
			pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
				c.CoforallLocales(func(lc *pgas.Ctx) {
					if lc.Here() == 0 {
						return
					}
					b := lc.Aggregator(0)
					for i := 0; i < reps; i++ {
						b.Add(words[i%hotKeys], 1)
					}
					lc.Flush()
				})
			})
		})
		pt.X = locales
		return pt
	}

	plainU := Series{Label: "uncombined upserts (ship every write)"}
	combU := Series{Label: "combined upserts (absorbed in flight)"}
	plainA := Series{Label: "uncombined adds (ship every delta)"}
	combA := Series{Label: "combined adds (merged deltas)"}
	for _, locales := range cfg.localeSweep(2) {
		p := cfg.best(func() Point { return runUpserts(locales, false) })
		plainU.Points = append(plainU.Points, p)
		cfg.progressf("ablI upsert plain locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runUpserts(locales, true) })
		combU.Points = append(combU.Points, p)
		cfg.progressf("ablI upsert comb  locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runAdds(locales, false) })
		plainA.Points = append(plainA.Points, p)
		cfg.progressf("ablI add plain    locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return runAdds(locales, true) })
		combA.Points = append(combA.Points, p)
		cfg.progressf("ablI add comb     locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)
	}
	upsertPanel.Series = []Series{plainU, combU}
	addPanel.Series = []Series{plainA, combA}
	return Figure{
		ID:      "A9",
		Title:   "Ablation: write absorption (in-flight combining + owner-side flat combining)",
		Caption: "Under a hot-key write storm, in-flight combining absorbs repeat writes to a key inside the source's aggregation buffer, so shipped ops and the owner's CAS work scale with the hot-key count instead of the write count; both arms drain through the owner's flat combiner, which serializes the replay and keeps CAS retries at zero.",
		Panels:  []Panel{upsertPanel, addPanel},
	}
}

// a10WindowKeys picks one hot key per (window, writer locale) pair,
// every key homed on locale 0 and every key in a distinct bucket —
// the moving hot set: each window the storm drops its old keys and
// hammers fresh ones, so a static-ownership run funnels every window's
// traffic into locale 0's column while a rebalanced run can keep
// handing the hot buckets away. Distinct buckets make each migration's
// payload exactly one entry, which pins the moved-bytes arithmetic.
//
// Within a window the keys are sorted by bucket index so that the
// controller's candidate order (heat ties break entry-ascending) lines
// up with its cold-destination order (delta ties break locale-
// ascending, i.e. 1..L-1): writer locale j's bucket migrates to locale
// j, its writes turn local, and the window goes quiet after one
// migration round instead of chasing its own traffic around.
func a10WindowKeys(m hashmap.Map[int], locales, windows int) [][]uint64 {
	used := make(map[int]bool)
	keys := make([][]uint64, windows)
	k := uint64(0)
	for w := range keys {
		for len(keys[w]) < locales-1 {
			if e := m.BucketOf(k); m.HomeOf(k) == 0 && !used[e] {
				used[e] = true
				keys[w] = append(keys[w], k)
			}
			k++
		}
		sort.Slice(keys[w], func(i, j int) bool {
			return m.BucketOf(keys[w][i]) < m.BucketOf(keys[w][j])
		})
	}
	return keys
}

// rebalanceVerdict carries the evidence of one movingHotStorm run:
// the controller's own books, the comm counter deltas they must
// reconcile with, and the safety verdicts.
type rebalanceVerdict struct {
	Ctrl  rebalance.Stats
	Comm  comm.Snapshot
	Heap  gas.Stats
	Epoch epoch.Stats
}

// a10 storm geometry, shared by both arms and by TestAblationA10's
// arithmetic: each of `a10Windows` windows hammers a fresh hot-key set
// for `a10Quanta` quanta, each writer flushing every `a10FlushEvery`
// writes so the comm matrix sees several flush events per quantum (at
// test scale: 7 — six full batches plus the trailing partial flush).
const (
	a10Windows    = 3
	a10Quanta     = 10
	a10FlushEvery = 4
)

// movingHotStorm drives the moving-hot-set write storm: every locale
// but 0 hammers its own hot key through the owner-table-routed view,
// all hot buckets homed on locale 0, and the hot set jumps to fresh
// buckets (still homed on 0) at every window boundary. The rebalanced
// arm steps a rebalance.Controller once per quantum — inline, from
// the orchestrating task, so the run is deterministic — which detects
// locale 0's over-ratio column at each window's first quantum and
// hands the hot buckets to cold locales; the static arm never steps
// it. Locale 0 does not write: its ops would execute inline and blur
// the column comparison.
func movingHotStorm(cfg Config, locales int, rebalanced bool) (Point, rebalanceVerdict) {
	sys := cfg.newSystemAgg(locales, comm.BackendNone, comm.AggConfig{})
	defer sys.Shutdown()
	reps := cfg.ops(1 << 9)
	var pt Point
	var v rebalanceVerdict
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := hashmap.New[int](c, 16*locales, em)
		rv := m.Rebalanced(c)
		hot := a10WindowKeys(m, locales, a10Windows)
		em.Protect(c, func(tok *epoch.Token) {
			for _, ks := range hot {
				for _, k := range ks {
					m.Insert(c, tok, k, int(k))
				}
			}
		})
		// Anchor the controller after setup so the load traffic never
		// counts as imbalance. MinEvents 8 admits a window-opening
		// quantum even at 2 locales (7 flush events + 1 launch) while
		// ignoring launch-and-handoff residue; MaxMoves covers every
		// writer's bucket in one window.
		ctrl := rebalance.NewController(c, rv, rebalance.Config{
			Ratio:     1.5,
			MinEvents: 8,
			MaxMoves:  locales,
			Cooldown:  1,
		})
		pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
			for w := 0; w < a10Windows; w++ {
				for q := 0; q < a10Quanta; q++ {
					c.CoforallLocales(func(lc *pgas.Ctx) {
						if lc.Here() == 0 {
							return
						}
						k := hot[w][lc.Here()-1]
						for i := 0; i < reps; i++ {
							rv.UpsertAgg(lc, k, i)
							if (i+1)%a10FlushEvery == 0 {
								lc.Flush()
							}
						}
						lc.Flush()
					})
					if rebalanced {
						ctrl.Step(c)
					}
				}
			}
		})
		em.Clear(c)
		v.Ctrl = ctrl.Stats()
		v.Comm = sys.Counters().Snapshot()
		v.Heap = sys.HeapStats()
		v.Epoch = em.Stats(c)
	})
	pt.X = locales
	return pt, v
}

// AblationRebalancing measures the gap static ownership leaves open —
// a hot set that keeps moving to fresh buckets homed on one locale
// funnels every window's writes into that locale's inbound column —
// and the dynamic rebalancing that closes it: the controller reads the
// same windowed matrix columns the diagnostics already maintain,
// detects the over-ratio source, and migrates the hot buckets (with
// their contents, via the epoch-coherent handoff) to cold locales, so
// the busiest column stays bounded by the per-window burst instead of
// accumulating the whole run. TestAblationA10 asserts the bound, the
// static arm's O(L) growth, and the exact migration books.
func AblationRebalancing(cfg Config) Figure {
	panel := Panel{Title: "Moving hot set: busiest inbound column (none)", XLabel: "Locales"}
	static := Series{Label: "static ownership (column accumulates)"}
	dynamic := Series{Label: "rebalanced (hot buckets migrate off)"}
	for _, locales := range cfg.localeSweep(2) {
		p, _ := movingHotStorm(cfg, locales, false)
		static.Points = append(static.Points, p)
		cfg.progressf("ablJ static     locales=%-3d %8.4fs  hotCol=%-8d [%v]\n", locales, p.Seconds, p.MaxInbound, p.Comm)

		p, vd := movingHotStorm(cfg, locales, true)
		dynamic.Points = append(dynamic.Points, p)
		cfg.progressf("ablJ rebalanced locales=%-3d %8.4fs  hotCol=%-8d migs=%d [%v]\n",
			locales, p.Seconds, p.MaxInbound, vd.Ctrl.Migrations, p.Comm)
	}
	panel.Series = []Series{static, dynamic}
	return Figure{
		ID:      "A10",
		Title:   "Ablation: dynamic hot-shard rebalancing",
		Caption: "A moving hot set defeats any static placement: every window's writes funnel into the hot buckets' home column, which grows with locales and run length. The rebalance controller reads the windowed comm-matrix deltas, detects the over-ratio source, and migrates the hot buckets through the epoch-coherent ownership handoff, bounding the busiest inbound column near the per-window burst while the poisoned heaps verify no in-flight reader ever observes reclaimed bucket memory.",
		Panels:  []Panel{panel},
	}
}

// a11 crash-storm geometry, shared by both arms and by
// TestAblationA11's arithmetic: a11PreQuanta healthy quanta, then the
// victim locale crashes, then a11PostQuanta quanta against the
// crashed cluster. Every writer hammers one victim-homed key, turning
// every a11RemoveEvery-th write into a removal so deferred deletions
// flow the whole run; each quantum ends quiescent (coforall join +
// flush) with one inline TryReclaim, so advance/advance-fail counts
// are exact.
const (
	a11PreQuanta   = 4
	a11PostQuanta  = 6
	a11RemoveEvery = 4
)

// a11Victim is the crashed locale: not 0 (locale 0 hosts the global
// epoch word and the orchestrating task, and cannot crash).
const a11Victim = 1

// crashVerdict carries the evidence of one crashStorm run: the
// failover books (shards adopted, bytes moved, tokens force-retired),
// the comm counters they must reconcile with — OpsLost being the
// availability headline — and the safety verdicts.
type crashVerdict struct {
	Shards int64
	Bytes  int64
	Tokens int64
	Comm   comm.Snapshot
	Heap   gas.Stats
	Epoch  epoch.Stats
}

// a11VictimKeys picks one hot key per writer locale (every locale but
// the victim), all homed on the victim and each in a distinct bucket,
// so the whole storm funnels into the locale that is about to die and
// each failover adoption moves exactly one hot entry.
func a11VictimKeys(m hashmap.Map[int], locales int) []uint64 {
	used := make(map[int]bool)
	var keys []uint64
	for k := uint64(0); len(keys) < locales-1; k++ {
		if e := m.BucketOf(k); m.HomeOf(k) == a11Victim && !used[e] {
			used[e] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// crashStorm drives the crash-under-hot-load scenario: every locale
// but the victim hammers its own victim-homed key through the
// owner-table-routed view (combine off, so refused ops count
// one-for-one), with every a11RemoveEvery-th write a removal that
// defers a node. After a11PreQuanta quanta the victim strands one
// pinned token (the pin a fail-stop kill leaves behind), the epoch
// advances once more so the pin goes stale, and the victim is marked
// dead. The failover arm then adopts the victim's buckets onto the
// survivors and force-retires the stranded token before the storm
// resumes; the wedged arm resumes immediately. Both arms run
// a11PostQuanta more quanta: wedged, every write toward the dead owner
// drains to the lost-ops ledger and every epoch election fails on the
// stale pin; failed over, writes follow the republished owner table
// and elections succeed. All control flow is inline from the
// orchestrating task between quiescent quanta, so both arms replay
// exactly.
func crashStorm(cfg Config, locales int, failover bool) (Point, crashVerdict) {
	sys := cfg.newSystemAgg(locales, comm.BackendNone, comm.AggConfig{})
	defer sys.Shutdown()
	reps := cfg.ops(1 << 9)
	var pt Point
	var v crashVerdict
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := hashmap.New[int](c, 16*locales, em)
		rv := m.Rebalanced(c)
		keys := a11VictimKeys(m, locales)
		em.Protect(c, func(tok *epoch.Token) {
			for _, k := range keys {
				m.Insert(c, tok, k, int(k))
			}
		})
		quantum := func() {
			c.CoforallLocales(func(lc *pgas.Ctx) {
				if lc.Here() == a11Victim {
					return
				}
				idx := lc.Here()
				if idx > a11Victim {
					idx--
				}
				k := keys[idx]
				for i := 0; i < reps; i++ {
					if (i+1)%a11RemoveEvery == 0 {
						rv.RemoveAgg(lc, k)
						lc.Flush()
					} else {
						rv.UpsertAgg(lc, k, i)
					}
				}
				lc.Flush()
			})
			em.TryReclaim(c)
		}
		pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
			for q := 0; q < a11PreQuanta; q++ {
				quantum()
			}
			// The crash: strand the pin, stale it with one advance, kill.
			c.On(a11Victim, func(vc *pgas.Ctx) { em.Pin(vc) })
			em.TryReclaim(c)
			if err := sys.Crash(a11Victim); err != nil {
				panic(err)
			}
			if failover {
				sc := c.Salvage()
				v.Shards, v.Bytes = rv.Failover(sc, a11Victim)
				v.Tokens = em.ForceRetire(sc, a11Victim)
				sc.Flush()
			}
			for q := 0; q < a11PostQuanta; q++ {
				quantum()
			}
		})
		em.Clear(c)
		v.Comm = sys.Counters().Snapshot()
		v.Heap = sys.HeapStats()
		v.Epoch = em.Stats(c)
	})
	pt.X = locales
	return pt, v
}

// AblationCrashFailover measures what a fail-stop locale loss costs
// with and without the recovery protocol. Without failover the cluster
// keeps the dead locale's shards on its books: every write toward them
// drains to the lost-ops ledger — growing linearly with survivors,
// post-crash quanta and write rate — and the stranded pin blocks every
// epoch election, so reclamation wedges for the rest of the run. With
// failover the survivors adopt the dead locale's buckets through the
// epoch-coherent handoff and the stranded pin is force-retired: writes
// resume against the republished owner table with zero further loss
// and every election succeeds. TestAblationA11 asserts the wedged
// arm's exact loss arithmetic, the failover arm's zero post-recovery
// loss, the adoption books, and that both arms still end heap-safe
// with deferred == reclaimed.
func AblationCrashFailover(cfg Config) Figure {
	panel := Panel{Title: "Locale crash under hot load: ops lost (none)", XLabel: "Locales"}
	wedged := Series{Label: "no failover (ledger grows, reclamation wedged)"}
	recovered := Series{Label: "failover (shards adopted, pins force-retired)"}
	for _, locales := range cfg.localeSweep(2) {
		p, vd := crashStorm(cfg, locales, false)
		wedged.Points = append(wedged.Points, p)
		cfg.progressf("ablK wedged   locales=%-3d %8.4fs  lost=%-8d advFail=%d [%v]\n",
			locales, p.Seconds, vd.Comm.OpsLost, vd.Epoch.AdvanceFail, p.Comm)

		p, vd = crashStorm(cfg, locales, true)
		recovered.Points = append(recovered.Points, p)
		cfg.progressf("ablK failover locales=%-3d %8.4fs  lost=%-8d adopted=%d retired=%d [%v]\n",
			locales, p.Seconds, vd.Comm.OpsLost, vd.Shards, vd.Tokens, p.Comm)
	}
	panel.Series = []Series{wedged, recovered}
	return Figure{
		ID:      "A11",
		Title:   "Ablation: crash failover vs wedged reclamation",
		Caption: "A fail-stop locale crash leaves two poisons: its shards keep absorbing (and losing) every write routed at them, and its stranded epoch pins block every advance election, wedging reclamation system-wide. The failover protocol adopts the dead locale's buckets onto the survivors through the same epoch-coherent handoff rebalancing uses and force-retires the stranded pins, after which writes follow the republished owner table with zero further loss and reclamation proceeds — while the poisoned heaps verify the recovery never freed memory a surviving reader could still observe.",
		Panels:  []Panel{panel},
	}
}

// a12 flash-partition geometry, shared by both arms and by
// TestAblationA12's arithmetic: a12PreQuanta healthy quanta, then the
// pair (a12PairA, a12PairB) severs, a12SevQuanta quanta run against
// the partition, the pair heals (pumping the retry ledgers
// synchronously), and a12PostQuanta quanta close the run. Each quantum
// ends quiescent (coforall join + flush), so the refused-op count is
// exact: the two pair locales each aim their whole per-quantum budget
// across the severed link while every other locale writes around it.
const (
	a12PreQuanta  = 2
	a12SevQuanta  = 4
	a12PostQuanta = 2
)

// The severed pair. Neither end is locale 0: the orchestrating task
// lives there and its traffic should stay healthy in both arms.
const (
	a12PairA = 1
	a12PairB = 2
)

// partitionVerdict carries the evidence of one flashPartition run: the
// comm counters (the retry ledger books and the lost-ops ledger are
// the headline) plus the safety verdicts.
type partitionVerdict struct {
	Comm  comm.Snapshot
	Heap  gas.Stats
	Epoch epoch.Stats
}

// a12KeyHomedOn returns the smallest key the map homes on `home`.
func a12KeyHomedOn(m hashmap.Map[int], home int) uint64 {
	for k := uint64(0); ; k++ {
		if m.HomeOf(k) == home {
			return k
		}
	}
}

// flashPartition drives the transient-fault scenario: every locale
// writes its per-quantum budget at a fixed peer through the aggregated
// path (combine off, so refused ops count one-for-one) — locale
// a12PairA at a key homed on a12PairB, a12PairB back at a12PairA, and
// everyone else around the ring, clear of the pair. After the healthy
// quanta the pair severs; during the severed quanta both pair locales'
// entire budgets hit the refusal site. With the retry plane enabled
// (deadline far past the run) every refused op parks and the heal
// redelivers all of them; with the plane disabled every refused op
// drains straight to the lost-ops ledger, O(rate × duration). All
// control flow is inline from the orchestrating task between quiescent
// quanta, so both arms replay exactly.
func flashPartition(cfg Config, locales int, retry bool) (Point, partitionVerdict) {
	park := comm.ParkConfig{DeadlineNS: int64(time.Hour), Capacity: 1 << 16}
	if !retry {
		park = comm.ParkConfig{Disable: true}
	}
	sys := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: comm.BackendNone,
		Latency: cfg.Latency,
		Seed:    cfg.Seed,
		Park:    park,
	})
	defer sys.Shutdown()
	reps := cfg.ops(1 << 9)
	var pt Point
	var v partitionVerdict
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := hashmap.New[int](c, 16*locales, em)
		// One target key per locale: the pair aim at each other, the
		// rest at their ring successor (skipping nothing — the ring
		// only crosses the severed link at the pair itself).
		targets := make([]uint64, locales)
		for lc := 0; lc < locales; lc++ {
			peer := (lc + 1) % locales
			switch lc {
			case a12PairA:
				peer = a12PairB
			case a12PairB:
				peer = a12PairA
			}
			targets[lc] = a12KeyHomedOn(m, peer)
		}
		em.Protect(c, func(tok *epoch.Token) {
			for _, k := range targets {
				m.Insert(c, tok, k, int(k))
			}
		})
		quantum := func() {
			c.CoforallLocales(func(lc *pgas.Ctx) {
				k := targets[lc.Here()]
				for i := 0; i < reps; i++ {
					m.UpsertAgg(lc, k, i)
				}
				lc.Flush()
			})
		}
		pt.Seconds, pt.Comm, pt.Matrix, pt.MaxInbound = timedMatrix(sys, func() {
			for q := 0; q < a12PreQuanta; q++ {
				quantum()
			}
			if err := sys.Sever(a12PairA, a12PairB); err != nil {
				panic(err)
			}
			for q := 0; q < a12SevQuanta; q++ {
				quantum()
			}
			// Heal pumps the retry ledgers synchronously: every parked
			// op redelivers before the next quantum issues.
			if err := sys.Heal(a12PairA, a12PairB); err != nil {
				panic(err)
			}
			for q := 0; q < a12PostQuanta; q++ {
				quantum()
			}
		})
		em.Clear(c)
		v.Comm = sys.Counters().Snapshot()
		v.Heap = sys.HeapStats()
		v.Epoch = em.Stats(c)
	})
	pt.X = locales
	return pt, v
}

// AblationPartitionRetry measures what a transient network partition
// costs with and without the retry/backoff plane. Disabled, every op
// refused across the severed pair drains to the lost-ops ledger for as
// long as the partition lasts — O(rate × duration), indistinguishable
// on the books from a crash. Enabled, refused ops park in the
// per-locale retry ledgers and the heal redelivers all of them: the
// settlement identity OpsParked == OpsRedelivered + OpsExpired closes
// with zero expiries and zero losses. TestAblationA12 asserts both
// arms' exact arithmetic.
func AblationPartitionRetry(cfg Config) Figure {
	panel := Panel{Title: "Flash partition: ops lost (none)", XLabel: "Locales"}
	dropped := Series{Label: "retry disabled (every refused op lost: O(rate × duration))"}
	parked := Series{Label: "retry/backoff (parked, redelivered at heal)"}
	for _, locales := range cfg.localeSweep(4) {
		p, vd := flashPartition(cfg, locales, false)
		dropped.Points = append(dropped.Points, p)
		cfg.progressf("ablL dropped locales=%-3d %8.4fs  lost=%-8d [%v]\n",
			locales, p.Seconds, vd.Comm.OpsLost, p.Comm)

		p, vd = flashPartition(cfg, locales, true)
		parked.Points = append(parked.Points, p)
		cfg.progressf("ablL retried locales=%-3d %8.4fs  lost=%-8d parked=%d redelivered=%d [%v]\n",
			locales, p.Seconds, vd.Comm.OpsLost, vd.Comm.OpsParked, vd.Comm.OpsRedelivered, p.Comm)
	}
	panel.Series = []Series{dropped, parked}
	return Figure{
		ID:      "A12",
		Title:   "Ablation: partition retry plane vs fail-stop refusal",
		Caption: "A transient partition is not a crash, but without a retry plane the books cannot tell the difference: every op refused across the severed pair drains to the lost-ops ledger for the whole outage, O(rate × duration). The retry plane parks refused ops in bounded per-locale ledgers with exponential backoff and redelivers them through the normal aggregation path when the pair heals — the settlement identity OpsParked == OpsRedelivered + OpsExpired closes with zero losses, reserving the fail-stop ledger for actual crashes.",
		Panels:  []Panel{panel},
	}
}

// Ablations runs every ablation study.
func Ablations(cfg Config) []Figure {
	return []Figure{
		AblationCompression(cfg),
		AblationPrivatization(cfg),
		AblationScatter(cfg),
		AblationLimboPush(cfg),
		AblationReclamation(cfg),
		AblationAggregation(cfg),
		AblationSharding(cfg),
		AblationReplication(cfg),
		AblationWriteAbsorption(cfg),
		AblationRebalancing(cfg),
		AblationCrashFailover(cfg),
		AblationPartitionRetry(cfg),
	}
}
