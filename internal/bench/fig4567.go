package bench

import (
	"fmt"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Figures 4–7: EpochManager scalability, the paper's Listing 5
// microbenchmark under four regimes:
//
//	Fig 4 — deletion with tryReclaim once per 1024 iterations (sparse)
//	Fig 5 — deletion with tryReclaim every iteration (dense)
//	Fig 6 — deletion with reclamation only at the end (clear)
//	Fig 7 — read-only pin/unpin, no deletion at all
//
// Figures 4–6 have three panels varying the fraction of *remote*
// objects (allocated on a different locale than the task that
// defer-deletes them): 0%, 50%, 100%. Every panel compares the two
// network-atomic backends.

type workerState struct{ v int }

// buildObjs allocates n objects cyclically: iteration i is executed on
// locale i % L, and its object is placed on that locale (local) or a
// uniformly random *other* locale (remote) according to remotePct.
func buildObjs(c *pgas.Ctx, n int, remotePct int) []gas.Addr {
	L := c.NumLocales()
	objs := make([]gas.Addr, n)
	for i := range objs {
		owner := i % L
		target := owner
		if L > 1 && c.RandIntn(100) < remotePct {
			target = c.RandIntn(L - 1)
			if target >= owner {
				target++
			}
		}
		objs[i] = c.AllocOn(target, &workerState{v: i})
	}
	return objs
}

// runDeletion executes the Listing 5 loop: forall over the objects
// with a task-private token; pin, deferDelete, unpin, and tryReclaim
// every reclaimEvery iterations (0 disables in-loop reclamation). The
// final manager.Clear() is part of the timed region, as in Listing 5.
func (cfg Config) runDeletion(locales, numObjects, remotePct, reclaimEvery int, backend comm.Backend) Point {
	sys := cfg.newSystem(locales, backend)
	defer sys.Shutdown()
	var secs float64
	var snap comm.Snapshot
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		objs := buildObjs(c, numObjects, remotePct)
		type taskPriv struct {
			tok *epoch.Token
			m   int
		}
		secs, snap = timed(sys, func() {
			pgas.ForallCyclic(c, numObjects, cfg.TasksPerLocale,
				func(tc *pgas.Ctx) *taskPriv {
					return &taskPriv{tok: em.Register(tc)}
				},
				func(tc *pgas.Ctx, p *taskPriv, i int) {
					p.tok.Pin(tc)
					p.tok.DeferDelete(tc, objs[i])
					p.tok.Unpin(tc)
					p.m++
					if reclaimEvery > 0 && p.m%reclaimEvery == 0 {
						p.tok.TryReclaim(tc)
					}
				},
				func(tc *pgas.Ctx, p *taskPriv) { p.tok.Unregister(tc) },
			)
			em.Clear(c) // reclaim everything at the end
		})
		if st := em.Stats(c); st.Reclaimed != int64(numObjects) {
			panic(fmt.Sprintf("bench: reclaimed %d of %d objects", st.Reclaimed, numObjects))
		}
	})
	return Point{X: locales, Seconds: secs, Comm: snap}
}

// runPinUnpin executes the Figure 7 read-only loop.
func (cfg Config) runPinUnpin(locales, iters int, backend comm.Backend) Point {
	sys := cfg.newSystem(locales, backend)
	defer sys.Shutdown()
	var secs float64
	var snap comm.Snapshot
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		secs, snap = timed(sys, func() {
			pgas.ForallCyclic(c, iters, cfg.TasksPerLocale,
				func(tc *pgas.Ctx) *epoch.Token { return em.Register(tc) },
				func(tc *pgas.Ctx, tok *epoch.Token, i int) {
					tok.Pin(tc)
					tok.Unpin(tc)
				},
				func(tc *pgas.Ctx, tok *epoch.Token) { tok.Unregister(tc) },
			)
		})
	})
	return Point{X: locales, Seconds: secs, Comm: snap}
}

// deletionFigure builds one of Figures 4–6.
func (cfg Config) deletionFigure(id, title string, reclaimEvery int) Figure {
	numObjects := cfg.ops(1 << 14)
	fig := Figure{
		ID:    id,
		Title: title,
		Caption: fmt.Sprintf("Listing 5 deletion loop over %d cyclically distributed objects, %d tasks per locale; reclaim cadence: %s.",
			numObjects, cfg.TasksPerLocale, cadence(reclaimEvery)),
	}
	for _, remotePct := range []int{0, 50, 100} {
		panel := Panel{
			Title:  fmt.Sprintf("%d%% Remote Objects", remotePct),
			XLabel: "Locales",
		}
		for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
			s := Series{Label: backend.String()}
			for _, locales := range cfg.localeSweep(2) {
				p := cfg.best(func() Point {
					return cfg.runDeletion(locales, numObjects, remotePct, reclaimEvery, backend)
				})
				s.Points = append(s.Points, p)
				cfg.progressf("fig%s %3d%% remote %-5s locales=%-3d %8.4fs  [%v]\n",
					id, remotePct, backend, locales, p.Seconds, p.Comm)
			}
			panel.Series = append(panel.Series, s)
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig
}

func cadence(every int) string {
	switch {
	case every == 1:
		return "every iteration (dense)"
	case every > 1:
		return fmt.Sprintf("every %d iterations (sparse)", every)
	default:
		return "only at the end (clear)"
	}
}

// Figure4 regenerates "Pin-Unpin w/ Sparse tryReclaim" (per 1024).
func Figure4(cfg Config) Figure {
	return cfg.deletionFigure("4", "Deletion with tryReclaim called once per 1024 iterations", 1024)
}

// Figure5 regenerates "Pin-Unpin w/ Dense tryReclaim" (every iteration).
func Figure5(cfg Config) Figure {
	return cfg.deletionFigure("5", "Deletion with tryReclaim called every iteration", 1)
}

// Figure6 regenerates "Pin-Unpin w/ Deletion + Cleanup" (reclaim at end).
func Figure6(cfg Config) Figure {
	return cfg.deletionFigure("6", "Deletion with reclamation only performed at end", 0)
}

// Figure7 regenerates the read-only pin/unpin workload.
func Figure7(cfg Config) Figure {
	iters := cfg.ops(1 << 16)
	panel := Panel{Title: "Pin-Unpin", XLabel: "Locales"}
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		s := Series{Label: backend.String()}
		for _, locales := range cfg.localeSweep(1) {
			p := cfg.best(func() Point { return cfg.runPinUnpin(locales, iters, backend) })
			s.Points = append(s.Points, p)
			cfg.progressf("fig7 %-5s locales=%-3d %8.4fs  [%v]\n", backend, locales, p.Seconds, p.Comm)
		}
		panel.Series = append(panel.Series, s)
	}
	return Figure{
		ID:      "7",
		Title:   "Read-only workload without deletion",
		Caption: fmt.Sprintf("Pin/unpin loop over %d iterations; privatization keeps the loop communication-free, so curves stay flat.", iters),
		Panels:  []Panel{panel},
	}
}
