// Package bench regenerates every measured figure of the paper's
// evaluation (Figures 3–7) plus the ablation studies DESIGN.md calls
// out. Each figure function builds fresh Systems per sweep point, runs
// the workload the paper describes, and reports both wall time and the
// deterministic communication counters.
//
// Two caveats, recorded here and in EXPERIMENTS.md, follow from
// running a 64-node Cray simulation on one machine:
//
//   - Injected latencies are busy-wait (spin-yield) delays because this
//     host's sleep granularity (~1.2 ms) would crush the microsecond
//     regime ordering. Spinning shares the CPUs, so wall time measures
//     aggregate simulated cost on fixed cores rather than true
//     parallel speedup; curve *separation* (ugni vs none, ABA vs
//     plain, dense vs sparse) is preserved, absolute
//     speedup-vs-locales is not.
//   - Communication counters are exact and hardware-independent; they
//     are the primary reproduction evidence for the scaling claims
//     (e.g. pin/unpin performs zero communication at any locale count).
package bench

import (
	"fmt"
	"io"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

// Config controls sweep sizes. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Scale multiplies every operation count; 1.0 is the calibrated
	// default that completes the full sweep in a few minutes.
	Scale float64
	// TasksPerLocale is the task fan-out used by distributed loops.
	TasksPerLocale int
	// MaxLocales caps the locale sweep (the paper uses 64).
	MaxLocales int
	// MaxSharedTasks caps the shared-memory task sweep (paper: 32).
	MaxSharedTasks int
	// Latency is the injected-delay profile for timed runs.
	Latency comm.LatencyProfile
	// Seed drives all workload randomness.
	Seed uint64
	// Repeats runs each sweep point this many times and keeps the
	// fastest, suppressing GC and scheduler noise spikes.
	Repeats int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Scale:          1.0,
		TasksPerLocale: 2,
		MaxLocales:     64,
		MaxSharedTasks: 32,
		Latency:        comm.DefaultProfile(),
		Seed:           0xD15C0,
		Repeats:        3,
	}
}

// best runs the point measurement cfg.Repeats times and returns the
// fastest run (standard microbenchmark practice; the slower runs are
// GC or scheduler artifacts of the simulation host, not the system
// under test).
func (cfg Config) best(run func() Point) Point {
	n := cfg.Repeats
	if n < 1 {
		n = 1
	}
	var bestPt Point
	for i := 0; i < n; i++ {
		p := run()
		if i == 0 || p.Seconds < bestPt.Seconds {
			bestPt = p
		}
	}
	return bestPt
}

// ops scales a base operation count.
func (cfg Config) ops(base int) int {
	n := int(float64(base) * cfg.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// localeSweep returns the powers of two 'from'..MaxLocales.
func (cfg Config) localeSweep(from int) []int {
	var out []int
	for l := from; l <= cfg.MaxLocales; l *= 2 {
		out = append(out, l)
	}
	return out
}

func (cfg Config) taskSweep() []int {
	var out []int
	for t := 1; t <= cfg.MaxSharedTasks; t *= 2 {
		out = append(out, t)
	}
	return out
}

func (cfg Config) progressf(format string, args ...any) {
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, format, args...)
	}
}

// Point is one measurement: x (tasks or locales), wall-clock seconds,
// and the communication performed during the timed region.
type Point struct {
	X       int
	Seconds float64
	Comm    comm.Snapshot

	// Matrix, when non-nil, is the (source, destination) locale-pair
	// event delta of the timed region — captured by figures that make
	// per-pair claims (A7's hotspot argument) and dumped by the
	// benchrunner's -matrix CSV.
	Matrix [][]int64

	// MaxInbound is the busiest destination column total of Matrix:
	// the hotspot metric (how much of the system's traffic lands on
	// one locale). Zero when Matrix was not captured.
	MaxInbound int64
}

// Series is one labelled curve.
type Series struct {
	Label  string
	Points []Point
}

// Panel is one plot: several curves over a shared x axis.
type Panel struct {
	Title  string
	XLabel string
	Series []Series
}

// Figure is one of the paper's figures (or an ablation study).
type Figure struct {
	ID      string
	Title   string
	Caption string
	Panels  []Panel
}

// timed runs fn and returns elapsed seconds plus the comm delta.
func timed(sys *pgas.System, fn func()) (float64, comm.Snapshot) {
	before := sys.Counters().Snapshot()
	start := time.Now()
	fn()
	secs := time.Since(start).Seconds()
	return secs, sys.Counters().Snapshot().Sub(before)
}

// timedMatrix is timed plus the locale-pair matrix delta and its
// busiest inbound column, for figures that argue about hotspots.
func timedMatrix(sys *pgas.System, fn func()) (float64, comm.Snapshot, [][]int64, int64) {
	beforeM := sys.Matrix().Snapshot()
	secs, snap := timed(sys, fn)
	delta := SubMatrix(sys.Matrix().Snapshot(), beforeM)
	return secs, snap, delta, MaxInboundOf(delta)
}

// SubMatrix returns the element-wise difference a - b of two comm
// matrix snapshots — the per-pair delta of a timed or measured region.
// Exported for the workload engine, which captures the same evidence
// per phase.
func SubMatrix(a, b [][]int64) [][]int64 {
	out := make([][]int64, len(a))
	for i := range a {
		out[i] = make([]int64, len(a[i]))
		for j := range a[i] {
			out[i][j] = a[i][j] - b[i][j]
		}
	}
	return out
}

// TotalsOf returns the outbound (row) and inbound (column) totals of a
// comm matrix snapshot from one pass over the cells — the snapshot-side
// twin of comm.Matrix.Totals, for deltas produced by SubMatrix. The
// workload engine's hotspot metric and the examples' traffic summaries
// both derive from this single pass.
func TotalsOf(m [][]int64) (rows, cols []int64) {
	rows = make([]int64, len(m))
	cols = make([]int64, len(m))
	for i := range m {
		for j := range m[i] {
			rows[i] += m[i][j]
			cols[j] += m[i][j]
		}
	}
	return rows, cols
}

// MaxInboundOf returns the largest inbound (column) total of m: the
// hotspot metric — how much of the system's traffic lands on the
// busiest single locale.
func MaxInboundOf(m [][]int64) int64 {
	_, cols := TotalsOf(m)
	var best int64
	for _, col := range cols {
		if col > best {
			best = col
		}
	}
	return best
}

// newSystem builds a benchmark system.
func (cfg Config) newSystem(locales int, backend comm.Backend) *pgas.System {
	return cfg.newSystemAgg(locales, backend, comm.AggConfig{})
}

// newSystemAgg builds a benchmark system with an explicit aggregation
// policy — the write-absorption ablation flips Combine per arm.
func (cfg Config) newSystemAgg(locales int, backend comm.Backend, agg comm.AggConfig) *pgas.System {
	return pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: backend,
		Latency: cfg.Latency,
		Seed:    cfg.Seed,
		Agg:     agg,
	})
}
