package bench

import (
	"sync"

	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/core/hazard"
	"gopgas/internal/pgas"
)

// AblationReclamation compares the paper's epoch-based reclamation
// against the PGAS-adapted Hazard Pointers baseline (Michael 2004,
// cited by the paper as shared-memory prior work) on an identical
// read-mostly churn workload: readers on every locale repeatedly
// dereference a shared cell homed on locale 0 while one writer swaps
// in fresh objects and retires the old ones.
//
// The structural difference under measurement: an EBR read is
// pin (local) + 1 cell read + deref; an HP read is
// publish + 2 cell reads (validate) + deref — one extra network
// operation per access when the cell is remote, against HP's tighter
// garbage bound.
func AblationReclamation(cfg Config) Figure {
	opsPerReader := cfg.ops(1 << 11)
	panel := Panel{Title: "Shared-cell churn, readers on every locale (none backend)", XLabel: "Locales"}
	ebr := Series{Label: "EpochManager (EBR)"}
	hp := Series{Label: "Hazard Pointers"}

	run := func(locales int, useHP bool) Point {
		sys := cfg.newSystem(locales, comm.BackendNone)
		defer sys.Shutdown()
		c0 := sys.Ctx(0)

		em := epoch.NewEpochManager(c0)
		dom := hazard.NewDomain(c0, 64)
		cell := atomics.New(c0, 0, atomics.Options{})
		type blob struct{ v int }
		cell.Write(c0, c0.Alloc(&blob{}))

		secs, snap := timed(sys, func() {
			var readers, writer sync.WaitGroup
			stop := make(chan struct{})
			for l := 0; l < locales; l++ {
				readers.Add(1)
				go func(l int) {
					defer readers.Done()
					c := sys.Ctx(l)
					if useHP {
						s := dom.Acquire(c)
						defer dom.Release(c, s)
						for i := 0; i < opsPerReader; i++ {
							addr := s.Protect(c, cell)
							if !addr.IsNil() {
								pgas.MustDeref[*blob](c, addr)
							}
							s.Clear()
						}
						return
					}
					tok := em.Register(c)
					defer tok.Unregister(c)
					for i := 0; i < opsPerReader; i++ {
						tok.Pin(c)
						addr := cell.Read(c)
						if !addr.IsNil() {
							pgas.MustDeref[*blob](c, addr)
						}
						tok.Unpin(c)
					}
				}(l)
			}
			// Writer churns the cell for the duration.
			writer.Add(1)
			go func() {
				defer writer.Done()
				c := c0
				tok := em.Register(c)
				defer tok.Unregister(c)
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					fresh := c.Alloc(&blob{v: i})
					old := cell.Exchange(c, fresh)
					if old.IsNil() {
						continue
					}
					if useHP {
						dom.Retire(c, old)
					} else {
						tok.Pin(c)
						tok.DeferDelete(c, old)
						tok.Unpin(c)
						if i%256 == 0 {
							tok.TryReclaim(c)
						}
					}
				}
			}()
			readers.Wait()
			close(stop)
			writer.Wait()
		})
		if useHP {
			dom.Drain(c0)
		} else {
			em.Clear(c0)
		}
		return Point{X: locales, Seconds: secs, Comm: snap}
	}

	for _, locales := range cfg.localeSweep(1) {
		p := cfg.best(func() Point { return run(locales, false) })
		ebr.Points = append(ebr.Points, p)
		cfg.progressf("ablE ebr locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)

		p = cfg.best(func() Point { return run(locales, true) })
		hp.Points = append(hp.Points, p)
		cfg.progressf("ablE hp  locales=%-3d %8.4fs  [%v]\n", locales, p.Seconds, p.Comm)
	}
	panel.Series = []Series{ebr, hp}
	return Figure{
		ID:      "A5",
		Title:   "Ablation: epoch-based reclamation vs hazard pointers",
		Caption: "Identical shared-cell churn under both schemes; HP pays a validating re-read per access (one extra network op when the cell is remote), EBR pays a locale-local pin.",
		Panels:  []Panel{panel},
	}
}
