package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteText renders a figure as aligned gnuplot-style data blocks: one
// block per panel, columns = series, rows = sweep points.
func WriteText(w io.Writer, f Figure) {
	fmt.Fprintf(w, "# Figure %s — %s\n", f.ID, f.Title)
	if f.Caption != "" {
		fmt.Fprintf(w, "# %s\n", f.Caption)
	}
	for _, p := range f.Panels {
		fmt.Fprintf(w, "\n## %s\n", p.Title)
		fmt.Fprintf(w, "%-10s", p.XLabel)
		for _, s := range p.Series {
			fmt.Fprintf(w, " %*s", colWidth(s.Label), s.Label)
		}
		fmt.Fprintln(w)
		if len(p.Series) == 0 {
			continue
		}
		for i := range p.Series[0].Points {
			fmt.Fprintf(w, "%-10d", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, " %*.*f", colWidth(s.Label), 4, s.Points[i].Seconds)
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

func colWidth(label string) int {
	if len(label) < 10 {
		return 10
	}
	return len(label)
}

// WriteCSV renders a figure as long-form CSV with both timing and
// communication columns — the machine-readable record EXPERIMENTS.md
// references.
func WriteCSV(w io.Writer, f Figure) {
	fmt.Fprintln(w, "figure,panel,series,x,seconds,puts,gets,nic_amos,am_amos,local_amos,on_stmts,bulk_xfers,bulk_bytes,dcas_local,dcas_remote,agg_flushes,agg_ops,agg_bytes,cache_hits,cache_miss,cache_inval")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				fmt.Fprintf(w, "%s,%q,%q,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
					f.ID, p.Title, s.Label, pt.X, pt.Seconds,
					pt.Comm.Puts, pt.Comm.Gets, pt.Comm.NICAMOs, pt.Comm.AMAMOs,
					pt.Comm.LocalAMOs, pt.Comm.OnStmts, pt.Comm.BulkXfers,
					pt.Comm.BulkBytes, pt.Comm.DCASLocal, pt.Comm.DCASRemote,
					pt.Comm.AggFlushes, pt.Comm.AggOps, pt.Comm.AggBytes,
					pt.Comm.CacheHits, pt.Comm.CacheMiss, pt.Comm.CacheInval)
			}
		}
	}
}

// WriteMatrixCSV renders the locale-pair heatmap record: one row per
// (point, src, dst) cell for every point that captured a matrix delta
// (the sharding ablation A7 and the replication ablation A8); points
// without a matrix are skipped. Fields are quoted per RFC 4180 (encoding/csv), so titles
// containing commas or quotes stay parseable. It returns the number of
// data rows written so the caller can warn when a -matrix request
// matched no figure.
func WriteMatrixCSV(w io.Writer, figures []Figure) int {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	rows := 0
	for _, f := range figures {
		for _, p := range f.Panels {
			for _, s := range p.Series {
				for _, pt := range s.Points {
					if pt.Matrix == nil {
						continue
					}
					if rows == 0 {
						cw.Write([]string{"figure", "panel", "series", "x", "src", "dst", "events"})
					}
					for src := range pt.Matrix {
						for dst, n := range pt.Matrix[src] {
							cw.Write([]string{
								f.ID, p.Title, s.Label,
								strconv.Itoa(pt.X), strconv.Itoa(src), strconv.Itoa(dst),
								strconv.FormatInt(n, 10),
							})
							rows++
						}
					}
				}
			}
		}
	}
	return rows
}

// WriteCommText renders the communication-volume view of a figure:
// remote operations per point, the hardware-independent scaling
// evidence.
func WriteCommText(w io.Writer, f Figure) {
	fmt.Fprintf(w, "# Figure %s — %s (remote communication ops)\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(w, "\n## %s\n", p.Title)
		fmt.Fprintf(w, "%-10s", p.XLabel)
		for _, s := range p.Series {
			fmt.Fprintf(w, " %*s", colWidth(s.Label), s.Label)
		}
		fmt.Fprintln(w)
		if len(p.Series) == 0 {
			continue
		}
		for i := range p.Series[0].Points {
			fmt.Fprintf(w, "%-10d", p.Series[0].Points[i].X)
			for _, s := range p.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, " %*d", colWidth(s.Label), s.Points[i].Comm.Remote())
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}
