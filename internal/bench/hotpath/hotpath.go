// Package hotpath holds the measurement-plane hot-path benchmark
// bodies shared by the repository-root testing.B entry points
// (BenchmarkDispatchHotPath, BenchmarkHeapLoadParallel) and
// cmd/benchsmoke, which runs the same workloads through
// testing.Benchmark to produce the BENCH_5 perf-trajectory JSON. One
// definition serves both consumers, so the CI bench-smoke gate and
// the recorded trajectory point cannot drift apart.
//
// The package imports testing and therefore belongs only in test
// binaries and the benchsmoke tool — library code must not depend on
// it.
package hotpath

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
)

// Locales is the fixed sweep point the hot-path benchmarks run at.
const Locales = 8

// DispatchHotPath measures the harness cost of a synchronous remote
// on-statement under the zero latency profile: what remains is pure
// measurement-plane overhead — counter and matrix increments plus
// task-context management — which is exactly what caps the wall-clock
// throughput of loadgen/soak sweeps. Tasks are spread across the
// source locales, each firing at its neighbour, so the diagnostic
// increments come from every shard at once.
func DispatchHotPath(b *testing.B) {
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42})
	b.Cleanup(s.Shutdown)
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(src)
		dst := (src + 1) % Locales
		var sink int
		fn := func(tc *pgas.Ctx) { sink++ }
		for pb.Next() {
			c.On(dst, fn)
		}
		_ = sink
	})
}

// writeStormHotKey measures the per-write cost of the aggregated
// hashmap upsert path under a hot-key storm: every writer hammers a
// small set of keys all homed on locale 0 through UpsertAgg, flushing
// its buffer every flushEvery writes so the timed region is the
// steady-state enqueue→ship→owner-replay cycle, not one unbounded
// buffer fill. The combine flag is the only difference between the
// two BENCH_6 arms: with absorption on, each flush window collapses
// to at most hotKeys shipped ops (8× fewer deliveries and owner-side
// list CASes per window). Writers run on locales 1..Locales-1 only —
// locale 0's writes would execute inline, bypassing the aggregation
// path under measurement.
func writeStormHotKey(b *testing.B, combine bool) {
	const hotKeys = 8
	const flushEvery = 64
	s := pgas.NewSystem(pgas.Config{
		Locales: Locales,
		Backend: comm.BackendNone,
		Seed:    42,
		Agg:     comm.AggConfig{Combine: combine},
	})
	b.Cleanup(s.Shutdown)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := hashmap.New[int](c0, 8*Locales, em)
	hot := make([]uint64, 0, hotKeys)
	for k := uint64(0); len(hot) < hotKeys; k++ {
		if m.HomeOf(k) == 0 {
			hot = append(hot, k)
		}
	}
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := 1 + int(nextTask.Add(1)-1)%(Locales-1)
		c := s.Ctx(src)
		i := 0
		for pb.Next() {
			m.UpsertAgg(c, hot[i%hotKeys], i)
			i++
			if i%flushEvery == 0 {
				c.Flush()
			}
		}
		c.Flush()
	})
}

// WriteStormHotKeyUncombined is the BENCH_6 baseline arm: every
// enqueued write ships and replays on the owner.
func WriteStormHotKeyUncombined(b *testing.B) { writeStormHotKey(b, false) }

// WriteStormHotKeyCombined is the BENCH_6 current arm: repeat writes
// to a hot key absorb in flight before the buffer ships.
func WriteStormHotKeyCombined(b *testing.B) { writeStormHotKey(b, true) }

// HeapLoadParallel measures locale-local heap reads from many tasks
// at once, spread over the locales: the gas.Heap fast path every
// Deref in every structure rides on. The working set is preallocated;
// the timed region is Load only.
func HeapLoadParallel(b *testing.B) {
	const perLocale = 1024 // power of two
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42})
	b.Cleanup(s.Shutdown)
	addrs := make([][]gas.Addr, Locales)
	for l := 0; l < Locales; l++ {
		c := s.Ctx(l)
		addrs[l] = make([]gas.Addr, perLocale)
		for i := range addrs[l] {
			addrs[l][i] = c.Alloc(&struct{ v int }{v: i})
		}
	}
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		l := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(l)
		mine := addrs[l]
		i := 0
		for pb.Next() {
			if _, ok := c.Load(mine[i&(perLocale-1)]); !ok {
				b.Error("load of live object failed")
				return
			}
			i++
		}
	})
}
