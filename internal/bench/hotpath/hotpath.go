// Package hotpath holds the measurement-plane hot-path benchmark
// bodies shared by the repository-root testing.B entry points
// (BenchmarkDispatchHotPath, BenchmarkHeapLoadParallel) and
// cmd/benchsmoke, which runs the same workloads through
// testing.Benchmark to produce the BENCH_5 perf-trajectory JSON. One
// definition serves both consumers, so the CI bench-smoke gate and
// the recorded trajectory point cannot drift apart.
//
// The package imports testing and therefore belongs only in test
// binaries and the benchsmoke tool — library code must not depend on
// it.
package hotpath

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// Locales is the fixed sweep point the hot-path benchmarks run at.
const Locales = 8

// DispatchHotPath measures the harness cost of a synchronous remote
// on-statement under the zero latency profile: what remains is pure
// measurement-plane overhead — counter and matrix increments plus
// task-context management — which is exactly what caps the wall-clock
// throughput of loadgen/soak sweeps. Tasks are spread across the
// source locales, each firing at its neighbour, so the diagnostic
// increments come from every shard at once.
func DispatchHotPath(b *testing.B) {
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42})
	b.Cleanup(s.Shutdown)
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(src)
		dst := (src + 1) % Locales
		var sink int
		fn := func(tc *pgas.Ctx) { sink++ }
		for pb.Next() {
			c.On(dst, fn)
		}
		_ = sink
	})
}

// HeapLoadParallel measures locale-local heap reads from many tasks
// at once, spread over the locales: the gas.Heap fast path every
// Deref in every structure rides on. The working set is preallocated;
// the timed region is Load only.
func HeapLoadParallel(b *testing.B) {
	const perLocale = 1024 // power of two
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42})
	b.Cleanup(s.Shutdown)
	addrs := make([][]gas.Addr, Locales)
	for l := 0; l < Locales; l++ {
		c := s.Ctx(l)
		addrs[l] = make([]gas.Addr, perLocale)
		for i := range addrs[l] {
			addrs[l][i] = c.Alloc(&struct{ v int }{v: i})
		}
	}
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		l := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(l)
		mine := addrs[l]
		i := 0
		for pb.Next() {
			if _, ok := c.Load(mine[i&(perLocale-1)]); !ok {
				b.Error("load of live object failed")
				return
			}
			i++
		}
	})
}
