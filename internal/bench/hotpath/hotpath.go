// Package hotpath holds the measurement-plane hot-path benchmark
// bodies shared by the repository-root testing.B entry points
// (BenchmarkDispatchHotPath, BenchmarkHeapLoadParallel) and
// cmd/benchsmoke, which runs the same workloads through
// testing.Benchmark to produce the BENCH_5 perf-trajectory JSON. One
// definition serves both consumers, so the CI bench-smoke gate and
// the recorded trajectory point cannot drift apart.
//
// The package imports testing and therefore belongs only in test
// binaries and the benchsmoke tool — library code must not depend on
// it.
package hotpath

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/hashmap"
	"gopgas/internal/structures/rebalance"
	"gopgas/internal/trace"
)

// Locales is the fixed sweep point the hot-path benchmarks run at.
const Locales = 8

// dispatchHotPath is the shared body: a synchronous remote
// on-statement storm under the zero latency profile, with an optional
// trace recorder attached to the system.
func dispatchHotPath(b *testing.B, rec *trace.Recorder) {
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42, Tracer: rec})
	b.Cleanup(s.Shutdown)
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(src)
		dst := (src + 1) % Locales
		var sink int
		fn := func(tc *pgas.Ctx) { sink++ }
		for pb.Next() {
			c.On(dst, fn)
		}
		_ = sink
	})
}

// DispatchHotPath measures the harness cost of a synchronous remote
// on-statement under the zero latency profile: what remains is pure
// measurement-plane overhead — counter and matrix increments plus
// task-context management — which is exactly what caps the wall-clock
// throughput of loadgen/soak sweeps. Tasks are spread across the
// source locales, each firing at its neighbour, so the diagnostic
// increments come from every shard at once. No trace recorder is
// attached: this is the BENCH_5 trajectory point, and the tracing
// plane's contract is that an absent recorder costs one nil check.
func DispatchHotPath(b *testing.B) { dispatchHotPath(b, nil) }

// TraceSampleRate is the sampling rate the traced dispatch arm runs
// at — the same 1-in-64 default the workload spec applies.
const TraceSampleRate = 64

// DispatchHotPathTraced is the BENCH_8 current arm: the same storm
// with a recorder attached and sampling at 1/TraceSampleRate. Sampled-
// out ops pay one atomic tick; sampled-in ops write two ring events.
// The rings are never drained mid-run, so steady state includes the
// wrap-around drop path — by design: the recorder must never block or
// allocate on the hot path no matter how full it gets.
func DispatchHotPathTraced(b *testing.B) {
	dispatchHotPath(b, trace.NewRecorder(Locales, trace.Config{SampleRate: TraceSampleRate}))
}

// DispatchHotPathTracerIdle is the attached-but-disabled point: a
// recorder is wired into the system with recording switched off, so
// every dispatch pays the enabled-flag load and nothing else. This is
// the cost a soak server pays while nobody is tracing.
func DispatchHotPathTracerIdle(b *testing.B) {
	rec := trace.NewRecorder(Locales, trace.Config{SampleRate: TraceSampleRate})
	rec.SetEnabled(false)
	dispatchHotPath(b, rec)
}

// writeStormHotKey measures the per-write cost of the aggregated
// hashmap upsert path under a hot-key storm: every writer hammers a
// small set of keys all homed on locale 0 through UpsertAgg, flushing
// its buffer every flushEvery writes so the timed region is the
// steady-state enqueue→ship→owner-replay cycle, not one unbounded
// buffer fill. The combine flag is the only difference between the
// two BENCH_6 arms: with absorption on, each flush window collapses
// to at most hotKeys shipped ops (8× fewer deliveries and owner-side
// list CASes per window). Writers run on locales 1..Locales-1 only —
// locale 0's writes would execute inline, bypassing the aggregation
// path under measurement.
func writeStormHotKey(b *testing.B, combine bool) {
	const hotKeys = 8
	const flushEvery = 64
	s := pgas.NewSystem(pgas.Config{
		Locales: Locales,
		Backend: comm.BackendNone,
		Seed:    42,
		Agg:     comm.AggConfig{Combine: combine},
	})
	b.Cleanup(s.Shutdown)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := hashmap.New[int](c0, 8*Locales, em)
	hot := make([]uint64, 0, hotKeys)
	for k := uint64(0); len(hot) < hotKeys; k++ {
		if m.HomeOf(k) == 0 {
			hot = append(hot, k)
		}
	}
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := 1 + int(nextTask.Add(1)-1)%(Locales-1)
		c := s.Ctx(src)
		i := 0
		for pb.Next() {
			m.UpsertAgg(c, hot[i%hotKeys], i)
			i++
			if i%flushEvery == 0 {
				c.Flush()
			}
		}
		c.Flush()
	})
}

// WriteStormHotKeyUncombined is the BENCH_6 baseline arm: every
// enqueued write ships and replays on the owner.
func WriteStormHotKeyUncombined(b *testing.B) { writeStormHotKey(b, false) }

// WriteStormHotKeyCombined is the BENCH_6 current arm: repeat writes
// to a hot key absorb in flight before the buffer ships.
func WriteStormHotKeyCombined(b *testing.B) { writeStormHotKey(b, true) }

// HeapLoadParallel measures locale-local heap reads from many tasks
// at once, spread over the locales: the gas.Heap fast path every
// Deref in every structure rides on. The working set is preallocated;
// the timed region is Load only.
func HeapLoadParallel(b *testing.B) {
	const perLocale = 1024 // power of two
	s := pgas.NewSystem(pgas.Config{Locales: Locales, Backend: comm.BackendNone, Seed: 42})
	b.Cleanup(s.Shutdown)
	addrs := make([][]gas.Addr, Locales)
	for l := 0; l < Locales; l++ {
		c := s.Ctx(l)
		addrs[l] = make([]gas.Addr, perLocale)
		for i := range addrs[l] {
			addrs[l][i] = c.Alloc(&struct{ v int }{v: i})
		}
	}
	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		l := int(nextTask.Add(1)-1) % Locales
		c := s.Ctx(l)
		mine := addrs[l]
		i := 0
		for pb.Next() {
			if _, ok := c.Load(mine[i&(perLocale-1)]); !ok {
				b.Error("load of live object failed")
				return
			}
			i++
		}
	})
}

// movingHotStorm measures the per-write cost of the owner-table-routed
// hashmap upsert path under a moving hot set: every writer hammers one
// hot key homed on locale 0, and the hot set jumps to fresh buckets
// (still homed on 0) every windowEvery writes — the workload static
// placement cannot serve without funnelling every window into one
// locale. The rebalance flag is the only difference between the two
// BENCH_7 arms: with the controller stepping, each window's hot
// buckets migrate off the overloaded locale through the epoch-coherent
// handoff, so writes land owner-local for the rest of the window;
// without it, every write ships to locale 0 and replays there behind
// its combiner. Writers run on locales 1..Locales-1 only — locale 0's
// writes would execute inline and blur the arms.
//
// In-flight absorption stays OFF: with combining on, a hot-key window
// collapses to one shipped op, and the comparison would measure
// absorption (BENCH_6's subject), not routing locality. On the plain
// aggregated path each static-arm write pays enqueue + ship + replay
// at the owner, while a rebalanced-arm write — once the bucket has
// migrated to its writer — pays only the local apply.
//
// The first writer steps the controller inline every stepEvery of its
// own writes (the workload engine uses a wall-clock ticker instead,
// but a timed benchmark needs the control loop deterministic and
// unstarvable — at GOMAXPROCS=1 a ticker goroutine barely runs under
// RunParallel, and an unlucky schedule would measure an arbitrary
// remote/local mix). The stepping cost is part of the measured arm, as
// it should be.
func movingHotStorm(b *testing.B, rebalanced bool) {
	const windows = 8
	const windowEvery = 2048
	const flushEvery = 64
	const stepEvery = 512
	s := pgas.NewSystem(pgas.Config{
		Locales: Locales,
		Backend: comm.BackendNone,
		Seed:    42,
	})
	b.Cleanup(s.Shutdown)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	// windows*(Locales-1) distinct hot buckets must all be homed on
	// locale 0, and only 1/Locales of the buckets are: size accordingly.
	m := hashmap.New[int](c0, 64*Locales, em)
	rv := m.Rebalanced(c0)
	hot := make([][]uint64, windows)
	used := make(map[int]bool)
	k := uint64(0)
	for w := range hot {
		for len(hot[w]) < Locales-1 {
			if e := m.BucketOf(k); m.HomeOf(k) == 0 && !used[e] {
				used[e] = true
				hot[w] = append(hot[w], k)
			}
			k++
		}
	}
	em.Protect(c0, func(tok *epoch.Token) {
		for _, ks := range hot {
			for _, hk := range ks {
				m.Insert(c0, tok, hk, int(hk))
			}
		}
	})

	var ctrl *rebalance.Controller
	if rebalanced {
		// MinEvents is the per-step noise floor: a rerouted straggler
		// books a couple of on-stmt events, and without the floor a
		// single stray event reads as an over-ratio source and migrates
		// the (quiet, all-local) hot buckets right back off the writers.
		ctrl = rebalance.NewController(c0, rv, rebalance.Config{
			Ratio:     1.5,
			MinEvents: 4,
			MaxMoves:  Locales,
			Cooldown:  1,
		})
	}

	var nextTask atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(nextTask.Add(1) - 1)
		src := 1 + id%(Locales-1)
		c := s.Ctx(src)
		i := 0
		for pb.Next() {
			w := (i / windowEvery) % windows
			rv.UpsertAgg(c, hot[w][src-1], i)
			i++
			if i%flushEvery == 0 {
				c.Flush()
			}
			// One stepper only: the controller is single-threaded.
			if ctrl != nil && id == 0 && i%stepEvery == 0 {
				ctrl.Step(c)
			}
		}
		c.Flush()
	})
	b.StopTimer()
	if ctrl != nil {
		// A stale routed write re-routed by a late migration may still
		// be an async task in flight; quiesce before teardown.
		c0.Flush()
	}
}

// MovingHotStormStatic is the BENCH_7 baseline arm: ownership never
// moves, so every window's writes ship to locale 0.
func MovingHotStormStatic(b *testing.B) { movingHotStorm(b, false) }

// MovingHotStormRebalanced is the BENCH_7 current arm: the controller
// migrates each window's hot buckets to their writers, turning the
// steady-state write local.
func MovingHotStormRebalanced(b *testing.B) { movingHotStorm(b, true) }
