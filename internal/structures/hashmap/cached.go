package hashmap

import (
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/cache"
)

// CachedView couples a Map with a per-locale read replication cache
// (internal/structures/cache): Get memoizes the owner-computed lookup
// in the calling locale's replica, so repeat reads of a hot key are
// locale-private hits instead of remote traffic to the bucket's owner,
// and every mutation writes through — it applies to the map and then
// broadcasts an invalidation for the key so replicas converge.
//
// The view is strictly opt-in and costs nothing when unused: Map
// itself is untouched, and a CachedView is just the pair of handles.
// Coherence, however, is a contract on the *writers*: once a key is
// read through a CachedView, every mutation of that key must go
// through a CachedView of the same cache (or call Cache().Invalidate
// itself) — writes through the bare Map are invisible to the replicas.
//
// Invalidations ride the writer's aggregation buffers (one op per
// locale, batched into bulk flushes), so remote replicas may serve the
// previous value until the writer's buffers flush — at capacity, or at
// Ctx.Flush. The bound is the aggregation capacity, and a writer that
// needs read-your-writes across locales flushes after mutating.
// Entries are pinned and retired through the map's own EpochManager,
// so a cached read can never observe reclaimed memory (the cache
// package documents the generation protocol).
//
// Like Map, the view is a small copyable handle: copy it into tasks
// and across locales freely. The zero value is invalid; create with
// Map.Cached.
type CachedView[V any] struct {
	m  Map[V]
	ca cache.Cache[V]
}

// Cached layers a read replication cache over the map: one 2-way
// set-associative replica of `slots` entries per locale (the set count
// rounded up to a power of two), sharing the map's epoch manager so
// cached entries and structure nodes reclaim through one domain. slots
// must be positive.
func (m Map[V]) Cached(c *pgas.Ctx, slots int) CachedView[V] {
	return CachedView[V]{m: m, ca: cache.New[V](c, slots, m.em)}
}

// Valid reports whether the view was produced by Map.Cached.
func (cv CachedView[V]) Valid() bool { return cv.ca.Valid() }

// Base returns the underlying map. Reads through it are always
// correct; writes through it bypass invalidation (see the type
// comment).
func (cv CachedView[V]) Base() Map[V] { return cv.m }

// Cache returns the replication cache, for statistics and manual
// invalidation.
func (cv CachedView[V]) Cache() cache.Cache[V] { return cv.ca }

// Get returns the value for k, served from the calling locale's
// replica when present and coherent; a miss falls through to the
// owner-computed Map.Get and publishes the result locally. Absent keys
// are not cached.
func (cv CachedView[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (V, bool) {
	return cv.ca.GetThrough(c, tok, k, func() (V, bool) {
		return cv.m.Get(c, tok, k)
	})
}

// Contains reports whether k is present, through the cache.
func (cv CachedView[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	_, ok := cv.Get(c, tok, k)
	return ok
}

// Insert adds (k, v) if absent, reporting whether it inserted, and
// writes through: a successful insert invalidates k on every replica.
// (An unsuccessful insert changed nothing, so nothing is stale.)
func (cv CachedView[V]) Insert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	ok := cv.m.Insert(c, tok, k, v)
	if ok {
		cv.ca.Invalidate(c, k)
	}
	return ok
}

// Upsert inserts or replaces (k, v), reporting whether it replaced,
// and invalidates k on every replica.
func (cv CachedView[V]) Upsert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	replaced := cv.m.Upsert(c, tok, k, v)
	cv.ca.Invalidate(c, k)
	return replaced
}

// Remove deletes k, reporting whether it was present; a successful
// remove invalidates k on every replica.
func (cv CachedView[V]) Remove(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	ok := cv.m.Remove(c, tok, k)
	if ok {
		cv.ca.Invalidate(c, k)
	}
	return ok
}

// InsertBulk adds every absent pair exactly as Map.InsertBulk (bucket
// -owner routing through the aggregation buffers), then broadcasts
// invalidations for every key in the batch and flushes them, so the
// batch is coherent on return.
func (cv CachedView[V]) InsertBulk(c *pgas.Ctx, pairs []KV[V]) int {
	n := cv.m.InsertBulk(c, pairs)
	for _, kv := range pairs {
		cv.ca.Invalidate(c, kv.K)
	}
	c.Flush()
	return n
}

// Destroy tears down the cache and then the map. The usual Destroy
// contract applies to both: quiescent, once, no use afterwards.
func (cv CachedView[V]) Destroy(c *pgas.Ctx) {
	cv.ca.Destroy(c)
	cv.m.Destroy(c)
}
