package hashmap

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Repeat gets of a hot key through a CachedView are locale-private:
// after one warming read per locale, a get storm performs zero remote
// events anywhere — the hotspot the owner-computed design funnels onto
// the bucket owner simply disappears.
func TestCachedViewHotGetsAreZeroComm(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int64](c, 16, em)
		cv := m.Cached(c, 64)
		em.Protect(c, func(tok *epoch.Token) {
			m.Insert(c, tok, 99, 4242)
		})
		// Warm every replica.
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if v, ok := cv.Get(lc, tok, 99); !ok || v != 4242 {
					t.Errorf("locale %d warming get = (%d, %v)", lc.Here(), v, ok)
				}
			})
		})
		before := sys.Counters().Snapshot()
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for i := 0; i < 100; i++ {
					if v, ok := cv.Get(lc, tok, 99); !ok || v != 4242 {
						t.Errorf("locale %d hot get = (%d, %v)", lc.Here(), v, ok)
					}
				}
			})
		})
		delta := sys.Counters().Snapshot().Sub(before)
		if got := delta.Remote() - delta.OnStmts; got != 0 {
			t.Fatalf("hot gets performed %d non-launch remote events: %v", got, delta)
		}
		if delta.CacheHits != 400 || delta.CacheMiss != 0 {
			t.Fatalf("cache counters = %d hits / %d misses, want 400/0", delta.CacheHits, delta.CacheMiss)
		}
	})
}

// Mutations write through: after the writer's buffers flush, every
// replica re-fetches and observes the new value (or the removal).
func TestCachedViewWriteThrough(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		cv := New[string](c, 16, em).Cached(c, 32)
		em.Protect(c, func(tok *epoch.Token) {
			cv.Insert(c, tok, 5, "v1")
		})
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if v, ok := cv.Get(lc, tok, 5); !ok || v != "v1" {
					t.Errorf("locale %d initial get = (%q, %v)", lc.Here(), v, ok)
				}
			})
		})

		em.Protect(c, func(tok *epoch.Token) {
			if !cv.Upsert(c, tok, 5, "v2") {
				t.Error("upsert of a present key did not replace")
			}
		})
		c.Flush() // ship the buffered invalidations
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if v, ok := cv.Get(lc, tok, 5); !ok || v != "v2" {
					t.Errorf("locale %d post-upsert get = (%q, %v), want v2", lc.Here(), v, ok)
				}
			})
		})

		em.Protect(c, func(tok *epoch.Token) {
			if !cv.Remove(c, tok, 5) {
				t.Error("remove of a present key failed")
			}
		})
		c.Flush()
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if _, ok := cv.Get(lc, tok, 5); ok {
					t.Errorf("locale %d still reads a removed key", lc.Here())
				}
			})
		})
		if st := cv.Cache().Stats(c); st.Invalidations == 0 {
			t.Fatal("write-through produced no invalidations")
		}
	})
}

// InsertBulk writes through and is coherent on return: replicas warmed
// with pre-bulk values re-fetch the bulk's values without an explicit
// caller flush.
func TestCachedViewInsertBulkInvalidates(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		cv := New[int64](c, 16, em).Cached(c, 64)
		// Warm replicas with "absent" fetch attempts plus one present key.
		em.Protect(c, func(tok *epoch.Token) {
			cv.Insert(c, tok, 1, 10)
		})
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				cv.Get(lc, tok, 1)
			})
		})
		pairs := []KV[int64]{{K: 2, V: 20}, {K: 3, V: 30}}
		if n := cv.InsertBulk(c, pairs); n != 2 {
			t.Fatalf("InsertBulk inserted %d, want 2", n)
		}
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for _, kv := range pairs {
					if v, ok := cv.Get(lc, tok, kv.K); !ok || v != kv.V {
						t.Errorf("locale %d bulk key %d = (%d, %v)", lc.Here(), kv.K, v, ok)
					}
				}
			})
		})
	})
}

// A cached view tears down cleanly: destroy, recreate, reuse — the
// churn pattern the workload engine drives.
func TestCachedViewChurn(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		for round := 0; round < 3; round++ {
			cv := New[int64](c, 8, em).Cached(c, 16)
			em.Protect(c, func(tok *epoch.Token) {
				cv.Insert(c, tok, 7, int64(round))
				if v, ok := cv.Get(c, tok, 7); !ok || v != int64(round) {
					t.Fatalf("round %d read back (%d, %v)", round, v, ok)
				}
			})
			c.Flush()
			em.Clear(c)
			cv.Destroy(c)
		}
		if h := sys.HeapStats(); h.UAFLoads != 0 || h.UAFFrees != 0 {
			t.Fatalf("heap verdict after churn: %+v", h)
		}
	})
}
