package hashmap

import (
	"reflect"
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// runCombineStorm drives a seeded aggregated write storm — every task
// hammering a small private hot-key set with UpsertAgg/RemoveAgg —
// and returns the final map contents plus the run's counter snapshot.
// Each task's keys are disjoint from every other task's, so the final
// value of each key is the task's last buffered write and the whole
// final state is deterministic regardless of scheduling; that is what
// lets the combining-on and combining-off runs be compared exactly.
func runCombineStorm(t *testing.T, combine bool) (map[uint64]int64, comm.Snapshot) {
	t.Helper()
	const locales, tasks, hotKeys, writes = 4, 2, 4, 512
	s := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: comm.BackendNone,
		Seed:    99,
		Agg:     comm.AggConfig{Combine: combine},
	})
	defer s.Shutdown()
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 64, em)

	var wg sync.WaitGroup
	for loc := 0; loc < locales; loc++ {
		for task := 0; task < tasks; task++ {
			wg.Add(1)
			go func(loc, task int) {
				defer wg.Done()
				c := s.Ctx(loc)
				id := uint64(loc*tasks + task)
				for i := 0; i < writes; i++ {
					k := id*1000 + uint64(i)%hotKeys
					switch {
					case i%97 == 13:
						m.RemoveAgg(c, k)
					default:
						m.UpsertAgg(c, k, int64(id)<<32|int64(i))
					}
				}
				c.Flush()
			}(loc, task)
		}
	}
	wg.Wait()

	got := make(map[uint64]int64)
	tok := em.Register(c0)
	m.ForEach(c0, tok, func(k uint64, v int64) bool {
		got[k] = v
		return true
	})
	tok.Unregister(c0)
	snap := s.Counters().Snapshot()
	em.Clear(c0)
	m.Destroy(c0)
	return got, snap
}

// Absorption must not change observable values: the same seeded write
// storm lands the map in the identical final state with combining on
// and off, while the counters prove the combined run shipped far
// fewer ops. Run under -race this also storms the owner-side flat
// combiner from 8 concurrent tasks.
func TestMapCombineEquivalence(t *testing.T) {
	on, onSnap := runCombineStorm(t, true)
	off, offSnap := runCombineStorm(t, false)
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("combining changed final map state:\n on: %v\noff: %v", on, off)
	}
	if len(on) == 0 {
		t.Fatal("storm left the map empty; the equivalence is vacuous")
	}
	if onSnap.AggCombined == 0 {
		t.Fatalf("combined run absorbed nothing: %+v", onSnap)
	}
	if offSnap.AggCombined != 0 {
		t.Fatalf("uncombined run absorbed ops: %+v", offSnap)
	}
	if onSnap.AggOps+onSnap.AggCombined != onSnap.AggOpsEnq {
		t.Fatalf("shipped+combined != enqueued: %+v", onSnap)
	}
	// A hot-key storm at 4 keys per task absorbs the overwhelming
	// majority of writes: shipped ops must be at least 5x below
	// enqueued (the A9 acceptance bound, asserted here at unit level).
	if onSnap.AggOps*5 > onSnap.AggOpsEnq {
		t.Fatalf("absorption below 5x: shipped %d of %d enqueued", onSnap.AggOps, onSnap.AggOpsEnq)
	}
}
