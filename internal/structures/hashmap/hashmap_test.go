package hashmap

import (
	"sync"
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

func TestMapBasicOps(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[string](c, 16, em)
		tok := em.Register(c)
		if !m.Insert(c, tok, 1, "one") {
			t.Fatal("insert failed")
		}
		if m.Insert(c, tok, 1, "uno") {
			t.Fatal("duplicate insert succeeded")
		}
		if v, ok := m.Get(c, tok, 1); !ok || v != "one" {
			t.Fatalf("get = (%q,%v)", v, ok)
		}
		if m.Upsert(c, tok, 1, "uno") != true {
			t.Fatal("upsert did not replace")
		}
		if v, _ := m.Get(c, tok, 1); v != "uno" {
			t.Fatalf("get after upsert = %q", v)
		}
		if !m.Remove(c, tok, 1) || m.Remove(c, tok, 1) {
			t.Fatal("remove semantics")
		}
		if m.Contains(c, tok, 1) {
			t.Fatal("contains after remove")
		}
		tok.Unregister(c)
		em.Clear(c)
		m.Destroy(c) // empty and quiescent: releases the table replicas
	})
}

func TestMapBucketRounding(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		if got := New[int](c, 12, em).NumBuckets(); got != 16 {
			t.Fatalf("buckets = %d, want 16", got)
		}
		if got := New[int](c, 1, em).NumBuckets(); got != 1 {
			t.Fatalf("buckets = %d, want 1", got)
		}
	})
}

// A non-positive bucket count is a caller bug, not a request for a
// one-bucket map: New rejects it.
func TestMapRejectsNonPositiveBuckets(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		for _, n := range []int{0, -4} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("New with %d buckets did not panic", n)
					}
				}()
				New[int](c, n, em)
			}()
		}
	})
}

// HomeOf is the routing map: it matches where bucket CASes actually
// land, and local-bucket lookups perform zero remote communication.
func TestMapHomeOfColocation(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int](c, 64, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for k := uint64(0); k < 128; k++ {
			m.Insert(c, tok, k, int(k))
		}
		// From each locale, Gets on keys it owns must not communicate.
		// Sequential (one locale at a time) so the counter windows are
		// exact.
		for l := 0; l < 4; l++ {
			lc := s.Ctx(l)
			ltok := em.Register(lc)
			before := s.Counters().Snapshot()
			hits := 0
			for k := uint64(0); k < 128; k++ {
				if m.HomeOf(k) != l {
					continue
				}
				if v, ok := m.Get(lc, ltok, k); !ok || v != int(k) {
					t.Errorf("local get %d = (%d,%v)", k, v, ok)
				}
				hits++
			}
			delta := s.Counters().Snapshot().Sub(before)
			ltok.Unregister(lc)
			if hits == 0 {
				t.Errorf("locale %d owns no keys", l)
			}
			if delta.Remote() != 0 {
				t.Errorf("locale %d local-bucket gets performed remote events: %v", l, delta)
			}
		}
	})
}

func TestMapManyKeys(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[uint64](c, 32, em)
		tok := em.Register(c)
		const n = 500
		for k := uint64(0); k < n; k++ {
			if !m.Insert(c, tok, k, k*k) {
				t.Fatalf("insert %d failed", k)
			}
		}
		if got := m.Len(c, tok); got != n {
			t.Fatalf("len = %d", got)
		}
		for k := uint64(0); k < n; k++ {
			if v, ok := m.Get(c, tok, k); !ok || v != k*k {
				t.Fatalf("get %d = (%d,%v)", k, v, ok)
			}
		}
	})
}

// Property: the map agrees with a Go map under random single-threaded
// op sequences.
func TestMapModelProperty(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	f := func(ops []uint32) bool {
		m := New[int](c, 8, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		model := map[uint64]int{}
		for i, op := range ops {
			k := uint64(op % 64)
			switch op % 4 {
			case 0:
				ins := m.Insert(c, tok, k, i)
				_, had := model[k]
				if ins == had {
					return false
				}
				if ins {
					model[k] = i
				}
			case 1:
				rep := m.Upsert(c, tok, k, i)
				_, had := model[k]
				if rep != had {
					return false
				}
				model[k] = i
			case 2:
				rem := m.Remove(c, tok, k)
				_, had := model[k]
				if rem != had {
					return false
				}
				delete(model, k)
			case 3:
				v, ok := m.Get(c, tok, k)
				mv, had := model[k]
				if ok != had || (ok && v != mv) {
					return false
				}
			}
		}
		return m.Len(c, tok) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMapConcurrentMixedWorkload(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	m := New[int](s.Ctx(0), 64, em)
	const tasks = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 4)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < iters; i++ {
				k := c.RandUint64() % 128
				switch c.RandIntn(10) {
				case 0, 1, 2, 3: // 40% reads
					m.Get(c, tok, k)
				case 4, 5, 6: // 30% upserts
					m.Upsert(c, tok, k, i)
				case 7, 8: // 20% inserts
					m.Insert(c, tok, k, i)
				default: // 10% removes
					m.Remove(c, tok, k)
				}
				if i%64 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d use-after-free loads in mixed workload", uaf)
	}
	// Internal consistency: every key Get reports present must be
	// enumerated by Len exactly once per bucket traversal.
	tok := em.Register(c)
	n := m.Len(c, tok)
	count := 0
	for k := uint64(0); k < 128; k++ {
		if m.Contains(c, tok, k) {
			count++
		}
	}
	if n != count {
		t.Fatalf("Len=%d but %d keys respond to Contains", n, count)
	}
}

func TestMapForEach(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int](c, 8, em)
		tok := em.Register(c)
		for k := uint64(0); k < 30; k++ {
			m.Insert(c, tok, k, int(k)*3)
		}
		got := map[uint64]int{}
		m.ForEach(c, tok, func(k uint64, v int) bool {
			got[k] = v
			return true
		})
		if len(got) != 30 {
			t.Fatalf("visited %d entries", len(got))
		}
		for k, v := range got {
			if v != int(k)*3 {
				t.Fatalf("entry %d = %d", k, v)
			}
		}
		// Early stop.
		n := 0
		m.ForEach(c, tok, func(uint64, int) bool { n++; return n < 5 })
		if n != 5 {
			t.Fatalf("early stop visited %d", n)
		}
	})
}

// Upsert visibility: once a key is inserted, concurrent readers must
// never observe it absent across any number of upserts (the new node
// is linked before the old is marked).
func TestMapUpsertAlwaysVisible(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	m := New[int](s.Ctx(0), 4, em)
	boot := em.Register(s.Ctx(0))
	m.Insert(s.Ctx(0), boot, 7, 0)
	boot.Unregister(s.Ctx(0))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := s.Ctx(r % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := m.Get(c, tok, 7); !ok {
					t.Error("key vanished during upsert churn")
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Ctx(0)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for i := 1; i <= 400; i++ {
			m.Upsert(c, tok, 7, i)
			if i%64 == 0 {
				tok.TryReclaim(c)
			}
		}
		close(stop)
	}()
	wg.Wait()
	em.Clear(s.Ctx(0))
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAF loads", uaf)
	}
}

func TestMapBucketDistribution(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int](c, 64, em)
		// BucketLocale must cover all locales for a spread of keys.
		seen := map[int]bool{}
		for k := uint64(0); k < 256; k++ {
			l := m.BucketLocale(k)
			if l < 0 || l >= 4 {
				t.Fatalf("bucket locale %d out of range", l)
			}
			seen[l] = true
		}
		if len(seen) != 4 {
			t.Fatalf("keys only touch locales %v", seen)
		}
	})
}
