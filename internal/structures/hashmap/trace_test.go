package hashmap

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/trace"
)

// Migration spans are exact, deterministically: the span opens inside
// the source combiner only after the generation re-check, so declined
// and double-move-raced migrations record nothing, and every begin
// pairs with one completed handoff (== one MigAdopted). A routed write
// raced past a migration books a reroute instant instead.
func TestRebalancedMigrateSpans(t *testing.T) {
	const locales = 4
	rec := trace.NewRecorder(locales, trace.Config{BufferSize: 1 << 10})
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone, Tracer: rec})
	t.Cleanup(s.Shutdown)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 8, em)
	rv := m.Rebalanced(c0)

	for k := uint64(1); k <= 32; k++ {
		rv.UpsertAgg(c0, k, int64(k))
	}
	c0.Flush()

	// Three completed migrations, one decline (self-migration), one
	// stale decline (raced generation), mirrored exactly by the comm
	// books.
	before := s.Counters().Snapshot()
	e := m.BucketOf(1)
	src := rv.EntryOwner(e)
	dst := (src + 1) % locales
	if _, ok := rv.Migrate(c0, e, dst); !ok {
		t.Fatal("first migration declined")
	}
	if _, ok := rv.Migrate(c0, e, dst); ok {
		t.Fatal("self-migration ran")
	}
	if _, ok := rv.Migrate(c0, e, src); !ok {
		t.Fatal("migration back declined")
	}
	e2 := (e + 1) % rv.NumEntries()
	src2 := rv.EntryOwner(e2)
	if _, ok := rv.Migrate(c0, e2, (src2+2)%locales); !ok {
		t.Fatal("third migration declined")
	}
	s.Quiesce()
	delta := s.Counters().Snapshot().Sub(before)
	if delta.MigAdopted != 3 {
		t.Fatalf("MigAdopted = %d, want 3", delta.MigAdopted)
	}

	events := rec.Drain(0)
	var begins, ends int
	for _, ev := range events {
		if ev.Kind != trace.KindMigrate {
			continue
		}
		switch ev.Phase {
		case trace.PhaseBegin:
			begins++
		case trace.PhaseEnd:
			ends++
		}
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring dropped %d events with a roomy buffer", rec.Dropped())
	}
	if begins != 3 || ends != 3 {
		t.Fatalf("migrate spans = %d begins / %d ends, want 3/3 (== MigAdopted)", begins, ends)
	}
	if !trace.BooksBalanced(rec.Books()) {
		t.Fatalf("books unbalanced: %+v", rec.Books())
	}

	em.Clear(c0)
	m.Destroy(c0)
}

// The failure plane's trace evidence is exact and always recorded: one
// crash instant per crash, one adopt span per shard the failover moved
// off the dead locale, one force-retire span per stranded token it
// cleared — all with balanced books, so a post-mortem trace is a
// complete account of what the recovery actually did.
func TestCrashFailoverSpans(t *testing.T) {
	const locales = 4
	const victim = 1
	rec := trace.NewRecorder(locales, trace.Config{BufferSize: 1 << 12})
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone, Tracer: rec})
	t.Cleanup(s.Shutdown)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 16, em)
	rv := m.Rebalanced(c0)

	for k := uint64(1); k <= 64; k++ {
		rv.UpsertAgg(c0, k, int64(k))
	}
	c0.Flush()

	// Two tasks die pinned on the victim; both must be force-retired.
	c0.On(victim, func(vc *pgas.Ctx) {
		em.Pin(vc)
		em.Pin(vc)
	})
	if err := s.Crash(victim); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	var victimOwned int64
	for e := 0; e < rv.NumEntries(); e++ {
		if rv.EntryOwner(e) == victim {
			victimOwned++
		}
	}
	sc := c0.Salvage()
	shards, _ := rv.Failover(sc, victim)
	tokens := em.ForceRetire(sc, victim)
	sc.Flush()
	s.Quiesce()

	if shards != victimOwned {
		t.Fatalf("failover adopted %d shards, victim owned %d", shards, victimOwned)
	}
	if tokens != 2 {
		t.Fatalf("force-retired %d tokens, want 2", tokens)
	}

	events := rec.Drain(0)
	if rec.Dropped() != 0 {
		t.Fatalf("ring dropped %d events with a roomy buffer", rec.Dropped())
	}
	counts := map[trace.Kind]map[trace.Phase]int64{}
	for _, ev := range events {
		if counts[ev.Kind] == nil {
			counts[ev.Kind] = map[trace.Phase]int64{}
		}
		counts[ev.Kind][ev.Phase]++
	}
	if got := counts[trace.KindCrash][trace.PhaseInstant]; got != 1 {
		t.Fatalf("crash instants = %d, want 1", got)
	}
	if b, e := counts[trace.KindAdopt][trace.PhaseBegin], counts[trace.KindAdopt][trace.PhaseEnd]; b != shards || e != shards {
		t.Fatalf("adopt spans = %d begins / %d ends, want %d/%d (== shards adopted)", b, e, shards, shards)
	}
	if b, e := counts[trace.KindForceRetire][trace.PhaseBegin], counts[trace.KindForceRetire][trace.PhaseEnd]; b != tokens || e != tokens {
		t.Fatalf("force-retire spans = %d begins / %d ends, want %d/%d (== tokens retired)", b, e, tokens, tokens)
	}
	// Every adopt is also a completed migration handoff, so migrate
	// spans cover at least the failover's shard count.
	if got := counts[trace.KindMigrate][trace.PhaseBegin]; got != shards {
		t.Fatalf("migrate spans = %d, want %d (failover handoffs only)", got, shards)
	}
	if !trace.BooksBalanced(rec.Books()) {
		t.Fatalf("books unbalanced: %+v", rec.Books())
	}

	em.Clear(c0)
	m.Destroy(c0)
}
