package hashmap

import (
	"sync/atomic"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/list"
	"gopgas/internal/structures/shared"
	"gopgas/internal/trace"
)

// Rebalanced is the map behind a live owner table: writes route to the
// bucket's *current* owner (a shared.OwnerTable entry per bucket)
// instead of the static i%L arithmetic, and Migrate hands a bucket's
// contents — and its future write traffic — to a new locale at
// runtime. It is the per-bucket instantiation of the shared layer's
// entry-routing protocol, kept separate from shared.Object only so the
// routed writes stay combinable (absorbable in flight, like
// UpsertAgg's).
//
// The handoff is epoch-coherent and write-serialized:
//
//  1. the migration runs inside the source replica's flat combiner —
//     the same serialization every routed write applies under — so no
//     write can land on the old list after the snapshot;
//  2. the snapshot ships to the destination via the aggregation
//     buffer's bulk framing and is drained synchronously (a
//     single-destination flush, legal while holding the combiner);
//  3. the slot's list pointer swings to the filled destination list
//     and the owner table republishes (owner, generation+1) in one
//     atomic store;
//  4. the old list is retired through the EpochManager: every node is
//     defer-deleted but the list stays structurally intact, so pinned
//     readers that resolved it before the swap keep traversing live
//     memory until they drain.
//
// A routed write that raced the migration — sampled the old owner,
// delivered after the republish — detects the generation mismatch
// inside the (old) owner's combiner and re-dispatches itself to the
// current owner as an async task, counted in comm's MigReroutes. Reads
// never consult the table: they follow the slot's list pointer, which
// always names a complete list (old until the swap, new after).
//
// Caveat: a re-routed write applies when its async redelivery runs, so
// two same-task writes to one key that straddle a migration may apply
// out of program order (the fire-and-forget UpsertAgg contract already
// promises only eventual visibility; this widens the window). Callers
// that need a deterministic final state quiesce (Ctx.Flush) and write
// a final pass, as the storm test does.
type Rebalanced[V any] struct {
	m     Map[V]
	tab   *shared.OwnerTable
	slots []*bucketSlot[V]
}

// Rebalanced wraps the map in an owner-table-routed view. The table
// starts as the identity over HomeOf — callers see identical routing
// until the first Migrate. The base Map handle remains usable for
// reads and diagnostics; owner-routed writes must go through the view.
func (m Map[V]) Rebalanced(c *pgas.Ctx) Rebalanced[V] {
	return Rebalanced[V]{
		m:     m,
		tab:   shared.NewOwnerTable(m.nbuckets, func(e int) int { return e % m.locales }),
		slots: m.priv.Get(c).buckets,
	}
}

// Map returns the underlying map handle.
func (r Rebalanced[V]) Map() Map[V] { return r.m }

// NumEntries returns the bucket count — the migration granularity.
func (r Rebalanced[V]) NumEntries() int { return r.m.nbuckets }

// EntryOwner returns bucket e's current owner locale.
func (r Rebalanced[V]) EntryOwner(e int) int {
	owner, _ := r.tab.Owner(e)
	return owner
}

// EntryHeat returns bucket e's accumulated traffic count — bumped by
// every routed write and view read, read (and differenced) by the
// rebalance controller to rank candidate buckets.
func (r Rebalanced[V]) EntryHeat(e int) int64 { return r.slots[e].heat.Load() }

// OwnerOf reports which locale currently owns k's bucket — the live
// counterpart of HomeOf.
func (r Rebalanced[V]) OwnerOf(k uint64) int {
	return r.EntryOwner(r.m.BucketOf(k))
}

// Get returns the value for k, following the slot's current list
// pointer — no owner-table consultation, no migration race: the
// pointer always names a complete list.
func (r Rebalanced[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (V, bool) {
	e := r.m.BucketOf(k)
	t := r.m.priv.Get(c)
	t.buckets[e].heat.Add(1)
	return t.bucket(e).Get(c, tok, k)
}

// Contains reports whether k is present.
func (r Rebalanced[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	_, ok := r.Get(c, tok, k)
	return ok
}

// combineKindMapWriteRouted namespaces the routed write's merge keys
// away from the static-owner mapWriteOp's.
const combineKindMapWriteRouted uint8 = 33

// routedWriteOp is mapWriteOp's owner-table-routed twin: it carries
// the generation sampled at enqueue time and re-checks it inside the
// delivered locale's combiner. Absorption still applies — two routed
// writes to one key merge last-writer-wins, keeping the later
// (fresher) generation sample.
type routedWriteOp[V any] struct {
	r      Rebalanced[V]
	e      int
	gen    uint64
	k      uint64
	v      V
	remove bool
}

func (o *routedWriteOp[V]) CombineKey() comm.CombineKey {
	return comm.CombineKey{Kind: combineKindMapWriteRouted, Ref: o.r.m.priv, K: o.k}
}

func (o *routedWriteOp[V]) Absorb(later comm.CombinableOp) (int64, bool) {
	l := later.(*routedWriteOp[V])
	o.gen = l.gen
	o.v = l.v
	o.remove = l.remove
	return 0, true
}

func (o *routedWriteOp[V]) Exec(tc *pgas.Ctx) {
	op := *o
	o.r.applyRouted(tc, o.e, o.gen, func(ac *pgas.Ctx, tok *epoch.Token, b *list.List[V]) {
		if op.remove {
			b.Remove(ac, tok, op.k)
		} else {
			b.Upsert(ac, tok, op.k, op.v)
		}
	})
}

// applyRouted is the delivered side of every routed mutation: take the
// local replica's combiner, re-check the generation inside it (exact —
// migrations of this bucket serialize on the same combiner), and
// either apply against the slot's current list or re-dispatch to the
// bucket's new owner. The re-dispatch is an async task: a synchronous
// on-stmt here could deadlock two locales draining each other's
// combined deliveries, while an async task is tracked by system
// quiescence and holds no lock across the hop.
func (r Rebalanced[V]) applyRouted(tc *pgas.Ctx, e int, gen uint64, apply func(ac *pgas.Ctx, tok *epoch.Token, b *list.List[V])) {
	t := r.m.priv.Get(tc)
	t.comb.Do(func() {
		owner, cur := r.tab.Owner(e)
		if cur != gen {
			tc.Sys().Counters().IncMigReroute(tc.Here())
			if tr := tc.Sys().Tracer(); tr != nil {
				tr.Instant(tc.Here(), trace.KindReroute, tc.TaskID(), tc.Here(), owner, 0, int64(e))
			}
			tc.AsyncOn(owner, func(ac *pgas.Ctx) {
				r.applyRouted(ac, e, cur, apply)
			})
			return
		}
		slot := t.buckets[e]
		slot.heat.Add(1)
		r.m.em.Protect(tc, func(tok *epoch.Token) {
			apply(tc, tok, slot.list.Load())
		})
	})
}

// UpsertAgg buffers a fire-and-forget upsert toward k's *current*
// owner — UpsertAgg's contract with owner-table routing. Composable
// with the system's combine policy: repeat writes to k absorb in
// flight exactly as on the static path.
func (r Rebalanced[V]) UpsertAgg(c *pgas.Ctx, k uint64, v V) {
	e := r.m.BucketOf(k)
	owner, gen := r.tab.Owner(e)
	c.Aggregator(owner).CallCombinable(mapWriteBytes, &routedWriteOp[V]{r: r, e: e, gen: gen, k: k, v: v})
}

// RemoveAgg buffers a fire-and-forget removal of k with the same
// routing and combining contract as UpsertAgg.
func (r Rebalanced[V]) RemoveAgg(c *pgas.Ctx, k uint64) {
	e := r.m.BucketOf(k)
	owner, gen := r.tab.Owner(e)
	c.Aggregator(owner).CallCombinable(mapWriteBytes, &routedWriteOp[V]{r: r, e: e, gen: gen, k: k, remove: true})
}

// InsertBulk adds every absent pair, routed to each bucket's current
// owner and applied under its combiner (insert-if-absent does not
// merge, so the pairs ride the plain aggregated path). Returns how
// many inserted.
func (r Rebalanced[V]) InsertBulk(c *pgas.Ctx, pairs []KV[V]) int {
	var inserted atomic.Int64
	for _, kv := range pairs {
		kv := kv
		e := r.m.BucketOf(kv.K)
		owner, gen := r.tab.Owner(e)
		c.Aggregator(owner).Call(func(tc *pgas.Ctx) {
			r.applyRouted(tc, e, gen, func(ac *pgas.Ctx, tok *epoch.Token, b *list.List[V]) {
				if b.Insert(ac, tok, kv.K, kv.V) {
					inserted.Add(1)
				}
			})
		})
	}
	c.Flush()
	return int(inserted.Load())
}

// Failover adopts every bucket the dead locale owns onto the
// survivors: bucket e goes to the e-th alive locale round-robin, so a
// given crash always produces the same deterministic placement. Each
// adoption is one ordinary epoch-coherent Migrate — the entry hop
// targets the dead source, so the caller must pass a salvage context
// (pgas.Ctx.Salvage) or every migration is refused. The retired lists
// land on the dead locale's limbo; run EpochManager.ForceRetire
// afterwards to drain them and clear any stranded pins.
//
// Every completed adoption records one always-on KindAdopt span
// (src = dead locale, dst = adopter, bytes = payload, arg = bucket),
// so a trace's adopt begin-count equals the returned shard count
// exactly; the handoff's own duration is on its KindMigrate span.
func (r Rebalanced[V]) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	sys := c.Sys()
	var alive []int
	for l := 0; l < r.m.locales; l++ {
		if l != dead && sys.Alive(l) {
			alive = append(alive, l)
		}
	}
	if len(alive) == 0 {
		return 0, 0
	}
	tr := sys.Tracer()
	for e := 0; e < r.m.nbuckets; e++ {
		if owner, _ := r.tab.Owner(e); owner != dead {
			continue
		}
		dst := alive[e%len(alive)]
		b, ok := r.Migrate(c, e, dst)
		if !ok {
			continue
		}
		shards++
		bytes += b
		if tr != nil {
			sp := tr.Begin(c.Here(), trace.KindAdopt, c.TaskID(), dead, dst, 0, int64(e))
			sp.EndWith(b, int64(e))
		}
	}
	return shards, bytes
}

// Migrate hands bucket e to locale dst: drain the source's combiner,
// snapshot the bucket, ship the contents through the bulk framing,
// swap the slot's list pointer, republish the owner table with a
// bumped generation, and retire the old list's memory through the
// epoch manager. Returns the payload bytes shipped and whether the
// migration ran — it declines (false) when dst already owns e or when
// another migration republished e after the caller sampled it.
//
// Every completed migration books one MigAdopted at the destination
// (inside the shipped fill op), one MigRetired and the payload's
// MigBytes at the source — an empty bucket still ships its (empty)
// fill op, so adopted == retired == migrations exactly.
func (r Rebalanced[V]) Migrate(c *pgas.Ctx, e, dst int) (bytes int64, ok bool) {
	if dst < 0 || dst >= r.m.locales {
		return 0, false
	}
	// Migrating into a dead locale would strand the bucket: the fill op
	// would drain to the lost-ops ledger and the republished owner would
	// never answer. Decline — even from a salvage context.
	if !c.Sys().Alive(dst) {
		return 0, false
	}
	src, gen := r.tab.Owner(e)
	if src == dst {
		return 0, false
	}
	c.On(src, func(lc *pgas.Ctx) {
		t := r.m.priv.Get(lc)
		t.comb.Do(func() {
			// Re-check under the combiner: a migration that won the race
			// republished e, and this one must not double-move it.
			if _, cur := r.tab.Owner(e); cur != gen {
				return
			}
			slot := t.buckets[e]
			old := slot.list.Load()
			var keys []uint64
			var vals []V
			r.m.em.Protect(lc, func(tok *epoch.Token) {
				keys, vals = old.Entries(lc, tok)
			})
			// The fresh list is homed on dst; it stays private (published
			// to nobody) until the fill op below has drained, so the swap
			// installs a complete list.
			fresh := list.New[V](lc, dst, r.m.em)
			bytes = int64(len(keys)) * mapWriteBytes
			agg := lc.Aggregator(dst)
			landed := false
			agg.CallSized(bytes, func(ac *pgas.Ctx) {
				landed = true
				ac.Sys().Counters().IncMigAdopt(ac.Here())
				r.m.em.Protect(ac, func(tok *epoch.Token) {
					for i, k := range keys {
						fresh.Insert(ac, tok, k, vals[i])
					}
				})
			})
			// Synchronous single-destination drain: legal while holding
			// the combiner (no system quiesce, no foreign combiner taken —
			// the fill op touches only the still-private fresh list).
			agg.Flush()
			if !landed {
				// dst died between the entry liveness check and the drain:
				// the fill op was refused into the lost-ops ledger. Abandon
				// the handoff — the old list stays published, ownership
				// does not move, and the books stay balanced (no adopt was
				// counted, so no retire may be either). The private fresh
				// list is retired so nothing leaks.
				r.m.em.Protect(lc, func(tok *epoch.Token) {
					fresh.Retire(lc, tok)
				})
				bytes = 0
				return
			}
			// The span opens only once the fill has landed: nothing can
			// fail past this point, so migration spans count completed
			// handoffs exactly (begins == MigAdopted).
			var sp trace.Span
			if tr := lc.Sys().Tracer(); tr != nil {
				sp = tr.Begin(lc.Here(), trace.KindMigrate, lc.TaskID(), lc.Here(), dst, 0, int64(e))
			}
			slot.list.Store(fresh)
			r.tab.Republish(e, dst)
			r.m.em.Protect(lc, func(tok *epoch.Token) {
				old.Retire(lc, tok)
			})
			sc := lc.Sys().Counters()
			sc.IncMigRetire(lc.Here())
			sc.IncMigBytes(lc.Here(), bytes)
			ok = true
			sp.EndWith(bytes, int64(e))
		})
	})
	if !ok {
		bytes = 0
	}
	return bytes, ok
}
