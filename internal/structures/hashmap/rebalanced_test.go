package hashmap

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// A migration moves a bucket's contents and its future ownership, books
// exact adopt/retire/bytes evidence on both sides, and leaves every key
// readable through the view and through the base map.
func TestRebalancedMigrateMovesBucket(t *testing.T) {
	const locales = 4
	s := newTestSystem(t, locales, comm.BackendNone)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 16, em)
	rv := m.Rebalanced(c0)

	keys := make([]uint64, 0, 24)
	for k := uint64(1); k <= 24; k++ {
		rv.UpsertAgg(c0, k, int64(k)*10)
		keys = append(keys, k)
	}
	c0.Flush()

	e := m.BucketOf(keys[0])
	inBucket := 0
	for _, k := range keys {
		if m.BucketOf(k) == e {
			inBucket++
		}
	}
	src := rv.EntryOwner(e)
	if src != m.HomeOf(keys[0]) {
		t.Fatalf("pre-migration owner %d != static home %d", src, m.HomeOf(keys[0]))
	}
	dst := (src + 1) % locales

	before := s.Counters().Snapshot()
	bytes, ok := rv.Migrate(c0, e, dst)
	if !ok {
		t.Fatal("migration declined")
	}
	if want := int64(inBucket) * mapWriteBytes; bytes != want {
		t.Fatalf("migration shipped %d bytes, want %d (%d entries)", bytes, want, inBucket)
	}
	if got := rv.EntryOwner(e); got != dst {
		t.Fatalf("owner after migration = %d, want %d", got, dst)
	}
	if got := rv.OwnerOf(keys[0]); got != dst {
		t.Fatalf("OwnerOf = %d, want %d", got, dst)
	}
	delta := s.Counters().Snapshot().Sub(before)
	if delta.MigAdopted != 1 || delta.MigRetired != 1 || delta.MigBytes != bytes {
		t.Fatalf("books = adopted %d retired %d bytes %d, want 1/1/%d",
			delta.MigAdopted, delta.MigRetired, delta.MigBytes, bytes)
	}

	// Every key — migrated bucket or not — stays readable on both paths.
	tok := em.Register(c0)
	for _, k := range keys {
		if v, okGet := rv.Get(c0, tok, k); !okGet || v != int64(k)*10 {
			t.Fatalf("view Get(%d) = (%d,%v) after migration", k, v, okGet)
		}
		if v, okGet := m.Get(c0, tok, k); !okGet || v != int64(k)*10 {
			t.Fatalf("base Get(%d) = (%d,%v) after migration", k, v, okGet)
		}
	}
	tok.Unregister(c0)

	// Migrating to the current owner declines without touching the books.
	if b, okSame := rv.Migrate(c0, e, dst); okSame || b != 0 {
		t.Fatalf("self-migration = (%d,%v), want decline", b, okSame)
	}

	// New writes route to the new owner; migrating back works.
	rv.UpsertAgg(c0, keys[0], -1)
	c0.Flush()
	tok = em.Register(c0)
	if v, okGet := rv.Get(c0, tok, keys[0]); !okGet || v != -1 {
		t.Fatalf("Get after post-migration write = (%d,%v)", v, okGet)
	}
	tok.Unregister(c0)
	if _, okBack := rv.Migrate(c0, e, src); !okBack {
		t.Fatal("migration back declined")
	}
	snap := s.Counters().Snapshot()
	if snap.MigAdopted != snap.MigRetired {
		t.Fatalf("books unbalanced: adopted %d retired %d", snap.MigAdopted, snap.MigRetired)
	}

	em.Clear(c0)
	st := em.Stats(c0)
	if st.Deferred != st.Reclaimed {
		t.Fatalf("epoch books: deferred %d reclaimed %d", st.Deferred, st.Reclaimed)
	}
	heap := s.HeapStats()
	if heap.UAFLoads != 0 || heap.UAFStores != 0 || heap.UAFFrees != 0 {
		t.Fatalf("use-after-free detected: %+v", heap)
	}
	m.Destroy(c0)
}

// An empty bucket still ships its (empty) fill op, so migrations,
// adopts, and retires stay in exact correspondence.
func TestRebalancedMigrateEmptyBucket(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 8, em)
	rv := m.Rebalanced(c0)

	bytes, ok := rv.Migrate(c0, 0, 1)
	if !ok || bytes != 0 {
		t.Fatalf("empty-bucket migration = (%d,%v), want (0,true)", bytes, ok)
	}
	snap := s.Counters().Snapshot()
	if snap.MigAdopted != 1 || snap.MigRetired != 1 || snap.MigBytes != 0 {
		t.Fatalf("books = adopted %d retired %d bytes %d, want 1/1/0",
			snap.MigAdopted, snap.MigRetired, snap.MigBytes)
	}
	em.Clear(c0)
	m.Destroy(c0)
}

// A routed write that raced a migration — buffered toward the old
// owner, delivered after the republish — detects the generation bump
// and re-dispatches itself to the current owner instead of landing on
// a shard that no longer owns the bucket.
func TestRebalancedStaleWriteReroutes(t *testing.T) {
	const locales = 4
	s := newTestSystem(t, locales, comm.BackendNone)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 16, em)
	rv := m.Rebalanced(c0)

	// A key whose bucket starts on a remote locale, so the write
	// buffers instead of executing inline.
	var k uint64
	for k = 1; m.HomeOf(k) == 0; k++ {
	}
	e := m.BucketOf(k)
	src := rv.EntryOwner(e)
	dst := (src + 1) % locales
	if dst == 0 {
		dst = (dst + 1) % locales
	}

	rv.UpsertAgg(c0, k, 42) // buffered toward src, not yet delivered
	if _, ok := rv.Migrate(c0, e, dst); !ok {
		t.Fatal("migration declined")
	}
	c0.Flush() // delivers the stale op at src; it must re-route to dst

	snap := s.Counters().Snapshot()
	if snap.MigReroutes == 0 {
		t.Fatalf("stale write did not re-route: %+v", snap)
	}
	tok := em.Register(c0)
	if v, ok := rv.Get(c0, tok, k); !ok || v != 42 {
		t.Fatalf("Get after re-routed write = (%d,%v), want (42,true)", v, ok)
	}
	tok.Unregister(c0)
	em.Clear(c0)
	m.Destroy(c0)
}

// runMigrationStorm drives the seeded storm of runCombineStorm through
// the rebalanced view — concurrent Get/Upsert/Remove traffic from
// every locale — while (when migrate is set) a driver task migrates
// every bucket round-robin across destinations the whole time. After
// the workers quiesce it writes one deterministic final pass (no
// migrations in flight), so the final state is identical whether or
// not ownership moved underneath the storm. Returns the final map
// contents, the counter snapshot, and the migration count/bytes the
// driver observed.
func runMigrationStorm(t *testing.T, migrate bool) (map[uint64]int64, comm.Snapshot, int64, int64) {
	t.Helper()
	const locales, tasks, hotKeys, writes, maxMigrations = 4, 2, 4, 512, 1024
	s := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: comm.BackendNone,
		Seed:    7,
		Agg:     comm.AggConfig{Combine: true},
	})
	defer s.Shutdown()
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 32, em)
	rv := m.Rebalanced(c0)

	stop := make(chan struct{})
	var migWG sync.WaitGroup
	var migrations, migBytes int64
	if migrate {
		migWG.Add(1)
		go func() {
			defer migWG.Done()
			mc := s.Ctx(0)
			for r := 0; r < maxMigrations; r++ {
				select {
				case <-stop:
					return
				default:
				}
				e := r % rv.NumEntries()
				dst := (rv.EntryOwner(e) + 1 + r%(locales-1)) % locales
				if b, ok := rv.Migrate(mc, e, dst); ok {
					migrations++
					migBytes += b
				}
				runtime.Gosched()
			}
		}()
	}

	var wg sync.WaitGroup
	for loc := 0; loc < locales; loc++ {
		for task := 0; task < tasks; task++ {
			wg.Add(1)
			go func(loc, task int) {
				defer wg.Done()
				c := s.Ctx(loc)
				id := uint64(loc*tasks + task)
				tok := em.Register(c)
				for i := 0; i < writes; i++ {
					k := id*1000 + uint64(i)%hotKeys
					switch {
					case i%97 == 13:
						rv.RemoveAgg(c, k)
					case i%31 == 7:
						rv.Get(c, tok, k) // reads race the pointer swaps
					default:
						rv.UpsertAgg(c, k, int64(id)<<32|int64(i))
					}
				}
				c.Flush()
				tok.Unregister(c)
			}(loc, task)
		}
	}
	wg.Wait()
	close(stop)
	migWG.Wait()
	c0.Flush() // drain any still-pending async re-route chains

	// Deterministic final pass: ownership is now static, so these apply
	// in program order and fix every key's final value and presence.
	for id := uint64(0); id < locales*tasks; id++ {
		for j := uint64(0); j < hotKeys; j++ {
			k := id*1000 + j
			if (id+j)%3 == 0 {
				rv.RemoveAgg(c0, k)
			} else {
				rv.UpsertAgg(c0, k, int64(id*100+j))
			}
		}
	}
	c0.Flush()

	got := make(map[uint64]int64)
	tok := em.Register(c0)
	m.ForEach(c0, tok, func(k uint64, v int64) bool {
		got[k] = v
		return true
	})
	tok.Unregister(c0)

	snap := s.Counters().Snapshot()
	heap := s.HeapStats()
	if heap.UAFLoads != 0 || heap.UAFStores != 0 || heap.UAFFrees != 0 {
		t.Fatalf("use-after-free under migration storm: %+v", heap)
	}
	em.Clear(c0)
	if st := em.Stats(c0); st.Deferred != st.Reclaimed {
		t.Fatalf("epoch books after storm: deferred %d reclaimed %d", st.Deferred, st.Reclaimed)
	}
	m.Destroy(c0)
	return got, snap, migrations, migBytes
}

// A locale dies in the middle of the migration storm and the survivors
// adopt its shards while their own traffic — and the migration driver —
// keeps running. The test is the crash half of the storm family: the
// victim's tasks abandon fail-stop (no flush, no unregister, budget to
// the ledger), a stranded pin models the epoch wedge a dead task leaves
// behind, and recovery runs Failover plus ForceRetire from a salvage
// context against live concurrent mutators. Under -race this storms the
// failover handoff exactly where it is most fragile. Afterward:
//
//   - no bucket is owned by the dead locale, and a deterministic final
//     pass lands every key on the adopters with zero further ops lost;
//   - adopt/retire books balance globally (driver migrations, the
//     aborted-handoff path, and failover adoptions all included);
//   - ForceRetire cleared exactly the stranded pin, and the final Clear
//     drains every deferred node (deferred == reclaimed, zero UAF).
func TestRebalancedCrashFailoverStorm(t *testing.T) {
	const locales, tasks, hotKeys, writes, maxMigrations = 4, 2, 4, 512, 1024
	const victim = 2
	s := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: comm.BackendNone,
		Seed:    7,
		Agg:     comm.AggConfig{Combine: true},
	})
	defer s.Shutdown()
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	m := New[int64](c0, 32, em)
	rv := m.Rebalanced(c0)

	// The stranded pin: a task the crash will kill mid-read. Left alone
	// it wedges every epoch advance after the first; ForceRetire must
	// clear it (and only it — the workers' tokens are quiescent).
	c0.On(victim, func(vc *pgas.Ctx) { em.Pin(vc) })

	stop := make(chan struct{})
	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		mc := s.Ctx(0)
		for r := 0; r < maxMigrations; r++ {
			select {
			case <-stop:
				return
			default:
			}
			e := r % rv.NumEntries()
			dst := (rv.EntryOwner(e) + 1 + r%(locales-1)) % locales
			rv.Migrate(mc, e, dst)
			runtime.Gosched()
		}
	}()

	// The victim's tasks park at their halfway mark until the crash has
	// landed, then observe it on their next liveness check and abandon —
	// a deterministic crash point (each victim task loses exactly half
	// its budget) that still lets the survivors and the migration driver
	// race the recovery freely.
	crashed := make(chan struct{})
	var victimProgress atomic.Int64
	var lostBudget atomic.Int64
	var victimWG, wg sync.WaitGroup
	for loc := 0; loc < locales; loc++ {
		for task := 0; task < tasks; task++ {
			wg.Add(1)
			if loc == victim {
				victimWG.Add(1)
			}
			go func(loc, task int) {
				defer wg.Done()
				if loc == victim {
					defer victimWG.Done()
				}
				c := s.Ctx(loc)
				id := uint64(loc*tasks + task)
				tok := em.Register(c)
				for i := 0; i < writes; i++ {
					if loc == victim && i == writes/2 {
						<-crashed
					}
					// Fail-stop: a task dies with its locale — it abandons
					// its remaining budget to the ledger and exits without
					// flushing its buffers or unregistering its token.
					if !s.Alive(loc) {
						lostBudget.Add(int64(writes - i))
						s.Counters().IncOpsLost(loc, int64(writes-i))
						return
					}
					k := id*1000 + uint64(i)%hotKeys
					switch {
					case i%97 == 13:
						rv.RemoveAgg(c, k)
					case i%31 == 7:
						rv.Get(c, tok, k)
					default:
						rv.UpsertAgg(c, k, int64(id)<<32|int64(i))
					}
					if loc == victim {
						victimProgress.Add(1)
					}
				}
				c.Flush()
				tok.Unregister(c)
			}(loc, task)
		}
	}

	// Orchestrator: crash mid-storm, wait for the victim's tasks to
	// drain (force-retiring a pin a live task still holds would break
	// the grace period it guarantees), then recover while the surviving
	// six workers and the migration driver keep storming.
	var shards, bytes, tokens int64
	var victimOwned int
	var orchWG sync.WaitGroup
	orchWG.Add(1)
	go func() {
		defer orchWG.Done()
		for victimProgress.Load() < tasks*(writes/2) {
			runtime.Gosched()
		}
		if err := s.Crash(victim); err != nil {
			t.Errorf("Crash(%d): %v", victim, err)
			return
		}
		close(crashed)
		victimWG.Wait()
		for e := 0; e < rv.NumEntries(); e++ {
			if rv.EntryOwner(e) == victim {
				victimOwned++
			}
		}
		oc := s.Ctx(0)
		sc := oc.Salvage()
		shards, bytes = rv.Failover(sc, victim)
		tokens = em.ForceRetire(sc, victim)
		sc.Flush()
	}()

	wg.Wait()
	orchWG.Wait()
	close(stop)
	migWG.Wait()
	c0.Flush() // drain any still-pending async re-route chains

	if want := int64(tasks * (writes - writes/2)); lostBudget.Load() != want {
		t.Fatalf("victim tasks abandoned %d ops, want exactly %d (half of each task's budget)",
			lostBudget.Load(), want)
	}
	if shards != int64(victimOwned) {
		t.Fatalf("failover adopted %d shards, victim owned %d at recovery", shards, victimOwned)
	}
	if shards == 0 {
		t.Fatal("victim owned no shards at recovery; the failover is vacuous")
	}
	if tokens != 1 {
		t.Fatalf("force-retired %d tokens, want exactly the stranded pin", tokens)
	}
	for e := 0; e < rv.NumEntries(); e++ {
		if own := rv.EntryOwner(e); own == victim {
			t.Fatalf("entry %d still owned by dead locale %d", e, victim)
		}
	}

	// Deterministic final pass: every key re-written from locale 0 must
	// land on the adopters — zero further refusals — fixing the exact
	// final contents regardless of what the crash swallowed.
	preLost := s.Counters().Snapshot().OpsLost
	for id := uint64(0); id < locales*tasks; id++ {
		for j := uint64(0); j < hotKeys; j++ {
			k := id*1000 + j
			if (id+j)%3 == 0 {
				rv.RemoveAgg(c0, k)
			} else {
				rv.UpsertAgg(c0, k, int64(id*100+j))
			}
		}
	}
	c0.Flush()

	want := make(map[uint64]int64)
	for id := uint64(0); id < locales*tasks; id++ {
		for j := uint64(0); j < hotKeys; j++ {
			if (id+j)%3 != 0 {
				want[id*1000+j] = int64(id*100 + j)
			}
		}
	}
	got := make(map[uint64]int64)
	tok := em.Register(c0)
	m.ForEach(c0, tok, func(k uint64, v int64) bool {
		got[k] = v
		return true
	})
	tok.Unregister(c0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery state diverged:\ngot:  %v\nwant: %v", got, want)
	}

	snap := s.Counters().Snapshot()
	if snap.OpsLost != preLost {
		t.Fatalf("post-recovery writes were refused: opsLost %d -> %d", preLost, snap.OpsLost)
	}
	if snap.OpsLost < lostBudget.Load() {
		t.Fatalf("ledger %d below the victims' abandoned budget %d", snap.OpsLost, lostBudget.Load())
	}
	if snap.MigAdopted != snap.MigRetired {
		t.Fatalf("books unbalanced after crash storm: adopted %d retired %d", snap.MigAdopted, snap.MigRetired)
	}
	if snap.MigAdopted < shards {
		t.Fatalf("adopted %d below failover's %d shards", snap.MigAdopted, shards)
	}
	if bytes < 0 || snap.MigBytes < bytes {
		t.Fatalf("failover bytes %d exceed total migrated bytes %d", bytes, snap.MigBytes)
	}

	heap := s.HeapStats()
	if heap.UAFLoads != 0 || heap.UAFStores != 0 || heap.UAFFrees != 0 {
		t.Fatalf("use-after-free under crash storm: %+v", heap)
	}
	em.Clear(c0)
	if st := em.Stats(c0); st.Deferred != st.Reclaimed {
		t.Fatalf("epoch books after crash storm: deferred %d reclaimed %d", st.Deferred, st.Reclaimed)
	}
	m.Destroy(c0)
}

// The migration storm is invisible to the data: a run whose buckets
// migrated continuously lands bit-identical to a static-ownership run
// of the same seeded workload, with zero use-after-free and exactly
// balanced adopt/retire books. Run under -race this storms the
// handoff (combiner drain, pointer swap, epoch retire) from 8 mutator
// tasks plus the migration driver.
func TestRebalancedMigrationStormEquivalence(t *testing.T) {
	moved, movedSnap, migrations, migBytes := runMigrationStorm(t, true)
	static, staticSnap, _, _ := runMigrationStorm(t, false)

	if !reflect.DeepEqual(moved, static) {
		t.Fatalf("migration changed final map state:\nmoved:  %v\nstatic: %v", moved, static)
	}
	if len(moved) == 0 {
		t.Fatal("storm left the map empty; the equivalence is vacuous")
	}
	if migrations == 0 {
		t.Fatal("driver performed no migrations; the storm is vacuous")
	}
	if movedSnap.MigAdopted != migrations || movedSnap.MigRetired != migrations {
		t.Fatalf("books: adopted %d retired %d, driver counted %d",
			movedSnap.MigAdopted, movedSnap.MigRetired, migrations)
	}
	if movedSnap.MigBytes != migBytes {
		t.Fatalf("moved bytes %d != shipped bulk bytes %d", movedSnap.MigBytes, migBytes)
	}
	if staticSnap.MigAdopted != 0 || staticSnap.MigRetired != 0 || staticSnap.MigReroutes != 0 {
		t.Fatalf("static run booked migration evidence: %+v", staticSnap)
	}
}
