// Package hashmap implements a distributed non-blocking hash map in
// the spirit of the Interlocked Hash Table the paper announces as the
// first application of its constructs (Jenkins, Zhou & Spear's
// concurrent redesign of Go's built-in map, ported to PGAS).
//
// The map is a fixed power-of-two bucket array; each bucket is a
// Harris-style lock-free sorted list homed on a locale chosen
// cyclically, so the structure — like a Chapel Cyclic-distributed
// array — spreads both storage and contention across the system. All
// mutation is non-blocking CAS on network-atomic words; all
// reclamation of removed entries goes through a shared EpochManager.
package hashmap

import (
	"sync/atomic"

	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/list"
)

// Map is a distributed lock-free hash map from uint64 keys to V.
type Map[V any] struct {
	buckets []*list.List[V]
	mask    uint64
	em      epoch.EpochManager
	locales int
}

// New creates a map with the given bucket count (rounded up to a power
// of two, minimum 1), buckets distributed cyclically across locales.
func New[V any](c *pgas.Ctx, buckets int, em epoch.EpochManager) *Map[V] {
	n := 1
	for n < buckets {
		n <<= 1
	}
	L := c.NumLocales()
	m := &Map[V]{buckets: make([]*list.List[V], n), mask: uint64(n - 1), em: em, locales: L}
	for i := range m.buckets {
		m.buckets[i] = list.New[V](c, i%L, em)
	}
	return m
}

// Manager returns the epoch manager the map reclaims through.
func (m *Map[V]) Manager() epoch.EpochManager { return m.em }

// NumBuckets returns the bucket count.
func (m *Map[V]) NumBuckets() int { return len(m.buckets) }

// hash finalizes the key (splitmix64 mixer) so adjacent keys spread
// across buckets.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// bucket returns the list for k.
func (m *Map[V]) bucket(k uint64) *list.List[V] {
	return m.buckets[hash(k)&m.mask]
}

// BucketLocale reports which locale owns k's bucket, for
// locality-aware callers.
func (m *Map[V]) BucketLocale(k uint64) int {
	return int(hash(k)&m.mask) % m.locales
}

// Insert adds (k, v) if absent, reporting whether it inserted.
func (m *Map[V]) Insert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	return m.bucket(k).Insert(c, tok, k, v)
}

// KV is one key/value pair for the bulk-insert path.
type KV[V any] struct {
	K uint64
	V V
}

// InsertBulk adds every absent (k, v) pair, returning how many were
// inserted. Pairs are routed through the calling task's aggregation
// buffers to the locale owning their bucket and executed there — the
// remote CAS per insert of the per-op path becomes a locale-local CAS
// inside a per-destination batch, so the communication cost is one
// bulk flush per destination locale (per buffer capacity) instead of
// one round trip per pair. Each batch runs under a destination-local
// epoch token; no caller token is needed.
//
// Duplicate keys within pairs insert first-come-first-served, like
// concurrent Inserts.
func (m *Map[V]) InsertBulk(c *pgas.Ctx, pairs []KV[V]) int {
	var inserted atomic.Int64
	for _, kv := range pairs {
		kv := kv
		c.Aggregator(m.BucketLocale(kv.K)).Call(func(tc *pgas.Ctx) {
			m.em.Protect(tc, func(tok *epoch.Token) {
				if m.bucket(kv.K).Insert(tc, tok, kv.K, kv.V) {
					inserted.Add(1)
				}
			})
		})
	}
	c.Flush()
	return int(inserted.Load())
}

// Upsert inserts or replaces (k, v), reporting whether it replaced an
// existing value.
func (m *Map[V]) Upsert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	return m.bucket(k).Upsert(c, tok, k, v)
}

// Remove deletes k, reporting whether it was present.
func (m *Map[V]) Remove(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	return m.bucket(k).Remove(c, tok, k)
}

// Get returns the value for k.
func (m *Map[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (V, bool) {
	return m.bucket(k).Get(c, tok, k)
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	return m.bucket(k).Contains(c, tok, k)
}

// ForEach visits every live entry under one pin (a weakly consistent
// snapshot, like iterating Go's sync.Map: entries inserted or removed
// concurrently may or may not be observed). Iteration order is bucket
// order then key order. fn returning false stops early.
func (m *Map[V]) ForEach(c *pgas.Ctx, tok *epoch.Token, fn func(k uint64, v V) bool) {
	for _, b := range m.buckets {
		stop := false
		for _, k := range b.Keys(c, tok) {
			if v, ok := b.Get(c, tok, k); ok {
				if !fn(k, v) {
					stop = true
					break
				}
			}
		}
		if stop {
			return
		}
	}
}

// Len counts entries across all buckets (O(n), diagnostic).
func (m *Map[V]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	n := 0
	for _, b := range m.buckets {
		n += b.Len(c, tok)
	}
	return n
}

// Stats sums the bucket lists' operation counters.
func (m *Map[V]) Stats() list.Stats {
	var s list.Stats
	for _, b := range m.buckets {
		bs := b.Stats()
		s.Inserts += bs.Inserts
		s.Removes += bs.Removes
		s.Unlinks += bs.Unlinks
	}
	return s
}
