// Package hashmap implements a distributed non-blocking hash map in
// the spirit of the Interlocked Hash Table the paper announces as the
// first application of its constructs (Jenkins, Zhou & Spear's
// concurrent redesign of Go's built-in map, ported to PGAS).
//
// The map is a fixed power-of-two bucket array; each bucket is a
// Harris-style lock-free sorted list homed on a locale chosen
// cyclically, so the structure — like a Chapel Cyclic-distributed
// array — spreads both storage and contention across the system. All
// mutation is non-blocking CAS on network-atomic words; all
// reclamation of removed entries goes through a shared EpochManager.
//
// The bucket *table* is privatized: Map is a copyable record-wrapped
// handle, and every locale holds its own replica of the (immutable)
// bucket metadata through the pgas privatization registry. Resolving
// key → bucket is therefore a locale-private indexed load on every
// locale — zero communication — and an operation's only remote events
// are the CASes/reads on the bucket's own cells, which live with the
// bucket's owner. Callers that want those to be local too can route
// work with HomeOf.
package hashmap

import (
	"fmt"
	"sync/atomic"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/list"
	"gopgas/internal/structures/shared"
)

// bucketSlot is one bucket's shared, mutable cell: the current list
// behind an atomic pointer (swapped by ownership migrations, loaded by
// every operation) and a heat counter the rebalance controller reads
// to rank candidate buckets. Slots are shared across every locale's
// table replica, so a migration's single pointer store republishes the
// new list to all locales at once.
type bucketSlot[V any] struct {
	list atomic.Pointer[list.List[V]]
	heat atomic.Int64
}

// table is one locale's replica of the bucket metadata. The slot
// handles are immutable after construction (the slots' contents are
// the mutable part), so replicas never need coherence traffic —
// exactly what makes privatization free. The combiner is the other
// mutable member: each locale's replica carries the flat combiner that
// serializes combined writes delivered to that locale's buckets (see
// UpsertAgg) and, under rebalancing, the migrations of buckets it
// owns.
type table[V any] struct {
	buckets []*bucketSlot[V]
	comb    shared.Combiner
}

// bucket returns the slot's current list.
func (t *table[V]) bucket(e int) *list.List[V] {
	return t.buckets[e].list.Load()
}

// Map is a distributed lock-free hash map from uint64 keys to V. It is
// a small copyable handle (like EpochManager): copy it into tasks and
// across locales freely. The zero value is invalid; create with New.
type Map[V any] struct {
	priv     pgas.Privatized[table[V]]
	mask     uint64
	nbuckets int
	em       epoch.EpochManager
	locales  int
}

// New creates a map with the given bucket count (rounded up to a power
// of two), buckets distributed cyclically across locales. buckets must
// be positive: a non-positive count is always a caller bug (a map with
// defaulted-to-one bucket silently serializes every key on one list),
// so it panics rather than rounding up.
func New[V any](c *pgas.Ctx, buckets int, em epoch.EpochManager) Map[V] {
	if buckets <= 0 {
		panic(fmt.Sprintf("hashmap: bucket count must be positive, got %d", buckets))
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	L := c.NumLocales()
	// Build the shared bucket slots once: slot i's initial list is
	// homed on locale i%L, so the bucket's mutable state lives with its
	// owner regardless of which locale's replica resolved it. The slot
	// pointers are shared across replicas; a migration's list swap is
	// therefore visible to every locale with one store.
	slots := make([]*bucketSlot[V], n)
	for i := range slots {
		slots[i] = &bucketSlot[V]{}
		slots[i].list.Store(list.New[V](c, i%L, em))
	}
	m := Map[V]{mask: uint64(n - 1), nbuckets: n, em: em, locales: L}
	m.priv = pgas.NewPrivatized(c, func(lc *pgas.Ctx) *table[V] {
		replica := make([]*bucketSlot[V], n)
		copy(replica, slots)
		t := &table[V]{buckets: replica}
		t.comb.SetTracer(lc.Sys().Tracer(), lc.Here())
		return t
	})
	return m
}

// Manager returns the epoch manager the map reclaims through.
func (m Map[V]) Manager() epoch.EpochManager { return m.em }

// Destroy tears the map down: every bucket list frees its remaining
// nodes (one bulk free per bucket toward its home), then the
// privatized table replicas are released and the registry slot is
// returned for reuse. The bucket lists are shared across replicas, so
// they are destroyed exactly once, before the replica teardown. The
// map must be quiescent; entries already removed were retired through
// the epoch manager — let it clear to reclaim them. No task may use
// any copy of the handle afterwards. Churn scenarios rely on this
// leaving zero gas-heap or registry residue.
func (m Map[V]) Destroy(c *pgas.Ctx) {
	for _, s := range m.priv.Get(c).buckets {
		s.list.Load().Destroy(c)
	}
	m.priv.Destroy(c, nil)
}

// NumBuckets returns the bucket count.
func (m Map[V]) NumBuckets() int { return m.nbuckets }

// hash finalizes the key (splitmix64 mixer) so adjacent keys spread
// across buckets.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// bucket returns the current list for k, resolved through the calling
// locale's privatized table replica — zero communication beyond the
// slot's atomic pointer load.
func (m Map[V]) bucket(c *pgas.Ctx, k uint64) *list.List[V] {
	return m.priv.Get(c).bucket(int(hash(k) & m.mask))
}

// BucketOf reports which bucket index k hashes to — the entry
// granularity the rebalanced view migrates at. Zero communication.
func (m Map[V]) BucketOf(k uint64) int {
	return int(hash(k) & m.mask)
}

// HomeOf reports which locale owns k's bucket. Callers co-locate work
// with it (run the mutation in an on-statement or aggregation batch
// toward HomeOf(k)) to make the bucket CAS locale-local; InsertBulk
// does exactly this. Zero communication: the routing map is replicated
// with the table. This is the *static* owner arithmetic; the
// Rebalanced view routes through a live owner table instead.
func (m Map[V]) HomeOf(k uint64) int {
	return int(hash(k)&m.mask) % m.locales
}

// BucketLocale is HomeOf under its historical name.
func (m Map[V]) BucketLocale(k uint64) int { return m.HomeOf(k) }

// Insert adds (k, v) if absent, reporting whether it inserted.
func (m Map[V]) Insert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	return m.bucket(c, k).Insert(c, tok, k, v)
}

// KV is one key/value pair for the bulk-insert path.
type KV[V any] struct {
	K uint64
	V V
}

// InsertBulk adds every absent (k, v) pair, returning how many were
// inserted. Pairs are routed through the calling task's aggregation
// buffers to the locale owning their bucket and executed there — the
// remote CAS per insert of the per-op path becomes a locale-local CAS
// inside a per-destination batch, so the communication cost is one
// bulk flush per destination locale (per buffer capacity) instead of
// one round trip per pair. Each batch runs under a destination-local
// epoch token; no caller token is needed.
//
// Duplicate keys within pairs insert first-come-first-served, like
// concurrent Inserts.
func (m Map[V]) InsertBulk(c *pgas.Ctx, pairs []KV[V]) int {
	var inserted atomic.Int64
	for _, kv := range pairs {
		kv := kv
		c.Aggregator(m.HomeOf(kv.K)).Call(func(tc *pgas.Ctx) {
			m.em.Protect(tc, func(tok *epoch.Token) {
				if m.bucket(tc, kv.K).Insert(tc, tok, kv.K, kv.V) {
					inserted.Add(1)
				}
			})
		})
	}
	c.Flush()
	return int(inserted.Load())
}

// Upsert inserts or replaces (k, v), reporting whether it replaced an
// existing value.
func (m Map[V]) Upsert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	return m.bucket(c, k).Upsert(c, tok, k, v)
}

// combineKindMapWrite namespaces the hashmap's merge keys away from
// the pgas and shared layers' kinds.
const combineKindMapWrite uint8 = 32

// mapWriteOp is one buffered fire-and-forget write (upsert or remove)
// headed for its key's home locale. Writes to the same key absorb
// last-writer-wins in the task's aggregation buffer — an upsert
// superseded by a remove ships only the remove, and vice versa — and
// the survivor applies on the owner through the table replica's flat
// combiner instead of CAS-ing the hot bucket directly.
type mapWriteOp[V any] struct {
	m      Map[V]
	k      uint64
	v      V
	remove bool
}

func (o *mapWriteOp[V]) CombineKey() comm.CombineKey {
	return comm.CombineKey{Kind: combineKindMapWrite, Ref: o.m.priv, K: o.k}
}

func (o *mapWriteOp[V]) Absorb(later comm.CombinableOp) (int64, bool) {
	l := later.(*mapWriteOp[V])
	o.v = l.v
	o.remove = l.remove
	return 0, true
}

func (o *mapWriteOp[V]) Exec(tc *pgas.Ctx) {
	t := o.m.priv.Get(tc)
	t.comb.Do(func() {
		o.m.em.Protect(tc, func(tok *epoch.Token) {
			b := t.bucket(int(hash(o.k) & o.m.mask))
			if o.remove {
				b.Remove(tc, tok, o.k)
			} else {
				b.Upsert(tc, tok, o.k, o.v)
			}
		})
	})
}

// mapWriteBytes models one aggregated map write on the wire: a key
// plus one value word, matching the pgas layer's put convention.
const mapWriteBytes = 16

// UpsertAgg buffers a fire-and-forget upsert of (k, v) into the
// calling task's aggregation buffer toward k's home locale. The write
// executes there when the buffer flushes (at capacity, or at
// Ctx.Flush), under a destination-local epoch token, serialized
// through the owner replica's flat combiner. Under the system's
// AggConfig.Combine policy, repeated writes to one key collapse to the
// last buffered one before the wire. Use Upsert when the replaced
// verdict or immediate visibility matters.
func (m Map[V]) UpsertAgg(c *pgas.Ctx, k uint64, v V) {
	c.Aggregator(m.HomeOf(k)).CallCombinable(mapWriteBytes, &mapWriteOp[V]{m: m, k: k, v: v})
}

// RemoveAgg buffers a fire-and-forget removal of k, with the same
// routing, combining and visibility contract as UpsertAgg.
func (m Map[V]) RemoveAgg(c *pgas.Ctx, k uint64) {
	c.Aggregator(m.HomeOf(k)).CallCombinable(mapWriteBytes, &mapWriteOp[V]{m: m, k: k, remove: true})
}

// Remove deletes k, reporting whether it was present.
func (m Map[V]) Remove(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	return m.bucket(c, k).Remove(c, tok, k)
}

// Get returns the value for k.
func (m Map[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (V, bool) {
	return m.bucket(c, k).Get(c, tok, k)
}

// Contains reports whether k is present.
func (m Map[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	return m.bucket(c, k).Contains(c, tok, k)
}

// ForEach visits every live entry under one pin (a weakly consistent
// snapshot, like iterating Go's sync.Map: entries inserted or removed
// concurrently may or may not be observed). Iteration order is bucket
// order then key order. fn returning false stops early.
func (m Map[V]) ForEach(c *pgas.Ctx, tok *epoch.Token, fn func(k uint64, v V) bool) {
	for _, s := range m.priv.Get(c).buckets {
		b := s.list.Load()
		stop := false
		for _, k := range b.Keys(c, tok) {
			if v, ok := b.Get(c, tok, k); ok {
				if !fn(k, v) {
					stop = true
					break
				}
			}
		}
		if stop {
			return
		}
	}
}

// Len counts entries across all buckets (O(n), diagnostic).
func (m Map[V]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	n := 0
	for _, s := range m.priv.Get(c).buckets {
		n += s.list.Load().Len(c, tok)
	}
	return n
}

// Stats sums the bucket lists' operation counters. It takes a Ctx
// because the bucket handles are resolved through the calling locale's
// privatized replica.
func (m Map[V]) Stats(c *pgas.Ctx) list.Stats {
	var s list.Stats
	for _, slot := range m.priv.Get(c).buckets {
		bs := slot.list.Load().Stats()
		s.Inserts += bs.Inserts
		s.Removes += bs.Removes
		s.Unlinks += bs.Unlinks
	}
	return s
}
