package hashmap

import (
	"sync"
	"testing"
	"time"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// TestPartitionFlapStorm is the retry plane's race-detector drill: a
// flapper goroutine severs and heals the pair (1, 2) every few hundred
// microseconds while every locale writes into the map through both
// refusable paths — synchronous Upserts (which block in parkSyncOn and
// retry across heal windows) and aggregated UpsertAggs (which park in
// the retry ledgers and redeliver at the next heal). The values are a
// pure function of the key, so redelivery order cannot change the
// final contents: after the last heal pumps the ledgers, every key
// must read back exactly, the settlement identity must hold with zero
// expiries, and nothing may land in the fail-stop ledger.
func TestPartitionFlapStorm(t *testing.T) {
	const (
		locales     = 4
		keysPerPath = 300 // per locale, per write path
	)
	sys := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: comm.BackendNone,
		// A deadline far past the test plus generous capacity: every
		// parked op survives until a heal window redelivers it.
		Park: comm.ParkConfig{DeadlineNS: int64(time.Hour), Capacity: 1 << 16},
	})
	defer sys.Shutdown()

	value := func(k uint64) int64 { return int64(k)*3 + 1 }

	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int64](c, 64, em)

		stop := make(chan struct{})
		var flapper sync.WaitGroup
		flapper.Add(1)
		go func() {
			defer flapper.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := sys.Sever(1, 2); err != nil {
					t.Errorf("sever: %v", err)
					return
				}
				time.Sleep(300 * time.Microsecond)
				if err := sys.Heal(1, 2); err != nil {
					t.Errorf("heal: %v", err)
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()

		c.CoforallLocales(func(lc *pgas.Ctx) {
			base := uint64(lc.Here()) * 2 * keysPerPath
			em.Protect(lc, func(tok *epoch.Token) {
				for i := uint64(0); i < keysPerPath; i++ {
					k := base + i
					m.Upsert(lc, tok, k, value(k))
				}
			})
			for i := uint64(0); i < keysPerPath; i++ {
				k := base + keysPerPath + i
				m.UpsertAgg(lc, k, value(k))
			}
			lc.Flush()
		})

		close(stop)
		flapper.Wait()
		// The flapper may have exited mid-window; a final heal pumps any
		// ops still parked. "not severed" just means it exited healed.
		_ = sys.Heal(1, 2)
		sys.DrainParking()

		em.Protect(c, func(tok *epoch.Token) {
			for k := uint64(0); k < locales*2*keysPerPath; k++ {
				v, ok := m.Get(c, tok, k)
				if !ok || v != value(k) {
					t.Fatalf("key %d = (%d, %v), want (%d, true)", k, v, ok, value(k))
				}
			}
		})
	})

	if n := sys.ParkedOps(); n != 0 {
		t.Fatalf("%d ops still parked after the final heal", n)
	}
	snap := sys.Counters().Snapshot()
	if snap.OpsParked != snap.OpsRedelivered+snap.OpsExpired {
		t.Fatalf("retry books unsettled: parked=%d redelivered=%d expired=%d",
			snap.OpsParked, snap.OpsRedelivered, snap.OpsExpired)
	}
	if snap.OpsExpired != 0 {
		t.Fatalf("ops expired under an hour-long deadline: %d", snap.OpsExpired)
	}
	if snap.OpsLost != 0 {
		t.Fatalf("flapping leaked into the fail-stop ledger: opsLost=%d", snap.OpsLost)
	}
}
