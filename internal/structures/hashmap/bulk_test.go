package hashmap

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// InsertBulk inserts every absent pair and reports the count;
// duplicates within the batch insert once.
func TestInsertBulk(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		m := New[int](c, 32, em)

		const n = 300
		pairs := make([]KV[int], 0, n+2)
		for k := 0; k < n; k++ {
			pairs = append(pairs, KV[int]{K: uint64(k), V: k * 10})
		}
		pairs = append(pairs, KV[int]{K: 0, V: -1}, KV[int]{K: 1, V: -1})

		if got := m.InsertBulk(c, pairs); got != n {
			t.Fatalf("InsertBulk inserted %d, want %d", got, n)
		}
		tok := em.Register(c)
		defer tok.Unregister(c)
		for k := 0; k < n; k++ {
			v, ok := m.Get(c, tok, uint64(k))
			if !ok || v != k*10 {
				t.Fatalf("Get(%d) = %d, %v", k, v, ok)
			}
		}
		if got := m.Len(c, tok); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
	})
}

// The aggregated bulk path replaces per-pair remote CAS round trips
// with per-destination batches: the remote AM-atomic count collapses
// while the same inserts run locally on their bucket's owner.
func TestInsertBulkCommVolume(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		const n = 256

		direct := New[int](c, 64, em)
		tok := em.Register(c)
		before := s.Counters().Snapshot()
		for k := 0; k < n; k++ {
			direct.Insert(c, tok, uint64(k), k)
		}
		tok.Unregister(c)
		dDirect := s.Counters().Snapshot().Sub(before)

		bulk := New[int](c, 64, em)
		pairs := make([]KV[int], n)
		for k := range pairs {
			pairs[k] = KV[int]{K: uint64(k), V: k}
		}
		before = s.Counters().Snapshot()
		if got := bulk.InsertBulk(c, pairs); got != n {
			t.Fatalf("InsertBulk inserted %d, want %d", got, n)
		}
		dBulk := s.Counters().Snapshot().Sub(before)

		// ~3/4 of buckets are remote from locale 0: the direct path
		// pays hundreds of AM round trips, the bulk path at most one
		// flush per destination (3 here, n < capacity).
		if dBulk.AggFlushes != 3 {
			t.Fatalf("bulk insert used %d flushes, want 3 (%v)", dBulk.AggFlushes, dBulk)
		}
		if dBulk.AMAMOs != 0 || dBulk.Gets != 0 {
			t.Fatalf("bulk insert leaked per-op remote traffic: %v", dBulk)
		}
		if dDirect.AMAMOs+dDirect.Gets < int64(n) {
			t.Fatalf("direct insert unexpectedly cheap: %v", dDirect)
		}
	})
}
