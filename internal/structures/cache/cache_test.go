package cache

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

func TestNewValidates(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		defer func() {
			if recover() == nil {
				t.Fatal("New accepted a non-positive slot count")
			}
		}()
		New[int](c, 0, epoch.NewEpochManager(c))
	})
}

// A miss fetches through and publishes; the repeat read is a hit
// served with zero communication, on every locale.
func TestGetThroughMemoizesLocally(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[int](c, 64, em)
		if !ca.Valid() || ca.NumSlots() != 64 {
			t.Fatalf("handle: valid=%v slots=%d", ca.Valid(), ca.NumSlots())
		}
		var fetches [4]int
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				fetch := func() (int, bool) { fetches[lc.Here()]++; return 42, true }
				if v, ok := ca.GetThrough(lc, tok, 7, fetch); !ok || v != 42 {
					t.Errorf("locale %d first read = (%d, %v)", lc.Here(), v, ok)
				}
				before := s.Counters().Snapshot()
				for i := 0; i < 50; i++ {
					if v, ok := ca.GetThrough(lc, tok, 7, fetch); !ok || v != 42 {
						t.Errorf("locale %d cached read = (%d, %v)", lc.Here(), v, ok)
					}
				}
				delta := s.Counters().Snapshot().Sub(before)
				if delta.Remote() != 0 {
					t.Errorf("locale %d hits performed remote events: %v", lc.Here(), delta)
				}
			})
		})
		for l, n := range fetches {
			if n != 1 {
				t.Errorf("locale %d fetched %d times, want 1 (memoized)", l, n)
			}
		}
		st := ca.Stats(c)
		if st.Hits != 4*50 || st.Misses != 4 || st.Entries != 4 {
			t.Fatalf("stats = %+v, want 200 hits / 4 misses / 4 entries", st)
		}
		snap := s.Counters().Snapshot()
		if snap.CacheHits != 200 || snap.CacheMiss != 4 {
			t.Fatalf("comm cache counters = %d/%d, want 200/4", snap.CacheHits, snap.CacheMiss)
		}
	})
}

// Negative fetch results are not cached: every read re-fetches.
func TestNegativeResultsNotCached(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[int](c, 16, em)
		em.Protect(c, func(tok *epoch.Token) {
			fetches := 0
			fetch := func() (int, bool) { fetches++; return 0, false }
			for i := 0; i < 3; i++ {
				if _, ok := ca.GetThrough(c, tok, 9, fetch); ok {
					t.Fatal("absent key reported present")
				}
			}
			if fetches != 3 {
				t.Fatalf("absent key fetched %d times, want 3 (no negative caching)", fetches)
			}
		})
	})
}

// Invalidation unpublishes every replica once the writer's buffers
// flush, and the retired entries reclaim cleanly through the epoch
// manager — deferred == reclaimed, zero UAF.
func TestInvalidateUnpublishesAllReplicas(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[string](c, 32, em)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				ca.GetThrough(lc, tok, 3, func() (string, bool) { return "old", true })
			})
		})
		if st := ca.Stats(c); st.Entries != 4 {
			t.Fatalf("entries before invalidation = %d, want 4", st.Entries)
		}

		ca.Invalidate(c, 3)
		c.Flush() // ship the buffered remote invalidations

		st := ca.Stats(c)
		if st.Entries != 0 || st.Invalidations != 4 {
			t.Fatalf("after invalidation: %+v, want 0 entries / 4 invalidation ops", st)
		}
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if _, ok := ca.Lookup(lc, tok, 3); ok {
					t.Errorf("locale %d still serves the invalidated key", lc.Here())
				}
			})
		})

		em.Clear(c)
		est := em.Stats(c)
		if est.Deferred != 4 || est.Reclaimed != est.Deferred {
			t.Fatalf("epoch verdict: %+v, want 4 deferred == reclaimed", est)
		}
		if h := s.HeapStats(); h.UAFLoads != 0 || h.UAFFrees != 0 {
			t.Fatalf("heap verdict: %+v", h)
		}
	})
}

// The generation tag kills a fill that races an invalidation: an entry
// fetched before the bump is published dead and never served.
func TestRacingFillIsDeadOnArrival(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[int](c, 16, em)
		em.Protect(c, func(tok *epoch.Token) {
			// The fetch itself invalidates the key — the single-locale
			// deterministic stand-in for "a write-through invalidation
			// lands while the value is in flight from the owner".
			v, ok := ca.GetThrough(c, tok, 5, func() (int, bool) {
				ca.Invalidate(c, 5)
				return 1, true
			})
			if !ok || v != 1 {
				t.Fatalf("fetched read = (%d, %v)", v, ok)
			}
			// The published entry carries the pre-bump generation, so it
			// must not be served.
			if _, ok := ca.Lookup(c, tok, 5); ok {
				t.Fatal("stale entry served after a racing invalidation")
			}
			// The next miss refills under the current generation.
			if v, ok := ca.GetThrough(c, tok, 5, func() (int, bool) { return 2, true }); !ok || v != 2 {
				t.Fatalf("refill read = (%d, %v)", v, ok)
			}
			if v, ok := ca.Lookup(c, tok, 5); !ok || v != 2 {
				t.Fatalf("refilled entry not served: (%d, %v)", v, ok)
			}
		})
	})
}

// Two keys colliding in one set coexist (the second way absorbs the
// collision — the hot-pair case); a third key evicts one resident, and
// the displaced entry is retired through the epoch manager rather than
// freed in place (a pinned reader may still hold it).
func TestSetCollisionsAbsorbedThenEvict(t *testing.T) {
	s := newTestSystem(t, 1)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[int](c, 16, em)
		// Three keys in one set: k1 and k2 fill both ways, k3 evicts.
		k1 := uint64(1)
		var k2, k3 uint64
		for k2 = k1 + 1; ca.SetOf(k2) != ca.SetOf(k1); k2++ {
		}
		for k3 = k2 + 1; ca.SetOf(k3) != ca.SetOf(k1); k3++ {
		}
		em.Protect(c, func(tok *epoch.Token) {
			ca.GetThrough(c, tok, k1, func() (int, bool) { return 11, true })
			ca.GetThrough(c, tok, k2, func() (int, bool) { return 22, true })
			// Associativity: the colliding pair is served side by side.
			if v, ok := ca.Lookup(c, tok, k1); !ok || v != 11 {
				t.Fatalf("k1 after pair fill = (%d, %v), want (11, true)", v, ok)
			}
			if v, ok := ca.Lookup(c, tok, k2); !ok || v != 22 {
				t.Fatalf("k2 after pair fill = (%d, %v), want (22, true)", v, ok)
			}
			// A third key forces a round-robin eviction of one resident.
			ca.GetThrough(c, tok, k3, func() (int, bool) { return 33, true })
			if v, ok := ca.Lookup(c, tok, k3); !ok || v != 33 {
				t.Fatalf("k3 after eviction fill = (%d, %v), want (33, true)", v, ok)
			}
			_, ok1 := ca.Lookup(c, tok, k1)
			_, ok2 := ca.Lookup(c, tok, k2)
			if ok1 == ok2 {
				t.Fatalf("exactly one of the pair must survive eviction: k1=%v k2=%v", ok1, ok2)
			}
		})
		em.Clear(c)
		est := em.Stats(c)
		if est.Deferred != 1 || est.Reclaimed != 1 {
			t.Fatalf("epoch verdict: %+v, want exactly the displaced entry deferred and reclaimed", est)
		}
	})
}

// Destroy frees every published entry: a fill-only cache (no
// invalidations, so no limbo-pool nodes, which are recycled rather
// than freed by design) tears down to exactly the baseline heap.
func TestDestroyLeavesNoResidue(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		base := s.HeapStats().Live
		ca := New[int](c, 32, em)
		// Collision-free keys (one per set): a displaced entry would be
		// retired through the epoch manager instead of freed by Destroy,
		// which is not the path under test here.
		var keys []uint64
		seen := map[int]bool{}
		for k := uint64(0); len(keys) < 8; k++ {
			if idx := ca.SetOf(k); !seen[idx] {
				seen[idx] = true
				keys = append(keys, k)
			}
		}
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for _, k := range keys {
					ca.GetThrough(lc, tok, k, func() (int, bool) { return int(k), true })
				}
			})
		})
		ca.Destroy(c)
		h := s.HeapStats()
		if h.Live != base || h.UAFLoads != 0 || h.UAFFrees != 0 {
			t.Fatalf("heap after Destroy: %+v (baseline live %d)", h, base)
		}
	})
}

// Concurrent readers, writers and reclaimers under -race: hits keep
// serving while invalidations retire entries and epoch advances
// reclaim them. The poisoned heaps and deferred==reclaimed verdict
// prove no cached read ever observed reclaimed memory.
func TestConcurrentInvalidationStorm(t *testing.T) {
	const locales, keys, opsPerTask = 4, 8, 400
	s := newTestSystem(t, locales)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		ca := New[uint64](c, 32, em)
		var wg sync.WaitGroup
		for l := 0; l < locales; l++ {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				lc := s.Ctx(l)
				em.Protect(lc, func(tok *epoch.Token) {
					for i := 0; i < opsPerTask; i++ {
						k := uint64(i % keys)
						switch {
						case i%7 == 0:
							ca.Invalidate(lc, k)
						default:
							ca.GetThrough(lc, tok, k, func() (uint64, bool) { return k * 10, true })
						}
						if i%64 == 0 {
							tok.TryReclaim(lc)
						}
					}
				})
				lc.Flush()
			}(l)
		}
		wg.Wait()
		em.Clear(c)
		est := em.Stats(c)
		if est.Reclaimed != est.Deferred {
			t.Fatalf("epoch verdict: %+v, want deferred == reclaimed", est)
		}
		if h := s.HeapStats(); h.UAFLoads != 0 || h.UAFFrees != 0 {
			t.Fatalf("heap verdict: %+v", h)
		}
		snap := s.Counters().Snapshot()
		if snap.CacheInval == 0 || snap.CacheHits == 0 {
			t.Fatalf("storm exercised nothing: %v", snap)
		}
	})
}
