// Package cache implements a per-locale read replication cache with
// epoch-coherent invalidation — the software-managed analogue of the
// locality caching PGAS runtimes layer over remote data (Chapel's
// `local` optimizations, UPC's software caches), specialised to the
// owner-computed structures this repository builds.
//
// The owner-computed design deliberately funnels every operation on a
// key to the locale owning its shard. That is what makes mutations
// cheap and the comm evidence clean, but it leaves one failure mode
// open: a *hot key* turns its owner into a hotspot, and the busiest
// inbound column of the comm matrix grows with locale count. A Cache
// closes it for read-mostly traffic by memoizing owner-computed Get
// results in locale-private replicas: a repeat Get of a hot key is a
// plain local probe — zero communication — while writes broadcast an
// invalidation through the aggregation buffers so replicas converge.
//
// Each replica is a 2-way set-associative table: hot sets are small,
// so two hot keys landing in one direct-mapped slot would evict each
// other on every access; a second way absorbs exactly that collision
// for read traffic. (The coherence generation below is per *set*, so a
// write-through mutation of one key also kills its set-mate's entry —
// the set-mate pays one refetch per invalidation and then re-publishes
// under the new generation. Coexistence is per-read, not write-proof.)
// Fills prefer (in order) the way already holding the key, an empty
// way, a way holding a dead entry, and finally a round-robin victim.
//
// Coherence is generation-based ("epoch-coherent" in two senses):
//
//   - Every cache set carries a coherence generation. An invalidation
//     bumps the generation before unpublishing the key's entry, and a
//     fill tags its entry with the generation sampled *before* it
//     fetched from the owner. A lookup serves an entry only if the
//     entry's generation still matches the set's, so a fill racing an
//     invalidation can publish a stale entry but can never have it
//     served — it is dead on arrival and preferentially evicted.
//   - Entries live on the gas heap and are retired through the shared
//     EpochManager, never freed in place: a reader that resolved an
//     entry under an epoch pin keeps dereferencing it safely until two
//     epoch advances prove quiescence, exactly like a structure node.
//     The poisoned heaps turn any violation into a detected UAF.
//
// Staleness is bounded, not zero: invalidations ride the write-through
// caller's aggregation buffers (one op per locale, batched into bulk
// flushes), so a replica may serve the old value until the writer's
// buffers flush — at capacity, or at Ctx.Flush. Callers that need
// read-your-writes across locales flush after mutating.
//
// The cache itself is structure-agnostic: it memoizes any fetch
// closure. hashmap.CachedView is the packaged integration.
package cache

import (
	"fmt"
	"sync/atomic"

	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/shared"
)

// Ways is the set associativity: two hot keys colliding in one set
// coexist instead of evicting each other.
const Ways = 2

// entry is one published cache cell: an immutable (key, value) pair
// tagged with the set generation it was fetched under. Entries are
// allocated on the caching locale's gas heap and reclaimed only
// through the epoch manager once unpublished.
type entry[V any] struct {
	key uint64
	gen uint64
	val V
}

// set is one associative set of a locale's replica. All words are
// locale-private processor atomics: the hit path never communicates.
type set struct {
	// gen is the coherence generation; invalidation bumps it first,
	// killing every entry fetched under an older generation.
	gen atomic.Uint64
	// victim drives round-robin eviction when every way is live.
	victim atomic.Uint32
	// way holds the gas.Addr of each published entry (0 = empty).
	way [Ways]atomic.Uint64
}

// shard is one locale's replica: the set array plus diagnostic
// counters (the system-wide comm.Counters mirror them).
type shard struct {
	sets   []set
	hits   atomic.Int64
	misses atomic.Int64
	invals atomic.Int64
}

// Cache is the copyable handle to a distributed read cache: one
// set-associative replica per locale, sharing the structure's epoch
// manager for entry reclamation. The zero value is invalid; create
// with New. Copy the handle freely into tasks and across locales.
type Cache[V any] struct {
	obj  shared.Object[shard]
	mask uint64
}

// New creates a cache with the given per-locale entry capacity: the
// capacity is split into 2-way sets, with the set count rounded up to
// a power of two. em must be the epoch manager of the structure the
// cache fronts, so that cached entries and structure nodes share one
// reclamation domain. slots must be positive.
func New[V any](c *pgas.Ctx, slots int, em epoch.EpochManager) Cache[V] {
	if slots <= 0 {
		panic(fmt.Sprintf("cache: slot count must be positive, got %d", slots))
	}
	sets := 1
	for sets*Ways < slots {
		sets <<= 1
	}
	return Cache[V]{
		mask: uint64(sets - 1),
		obj: shared.New(c, em, func(lc *pgas.Ctx, _ int) *shard {
			return &shard{sets: make([]set, sets)}
		}),
	}
}

// Valid reports whether the handle was produced by New.
func (ca Cache[V]) Valid() bool { return ca.obj.Valid() }

// Manager returns the epoch manager entries are retired through.
func (ca Cache[V]) Manager() epoch.EpochManager { return ca.obj.Manager() }

// NumSets returns the per-locale set count.
func (ca Cache[V]) NumSets() int { return int(ca.mask) + 1 }

// NumSlots returns the per-locale entry capacity (sets × ways).
func (ca Cache[V]) NumSlots() int { return ca.NumSets() * Ways }

// SetOf reports which set k maps to — placement-aware tests and
// benchmarks use it to construct (or avoid) set collisions.
func (ca Cache[V]) SetOf(k uint64) int { return int(ca.index(k)) }

// index maps a key to its set: the splitmix64 finalizer the hashmap
// also uses, but masked from the HIGH half of the mix. The hashmap's
// bucket (and therefore home locale) comes from the low bits, so a
// cache drawing its set from the same bits would correlate set
// placement with key ownership — keys homed on one locale would
// cluster into a fraction of the sets and evict each other. The high
// half is independent of the low half, decorrelating the two layouts.
func (ca Cache[V]) index(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return (k >> 32) & ca.mask
}

// lookup probes the calling locale's replica under the caller's pin.
// It returns the set either way so the miss path can fill it.
func (ca Cache[V]) lookup(c *pgas.Ctx, sh *shard, k uint64) (*set, V, bool) {
	st := &sh.sets[ca.index(k)]
	gen := st.gen.Load()
	for w := range st.way {
		if a := gas.Addr(st.way[w].Load()); !a.IsNil() {
			// The pin makes this dereference safe: an entry is only ever
			// unpublished into the epoch manager, so it outlives every
			// reader pinned before its retirement.
			e := pgas.MustDeref[*entry[V]](c, a)
			if e.key == k && e.gen == gen {
				return st, e.val, true
			}
		}
	}
	var zero V
	return st, zero, false
}

// Lookup probes the calling locale's replica for k — a pure local hit
// test (zero communication either way). tok must be registered on the
// calling locale; Lookup pins it for the probe. Misses are NOT counted
// against the hit/miss statistics: Lookup is the diagnostic peek,
// GetThrough the memoizing read path.
func (ca Cache[V]) Lookup(c *pgas.Ctx, tok *epoch.Token, k uint64) (V, bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	_, v, ok := ca.lookup(c, ca.obj.Local(c), k)
	return v, ok
}

// GetThrough is the memoizing read: it serves k from the calling
// locale's replica when present and coherent, and otherwise calls
// fetch — the owner-computed lookup of the structure the cache fronts
// — and publishes the result locally for the next reader. Negative
// results (fetch reporting !ok) are not cached.
//
// fetch runs under the same token; it may pin and unpin it (structure
// operations bracket their own pins), so GetThrough re-pins around
// publication. The published entry is tagged with the set generation
// sampled before fetch ran: if an invalidation lands in between, the
// entry is published dead and never served.
func (ca Cache[V]) GetThrough(c *pgas.Ctx, tok *epoch.Token, k uint64, fetch func() (V, bool)) (V, bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	sh := ca.obj.Local(c)
	st, v, ok := ca.lookup(c, sh, k)
	if ok {
		sh.hits.Add(1)
		c.Sys().Counters().IncCacheHit(c.Here())
		return v, true
	}
	sh.misses.Add(1)
	c.Sys().Counters().IncCacheMiss(c.Here())
	gen := st.gen.Load() // sampled before the fetch: see the race note above
	v, ok = fetch()
	if !ok {
		return v, false
	}
	tok.Pin(c) // fetch's epilogue may have unpinned the token
	ca.publish(c, tok, st, k, gen, v)
	return v, true
}

// publish installs a freshly fetched entry into its set. Victim order:
// the way already holding k (a concurrent fill or a dead predecessor),
// an empty way, a way holding a dead entry (generation mismatch), and
// finally round-robin among live ways. The displaced entry, if any, is
// retired through the epoch manager — concurrent pinned readers may
// still hold it. The caller must be pinned.
func (ca Cache[V]) publish(c *pgas.Ctx, tok *epoch.Token, st *set, k uint64, gen uint64, v V) {
	curGen := st.gen.Load()
	victim, dead := -1, -1
	for w := range st.way {
		a := gas.Addr(st.way[w].Load())
		if a.IsNil() {
			victim = w
			break
		}
		e := pgas.MustDeref[*entry[V]](c, a)
		if e.key == k {
			victim = w
			break
		}
		if dead < 0 && e.gen != curGen {
			dead = w
		}
	}
	if victim < 0 {
		victim = dead
	}
	if victim < 0 {
		victim = int(st.victim.Add(1)) % Ways
	}
	old := st.way[victim].Load()
	a := c.Alloc(&entry[V]{key: k, gen: gen, val: v})
	if st.way[victim].CompareAndSwap(old, uint64(a)) {
		if o := gas.Addr(old); !o.IsNil() {
			tok.DeferDelete(c, o)
		}
	} else {
		// Lost a publish race (concurrent fill or invalidation). The
		// fresh entry was never visible, so an eager local free is safe;
		// the next miss refills.
		c.Free(a)
	}
}

// Invalidate broadcasts a coherence bump for k to every locale's
// replica, riding the calling task's aggregation buffers: one buffered
// op per remote locale (batched into bulk flushes), executed inline
// for the local replica. Each op bumps the set generation — killing
// in-flight fills — and retires k's published entry through the epoch
// manager on its own locale.
//
// Remote invalidations take effect when the caller's buffers flush (at
// capacity, or at Ctx.Flush); until then remote replicas may serve the
// previous value. Write-through callers that need prompt coherence
// flush after mutating.
//
// The generation is per set, so the bump also kills any *other* key's
// entry sharing k's set: conservative and safe (that key was never
// mutated, so its next lookup just refetches and re-publishes under
// the current generation), at the cost of one extra miss per set-mate
// per invalidation. A per-key kill would need per-key generations,
// which a fixed-geometry set cannot carry.
func (ca Cache[V]) Invalidate(c *pgas.Ctx, k uint64) {
	idx := ca.index(k)
	em := ca.obj.Manager()
	for dst := 0; dst < c.NumLocales(); dst++ {
		ca.obj.AggOnOwner(c, dst, func(lc *pgas.Ctx, sh *shard) {
			sh.invals.Add(1)
			lc.Sys().Counters().IncCacheInval(lc.Here())
			st := &sh.sets[idx]
			st.gen.Add(1) // order matters: kill racing fills first
			em.Protect(lc, func(tok *epoch.Token) {
				for w := range st.way {
					a := gas.Addr(st.way[w].Load())
					if a.IsNil() {
						continue
					}
					// The pin covers this deref against a concurrent
					// fill retiring the entry under us.
					if e := pgas.MustDeref[*entry[V]](lc, a); e.key != k {
						continue
					}
					// CAS so a racing fill or invalidation can win the
					// unpublish instead — exactly one retirement per entry.
					if st.way[w].CompareAndSwap(uint64(a), 0) {
						tok.DeferDelete(lc, a)
					}
				}
			})
		})
	}
}

// Stats aggregates the per-locale replica statistics (communication:
// one on-statement per remote locale).
type Stats struct {
	Hits          int64 // lookups served from a local replica
	Misses        int64 // lookups that fell through to the owner
	Invalidations int64 // invalidation ops executed across all replicas
	Entries       int64 // currently published entries across all replicas
}

// Stats gathers cache statistics from every locale's replica. Entries
// counts published cells, including dead ones awaiting eviction.
func (ca Cache[V]) Stats(c *pgas.Ctx) Stats {
	var out Stats
	for _, s := range shared.Gather(c, ca.obj, func(_ *pgas.Ctx, sh *shard) Stats {
		st := Stats{
			Hits:          sh.hits.Load(),
			Misses:        sh.misses.Load(),
			Invalidations: sh.invals.Load(),
		}
		for i := range sh.sets {
			for w := range sh.sets[i].way {
				if sh.sets[i].way[w].Load() != 0 {
					st.Entries++
				}
			}
		}
		return st
	}) {
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Invalidations += s.Invalidations
		out.Entries += s.Entries
	}
	return out
}

// Destroy tears the cache down: every replica frees its published
// entries on its own locale, then the privatized shards are released.
// The cache must be quiescent; entries already retired by invalidation
// belong to the epoch manager — let it clear to reclaim them. No task
// may use any copy of the handle afterwards.
func (ca Cache[V]) Destroy(c *pgas.Ctx) {
	ca.obj.Destroy(c, func(lc *pgas.Ctx, sh *shard) {
		for i := range sh.sets {
			for w := range sh.sets[i].way {
				if a := gas.Addr(sh.sets[i].way[w].Swap(0)); !a.IsNil() {
					lc.Free(a)
				}
			}
		}
	})
}
