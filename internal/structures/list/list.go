// Package list implements a Harris-style sorted lock-free linked list
// with logical deletion, built on the paper's infrastructure and
// reclaimed through the EpochManager.
//
// Logical deletion is the paper's running example of why EBR is
// needed: a Remove first *marks* the node (making it unreachable to
// new traversals semantically) and only then physically unlinks it;
// tasks that already hold a reference keep dereferencing it safely
// until two epoch advances prove quiescence.
//
// The mark bit lives in the top bit of the node's next word, next to
// the compressed address — the same spare-bit trick pointer
// compression itself exploits. This caps the usable locale space at
// 2^15 for lists, which the constructor enforces.
package list

import (
	"sync/atomic"

	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// markBit flags a logically deleted node in its successor word.
const markBit = uint64(1) << 63

func pack(a gas.Addr, marked bool) uint64 {
	v := uint64(a)
	if marked {
		v |= markBit
	}
	return v
}

func unpack(v uint64) (gas.Addr, bool) {
	return gas.Addr(v &^ markBit), v&markBit != 0
}

// node is one list cell; key and val are immutable, next is a
// network-atomic word carrying (successor address | mark bit).
type node[V any] struct {
	key  uint64
	val  V
	next *pgas.Word64
}

// List is a distributed sorted lock-free list keyed by uint64. Nodes
// live on the list's home locale.
type List[V any] struct {
	head *pgas.Word64 // sentinel successor word (no sentinel node needed)
	em   epoch.EpochManager
	home int

	inserts   atomic.Int64
	removes   atomic.Int64
	unlinks   atomic.Int64 // physical unlinks (may exceed removes via helping)
	destroyed atomic.Bool
}

// New creates an empty list homed on the given locale.
func New[V any](c *pgas.Ctx, home int, em epoch.EpochManager) *List[V] {
	if c.NumLocales() > 1<<15 {
		panic("list: the mark bit needs locale ids below 2^15")
	}
	return &List[V]{
		head: pgas.NewWord64(c, home, 0),
		em:   em,
		home: home,
	}
}

// Manager returns the epoch manager the list reclaims through.
func (l *List[V]) Manager() epoch.EpochManager { return l.em }

// search locates the window (predWord, curr) such that curr is the
// first unmarked node with key >= k; it physically unlinks any marked
// nodes it passes, defer-deleting them (Harris's helping rule). The
// caller must hold a pin.
func (l *List[V]) search(c *pgas.Ctx, tok *epoch.Token, k uint64) (pred *pgas.Word64, curr gas.Addr, cn *node[V]) {
retry:
	pred = l.head
	curr, _ = unpack(pred.Read(c))
	for {
		if curr.IsNil() {
			return pred, curr, nil
		}
		cn = pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if marked {
			// Help: physically unlink the marked node.
			if !pred.CompareAndSwap(c, pack(curr, false), pack(succ, false)) {
				goto retry // window changed; restart from the head
			}
			l.unlinks.Add(1)
			tok.DeferDelete(c, curr)
			curr = succ
			continue
		}
		if cn.key >= k {
			return pred, curr, cn
		}
		pred = cn.next
		curr = succ
	}
}

// Insert adds (k, v) if k is absent, reporting whether it inserted.
func (l *List[V]) Insert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		pred, curr, cn := l.search(c, tok, k)
		if cn != nil && cn.key == k {
			return false
		}
		n := &node[V]{key: k, val: v, next: pgas.NewWord64(c, l.home, pack(curr, false))}
		addr := c.AllocOn(l.home, n)
		if pred.CompareAndSwap(c, pack(curr, false), pack(addr, false)) {
			l.inserts.Add(1)
			return true
		}
		// Lost the race: free the unpublished node eagerly (it was
		// never reachable) and retry.
		c.Free(addr)
	}
}

// Upsert inserts (k, v), replacing any existing node for k. It returns
// true when an existing value was replaced. The new node is linked in
// front of the old one, so readers observe the new value from the
// instant of the CAS; the old node is then marked and unlinked.
func (l *List[V]) Upsert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) (replaced bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		pred, curr, cn := l.search(c, tok, k)
		n := &node[V]{key: k, val: v, next: pgas.NewWord64(c, l.home, pack(curr, false))}
		addr := c.AllocOn(l.home, n)
		if !pred.CompareAndSwap(c, pack(curr, false), pack(addr, false)) {
			c.Free(addr)
			continue
		}
		l.inserts.Add(1)
		if cn != nil && cn.key == k {
			// Mark the superseded node; search() will unlink it (or we
			// unlink it here if the window is still quiet).
			l.markNode(c, tok, curr, cn)
			return true
		}
		return false
	}
}

// markNode sets the mark bit on a node and attempts the physical
// unlink from its immediate predecessor word.
func (l *List[V]) markNode(c *pgas.Ctx, tok *epoch.Token, addr gas.Addr, n *node[V]) {
	for {
		succRaw := n.next.Read(c)
		succ, marked := unpack(succRaw)
		if marked {
			return // someone else removed it
		}
		if n.next.CompareAndSwap(c, succRaw, pack(succ, true)) {
			l.removes.Add(1)
			// Best-effort immediate unlink; search() helps otherwise.
			l.search(c, tok, n.key)
			return
		}
	}
}

// Remove deletes k, reporting whether it was present. Deletion is
// two-phase: logical (mark) then physical (unlink + DeferDelete).
func (l *List[V]) Remove(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		_, _, cn := l.search(c, tok, k)
		if cn == nil || cn.key != k {
			return false
		}
		succRaw := cn.next.Read(c)
		succ, marked := unpack(succRaw)
		if marked {
			continue // concurrently removed; re-search
		}
		if cn.next.CompareAndSwap(c, succRaw, pack(succ, true)) {
			l.removes.Add(1)
			l.search(c, tok, k) // physical unlink via helping
			return true
		}
	}
}

// Get returns the value for k. The read path never helps (no CASes),
// but it must restart when the matching node is marked: a mark can
// mean either removal or replacement by an Upsert that linked the new
// node *in front of* the old one — in the latter case the key was
// never absent, so reporting false would not be linearizable. On
// restart the traversal observes either the replacement or the
// completed removal.
func (l *List[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (v V, ok bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
retry:
	for {
		curr, _ := unpack(l.head.Read(c))
		for !curr.IsNil() {
			cn := pgas.MustDeref[*node[V]](c, curr)
			succ, marked := unpack(cn.next.Read(c))
			if cn.key == k {
				if marked {
					// Help unlink it (Harris's rule), then re-traverse:
					// the retry observes either the Upsert's
					// replacement node or the completed removal.
					l.search(c, tok, k)
					continue retry
				}
				return cn.val, true
			}
			if cn.key > k {
				return v, false
			}
			curr = succ
		}
		return v, false
	}
}

// Contains reports whether k is present.
func (l *List[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	_, ok := l.Get(c, tok, k)
	return ok
}

// Len counts unmarked nodes (O(n), diagnostic).
func (l *List[V]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	n := 0
	curr, _ := unpack(l.head.Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if !marked {
			n++
		}
		curr = succ
	}
	return n
}

// Keys returns the unmarked keys in order (O(n), diagnostic).
func (l *List[V]) Keys(c *pgas.Ctx, tok *epoch.Token) []uint64 {
	tok.Pin(c)
	defer tok.Unpin(c)
	var keys []uint64
	curr, _ := unpack(l.head.Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if !marked {
			keys = append(keys, cn.key)
		}
		curr = succ
	}
	return keys
}

// Entries returns the unmarked (key, value) pairs in key order — the
// snapshot a migration ships to the new owner. Like Keys it is only a
// consistent snapshot when mutation is quiescent; migrations guarantee
// that by holding the bucket's combiner.
func (l *List[V]) Entries(c *pgas.Ctx, tok *epoch.Token) (keys []uint64, vals []V) {
	tok.Pin(c)
	defer tok.Unpin(c)
	curr, _ := unpack(l.head.Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if !marked {
			keys = append(keys, cn.key)
			vals = append(vals, cn.val)
		}
		curr = succ
	}
	return keys, vals
}

// Retire defer-deletes every node still reachable from the head and
// returns how many it deferred, leaving the list structurally intact:
// readers that resolved this list before it was unpublished keep
// traversing live, linked memory, and the nodes are reclaimed only
// after those pinned readers drain. This is the memory half of an
// ownership migration — the contents have been shipped to a new list
// and the old one is being unpublished.
//
// The caller must hold the list's combiner (no concurrent mutation).
// Under that serialization no marked node is still linked — a writer's
// mark is followed by its unlink (or a reader's helping unlink, which
// defers the node) before the writer's turn ends — so every node seen
// here is unmarked and this is its only DeferDelete. Marked nodes are
// skipped defensively: their unlinker owns their retirement.
func (l *List[V]) Retire(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	n := 0
	curr, _ := unpack(l.head.Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if !marked {
			tok.DeferDelete(c, curr)
			n++
		}
		curr = succ
	}
	return n
}

// Destroy frees every node still reachable from the head (one bulk
// free toward the home locale) and empties the list, so churn
// scenarios can create and drop lists without leaking gas-heap slots.
// The list must be quiescent: no concurrent operation may be in
// flight, and no task may use the list afterwards. Marked nodes are
// skipped — a marked node has been retired through the epoch manager,
// which owns its free (at quiescence none remain linked anyway).
// Nodes already unlinked and deferred are likewise the manager's:
// reclaim them by letting it clear (epoch.EpochManager.Clear) before
// or after Destroy. Destroy panics on a second call.
func (l *List[V]) Destroy(c *pgas.Ctx) {
	if l.destroyed.Swap(true) {
		panic("list: Destroy called twice")
	}
	var addrs []gas.Addr
	curr, _ := unpack(l.head.Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next.Read(c))
		if !marked {
			addrs = append(addrs, curr)
		}
		curr = succ
	}
	l.head.Write(c, 0)
	c.FreeBulk(l.home, addrs)
}

// Stats reports operation totals.
type Stats struct {
	Inserts int64
	Removes int64
	Unlinks int64
}

// Stats returns the list's counters.
func (l *List[V]) Stats() Stats {
	return Stats{Inserts: l.inserts.Load(), Removes: l.removes.Load(), Unlinks: l.unlinks.Load()}
}
