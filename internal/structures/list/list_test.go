package list

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

func setup(t testing.TB, locales int) (*pgas.System, *List[int], *epoch.Token, *pgas.Ctx) {
	s := newTestSystem(t, locales, comm.BackendNone)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	l := New[int](c, 0, em)
	return s, l, em.Register(c), c
}

func TestListInsertGetRemove(t *testing.T) {
	_, l, tok, c := setup(t, 1)
	if !l.Insert(c, tok, 5, 50) {
		t.Fatal("insert failed")
	}
	if l.Insert(c, tok, 5, 51) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := l.Get(c, tok, 5); !ok || v != 50 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if _, ok := l.Get(c, tok, 6); ok {
		t.Fatal("get of absent key succeeded")
	}
	if !l.Remove(c, tok, 5) {
		t.Fatal("remove failed")
	}
	if l.Remove(c, tok, 5) {
		t.Fatal("double remove succeeded")
	}
	if l.Contains(c, tok, 5) {
		t.Fatal("contains after remove")
	}
}

func TestListSortedOrder(t *testing.T) {
	_, l, tok, c := setup(t, 1)
	keys := []uint64{9, 3, 7, 1, 5, 8, 2, 6, 4, 0}
	for _, k := range keys {
		l.Insert(c, tok, k, int(k)*10)
	}
	got := l.Keys(c, tok)
	if len(got) != len(keys) {
		t.Fatalf("keys = %v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("keys not sorted: %v", got)
	}
}

func TestListUpsert(t *testing.T) {
	_, l, tok, c := setup(t, 1)
	if l.Upsert(c, tok, 1, 10) {
		t.Fatal("first upsert reported replacement")
	}
	if !l.Upsert(c, tok, 1, 11) {
		t.Fatal("second upsert did not replace")
	}
	if v, _ := l.Get(c, tok, 1); v != 11 {
		t.Fatalf("get after upsert = %d", v)
	}
	if n := l.Len(c, tok); n != 1 {
		t.Fatalf("len = %d after upsert", n)
	}
}

func TestListRemoveMiddle(t *testing.T) {
	_, l, tok, c := setup(t, 1)
	for k := uint64(0); k < 10; k++ {
		l.Insert(c, tok, k, int(k))
	}
	l.Remove(c, tok, 5)
	want := []uint64{0, 1, 2, 3, 4, 6, 7, 8, 9}
	got := l.Keys(c, tok)
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v", got)
		}
	}
}

// Property: the list behaves like a sorted set under any op sequence.
func TestListSetSemanticsProperty(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	f := func(ops []uint16) bool {
		l := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		model := map[uint64]int{}
		for i, op := range ops {
			k := uint64(op % 32)
			switch op % 3 {
			case 0:
				ins := l.Insert(c, tok, k, i)
				_, had := model[k]
				if ins == had {
					return false
				}
				if ins {
					model[k] = i
				}
			case 1:
				rem := l.Remove(c, tok, k)
				_, had := model[k]
				if rem != had {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := l.Get(c, tok, k)
				mv, had := model[k]
				if ok != had || (ok && v != mv) {
					return false
				}
			}
		}
		if l.Len(c, tok) != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListConcurrentDisjointKeys(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	l := New[int](s.Ctx(0), 0, em)
	const tasks = 6
	const perTask = 60
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < perTask; i++ {
				k := uint64(g*perTask + i)
				if !l.Insert(c, tok, k, int(k)) {
					t.Errorf("insert %d failed", k)
					return
				}
			}
			// Remove the odd half.
			for i := 0; i < perTask; i++ {
				k := uint64(g*perTask + i)
				if k%2 == 1 {
					if !l.Remove(c, tok, k) {
						t.Errorf("remove %d failed", k)
						return
					}
				}
				if i%16 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	tok := em.Register(c)
	for k := uint64(0); k < tasks*perTask; k++ {
		want := k%2 == 0
		if got := l.Contains(c, tok, k); got != want {
			t.Fatalf("key %d present=%v want %v", k, got, want)
		}
	}
	tok.Unregister(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAF loads", uaf)
	}
}

// Contended single key: inserts and removes race; invariant is that
// every successful Insert alternates with a successful Remove.
func TestListContendedKey(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	l := New[int](s.Ctx(0), 0, em)
	const tasks = 4
	const iters = 150
	var insN, remN int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					if l.Insert(c, tok, 42, i) {
						mu.Lock()
						insN++
						mu.Unlock()
					}
				} else {
					if l.Remove(c, tok, 42) {
						mu.Lock()
						remN++
						mu.Unlock()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	tok := em.Register(c)
	present := l.Contains(c, tok, 42)
	mu.Lock()
	defer mu.Unlock()
	// Successful inserts and removes on one key must interleave:
	// counts differ by exactly the final presence.
	wantIns := remN
	if present {
		wantIns++
	}
	if insN != wantIns {
		t.Fatalf("inserts=%d removes=%d present=%v — not alternating", insN, remN, present)
	}
	tok.Unregister(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAF loads", uaf)
	}
}

func TestListStats(t *testing.T) {
	_, l, tok, c := setup(t, 1)
	l.Insert(c, tok, 1, 1)
	l.Insert(c, tok, 2, 2)
	l.Remove(c, tok, 1)
	st := l.Stats()
	if st.Inserts != 2 || st.Removes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
