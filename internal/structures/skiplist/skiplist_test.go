package skiplist

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

func setup(t testing.TB, locales int) (*pgas.System, *List[int], *epoch.Token, *pgas.Ctx, epoch.EpochManager) {
	s := newTestSystem(t, locales)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	l := New[int](c, 0, em)
	return s, l, em.Register(c), c, em
}

func TestInsertGetRemove(t *testing.T) {
	_, l, tok, c, _ := setup(t, 1)
	if !l.Insert(c, tok, 10, 100) {
		t.Fatal("insert failed")
	}
	if l.Insert(c, tok, 10, 101) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := l.Get(c, tok, 10); !ok || v != 100 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if _, ok := l.Get(c, tok, 11); ok {
		t.Fatal("absent key found")
	}
	if !l.Remove(c, tok, 10) || l.Remove(c, tok, 10) {
		t.Fatal("remove semantics")
	}
	if l.Contains(c, tok, 10) {
		t.Fatal("contains after remove")
	}
}

func TestSortedKeys(t *testing.T) {
	_, l, tok, c, _ := setup(t, 1)
	keys := []uint64{42, 7, 19, 3, 88, 61, 25, 14, 99, 50}
	for _, k := range keys {
		if !l.Insert(c, tok, k, int(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	got := l.Keys(c, tok)
	if len(got) != len(keys) {
		t.Fatalf("keys = %v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("not sorted: %v", got)
	}
	if n := l.Len(c, tok); n != len(keys) {
		t.Fatalf("len = %d", n)
	}
}

func TestManyKeysTallTowers(t *testing.T) {
	_, l, tok, c, _ := setup(t, 2)
	const n = 800 // enough to exercise several levels
	for k := uint64(0); k < n; k++ {
		if !l.Insert(c, tok, k, int(k*2)) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := l.Get(c, tok, k); !ok || v != int(k*2) {
			t.Fatalf("get %d = (%d,%v)", k, v, ok)
		}
	}
	// Remove every third key.
	for k := uint64(0); k < n; k += 3 {
		if !l.Remove(c, tok, k) {
			t.Fatalf("remove %d", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		want := k%3 != 0
		if got := l.Contains(c, tok, k); got != want {
			t.Fatalf("contains(%d) = %v", k, got)
		}
	}
}

// Property: matches a model map under random op sequences.
func TestModelProperty(t *testing.T) {
	s := newTestSystem(t, 1)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	f := func(ops []uint16) bool {
		l := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		model := map[uint64]int{}
		for i, op := range ops {
			k := uint64(op % 48)
			switch op % 3 {
			case 0:
				ins := l.Insert(c, tok, k, i)
				if _, had := model[k]; ins == had {
					return false
				}
				if ins {
					model[k] = i
				}
			case 1:
				rem := l.Remove(c, tok, k)
				if _, had := model[k]; rem != had {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := l.Get(c, tok, k)
				mv, had := model[k]
				if ok != had || (ok && v != mv) {
					return false
				}
			}
		}
		return l.Len(c, tok) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	s := newTestSystem(t, 2)
	em := epoch.NewEpochManager(s.Ctx(0))
	l := New[int](s.Ctx(0), 0, em)
	const tasks = 6
	const per = 80
	var wg sync.WaitGroup
	for g := 0; g < tasks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < per; i++ {
				k := uint64(g*per + i)
				if !l.Insert(c, tok, k, int(k)) {
					t.Errorf("insert %d failed", k)
					return
				}
				if i%2 == 1 {
					if !l.Remove(c, tok, k) {
						t.Errorf("remove %d failed", k)
						return
					}
				}
				if i%20 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	tok := em.Register(c)
	for k := uint64(0); k < tasks*per; k++ {
		want := k%2 == 0
		if got := l.Contains(c, tok, k); got != want {
			t.Fatalf("contains(%d) = %v want %v", k, got, want)
		}
	}
	tok.Unregister(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAF loads", uaf)
	}
}

// Contended single-key insert/remove storm; invariant: successful
// inserts alternate with successful removes.
func TestConcurrentContendedKey(t *testing.T) {
	s := newTestSystem(t, 2)
	em := epoch.NewEpochManager(s.Ctx(0))
	l := New[int](s.Ctx(0), 0, em)
	var insN, remN int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < 120; i++ {
				if g%2 == 0 {
					if l.Insert(c, tok, 5, i) {
						mu.Lock()
						insN++
						mu.Unlock()
					}
				} else if l.Remove(c, tok, 5) {
					mu.Lock()
					remN++
					mu.Unlock()
				}
				if i%16 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	tok := em.Register(c)
	present := l.Contains(c, tok, 5)
	want := remN
	if present {
		want++
	}
	if insN != want {
		t.Fatalf("inserts=%d removes=%d present=%v", insN, remN, present)
	}
	tok.Unregister(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads + s.HeapStats().UAFFrees; uaf != 0 {
		t.Fatalf("%d UAF events", uaf)
	}
}

func TestMixedWorkloadReclamation(t *testing.T) {
	s := newTestSystem(t, 4)
	em := epoch.NewEpochManager(s.Ctx(0))
	l := New[int](s.Ctx(0), 1, em)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 4)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < 150; i++ {
				k := c.RandUint64() % 64
				switch c.RandIntn(3) {
				case 0:
					l.Insert(c, tok, k, i)
				case 1:
					l.Remove(c, tok, k)
				default:
					l.Get(c, tok, k)
				}
				if i%32 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Ctx(0)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d UAF loads", uaf)
	}
	st := em.Stats(c)
	if st.Reclaimed != st.Deferred {
		t.Fatalf("reclaimed %d of %d", st.Reclaimed, st.Deferred)
	}
	// Len agrees with Contains sweep.
	tok := em.Register(c)
	n := l.Len(c, tok)
	count := 0
	for k := uint64(0); k < 64; k++ {
		if l.Contains(c, tok, k) {
			count++
		}
	}
	if n != count {
		t.Fatalf("Len=%d vs Contains sweep=%d", n, count)
	}
}

func TestStats(t *testing.T) {
	_, l, tok, c, _ := setup(t, 1)
	l.Insert(c, tok, 1, 1)
	l.Insert(c, tok, 2, 2)
	l.Remove(c, tok, 1)
	st := l.Stats()
	if st.Inserts != 2 || st.Removes != 1 || st.Unlinks < 1 {
		t.Fatalf("stats = %+v", st)
	}
}
