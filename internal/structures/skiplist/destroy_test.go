package skiplist

import (
	"testing"

	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// churnRound creates a skip list, works it, and tears it down.
func churnRound(t *testing.T, c *pgas.Ctx, em epoch.EpochManager) {
	t.Helper()
	l := New[int](c, 1, em)
	tok := em.Register(c)
	for k := uint64(0); k < 80; k++ {
		if !l.Insert(c, tok, k, int(k)) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(0); k < 30; k++ {
		if !l.Remove(c, tok, k) {
			t.Fatalf("remove %d failed", k)
		}
	}
	tok.Unregister(c)
	l.Destroy(c)
	em.Clear(c) // reclaim the removed (deferred) towers
}

// Destroy must return every gas-heap slot the skip list holds, so
// churn (create → work → destroy, repeatedly) reaches a steady heap
// instead of leaking per round. The first round warms the epoch
// manager's limbo-cell pool (manager-lifetime state, recycled not
// freed); every subsequent round must leave the heap exactly where it
// was.
func TestDestroyChurnReachesSteadyHeap(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 2})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		churnRound(t, c, em)
		steady := sys.HeapStats().Live
		for round := 0; round < 3; round++ {
			churnRound(t, c, em)
			if live := sys.HeapStats().Live; live != steady {
				t.Fatalf("round %d: heap live = %d, want steady %d", round, live, steady)
			}
		}
		if st := sys.HeapStats(); st.UAFFrees != 0 || st.UAFLoads != 0 {
			t.Fatalf("safety violations: %v", st)
		}
	})
}

func TestDestroyTwicePanics(t *testing.T) {
	sys := pgas.NewSystem(pgas.Config{Locales: 1})
	defer sys.Shutdown()
	sys.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		l := New[int](c, 0, em)
		l.Destroy(c)
		defer func() {
			if recover() == nil {
				t.Fatal("second Destroy did not panic")
			}
		}()
		l.Destroy(c)
	})
}
