// Package skiplist implements a lock-free skip list (in the style of
// Herlihy & Shavit's LockFreeSkipList, itself derived from Fraser's
// practical lock-freedom work — the same dissertation the paper takes
// epoch-based reclamation from), built on the PGAS primitives and
// reclaimed through the EpochManager.
//
// Every next pointer is a network-atomic word carrying (successor
// address | mark bit); a Remove marks the node at every level from the
// top down and the bottom level last — the linearization point — after
// which traversals snip it out and the remover retires it through the
// epoch manager. Contains is wait-free.
package skiplist

import (
	"sync/atomic"

	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// MaxLevel bounds the tower height; 2^16 expected elements per list is
// plenty for the workloads here.
const MaxLevel = 16

const markBit = uint64(1) << 63

func pack(a gas.Addr, marked bool) uint64 {
	v := uint64(a)
	if marked {
		v |= markBit
	}
	return v
}

func unpack(v uint64) (gas.Addr, bool) {
	return gas.Addr(v &^ markBit), v&markBit != 0
}

// node is one tower. key/val are immutable; next[i] is level i's
// marked successor word.
type node[V any] struct {
	key      uint64
	val      V
	topLevel int
	next     []*pgas.Word64
}

// List is a distributed lock-free skip list keyed by uint64. Nodes
// live on the list's home locale.
type List[V any] struct {
	head []*pgas.Word64 // sentinel successor words per level
	em   epoch.EpochManager
	home int

	inserts   atomic.Int64
	removes   atomic.Int64
	unlinks   atomic.Int64
	destroyed atomic.Bool
}

// New creates an empty skip list homed on the given locale.
func New[V any](c *pgas.Ctx, home int, em epoch.EpochManager) *List[V] {
	if c.NumLocales() > 1<<15 {
		panic("skiplist: the mark bit needs locale ids below 2^15")
	}
	l := &List[V]{em: em, home: home}
	l.head = make([]*pgas.Word64, MaxLevel)
	for i := range l.head {
		l.head[i] = pgas.NewWord64(c, home, 0)
	}
	return l
}

// Manager returns the epoch manager the list reclaims through.
func (l *List[V]) Manager() epoch.EpochManager { return l.em }

// randomLevel draws a geometric tower height from the task's stream.
func randomLevel(c *pgas.Ctx) int {
	lvl := 1
	for lvl < MaxLevel && c.RandUint64()&1 == 1 {
		lvl++
	}
	return lvl
}

// find locates the window around k at every level, snipping marked
// nodes as it goes (retiring each node exactly once, at its
// bottom-level unlink). It returns whether an unmarked node with key k
// sits at the bottom-level window, along with the pred words and succ
// addresses per level. Caller must hold a pin.
func (l *List[V]) find(c *pgas.Ctx, tok *epoch.Token, k uint64) (found bool, preds []*pgas.Word64, succs []gas.Addr, curNode *node[V]) {
	preds = make([]*pgas.Word64, MaxLevel)
	succs = make([]gas.Addr, MaxLevel)
retry:
	for {
		var predNode *node[V] // nil = the head sentinel
		for level := MaxLevel - 1; level >= 0; level-- {
			// The pred *word* at this level belongs to the pred *node*
			// found at the level above (or the head sentinel).
			pred := l.head[level]
			if predNode != nil {
				pred = predNode.next[level]
			}
			curr, _ := unpack(pred.Read(c))
			for {
				if curr.IsNil() {
					break
				}
				cn := pgas.MustDeref[*node[V]](c, curr)
				succ, marked := unpack(cn.next[level].Read(c))
				if marked {
					// Snip; retire at the bottom-level unlink only.
					if !pred.CompareAndSwap(c, pack(curr, false), pack(succ, false)) {
						continue retry
					}
					l.unlinks.Add(1)
					if level == 0 {
						tok.DeferDelete(c, curr)
					}
					curr = succ
					continue
				}
				if cn.key < k {
					predNode = cn
					pred = cn.next[level]
					curr = succ
					continue
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		bottom := succs[0]
		if bottom.IsNil() {
			return false, preds, succs, nil
		}
		bn := pgas.MustDeref[*node[V]](c, bottom)
		return bn.key == k, preds, succs, bn
	}
}

// Insert adds (k, v) if absent, reporting whether it inserted.
func (l *List[V]) Insert(c *pgas.Ctx, tok *epoch.Token, k uint64, v V) bool {
	tok.Pin(c)
	defer tok.Unpin(c)
	topLevel := randomLevel(c)
	for {
		found, preds, succs, _ := l.find(c, tok, k)
		if found {
			return false
		}
		n := &node[V]{key: k, val: v, topLevel: topLevel, next: make([]*pgas.Word64, topLevel)}
		addr := c.AllocOn(l.home, n)
		for i := 0; i < topLevel; i++ {
			n.next[i] = pgas.NewWord64(c, l.home, pack(succs[i], false))
		}
		// Linearization: link the bottom level.
		if !preds[0].CompareAndSwap(c, pack(succs[0], false), pack(addr, false)) {
			c.Free(addr) // never published
			continue
		}
		l.inserts.Add(1)
		// Link the upper levels, re-deriving the window as needed. If
		// the node is concurrently removed we abandon the remaining
		// levels: find() snips whatever was linked.
		for level := 1; level < topLevel; level++ {
			for {
				if preds[level].CompareAndSwap(c, pack(succs[level], false), pack(addr, false)) {
					break
				}
				found, p2, s2, bn := l.find(c, tok, k)
				if !found || bn != n {
					return true // removed already; stop linking
				}
				preds, succs = p2, s2
				// Repoint our level-next to the fresh successor; a CAS
				// so a concurrent marker is never overwritten.
				raw := n.next[level].Read(c)
				if _, marked := unpack(raw); marked {
					return true
				}
				if raw != pack(succs[level], false) &&
					!n.next[level].CompareAndSwap(c, raw, pack(succs[level], false)) {
					return true // marked under us
				}
			}
		}
		return true
	}
}

// Remove deletes k, reporting whether it was present. Marks top-down
// with the bottom level last (the linearization point), then calls
// find to physically unlink and retire the node.
func (l *List[V]) Remove(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		found, _, _, n := l.find(c, tok, k)
		if !found {
			return false
		}
		// Mark upper levels (idempotent, helping allowed).
		for level := n.topLevel - 1; level >= 1; level-- {
			for {
				raw := n.next[level].Read(c)
				succ, marked := unpack(raw)
				if marked {
					break
				}
				if n.next[level].CompareAndSwap(c, raw, pack(succ, true)) {
					break
				}
			}
		}
		// Bottom level: whoever marks it owns the removal.
		for {
			raw := n.next[0].Read(c)
			succ, marked := unpack(raw)
			if marked {
				break // lost to a concurrent remover; retry outer find
			}
			if n.next[0].CompareAndSwap(c, raw, pack(succ, true)) {
				l.removes.Add(1)
				l.find(c, tok, k) // physical unlink + retire
				return true
			}
		}
	}
}

// Get returns the value for k; wait-free traversal (no helping).
func (l *List[V]) Get(c *pgas.Ctx, tok *epoch.Token, k uint64) (v V, ok bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	var predNode *node[V]
	var candidate *node[V]
	for level := MaxLevel - 1; level >= 0; level-- {
		pred := l.head[level]
		if predNode != nil {
			pred = predNode.next[level]
		}
		curr, _ := unpack(pred.Read(c))
		for !curr.IsNil() {
			cn := pgas.MustDeref[*node[V]](c, curr)
			succ, marked := unpack(cn.next[level].Read(c))
			if cn.key < k {
				predNode = cn
				curr = succ
				continue
			}
			if cn.key == k && !marked {
				candidate = cn
			}
			break
		}
	}
	if candidate != nil {
		return candidate.val, true
	}
	return v, false
}

// Contains reports whether k is present.
func (l *List[V]) Contains(c *pgas.Ctx, tok *epoch.Token, k uint64) bool {
	_, ok := l.Get(c, tok, k)
	return ok
}

// Len counts unmarked bottom-level nodes (O(n), diagnostic).
func (l *List[V]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	n := 0
	curr, _ := unpack(l.head[0].Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next[0].Read(c))
		if !marked {
			n++
		}
		curr = succ
	}
	return n
}

// Keys returns the unmarked keys in ascending order (O(n), diagnostic).
func (l *List[V]) Keys(c *pgas.Ctx, tok *epoch.Token) []uint64 {
	tok.Pin(c)
	defer tok.Unpin(c)
	var keys []uint64
	curr, _ := unpack(l.head[0].Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next[0].Read(c))
		if !marked {
			keys = append(keys, cn.key)
		}
		curr = succ
	}
	return keys
}

// Destroy frees every tower still linked at the bottom level (one
// bulk free toward the home locale) and empties the list, so churn
// scenarios can create and drop skip lists without leaking gas-heap
// slots. The list must be quiescent and no task may use it afterwards.
// Marked towers are skipped: a marked tower has been retired through
// the epoch manager, which owns its free (at quiescence none remain
// linked anyway) — let the manager clear to reclaim the deferred set.
// Destroy panics on a second call.
func (l *List[V]) Destroy(c *pgas.Ctx) {
	if l.destroyed.Swap(true) {
		panic("skiplist: Destroy called twice")
	}
	var addrs []gas.Addr
	curr, _ := unpack(l.head[0].Read(c))
	for !curr.IsNil() {
		cn := pgas.MustDeref[*node[V]](c, curr)
		succ, marked := unpack(cn.next[0].Read(c))
		if !marked {
			addrs = append(addrs, curr)
		}
		curr = succ
	}
	for i := range l.head {
		l.head[i].Write(c, 0)
	}
	c.FreeBulk(l.home, addrs)
}

// Stats reports operation totals.
type Stats struct {
	Inserts int64
	Removes int64
	Unlinks int64 // per-level physical unlinks (≥ Removes)
}

// Stats returns the list's counters.
func (l *List[V]) Stats() Stats {
	return Stats{Inserts: l.inserts.Load(), Removes: l.removes.Load(), Unlinks: l.unlinks.Load()}
}
