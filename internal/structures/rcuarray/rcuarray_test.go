package rcuarray

import (
	"sync"
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

func setup(t testing.TB, locales, blockSize int) (*pgas.System, *Array[int], *epoch.Token, *pgas.Ctx, epoch.EpochManager) {
	s := newTestSystem(t, locales)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	a := New[int](c, 0, blockSize, em)
	return s, a, em.Register(c), c, em
}

func TestEmptyArray(t *testing.T) {
	_, a, tok, c, _ := setup(t, 2, 4)
	if a.Len(c, tok) != 0 {
		t.Fatal("fresh array not empty")
	}
	if _, ok := a.Read(c, tok, 0); ok {
		t.Fatal("read from empty succeeded")
	}
	if a.Write(c, tok, 0, 1) {
		t.Fatal("write to empty succeeded")
	}
}

func TestGrowPreservesData(t *testing.T) {
	_, a, tok, c, _ := setup(t, 3, 4)
	a.Resize(c, tok, 10)
	for i := 0; i < 10; i++ {
		if !a.Write(c, tok, i, i*i) {
			t.Fatalf("write %d failed", i)
		}
	}
	a.Resize(c, tok, 25)
	if a.Len(c, tok) != 25 {
		t.Fatalf("len = %d", a.Len(c, tok))
	}
	for i := 0; i < 10; i++ {
		if v, ok := a.Read(c, tok, i); !ok || v != i*i {
			t.Fatalf("a[%d] = (%d,%v) after grow", i, v, ok)
		}
	}
	// New elements are zero-valued and writable.
	if v, ok := a.Read(c, tok, 20); !ok || v != 0 {
		t.Fatalf("a[20] = (%d,%v)", v, ok)
	}
}

func TestShrinkDropsTail(t *testing.T) {
	_, a, tok, c, em := setup(t, 2, 4)
	a.Resize(c, tok, 16)
	for i := 0; i < 16; i++ {
		a.Write(c, tok, i, i)
	}
	a.Resize(c, tok, 5)
	if a.Len(c, tok) != 5 {
		t.Fatalf("len = %d", a.Len(c, tok))
	}
	if _, ok := a.Read(c, tok, 5); ok {
		t.Fatal("read past shrunk length succeeded")
	}
	for i := 0; i < 5; i++ {
		if v, _ := a.Read(c, tok, i); v != i {
			t.Fatalf("a[%d] = %d", i, v)
		}
	}
	// Tables and dropped blocks are reclaimed after quiescence.
	tok.Unpin(c)
	em.Clear(c)
	st := em.Stats(c)
	// 2 resizes retired 2 old tables; shrink 16/4→5/4 dropped blocks
	// 2 and 3 (ceil(5/4)=2 survive of 4).
	if st.Reclaimed != st.Deferred || st.Deferred != 2+2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlocksDistributed(t *testing.T) {
	_, a, tok, c, _ := setup(t, 4, 2)
	a.Resize(c, tok, 16) // 8 blocks round-robin over 4 locales
	seen := map[int]bool{}
	for i := 0; i < 16; i += 2 {
		l, ok := a.BlockOwner(c, tok, i)
		if !ok {
			t.Fatalf("owner of %d missing", i)
		}
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("blocks only on locales %v", seen)
	}
}

func TestAppend(t *testing.T) {
	_, a, tok, c, _ := setup(t, 2, 4)
	for i := 0; i < 10; i++ {
		if got := a.Append(c, tok, 100+i); got != i {
			t.Fatalf("append returned index %d, want %d", got, i)
		}
	}
	for i := 0; i < 10; i++ {
		if v, _ := a.Read(c, tok, i); v != 100+i {
			t.Fatalf("a[%d] = %d", i, v)
		}
	}
}

func TestResizeToZero(t *testing.T) {
	_, a, tok, c, _ := setup(t, 2, 4)
	a.Resize(c, tok, 9)
	a.Resize(c, tok, 0)
	if a.Len(c, tok) != 0 {
		t.Fatal("len != 0")
	}
	a.Resize(c, tok, 3) // grows again from empty
	if !a.Write(c, tok, 2, 7) {
		t.Fatal("write after regrow failed")
	}
}

// The RCU property: readers traversing an old table version survive a
// concurrent shrink because dropped blocks are retired, not freed.
func TestConcurrentReadersVsResize(t *testing.T) {
	s := newTestSystem(t, 4)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	a := New[int](c0, 0, 8, em)
	boot := em.Register(c0)
	a.Resize(c0, boot, 256)
	for i := 0; i < 256; i++ {
		a.Write(c0, boot, i, i)
	}
	boot.Unregister(c0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reads atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := s.Ctx(r % 4)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Read only the stable prefix: it survives every
				// shrink and no task writes it concurrently (RCU
				// protects table/block lifetimes, not element-level
				// read/write consistency). The structural churn —
				// tables and tail blocks being retired under us — is
				// what this test exercises.
				i := c.RandIntn(64)
				if v, ok := a.Read(c, tok, i); ok && v != i {
					t.Errorf("a[%d] = %d", i, v)
					return
				}
				reads.Add(1)
			}
		}(r)
	}
	// Resizer: shrink and regrow repeatedly, reclaiming as it goes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Ctx(0)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for round := 0; round < 60; round++ {
			a.Resize(c, tok, 64)
			tok.TryReclaim(c)
			a.Resize(c, tok, 256)
			// Rewrite the tail the regrow zeroed so readers keep
			// validating (fresh blocks, not the retired ones).
			for i := 64; i < 256; i++ {
				a.Write(c, tok, i, i)
			}
			tok.TryReclaim(c)
		}
		close(stop)
	}()
	wg.Wait()

	em.Clear(c0)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d use-after-free loads — RCU grace period violated", uaf)
	}
	st := em.Stats(c0)
	if st.Reclaimed != st.Deferred {
		t.Fatalf("reclaimed %d of %d", st.Reclaimed, st.Deferred)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads observed")
	}
}

// A reader that validates data while shrink+regrow churns: under the
// pin it must never observe a poisoned block even though whole tables
// are being retired.
func TestConcurrentResizeRace(t *testing.T) {
	s := newTestSystem(t, 2)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	a := New[int](c0, 0, 4, em)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.Ctx(g % 2)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < 50; i++ {
				a.Resize(c, tok, (g+1)*10+i%7)
				if i%8 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(g)
	}
	wg.Wait()
	em.Clear(c0)
	if uaf := s.HeapStats().UAFLoads + s.HeapStats().UAFFrees; uaf != 0 {
		t.Fatalf("%d UAF events under concurrent resizes", uaf)
	}
	// Exactly one table is live at the end.
	tok := em.Register(c0)
	n := a.Len(c0, tok)
	if n < 0 {
		t.Fatal("corrupt length")
	}
	tok.Unregister(c0)
}

func TestInvalidArgsPanic(t *testing.T) {
	_, a, tok, c, _ := setup(t, 2, 4)
	for name, fn := range map[string]func(){
		"negative resize": func() { a.Resize(c, tok, -1) },
		"negative read":   func() { a.Read(c, tok, -1) },
		"zero block size": func() { New[int](c, 0, 0, a.em) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
