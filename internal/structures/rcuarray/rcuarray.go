// Package rcuarray implements an RCU-like parallel-safe distributed
// resizable array in the style of RCUArray (Jenkins, IPDPSW 2018),
// which the paper cites as prior distributed-structure work by the
// same group and which becomes straightforward to build — and to make
// *non-blocking* — on top of AtomicObject and the EpochManager.
//
// The array is a two-level structure: an immutable table object holds
// the logical length and a list of fixed-size blocks distributed
// round-robin across locales. Readers pin an epoch, atomically load
// the current table, and index through it — no locks, no copies.
// Resizes build a new table (sharing the surviving blocks), install it
// with a single CAS on an AtomicObject, and retire the old table — and
// any dropped blocks — through the EpochManager, so readers still
// traversing the old version stay safe: exactly RCU's
// publish/read/reclaim split, with EBR standing in for RCU's grace
// periods (the correspondence the original RCUArray paper draws).
package rcuarray

import (
	"fmt"

	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// block is one fixed-size chunk of elements, allocated on one locale.
type block[T any] struct {
	data []T
}

// table is one immutable version of the array: its length and blocks.
type table[T any] struct {
	length int
	blocks []gas.Addr
}

// Array is the distributed resizable array. All operations require an
// epoch token (they pin/unpin internally).
type Array[T any] struct {
	tbl       *atomics.AtomicObject
	em        epoch.EpochManager
	home      int
	blockSize int
}

// New creates an empty array. Tables live on the home locale; blocks
// are spread round-robin over all locales. blockSize must be positive.
func New[T any](c *pgas.Ctx, home, blockSize int, em epoch.EpochManager) *Array[T] {
	if blockSize <= 0 {
		panic("rcuarray: blockSize must be positive")
	}
	a := &Array[T]{
		tbl:       atomics.New(c, home, atomics.Options{}),
		em:        em,
		home:      home,
		blockSize: blockSize,
	}
	t0 := c.AllocOn(home, &table[T]{})
	a.tbl.Write(c, t0)
	return a
}

// Manager returns the epoch manager the array reclaims through.
func (a *Array[T]) Manager() epoch.EpochManager { return a.em }

// BlockSize returns the configured block granule.
func (a *Array[T]) BlockSize() int { return a.blockSize }

// load returns the current table under the caller's pin.
func (a *Array[T]) load(c *pgas.Ctx) *table[T] {
	return pgas.MustDeref[*table[T]](c, a.tbl.Read(c))
}

// Len returns the logical length.
func (a *Array[T]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	return a.load(c).length
}

// Read returns element i; ok is false when i is beyond the current
// length (a concurrent shrink may race a stale index — RCU semantics:
// the read linearizes at the table load).
func (a *Array[T]) Read(c *pgas.Ctx, tok *epoch.Token, i int) (v T, ok bool) {
	if i < 0 {
		panic(fmt.Sprintf("rcuarray: negative index %d", i))
	}
	tok.Pin(c)
	defer tok.Unpin(c)
	t := a.load(c)
	if i >= t.length {
		return v, false
	}
	blk := pgas.MustDeref[*block[T]](c, t.blocks[i/a.blockSize])
	return blk.data[i%a.blockSize], true
}

// Write stores element i, reporting false when i is out of range.
// Like RCUArray (and unlike a copy-on-write array), element writes go
// directly into the live block: RCU protects the *structure* (table
// and block lifetimes), while element-level consistency is the
// application's concern.
func (a *Array[T]) Write(c *pgas.Ctx, tok *epoch.Token, i int, v T) bool {
	if i < 0 {
		panic(fmt.Sprintf("rcuarray: negative index %d", i))
	}
	tok.Pin(c)
	defer tok.Unpin(c)
	t := a.load(c)
	if i >= t.length {
		return false
	}
	blk := pgas.MustDeref[*block[T]](c, t.blocks[i/a.blockSize])
	blk.data[i%a.blockSize] = v
	return true
}

// Resize sets the logical length to n, growing or shrinking by whole
// blocks. Surviving blocks are shared with the previous version; the
// old table (and on shrink, the dropped blocks) are retired through
// the EpochManager. Lock-free: concurrent resizes race on one CAS and
// the losers rebuild against the winner's table.
func (a *Array[T]) Resize(c *pgas.Ctx, tok *epoch.Token, n int) {
	if n < 0 {
		panic("rcuarray: negative length")
	}
	tok.Pin(c)
	defer tok.Unpin(c)
	L := c.NumLocales()
	for {
		oldAddr := a.tbl.Read(c)
		old := pgas.MustDeref[*table[T]](c, oldAddr)
		nBlocks := (n + a.blockSize - 1) / a.blockSize

		blocks := make([]gas.Addr, nBlocks)
		var fresh []gas.Addr
		for b := 0; b < nBlocks; b++ {
			if b < len(old.blocks) {
				blocks[b] = old.blocks[b]
				continue
			}
			addr := c.AllocOn(b%L, &block[T]{data: make([]T, a.blockSize)})
			blocks[b] = addr
			fresh = append(fresh, addr)
		}
		newAddr := c.AllocOn(a.home, &table[T]{length: n, blocks: blocks})

		if a.tbl.CompareAndSwap(c, oldAddr, newAddr) {
			tok.DeferDelete(c, oldAddr)
			if nBlocks < len(old.blocks) { // shrink: retire dropped blocks
				for _, dropped := range old.blocks[nBlocks:] {
					tok.DeferDelete(c, dropped)
				}
			}
			return
		}
		// Lost the race: nothing we allocated was published; free it
		// eagerly and retry against the winner's table.
		c.Free(newAddr)
		for _, addr := range fresh {
			c.Free(addr)
		}
	}
}

// Append grows the array by one and writes v at the new last index,
// returning that index. It is a convenience composed of Resize+Write
// and is atomic only with respect to structure safety, not against
// concurrent appends racing for the same index (callers wanting a
// concurrent log should serialize appends or use a queue).
func (a *Array[T]) Append(c *pgas.Ctx, tok *epoch.Token, v T) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		t := a.load(c)
		i := t.length
		a.Resize(c, tok, i+1)
		if a.Write(c, tok, i, v) {
			return i
		}
	}
}

// BlockOwner reports which locale stores the block containing index i
// in the *current* table — diagnostic, for locality-aware callers.
func (a *Array[T]) BlockOwner(c *pgas.Ctx, tok *epoch.Token, i int) (int, bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	t := a.load(c)
	if i < 0 || i >= t.length {
		return 0, false
	}
	return t.blocks[i/a.blockSize].Locale(), true
}
