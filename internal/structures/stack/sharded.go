package stack

import (
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/shared"
)

// Sharded is the owner-sharded, privatized evolution of Stack: one
// independent Treiber segment per locale, resolved through the shared
// distributed-object framework. A single-home Stack serializes every
// locale's pushes and pops on one head cell — the home's column in the
// comm matrix grows linearly with locale count — whereas a Sharded
// stack's local operations touch only the calling locale's segment and
// perform zero remote communication. LIFO order holds per segment, not
// globally (the DistributedBag trade).
//
// Global views route through the dispatch/aggregation layers:
// TryPopAny steals from peers with on-statements, PushBulkOn ships a
// batch to a chosen owner through the aggregation buffers, and
// Drain/Len/Stats are owner-computed reductions.
type Sharded[T any] struct {
	obj shared.Object[segment[T]]
}

// segment is one locale's shard: a single-home stack homed there.
type segment[T any] struct {
	s *Stack[T]
}

// NewSharded creates a stack with one segment per locale, all
// reclaiming through em.
func NewSharded[T any](c *pgas.Ctx, em epoch.EpochManager) Sharded[T] {
	return Sharded[T]{obj: shared.New(c, em, func(lc *pgas.Ctx, shard int) *segment[T] {
		return &segment[T]{s: New[T](lc, shard, em)}
	})}
}

// Manager returns the epoch manager the stack reclaims through.
func (s Sharded[T]) Manager() epoch.EpochManager { return s.obj.Manager() }

// Push adds v to the calling locale's segment. Node, head cell and
// epoch pin are all locale-local: zero remote communication.
func (s Sharded[T]) Push(c *pgas.Ctx, tok *epoch.Token, v T) {
	s.obj.Local(c).s.Push(c, tok, v)
}

// PushBulk pushes vals as one contiguous batch onto the calling
// locale's segment (vals[len-1] on top).
func (s Sharded[T]) PushBulk(c *pgas.Ctx, tok *epoch.Token, vals []T) {
	s.obj.Local(c).s.PushBulk(c, tok, vals)
}

// PushBulkOn routes a batch to the segment owned by `owner` through
// the calling task's aggregation buffer: the batch executes on the
// owner (a locale-local PushBulk under a destination-local token) when
// the buffer flushes — at capacity, or at Ctx.Flush. No caller token
// is needed. A remote batch is not visible until the flush; a batch
// for the caller's own locale executes inline immediately, as
// aggregated local operations always do.
func (s Sharded[T]) PushBulkOn(c *pgas.Ctx, owner int, vals []T) {
	if len(vals) == 0 {
		return
	}
	batch := append([]T(nil), vals...) // detach from the caller's buffer
	shared.CombineBulkOn(c, s.obj, owner, batch,
		func(lc *pgas.Ctx, seg *segment[T], vals []T) {
			s.obj.Protect(lc, func(tok *epoch.Token) {
				seg.s.PushBulk(lc, tok, vals)
			})
		})
}

// Pop removes the most recent value of the calling locale's segment;
// ok is false when the local segment is empty (other segments may
// still hold work — see TryPopAny).
func (s Sharded[T]) Pop(c *pgas.Ctx, tok *epoch.Token) (v T, ok bool) {
	return s.obj.Local(c).s.Pop(c, tok)
}

// popSeg is the segment pop hook the shared collection helpers drive.
func popSeg[T any](lc *pgas.Ctx, tok *epoch.Token, s *segment[T]) (T, bool) {
	return s.s.Pop(lc, tok)
}

// TryPopAny pops from the local segment if it has work, and otherwise
// steals (shared.TryTakeAny): it visits the other segments (next
// locale first, wrapping) with one synchronous on-statement each,
// popping on the victim's locale under a victim-local token. It
// returns the segment the value came from; ok is false only when
// every segment appeared empty.
func (s Sharded[T]) TryPopAny(c *pgas.Ctx, tok *epoch.Token) (v T, from int, ok bool) {
	return shared.TryTakeAny(c, s.obj, tok, popSeg[T])
}

// Failover adopts the dead locale's segment after a crash: from a
// salvage context (pgas.Ctx.Salvage — required, the same contract as
// hashmap.Rebalanced.Failover) the dead segment drains on its own
// locale and its values re-home onto the surviving locales through the
// bulk framing, in contiguous chunks. Steal paths (TryPopAny) already
// skip unreachable victims, so adoption is the only road the stranded
// values ride back. Returns the chunks adopted (each booking one
// balanced MigAdopt/MigRetire pair and one KindAdopt span) and payload
// bytes moved; the caller still force-retires the dead locale's epoch
// tokens.
func (s Sharded[T]) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	return shared.FailoverDrain(c, s.obj, dead, popSeg[T],
		func(lc *pgas.Ctx, seg *segment[T], vals []T) {
			s.obj.Protect(lc, func(tok *epoch.Token) {
				seg.s.PushBulk(lc, tok, vals)
			})
		})
}

// Drain empties every segment and returns the remaining values grouped
// by owning segment (index = locale id; per-segment LIFO order):
// shared.Drain's cost model — each segment drains on its own locale,
// each non-empty remote batch ships home as one bulk transfer.
func (s Sharded[T]) Drain(c *pgas.Ctx) [][]T {
	return shared.Drain(c, s.obj, popSeg[T])
}

// Len approximates the total element count from the segments' push/pop
// counters (shared.ApproxSum: one small remote read per remote
// segment, no traversal). Exact when the stack is quiescent.
func (s Sharded[T]) Len(c *pgas.Ctx) int {
	return int(shared.ApproxSum(c, s.obj, func(seg *segment[T]) int64 {
		st := seg.s.Stats()
		return st.Pushes - st.Pops
	}))
}

// Destroy tears the stack down: each segment frees its remaining
// nodes on their owning locales, then the privatized registry slots
// are released (recycled by the next structure created). The stack
// must be quiescent; nodes already popped were retired through the
// epoch manager — let it clear to reclaim them. No task may use any
// copy of the handle afterwards. Churn scenarios rely on this leaving
// zero gas-heap or registry residue.
func (s Sharded[T]) Destroy(c *pgas.Ctx) {
	s.obj.Destroy(c, func(lc *pgas.Ctx, seg *segment[T]) {
		seg.s.destroy(lc)
	})
}

// Stats sums the per-segment operation counters (owner-computed: one
// on-statement per remote segment).
func (s Sharded[T]) Stats(c *pgas.Ctx) Stats {
	var total Stats
	for _, st := range shared.Gather(c, s.obj, func(_ *pgas.Ctx, seg *segment[T]) Stats {
		return seg.s.Stats()
	}) {
		total.Pushes += st.Pushes
		total.Pops += st.Pops
		total.Empty += st.Empty
	}
	return total
}
