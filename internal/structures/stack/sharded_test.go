package stack

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func TestShardedLocalOpsAreZeroComm(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := NewSharded[int](c, em)
		before := s.Counters().Snapshot()
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for i := 0; i < 50; i++ {
					st.Push(lc, tok, i)
				}
				for i := 49; i >= 0; i-- {
					v, ok := st.Pop(lc, tok)
					if !ok || v != i {
						t.Errorf("locale %d pop = (%d,%v), want %d", lc.Here(), v, ok, i)
					}
				}
			})
		})
		delta := s.Counters().Snapshot().Sub(before)
		if got := delta.Remote() - delta.OnStmts; got != 0 {
			t.Fatalf("local sharded ops performed %d remote events: %v", got, delta)
		}
	})
}

func TestShardedStealDrainAndBulkOn(t *testing.T) {
	s := newTestSystem(t, 3, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := NewSharded[int](c, em)
		// Route a batch to locale 1's segment through the aggregator.
		st.PushBulkOn(c, 1, []int{1, 2, 3})
		c.Flush()
		if n := st.Len(c); n != 3 {
			t.Fatalf("Len = %d, want 3", n)
		}
		// Locale 0's segment is empty: TryPopAny steals from 1 (LIFO:
		// the last pushed value comes first).
		tok := em.Register(c)
		v, from, ok := st.TryPopAny(c, tok)
		if !ok || from != 1 || v != 3 {
			t.Fatalf("steal = (%d, from=%d, %v), want (3, 1, true)", v, from, ok)
		}
		if _, _, ok := st.TryPopAny(c, tok); !ok {
			t.Fatal("second steal failed with work remaining")
		}
		tok.Unregister(c)
		batches := st.Drain(c)
		if got := batches[1]; len(got) != 1 || got[0] != 1 {
			t.Fatalf("drained segment 1 = %v", got)
		}
		if st.Len(c) != 0 {
			t.Fatal("stack not empty after drain")
		}
		stats := st.Stats(c)
		if stats.Pushes != 3 || stats.Pops != 3 {
			t.Fatalf("stats = %+v", stats)
		}
		st.Destroy(c) // drained and quiescent: releases the registry slots
	})
}

func TestShardedConcurrentChurn(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	st := NewSharded[int](s.Ctx(0), em)
	const perTask = 300
	var wg sync.WaitGroup
	for l := 0; l < 4; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := s.Ctx(l)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < perTask; i++ {
				st.Push(c, tok, i)
				if i%3 == 0 {
					st.TryPopAny(c, tok)
				}
				if i%64 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(l)
	}
	wg.Wait()
	c := s.Ctx(0)
	stats := st.Stats(c)
	if got := st.Len(c); int64(got) != stats.Pushes-stats.Pops {
		t.Fatalf("Len=%d but stats say %d", got, stats.Pushes-stats.Pops)
	}
	st.Drain(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d use-after-free loads", uaf)
	}
}
