package stack

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

func TestStackLIFO(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[int](c, 0, em)
		tok := em.Register(c)
		for i := 0; i < 10; i++ {
			st.Push(c, tok, i)
		}
		for i := 9; i >= 0; i-- {
			v, ok := st.Pop(c, tok)
			if !ok || v != i {
				t.Fatalf("pop = (%d,%v), want %d", v, ok, i)
			}
		}
		if _, ok := st.Pop(c, tok); ok {
			t.Fatal("pop from empty succeeded")
		}
		if !st.IsEmpty(c) {
			t.Fatal("IsEmpty false after draining")
		}
	})
}

func TestStackPeekLen(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[string](c, 0, em)
		tok := em.Register(c)
		if _, ok := st.Peek(c, tok); ok {
			t.Fatal("peek on empty")
		}
		st.Push(c, tok, "a")
		st.Push(c, tok, "b")
		if v, ok := st.Peek(c, tok); !ok || v != "b" {
			t.Fatalf("peek = %q", v)
		}
		if n := st.Len(c, tok); n != 2 {
			t.Fatalf("len = %d", n)
		}
	})
}

func TestStackConcurrentMultiLocale(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 4, backend)
			em := epoch.NewEpochManager(s.Ctx(0))
			st := New[int](s.Ctx(0), 0, em)
			const perTask = 150
			const tasksPerLocale = 2
			var wg sync.WaitGroup
			var mu sync.Mutex
			popped := make(map[int]int)
			for l := 0; l < 4; l++ {
				for k := 0; k < tasksPerLocale; k++ {
					wg.Add(1)
					go func(l, k int) {
						defer wg.Done()
						c := s.Ctx(l)
						tok := em.Register(c)
						defer tok.Unregister(c)
						base := (l*tasksPerLocale + k) * perTask
						for i := 0; i < perTask; i++ {
							st.Push(c, tok, base+i)
							if v, ok := st.Pop(c, tok); ok {
								mu.Lock()
								popped[v]++
								mu.Unlock()
							}
							if i%32 == 0 {
								tok.TryReclaim(c)
							}
						}
					}(l, k)
				}
			}
			wg.Wait()
			c := s.Ctx(0)
			tok := em.Register(c)
			for {
				v, ok := st.Pop(c, tok)
				if !ok {
					break
				}
				mu.Lock()
				popped[v]++
				mu.Unlock()
			}
			tok.Unregister(c)
			total := 0
			for v, n := range popped {
				if n != 1 {
					t.Fatalf("value %d popped %d times", v, n)
				}
				total++
			}
			if total != 4*tasksPerLocale*perTask {
				t.Fatalf("popped %d values, want %d", total, 4*tasksPerLocale*perTask)
			}
			em.Clear(c)
			if uaf := s.HeapStats().UAFLoads; uaf != 0 {
				t.Fatalf("%d use-after-free loads", uaf)
			}
			stats := st.Stats()
			if stats.Pushes != stats.Pops {
				t.Fatalf("pushes %d != pops %d", stats.Pushes, stats.Pops)
			}
		})
	}
}

// Node reclamation end-to-end: after churn + Clear, the only live heap
// slots are the epoch managers' recycled limbo nodes — every stack
// node must be gone.
func TestStackNodesReclaimed(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[int](c, 0, em)
		tok := em.Register(c)
		baseline := s.HeapStats().Live
		for round := 0; round < 5; round++ {
			for i := 0; i < 50; i++ {
				st.Push(c, tok, i)
			}
			for {
				if _, ok := st.Pop(c, tok); !ok {
					break
				}
			}
		}
		tok.Unregister(c)
		em.Clear(c)
		// All 250 nodes freed; live heap returns to the baseline plus
		// recycled limbo-node pool slots (they are never freed).
		live := s.HeapStats().Live
		mgr := em.Stats(c)
		if mgr.Reclaimed != 250 {
			t.Fatalf("reclaimed %d nodes, want 250", mgr.Reclaimed)
		}
		if live < baseline {
			t.Fatalf("heap went below baseline: %d < %d", live, baseline)
		}
	})
}
