package stack

import (
	"sort"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// The stack mirror of the queue failover contract: a crashed locale's
// segment drains onto the survivors with balanced adopt/retire books,
// steals skip the corpse, and the surviving multiset is exact (LIFO is
// a per-segment property, so adoption asserts set preservation, not
// order).
func TestShardedFailover(t *testing.T) {
	const locales, victim, vq = 4, 1, 9
	s := newTestSystem(t, locales, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := NewSharded[int](c, em)
		want := make(map[int]int)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if lc.Here() == victim {
					for i := 0; i < vq; i++ {
						st.Push(lc, tok, victim*1000+i)
					}
				} else {
					st.Push(lc, tok, lc.Here()*1000)
				}
			})
		})
		for l := 0; l < locales; l++ {
			if l == victim {
				for i := 0; i < vq; i++ {
					want[victim*1000+i]++
				}
			} else {
				want[l*1000]++
			}
		}
		c.On(victim, func(vc *pgas.Ctx) { em.Pin(vc) })

		if err := s.Crash(victim); err != nil {
			t.Fatalf("Crash: %v", err)
		}

		// Steal guard: an empty survivor pops from a live peer, never
		// probing the dead one.
		preLost := s.Counters().Snapshot().OpsLost
		stok := em.Register(c)
		if v, from, ok := st.TryPopAny(c, stok); !ok || from == victim {
			t.Fatalf("steal after crash = (from=%d, %v)", from, ok)
		} else {
			want[v]--
			if want[v] == 0 {
				delete(want, v)
			}
		}
		stok.Unregister(c)
		if lost := s.Counters().Snapshot().OpsLost; lost != preLost {
			t.Fatalf("steal burned %d refusals on the dead victim", lost-preLost)
		}

		before := s.Counters().Snapshot()
		sc := c.Salvage()
		shards, bytes := st.Failover(sc, victim)
		tokens := em.ForceRetire(sc, victim)
		sc.Flush()

		if shards != locales-1 {
			t.Fatalf("failover adopted %d chunks, want %d", shards, locales-1)
		}
		if wantBytes := int64(vq) * 16; bytes != wantBytes {
			t.Fatalf("failover moved %d bytes, want %d", bytes, wantBytes)
		}
		if tokens != 1 {
			t.Fatalf("force-retired %d tokens, want exactly the stranded pin", tokens)
		}
		delta := s.Counters().Snapshot().Sub(before)
		if delta.MigAdopted != shards || delta.MigRetired != shards || delta.MigBytes != bytes {
			t.Fatalf("books unbalanced: adopted %d retired %d bytes %d vs failover (%d, %d)",
				delta.MigAdopted, delta.MigRetired, delta.MigBytes, shards, bytes)
		}
		if delta.OpsLost != 0 {
			t.Fatalf("failover lost %d ops", delta.OpsLost)
		}

		var got []int
		for owner, batch := range st.Drain(sc) {
			if owner == victim && len(batch) != 0 {
				t.Fatalf("dead segment still holds %v", batch)
			}
			got = append(got, batch...)
		}
		wantVals := make([]int, 0, len(want))
		for v, n := range want {
			for ; n > 0; n-- {
				wantVals = append(wantVals, v)
			}
		}
		sort.Ints(got)
		sort.Ints(wantVals)
		if len(got) != len(wantVals) {
			t.Fatalf("drained %d values, want %d", len(got), len(wantVals))
		}
		for i := range got {
			if got[i] != wantVals[i] {
				t.Fatalf("drained set diverged at %d: got %v want %v", i, got, wantVals)
			}
		}

		if sh, b := st.Failover(sc, 0); sh != 0 || b != 0 {
			t.Fatalf("failover of alive locale adopted (%d, %d)", sh, b)
		}
	})
}
