// Package stack implements the paper's Listing 1: a Treiber lock-free
// stack over AtomicObject with ABA protection, generalised to
// distributed memory. The head is an ABA-stamped AtomicObject homed on
// one locale; nodes are allocated in the global address space on the
// locale of the pushing task, and popped nodes are handed to an
// EpochManager for concurrent-safe reclamation.
//
// The stack therefore exercises every piece of the paper's
// infrastructure at once: pointer compression (the head CAS is a NIC
// atomic when possible), the stamped DCAS variants (pop's window), and
// distributed EBR (node reclamation).
package stack

import (
	"sync/atomic"

	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// node is one stack cell. The next field is written only before the
// node is published by the CAS and read only by tasks that obtained
// the node from the head afterwards, so a plain field suffices; val is
// immutable after construction.
type node[T any] struct {
	val  T
	next gas.Addr
}

// Stack is a distributed lock-free LIFO. All operations require a
// registered epoch token; they pin and unpin it internally.
type Stack[T any] struct {
	head *atomics.AtomicObject
	em   epoch.EpochManager
	home int

	pushes atomic.Int64
	pops   atomic.Int64
	empty  atomic.Int64
}

// New creates a stack whose head cell is homed on the given locale and
// whose reclamation is handled by em.
func New[T any](c *pgas.Ctx, home int, em epoch.EpochManager) *Stack[T] {
	return &Stack[T]{
		head: atomics.New(c, home, atomics.Options{ABA: true}),
		em:   em,
		home: home,
	}
}

// Manager returns the epoch manager the stack reclaims through.
func (s *Stack[T]) Manager() epoch.EpochManager { return s.em }

// destroy frees every node still linked from the head in one bulk
// free per owning locale (push allocates on the pusher's locale, so
// the chain may span the system). The stack must be quiescent and is
// unusable afterwards. Popped nodes are not in this chain; they were
// retired through the epoch manager, which owns their frees.
// Sharded.Destroy runs this per segment so churn scenarios leak
// nothing.
func (s *Stack[T]) destroy(c *pgas.Ctx) {
	byLocale := make(map[int][]gas.Addr)
	addr := s.head.ReadABA(c).Object()
	for !addr.IsNil() {
		n := pgas.MustDeref[*node[T]](c, addr)
		byLocale[addr.Locale()] = append(byLocale[addr.Locale()], addr)
		addr = n.next
	}
	s.head.Write(c, 0)
	for locale, addrs := range byLocale {
		c.FreeBulk(locale, addrs)
	}
}

// Push adds v. The node is allocated on the calling task's locale —
// pushes never communicate beyond the head CAS itself.
func (s *Stack[T]) Push(c *pgas.Ctx, tok *epoch.Token, v T) {
	n := &node[T]{val: v}
	addr := c.Alloc(n)
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		oldHead := s.head.ReadABA(c)
		n.next = oldHead.Object()
		if s.head.CompareAndSwapABA(c, oldHead, addr) {
			s.pushes.Add(1)
			return
		}
	}
}

// PushBulk pushes every value in vals as one batch: vals[len-1] ends
// up on top, i.e. the result is identical to pushing vals in order.
// The nodes are allocated locally and pre-linked into a chain, so the
// whole batch publishes with a single head CAS — one remote operation
// for len(vals) pushes. The batch is contiguous on the stack.
func (s *Stack[T]) PushBulk(c *pgas.Ctx, tok *epoch.Token, vals []T) {
	if len(vals) == 0 {
		return
	}
	// Build the chain bottom-up: nodes[i].next = nodes[i-1], so the
	// last value is the new top.
	nodes := make([]*node[T], len(vals))
	addrs := make([]gas.Addr, len(vals))
	for i, v := range vals {
		nodes[i] = &node[T]{val: v}
		addrs[i] = c.Alloc(nodes[i])
		if i > 0 {
			nodes[i].next = addrs[i-1]
		}
	}
	top := addrs[len(addrs)-1]
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		oldHead := s.head.ReadABA(c)
		nodes[0].next = oldHead.Object()
		if s.head.CompareAndSwapABA(c, oldHead, top) {
			s.pushes.Add(int64(len(vals)))
			return
		}
	}
}

// Pop removes and returns the most recently pushed value; ok is false
// when the stack is empty. The unlinked node is defer-deleted through
// the epoch manager, never freed eagerly — the dereference another
// task may concurrently perform on it stays safe under its own pin.
func (s *Stack[T]) Pop(c *pgas.Ctx, tok *epoch.Token) (v T, ok bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		oldHead := s.head.ReadABA(c)
		if oldHead.IsNil() {
			s.empty.Add(1)
			return v, false
		}
		n := pgas.MustDeref[*node[T]](c, oldHead.Object())
		if s.head.CompareAndSwapABA(c, oldHead, n.next) {
			tok.DeferDelete(c, oldHead.Object())
			s.pops.Add(1)
			return n.val, true
		}
	}
}

// Peek returns the top value without removing it.
func (s *Stack[T]) Peek(c *pgas.Ctx, tok *epoch.Token) (v T, ok bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	top := s.head.ReadABA(c)
	if top.IsNil() {
		return v, false
	}
	return pgas.MustDeref[*node[T]](c, top.Object()).val, true
}

// IsEmpty reports whether the stack appeared empty.
func (s *Stack[T]) IsEmpty(c *pgas.Ctx) bool {
	return s.head.ReadABA(c).IsNil()
}

// Len counts the elements by traversal (O(n), not linearizable; for
// tests and diagnostics). Requires a token for safe traversal.
func (s *Stack[T]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	n := 0
	for cur := s.head.ReadABA(c).Object(); !cur.IsNil(); {
		nd := pgas.MustDeref[*node[T]](c, cur)
		cur = nd.next
		n++
	}
	return n
}

// Stats reports operation totals.
type Stats struct {
	Pushes int64
	Pops   int64
	Empty  int64 // pops that observed an empty stack
}

// Stats returns the stack's counters.
func (s *Stack[T]) Stats() Stats {
	return Stats{Pushes: s.pushes.Load(), Pops: s.pops.Load(), Empty: s.empty.Load()}
}
