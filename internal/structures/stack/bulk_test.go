package stack

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// PushBulk is equivalent to pushing the values in order: the last
// element of the batch pops first, and the batch is contiguous.
func TestPushBulkOrder(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[int](c, 1, em)
		tok := em.Register(c)
		defer tok.Unregister(c)

		st.Push(c, tok, -1)
		st.PushBulk(c, tok, []int{1, 2, 3, 4, 5})
		for want := 5; want >= 1; want-- {
			got, ok := st.Pop(c, tok)
			if !ok || got != want {
				t.Fatalf("pop = %d (ok=%v), want %d", got, ok, want)
			}
		}
		if got, ok := st.Pop(c, tok); !ok || got != -1 {
			t.Fatalf("bottom pop = %d (ok=%v), want -1", got, ok)
		}
		if stats := st.Stats(); stats.Pushes != 6 || stats.Pops != 6 {
			t.Fatalf("stats = %+v", stats)
		}
	})
}

// The whole batch publishes with one head CAS: communication is O(1)
// in the batch size.
func TestPushBulkCommVolume(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[int](c, 1, em)
		tok := em.Register(c)
		defer tok.Unregister(c)

		const n = 200
		before := s.Counters().Snapshot()
		st.PushBulk(c, tok, make([]int, n))
		d := s.Counters().Snapshot().Sub(before)
		// Nodes are local; the head is remote and ABA-stamped, so the
		// read + CAS are DCAS-class remote ops — but only O(1) of them.
		if remote := d.Remote() + d.DCASRemote; remote > 6 {
			t.Fatalf("bulk push of %d paid %d remote ops, want O(1): %v", n, remote, d)
		}
	})
}

// PushBulk interleaves safely with concurrent poppers.
func TestPushBulkConcurrent(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 1, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		st := New[int](c, 0, em)
		const tasks, batches, batchLen = 4, 8, 16
		c.Coforall(tasks, func(tc *pgas.Ctx, tid int) {
			em.Protect(tc, func(tok *epoch.Token) {
				for b := 0; b < batches; b++ {
					vals := make([]int, batchLen)
					for i := range vals {
						vals[i] = tid*batches*batchLen + b*batchLen + i
					}
					st.PushBulk(tc, tok, vals)
				}
			})
		})
		tok := em.Register(c)
		defer tok.Unregister(c)
		seen := map[int]bool{}
		for {
			v, ok := st.Pop(c, tok)
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
		}
		if len(seen) != tasks*batches*batchLen {
			t.Fatalf("popped %d values, want %d", len(seen), tasks*batches*batchLen)
		}
	})
}
