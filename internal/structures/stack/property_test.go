package stack

import (
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Property: under any sequential push/pop sequence the stack agrees
// with a slice model (LIFO order, emptiness, length).
func TestStackModelProperty(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)

	f := func(ops []int16) bool {
		st := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		var model []int
		for i, op := range ops {
			if op >= 0 {
				st.Push(c, tok, i)
				model = append(model, i)
			} else {
				v, ok := st.Pop(c, tok)
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || v != want {
					return false
				}
			}
		}
		if st.Len(c, tok) != len(model) {
			return false
		}
		// Drain: remaining elements come out in reverse model order.
		for k := len(model) - 1; k >= 0; k-- {
			v, ok := st.Pop(c, tok)
			if !ok || v != model[k] {
				return false
			}
		}
		_, ok := st.Pop(c, tok)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Peek never mutates.
func TestPeekPureProperty(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 1, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	f := func(n uint8) bool {
		st := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for i := 0; i < int(n%20); i++ {
			st.Push(c, tok, i)
		}
		before := st.Len(c, tok)
		for i := 0; i < 5; i++ {
			st.Peek(c, tok)
		}
		return st.Len(c, tok) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
