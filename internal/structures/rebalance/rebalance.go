// Package rebalance closes the loop between the measurement plane and
// ownership: a Controller samples windowed comm.Matrix column deltas —
// the per-locale inbound traffic the diagnostics already maintain
// contention-free — and migrates the hottest entries (buckets,
// segments) off any locale whose window exceeds a configurable
// imbalance ratio, with hysteresis so a flapping hot set doesn't
// thrash ownership back and forth.
//
// The controller is structure-agnostic: anything that can enumerate
// its entries, report their owner and heat, and migrate one entry
// satisfies Target (hashmap.Rebalanced does, at per-bucket
// granularity). The controller only decides *what* to move *where*;
// the target owns the epoch-coherent handoff itself.
package rebalance

import (
	"sort"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

// Target is a structure whose entry ownership the controller may
// rearrange. Entry indexing is dense [0, NumEntries). EntryHeat is a
// monotone traffic counter per entry; the controller ranks candidates
// by its per-window delta. Migrate performs the structure's own
// handoff protocol and reports the payload bytes shipped and whether
// it actually ran (it may decline, e.g. when a concurrent migration
// already moved the entry).
type Target interface {
	NumEntries() int
	EntryOwner(e int) int
	EntryHeat(e int) int64
	Migrate(c *pgas.Ctx, e, dst int) (bytes int64, ok bool)
}

// Config tunes the control loop. The zero value of each knob selects
// its documented default.
type Config struct {
	// Ratio is the imbalance trigger: a window acts only when the
	// busiest inbound column's delta exceeds Ratio × the per-locale
	// mean delta. Must be > 1 (1 would fire on perfectly balanced
	// traffic); 0 selects 2.
	Ratio float64
	// MinEvents is the minimum total inbound events a window must carry
	// before it is judged at all — launch and handoff residue alone
	// must not look like imbalance. 0 selects 1.
	MinEvents int64
	// MaxMoves caps migrations per window; 0 selects 4.
	MaxMoves int
	// Cooldown is the hysteresis that keeps a flapping hot set from
	// thrashing ownership: a source that migrated in window w is not
	// eligible again before window w+Cooldown (1 = eligible at the
	// very next window). 0 selects 1.
	Cooldown int
}

// withDefaults fills zero knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Ratio == 0 {
		cfg.Ratio = 2
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 1
	}
	if cfg.MaxMoves == 0 {
		cfg.MaxMoves = 4
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 1
	}
	return cfg
}

// Stats is the controller's cumulative evidence: windows judged,
// migrations issued (only those the target confirmed), and the payload
// bytes those migrations shipped — cross-checkable against the comm
// layer's MigRetired/MigBytes books.
type Stats struct {
	Steps      int64
	Migrations int64
	BytesMoved int64
}

// Controller drives the rebalancing policy. It is not safe for
// concurrent use: exactly one task calls Step (typically a periodic
// control loop beside the workers, with its own Ctx).
type Controller struct {
	tgt     Target
	cfg     Config
	matrix  *comm.Matrix
	locales int

	lastCols []int64
	lastHeat []int64
	rest     []int // per-locale cooldown windows remaining
	stats    Stats
}

// NewController builds a controller over the system's comm matrix,
// anchoring the first window at the current totals so pre-existing
// traffic (setup, loading) never counts as imbalance.
func NewController(c *pgas.Ctx, tgt Target, cfg Config) *Controller {
	ct := &Controller{
		tgt:      tgt,
		cfg:      cfg.withDefaults(),
		matrix:   c.Sys().Matrix(),
		locales:  c.NumLocales(),
		lastHeat: make([]int64, tgt.NumEntries()),
		rest:     make([]int, c.NumLocales()),
	}
	ct.lastCols = ct.matrix.ColTotals()
	for e := range ct.lastHeat {
		ct.lastHeat[e] = tgt.EntryHeat(e)
	}
	return ct
}

// Stats returns the cumulative controller evidence.
func (ct *Controller) Stats() Stats { return ct.stats }

// Step judges one window and returns how many migrations it issued:
// difference the inbound columns and entry heats against the previous
// window, find the over-ratio source (if any, and not cooling down),
// and move its hottest entries to the coldest destinations, round-
// robin. Deterministic for a deterministic traffic history: ties break
// by entry and locale index.
func (ct *Controller) Step(c *pgas.Ctx) int {
	ct.stats.Steps++

	cols := ct.matrix.ColTotals()
	delta := make([]int64, ct.locales)
	var total int64
	for l := range delta {
		delta[l] = cols[l] - ct.lastCols[l]
		total += delta[l]
	}
	ct.lastCols = cols

	heat := make([]int64, len(ct.lastHeat))
	for e := range heat {
		h := ct.tgt.EntryHeat(e)
		heat[e] = h - ct.lastHeat[e]
		ct.lastHeat[e] = h
	}

	for l := range ct.rest {
		if ct.rest[l] > 0 {
			ct.rest[l]--
		}
	}

	if total < ct.cfg.MinEvents {
		return 0
	}
	src := 0
	for l := 1; l < ct.locales; l++ {
		if delta[l] > delta[src] {
			src = l
		}
	}
	mean := float64(total) / float64(ct.locales)
	if float64(delta[src]) <= ct.cfg.Ratio*mean {
		return 0
	}
	if ct.rest[src] > 0 {
		return 0
	}

	// Candidates: the source's entries with traffic this window,
	// hottest first (ties by entry index, for determinism).
	var cands []int
	for e := 0; e < ct.tgt.NumEntries(); e++ {
		if ct.tgt.EntryOwner(e) == src && heat[e] > 0 {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		return 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if heat[cands[i]] != heat[cands[j]] {
			return heat[cands[i]] > heat[cands[j]]
		}
		return cands[i] < cands[j]
	})
	if len(cands) > ct.cfg.MaxMoves {
		cands = cands[:ct.cfg.MaxMoves]
	}

	// Destinations: every other locale, coldest first (ties by locale
	// index), assigned round-robin so one window's moves spread out.
	cold := make([]int, 0, ct.locales-1)
	for l := 0; l < ct.locales; l++ {
		if l != src {
			cold = append(cold, l)
		}
	}
	sort.Slice(cold, func(i, j int) bool {
		if delta[cold[i]] != delta[cold[j]] {
			return delta[cold[i]] < delta[cold[j]]
		}
		return cold[i] < cold[j]
	})

	moves := 0
	for i, e := range cands {
		if bytes, ok := ct.tgt.Migrate(c, e, cold[i%len(cold)]); ok {
			ct.stats.Migrations++
			ct.stats.BytesMoved += bytes
			moves++
		}
	}
	if moves > 0 {
		ct.rest[src] = ct.cfg.Cooldown
	}
	return moves
}
