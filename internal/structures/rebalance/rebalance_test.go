package rebalance

import (
	"reflect"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

// fakeTarget is an in-memory Target: owners and heat the test sets
// directly, migrations recorded and applied to the owner array.
type fakeTarget struct {
	owners  []int
	heat    []int64
	moved   [][2]int // (entry, dst) in issue order
	decline bool
}

func (f *fakeTarget) NumEntries() int       { return len(f.owners) }
func (f *fakeTarget) EntryOwner(e int) int  { return f.owners[e] }
func (f *fakeTarget) EntryHeat(e int) int64 { return f.heat[e] }
func (f *fakeTarget) Migrate(c *pgas.Ctx, e, dst int) (int64, bool) {
	if f.decline {
		return 0, false
	}
	f.moved = append(f.moved, [2]int{e, dst})
	f.owners[e] = dst
	return 16, true
}

func newControllerHarness(t *testing.T) (*pgas.System, *pgas.Ctx, *fakeTarget) {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: 4, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	tgt := &fakeTarget{
		owners: []int{0, 1, 2, 3, 0, 1, 2, 3},
		heat:   make([]int64, 8),
	}
	return s, s.Ctx(0), tgt
}

// inbound injects n inbound events at dst (from some other locale).
func inbound(s *pgas.System, dst int, n int) {
	src := (dst + 1) % s.NumLocales()
	for i := 0; i < n; i++ {
		s.Matrix().Inc(src, dst)
	}
}

// A window whose busiest column exceeds Ratio x mean moves the
// source's hottest entries to the coldest destinations, round-robin,
// hottest first — deterministically.
func TestControllerMigratesHotSource(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 2, Cooldown: 1})

	// Quiet window: below MinEvents, no judgement at all.
	inbound(s, 0, 2)
	if n := ct.Step(c); n != 0 {
		t.Fatalf("quiet window migrated %d", n)
	}

	// Hot window: locale 0 takes all traffic; its entries 0 and 4 are
	// hot (entry 0 hotter).
	inbound(s, 0, 12)
	tgt.heat[0] += 5
	tgt.heat[4] += 3
	if n := ct.Step(c); n != 2 {
		t.Fatalf("hot window migrated %d, want 2", n)
	}
	// Hottest entry first; destinations coldest-first (1,2,3 all at 0
	// delta, tie broken by index) assigned round-robin.
	want := [][2]int{{0, 1}, {4, 2}}
	if !reflect.DeepEqual(tgt.moved, want) {
		t.Fatalf("moves = %v, want %v", tgt.moved, want)
	}
	st := ct.Stats()
	if st.Migrations != 2 || st.BytesMoved != 32 {
		t.Fatalf("stats = %+v, want 2 migrations / 32 bytes", st)
	}
	if st.Steps != 2 {
		t.Fatalf("steps = %d, want 2", st.Steps)
	}
}

// Balanced traffic — or a busiest column within the ratio — never
// triggers, no matter how much of it there is.
func TestControllerIgnoresBalancedTraffic(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 2, Cooldown: 1})
	for l := 0; l < 4; l++ {
		inbound(s, l, 25)
	}
	for e := range tgt.heat {
		tgt.heat[e] += 10
	}
	if n := ct.Step(c); n != 0 {
		t.Fatalf("balanced window migrated %d", n)
	}
	if len(tgt.moved) != 0 {
		t.Fatalf("moves = %v, want none", tgt.moved)
	}
}

// Pre-existing traffic is anchored away at construction: only deltas
// after NewController count.
func TestControllerAnchorsAtConstruction(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	inbound(s, 0, 100) // setup / loading traffic
	tgt.heat[0] = 50
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 2, Cooldown: 1})
	if n := ct.Step(c); n != 0 {
		t.Fatalf("anchored history still migrated %d", n)
	}
}

// Cooldown: a source that migrated in window w is not eligible again
// before window w+Cooldown, even if it stays hot.
func TestControllerCooldownRestsSource(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 1, Cooldown: 2})

	hotWindow := func() {
		inbound(s, 0, 12)
		for e := range tgt.owners {
			if tgt.owners[e] == 0 {
				tgt.heat[e] += 5
			}
		}
	}
	hotWindow()
	if n := ct.Step(c); n != 1 {
		t.Fatalf("first hot window migrated %d, want 1", n)
	}
	hotWindow()
	if n := ct.Step(c); n != 0 {
		t.Fatalf("cooling window migrated %d, want 0", n)
	}
	hotWindow()
	if n := ct.Step(c); n != 1 {
		t.Fatalf("rested window migrated %d, want 1", n)
	}
}

// Declined migrations (the target raced another migration) are not
// counted, and a window that moved nothing sets no cooldown.
func TestControllerDeclinedMovesUncounted(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 2, Cooldown: 3})

	tgt.decline = true
	inbound(s, 0, 12)
	tgt.heat[0] += 5
	if n := ct.Step(c); n != 0 {
		t.Fatalf("declined window counted %d migrations", n)
	}
	if st := ct.Stats(); st.Migrations != 0 || st.BytesMoved != 0 {
		t.Fatalf("stats after declines = %+v", st)
	}

	// No cooldown was set, so the very next hot window migrates.
	tgt.decline = false
	inbound(s, 0, 12)
	tgt.heat[0] += 5
	if n := ct.Step(c); n != 1 {
		t.Fatalf("window after declines migrated %d, want 1", n)
	}
}

// A hot source with no hot entries (traffic not attributable to any
// entry this window) moves nothing.
func TestControllerNoCandidatesNoMoves(t *testing.T) {
	s, c, tgt := newControllerHarness(t)
	ct := NewController(c, tgt, Config{Ratio: 1.5, MinEvents: 4, MaxMoves: 2, Cooldown: 1})
	inbound(s, 1, 12)
	// Heat rose only on locale 0's entries — none owned by the hot
	// source (locale 1).
	tgt.heat[0] += 9
	if n := ct.Step(c); n != 0 {
		t.Fatalf("candidate-free window migrated %d", n)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	want := Config{Ratio: 2, MinEvents: 1, MaxMoves: 4, Cooldown: 1}
	if cfg != want {
		t.Fatalf("defaults = %+v, want %+v", cfg, want)
	}
	// Explicit knobs pass through.
	cfg = Config{Ratio: 1.5, MinEvents: 8, MaxMoves: 2, Cooldown: 3}.withDefaults()
	if cfg.Ratio != 1.5 || cfg.MinEvents != 8 || cfg.MaxMoves != 2 || cfg.Cooldown != 3 {
		t.Fatalf("explicit knobs changed: %+v", cfg)
	}
}
