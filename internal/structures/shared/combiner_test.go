package shared

import (
	"sync"
	"testing"
)

// A concurrent publication storm: every Do applies exactly once, and
// the combiner's serialization is strong enough that the published
// functions can mutate plain shared state with no atomics of their
// own — the property the -race run verifies.
func TestCombinerStorm(t *testing.T) {
	const workers, perWorker = 8, 500
	var cb Combiner
	counter := 0 // plain int: combiner serialization is its only guard
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cb.Do(func() { counter++ })
			}
		}()
	}
	wg.Wait()
	if counter != workers*perWorker {
		t.Fatalf("counter = %d, want %d (ops lost or doubled)", counter, workers*perWorker)
	}
	if cb.Applied() != workers*perWorker {
		t.Fatalf("Applied = %d, want %d", cb.Applied(), workers*perWorker)
	}
	if cb.Passes() < 1 || cb.Passes() > cb.Applied() {
		t.Fatalf("Passes = %d outside [1, %d]", cb.Passes(), cb.Applied())
	}
}

// One task's Do calls apply in program order even when another task is
// the elected combiner: the drain reverses the LIFO publication list
// back to publication order.
func TestCombinerOrder(t *testing.T) {
	var cb Combiner
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		cb.Do(func() { got = append(got, i) })
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("apply order broken at %d: %v", i, got[:i+1])
		}
	}
}
