// Package shared is the distributed-object framework the structure
// layer is built on: the boilerplate every privatized, owner-sharded
// structure used to repeat — a shared EpochManager, token plumbing,
// per-locale instance resolution, owner-computed routing — extracted
// into one place.
//
// # The model
//
// An Object[S] replicates one shard of type S per locale through the
// pgas privatization registry. The handle is a small value: copy it
// freely into tasks and across locales; resolving the calling task's
// shard (Local) is a plain indexed load into locale-private memory —
// zero communication, the paper's privatization device. Everything
// that *does* communicate goes through the owner-computed routing
// helpers, which are thin veneers over the pgas dispatch and
// aggregation layers, so the comm counters see every event exactly
// once:
//
//	Local(c)            the calling locale's shard, free
//	Shard(c, i)         a peer's shard by id, free (diagnostic peek)
//	OnOwner(c, i, fn)   synchronous on-statement to shard i's locale
//	AsyncOnOwner        fire-and-forget on-statement (quiesce-tracked)
//	AggOnOwner          buffered op toward shard i (one flush per batch)
//	AggOnOwnerSized     the same, charged its real payload volume
//	ForEachShard        coforall over every shard, on its locale
//	Gather / Sum        owner-computed reduction over all shards
//
// # Lifecycle
//
// New takes a per-locale constructor hook (allocate the shard's cells
// with the hook's Ctx so they land on the owning locale's heap) and
// the shared epoch manager every shard defers deletions through;
// Protect and Manager expose the token plumbing so callers never
// plumb it separately. Destroy runs a per-shard finalizer on each
// shard's locale and releases the privatized slots for reuse — the
// contract churn workloads rely on.
//
// # Consumers
//
// The framework deliberately knows nothing about what a shard *is*:
// queue segments (queue.Sharded), stack segments (stack.Sharded),
// hashmap bucket tables, and the read replication cache's per-locale
// replicas (structures/cache) all sit on the same ten lines of
// plumbing.
package shared
