package shared

import (
	"fmt"
	"sync/atomic"

	"gopgas/internal/pgas"
)

// OwnerTable maps partition entries (buckets, segments — whatever
// granularity a structure migrates at) to their current owner locale.
// Each entry packs (generation, owner) into one atomic word, so a
// single load observes a consistent pair and a single store republishes
// both together — the same generation-bump-before-unpublish protocol
// the read replication cache uses, applied to ownership itself.
//
// The routing contract: a task that wants to operate on entry e samples
// Owner(e) and ships the op to that locale carrying the sampled
// generation. The op re-checks the generation on delivery; a mismatch
// means a migration completed in flight, and the op re-routes to the
// entry's current owner instead of touching a shard that no longer owns
// it. Republish is called by exactly one task at a time per entry — the
// migration holding that entry's owner-side serialization (combiner) —
// so a plain store suffices; readers are lock-free.
type OwnerTable struct {
	entries []atomic.Uint64
}

// ownerBits is the width of the owner field in a packed entry; the
// generation takes the remaining 48 bits. Matches the list layer's
// 2^15-locale ceiling with room to spare.
const ownerBits = 16

// NewOwnerTable builds a table of n entries, with entry e initially
// owned by ownerOf(e) at generation 0.
func NewOwnerTable(n int, ownerOf func(e int) int) *OwnerTable {
	t := &OwnerTable{entries: make([]atomic.Uint64, n)}
	for e := range t.entries {
		o := ownerOf(e)
		if o < 0 || o >= 1<<ownerBits {
			panic(fmt.Sprintf("shared: owner %d out of the owner table's %d-bit range", o, ownerBits))
		}
		t.entries[e].Store(uint64(o))
	}
	return t
}

// Len returns the entry count.
func (t *OwnerTable) Len() int { return len(t.entries) }

// Owner returns entry e's current owner and the generation it was
// published under, read atomically as one pair.
func (t *OwnerTable) Owner(e int) (owner int, gen uint64) {
	v := t.entries[e].Load()
	return int(v & (1<<ownerBits - 1)), v >> ownerBits
}

// Gen returns entry e's current generation.
func (t *OwnerTable) Gen(e int) uint64 {
	return t.entries[e].Load() >> ownerBits
}

// Republish moves entry e to owner, bumping its generation, and
// returns the new generation. Only the task serializing e's migrations
// (the one holding the source shard's combiner) may call it; in-flight
// ops that sampled the old pair detect the bump on delivery and
// re-route.
func (t *OwnerTable) Republish(e, owner int) uint64 {
	if owner < 0 || owner >= 1<<ownerBits {
		panic(fmt.Sprintf("shared: owner %d out of the owner table's %d-bit range", owner, ownerBits))
	}
	_, gen := t.Owner(e)
	gen++
	t.entries[e].Store(gen<<ownerBits | uint64(owner))
	return gen
}

// OnEntry runs fn against entry e's owner shard on its locale and
// waits, consulting tab instead of static owner arithmetic. If a
// migration republishes e between the sample and delivery, the
// delivered closure declines (recording a re-route) and the caller
// retries against the new owner — safe for a synchronous call because
// the retry happens caller-side, holding no owner-side serialization.
// The generation check is advisory (it is not serialized against the
// migration itself); ops that must be exactly serialized with
// migrations route through CombineOnEntry.
func (o Object[S]) OnEntry(c *pgas.Ctx, tab *OwnerTable, e int, fn func(lc *pgas.Ctx, s *S)) {
	for {
		owner, gen := tab.Owner(e)
		done := false
		c.On(owner, func(lc *pgas.Ctx) {
			if tab.Gen(e) != gen {
				lc.Sys().Counters().IncMigReroute(lc.Here())
				return
			}
			done = true
			fn(lc, o.priv.Get(lc))
		})
		if done {
			return
		}
	}
}

// AggOnEntry is AggOnOwner routed through the owner table: the op
// buffers toward entry e's sampled owner and re-checks the generation
// when it executes there. A stale delivery re-dispatches itself to the
// current owner as an async task (fire-and-forget, tracked by system
// quiescence) — it must not call back synchronously, because the
// delivery may be running inside a flush that a synchronous on-stmt
// could deadlock against.
func (o Object[S]) AggOnEntry(c *pgas.Ctx, tab *OwnerTable, e int, fn func(lc *pgas.Ctx, s *S)) {
	owner, gen := tab.Owner(e)
	c.Aggregator(owner).Call(func(lc *pgas.Ctx) {
		o.redeliverEntry(lc, tab, e, gen, false, fn)
	})
}

// CombineOnEntry is CombineOnOwner routed through the owner table: the
// delivered op takes the owner shard's combiner and re-checks the
// generation inside it, which makes the check exact — a migration for
// the same shard runs under the same combiner, so the op observes
// either the pre-migration owner (and applies before the handoff) or
// the published new owner (and re-routes). This is the write-path
// protocol structures with migratable shards build on.
func (o Object[S]) CombineOnEntry(c *pgas.Ctx, tab *OwnerTable, e int, fn func(lc *pgas.Ctx, s *S)) {
	owner, gen := tab.Owner(e)
	c.Aggregator(owner).Call(func(lc *pgas.Ctx) {
		o.redeliverEntry(lc, tab, e, gen, true, fn)
	})
}

// redeliverEntry is the delivered side of the entry-routed paths: check
// the generation (under the combiner when combine is set), apply fn on
// a current owner, or re-route to the new one.
func (o Object[S]) redeliverEntry(lc *pgas.Ctx, tab *OwnerTable, e int, gen uint64, combine bool, fn func(lc *pgas.Ctx, s *S)) {
	body := func() {
		owner, cur := tab.Owner(e)
		if cur != gen {
			lc.Sys().Counters().IncMigReroute(lc.Here())
			lc.AsyncOn(owner, func(ac *pgas.Ctx) {
				o.redeliverEntry(ac, tab, e, cur, combine, fn)
			})
			return
		}
		fn(lc, o.priv.Get(lc))
	}
	if combine {
		o.comb.Get(lc).Do(body)
	} else {
		body()
	}
}
