package shared

import (
	"sync/atomic"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// testShard is a minimal per-locale shard: the locale it was built on
// plus an op counter.
type testShard struct {
	builtOn int
	ops     atomic.Int64
}

func newTestSystem(t testing.TB, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

// Each shard is constructed on its own locale and Local resolves the
// calling locale's shard with zero communication.
func TestObjectLocalIsZeroComm(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		o := New(c, em, func(lc *pgas.Ctx, shard int) *testShard {
			if lc.Here() != shard {
				t.Errorf("create hook: ctx on %d building shard %d", lc.Here(), shard)
			}
			return &testShard{builtOn: lc.Here()}
		})
		if !o.Valid() {
			t.Fatal("handle invalid after New")
		}
		before := s.Counters().Snapshot()
		c.CoforallLocales(func(lc *pgas.Ctx) {
			for i := 0; i < 100; i++ {
				sh := o.Local(lc)
				if sh.builtOn != lc.Here() {
					t.Errorf("locale %d resolved shard built on %d", lc.Here(), sh.builtOn)
				}
				sh.ops.Add(1)
			}
		})
		delta := s.Counters().Snapshot().Sub(before)
		// The only remote events are the coforall's launch on-statements.
		if got := delta.Remote() - delta.OnStmts; got != 0 {
			t.Fatalf("Local lookups performed %d remote events: %v", got, delta)
		}
		if delta.OnStmts != 3 {
			t.Fatalf("launch on-statements = %d, want 3", delta.OnStmts)
		}
	})
}

func TestObjectRoutingAndGather(t *testing.T) {
	s := newTestSystem(t, 4)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		o := New(c, em, func(lc *pgas.Ctx, _ int) *testShard {
			return &testShard{builtOn: lc.Here()}
		})
		// Synchronous owner routing lands on the owner's shard.
		for l := 0; l < 4; l++ {
			o.OnOwner(c, l, func(lc *pgas.Ctx, sh *testShard) {
				if lc.Here() != l || sh.builtOn != l {
					t.Errorf("OnOwner(%d) ran on %d against shard %d", l, lc.Here(), sh.builtOn)
				}
				sh.ops.Add(2)
			})
		}
		// Aggregated routing executes at flush, on the owner.
		for l := 0; l < 4; l++ {
			o.AggOnOwner(c, l, func(lc *pgas.Ctx, sh *testShard) {
				if lc.Here() != l {
					t.Errorf("AggOnOwner(%d) ran on %d", l, lc.Here())
				}
				sh.ops.Add(3)
			})
		}
		c.Flush()
		// Async routing, joined by Flush.
		for l := 0; l < 4; l++ {
			o.AsyncOnOwner(c, l, func(lc *pgas.Ctx, sh *testShard) {
				sh.ops.Add(5)
			})
		}
		c.Flush()

		counts := Gather(c, o, func(_ *pgas.Ctx, sh *testShard) int64 { return sh.ops.Load() })
		for l, n := range counts {
			if n != 10 {
				t.Fatalf("shard %d saw %d ops, want 10", l, n)
			}
		}
		if total := Sum(c, o, func(sh *testShard) int64 { return sh.ops.Load() }); total != 40 {
			t.Fatalf("Sum = %d, want 40", total)
		}
	})
}

func TestObjectDestroyRunsFinalizers(t *testing.T) {
	s := newTestSystem(t, 3)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		o := New(c, em, func(lc *pgas.Ctx, _ int) *testShard {
			return &testShard{builtOn: lc.Here()}
		})
		var finalized atomic.Int64
		o.Destroy(c, func(lc *pgas.Ctx, sh *testShard) {
			if sh.builtOn != lc.Here() {
				t.Errorf("finalizer on %d got shard %d", lc.Here(), sh.builtOn)
			}
			finalized.Add(1)
		})
		if finalized.Load() != 3 {
			t.Fatalf("finalized %d shards, want 3", finalized.Load())
		}
		// The registry recycles the destroyed id.
		o2 := New(c, em, func(lc *pgas.Ctx, _ int) *testShard {
			return &testShard{builtOn: lc.Here()}
		})
		if o2.Local(c).builtOn != 0 {
			t.Fatal("recycled object resolves wrong shard")
		}
	})
}
