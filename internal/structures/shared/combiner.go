package shared

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gopgas/internal/trace"
)

// Combiner is a flat combiner (Hendler, Incze, Shavit, Tzafrir):
// instead of every delivered operation CAS-ing into a shard's cells
// individually — a retry storm when the shard is hot — each operation
// publishes itself on a lock-free list and one elected task drains the
// whole list in a single sequential pass while the others spin on
// their record's done flag. Contended parallel retries become
// uncontended sequential applies; the election lock is only ever
// TryLock'd, so no task blocks on it.
//
// One Combiner guards one structure shard. It serializes the apply
// functions handed to Do against each other, which is what lets those
// functions touch the shard with plain (uncontended) operations.
type Combiner struct {
	head atomic.Pointer[combineRecord]
	mu   sync.Mutex

	applied atomic.Int64 // operations drained, across all passes
	passes  atomic.Int64 // drain passes (combiner elections that found work)

	tracer *trace.Recorder // nil unless SetTracer installed one
	locale int
}

// SetTracer installs a span recorder: every drain pass that finds work
// records a KindCombine span on the owning locale, its arg carrying
// the number of operations the pass applied. The draining task is
// whichever publisher won the election, so spans carry task 0 rather
// than a misleading specific task id. Call once at construction,
// before the combiner is shared.
func (cb *Combiner) SetTracer(tr *trace.Recorder, locale int) {
	cb.tracer = tr
	cb.locale = locale
}

// combineRecord is one published operation awaiting a drain pass.
type combineRecord struct {
	fn   func()
	next *combineRecord
	done atomic.Bool
}

// Do publishes fn and returns once it has executed — either applied by
// this task (if it wins the combiner election) or by whichever task is
// draining the publication list. fn runs exactly once, serialized
// against every other fn passed to this Combiner.
//
// The publish/done handshake is a synchronization edge: everything
// that happened before Do is visible to the applier, and everything fn
// did is visible to the caller after Do returns. That edge is what
// makes it safe for fn to capture the caller's Ctx even though a
// different task may run it — the two tasks' uses never overlap.
func (cb *Combiner) Do(fn func()) {
	rec := &combineRecord{fn: fn}
	for {
		old := cb.head.Load()
		rec.next = old
		if cb.head.CompareAndSwap(old, rec) {
			break
		}
	}
	for {
		if rec.done.Load() {
			return
		}
		if cb.mu.TryLock() {
			cb.drain()
			cb.mu.Unlock()
			if rec.done.Load() {
				return
			}
			// Our record was published after another combiner swapped
			// the list out but drained before we locked: spin again.
			continue
		}
		runtime.Gosched()
	}
}

// drain detaches the current publication list and applies it oldest
// first. Callers must hold mu. One Swap claims every record published
// so far; records published during the pass wait for the next one.
func (cb *Combiner) drain() {
	top := cb.head.Swap(nil)
	if top == nil {
		return
	}
	var sp trace.Span
	if cb.tracer != nil {
		sp = cb.tracer.Begin(cb.locale, trace.KindCombine, 0, cb.locale, cb.locale, 0, 0)
	}
	// The list is LIFO; reverse it so operations apply in publication
	// order.
	var rev *combineRecord
	for top != nil {
		next := top.next
		top.next = rev
		rev = top
		top = next
	}
	var n int64
	for rec := rev; rec != nil; {
		next := rec.next
		rec.fn()
		rec.done.Store(true)
		rec = next
		n++
	}
	cb.applied.Add(n)
	cb.passes.Add(1)
	sp.EndWith(0, n)
}

// Applied returns the total number of operations drained through this
// combiner.
func (cb *Combiner) Applied() int64 { return cb.applied.Load() }

// Passes returns the number of drain passes that found work. The ratio
// Applied/Passes is the combining factor: how many operations each
// elected combiner absorbed per pass.
func (cb *Combiner) Passes() int64 { return cb.passes.Load() }
