package shared

import (
	"sync"
	"testing"

	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Owner and generation pack into one word: a single load observes a
// consistent pair, and every republish bumps the generation.
func TestOwnerTablePacking(t *testing.T) {
	tab := NewOwnerTable(8, func(e int) int { return e % 3 })
	if tab.Len() != 8 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for e := 0; e < 8; e++ {
		owner, gen := tab.Owner(e)
		if owner != e%3 || gen != 0 {
			t.Fatalf("entry %d = (%d,%d), want (%d,0)", e, owner, gen, e%3)
		}
	}
	if g := tab.Republish(5, 7); g != 1 {
		t.Fatalf("first republish gen = %d, want 1", g)
	}
	if g := tab.Republish(5, 2); g != 2 {
		t.Fatalf("second republish gen = %d, want 2", g)
	}
	owner, gen := tab.Owner(5)
	if owner != 2 || gen != 2 {
		t.Fatalf("entry 5 = (%d,%d), want (2,2)", owner, gen)
	}
	if tab.Gen(5) != 2 {
		t.Fatalf("Gen = %d, want 2", tab.Gen(5))
	}
	// Neighbours are untouched.
	if owner, gen := tab.Owner(4); owner != 1 || gen != 0 {
		t.Fatalf("entry 4 = (%d,%d), want (1,0)", owner, gen)
	}
}

func TestOwnerTableRejectsWideOwners(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOwnerTable(1, func(int) int { return 1 << 16 }) },
		func() { NewOwnerTable(1, func(int) int { return -1 }) },
		func() { NewOwnerTable(1, func(int) int { return 0 }).Republish(0, 1<<16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("owner outside the 16-bit field did not panic")
				}
			}()
			fn()
		}()
	}
}

// A buffered entry-routed op that raced a republish re-dispatches to
// the new owner and applies exactly once, there — and the re-route is
// booked in the comm evidence.
func TestCombineOnEntryReroutesAfterRepublish(t *testing.T) {
	s := newTestSystem(t, 3)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		o := New(c, em, func(lc *pgas.Ctx, shard int) *testShard {
			return &testShard{builtOn: lc.Here()}
		})
		tab := NewOwnerTable(1, func(int) int { return 1 })

		before := s.Counters().Snapshot()
		ranOn := -1
		runs := 0
		o.CombineOnEntry(c, tab, 0, func(lc *pgas.Ctx, sh *testShard) {
			ranOn = sh.builtOn
			runs++
		})
		// The op sits in locale 0's buffer for owner 1; the migration
		// completes before it is delivered.
		tab.Republish(0, 2)
		c.Flush()

		if runs != 1 || ranOn != 2 {
			t.Fatalf("op ran %d times on shard %d, want once on 2", runs, ranOn)
		}
		delta := s.Counters().Snapshot().Sub(before)
		if delta.MigReroutes != 1 {
			t.Fatalf("MigReroutes = %d, want 1", delta.MigReroutes)
		}

		// With the table settled, the next op applies directly.
		o.CombineOnEntry(c, tab, 0, func(lc *pgas.Ctx, sh *testShard) {
			ranOn = sh.builtOn
			runs++
		})
		c.Flush()
		if runs != 2 || ranOn != 2 {
			t.Fatalf("settled op ran %d times on shard %d, want twice on 2", runs, ranOn)
		}
		if d := s.Counters().Snapshot().Sub(before); d.MigReroutes != 1 {
			t.Fatalf("settled op re-routed: %d", d.MigReroutes)
		}
	})
}

// Same protocol on the plain aggregated path (no combiner): the
// generation check is advisory but the redelivery contract is the
// same — exactly one application, on a current owner.
func TestAggOnEntryReroutesAfterRepublish(t *testing.T) {
	s := newTestSystem(t, 3)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		o := New(c, em, func(lc *pgas.Ctx, shard int) *testShard {
			return &testShard{builtOn: lc.Here()}
		})
		tab := NewOwnerTable(4, func(int) int { return 1 })
		ranOn := -1
		o.AggOnEntry(c, tab, 3, func(lc *pgas.Ctx, sh *testShard) { ranOn = sh.builtOn })
		tab.Republish(3, 0)
		c.Flush()
		if ranOn != 0 {
			t.Fatalf("op applied on shard %d, want 0", ranOn)
		}
	})
}

// The synchronous path retries caller-side: a stale delivery declines
// and the caller re-samples, so fn runs exactly once even while a
// republisher keeps moving the entry. (The republisher is a single
// task, honouring the one-republisher-per-entry contract.)
func TestOnEntryExactlyOnceUnderRepublishStorm(t *testing.T) {
	const calls = 200
	s := newTestSystem(t, 4)
	c0 := s.Ctx(0)
	em := epoch.NewEpochManager(c0)
	o := New(c0, em, func(lc *pgas.Ctx, shard int) *testShard {
		return &testShard{builtOn: lc.Here()}
	})
	tab := NewOwnerTable(1, func(int) int { return 1 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tab.Republish(0, 1+i%3)
		}
	}()

	c := s.Ctx(0)
	for i := 0; i < calls; i++ {
		o.OnEntry(c, tab, 0, func(lc *pgas.Ctx, sh *testShard) {
			if sh.builtOn != lc.Here() {
				t.Errorf("fn ran on locale %d against shard %d", lc.Here(), sh.builtOn)
			}
			sh.ops.Add(1)
		})
	}
	close(stop)
	wg.Wait()

	var total int64
	for l := 0; l < 4; l++ {
		total += o.Shard(c, l).ops.Load()
	}
	if total != calls {
		t.Fatalf("applied %d ops across shards, want exactly %d", total, calls)
	}
}
