package shared

import (
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Object is the copyable handle to a distributed object with one shard
// of type S per locale. The zero value is invalid; create with New.
type Object[S any] struct {
	priv pgas.Privatized[S]
	comb pgas.Privatized[Combiner]
	em   epoch.EpochManager
}

// New replicates the object: create runs once per locale, on that
// locale, and builds the shard that locale owns (the per-locale
// constructor hook — allocate the shard's cells with lc so they land
// on the owning locale's heap). em is the shared reclamation manager
// every shard defers deletions through; Protect and Manager expose it
// so callers never plumb it separately.
func New[S any](c *pgas.Ctx, em epoch.EpochManager, create func(lc *pgas.Ctx, shard int) *S) Object[S] {
	return Object[S]{
		em: em,
		priv: pgas.NewPrivatized(c, func(lc *pgas.Ctx) *S {
			return create(lc, lc.Here())
		}),
		comb: pgas.NewPrivatized(c, func(lc *pgas.Ctx) *Combiner {
			cb := &Combiner{}
			cb.SetTracer(lc.Sys().Tracer(), lc.Here())
			return cb
		}),
	}
}

// Valid reports whether the handle was produced by New.
func (o Object[S]) Valid() bool { return o.priv.Valid() }

// Manager returns the shared epoch manager.
func (o Object[S]) Manager() epoch.EpochManager { return o.em }

// Protect runs fn with a registered, pinned token on the calling
// task's locale — the token plumbing every structure operation needs,
// delegated to the shared manager.
func (o Object[S]) Protect(c *pgas.Ctx, fn func(tok *epoch.Token)) {
	o.em.Protect(c, fn)
}

// Local returns the calling task's shard. Zero communication.
func (o Object[S]) Local(c *pgas.Ctx) *S {
	return o.priv.Get(c)
}

// Shard returns shard `owner` without shipping execution there — a
// diagnostic peek (tests, stats), like Privatized.GetOn. Code that
// mutates a peer's shard must route through OnOwner/AggOnOwner so the
// work, and its communication, happen on the owner.
func (o Object[S]) Shard(c *pgas.Ctx, owner int) *S {
	return o.priv.GetOn(c, owner)
}

// OnOwner runs fn against shard `owner` on its locale and waits — a
// synchronous owner-computed on-statement (elided when owner is the
// calling locale). fn receives a Ctx pinned to the owner.
func (o Object[S]) OnOwner(c *pgas.Ctx, owner int, fn func(lc *pgas.Ctx, s *S)) {
	c.On(owner, func(lc *pgas.Ctx) {
		fn(lc, o.priv.Get(lc))
	})
}

// AsyncOnOwner launches fn against shard `owner` on its locale without
// waiting; completion is tracked by system quiescence (Ctx.Flush).
func (o Object[S]) AsyncOnOwner(c *pgas.Ctx, owner int, fn func(lc *pgas.Ctx, s *S)) {
	c.AsyncOn(owner, func(lc *pgas.Ctx) {
		fn(lc, o.priv.Get(lc))
	})
}

// AggOnOwner buffers fn into the calling task's aggregation buffer for
// shard `owner`'s locale: the op executes there when the buffer
// flushes (at capacity, or at Ctx.Flush), riding one bulk transfer per
// batch instead of one round trip per op. Local destinations run
// inline, so callers aggregate uniformly.
func (o Object[S]) AggOnOwner(c *pgas.Ctx, owner int, fn func(lc *pgas.Ctx, s *S)) {
	c.Aggregator(owner).Call(func(lc *pgas.Ctx) {
		fn(lc, o.priv.Get(lc))
	})
}

// AggOnOwnerSized is AggOnOwner for ops that carry a payload: bytes is
// the modelled wire size of what fn ships (a batch of n values is
// n*ValueBytes), charged to the aggregated-volume counters so the
// communication evidence reflects real data movement.
func (o Object[S]) AggOnOwnerSized(c *pgas.Ctx, owner int, bytes int64, fn func(lc *pgas.Ctx, s *S)) {
	c.Aggregator(owner).CallSized(bytes, func(lc *pgas.Ctx) {
		fn(lc, o.priv.Get(lc))
	})
}

// CombineOnOwner is AggOnOwner routed through shard `owner`'s flat
// combiner: the buffered op still ships with the task's aggregation
// buffer, but on delivery it publishes itself on the owner shard's
// Combiner and is applied in one sequential drain pass alongside every
// other concurrently delivered op. Use it for writes that would
// otherwise CAS-storm a hot shard; fn runs serialized against all
// other combined ops on that shard.
func (o Object[S]) CombineOnOwner(c *pgas.Ctx, owner int, fn func(lc *pgas.Ctx, s *S)) {
	c.Aggregator(owner).Call(func(lc *pgas.Ctx) {
		o.comb.Get(lc).Do(func() {
			fn(lc, o.priv.Get(lc))
		})
	})
}

// ShardCombiner returns shard `owner`'s Combiner — a diagnostic peek
// for tests asserting on combining factors, like Shard.
func (o Object[S]) ShardCombiner(c *pgas.Ctx, owner int) *Combiner {
	return o.comb.GetOn(c, owner)
}

// ForEachShard runs fn once per shard, on the shard's locale, in
// parallel (a coforall over locales: one on-statement per remote
// locale). It returns when every shard has been visited.
func (o Object[S]) ForEachShard(c *pgas.Ctx, fn func(lc *pgas.Ctx, s *S)) {
	c.CoforallLocales(func(lc *pgas.Ctx) {
		fn(lc, o.priv.Get(lc))
	})
}

// Destroy tears the object down: finalize (may be nil) runs once per
// shard on its locale, then the privatized slots are released for
// reuse. No task may use any copy of the handle afterwards.
func (o Object[S]) Destroy(c *pgas.Ctx, finalize func(lc *pgas.Ctx, s *S)) {
	o.priv.Destroy(c, finalize)
	o.comb.Destroy(c, nil)
}

// Gather computes f over every shard, on the shard's locale, and
// returns the results indexed by shard id — the owner-computed
// reduction global views (Stats, approximate Len) are built from.
// Cost: one on-statement per remote locale.
func Gather[S, R any](c *pgas.Ctx, o Object[S], f func(lc *pgas.Ctx, s *S) R) []R {
	out := make([]R, c.NumLocales())
	o.ForEachShard(c, func(lc *pgas.Ctx, s *S) {
		out[lc.Here()] = f(lc, s)
	})
	return out
}

// Sum is Gather for int64 totals: the common case of summing
// per-shard operation counters into a structure-wide statistic.
func Sum[S any](c *pgas.Ctx, o Object[S], f func(s *S) int64) int64 {
	var total int64
	for _, v := range Gather(c, o, func(_ *pgas.Ctx, s *S) int64 { return f(s) }) {
		total += v
	}
	return total
}
