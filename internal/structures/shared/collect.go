package shared

import (
	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/trace"
)

// Owner-sharded collection plumbing: the global views every sharded
// container (queue, stack, anything with a per-locale segment holding
// removable values) needs — work stealing, drain, approximate size —
// written once against a per-shard pop function instead of once per
// structure.

// PopFunc removes one value from a shard, on the shard's locale, under
// a locale-local token; ok is false when the shard appeared empty.
type PopFunc[S, T any] func(lc *pgas.Ctx, tok *epoch.Token, s *S) (T, bool)

// ValueBytes is the modelled wire size of one collected value — the
// aggregation layer's per-op payload convention, used by Drain's bulk
// accounting.
const ValueBytes = 16

// combineKindBulk namespaces this package's merge keys away from the
// pgas layer's built-in combinable ops.
const combineKindBulk uint8 = 16

// bulkOp is the mergeable payload behind CombineBulkOn: batches headed
// for one (object, owner) pair concatenate in-buffer, so k bulk calls
// ship as one op whose payload is the combined batch. The merged op
// grows by the absorbed batch's wire size, keeping the byte counters
// honest. On delivery the combined batch drains through the owner
// shard's flat combiner.
type bulkOp[S, T any] struct {
	obj   Object[S]
	owner int
	vals  []T
	apply func(lc *pgas.Ctx, s *S, vals []T)
}

func (o *bulkOp[S, T]) CombineKey() comm.CombineKey {
	return comm.CombineKey{Kind: combineKindBulk, Ref: o.obj.priv, K: uint64(o.owner)}
}

func (o *bulkOp[S, T]) Absorb(later comm.CombinableOp) (int64, bool) {
	l := later.(*bulkOp[S, T])
	o.vals = append(o.vals, l.vals...)
	return int64(len(l.vals)) * ValueBytes, true
}

func (o *bulkOp[S, T]) Exec(lc *pgas.Ctx) {
	o.obj.comb.Get(lc).Do(func() {
		o.apply(lc, o.obj.priv.Get(lc), o.vals)
	})
}

// CombineBulkOn routes a batch of values to shard `owner` through both
// absorption layers: in flight, batches to the same (object, owner)
// merge per the system's AggConfig.Combine policy; at the owner, the
// delivered batch applies through the shard's flat combiner. apply
// must be uniform for a given object — merged batches keep the
// earliest buffered apply — and runs serialized against every other
// combined op on the shard. Within one task, per-owner batch order is
// enqueue order, so FIFO structures keep their per-(task, owner)
// ordering contract.
func CombineBulkOn[S, T any](c *pgas.Ctx, o Object[S], owner int, vals []T, apply func(lc *pgas.Ctx, s *S, vals []T)) {
	if len(vals) == 0 {
		return
	}
	c.Aggregator(owner).CallCombinable(int64(len(vals))*ValueBytes,
		&bulkOp[S, T]{obj: o, owner: owner, vals: vals, apply: apply})
}

// TryTakeAny pops from the calling locale's shard if it has work, and
// otherwise steals: it visits the other shards (next locale first,
// wrapping) with one synchronous on-statement each, popping on the
// victim's locale under a victim-local token. It returns the shard the
// value came from; ok is false only when every shard appeared empty.
// tok is the caller's token, used only for the local attempt.
func TryTakeAny[S, T any](c *pgas.Ctx, o Object[S], tok *epoch.Token, pop PopFunc[S, T]) (v T, from int, ok bool) {
	if val, got := pop(c, tok, o.Local(c)); got {
		return val, c.Here(), true
	}
	L := c.NumLocales()
	sys := c.Sys()
	for i := 1; i < L; i++ {
		victim := (c.Here() + i) % L
		// A dead or partitioned victim is skipped outright: stealing is
		// opportunistic, so burning a refusal on an unreachable peer is
		// pure waste — the steal just looks at the next shard. A dead
		// victim's stranded values come back via Failover adoption, not
		// steals.
		if !sys.Reachable(c.Here(), victim) {
			continue
		}
		o.OnOwner(c, victim, func(lc *pgas.Ctx, s *S) {
			o.Protect(lc, func(vtok *epoch.Token) {
				v, ok = pop(lc, vtok, s)
			})
		})
		if ok {
			return v, victim, true
		}
	}
	return v, -1, false
}

// FailoverDrain adopts a dead locale's shard after a crash. It must be
// called on a salvage context (pgas.Ctx.Salvage) — the recovery
// plane's exemption from refusal, the same contract as
// hashmap.Rebalanced.Failover: under the shared-storage conceit a
// crashed locale's heap partition survives, so the salvage task drains
// the dead shard on its own locale and re-homes the values onto the
// alive locales in contiguous chunks, shipped through the same
// combinable bulk framing the structures' BulkOn paths use. Each
// shipped chunk books one MigRetire (and its ValueBytes payload) on
// the salvaging side and one MigAdopt when it lands, so the balanced
// adopt/retire books extend to queue/stack failover unchanged, and one
// always-on KindAdopt span per chunk (src = dead locale, dst =
// adopter, arg = dead locale) records the handoff. Returns the number
// of chunks adopted — at most one per surviving locale, zero when the
// dead shard was empty — and the payload bytes moved.
func FailoverDrain[S, T any](c *pgas.Ctx, o Object[S], dead int, pop PopFunc[S, T], apply func(lc *pgas.Ctx, s *S, vals []T)) (shards, bytes int64) {
	sys := c.Sys()
	if sys.Alive(dead) {
		return 0, 0
	}
	var vals []T
	o.OnOwner(c, dead, func(lc *pgas.Ctx, s *S) {
		o.Protect(lc, func(tok *epoch.Token) {
			for {
				v, ok := pop(lc, tok, s)
				if !ok {
					break
				}
				vals = append(vals, v)
			}
		})
	})
	if len(vals) == 0 {
		return 0, 0
	}
	var alive []int
	for l := 0; l < c.NumLocales(); l++ {
		if l != dead && sys.Alive(l) {
			alive = append(alive, l)
		}
	}
	if len(alive) == 0 {
		return 0, 0
	}
	chunk := (len(vals) + len(alive) - 1) / len(alive)
	ctrs := sys.Counters()
	tr := sys.Tracer()
	for i, adopter := range alive {
		lo := i * chunk
		if lo >= len(vals) {
			break
		}
		hi := lo + chunk
		if hi > len(vals) {
			hi = len(vals)
		}
		part := vals[lo:hi]
		b := int64(len(part)) * ValueBytes
		var sp trace.Span
		if tr != nil {
			sp = tr.Begin(c.Here(), trace.KindAdopt, c.TaskID(), dead, adopter, b, int64(dead))
		}
		ctrs.IncMigRetire(c.Here())
		ctrs.IncMigBytes(c.Here(), b)
		CombineBulkOn(c, o, adopter, part, func(lc *pgas.Ctx, s *S, vs []T) {
			lc.Sys().Counters().IncMigAdopt(lc.Here())
			apply(lc, s, vs)
		})
		// Land the chunk now: failover is synchronous, and the span must
		// close over a completed adoption so begin-counts equal the
		// shards-adopted ledger.
		c.Aggregator(adopter).Flush()
		sp.EndWith(b, int64(dead))
		shards++
		bytes += b
	}
	return shards, bytes
}

// Drain empties every shard and returns the remaining values grouped
// by owning shard (index = locale id; per-shard removal order is
// preserved). Each shard drains on its own locale under a local token;
// each non-empty remote batch then ships home as one bulk transfer of
// ValueBytes per value. Drain runs concurrently with other operations
// but only guarantees emptiness of what it observed, like any
// lock-free traversal.
func Drain[S, T any](c *pgas.Ctx, o Object[S], pop PopFunc[S, T]) [][]T {
	batches := make([][]T, c.NumLocales())
	o.ForEachShard(c, func(lc *pgas.Ctx, s *S) {
		o.Protect(lc, func(tok *epoch.Token) {
			var vals []T
			for {
				v, ok := pop(lc, tok, s)
				if !ok {
					break
				}
				vals = append(vals, v)
			}
			batches[lc.Here()] = vals
		})
	})
	for owner, batch := range batches {
		if owner != c.Here() && len(batch) > 0 {
			c.ChargeBulk(owner, int64(len(batch))*ValueBytes)
		}
	}
	return batches
}

// ApproxSum totals a per-shard statistic (typically adds-minus-removes
// for an approximate size) with one small remote read per remote shard
// and no traversal. Exact when the structure is quiescent.
func ApproxSum[S any](c *pgas.Ctx, o Object[S], read func(s *S) int64) int64 {
	var n int64
	for l := 0; l < c.NumLocales(); l++ {
		if l != c.Here() {
			c.ChargeGet(l)
		}
		n += read(o.Shard(c, l))
	}
	return n
}
