package shared

import (
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Owner-sharded collection plumbing: the global views every sharded
// container (queue, stack, anything with a per-locale segment holding
// removable values) needs — work stealing, drain, approximate size —
// written once against a per-shard pop function instead of once per
// structure.

// PopFunc removes one value from a shard, on the shard's locale, under
// a locale-local token; ok is false when the shard appeared empty.
type PopFunc[S, T any] func(lc *pgas.Ctx, tok *epoch.Token, s *S) (T, bool)

// ValueBytes is the modelled wire size of one collected value — the
// aggregation layer's per-op payload convention, used by Drain's bulk
// accounting.
const ValueBytes = 16

// TryTakeAny pops from the calling locale's shard if it has work, and
// otherwise steals: it visits the other shards (next locale first,
// wrapping) with one synchronous on-statement each, popping on the
// victim's locale under a victim-local token. It returns the shard the
// value came from; ok is false only when every shard appeared empty.
// tok is the caller's token, used only for the local attempt.
func TryTakeAny[S, T any](c *pgas.Ctx, o Object[S], tok *epoch.Token, pop PopFunc[S, T]) (v T, from int, ok bool) {
	if val, got := pop(c, tok, o.Local(c)); got {
		return val, c.Here(), true
	}
	L := c.NumLocales()
	for i := 1; i < L; i++ {
		victim := (c.Here() + i) % L
		o.OnOwner(c, victim, func(lc *pgas.Ctx, s *S) {
			o.Protect(lc, func(vtok *epoch.Token) {
				v, ok = pop(lc, vtok, s)
			})
		})
		if ok {
			return v, victim, true
		}
	}
	return v, -1, false
}

// Drain empties every shard and returns the remaining values grouped
// by owning shard (index = locale id; per-shard removal order is
// preserved). Each shard drains on its own locale under a local token;
// each non-empty remote batch then ships home as one bulk transfer of
// ValueBytes per value. Drain runs concurrently with other operations
// but only guarantees emptiness of what it observed, like any
// lock-free traversal.
func Drain[S, T any](c *pgas.Ctx, o Object[S], pop PopFunc[S, T]) [][]T {
	batches := make([][]T, c.NumLocales())
	o.ForEachShard(c, func(lc *pgas.Ctx, s *S) {
		o.Protect(lc, func(tok *epoch.Token) {
			var vals []T
			for {
				v, ok := pop(lc, tok, s)
				if !ok {
					break
				}
				vals = append(vals, v)
			}
			batches[lc.Here()] = vals
		})
	})
	for owner, batch := range batches {
		if owner != c.Here() && len(batch) > 0 {
			c.ChargeBulk(owner, int64(len(batch))*ValueBytes)
		}
	}
	return batches
}

// ApproxSum totals a per-shard statistic (typically adds-minus-removes
// for an approximate size) with one small remote read per remote shard
// and no traversal. Exact when the structure is quiescent.
func ApproxSum[S any](c *pgas.Ctx, o Object[S], read func(s *S) int64) int64 {
	var n int64
	for l := 0; l < c.NumLocales(); l++ {
		if l != c.Here() {
			c.ChargeGet(l)
		}
		n += read(o.Shard(c, l))
	}
	return n
}
