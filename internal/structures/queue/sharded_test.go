package queue

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func TestShardedLocalOpsAreZeroComm(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := NewSharded[int](c, em)
		before := s.Counters().Snapshot()
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for i := 0; i < 50; i++ {
					q.Enqueue(lc, tok, lc.Here()*1000+i)
				}
				for i := 0; i < 50; i++ {
					v, ok := q.Dequeue(lc, tok)
					if !ok || v != lc.Here()*1000+i {
						t.Errorf("locale %d dequeue %d = (%d,%v)", lc.Here(), i, v, ok)
					}
				}
			})
		})
		delta := s.Counters().Snapshot().Sub(before)
		// Only the coforall launch crosses locales; every enqueue and
		// dequeue is segment-local.
		if got := delta.Remote() - delta.OnStmts; got != 0 {
			t.Fatalf("local sharded ops performed %d remote events: %v", got, delta)
		}
	})
}

func TestShardedFIFOPerSegment(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := NewSharded[int](c, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		q.EnqueueBulk(c, tok, []int{1, 2, 3})
		for want := 1; want <= 3; want++ {
			if v, ok := q.Dequeue(c, tok); !ok || v != want {
				t.Fatalf("dequeue = (%d,%v), want %d", v, ok, want)
			}
		}
		if _, ok := q.Dequeue(c, tok); ok {
			t.Fatal("dequeue from empty local segment succeeded")
		}
	})
}

func TestShardedStealAndDrain(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := NewSharded[int](c, em)
		// Fill only locale 2's segment, from locale 2.
		c.On(2, func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				q.EnqueueBulk(lc, tok, []int{10, 20, 30})
			})
		})
		if n := q.Len(c); n != 3 {
			t.Fatalf("Len = %d, want 3", n)
		}
		// A task on locale 0 finds its segment empty and steals.
		tok := em.Register(c)
		v, from, ok := q.TryDequeueAny(c, tok)
		if !ok || from != 2 || v != 10 {
			t.Fatalf("steal = (%d, from=%d, %v), want (10, 2, true)", v, from, ok)
		}
		tok.Unregister(c)
		// Drain collects the rest, grouped by segment, order preserved.
		batches := q.Drain(c)
		if len(batches) != 4 {
			t.Fatalf("drain groups = %d", len(batches))
		}
		if got := batches[2]; len(got) != 2 || got[0] != 20 || got[1] != 30 {
			t.Fatalf("drained segment 2 = %v", got)
		}
		if q.Len(c) != 0 {
			t.Fatal("queue not empty after drain")
		}
		st := q.Stats(c)
		if st.Enqueues != 3 || st.Dequeues != 3 {
			t.Fatalf("stats = %+v", st)
		}
		q.Destroy(c) // drained and quiescent: releases the registry slots
	})
}

func TestShardedEnqueueBulkOn(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := NewSharded[int](c, em)
		before := s.Counters().Snapshot()
		q.EnqueueBulkOn(c, 3, []int{7, 8, 9})
		c.Flush()
		delta := s.Counters().Snapshot().Sub(before)
		if delta.AggFlushes != 1 {
			t.Fatalf("routed batch used %d flushes, want 1 (%v)", delta.AggFlushes, delta)
		}
		// The batch charges its real payload volume, not one op's worth.
		if want := int64(3 * 16); delta.AggBytes != want {
			t.Fatalf("routed batch charged %d agg bytes, want %d (%v)", delta.AggBytes, want, delta)
		}
		c.On(3, func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				for want := 7; want <= 9; want++ {
					if v, ok := q.Dequeue(lc, tok); !ok || v != want {
						t.Errorf("owner dequeue = (%d,%v), want %d", v, ok, want)
					}
				}
			})
		})
	})
}

func TestShardedConcurrentChurn(t *testing.T) {
	s := newTestSystem(t, 4, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	q := NewSharded[int](s.Ctx(0), em)
	const perTask = 300
	var wg sync.WaitGroup
	for l := 0; l < 4; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := s.Ctx(l)
			tok := em.Register(c)
			defer tok.Unregister(c)
			for i := 0; i < perTask; i++ {
				q.Enqueue(c, tok, i)
				if i%3 == 0 {
					q.TryDequeueAny(c, tok)
				}
				if i%64 == 0 {
					tok.TryReclaim(c)
				}
			}
		}(l)
	}
	wg.Wait()
	c := s.Ctx(0)
	st := q.Stats(c)
	if got := q.Len(c); int64(got) != st.Enqueues-st.Dequeues {
		t.Fatalf("Len=%d but stats say %d", got, st.Enqueues-st.Dequeues)
	}
	q.Drain(c)
	em.Clear(c)
	if uaf := s.HeapStats().UAFLoads; uaf != 0 {
		t.Fatalf("%d use-after-free loads", uaf)
	}
}
