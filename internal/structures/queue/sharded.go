package queue

import (
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
	"gopgas/internal/structures/shared"
)

// Sharded is the owner-sharded, privatized evolution of Queue: one
// independent MS segment per locale, resolved through the shared
// distributed-object framework. A single-home Queue funnels every
// operation from every locale through one head/tail pair — its home's
// column in the comm matrix grows linearly with locale count — whereas
// a Sharded queue's local operations (Enqueue, Dequeue) touch only the
// calling locale's segment and perform zero remote communication.
// FIFO order holds per segment, not globally, which is the usual
// contract of distributed multi-queues (Chapel's DistributedBag makes
// the same trade).
//
// Global views route through the dispatch/aggregation layers:
// TryDequeueAny steals from peers with on-statements, EnqueueBulkOn
// ships a batch to a chosen owner through the aggregation buffers, and
// Drain/Len/Stats are owner-computed reductions.
type Sharded[T any] struct {
	obj shared.Object[segment[T]]
}

// segment is one locale's shard: a single-home queue homed there.
type segment[T any] struct {
	q *Queue[T]
}

// NewSharded creates a queue with one segment per locale, all
// reclaiming through em.
func NewSharded[T any](c *pgas.Ctx, em epoch.EpochManager) Sharded[T] {
	return Sharded[T]{obj: shared.New(c, em, func(lc *pgas.Ctx, shard int) *segment[T] {
		return &segment[T]{q: New[T](lc, shard, em)}
	})}
}

// Manager returns the epoch manager the queue reclaims through.
func (q Sharded[T]) Manager() epoch.EpochManager { return q.obj.Manager() }

// Enqueue appends v to the calling locale's segment. The node, the
// head/tail cells and the epoch pin are all locale-local: zero remote
// communication, at any locale count.
func (q Sharded[T]) Enqueue(c *pgas.Ctx, tok *epoch.Token, v T) {
	q.obj.Local(c).q.Enqueue(c, tok, v)
}

// EnqueueBulk appends vals, in order and contiguously, to the calling
// locale's segment.
func (q Sharded[T]) EnqueueBulk(c *pgas.Ctx, tok *epoch.Token, vals []T) {
	q.obj.Local(c).q.EnqueueBulk(c, tok, vals)
}

// EnqueueBulkOn routes a batch to the segment owned by `owner` through
// the calling task's aggregation buffer: the batch executes on the
// owner (as a locale-local EnqueueBulk under a destination-local
// token) when the buffer flushes — at capacity, or at Ctx.Flush. Use
// it to feed a consumer's locale from a producer elsewhere; no caller
// token is needed. A remote batch is not visible until the flush; a
// batch for the caller's own locale executes inline immediately, as
// aggregated local operations always do.
func (q Sharded[T]) EnqueueBulkOn(c *pgas.Ctx, owner int, vals []T) {
	if len(vals) == 0 {
		return
	}
	batch := append([]T(nil), vals...) // detach from the caller's buffer
	shared.CombineBulkOn(c, q.obj, owner, batch,
		func(lc *pgas.Ctx, s *segment[T], vals []T) {
			q.obj.Protect(lc, func(tok *epoch.Token) {
				s.q.EnqueueBulk(lc, tok, vals)
			})
		})
}

// Dequeue removes the oldest value of the calling locale's segment;
// ok is false when the local segment is empty (other segments may
// still hold work — see TryDequeueAny).
func (q Sharded[T]) Dequeue(c *pgas.Ctx, tok *epoch.Token) (v T, ok bool) {
	return q.obj.Local(c).q.Dequeue(c, tok)
}

// dequeueSeg is the segment pop hook the shared collection helpers
// drive.
func dequeueSeg[T any](lc *pgas.Ctx, tok *epoch.Token, s *segment[T]) (T, bool) {
	return s.q.Dequeue(lc, tok)
}

// TryDequeueAny dequeues from the local segment if it has work, and
// otherwise steals (shared.TryTakeAny): it visits the other segments
// (next locale first, wrapping) with one synchronous on-statement
// each, dequeueing on the victim's locale under a victim-local token.
// It returns the segment the value came from; ok is false only when
// every segment appeared empty.
func (q Sharded[T]) TryDequeueAny(c *pgas.Ctx, tok *epoch.Token) (v T, from int, ok bool) {
	return shared.TryTakeAny(c, q.obj, tok, dequeueSeg[T])
}

// Failover adopts the dead locale's segment after a crash: from a
// salvage context (pgas.Ctx.Salvage — required, the same contract as
// hashmap.Rebalanced.Failover) the dead segment drains on its own
// locale and its values re-home onto the surviving locales through the
// bulk framing, in contiguous chunks that preserve the segment's FIFO
// order within each adopter. Steal paths (TryDequeueAny) already skip
// unreachable victims, so adoption is the only road the stranded
// values ride back. Returns the chunks adopted (each booking one
// balanced MigAdopt/MigRetire pair and one KindAdopt span) and payload
// bytes moved; the caller still force-retires the dead locale's epoch
// tokens.
func (q Sharded[T]) Failover(c *pgas.Ctx, dead int) (shards, bytes int64) {
	return shared.FailoverDrain(c, q.obj, dead, dequeueSeg[T],
		func(lc *pgas.Ctx, s *segment[T], vals []T) {
			q.obj.Protect(lc, func(tok *epoch.Token) {
				s.q.EnqueueBulk(lc, tok, vals)
			})
		})
}

// Drain empties every segment and returns the remaining values grouped
// by owning segment (index = locale id; per-segment FIFO order is
// preserved): shared.Drain's cost model — each segment drains on its
// own locale, each non-empty remote batch ships home as one bulk
// transfer.
func (q Sharded[T]) Drain(c *pgas.Ctx) [][]T {
	return shared.Drain(c, q.obj, dequeueSeg[T])
}

// Len approximates the total element count from the segments'
// enqueue/dequeue counters (shared.ApproxSum: one small remote read
// per remote segment, no traversal). Exact when the queue is
// quiescent.
func (q Sharded[T]) Len(c *pgas.Ctx) int {
	return int(shared.ApproxSum(c, q.obj, func(s *segment[T]) int64 {
		st := s.q.Stats()
		return st.Enqueues - st.Dequeues
	}))
}

// Destroy tears the queue down: each segment frees its remaining
// nodes (dummy included) on its own locale, then the privatized
// registry slots are released (recycled by the next structure
// created). The queue must be quiescent; nodes already dequeued were
// retired through the epoch manager — let it clear to reclaim them.
// No task may use any copy of the handle afterwards. Churn scenarios
// rely on this leaving zero gas-heap or registry residue.
func (q Sharded[T]) Destroy(c *pgas.Ctx) {
	q.obj.Destroy(c, func(lc *pgas.Ctx, s *segment[T]) {
		s.q.destroy(lc)
	})
}

// SegmentLocale reports which locale owns the segment a value enqueued
// by a task on `locale` lands in — the owner-computed routing map
// (identity, one segment per locale), surfaced for symmetry with
// hashmap.Map.HomeOf.
func (q Sharded[T]) SegmentLocale(locale int) int { return locale }

// Stats sums the per-segment operation counters (owner-computed: one
// on-statement per remote segment).
func (q Sharded[T]) Stats(c *pgas.Ctx) Stats {
	var total Stats
	for _, st := range shared.Gather(c, q.obj, func(_ *pgas.Ctx, s *segment[T]) Stats {
		return s.q.Stats()
	}) {
		total.Enqueues += st.Enqueues
		total.Dequeues += st.Dequeues
	}
	return total
}
