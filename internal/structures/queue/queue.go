// Package queue implements a Michael–Scott lock-free FIFO queue on top
// of the paper's building blocks: AtomicObject head/tail references,
// network-atomic next pointers, and EpochManager reclamation of
// dequeued nodes.
//
// Unlike the Treiber stack, the MS queue's CASes are safe without ABA
// stamps *provided* nodes are never recycled while a task can still
// hold a reference — which is precisely the guarantee epoch-based
// reclamation supplies. The queue therefore deliberately uses the
// plain (compressed, RDMA-able) AtomicObject operations, demonstrating
// the paper's point that the EpochManager is the general cure for ABA
// while DCAS stamps are the building-block-level cure.
package queue

import (
	"sync/atomic"

	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

// node is one queue cell. next is a network-atomic word holding a
// gas.Addr: it is CASed by enqueuers on arbitrary locales, so a
// processor atomic would not model a real PGAS system; val is
// immutable after construction.
type node[T any] struct {
	val  T
	next *pgas.Word64
}

// Queue is a distributed lock-free FIFO. Nodes live on the queue's
// home locale (values may of course reference data anywhere).
type Queue[T any] struct {
	head *atomics.AtomicObject
	tail *atomics.AtomicObject
	em   epoch.EpochManager
	home int

	enqs atomic.Int64
	deqs atomic.Int64
}

// New creates an empty queue homed on the given locale, using em for
// node reclamation. The queue starts with the MS dummy node.
func New[T any](c *pgas.Ctx, home int, em epoch.EpochManager) *Queue[T] {
	q := &Queue[T]{
		head: atomics.New(c, home, atomics.Options{}),
		tail: atomics.New(c, home, atomics.Options{}),
		em:   em,
		home: home,
	}
	dummy := c.AllocOn(home, &node[T]{next: pgas.NewWord64(c, home, 0)})
	q.head.Write(c, dummy)
	q.tail.Write(c, dummy)
	return q
}

// Manager returns the epoch manager the queue reclaims through.
func (q *Queue[T]) Manager() epoch.EpochManager { return q.em }

// destroy frees every node still linked from the head — the MS dummy
// plus any undequeued values — in one bulk free toward the home
// locale. The queue must be quiescent and is unusable afterwards.
// Nodes already dequeued are not in this chain; they were retired
// through the epoch manager, which owns their frees. Sharded.Destroy
// runs this per segment so churn scenarios leak nothing.
func (q *Queue[T]) destroy(c *pgas.Ctx) {
	var addrs []gas.Addr
	addr := q.head.Read(c)
	for !addr.IsNil() {
		n := pgas.MustDeref[*node[T]](c, addr)
		addrs = append(addrs, addr)
		addr = gas.Addr(n.next.Read(c))
	}
	q.head.Write(c, 0)
	q.tail.Write(c, 0)
	c.FreeBulk(q.home, addrs)
}

// Enqueue appends v. Standard Michael–Scott: link the node after the
// tail, helping a lagging tail forward when necessary.
func (q *Queue[T]) Enqueue(c *pgas.Ctx, tok *epoch.Token, v T) {
	n := &node[T]{val: v, next: pgas.NewWord64(c, q.home, 0)}
	addr := c.AllocOn(q.home, n)
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		tail := q.tail.Read(c)
		tn := pgas.MustDeref[*node[T]](c, tail)
		next := gas.Addr(tn.next.Read(c))
		if tail != q.tail.Read(c) {
			continue // tail moved under us; retry
		}
		if next.IsNil() {
			if tn.next.CompareAndSwap(c, 0, uint64(addr)) {
				q.tail.CompareAndSwap(c, tail, addr) // swing tail (may fail: someone helped)
				q.enqs.Add(1)
				return
			}
		} else {
			q.tail.CompareAndSwap(c, tail, next) // help the lagging tail
		}
	}
}

// EnqueueBulk appends every value in vals, in order, as one batch.
// The nodes ship to the queue's home locale in a single bulk transfer
// (AllocBulkOn) and are pre-linked into a chain there, so publishing
// the whole batch costs one link CAS plus one tail swing — O(1)
// remote operations for len(vals) enqueues, against O(n) for the
// per-op path. The batch is contiguous in the queue: no other
// enqueuer's value can interleave inside it.
func (q *Queue[T]) EnqueueBulk(c *pgas.Ctx, tok *epoch.Token, vals []T) {
	if len(vals) == 0 {
		return
	}
	nodes := make([]*node[T], len(vals))
	objs := make([]any, len(vals))
	for i, v := range vals {
		nodes[i] = &node[T]{val: v}
		objs[i] = nodes[i]
	}
	addrs := c.AllocBulkOn(q.home, objs)
	// Pre-link the chain: the nodes are unpublished, so the next words
	// can be created initialised without any communication.
	for i := range nodes {
		next := uint64(0)
		if i+1 < len(nodes) {
			next = uint64(addrs[i+1])
		}
		nodes[i].next = pgas.NewWord64(c, q.home, next)
	}
	first, last := addrs[0], addrs[len(addrs)-1]
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		tail := q.tail.Read(c)
		tn := pgas.MustDeref[*node[T]](c, tail)
		next := gas.Addr(tn.next.Read(c))
		if tail != q.tail.Read(c) {
			continue
		}
		if next.IsNil() {
			if tn.next.CompareAndSwap(c, 0, uint64(first)) {
				q.tail.CompareAndSwap(c, tail, last)
				q.enqs.Add(int64(len(vals)))
				return
			}
		} else {
			q.tail.CompareAndSwap(c, tail, next)
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty. The retired dummy node is defer-deleted through the
// epoch manager.
func (q *Queue[T]) Dequeue(c *pgas.Ctx, tok *epoch.Token) (v T, ok bool) {
	tok.Pin(c)
	defer tok.Unpin(c)
	for {
		head := q.head.Read(c)
		tail := q.tail.Read(c)
		hn := pgas.MustDeref[*node[T]](c, head)
		next := gas.Addr(hn.next.Read(c))
		if head != q.head.Read(c) {
			continue
		}
		if head == tail {
			if next.IsNil() {
				return v, false // empty
			}
			q.tail.CompareAndSwap(c, tail, next) // help
			continue
		}
		val := pgas.MustDeref[*node[T]](c, next).val
		if q.head.CompareAndSwap(c, head, next) {
			tok.DeferDelete(c, head) // the old dummy
			q.deqs.Add(1)
			return val, true
		}
	}
}

// IsEmpty reports whether the queue appeared empty.
func (q *Queue[T]) IsEmpty(c *pgas.Ctx, tok *epoch.Token) bool {
	tok.Pin(c)
	defer tok.Unpin(c)
	head := q.head.Read(c)
	hn := pgas.MustDeref[*node[T]](c, head)
	return gas.Addr(hn.next.Read(c)).IsNil()
}

// Len counts elements by traversal (O(n), diagnostic only).
func (q *Queue[T]) Len(c *pgas.Ctx, tok *epoch.Token) int {
	tok.Pin(c)
	defer tok.Unpin(c)
	n := 0
	cur := q.head.Read(c)
	for {
		nd := pgas.MustDeref[*node[T]](c, cur)
		next := gas.Addr(nd.next.Read(c))
		if next.IsNil() {
			return n
		}
		n++
		cur = next
	}
}

// Stats reports operation totals.
type Stats struct {
	Enqueues int64
	Dequeues int64
}

// Stats returns the queue's counters.
func (q *Queue[T]) Stats() Stats {
	return Stats{Enqueues: q.enqs.Load(), Dequeues: q.deqs.Load()}
}
