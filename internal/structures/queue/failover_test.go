package queue

import (
	"sort"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// A crashed locale's segment fails over: its stranded values re-home
// onto the survivors in contiguous chunks with balanced adopt/retire
// books, ForceRetire clears the stranded pin, and nothing is lost or
// duplicated.
func TestShardedFailover(t *testing.T) {
	const locales, victim, vq = 4, 2, 10
	s := newTestSystem(t, locales, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := NewSharded[int](c, em)
		// One value per survivor segment (must come through untouched)
		// and vq values on the victim's.
		want := make(map[int]bool)
		c.CoforallLocales(func(lc *pgas.Ctx) {
			em.Protect(lc, func(tok *epoch.Token) {
				if lc.Here() == victim {
					for i := 0; i < vq; i++ {
						q.Enqueue(lc, tok, victim*1000+i)
					}
				} else {
					q.Enqueue(lc, tok, lc.Here()*1000)
				}
			})
		})
		for l := 0; l < locales; l++ {
			if l == victim {
				for i := 0; i < vq; i++ {
					want[victim*1000+i] = true
				}
			} else {
				want[l*1000] = true
			}
		}
		// The stranded pin a dead task leaves behind.
		c.On(victim, func(vc *pgas.Ctx) { em.Pin(vc) })

		if err := s.Crash(victim); err != nil {
			t.Fatalf("Crash: %v", err)
		}

		// A steal from an empty survivor segment must skip the dead
		// victim outright: no refusal burned, and the steal finds a live
		// segment's value instead of wedging on the corpse.
		preLost := s.Counters().Snapshot().OpsLost
		stok := em.Register(c)
		if _, from, ok := q.TryDequeueAny(c, stok); !ok || from == victim {
			t.Fatalf("steal after crash = (from=%d, %v)", from, ok)
		} else {
			delete(want, from*1000)
		}
		stok.Unregister(c)
		if lost := s.Counters().Snapshot().OpsLost; lost != preLost {
			t.Fatalf("steal burned %d refusals on the dead victim", lost-preLost)
		}

		before := s.Counters().Snapshot()
		sc := c.Salvage()
		shards, bytes := q.Failover(sc, victim)
		tokens := em.ForceRetire(sc, victim)
		sc.Flush()

		// vq values over locales-1 survivors: ceil-chunks, one per
		// adopter.
		if shards != locales-1 {
			t.Fatalf("failover adopted %d chunks, want %d", shards, locales-1)
		}
		if wantBytes := int64(vq) * 16; bytes != wantBytes {
			t.Fatalf("failover moved %d bytes, want %d", bytes, wantBytes)
		}
		if tokens != 1 {
			t.Fatalf("force-retired %d tokens, want exactly the stranded pin", tokens)
		}
		delta := s.Counters().Snapshot().Sub(before)
		if delta.MigAdopted != shards || delta.MigRetired != shards {
			t.Fatalf("books unbalanced: adopted %d retired %d, failover reported %d",
				delta.MigAdopted, delta.MigRetired, shards)
		}
		if delta.MigBytes != bytes {
			t.Fatalf("migrated %d bytes, failover reported %d", delta.MigBytes, bytes)
		}
		if delta.OpsLost != 0 {
			t.Fatalf("failover lost %d ops", delta.OpsLost)
		}

		// Everything drains back out exactly once, the victim's segment
		// empty; per-adopter chunks preserve the victim's FIFO order.
		var got []int
		for owner, batch := range q.Drain(sc) {
			if owner == victim && len(batch) != 0 {
				t.Fatalf("dead segment still holds %v", batch)
			}
			prev := -1
			for _, v := range batch {
				if v >= victim*1000 && v < victim*1000+vq {
					if v <= prev {
						t.Fatalf("adopter %d broke FIFO within its chunk: %v", owner, batch)
					}
					prev = v
				}
			}
			got = append(got, batch...)
		}
		wantVals := make([]int, 0, len(want))
		for v := range want {
			wantVals = append(wantVals, v)
		}
		sort.Ints(got)
		sort.Ints(wantVals)
		if len(got) != len(wantVals) {
			t.Fatalf("drained %d values, want %d", len(got), len(wantVals))
		}
		for i := range got {
			if got[i] != wantVals[i] {
				t.Fatalf("drained set diverged at %d: got %v want %v", i, got, wantVals)
			}
		}

		// Failover of an alive locale is a refusal-free no-op.
		if sh, b := q.Failover(sc, 0); sh != 0 || b != 0 {
			t.Fatalf("failover of alive locale adopted (%d, %d)", sh, b)
		}
	})
}
