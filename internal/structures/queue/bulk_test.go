package queue

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// EnqueueBulk preserves FIFO order and batch contiguity.
func TestEnqueueBulkOrder(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 1, em)
		tok := em.Register(c)
		defer tok.Unregister(c)

		q.Enqueue(c, tok, -1)
		vals := make([]int, 100)
		for i := range vals {
			vals[i] = i
		}
		q.EnqueueBulk(c, tok, vals)
		q.Enqueue(c, tok, -2)

		want := append(append([]int{-1}, vals...), -2)
		for i, w := range want {
			got, ok := q.Dequeue(c, tok)
			if !ok || got != w {
				t.Fatalf("dequeue %d = %d (ok=%v), want %d", i, got, ok, w)
			}
		}
		if _, ok := q.Dequeue(c, tok); ok {
			t.Fatal("queue not empty after draining")
		}
		if st := q.Stats(); st.Enqueues != 102 || st.Dequeues != 102 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// The bulk path's communication is O(1) in the batch size: one bulk
// transfer for the nodes plus a constant number of CASes, against one
// on-statement per node for the per-op path.
func TestEnqueueBulkCommVolume(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 1, em)
		tok := em.Register(c)
		defer tok.Unregister(c)

		const n = 200
		vals := make([]int, n)

		before := s.Counters().Snapshot()
		q.EnqueueBulk(c, tok, vals)
		d := s.Counters().Snapshot().Sub(before)
		if d.OnStmts != 0 {
			t.Fatalf("bulk enqueue paid %d on-statements, want 0", d.OnStmts)
		}
		if d.BulkXfers != 1 {
			t.Fatalf("bulk enqueue used %d bulk transfers, want 1", d.BulkXfers)
		}
		// Publication: read tail (+validate), read tail.next, link CAS,
		// tail swing — constant, not O(n).
		if d.AMAMOs > 8 {
			t.Fatalf("bulk enqueue paid %d AM atomics, want O(1)", d.AMAMOs)
		}

		before = s.Counters().Snapshot()
		for _, v := range vals {
			q.Enqueue(c, tok, v)
		}
		d = s.Counters().Snapshot().Sub(before)
		if d.OnStmts != n {
			t.Fatalf("per-op enqueue paid %d on-statements, want %d", d.OnStmts, n)
		}
	})
}

// Bulk batches interleave safely with concurrent per-op enqueuers and
// dequeuers; every value comes out exactly once.
func TestEnqueueBulkConcurrent(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 0, em)
		const tasks, batches, batchLen = 4, 10, 25
		c.Coforall(tasks, func(tc *pgas.Ctx, tid int) {
			em.Protect(tc, func(tok *epoch.Token) {
				for b := 0; b < batches; b++ {
					vals := make([]int, batchLen)
					for i := range vals {
						vals[i] = tid*batches*batchLen + b*batchLen + i
					}
					q.EnqueueBulk(tc, tok, vals)
				}
			})
		})
		tok := em.Register(c)
		defer tok.Unregister(c)
		seen := map[int]bool{}
		for {
			v, ok := q.Dequeue(c, tok)
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
		if len(seen) != tasks*batches*batchLen {
			t.Fatalf("drained %d values, want %d", len(seen), tasks*batches*batchLen)
		}
	})
}

// An empty batch is a no-op.
func TestEnqueueBulkEmpty(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 1, Backend: comm.BackendNone})
	defer s.Shutdown()
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		q.EnqueueBulk(c, tok, nil)
		if !q.IsEmpty(c, tok) {
			t.Fatal("empty bulk enqueue changed the queue")
		}
	})
}
