package queue

import (
	"testing"
	"testing/quick"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

// Property: under any sequential enqueue/dequeue sequence the queue
// agrees with a slice model (FIFO order, emptiness, length).
func TestQueueModelProperty(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 2, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)

	f := func(ops []int16) bool {
		q := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		var model []int
		for i, op := range ops {
			if op >= 0 {
				q.Enqueue(c, tok, i)
				model = append(model, i)
			} else {
				v, ok := q.Dequeue(c, tok)
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if !ok || v != want {
					return false
				}
			}
		}
		if q.Len(c, tok) != len(model) {
			return false
		}
		for _, want := range model {
			v, ok := q.Dequeue(c, tok)
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue(c, tok)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsEmpty agrees with Len == 0 at every step.
func TestIsEmptyConsistencyProperty(t *testing.T) {
	s := pgas.NewSystem(pgas.Config{Locales: 1, Backend: comm.BackendNone})
	defer s.Shutdown()
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	f := func(ops []bool) bool {
		q := New[int](c, 0, em)
		tok := em.Register(c)
		defer tok.Unregister(c)
		n := 0
		for _, enq := range ops {
			if enq {
				q.Enqueue(c, tok, n)
				n++
			} else if _, ok := q.Dequeue(c, tok); ok {
				n--
			}
			if q.IsEmpty(c, tok) != (n == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
