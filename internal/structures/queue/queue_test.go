package queue

import (
	"sync"
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/core/epoch"
	"gopgas/internal/pgas"
)

func newTestSystem(t testing.TB, locales int, backend comm.Backend) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: backend})
	t.Cleanup(s.Shutdown)
	return s
}

func TestQueueFIFO(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 0, em)
		tok := em.Register(c)
		if !q.IsEmpty(c, tok) {
			t.Fatal("fresh queue not empty")
		}
		for i := 0; i < 10; i++ {
			q.Enqueue(c, tok, i)
		}
		if q.Len(c, tok) != 10 {
			t.Fatalf("len = %d", q.Len(c, tok))
		}
		for i := 0; i < 10; i++ {
			v, ok := q.Dequeue(c, tok)
			if !ok || v != i {
				t.Fatalf("dequeue = (%d,%v), want %d", v, ok, i)
			}
		}
		if _, ok := q.Dequeue(c, tok); ok {
			t.Fatal("dequeue from empty succeeded")
		}
	})
}

func TestQueueInterleaved(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 0, em)
		tok := em.Register(c)
		next := 0
		expect := 0
		for round := 0; round < 20; round++ {
			for i := 0; i < 3; i++ {
				q.Enqueue(c, tok, next)
				next++
			}
			for i := 0; i < 2; i++ {
				v, ok := q.Dequeue(c, tok)
				if !ok || v != expect {
					t.Fatalf("dequeue = (%d,%v), want %d", v, ok, expect)
				}
				expect++
			}
		}
	})
}

// Per-producer FIFO order must hold under concurrency, and the value
// multiset must be preserved exactly.
func TestQueueConcurrentProducersConsumers(t *testing.T) {
	for _, backend := range []comm.Backend{comm.BackendNone, comm.BackendUGNI} {
		t.Run(backend.String(), func(t *testing.T) {
			s := newTestSystem(t, 4, backend)
			em := epoch.NewEpochManager(s.Ctx(0))
			q := New[[2]int](s.Ctx(0), 0, em)
			const producers = 4
			const consumers = 4
			const perProducer = 150

			var wg sync.WaitGroup
			var mu sync.Mutex
			consumed := make([][]int, producers)

			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					c := s.Ctx(p % 4)
					tok := em.Register(c)
					defer tok.Unregister(c)
					for i := 0; i < perProducer; i++ {
						q.Enqueue(c, tok, [2]int{p, i})
					}
				}(p)
			}
			done := make(chan struct{})
			var cwg sync.WaitGroup
			for k := 0; k < consumers; k++ {
				cwg.Add(1)
				go func(k int) {
					defer cwg.Done()
					c := s.Ctx(k % 4)
					tok := em.Register(c)
					defer tok.Unregister(c)
					for {
						v, ok := q.Dequeue(c, tok)
						if !ok {
							select {
							case <-done:
								// Final drain: producers finished.
								if v2, ok2 := q.Dequeue(c, tok); ok2 {
									mu.Lock()
									consumed[v2[0]] = append(consumed[v2[0]], v2[1])
									mu.Unlock()
									continue
								}
								return
							default:
								continue
							}
						}
						mu.Lock()
						consumed[v[0]] = append(consumed[v[0]], v[1])
						n := len(consumed[v[0]])
						mu.Unlock()
						if n%64 == 0 {
							tok.TryReclaim(c)
						}
					}
				}(k)
			}
			wg.Wait()
			close(done)
			cwg.Wait()

			total := 0
			for p := 0; p < producers; p++ {
				seen := make(map[int]bool)
				for _, i := range consumed[p] {
					if seen[i] {
						t.Fatalf("producer %d item %d consumed twice", p, i)
					}
					seen[i] = true
				}
				total += len(consumed[p])
			}
			if total != producers*perProducer {
				t.Fatalf("consumed %d, want %d", total, producers*perProducer)
			}
			em.Clear(s.Ctx(0))
			if uaf := s.HeapStats().UAFLoads; uaf != 0 {
				t.Fatalf("%d use-after-free loads", uaf)
			}
		})
	}
}

// Single-consumer global FIFO order.
func TestQueueSingleConsumerOrder(t *testing.T) {
	s := newTestSystem(t, 2, comm.BackendNone)
	em := epoch.NewEpochManager(s.Ctx(0))
	q := New[int](s.Ctx(0), 0, em)
	const n = 300

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Ctx(1)
		tok := em.Register(c)
		defer tok.Unregister(c)
		for i := 0; i < n; i++ {
			q.Enqueue(c, tok, i)
		}
	}()

	c := s.Ctx(0)
	tok := em.Register(c)
	last := -1
	got := 0
	for got < n {
		v, ok := q.Dequeue(c, tok)
		if !ok {
			continue
		}
		if v <= last {
			t.Fatalf("out of order: %d after %d", v, last)
		}
		last = v
		got++
	}
	tok.Unregister(c)
	wg.Wait()
}

func TestQueueNodeReclamation(t *testing.T) {
	s := newTestSystem(t, 1, comm.BackendNone)
	s.Run(func(c *pgas.Ctx) {
		em := epoch.NewEpochManager(c)
		q := New[int](c, 0, em)
		tok := em.Register(c)
		const n = 200
		for i := 0; i < n; i++ {
			q.Enqueue(c, tok, i)
			q.Dequeue(c, tok)
		}
		tok.Unregister(c)
		em.Clear(c)
		// n dummies retired (one per dequeue); all must be reclaimed.
		if got := em.Stats(c).Reclaimed; got != n {
			t.Fatalf("reclaimed %d, want %d", got, n)
		}
	})
}
