package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"gopgas/internal/bench"
	"gopgas/internal/trace"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestEndpoints(t *testing.T) {
	r := trace.NewRecorder(2, trace.Config{BufferSize: 256})
	r.Begin(0, trace.KindDispatch, 1, 0, 1, 0, 0).End()
	var faults []FaultRequest
	s := startTestServer(t, Options{
		Status: func() any { return map[string]any{"scenario": "test", "ops": 42} },
		Matrix: func() [][]int64 { return [][]int64{{0, 3}, {5, 0}} },
		Hist: func() bench.LatencySummary {
			var h bench.Histogram
			h.Record(1000)
			h.Record(2000)
			return h.Summary()
		},
		Trace: func(max int) []trace.Event { return r.Drain(max) },
		Fault: func(req FaultRequest) error {
			if req.SlowFactor < 0 {
				return fmt.Errorf("negative factor")
			}
			faults = append(faults, req)
			return nil
		},
	})

	code, body := get(t, s, "/api/status")
	if code != http.StatusOK {
		t.Fatalf("/api/status: %d %s", code, body)
	}
	var status map[string]any
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("/api/status not JSON: %v", err)
	}
	if status["scenario"] != "test" {
		t.Fatalf("status payload: %v", status)
	}

	code, body = get(t, s, "/api/matrix")
	if code != http.StatusOK {
		t.Fatalf("/api/matrix: %d %s", code, body)
	}
	var matrix struct {
		Matrix    [][]int64 `json:"matrix"`
		RowTotals []int64   `json:"row_totals"`
		ColTotals []int64   `json:"col_totals"`
	}
	if err := json.Unmarshal(body, &matrix); err != nil {
		t.Fatalf("/api/matrix not JSON: %v", err)
	}
	if matrix.RowTotals[0] != 3 || matrix.RowTotals[1] != 5 ||
		matrix.ColTotals[0] != 5 || matrix.ColTotals[1] != 3 {
		t.Fatalf("totals wrong: %+v", matrix)
	}

	code, body = get(t, s, "/api/hist")
	if code != http.StatusOK {
		t.Fatalf("/api/hist: %d %s", code, body)
	}
	var hist bench.LatencySummary
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatalf("/api/hist not JSON: %v", err)
	}
	if hist.Count != 2 {
		t.Fatalf("hist count %d, want 2", hist.Count)
	}

	code, body = get(t, s, "/api/trace?window=10")
	if code != http.StatusOK {
		t.Fatalf("/api/trace: %d %s", code, body)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/api/trace not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/api/trace drained nothing")
	}

	if code, body = get(t, s, "/api/trace?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window accepted: %d %s", code, body)
	}

	resp, err := http.Post(fmt.Sprintf("http://%s/api/fault", s.Addr()),
		"application/json", bytes.NewBufferString(`{"slow_locale":1,"slow_factor":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/fault POST: %d", resp.StatusCode)
	}
	if len(faults) != 1 || faults[0].SlowLocale != 1 || faults[0].SlowFactor != 8 {
		t.Fatalf("fault not delivered: %+v", faults)
	}
	resp, err = http.Post(fmt.Sprintf("http://%s/api/fault", s.Addr()),
		"application/json", bytes.NewBufferString(`{"slow_factor":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rejected fault returned %d", resp.StatusCode)
	}
	if code, _ = get(t, s, "/api/fault"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/fault returned %d", code)
	}

	if code, _ = get(t, s, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof index: %d", code)
	}
}

func TestNilProviders(t *testing.T) {
	s := startTestServer(t, Options{})
	for _, path := range []string{"/api/status", "/api/matrix", "/api/hist", "/api/trace"} {
		if code, _ := get(t, s, path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s with nil provider returned %d, want 503", path, code)
		}
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/api/fault", s.Addr()),
		"application/json", bytes.NewBufferString(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/api/fault with nil provider returned %d, want 503", resp.StatusCode)
	}
}
