// Package telemetry is the live observability surface: an opt-in HTTP
// server exposing counter snapshots, the communication matrix, live
// latency percentiles, trace windows and a fault-injection control —
// the portal/API split over the measurement and tracing planes. It
// depends only on the diagnostic layers (bench, trace) plus net/http;
// the workload engine lowers its richer state into the provider
// functions of Options, so the server never imports the simulator.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"gopgas/internal/bench"
	"gopgas/internal/trace"
)

// FaultRequest is the POST body of /api/fault: a fault to apply
// system-wide, in the vocabulary of comm.Perturbation but declared
// here so the server stays simulator-free. Exactly one form applies,
// checked in order: Crash kills CrashLocale fail-stop (irreversible —
// a later Clear does not resurrect it), Sever partitions the unordered
// pair (SeverA, SeverB), Heal repairs a severed pair (422 when the
// pair is not currently severed), Clear removes the latency
// perturbation, Scales installs an explicit per-locale factor vector,
// and SlowLocale/SlowFactor slows one locale.
type FaultRequest struct {
	Crash       bool      `json:"crash,omitempty"`
	CrashLocale int       `json:"crash_locale,omitempty"`
	Sever       bool      `json:"sever,omitempty"`
	SeverA      int       `json:"sever_a,omitempty"`
	SeverB      int       `json:"sever_b,omitempty"`
	Heal        bool      `json:"heal,omitempty"`
	HealA       int       `json:"heal_a,omitempty"`
	HealB       int       `json:"heal_b,omitempty"`
	Clear       bool      `json:"clear,omitempty"`
	Scales      []float64 `json:"scales,omitempty"`
	SlowLocale  int       `json:"slow_locale,omitempty"`
	SlowFactor  float64   `json:"slow_factor,omitempty"`
}

// Options wires the server's endpoints to whatever is running. Any nil
// provider turns its endpoint into 503 Service Unavailable — the
// server stays up across scenario boundaries and simply reports what
// is currently attached.
type Options struct {
	// Status returns the /api/status payload: any JSON-serializable
	// snapshot (scenario name, uptime, counters).
	Status func() any
	// Matrix returns the locale-pair communication matrix; the handler
	// adds row and column totals.
	Matrix func() [][]int64
	// Hist returns live latency percentiles from the workload engine.
	Hist func() bench.LatencySummary
	// Trace drains up to max buffered trace events (max <= 0: all).
	Trace func(max int) []trace.Event
	// Fault applies a fault request to the running system.
	Fault func(FaultRequest) error
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. ":8077" or "127.0.0.1:0") and serves the
// telemetry API plus net/http/pprof in a background goroutine.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/status", func(w http.ResponseWriter, r *http.Request) {
		if opts.Status == nil {
			unavailable(w)
			return
		}
		writeJSON(w, opts.Status())
	})
	mux.HandleFunc("/api/matrix", func(w http.ResponseWriter, r *http.Request) {
		if opts.Matrix == nil {
			unavailable(w)
			return
		}
		m := opts.Matrix()
		rows := make([]int64, len(m))
		var cols []int64
		if len(m) > 0 {
			cols = make([]int64, len(m[0]))
		}
		for i, row := range m {
			for j, v := range row {
				rows[i] += v
				cols[j] += v
			}
		}
		writeJSON(w, map[string]any{
			"matrix": m, "row_totals": rows, "col_totals": cols,
		})
	})
	mux.HandleFunc("/api/hist", func(w http.ResponseWriter, r *http.Request) {
		if opts.Hist == nil {
			unavailable(w)
			return
		}
		writeJSON(w, opts.Hist())
	})
	mux.HandleFunc("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		if opts.Trace == nil {
			unavailable(w)
			return
		}
		window := 0
		if q := r.URL.Query().Get("window"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, "telemetry: window must be a non-negative integer", http.StatusBadRequest)
				return
			}
			window = n
		}
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChromeTrace(w, opts.Trace(window)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/api/fault", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "telemetry: /api/fault requires POST", http.StatusMethodNotAllowed)
			return
		}
		if opts.Fault == nil {
			unavailable(w)
			return
		}
		var req FaultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("telemetry: bad fault request: %v", err), http.StatusBadRequest)
			return
		}
		if err := opts.Fault(req); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	// pprof on the same mux (the default ServeMux registrations from
	// importing net/http/pprof don't apply to a custom mux).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func unavailable(w http.ResponseWriter) {
	http.Error(w, "telemetry: no provider attached", http.StatusServiceUnavailable)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response write
}
