// Package dist provides global-view distributed arrays in the style of
// Chapel's Cyclic distribution: one logical array whose elements are
// spread over every locale's memory, indexed globally, iterated with
// owner-computes foralls. Element i of a cyclic array lives on locale
// i % numLocales, so consecutive indices land on consecutive locales —
// the distribution the paper's benchmarks use to randomize placement.
//
// Shard-local iteration (Forall) performs no element communication:
// each locale's tasks receive direct pointers into their own shard.
// Global-view random access (Read/Write) pays a GET/PUT when the
// element is remote, exactly like pgas.Ctx.Load/Put.
package dist

import (
	"fmt"

	"gopgas/internal/pgas"
)

// Array is a cyclically distributed array of T. Create with NewCyclic.
type Array[T any] struct {
	shards  [][]T // shards[l][j] holds element l + j*L
	n       int
	locales int
}

// NewCyclic creates a distributed array of n elements, element i homed
// on locale i % numLocales. Allocation fans out as a coforall (one
// on-statement per remote locale); the elements start zero-valued.
func NewCyclic[T any](c *pgas.Ctx, n int) *Array[T] {
	if n < 0 {
		panic(fmt.Sprintf("dist: negative array size %d", n))
	}
	L := c.NumLocales()
	a := &Array[T]{shards: make([][]T, L), n: n, locales: L}
	c.CoforallLocales(func(lc *pgas.Ctx) {
		l := lc.Here()
		size := 0
		if n > l {
			size = (n - l + L - 1) / L
		}
		a.shards[l] = make([]T, size)
	})
	return a
}

// Len returns the global element count.
func (a *Array[T]) Len() int { return a.n }

// Locale returns the locale that owns element i.
func (a *Array[T]) Locale(i int) int { return i % a.locales }

// locate maps a global index to its (locale, slot) pair.
func (a *Array[T]) locate(i int) (int, int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("dist: index %d out of range [0, %d)", i, a.n))
	}
	return i % a.locales, i / a.locales
}

// Read fetches element i with global-view semantics: a remote element
// pays one GET.
func (a *Array[T]) Read(c *pgas.Ctx, i int) T {
	l, j := a.locate(i)
	if l != c.Here() {
		c.ChargeGet(l)
	}
	return a.shards[l][j]
}

// Write stores element i with global-view semantics: a remote element
// pays one PUT.
func (a *Array[T]) Write(c *pgas.Ctx, i int, v T) {
	l, j := a.locate(i)
	if l != c.Here() {
		c.ChargePut(l)
	}
	a.shards[l][j] = v
}

// Forall iterates the array owner-computes: every locale runs
// tasksPerLocale tasks over its own shard, and body receives the global
// index plus a direct pointer to the locale-local element — zero
// element communication, one on-statement per remote locale for the
// fan-out. perTask and perTaskDone carry task-private state exactly as
// in pgas.ForallCyclic; either may be nil.
func Forall[P, T any](c *pgas.Ctx, a *Array[T], tasksPerLocale int,
	perTask func(ctx *pgas.Ctx) P,
	body func(ctx *pgas.Ctx, priv P, i int, elem *T),
	perTaskDone func(ctx *pgas.Ctx, priv P),
) {
	L := a.locales
	c.CoforallLocales(func(lc *pgas.Ctx) {
		l := lc.Here()
		shard := a.shards[l]
		pgas.ForallLocal(lc, len(shard), tasksPerLocale, perTask,
			func(tc *pgas.Ctx, priv P, j int) {
				body(tc, priv, l+j*L, &shard[j])
			},
			perTaskDone)
	})
}
