package dist

import (
	"testing"

	"gopgas/internal/comm"
	"gopgas/internal/pgas"
)

func newSys(t *testing.T, locales int) *pgas.System {
	t.Helper()
	s := pgas.NewSystem(pgas.Config{Locales: locales, Backend: comm.BackendNone})
	t.Cleanup(s.Shutdown)
	return s
}

// Elements are distributed cyclically and the owner-computes forall
// visits every index exactly once, on its owner, with no element
// communication.
func TestForallOwnerComputes(t *testing.T) {
	const locales, n = 4, 41
	s := newSys(t, locales)
	s.Run(func(c *pgas.Ctx) {
		a := NewCyclic[int](c, n)
		if a.Len() != n {
			t.Fatalf("Len = %d", a.Len())
		}
		before := s.Counters().Snapshot()
		Forall(c, a, 2, nil,
			func(tc *pgas.Ctx, _ struct{}, i int, elem *int) {
				if tc.Here() != a.Locale(i) {
					t.Errorf("index %d ran on locale %d, owner %d", i, tc.Here(), a.Locale(i))
				}
				*elem = i * i
			}, nil)
		d := s.Counters().Snapshot().Sub(before)
		// Fan-out only: one on-statement per remote locale, zero
		// puts/gets for the elements themselves.
		if d.Puts != 0 || d.Gets != 0 {
			t.Fatalf("owner-computes forall moved elements: %v", d)
		}
		if d.OnStmts != locales-1 {
			t.Fatalf("fan-out cost %d on-statements, want %d", d.OnStmts, locales-1)
		}
		for i := 0; i < n; i++ {
			if got := a.Read(c, i); got != i*i {
				t.Fatalf("a[%d] = %d, want %d", i, got, i*i)
			}
		}
	})
}

// Global-view access pays a GET/PUT only when the element is remote.
func TestGlobalViewAccess(t *testing.T) {
	s := newSys(t, 2)
	s.Run(func(c *pgas.Ctx) {
		a := NewCyclic[int](c, 4)
		before := s.Counters().Snapshot()
		a.Write(c, 0, 7) // local (0 % 2 == 0)
		a.Write(c, 1, 8) // remote
		_ = a.Read(c, 0) // local
		_ = a.Read(c, 3) // remote
		d := s.Counters().Snapshot().Sub(before)
		if d.Puts != 1 || d.Gets != 1 {
			t.Fatalf("comm = %v, want exactly 1 put + 1 get", d)
		}
		if a.Read(c, 1) != 8 {
			t.Fatal("remote write lost")
		}
	})
}

// Out-of-range indexing panics.
func TestIndexOutOfRange(t *testing.T) {
	s := newSys(t, 2)
	s.Run(func(c *pgas.Ctx) {
		a := NewCyclic[int](c, 3)
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range Read must panic")
			}
		}()
		a.Read(c, 3)
	})
}
