module gopgas

go 1.24
