package gopgas

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// smokeArgs shrinks each example to a seconds-scale run. Every
// directory under examples/ must have an entry (nil means "no flags"),
// so adding an example without wiring it into the smoke test fails.
var smokeArgs = map[string][]string{
	"distqueue":  {"-locales", "2", "-events", "300"},
	"diststack":  {"-locales", "2", "-items", "150", "-tasks", "1"},
	"hashmap":    {"-locales", "2", "-ops", "300", "-keys", "64", "-buckets", "16", "-tasks", "1"},
	"quickstart": nil,
	"scenario":   {"-locales", "2", "-tasks", "1", "-ops", "2000"},
	"sensorgrid": {"-locales", "2", "-sensors", "256", "-windows", "4"},
	"uafdemo":    {"-iters", "5000"},
	"workqueue":  {"-locales", "2", "-items", "300"},
}

// Every example builds and runs to completion (each example's main
// panics on a correctness or safety violation, so a clean exit is a
// real assertion). Sized to finish in seconds, so it runs in full even
// under -short: CI uses it both as a dedicated fast-fail smoke step
// and again inside the full race-enabled suite.
func TestExamplesBuildAndRun(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) != len(smokeArgs) {
		t.Fatalf("examples/ has %d dirs but smokeArgs covers %d — keep them in sync", len(names), len(smokeArgs))
	}

	binDir := t.TempDir()
	for _, name := range names {
		args, known := smokeArgs[name]
		if !known {
			t.Fatalf("examples/%s has no smokeArgs entry", name)
		}
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			cmd := exec.Command(bin, args...)
			done := make(chan error, 1)
			var out []byte
			start := time.Now()
			go func() {
				var runErr error
				out, runErr = cmd.CombinedOutput()
				done <- runErr
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run failed after %v: %v\n%s", time.Since(start), err, out)
				}
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example did not finish within 2m")
			}
		})
	}
}
