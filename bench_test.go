package gopgas

// Top-level testing.B entry points, one per figure/panel of the
// paper's evaluation plus the ablation studies. Each benchmark runs
// the corresponding workload at a fixed representative configuration
// with b.N operations, under the calibrated latency profile, so
// `go test -bench=. -benchmem` gives per-operation costs whose
// *ratios* mirror the figures. The full sweeps (every locale count,
// every remote fraction, both backends) are produced by
// `go run ./cmd/benchrunner`.

import (
	"testing"

	"gopgas/internal/bench/hotpath"
	"gopgas/internal/comm"
	"gopgas/internal/core/atomics"
	"gopgas/internal/core/epoch"
	"gopgas/internal/gas"
	"gopgas/internal/pgas"
)

func benchSystem(b *testing.B, locales int, backend comm.Backend) *pgas.System {
	b.Helper()
	s := pgas.NewSystem(pgas.Config{
		Locales: locales,
		Backend: backend,
		Latency: comm.DefaultProfile(),
		Seed:    42,
	})
	b.Cleanup(s.Shutdown)
	return s
}

// --- Figure 3, shared-memory panel -----------------------------------

func benchSharedMix(b *testing.B, useObj, aba bool) {
	s := benchSystem(b, 1, comm.BackendNone)
	c := s.Ctx(0)
	const cells = 64
	words := make([]*pgas.Word64, cells)
	objs := make([]*atomics.AtomicObject, cells)
	targets := make([]gas.Addr, cells)
	for i := 0; i < cells; i++ {
		words[i] = pgas.NewWord64(c, 0, 0)
		objs[i] = atomics.New(c, 0, atomics.Options{ABA: aba})
		targets[i] = c.Alloc(&struct{ x int }{x: i})
		objs[i].Write(c, targets[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := c.RandIntn(cells)
		kind := c.RandIntn(4)
		switch {
		case !useObj:
			switch kind {
			case 0:
				words[k].Read(c)
			case 1:
				words[k].Write(c, uint64(i))
			case 2:
				words[k].CompareAndSwap(c, uint64(i), uint64(i+1))
			default:
				words[k].Exchange(c, uint64(i))
			}
		case aba:
			switch kind {
			case 0:
				objs[k].ReadABA(c)
			case 1:
				objs[k].WriteABA(c, targets[k])
			case 2:
				cur := objs[k].ReadABA(c)
				objs[k].CompareAndSwapABA(c, cur, targets[k])
			default:
				objs[k].ExchangeABA(c, targets[k])
			}
		default:
			switch kind {
			case 0:
				objs[k].Read(c)
			case 1:
				objs[k].Write(c, targets[k])
			case 2:
				cur := objs[k].Read(c)
				objs[k].CompareAndSwap(c, cur, targets[k])
			default:
				objs[k].Exchange(c, targets[k])
			}
		}
	}
}

func BenchmarkFig3SharedMemoryAtomicInt(b *testing.B)       { benchSharedMix(b, false, false) }
func BenchmarkFig3SharedMemoryAtomicObject(b *testing.B)    { benchSharedMix(b, true, false) }
func BenchmarkFig3SharedMemoryAtomicObjectABA(b *testing.B) { benchSharedMix(b, true, true) }

// --- Figure 3, distributed panel --------------------------------------

func benchDistMix(b *testing.B, backend comm.Backend, useObj, aba bool) {
	const locales = 8
	s := benchSystem(b, locales, backend)
	c := s.Ctx(0)
	const cells = 64
	words := make([]*pgas.Word64, cells)
	objs := make([]*atomics.AtomicObject, cells)
	targets := make([]gas.Addr, cells)
	for i := 0; i < cells; i++ {
		home := i % locales
		words[i] = pgas.NewWord64(c, home, 0)
		objs[i] = atomics.New(c, home, atomics.Options{ABA: aba})
		targets[i] = c.AllocOn(home, &struct{ x int }{x: i})
		objs[i].Write(c, targets[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := c.RandIntn(cells)
		switch {
		case !useObj:
			words[k].CompareAndSwap(c, 0, 1)
		case aba:
			cur := objs[k].ReadABA(c)
			objs[k].CompareAndSwapABA(c, cur, targets[k])
		default:
			cur := objs[k].Read(c)
			objs[k].CompareAndSwap(c, cur, targets[k])
		}
	}
}

func BenchmarkFig3DistributedAtomicIntNone(b *testing.B) {
	benchDistMix(b, comm.BackendNone, false, false)
}
func BenchmarkFig3DistributedAtomicIntUGNI(b *testing.B) {
	benchDistMix(b, comm.BackendUGNI, false, false)
}
func BenchmarkFig3DistributedAtomicObjectNone(b *testing.B) {
	benchDistMix(b, comm.BackendNone, true, false)
}
func BenchmarkFig3DistributedAtomicObjectUGNI(b *testing.B) {
	benchDistMix(b, comm.BackendUGNI, true, false)
}
func BenchmarkFig3DistributedAtomicObjectABA(b *testing.B) {
	benchDistMix(b, comm.BackendNone, true, true)
}

// --- Figures 4–6: the Listing 5 deletion loop -------------------------

func benchDeletion(b *testing.B, backend comm.Backend, remotePct, reclaimEvery int) {
	const locales = 4
	s := benchSystem(b, locales, backend)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	tok := em.Register(c)
	objs := make([]gas.Addr, b.N)
	for i := range objs {
		target := 0
		if locales > 1 && c.RandIntn(100) < remotePct {
			target = 1 + c.RandIntn(locales-1)
		}
		objs[i] = c.AllocOn(target, &struct{ v int }{v: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Pin(c)
		tok.DeferDelete(c, objs[i])
		tok.Unpin(c)
		if reclaimEvery > 0 && (i+1)%reclaimEvery == 0 {
			tok.TryReclaim(c)
		}
	}
	em.Clear(c)
	b.StopTimer()
	tok.Unregister(c)
}

func BenchmarkFig4SparseReclaimNone(b *testing.B) { benchDeletion(b, comm.BackendNone, 50, 1024) }
func BenchmarkFig4SparseReclaimUGNI(b *testing.B) { benchDeletion(b, comm.BackendUGNI, 50, 1024) }
func BenchmarkFig5DenseReclaimNone(b *testing.B)  { benchDeletion(b, comm.BackendNone, 50, 1) }
func BenchmarkFig5DenseReclaimUGNI(b *testing.B)  { benchDeletion(b, comm.BackendUGNI, 50, 1) }
func BenchmarkFig6DeferredCleanupNone(b *testing.B) {
	benchDeletion(b, comm.BackendNone, 50, 0)
}
func BenchmarkFig6DeferredCleanupUGNI(b *testing.B) {
	benchDeletion(b, comm.BackendUGNI, 50, 0)
}
func BenchmarkFig6DeferredCleanup100PctRemote(b *testing.B) {
	benchDeletion(b, comm.BackendNone, 100, 0)
}
func BenchmarkFig6DeferredCleanup0PctRemote(b *testing.B) {
	benchDeletion(b, comm.BackendNone, 0, 0)
}

// --- Figure 7: read-only pin/unpin ------------------------------------

func benchPinUnpin(b *testing.B, backend comm.Backend, locales int) {
	s := benchSystem(b, locales, backend)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	tok := em.Register(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Pin(c)
		tok.Unpin(c)
	}
	b.StopTimer()
	tok.Unregister(c)
}

func BenchmarkFig7PinUnpinNone(b *testing.B)      { benchPinUnpin(b, comm.BackendNone, 4) }
func BenchmarkFig7PinUnpinUGNI(b *testing.B)      { benchPinUnpin(b, comm.BackendUGNI, 4) }
func BenchmarkFig7PinUnpin64Locales(b *testing.B) { benchPinUnpin(b, comm.BackendNone, 64) }

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationCompressionVsDCAS measures the same CAS under the
// compressed (NIC) and wide (DCAS remote-execution) representations.
func benchRepCAS(b *testing.B, mode atomics.Mode) {
	const locales = 4
	s := benchSystem(b, locales, comm.BackendUGNI)
	c := s.Ctx(0)
	opt := atomics.Options{Mode: mode}
	if mode == atomics.ModeDescriptor {
		opt.Table = atomics.NewDescriptorTable(c)
	}
	cell := atomics.New(c, 1, opt)
	target := c.AllocOn(1, &struct{ x int }{})
	cell.Write(c, target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := cell.Read(c)
		cell.CompareAndSwap(c, cur, target)
	}
}

func BenchmarkAblationCompressionVsDCASCompressed(b *testing.B) {
	benchRepCAS(b, atomics.ModeCompressed)
}
func BenchmarkAblationCompressionVsDCASWide(b *testing.B) {
	benchRepCAS(b, atomics.ModeWide)
}
func BenchmarkAblationDescriptorTable(b *testing.B) {
	benchRepCAS(b, atomics.ModeDescriptor)
}

// BenchmarkAblationPrivatization contrasts the privatized pin (local
// cache read) with a simulated unprivatized pin (remote epoch read).
func BenchmarkAblationPrivatizationPrivatized(b *testing.B) {
	benchPinUnpin(b, comm.BackendNone, 8)
}

func BenchmarkAblationPrivatizationNaive(b *testing.B) {
	s := benchSystem(b, 8, comm.BackendNone)
	c := s.Ctx(1) // a locale away from the global epoch's home
	global := pgas.NewWord64(c, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		global.Read(c) // what every pin would cost without privatization
	}
}

// BenchmarkAblationScatterList contrasts bulk scatter frees with
// per-object remote frees.
func BenchmarkAblationScatterListBulk(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendNone)
	c := s.Ctx(0)
	addrs := make([]gas.Addr, b.N)
	for i := range addrs {
		addrs[i] = c.AllocOn(1, &struct{ v int }{})
	}
	b.ResetTimer()
	c.FreeBulk(1, addrs)
}

func BenchmarkAblationScatterListRPC(b *testing.B) {
	s := benchSystem(b, 4, comm.BackendNone)
	c := s.Ctx(0)
	addrs := make([]gas.Addr, b.N)
	for i := range addrs {
		addrs[i] = c.AllocOn(1, &struct{ v int }{})
	}
	b.ResetTimer()
	for _, a := range addrs {
		c.Free(a)
	}
}

// BenchmarkAblationLimboPush contrasts the wait-free exchange push
// with a CAS-loop push over identical preallocated nodes (the fair
// mechanism-only comparison, matching ablation A4; single task, so the
// CAS loop never retries here — the full contention sweep is
// `benchrunner -figure ablations`). BenchmarkAblationLimboDeferDelete
// measures the complete DeferDelete path including node recycling.
func BenchmarkAblationLimboPushExchange(b *testing.B) {
	s := benchSystem(b, 1, comm.BackendNone)
	c := s.Ctx(0)
	head := atomics.NewLocal(0, false)
	type pushNode struct{ next gas.Addr }
	addrs := make([]gas.Addr, b.N)
	for i := range addrs {
		addrs[i] = c.Alloc(&pushNode{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := pgas.MustDeref[*pushNode](c, addrs[i])
		old := head.Exchange(addrs[i])
		n.next = old
	}
}

func BenchmarkAblationLimboPushCASLoop(b *testing.B) {
	s := benchSystem(b, 1, comm.BackendNone)
	c := s.Ctx(0)
	head := atomics.NewLocal(0, true)
	type pushNode struct{ next gas.Addr }
	addrs := make([]gas.Addr, b.N)
	for i := range addrs {
		addrs[i] = c.Alloc(&pushNode{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := pgas.MustDeref[*pushNode](c, addrs[i])
		for {
			top := head.ReadABA()
			n.next = top.Object()
			if head.CompareAndSwapABA(top, addrs[i]) {
				break
			}
		}
	}
}

// --- Measurement-plane hot paths (perf trajectory, BENCH_5) -----------

// The bodies live in internal/bench/hotpath, shared with
// cmd/benchsmoke so the CI bench smoke and the recorded BENCH_5
// trajectory point always measure the same workloads.

func BenchmarkDispatchHotPath(b *testing.B)  { hotpath.DispatchHotPath(b) }
func BenchmarkHeapLoadParallel(b *testing.B) { hotpath.HeapLoadParallel(b) }

// The BENCH_6 pair: the aggregated hot-key write storm with in-flight
// absorption off (baseline) and on (current).
func BenchmarkWriteStormHotKeyUncombined(b *testing.B) { hotpath.WriteStormHotKeyUncombined(b) }
func BenchmarkWriteStormHotKeyCombined(b *testing.B)   { hotpath.WriteStormHotKeyCombined(b) }

// The BENCH_7 pair: the moving-hot-set write storm with ownership
// static (baseline) and dynamically rebalanced (current).
func BenchmarkMovingHotStormStatic(b *testing.B)     { hotpath.MovingHotStormStatic(b) }
func BenchmarkMovingHotStormRebalanced(b *testing.B) { hotpath.MovingHotStormRebalanced(b) }

// The BENCH_8 tracing arms: the dispatch storm with a recorder
// attached but disabled (enabled-flag load only) and enabled at 1/64
// sampling. BenchmarkDispatchHotPath above stays recorder-free — its
// number must hold the BENCH_5 trajectory within noise.
func BenchmarkDispatchHotPathTracerIdle(b *testing.B) { hotpath.DispatchHotPathTracerIdle(b) }
func BenchmarkDispatchHotPathTraced(b *testing.B)     { hotpath.DispatchHotPathTraced(b) }

func BenchmarkAblationLimboDeferDelete(b *testing.B) {
	s := benchSystem(b, 1, comm.BackendNone)
	c := s.Ctx(0)
	em := epoch.NewEpochManager(c)
	tok := em.Register(c)
	tok.Pin(c)
	addrs := make([]gas.Addr, b.N)
	for i := range addrs {
		addrs[i] = c.Alloc(&struct{ v int }{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.DeferDelete(c, addrs[i])
	}
	b.StopTimer()
	tok.Unpin(c)
	em.Clear(c)
}
