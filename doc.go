// Package gopgas is a Go reproduction of "Paving the way for
// Distributed Non-Blocking Algorithms and Data Structures in the
// Partitioned Global Address Space model" (Dewan & Jenkins, 2020).
//
// The paper's constructs — AtomicObject (atomic operations on objects
// via pointer compression, with optional ABA protection through DCAS)
// and EpochManager (distributed epoch-based memory reclamation) —
// were built for Chapel on Cray hardware. This module rebuilds them,
// and the entire PGAS substrate they need, in pure stdlib Go:
//
//   - internal/pgas    — the PGAS runtime (locales, tasks, sync/async
//     on-statements, privatization, network-atomic words, the remote-op
//     dispatch layer and per-task aggregation buffers)
//   - internal/gas     — the software global address space (compressed
//     64-bit global pointers, per-locale heaps, poison-on-free)
//   - internal/comm    — backends (ugni/none), latency profiles, counters,
//     the per-destination aggregation buffers (Aggregator)
//   - internal/dist    — global-view cyclically distributed arrays
//   - internal/core    — the paper's contributions (atomics, epoch)
//   - internal/structures — non-blocking stack, queue, list, hash map
//     built on the contributions
//   - internal/bench   — regenerates every figure of the evaluation
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// simulation substitutions, and EXPERIMENTS.md for the measured
// figure-by-figure reproduction record. The root package holds the
// top-level benchmark entry points (bench_test.go) and no code.
package gopgas
